(* abc — command-line laboratory for the ABC model reproduction.

   Subcommands:
     check      admissibility of a scenario / random execution graph
     threshold  exact max relevant-cycle ratio (inf of admissible Xi)
     assign     normalized delay assignment (Theorem 7)
     simulate   run Byzantine clock synchronization (Algorithm 1)
     consensus  run EIG consensus over lock-step rounds (Algorithm 2)
     detect     run the Fig. 3 failure detector
     omega      run the Omega leader-election construction

   Examples:
     abc check --scenario fig1 --xi 3/2
     abc check --scenario random --seed 7 --events 40 --xi 2
     abc assign --scenario fig3 --xi 9/4
     abc simulate --procs 7 --faulty 2 --events 800
     abc consensus --seed 3
*)

open Cmdliner
open Core
open Execgraph

let q = Rat.of_ints

(* ------------------------------------------------------------------ *)
(* Common arguments *)

let xi_conv =
  let parse s =
    match Rat.of_string s with
    | x when Rat.compare x Rat.one > 0 -> Ok x
    | _ -> Error (`Msg "Xi must be a rational > 1, e.g. 3/2 or 2")
    | exception _ -> Error (`Msg "cannot parse rational (use e.g. 3/2, 2, 1.5)")
  in
  Arg.conv (parse, fun fmt x -> Format.fprintf fmt "%s" (Rat.to_string x))

let xi_arg =
  Arg.(value & opt xi_conv (q 2 1) & info [ "xi" ] ~docv:"XI" ~doc:"Synchrony parameter \xce\x9e > 1 (rational).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let events_arg ~default =
  Arg.(value & opt int default & info [ "events" ] ~docv:"N" ~doc:"Receive-event budget.")

let procs_arg ~default =
  Arg.(value & opt int default & info [ "procs" ] ~docv:"N" ~doc:"Number of processes.")

let scenario_arg =
  let doc =
    "Scenario: fig1 (spanning relevant cycle), fig3 (late reply), fig4 (early reply), \
     fig8 (isolated slow message), fifo (Fig. 10 reordering), or random."
  in
  Arg.(value & opt string "fig1" & info [ "scenario" ] ~docv:"NAME" ~doc)

let build_scenario name ~seed ~events =
  match name with
  | "fig1" -> Ok (Scenarios.spanning_cycle ~k1:4 ~k2:5 ())
  | "fig3" -> Ok (Scenarios.timeout ~chain:4 ())
  | "fig4" -> Ok (Scenarios.timeout_early ~chain:4 ())
  | "fig8" -> Ok (Scenarios.isolated_slow ~exchanges:8 ())
  | "fifo" ->
      Ok (Fifo.build ~n_messages:3 ~chatter:4 ~reordered:(Some 0) ()).Fifo.graph
      |> fun g -> g
  | "random" ->
      let rng = Random.State.make [| seed |] in
      Ok (Generate.random_execution rng ~nprocs:4 ~max_events:events ~max_delay:3 ~fanout:2)
  | other -> Error (Printf.sprintf "unknown scenario %S" other)

(* ------------------------------------------------------------------ *)
(* check *)

let cmd_check =
  let run scenario xi seed events =
    match build_scenario scenario ~seed ~events with
    | Error e ->
        Format.eprintf "error: %s@." e;
        1
    | Ok g ->
        Format.printf "scenario %s: %d events, %d messages@." scenario
          (Graph.event_count g) (Graph.message_count g);
        (match Abc_check.check g ~xi with
        | Abc_check.Admissible ->
            Format.printf "admissible for Xi = %s@." (Rat.to_string xi)
        | Abc_check.Violation c ->
            Format.printf "VIOLATION at Xi = %s: relevant cycle with |Z-| = %d, |Z+| = %d (ratio %s)@."
              (Rat.to_string xi) c.Cycle.backward_messages c.Cycle.forward_messages
              (Rat.to_string (Cycle.ratio c)));
        0
  in
  let term = Term.(const run $ scenario_arg $ xi_arg $ seed_arg $ events_arg ~default:30) in
  Cmd.v (Cmd.info "check" ~doc:"Check ABC admissibility (Definition 4) of a scenario.") term

(* ------------------------------------------------------------------ *)
(* threshold *)

let cmd_threshold =
  let run scenario seed events =
    match build_scenario scenario ~seed ~events with
    | Error e ->
        Format.eprintf "error: %s@." e;
        1
    | Ok g ->
        Format.printf "max relevant-cycle ratio: %s@." (Abc.admissibility_threshold g);
        0
  in
  let term = Term.(const run $ scenario_arg $ seed_arg $ events_arg ~default:30) in
  Cmd.v
    (Cmd.info "threshold"
       ~doc:"Exact maximum relevant-cycle ratio (the infimum of admissible Xi).")
    term

(* ------------------------------------------------------------------ *)
(* assign *)

let cmd_assign =
  let run scenario xi seed events faithful =
    match build_scenario scenario ~seed ~events with
    | Error e ->
        Format.eprintf "error: %s@." e;
        1
    | Ok g ->
        if faithful then begin
          match Delay_assignment.solve_faithful g ~xi with
          | Delay_assignment.Assignment delays ->
              Format.printf "feasible (paper's Fig. 6 system); delays in (1, %s):@."
                (Rat.to_string xi);
              List.iter
                (fun (id, d) -> Format.printf "  message e%d: %s@." id (Rat.to_string d))
                delays;
              Format.printf "verified: %b@." (Delay_assignment.verify_faithful g ~xi delays);
              0
          | Delay_assignment.Farkas cert ->
              Format.printf "infeasible: Farkas certificate with y^T b = %s%s@."
                (Rat.to_string cert.Lp.y_b)
                (if cert.Lp.strict_involved then " (strict rows involved)" else "");
              0
        end
        else begin
          match Delay_assignment.solve_fast g ~xi with
          | Some a ->
              Format.printf "feasible; event times and delays (epsilon = %s):@."
                (Rat.to_string a.Delay_assignment.epsilon);
              List.iter
                (fun (id, d) -> Format.printf "  message e%d: tau = %s@." id (Rat.to_string d))
                a.Delay_assignment.delays;
              Format.printf "verified: %b@." (Delay_assignment.verify g ~xi a);
              0
          | None ->
              Format.printf "infeasible: the graph violates the ABC condition for Xi = %s@."
                (Rat.to_string xi);
              0
        end
  in
  let faithful =
    Arg.(value & flag & info [ "faithful" ] ~doc:"Use the paper's Fig. 6 linear system (exponential cycle enumeration) instead of the fast potential solver.")
  in
  let term =
    Term.(const run $ scenario_arg $ xi_arg $ seed_arg $ events_arg ~default:20 $ faithful)
  in
  Cmd.v
    (Cmd.info "assign" ~doc:"Compute a normalized delay assignment (Theorem 7).")
    term

(* ------------------------------------------------------------------ *)
(* simulate *)

let cmd_simulate =
  let run procs f events seed xi =
    if procs < (3 * f) + 1 then begin
      Format.eprintf "error: need n >= 3f + 1 (got n = %d, f = %d)@." procs f;
      1
    end
    else begin
      let rng = Random.State.make [| seed |] in
      let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) () in
      let faults = Array.make procs Sim.Correct in
      if f >= 1 then faults.(procs - 1) <- Sim.Byzantine "rush5";
      if f >= 2 then faults.(procs - 2) <- Sim.Crash 20;
      let byz =
        if f >= 1 then Some (fun _ -> Clock_sync.byzantine_rusher ~ahead:5) else None
      in
      let cfg =
        Sim.make_config ?byzantine:byz ~nprocs:procs
          ~algorithm:(Clock_sync.algorithm ~f) ~faults ~scheduler ~max_events:events ()
      in
      let r = Sim.run cfg in
      let correct =
        List.filter (fun p -> faults.(p) = Sim.Correct) (List.init procs Fun.id)
      in
      Format.printf "clock synchronization: n = %d, f = %d, %d events@." procs f r.Sim.delivered;
      Array.iteri
        (fun p st -> Format.printf "  p%d: C = %d@." p (Clock_sync.clock st))
        r.Sim.final_states;
      let input = { Clock_sync.result = r; correct; xi } in
      Format.printf "max skew on consistent cuts: %d (bound 2Xi = %d)@."
        (Clock_sync.max_skew_on_cuts input)
        (Rat.floor_int (Rat.mul Rat.two xi));
      let checked, violations = Clock_sync.causal_cone_violations input in
      Format.printf "Lemma 4 checks: %d, violations: %d@." checked (List.length violations);
      0
    end
  in
  let f_arg = Arg.(value & opt int 1 & info [ "faulty"; "f" ] ~docv:"F" ~doc:"Fault budget.") in
  let term =
    Term.(const run $ procs_arg ~default:4 $ f_arg $ events_arg ~default:400 $ seed_arg $ xi_arg)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run Byzantine clock synchronization (Algorithm 1).") term

(* ------------------------------------------------------------------ *)
(* consensus *)

let cmd_consensus =
  let run seed xi =
    let inputs = [| 1; 1; 1; 0 |] in
    let rng = Random.State.make [| seed |] in
    let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) () in
    let algo = Consensus.Eig.algo ~f:1 ~value:(fun p -> inputs.(p)) in
    let byz =
      let real = Consensus.Eig.algo ~f:1 ~value:(fun _ -> 0) in
      Lockstep.algorithm ~f:1 ~xi
        {
          Lockstep.r_init =
            (fun ~self ~nprocs ->
              let st, _ = real.Lockstep.r_init ~self ~nprocs in
              (st, [ ([], 0) ]));
          r_step =
            (fun ~self ~nprocs:_ ~round st _ ->
              (st, List.init round (fun i -> ([ (self + i) mod 4 ], i mod 2))));
        }
    in
    let cfg =
      Sim.make_config ~byzantine:(fun _ -> byz) ~nprocs:4
        ~algorithm:(Lockstep.algorithm ~f:1 ~xi algo)
        ~faults:[| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Byzantine "forger" |]
        ~scheduler ~max_events:4000
        ~stop_when:(fun states ->
          List.for_all
            (fun p -> Consensus.Eig.decision (Lockstep.round_state states.(p)) <> None)
            [ 0; 1; 2 ])
        ()
    in
    let r = Sim.run cfg in
    Format.printf "EIG over lock-step rounds (n = 4, f = 1 Byzantine), %d events@."
      r.Sim.delivered;
    let decisions =
      List.map
        (fun p -> (p, Consensus.Eig.decision (Lockstep.round_state r.Sim.final_states.(p))))
        [ 0; 1; 2 ]
    in
    List.iter
      (fun (p, d) ->
        Format.printf "  p%d decides %s@." p
          (match d with Some v -> string_of_int v | None -> "-"))
      decisions;
    Format.printf "agreement + validity: %b@."
      (Consensus.check_agreement decisions ~inputs:[ 1; 1; 1 ]);
    0
  in
  let term = Term.(const run $ seed_arg $ xi_arg) in
  Cmd.v (Cmd.info "consensus" ~doc:"Run EIG Byzantine consensus over lock-step rounds.") term

(* ------------------------------------------------------------------ *)
(* detect *)

let cmd_detect =
  let run seed xi crash =
    let rng = Random.State.make [| seed |] in
    let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 2 1) ~tau_plus:(q 3 1) () in
    let faults = Array.make 4 Sim.Correct in
    if crash then faults.(3) <- Sim.Crash 1;
    let cfg =
      Sim.make_config ~nprocs:4
        ~algorithm:(Failure_detector.algorithm ~xi ~rounds:3)
        ~faults ~scheduler ~max_events:500 ()
    in
    let r = Sim.run cfg in
    let crashed = if crash then [ 3 ] else [] in
    let false_susp, missed = Failure_detector.accuracy r ~crashed in
    Format.printf "Fig. 3 failure detector (Xi = %s, chain length %d), %d events@."
      (Rat.to_string xi)
      (Rat.ceil_int (Rat.mul Rat.two xi))
      r.Sim.delivered;
    Format.printf "suspects: [%s]@."
      (String.concat "; " (List.map string_of_int (Failure_detector.suspects r.Sim.final_states.(0))));
    Format.printf "false suspicions: %d, missed crashes: %d@." (List.length false_susp)
      (List.length missed);
    0
  in
  let crash = Arg.(value & flag & info [ "crash" ] ~doc:"Crash process 3 at its first step.") in
  let term = Term.(const run $ seed_arg $ xi_arg $ crash) in
  Cmd.v (Cmd.info "detect" ~doc:"Run the Fig. 3 \xce\x9e-timeout failure detector.") term

(* ------------------------------------------------------------------ *)
(* omega *)

let cmd_omega =
  let run seed xi crash0 =
    let rng = Random.State.make [| seed |] in
    let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) () in
    let faults = Array.make 4 Sim.Correct in
    if crash0 then faults.(0) <- Sim.Crash 2;
    let cfg =
      Sim.make_config ~nprocs:4 ~algorithm:(Omega.algorithm ~f:1 ~xi) ~faults ~scheduler
        ~max_events:500 ()
    in
    let r = Sim.run cfg in
    let correct =
      List.filter (fun p -> faults.(p) = Sim.Correct) (List.init 4 Fun.id)
    in
    let leaders, expected, agree = Omega.converged r ~correct in
    Format.printf "Omega leader election (Xi = %s)%s:@." (Rat.to_string xi)
      (if crash0 then ", process 0 crashed" else "");
    List.iter (fun (p, l) -> Format.printf "  p%d trusts p%d@." p l) leaders;
    Format.printf "converged to the smallest correct id (%d): %b@." expected agree;
    0
  in
  let crash0 = Arg.(value & flag & info [ "crash0" ] ~doc:"Crash process 0 early.") in
  let term = Term.(const run $ seed_arg $ xi_arg $ crash0) in
  Cmd.v (Cmd.info "omega" ~doc:"Run the Omega leader-election construction.") term

(* ------------------------------------------------------------------ *)
(* Network provisioning arguments (shared by fuzz/mc --shards) *)

let workers_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "workers" ] ~docv:"EPS"
        ~doc:
          "Comma-separated socket-worker endpoints for $(b,--shards), e.g. \
           $(b,10.0.0.2:7001*4,unix:/tmp/w.sock).  Each endpoint (started \
           with $(b,abc serve --listen)) is dialed and dealt units; an \
           optional $(b,*WEIGHT) suffix declares capacity (bigger boxes are \
           offered work first — wall-clock only, the report is identical).")

let listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Accept self-registering workers ($(b,abc serve --connect ADDR)) \
           on this address for the duration of the sharded run.")

let connect_timeout_arg =
  Arg.(
    value & opt float 5.0
    & info [ "connect-timeout" ] ~docv:"SECS"
        ~doc:"Deadline for each worker-endpoint dial.")

let max_frame_arg =
  Arg.(
    value & opt int Dist.Frame.max_payload
    & info [ "max-frame" ] ~docv:"BYTES"
        ~doc:
          "Reject any protocol frame whose length prefix exceeds this many \
           bytes — checked $(i,before) allocating the payload; the offending \
           worker is quarantined and its shard named in the diagnostic.")

(* Parse/validate the net options; [Ok (endpoints, listen)] feeds
   straight into {!Dist.Supervisor.make_config}. *)
let parse_net_opts ~shards ~workers ~listen ~max_frame :
    ((Net.Transport.addr * int) list * Net.Transport.addr option, string) result
    =
  let ( let* ) = Result.bind in
  let* () =
    if shards <= 0 && (workers <> None || listen <> None) then
      Error "--workers/--listen only apply to sharded runs (--shards N)"
    else Ok ()
  in
  let* () =
    if max_frame < 1 then Error "--max-frame must be >= 1" else Ok ()
  in
  let* endpoints =
    match workers with
    | None -> Ok []
    | Some s -> Net.Registry.parse_workers s
  in
  let* listen =
    match listen with
    | None -> Ok None
    | Some s -> Result.map Option.some (Net.Transport.addr_of_string s)
  in
  Ok (endpoints, listen)

(* ------------------------------------------------------------------ *)
(* fuzz *)

let list_oracle_registry () =
  List.iter
    (fun (o : Fuzz.Oracle.t) ->
      Format.printf "%-18s %s@." o.Fuzz.Oracle.name o.Fuzz.Oracle.theorem)
    Fuzz.Oracle.registry

let cmd_fuzz =
  let run cases seed time_budget replay emit no_shrink oracle_spec jobs timing
      boundary expect_violations shards checkpoint resume_from nemesis_spec
      heartbeat workers listen connect_timeout max_frame =
    let oracle_selection =
      match oracle_spec with
      | None -> Ok None
      | Some "list" -> Ok (Some [])
      | Some names -> (
          match Fuzz.Oracle.select names with
          | Ok os -> Ok (Some os)
          | Error e -> Error e)
    in
    match (oracle_selection, oracle_spec) with
    | Error e, _ ->
        Format.eprintf "error: %s@." e;
        1
    | Ok _, Some "list" ->
        list_oracle_registry ();
        0
    | Ok selection, _ -> (
      let oracles =
        match selection with None -> Fuzz.Oracle.registry | Some os -> os
      in
      match (replay, emit) with
      | Some line, _ -> (
          match Fuzz.Replay.replay ~oracles line with
          | Error e ->
              Format.eprintf "error: %s@." e;
              1
          | Ok (case, results) ->
              Format.printf "replaying %s@." (Fuzz.Replay.to_string case);
              print_string (Fuzz.Report.render_outcomes results);
              if Fuzz.Oracle.failures results = [] then 0 else 1)
      | None, Some s ->
          (* print the serialized case a seed generates, for hand editing *)
          let gen =
            if boundary then Fuzz.Gen.generate_boundary else Fuzz.Gen.generate
          in
          print_endline (Fuzz.Replay.to_string (gen ~seed:s));
          0
      | None, None -> (
          let report outcome =
            print_string (Fuzz.Report.render outcome);
            (* stderr, not stdout: the report stays byte-deterministic *)
            if timing then prerr_string (Fuzz.Report.render_cost outcome);
            if expect_violations then
              (* negative mode: the campaign must WITNESS violations — at
                 the boundary, every boundary oracle must have failed at
                 least once *)
              let is_boundary_oracle n =
                String.length n >= 9 && String.sub n 0 9 = "boundary-"
              in
              let witnessed =
                outcome.Fuzz.Campaign.cp_failures <> []
                && List.for_all
                     (fun (n, s) ->
                       (not (boundary && is_boundary_oracle n))
                       || s.Fuzz.Campaign.os_fail > 0)
                     outcome.Fuzz.Campaign.cp_stats
              in
              if witnessed then 0 else 1
            else if outcome.Fuzz.Campaign.cp_failures = [] then 0
            else 1
          in
          if shards > 0 then
            (* sharded: worker subprocesses, supervised; the report is
               byte-identical to the serial one whatever the shard
               count, worker deaths, or retry history *)
            if time_budget > 0.0 then begin
              Format.eprintf
                "error: --shards needs a fixed case count, not --time-budget \
                 (the unit partition must be deterministic)@.";
              1
            end
            else if checkpoint <> None && resume_from <> None then begin
              Format.eprintf
                "error: --checkpoint starts a fresh journal, --resume \
                 continues one; pick one@.";
              1
            end
            else
              let nemesis =
                match nemesis_spec with
                | None -> Ok Dist.Nemesis.none
                | Some s -> Dist.Nemesis.parse s
              in
              match nemesis with
              | Error e ->
                  Format.eprintf "error: %s@." e;
                  1
              | Ok nemesis -> (
                  match
                    parse_net_opts ~shards ~workers ~listen ~max_frame
                  with
                  | Error e ->
                      Format.eprintf "error: %s@." e;
                      1
                  | Ok (endpoints, listen) -> (
                  let checkpoint, resume =
                    match resume_from with
                    | Some f -> (Some f, true)
                    | None -> (checkpoint, false)
                  in
                  let cfg =
                    Dist.Supervisor.make_config ~shards ~heartbeat ?checkpoint
                      ~resume ~nemesis ~endpoints ?listen ~connect_timeout
                      ~max_frame ()
                  in
                  match
                    Dist.Supervisor.run_fuzz cfg ~seed ~cases ~boundary
                      ~shrink:(not no_shrink) ~oracles:oracle_spec ()
                  with
                  | outcome -> report outcome
                  | exception Dist.Nemesis.Supervisor_killed n ->
                      Format.eprintf
                        "abc fuzz: supervisor killed by nemesis after %d \
                         merged units (checkpoint is durable; --resume \
                         continues)@."
                        n;
                      3
                  | exception Dist.Supervisor.Dist_error e ->
                      Format.eprintf "error: %s@." e;
                      1))
          else
            match parse_net_opts ~shards ~workers ~listen ~max_frame with
            | Error e ->
                Format.eprintf "error: %s@." e;
                1
            | Ok _ ->
                let time_budget =
                  if time_budget > 0.0 then Some time_budget else None
                in
                let jobs = if jobs > 0 then Some jobs else None in
                report
                  (Fuzz.Campaign.run ~oracles ~shrink:(not no_shrink) ~boundary
                     ?time_budget ?jobs ~cases ~seed ())))
  in
  let cases =
    Arg.(value & opt int 100 & info [ "cases" ] ~docv:"N" ~doc:"Number of cases to run.")
  in
  let time_budget =
    Arg.(
      value & opt float 0.0
      & info [ "time-budget" ] ~docv:"SECS"
          ~doc:"Stop the campaign after this much CPU time (0 = no budget).")
  in
  let replay =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"CASE" ~doc:"Re-run one serialized case and re-check it.")
  in
  let emit =
    Arg.(
      value & opt (some int) None
      & info [ "emit" ] ~docv:"SEED" ~doc:"Print the case a seed generates, then exit.")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report failures without shrinking them.")
  in
  let oracle_spec =
    Arg.(
      value
      & opt ~vopt:(Some "list") (some string) None
      & info [ "oracles" ] ~docv:"NAMES"
          ~doc:
            "Bare $(b,--oracles) lists the theorem oracles and exits.  With a \
             comma-separated value ($(b,--oracles=clock-progress,assign)), run \
             only the named oracles; an unknown name is an error that lists \
             the valid ones.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the campaign (0 = one per recommended core). \
             The report is byte-identical whatever N; $(b,--jobs 1) runs the \
             historical serial loop.")
  in
  let timing =
    Arg.(
      value & flag
      & info [ "timing" ]
          ~doc:
            "Print the campaign's wall-time/allocation cost block to stderr \
             (nondeterministic, hence never part of the report).")
  in
  let boundary =
    Arg.(
      value & flag
      & info [ "boundary" ]
          ~doc:
            "Sample resilience-boundary cases (n = 3f with an equivocator) \
             instead of positive ones.  The boundary oracles are expected to \
             witness violations of the paper's n >= 3f+1 bounds.")
  in
  let expect_violations =
    Arg.(
      value & flag
      & info [ "expect-violations" ]
          ~doc:
            "Invert the exit-code convention: succeed iff the campaign \
             witnessed violations (with $(b,--boundary), iff every boundary \
             oracle failed at least once).")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run the campaign on N supervised worker subprocesses (0 = \
             in-process).  The report is byte-identical to the serial one for \
             any N, including across worker crashes and retries.")
  in
  let checkpoint =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write-ahead journal for $(b,--shards): every merged unit is \
             appended (CRC'd, fsync'd) before it counts, so a killed \
             supervisor can $(b,--resume).")
  in
  let resume_from =
    Arg.(
      value & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume a sharded campaign from its checkpoint journal: completed \
             units are adopted after validation, the rest re-run, and the \
             final report is identical to an uninterrupted run.")
  in
  let nemesis_spec =
    Arg.(
      value & opt (some string) None
      & info [ "nemesis" ] ~docv:"PLAN"
          ~doc:
            "Harness-nemesis fault plan for $(b,--shards), e.g. \
             $(b,kill:0@2,stall:1@1,skill@3): kill/stall/corrupt/trunc/dup/flip \
             a worker at a deterministic shard boundary, or kill the \
             supervisor itself after its S-th merged unit.")
  in
  let heartbeat =
    Arg.(
      value & opt float 30.0
      & info [ "heartbeat" ] ~docv:"SECS"
          ~doc:
            "Silence tolerance for $(b,--shards): a worker holding a unit \
             that sends nothing for this long is killed and its unit \
             re-dispatched.")
  in
  let term =
    Term.(
      const run $ cases $ seed_arg $ time_budget $ replay $ emit $ no_shrink
      $ oracle_spec $ jobs $ timing $ boundary $ expect_violations $ shards
      $ checkpoint $ resume_from $ nemesis_spec $ heartbeat $ workers_arg
      $ listen_arg $ connect_timeout_arg $ max_frame_arg)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Property-based adversarial fuzzing: random schedulers and fault vectors \
          checked against the paper's theorem oracles, with shrinking and \
          deterministic replay.")
    term

(* ------------------------------------------------------------------ *)
(* mc *)

let cmd_mc =
  let run procs xi budget workload faults boundary seed jobs frontier no_dpor
      engine no_tt cross_check stats shards workers listen connect_timeout
      max_frame =
    let ( let* ) r f =
      match r with
      | Error e ->
          Format.eprintf "error: %s@." e;
          1
      | Ok v -> f v
    in
    let* workload =
      match workload with
      | "clock" -> Ok Fuzz.Gen.W_clock
      | "lockstep" -> Ok Fuzz.Gen.W_lockstep
      | "eig" -> Ok Fuzz.Gen.W_consensus
      | w -> Error (Printf.sprintf "unknown workload %S (clock, lockstep, eig)" w)
    in
    let* faults =
      match faults with
      | None -> Ok (Array.make procs Sim.Correct)
      | Some s ->
          let toks = if s = "" then [] else String.split_on_char ',' s in
          let rec go acc = function
            | [] -> Ok (Array.of_list (List.rev acc))
            | t :: rest -> (
                match Sim.fault_of_string t with
                | Some f -> go (f :: acc) rest
                | None -> Error (Printf.sprintf "bad fault %S" t))
          in
          go [] toks
    in
    let* () =
      if budget > Mc.Schedule.max_budget then
        Error
          (Printf.sprintf "budget %d above the mc cap %d (HB masks are one int)"
             budget Mc.Schedule.max_budget)
      else Ok ()
    in
    let* case =
      Fuzz.Gen.validate
        {
          Fuzz.Gen.c_seed = seed;
          c_nprocs = procs;
          c_faults = faults;
          c_xi = xi;
          c_sched = Fuzz.Gen.S_async { max_delay = Rat.one };
          c_workload = workload;
          c_max_events = budget;
          c_plan = [];
          c_boundary = boundary;
          c_schedule = [];
        }
    in
    let* engine =
      match engine with
      | "incremental" -> Ok Mc.Explore.Incremental
      | "replay" -> Ok Mc.Explore.Replay
      | e -> Error (Printf.sprintf "unknown engine %S (replay, incremental)" e)
    in
    let jobs = if jobs > 0 then Some jobs else None in
    let tt = not no_tt in
    let dpor = not no_dpor in
    let* outcome =
      if shards > 0 then
        (* frontier tasks sharded across workers (sockets or
           subprocesses); the merge is the same pure function, so the
           report is byte-identical *)
        match parse_net_opts ~shards ~workers ~listen ~max_frame with
        | Error e -> Error e
        | Ok (endpoints, listen) -> (
        let cfg =
          Dist.Supervisor.make_config ~shards ~endpoints ?listen
            ~connect_timeout ~max_frame ()
        in
        match
          Dist.Supervisor.run_mc cfg ~dpor
            ~incremental:(engine = Mc.Explore.Incremental) ~tt ~frontier case
        with
        | o -> Ok o
        | exception Dist.Supervisor.Dist_error e -> Error e)
      else (
        match parse_net_opts ~shards ~workers ~listen ~max_frame with
        | Error e -> Error e
        | Ok _ -> Ok (Mc.Driver.run ~dpor ~engine ~tt ~frontier ?jobs case))
    in
    print_string (Mc.Mc_report.render ~stats outcome);
    let ok = ref (outcome.Mc.Driver.mc_violations = []) in
    if cross_check then begin
      (* engine cross-check: the other engine must reproduce the class
         list byte-for-byte — keys, representative schedules, verdicts
         and repro lines (the engine is invisible in every output) *)
      let other, other_name =
        match engine with
        | Mc.Explore.Incremental -> (Mc.Explore.Replay, "replay")
        | Mc.Explore.Replay -> (Mc.Explore.Incremental, "incremental")
      in
      let o2 = Mc.Driver.run ~dpor ~engine:other ~tt ~frontier ?jobs case in
      let signature (o : Mc.Driver.outcome) =
        ( List.map
            (fun (c : Mc.Explore.class_rec) ->
              (c.Mc.Explore.cl_key, c.Mc.Explore.cl_choices))
            o.Mc.Driver.mc_classes,
          Mc.Mc_report.render_verdicts o,
          List.map
            (fun (v : Mc.Driver.violation) ->
              ( Fuzz.Replay.to_string v.Mc.Driver.vi_case,
                Fuzz.Replay.to_string v.Mc.Driver.vi_shrunk ))
            o.Mc.Driver.mc_violations )
      in
      if signature outcome = signature o2 then
        Format.printf
          "cross-check: %s engine agrees (%d classes, %d executions)@."
          other_name
          (List.length o2.Mc.Driver.mc_classes)
          o2.Mc.Driver.mc_executions
      else begin
        Format.printf "cross-check: ENGINE MISMATCH (%s vs %s)@."
          (match engine with
          | Mc.Explore.Incremental -> "incremental"
          | Mc.Explore.Replay -> "replay")
          other_name;
        ok := false
      end
    end;
    if cross_check && dpor then begin
      let naive = Mc.Driver.run ~dpor:false ~engine ~tt ~frontier ?jobs case in
      let rv = Mc.Mc_report.render_verdicts outcome in
      let rn = Mc.Mc_report.render_verdicts naive in
      if rv = rn then
        Format.printf
          "cross-check: naive search agrees (%d classes; %d dpor vs %d naive \
           executions)@."
          (List.length naive.Mc.Driver.mc_classes)
          outcome.Mc.Driver.mc_executions naive.Mc.Driver.mc_executions
      else begin
        Format.printf "cross-check: MISMATCH@.--- dpor ---@.%s--- naive ---@.%s"
          rv rn;
        ok := false
      end
    end;
    if !ok then 0 else 1
  in
  let budget =
    Arg.(
      value & opt int 8
      & info [ "budget" ] ~docv:"B"
          ~doc:"Receive-event budget bounding the exploration depth (max 62).")
  in
  let workload =
    Arg.(
      value & opt string "clock"
      & info [ "workload" ] ~docv:"W" ~doc:"Workload: clock, lockstep or eig.")
  in
  let faults =
    Arg.(
      value & opt (some string) None
      & info [ "faults" ] ~docv:"F0,F1,..."
          ~doc:
            "Per-process fault vector in replay-line syntax (e.g. \
             $(b,C,C,C,X2)); default all-correct.")
  in
  let boundary =
    Arg.(
      value & flag
      & info [ "boundary" ]
          ~doc:
            "Accept a resilience-boundary box (n = 3f with an equivocator); \
             the boundary oracles then witness bound violations as failures.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains sharing the frontier tasks (0 = one per \
             recommended core).  The report is byte-identical whatever N.")
  in
  let frontier =
    Arg.(
      value & opt int 2
      & info [ "frontier" ] ~docv:"D"
          ~doc:
            "Frontier depth: prefixes of this length are expanded naively and \
             explored as independent tasks with DPOR below.")
  in
  let no_dpor =
    Arg.(
      value & flag
      & info [ "no-dpor" ]
          ~doc:
            "Disable partial-order reduction and sleep sets: enumerate every \
             interleaving (the exhaustiveness baseline).")
  in
  let engine =
    Arg.(
      value & opt string "incremental"
      & info [ "engine" ] ~docv:"E"
          ~doc:
            "Exploration engine: $(b,incremental) walks the tree on one live \
             session with snapshot/undo; $(b,replay) re-executes each prefix \
             from scratch.  Both produce byte-identical output.")
  in
  let no_tt =
    Arg.(
      value & flag
      & info [ "no-tt" ]
          ~doc:
            "Disable the canonical-state transposition table (only active \
             with $(b,--no-dpor); sleep sets make it unsound).")
  in
  let cross_check =
    Arg.(
      value & flag
      & info [ "cross-check" ]
          ~doc:
            "Re-explore with the other engine and (under DPOR) without \
             reduction, requiring byte-identical classes and verdicts.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Include replay-amplification statistics in the report.")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Explore the frontier tasks on N supervised worker subprocesses \
             (0 = in-process).  The report is byte-identical whatever N.")
  in
  let term =
    Term.(
      const run $ procs_arg ~default:3 $ xi_arg $ budget $ workload $ faults
      $ boundary $ seed_arg $ jobs $ frontier $ no_dpor $ engine $ no_tt
      $ cross_check $ stats $ shards $ workers_arg $ listen_arg
      $ connect_timeout_arg $ max_frame_arg)
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Exhaustive bounded model checking: every message-delivery ordering \
          of a box up to the event budget, reduced by DPOR with sleep sets, \
          each equivalence class checked against the theorem oracles.")
    term

(* ------------------------------------------------------------------ *)
(* trace *)

let cmd_trace =
  let run replay mc cases seed jobs procs budget out format filters no_wall
      digest_only =
    let ( let* ) r f =
      match r with
      | Error e ->
          Format.eprintf "error: %s@." e;
          1
      | Ok v -> f v
    in
    let* format =
      match format with
      | "jsonl" -> Ok `Jsonl
      | "chrome" -> Ok `Chrome
      | f -> Error (Printf.sprintf "unknown format %S (jsonl, chrome)" f)
    in
    let* cats =
      match filters with
      | None -> Ok None
      | Some s ->
          let toks = if s = "" then [] else String.split_on_char ',' s in
          let valid = [ "sim"; "fuzz"; "mc"; "pool"; "dist"; "net" ] in
          if toks <> [] && List.for_all (fun t -> List.mem t valid) toks then
            Ok (Some toks)
          else
            Error
              "bad --filter (comma-separated subset of \
               sim,fuzz,mc,pool,dist,net)"
    in
    let* () =
      if replay <> None && mc then
        Error "--replay and --mc are mutually exclusive"
      else Ok ()
    in
    let jobs = if jobs > 0 then jobs else 1 in
    let body () =
      match replay with
      | Some line ->
          (* scope 0: a single replayed case is one deterministic unit
             of work, so its whole event stream enters the digest *)
          Obs.with_scope 0 (fun () ->
              match Fuzz.Replay.replay ~oracles:Fuzz.Oracle.registry line with
              | Error e -> Error e
              | Ok (_case, _results) -> Ok ())
      | None ->
          if mc then
            if budget > Mc.Schedule.max_budget then
              Error
                (Printf.sprintf "budget %d above the mc cap %d" budget
                   Mc.Schedule.max_budget)
            else
              let case =
                {
                  Fuzz.Gen.c_seed = seed;
                  c_nprocs = procs;
                  c_faults = Array.make procs Sim.Correct;
                  c_xi = q 2 1;
                  c_sched = Fuzz.Gen.S_async { max_delay = Rat.one };
                  c_workload = Fuzz.Gen.W_clock;
                  c_max_events = budget;
                  c_plan = [];
                  c_boundary = false;
                  c_schedule = [];
                }
              in
              (match Fuzz.Gen.validate case with
              | Error e -> Error e
              | Ok case ->
                  ignore (Mc.Driver.run ~jobs case);
                  Ok ())
          else begin
            ignore (Fuzz.Campaign.run ~shrink:false ~cases ~jobs ~seed ());
            Ok ()
          end
    in
    let res, trace = Obs.capture body in
    let* () = res in
    let trace =
      match cats with None -> trace | Some cats -> Obs.filter ~cats trace
    in
    let dg = Obs.digest trace in
    if digest_only then begin
      print_endline dg;
      0
    end
    else begin
      let buf = Buffer.create 65536 in
      (match format with
      | `Jsonl ->
          Obs.to_jsonl ~wall:(not no_wall) buf trace;
          Printf.bprintf buf "{\"digest\":%S,\"events\":%d,\"dropped\":%d}\n" dg
            (Array.length trace.Obs.t_events)
            trace.Obs.t_dropped
      | `Chrome -> Obs.to_chrome ~wall:(not no_wall) buf trace);
      (match out with
      | "-" -> print_string (Buffer.contents buf)
      | file ->
          let oc = open_out file in
          output_string oc (Buffer.contents buf);
          close_out oc;
          Format.eprintf "trace written to %s (digest %s)@." file dg);
      0
    end
  in
  let replay =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"CASE"
          ~doc:"Trace the replay of one serialized fuzz case.")
  in
  let mc =
    Arg.(
      value & flag
      & info [ "mc" ]
          ~doc:
            "Trace a model-checker run on an all-correct async clock box \
             ($(b,--procs), $(b,--budget), $(b,--jobs)).")
  in
  let cases =
    Arg.(
      value & opt int 10
      & info [ "cases" ] ~docv:"N"
          ~doc:"Campaign mode (the default): number of cases to trace.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains.  The trace digest is identical whatever N; only \
             ambient events (pool scheduling) differ.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "out" ] ~docv:"FILE" ~doc:"Output file ($(b,-) = stdout).")
  in
  let format =
    Arg.(
      value & opt string "jsonl"
      & info [ "format" ] ~docv:"F"
          ~doc:"Sink format: $(b,jsonl) or $(b,chrome) (trace_event JSON).")
  in
  let filters =
    Arg.(
      value & opt (some string) None
      & info [ "filter" ] ~docv:"CATS"
          ~doc:
            "Keep only these event categories (comma-separated subset of \
             sim,fuzz,mc,pool,dist,net).  The digest is computed on the \
             filtered stream.")
  in
  let no_wall =
    Arg.(
      value & flag
      & info [ "no-wall" ]
          ~doc:
            "Scrub the nondeterministic wall-clock and domain fields; the \
             JSONL output is then byte-deterministic (what golden tests pin).")
  in
  let digest_only =
    Arg.(
      value & flag
      & info [ "digest-only" ] ~doc:"Print only the trace digest, no events.")
  in
  let term =
    Term.(
      const run $ replay $ mc $ cases $ seed_arg $ jobs $ procs_arg ~default:3
      $ Arg.(
          value & opt int 6
          & info [ "budget" ] ~docv:"B" ~doc:"Event budget for $(b,--mc).")
      $ out $ format $ filters $ no_wall $ digest_only)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Structured tracing of a fuzz campaign, a case replay, or a \
          model-checker run: JSONL or Chrome trace_event output with a \
          deterministic (jobs-invariant) trace digest.")
    term

(* ------------------------------------------------------------------ *)
(* worker *)

let cmd_worker =
  let run id nemesis =
    match
      match nemesis with
      | None -> Ok Dist.Nemesis.none
      | Some s -> Dist.Nemesis.parse s
    with
    | Error e ->
        Format.eprintf "error: %s@." e;
        1
    | Ok nemesis -> Dist.Worker.run ~id ~nemesis
  in
  let id =
    Arg.(
      value & opt int 0
      & info [ "id" ] ~docv:"N" ~doc:"Worker id (names this worker in nemesis plans).")
  in
  let nemesis =
    Arg.(
      value & opt (some string) None
      & info [ "nemesis" ] ~docv:"PLAN"
          ~doc:"Fault plan this worker should inject on itself (see $(b,abc fuzz --nemesis)).")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Shard worker (normally spawned by $(b,--shards), not by hand): \
          speaks the length-prefixed CRC'd frame protocol on stdin/stdout — \
          spec, unit requests and heartbeats in, unit results out.")
    Term.(const run $ id $ nemesis)

(* ------------------------------------------------------------------ *)
(* serve *)

let cmd_serve =
  let run listen connect id nemesis max_frame once =
    let fail msg =
      Format.eprintf "error: %s@." msg;
      1
    in
    match (listen, connect) with
    | None, None | Some _, Some _ ->
        fail "serve needs exactly one of --listen ADDR or --connect ADDR"
    | _ -> (
        let mode, addr_s =
          match (listen, connect) with
          | Some a, None -> (Dist.Serve.Listen, a)
          | None, Some a -> (Dist.Serve.Connect, a)
          | _ -> assert false
        in
        if max_frame < 1 then fail "--max-frame must be >= 1"
        else
          match Net.Transport.addr_of_string addr_s with
          | Error e -> fail e
          | Ok addr -> (
              match
                match nemesis with
                | None -> Ok Dist.Nemesis.none
                | Some s -> Dist.Nemesis.parse s
              with
              | Error e -> fail e
              | Ok nemesis ->
                  Dist.Serve.run
                    {
                      Dist.Serve.sv_id = id;
                      sv_mode = mode;
                      sv_addr = addr;
                      sv_nemesis = nemesis;
                      sv_max_frame = max_frame;
                      sv_once = once;
                    }))
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Bind $(i,ADDR) ($(b,HOST:PORT) or $(b,unix:PATH)) and serve one \
             campaign connection at a time; the supervisor reaches this \
             worker via $(b,--workers ADDR).")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Dial a supervisor running with $(b,--listen ADDR) and \
             self-register as a worker, redialing with jittered backoff if \
             the connection drops before the campaign ends.")
  in
  let id =
    Arg.(
      value & opt int 0
      & info [ "id" ] ~docv:"N"
          ~doc:"Worker id (names this worker in nemesis plans).")
  in
  let nemesis =
    Arg.(
      value
      & opt (some string) None
      & info [ "nemesis" ] ~docv:"PLAN"
          ~doc:
            "Fault plan this worker injects on itself, including the network \
             faults $(b,nrefuse)/$(b,ndrop)/$(b,npartial)/$(b,ndup) (see \
             $(b,abc fuzz --nemesis)).")
  in
  let max_frame =
    Arg.(
      value & opt int Dist.Frame.max_payload
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Reject frames whose length prefix exceeds this many bytes.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Exit after the first campaign ends instead of serving forever.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Socket shard worker for multi-machine campaigns: the same frame \
          protocol as $(b,abc worker), carried over TCP or Unix-domain \
          sockets, either listening for a supervisor ($(b,--listen)) or \
          self-registering with one ($(b,--connect)).")
    Term.(const run $ listen $ connect $ id $ nemesis $ max_frame $ once)

(* ------------------------------------------------------------------ *)

let () =
  (* re-executed as a shard worker?  enter the loop, never return *)
  Dist.Worker.maybe_run ();
  Dist.Serve.maybe_run ();
  let doc = "laboratory for the Asynchronous Bounded-Cycle model reproduction" in
  let info = Cmd.info "abc" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [ cmd_check; cmd_threshold; cmd_assign; cmd_simulate; cmd_consensus; cmd_detect; cmd_omega; cmd_fuzz; cmd_mc; cmd_trace; cmd_worker; cmd_serve ]))
