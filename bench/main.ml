(* Benchmark & experiment harness.

   Regenerates every figure and theorem-bound of the paper (there are
   no measurement tables; the evaluation artifacts are the ten figures
   and the quantitative bounds of Theorems 1-7).  For each experiment
   id of DESIGN.md the harness prints the measured rows/series next to
   the paper's claim, then runs one Bechamel timing benchmark per
   experiment on its core computational kernel.

   Run with: dune exec bench/main.exe               (reports + timings)
             dune exec bench/main.exe -- reports    (reports only)
             dune exec bench/main.exe -- reports F1 F6 -j 4
                                        (selected sections, 4 workers)
             dune exec bench/main.exe -- pool --cases 1000 --jobs 4
                                        (campaign scaling series -> BENCH_pool.json)

   Report sections print through a domain-local formatter: each
   section renders into its own buffer, so sections can run on pool
   workers in parallel and still print in their canonical order,
   byte-identical to the serial output. *)

open Core
open Execgraph

let q = Rat.of_ints

let out_key : Format.formatter Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Format.std_formatter)

let pr fmt = Format.fprintf (Domain.DLS.get out_key) fmt
let header title = pr "@.==== %s ====@." title

(* ------------------------------------------------------------------ *)
(* Shared scenario builders *)

let fig1_graph () =
  let g = Graph.create ~nprocs:9 in
  let ev p = Graph.add_event g ~proc:p in
  let msg a b = ignore (Graph.add_message g ~src:a.Event.id ~dst:b.Event.id) in
  let phi0 = ev 0 in
  let a1 = ev 1 and a2 = ev 2 and a3 = ev 3 and a4 = ev 4 in
  let psi1 = ev 5 in
  msg phi0 a1; msg a1 a2; msg a2 a3; msg a3 a4; msg a4 psi1;
  let b1 = ev 6 and b2 = ev 7 and b3 = ev 8 in
  let psi2 = ev 5 in
  msg phi0 b1; msg b1 b2; msg b2 b3; msg b3 psi2;
  g

let fig34_graph ~late =
  let g = Graph.create ~nprocs:3 in
  let ev p = Graph.add_event g ~proc:p in
  let msg a b = ignore (Graph.add_message g ~src:a.Event.id ~dst:b.Event.id) in
  let phi0 = ev 0 in
  let tau1 = ev 1 in
  let phi1 = ev 0 in
  let tau2 = ev 1 in
  let sigma = ev 2 in
  let psi, target =
    if late then begin
      let psi = ev 0 in
      let phi'' = ev 0 in
      (psi, phi'')
    end
    else begin
      let phi = ev 0 in
      let psi = ev 0 in
      (psi, phi)
    end
  in
  msg phi0 tau1; msg tau1 phi1; msg phi1 tau2; msg tau2 psi;
  msg phi0 sigma; msg sigma target;
  g

let run_clock_sync ~seed ~nprocs ~f ~faults ~byz ~max_events ~tau_plus =
  let rng = Random.State.make [| seed |] in
  let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus () in
  let cfg =
    Sim.make_config ?byzantine:byz ~nprocs ~algorithm:(Clock_sync.algorithm ~f) ~faults
      ~scheduler ~max_events ()
  in
  Sim.run cfg

let correct_of faults =
  List.filter (fun p -> faults.(p) = Sim.Correct) (List.init (Array.length faults) Fun.id)

(* ------------------------------------------------------------------ *)
(* Experiment reports *)

let report_f1 () =
  header "F1 | Fig. 1: relevant cycle, chain spanning (paper: ratio |Z-|/|Z+| = 5/4)";
  let g = fig1_graph () in
  List.iter
    (fun c ->
      if c.Cycle.relevant then
        pr "  relevant cycle: |Z-| = %d, |Z+| = %d, ratio = %s@." c.Cycle.backward_messages
          c.Cycle.forward_messages
          (Rat.to_string (Cycle.ratio c)))
    (Cycle.enumerate g);
  pr "  admissible Xi=2: %b (expected true), Xi=5/4: %b (expected false)@."
    (Abc_check.is_admissible g ~xi:(q 2 1))
    (Abc_check.is_admissible g ~xi:(q 5 4))

let report_f2 () =
  header "F2 | Fig. 2: cycle addition X (+) Y cancels the mixed edge e";
  let g = Graph.create ~nprocs:4 in
  let ev p = Graph.add_event g ~proc:p in
  let msg a b = Graph.add_message g ~src:a.Event.id ~dst:b.Event.id in
  let u = ev 0 and v = ev 1 and a1 = ev 3 in
  let _w1 = ev 2 and w2 = ev 2 and w3 = ev 2 in
  let _e1 = msg u v and _e4 = msg v a1 in
  let _e5 = msg a1 _w1 in
  let e = msg v w2 in
  let _e3 = msg u w3 in
  let cycles = List.filter (fun c -> c.Cycle.relevant) (Cycle.enumerate g) in
  let with_e =
    List.filter
      (fun c ->
        List.exists
          (fun (t : Digraph.traversal) -> t.edge.id = e.Digraph.id)
          (Cycle.messages g c.Cycle.traversal))
      cycles
  in
  match with_e with
  | [ x; y ] ->
      let s = Cyclespace.sum_vector g [ (1, x); (1, y) ] in
      pr "  X and Y share e: %s@."
        (match Cyclespace.consistency g x y with
        | Cyclespace.O_consistent -> "o-consistent (as in the paper)"
        | Cyclespace.I_consistent -> "i-consistent"
        | Cyclespace.Mixed -> "mixed");
      pr "  coefficient of e in X+Y: %d (expected 0: cancelled)@."
        (Cyclespace.Vector.coeff s e.Digraph.id);
      let outputs = Cyclespace.decompose g [ (1, x); (1, y) ] in
      pr "  mixed-free decomposition verifies: %b@."
        (Cyclespace.verify_decomposition g ~inputs:[ (1, x); (1, y) ] ~outputs)
  | l -> pr "  unexpected cycle count through e: %d@." (List.length l)

let report_f3_f4 () =
  header "F3/F4 | Figs. 3-4: Xi-timeout closes a relevant 4/2 cycle; early reply is non-relevant";
  let late = fig34_graph ~late:true in
  (match Abc_check.check late ~xi:(q 2 1) with
  | Abc_check.Admissible -> pr "  late reply: admissible (unexpected)@."
  | Abc_check.Violation c ->
      pr "  late reply at Xi=2: violation with ratio %s (paper: 4/2)@."
        (Rat.to_string (Cycle.ratio c)));
  let early = fig34_graph ~late:false in
  pr "  early reply at Xi=2: admissible = %b (paper: cycle N non-relevant)@."
    (Abc_check.is_admissible early ~xi:(q 2 1))

let report_f5 () =
  header "F5 | Fig. 5 / Lemma 4: causal cone of Algorithm 1";
  let faults = [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Byzantine "rush5" |] in
  let r =
    run_clock_sync ~seed:42 ~nprocs:4 ~f:1 ~faults
      ~byz:(Some (fun _ -> Clock_sync.byzantine_rusher ~ahead:5))
      ~max_events:400 ~tau_plus:(q 2 1)
  in
  let input = { Clock_sync.result = r; correct = correct_of faults; xi = q 5 2 } in
  let checked, violations = Clock_sync.causal_cone_violations input in
  pr "  (event, tick, sender) triples checked: %d, violations: %d (expected 0)@." checked
    (List.length violations)

let report_f6 () =
  header "F6 | Fig. 6: the linear system Ax < b";
  let g = fig34_graph ~late:true in
  let f6 = Delay_assignment.build_fig6 g ~xi:(q 9 4) in
  let k = Array.length f6.Delay_assignment.message_ids in
  pr "  k = %d messages, %d relevant + %d non-relevant cycle rows, total rows = %d@." k
    f6.Delay_assignment.n_relevant f6.Delay_assignment.n_nonrelevant
    ((2 * k) + f6.Delay_assignment.n_relevant + f6.Delay_assignment.n_nonrelevant);
  (match Delay_assignment.solve_faithful g ~xi:(q 9 4) with
  | Delay_assignment.Assignment d ->
      pr "  feasible at Xi=9/4 (Theorem 12); verification: %b@."
        (Delay_assignment.verify_faithful g ~xi:(q 9 4) d)
  | Delay_assignment.Farkas _ -> pr "  infeasible at Xi=9/4 (unexpected)@.");
  match Delay_assignment.solve_faithful g ~xi:(q 2 1) with
  | Delay_assignment.Assignment _ -> pr "  feasible at Xi=2 (unexpected)@."
  | Delay_assignment.Farkas cert ->
      let sys = (Delay_assignment.build_fig6 g ~xi:(q 2 1)).Delay_assignment.system in
      pr "  infeasible at Xi=2 with Farkas certificate (y^T b = %s, checks: %b)@."
        (Rat.to_string cert.Lp.y_b) (Lp.check_certificate sys cert)

let report_f7 () =
  header "F7 | Fig. 7: cycle vectors of relevant vs non-relevant cycles";
  let g = fig34_graph ~late:false in
  List.iter
    (fun c ->
      let v = Cyclespace.vector_of_cycle g c in
      pr "  %s cycle, vector %a@."
        (if c.Cycle.relevant then "relevant    " else "non-relevant")
        Cyclespace.Vector.pp v)
    (List.filteri (fun i _ -> i < 6) (Cycle.enumerate g))

let report_f8 () =
  header "F8 | Fig. 8: the ABC-vs-ParSync prover game";
  List.iter
    (fun (phi, delta) ->
      let g = Parsync.prover_execution ~phi ~delta in
      let abc_ok = Abc_check.is_admissible g ~xi:(q 6 5) in
      let psync = Parsync.parsync_consistent g ~phi ~delta in
      pr "  adversary (Phi=%2d, Delta=%2d): ABC-admissible(Xi=6/5)=%b, ParSync-consistent=%b -> prover %s@."
        phi delta abc_ok psync
        (if abc_ok && not psync then "wins" else "LOSES"))
    [ (1, 1); (2, 4); (8, 3); (16, 16); (64, 32) ]

let report_f9 () =
  header "F9 | Fig. 9: growing inter-cluster delays (spacecraft formation)";
  let cluster_of p = if p < 2 then 0 else 1 in
  let rng = Random.State.make [| 99 |] in
  let scheduler =
    Sim.growing_scheduler ~rng ~cluster_of ~intra_min:(q 1 1) ~intra_max:(q 2 1)
      ~inter_base:(q 5 1) ~growth_rate:(q 2 1) ()
  in
  let peer p = [| 1; 0; 3; 2 |].(p) in
  let algo : (int, unit) Sim.algorithm =
    {
      init = (fun ~self ~nprocs:_ -> (0, [ { Sim.dst = peer self; payload = () } ]));
      step =
        (fun ~self ~nprocs:_ n ~sender () ->
          if sender = peer self then begin
            let out = [ { Sim.dst = peer self; payload = () } ] in
            let out =
              if (n + 1) mod 5 = 0 then { Sim.dst = (self + 2) mod 4; payload = () } :: out
              else out
            in
            (n + 1, out)
          end
          else (n + 1, []));
    }
  in
  let cfg =
    Sim.make_config ~nprocs:4 ~algorithm:algo ~faults:(Array.make 4 Sim.Correct) ~scheduler
      ~max_events:300 ()
  in
  let r = Sim.run cfg in
  (match Theta_model.static_delay_ratio r.Sim.graph with
  | None -> pr "  delay ratio: undefined@."
  | Some ratio ->
      pr "  static delay ratio tau+/tau- = %s ~ %.1f (grows with run length; no Theta holds)@."
        (Rat.to_string ratio) (Rat.to_float ratio));
  match Abc.max_relevant_ratio r.Sim.graph with
  | None -> pr "  max relevant-cycle ratio <= 1: ABC-admissible for every Xi > 1@."
  | Some m -> pr "  max relevant-cycle ratio = %s (finite: ABC applies)@." (Rat.to_string m)

let report_f10 () =
  header "F10 | Fig. 10: FIFO from the ABC condition (paper: Xi=4, forbidden ratio 5)";
  List.iter
    (fun chatter ->
      let bad = Fifo.build ~n_messages:3 ~chatter ~reordered:(Some 0) () in
      let verdict =
        match Abc_check.check bad.Fifo.graph ~xi:(q 4 1) with
        | Abc_check.Admissible -> "reorder allowed"
        | Abc_check.Violation c ->
            Printf.sprintf "reorder forbidden (cycle ratio %s)" (Rat.to_string (Cycle.ratio c))
      in
      pr "  chatter %d: %s; FIFO guaranteed: %b@." chatter verdict
        (Fifo.fifo_guaranteed ~xi:(q 4 1) ~n_messages:3 ~chatter))
    [ 2; 3; 4; 6 ]

let report_t1 () =
  header "T1 | Theorem 1: progress (final clocks after 600 events)";
  List.iter
    (fun (n, f) ->
      let faults = Array.make n Sim.Correct in
      if f >= 1 then faults.(n - 1) <- Sim.Byzantine "rush4";
      if f >= 2 then faults.(n - 2) <- Sim.Crash 10;
      let byz =
        if f >= 1 then Some (fun _ -> Clock_sync.byzantine_rusher ~ahead:4) else None
      in
      let r = run_clock_sync ~seed:5 ~nprocs:n ~f ~faults ~byz ~max_events:600 ~tau_plus:(q 2 1) in
      let clocks =
        List.map (fun p -> Clock_sync.clock r.Sim.final_states.(p)) (correct_of faults)
      in
      pr "  n=%2d f=%d: correct clocks %s (all grow without bound)@." n f
        (String.concat "," (List.map string_of_int clocks)))
    [ (4, 1); (7, 2); (10, 3) ]

let report_t2 () =
  header "T2/T3 | Theorems 2-3: precision <= 2Xi across Xi (scheduler Theta just below Xi)";
  pr "  %-8s %-10s %-12s %-12s %-8s@." "Xi" "bound 2Xi" "skew (cuts)" "skew (rt)" "ok";
  List.iter
    (fun x ->
      let faults = [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Byzantine "rush6" |] in
      let r =
        run_clock_sync ~seed:8 ~nprocs:4 ~f:1 ~faults
          ~byz:(Some (fun _ -> Clock_sync.byzantine_rusher ~ahead:6))
          ~max_events:300
          ~tau_plus:(Rat.sub x (q 1 4))
      in
      let input = { Clock_sync.result = r; correct = correct_of faults; xi = x } in
      let bound = Rat.floor_int (Rat.mul Rat.two x) in
      let s1 = Clock_sync.max_skew_on_cuts input in
      let s2 = Clock_sync.max_skew_realtime input in
      pr "  %-8s %-10d %-12d %-12d %-8b@." (Rat.to_string x) bound s1 s2
        (s1 <= bound && s2 <= bound))
    [ q 3 2; q 2 1; q 5 2; q 3 1 ]

let report_t4 () =
  header "T4 | Theorem 4: bounded progress rho = 4Xi + 1";
  let faults = Array.make 4 Sim.Correct in
  let r = run_clock_sync ~seed:4 ~nprocs:4 ~f:1 ~faults ~byz:None ~max_events:260 ~tau_plus:(q 2 1) in
  let input = { Clock_sync.result = r; correct = [ 0; 1; 2; 3 ]; xi = q 5 2 } in
  let checked, violations = Clock_sync.bounded_progress_violations input in
  pr "  rho = %d; intervals checked: %d; violations: %d (expected 0)@."
    (Rat.ceil_int (Rat.add (Rat.mul (q 4 1) (q 5 2)) Rat.one))
    checked (List.length violations)

let report_t5 () =
  header "T5 | Theorem 5: lock-step round simulation";
  List.iter
    (fun (label, faults, byz) ->
      let r =
        let rng = Random.State.make [| 31 |] in
        let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) () in
        let cfg =
          Sim.make_config ?byzantine:byz ~nprocs:4
            ~algorithm:(Lockstep.algorithm ~f:1 ~xi:(q 5 2) Lockstep.noop_round_algo)
            ~faults ~scheduler ~max_events:700 ()
        in
        Sim.run cfg
      in
      let correct = correct_of faults in
      let rounds = Lockstep.rounds_reached r ~correct in
      let checked, violations = Lockstep.lockstep_violations r ~correct in
      pr "  %-22s rounds %s; starts checked %d; violations %d@." label
        (String.concat "," (List.map (fun (_, x) -> string_of_int x) rounds))
        checked (List.length violations))
    [
      ("fault-free", Array.make 4 Sim.Correct, None);
      ("one crash", [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Crash 12 |], None);
      ( "one byzantine",
        [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Byzantine "noop" |],
        Some (fun _ -> Lockstep.algorithm ~f:1 ~xi:(q 5 2) Lockstep.noop_round_algo) );
    ]

let report_t6 () =
  header "T6 | Theorem 6: M_Theta subset of M_ABC (and the converse fails)";
  let ok = ref 0 and total = 20 in
  for seed = 1 to total do
    let faults = Array.make 3 Sim.Correct in
    let r = run_clock_sync ~seed ~nprocs:3 ~f:0 ~faults ~byz:None ~max_events:100 ~tau_plus:(q 2 1) in
    if Theta_model.subset_of_abc r.Sim.graph ~theta:(q 2 1) ~xi:(q 9 4) then incr ok
  done;
  pr "  %d/%d random Theta(1,2) executions ABC-admissible at Xi=9/4 (expected all)@." !ok total;
  let g = Parsync.prover_execution ~phi:8 ~delta:8 in
  pr "  converse witness: isolated-slow-message execution ABC-admissible(6/5)=%b; no Theta admits it@."
    (Abc_check.is_admissible g ~xi:(q 6 5))

let report_t7 () =
  header "T7 | Theorems 7/12: normalized delay assignment on random graphs";
  let solved = ref 0 and rejected = ref 0 and agree = ref 0 in
  let total = 40 in
  for seed = 1 to total do
    let rng = Random.State.make [| seed |] in
    let g = Generate.random_execution rng ~nprocs:3 ~max_events:12 ~max_delay:3 ~fanout:2 in
    let x = q 2 1 in
    let fast = Delay_assignment.solve_fast g ~xi:x in
    let faithful =
      match Delay_assignment.solve_faithful g ~xi:x with
      | Delay_assignment.Assignment _ -> true
      | Delay_assignment.Farkas _ -> false
    in
    (match fast with
    | Some a -> if Delay_assignment.verify g ~xi:x a then incr solved
    | None -> incr rejected);
    if (fast <> None) = faithful then incr agree
  done;
  pr "  %d solved+verified, %d rejected (inadmissible), fast/faithful agreement %d/%d@."
    !solved !rejected !agree total

let report_t11 () =
  header "T11 | Theorem 11 / Corollary 1: mixed-free decompositions";
  let rng = Random.State.make [| 123 |] in
  let oks = ref 0 and total = ref 0 in
  for _ = 1 to 25 do
    let g = Generate.random_execution rng ~nprocs:3 ~max_events:12 ~max_delay:3 ~fanout:2 in
    let relevant = List.filter (fun c -> c.Cycle.relevant) (Cycle.enumerate g) in
    if relevant <> [] then begin
      incr total;
      let inputs = List.map (fun c -> (1, c)) relevant in
      let outputs = Cyclespace.decompose g inputs in
      if Cyclespace.verify_decomposition g ~inputs ~outputs then incr oks
    end
  done;
  pr "  decompositions verified: %d/%d@." !oks !total

let report_c1 () =
  header "C1 | Consensus over lock-step rounds (EIG, n=4, one Byzantine)";
  let inputs = [| 1; 1; 1; 0 |] in
  let rng = Random.State.make [| 17 |] in
  let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) () in
  let algo = Consensus.Eig.algo ~f:1 ~value:(fun p -> inputs.(p)) in
  let byz =
    let real = Consensus.Eig.algo ~f:1 ~value:(fun _ -> 0) in
    Lockstep.algorithm ~f:1 ~xi:(q 5 2)
      {
        Lockstep.r_init =
          (fun ~self ~nprocs ->
            let st, _ = real.Lockstep.r_init ~self ~nprocs in
            (st, [ ([], 0) ]));
        r_step =
          (fun ~self ~nprocs:_ ~round st _ ->
            (st, List.init round (fun i -> ([ (self + i) mod 4 ], i mod 2))));
      }
  in
  let cfg =
    Sim.make_config ~byzantine:(fun _ -> byz) ~nprocs:4
      ~algorithm:(Lockstep.algorithm ~f:1 ~xi:(q 5 2) algo)
      ~faults:[| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Byzantine "forger" |]
      ~scheduler ~max_events:4000
      ~stop_when:(fun states ->
        List.for_all
          (fun p -> Consensus.Eig.decision (Lockstep.round_state states.(p)) <> None)
          [ 0; 1; 2 ])
      ()
  in
  let r = Sim.run cfg in
  let decisions =
    List.map
      (fun p -> (p, Consensus.Eig.decision (Lockstep.round_state r.Sim.final_states.(p))))
      [ 0; 1; 2 ]
  in
  pr "  decisions: %s; agreement+validity: %b (inputs of correct procs all 1)@."
    (String.concat ","
       (List.map (fun (_, d) -> match d with Some v -> string_of_int v | None -> "-") decisions))
    (Consensus.check_agreement decisions ~inputs:[ 1; 1; 1 ])

let report_v1 () =
  header "V1 | Section 6 variants";
  let g = fig34_graph ~late:true in
  (match Variants.eventually_admissible g ~xi:(q 2 1) with
  | Some k -> pr "  eventually-ABC: violating prefix of %d events cut away (C_GST found)@." k
  | None -> pr "  eventually-ABC: no admissible suffix (unexpected)@.");
  let open Variants.Xi_learner in
  let l = create ~initial:(q 3 2) in
  let l = observe l ~ratio:(q 2 1) ~margin:(q 1 2) in
  pr "  ?ABC learner: after observing ratio 2, estimate = %s (%d revisions)@."
    (Rat.to_string (estimate l)) (revisions l);
  let g1 = fig1_graph () in
  pr "  bounded-cycle ABC (<=2 forward msgs): fig.1 graph admissible at 5/4: %b (full model: %b)@."
    (Variants.admissible_bounded_cycles g1 ~xi:(q 5 4) ~max_forward:2)
    (Abc_check.is_admissible g1 ~xi:(q 5 4))


(* ------------------------------------------------------------------ *)
(* Sweep-series experiments *)

let report_s1 () =
  header "S1 | Failure-detection latency vs Xi (Fig. 3 mechanism)";
  pr "  %-8s %-22s %-26s@." "Xi" "chain before verdict" "max adversarial deferral";
  List.iter
    (fun x ->
      let chain = Rat.ceil_int (Rat.mul Rat.two x) in
      let defer = Scenarios.max_reply_deferral ~xi:x in
      pr "  %-8s %-22d %-26d@." (Rat.to_string x) chain defer)
    [ q 3 2; q 2 1; q 5 2; q 3 1; q 4 1; q 11 2 ];
  pr "  (latency grows linearly with Xi: the paper's trade-off between@.";
  pr "   weaker synchrony and slower detection)@."

let report_s2 () =
  header "S2 | Clock precision vs system size (Theorem 2, Xi = 5/2)";
  pr "  %-6s %-6s %-14s %-12s@." "n" "f" "skew (cuts)" "bound 2Xi";
  List.iter
    (fun (n, f) ->
      let faults = Array.make n Sim.Correct in
      if f >= 1 then faults.(n - 1) <- Sim.Byzantine "rush5";
      let byz =
        if f >= 1 then Some (fun _ -> Clock_sync.byzantine_rusher ~ahead:5) else None
      in
      let r = run_clock_sync ~seed:9 ~nprocs:n ~f ~faults ~byz ~max_events:(60 * n) ~tau_plus:(q 2 1) in
      let input = { Clock_sync.result = r; correct = correct_of faults; xi = q 5 2 } in
      pr "  %-6d %-6d %-14d %-12d@." n f (Clock_sync.max_skew_on_cuts input) 5)
    [ (4, 1); (7, 2); (10, 3); (13, 4) ]

let report_s3 () =
  header "S3 | FIFO chatter threshold vs Xi (Fig. 10 crossover)";
  pr "  %-8s %-30s@." "Xi" "min chatter guaranteeing FIFO";
  List.iter
    (fun x ->
      (* the builder's minimum chain is 2 messages, so start there *)
      let rec find c = if c > 12 then None else if Fifo.fifo_guaranteed ~xi:x ~n_messages:3 ~chatter:c then Some c else find (c + 1) in
      (match find 2 with
      | Some c -> pr "  %-8s %-30d@." (Rat.to_string x) c
      | None -> pr "  %-8s (none up to 12)@." (Rat.to_string x)))
    [ q 2 1; q 5 2; q 3 1; q 4 1; q 5 1; q 6 1 ];
  pr "  (the reorder cycle has ratio chatter+1, so the threshold is max(2, ceil(Xi)-1);@.";
  pr "   stronger synchrony (smaller Xi) needs less chatter -- the crossover shape)@."

let report_s4 () =
  header "S4 | Eventual lock-step: first stable round vs GST (doubling rounds, Section 6)";
  pr "  %-10s %-22s %-14s@." "gst" "first lock-step round" "rounds reached";
  List.iter
    (fun gst ->
      let rng = Random.State.make [| 5 |] in
      let scheduler =
        Sim.eventually_theta_scheduler ~rng ~gst:(q gst 1) ~chaos_max:(q 80 1)
          ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) ()
      in
      let algo =
        Lockstep.algorithm_scheduled ~f:1 ~schedule:(Lockstep.doubling_schedule 2)
          Lockstep.noop_round_algo
      in
      let cfg =
        Sim.make_config ~nprocs:4 ~algorithm:algo ~faults:(Array.make 4 Sim.Correct)
          ~scheduler ~max_events:2200 ()
      in
      let r = Sim.run cfg in
      let correct = [ 0; 1; 2; 3 ] in
      let first_ok = Lockstep.first_lockstep_round r ~correct in
      let maxr =
        List.fold_left (fun acc (_, x) -> max acc x) 0 (Lockstep.rounds_reached r ~correct)
      in
      pr "  %-10d %-22d %-14d@." gst first_ok maxr)
    [ 0; 10; 40; 80 ]

let report_s5 () =
  header "S5 | Related models under the same executions (Section 5.2)";
  pr "  %-22s %-18s %-18s %-18s@." "scheduler" "MMR holds (f=1)" "MCM split exists"
    "ABC admissible(3)";
  List.iter
    (fun (label, mk) ->
      let mmr_ok = ref 0 and mcm_ok = ref 0 and abc_ok = ref 0 and total = 10 in
      for seed = 1 to total do
        let rng = Random.State.make [| seed |] in
        let scheduler : Related_models.Query_rounds.msg Sim.scheduler = mk rng in
        let cfg =
          Sim.make_config ~nprocs:4
            ~algorithm:(Related_models.Query_rounds.algorithm ~rounds:6)
            ~faults:(Array.make 4 Sim.Correct) ~scheduler ~max_events:700 ()
        in
        let r = Sim.run cfg in
        let rounds = Related_models.Query_rounds.rounds r.Sim.final_states.(0) in
        if Related_models.mmr_holds ~n:4 ~f:1 rounds then incr mmr_ok;
        let delays =
          List.map (fun (_, _, _, d) -> d) (Theta_model.message_delays r.Sim.graph)
        in
        if Related_models.mcm_split delays <> None then incr mcm_ok;
        if Abc_check.is_admissible r.Sim.graph ~xi:(q 3 1) then incr abc_ok
      done;
      pr "  %-22s %2d/%-15d %2d/%-15d %2d/%-15d@." label !mmr_ok total !mcm_ok total
        !abc_ok total)
    [
      ("Theta(1, 5/2)", fun rng -> Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 5 2) ());
      ("async [0, 12]", fun rng -> Sim.async_scheduler ~rng ~max_delay:(q 12 1) ());
    ];
  pr "  (MMR needs a fixed quorum to always answer first -- rare under any@.";
  pr "   symmetric scheduler; MCM needs a factor-2 delay gap -- absent under@.";
  pr "   tight Theta but common under wide asynchrony; the ABC condition holds@.";
  pr "   whenever relevant-cycle ratios stay below Xi.  The models are@.";
  pr "   incomparable, cf. Section 5.2)@."

let report_s6 () =
  header "S6 | Omega leader election (Lemma 4 as an eventually-perfect detector)";
  List.iter
    (fun (label, faults, correct) ->
      let rng = Random.State.make [| 13 |] in
      let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) () in
      let cfg =
        Sim.make_config ~nprocs:4
          ~algorithm:(Omega.algorithm ~f:1 ~xi:(q 5 2))
          ~faults ~scheduler ~max_events:500 ()
      in
      let r = Sim.run cfg in
      let _, expected, agree = Omega.converged r ~correct in
      pr "  %-18s leader converged to p%d at all correct: %b; accuracy: %b@." label
        expected agree
        (Omega.no_false_suspicions r ~correct))
    [
      ("fault-free", Array.make 4 Sim.Correct, [ 0; 1; 2; 3 ]);
      ("p0 crashes", [| Sim.Crash 2; Sim.Correct; Sim.Correct; Sim.Correct |], [ 1; 2; 3 ]);
      ( "p0, p1 lag then die",
        [| Sim.Crash 6; Sim.Correct; Sim.Correct; Sim.Correct |],
        [ 1; 2; 3 ] );
    ]

let report_s7 () =
  header "S7 | Checker scaling: polynomial check vs execution size";
  pr "  %-10s %-10s %-12s %-16s@." "events" "messages" "admissible" "max ratio";
  List.iter
    (fun events ->
      let rng = Random.State.make [| 2 |] in
      let g = Generate.random_execution rng ~nprocs:5 ~max_events:events ~max_delay:3 ~fanout:3 in
      let adm = Abc_check.is_admissible g ~xi:(q 3 1) in
      let ratio =
        match Abc.max_relevant_ratio g with None -> "<=1" | Some r -> Rat.to_string r
      in
      pr "  %-10d %-10d %-12b %-16s@." (Graph.event_count g) (Graph.message_count g) adm ratio)
    [ 50; 100; 200; 400; 800 ]


let report_s8 () =
  header "S8 | Oracle-guided deferring adversary (admissibility boundary)";
  pr "  %-8s %-14s %-18s %-20s@." "Xi" "admissible" "victim events" "max relevant ratio";
  List.iter
    (fun x ->
      let cfg =
        Sim.make_config ~nprocs:4
          ~algorithm:(Clock_sync.algorithm ~f:1)
          ~faults:(Array.make 4 Sim.Correct)
          ~scheduler:(Sim.constant_scheduler (q 1 1))
          ~max_events:240 ()
      in
      (* defer everything the "slow" process 3 sends: the rest of the
         system can progress without it (n - f = 3), so its ticks
         arrive as late as the ABC condition allows, like pslow's reply
         in Fig. 3 *)
      let r = Sim.run_deferring cfg ~xi:x ~victim:(fun ~sender ~dst:_ -> sender = 3) in
      let adm = Abc_check.is_admissible r.Sim.graph ~xi:x in
      let victim_events = List.length (Graph.events_of_proc r.Sim.graph 3) in
      let ratio =
        match Abc.max_relevant_ratio r.Sim.graph with
        | None -> "<=1"
        | Some m -> Rat.to_string m
      in
      pr "  %-8s %-14b %-18d %-20s@." (Rat.to_string x) adm victim_events ratio)
    [ q 3 2; q 2 1; q 3 1; q 5 1 ];
  pr "  (the adversary starves the victim while staying exactly admissible;@.";
  pr "   larger Xi permits longer deferral -- the weak-synchrony price)@."

let report_z1 () =
  header "Z1 | Property-based fuzzer: bounded campaign over the theorem oracles";
  (* jobs:1 — this may itself run on a pool worker, and nested
     submission is rejected by design *)
  let outcome = Fuzz.Campaign.run ~shrink:false ~cases:25 ~seed:7 ~jobs:1 () in
  pr "%s" (Fuzz.Report.render outcome);
  pr "  (deterministic: `abc fuzz --seed 7 --cases 25` reproduces this report)@."

(* Every report section, keyed by the experiment id of DESIGN.md; the
   list order is the canonical output order. *)
let all_reports =
  [
    ("F1", report_f1);
    ("F2", report_f2);
    ("F3", report_f3_f4);
    ("F5", report_f5);
    ("F6", report_f6);
    ("F7", report_f7);
    ("F8", report_f8);
    ("F9", report_f9);
    ("F10", report_f10);
    ("T1", report_t1);
    ("T2", report_t2);
    ("T4", report_t4);
    ("T5", report_t5);
    ("T6", report_t6);
    ("T7", report_t7);
    ("T11", report_t11);
    ("C1", report_c1);
    ("V1", report_v1);
    ("S1", report_s1);
    ("S2", report_s2);
    ("S3", report_s3);
    ("S4", report_s4);
    ("S5", report_s5);
    ("S6", report_s6);
    ("S7", report_s7);
    ("S8", report_s8);
    ("Z1", report_z1);
  ]

(* Render one section into a string, on whatever domain this runs on:
   point the domain-local formatter at a buffer for the duration. *)
let render_section f =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  let saved = Domain.DLS.get out_key in
  Domain.DLS.set out_key fmt;
  Fun.protect
    ~finally:(fun () ->
      Format.pp_print_flush fmt ();
      Domain.DLS.set out_key saved)
    f;
  Buffer.contents buf

let run_reports ?(jobs = 1) ?(only = []) () =
  let selected =
    match only with
    | [] -> all_reports
    | ids ->
        List.iter
          (fun id ->
            if not (List.mem_assoc id all_reports) then begin
              Format.eprintf "error: unknown report section %S (have: %s)@." id
                (String.concat " " (List.map fst all_reports));
              exit 2
            end)
          ids;
        List.filter (fun (id, _) -> List.mem id ids) all_reports
  in
  pr "ABC model reproduction: experiment reports@.";
  let sections = Array.of_list selected in
  let rendered =
    Pool.map ~jobs ~chunk:1 (Array.length sections) (fun i ->
        render_section (snd sections.(i)))
  in
  Format.print_flush ();
  Array.iter print_string rendered;
  pr "@.All experiment reports done.@.";
  Format.print_flush ()

(* ------------------------------------------------------------------ *)
(* Bechamel timing benchmarks: one per experiment kernel *)

let bench_tests () =
  let open Bechamel in
  let fig1 = fig1_graph () in
  let fig3 = fig34_graph ~late:true in
  let mk_sim_graph events =
    let rng = Random.State.make [| 1 |] in
    Generate.random_execution rng ~nprocs:4 ~max_events:events ~max_delay:3 ~fanout:2
  in
  let g200 = mk_sim_graph 200 in
  let g20 = mk_sim_graph 20 in
  let faults4 = Array.make 4 Sim.Correct in
  [
    Test.make ~name:"F1_fig1_poly_check"
      (Staged.stage (fun () -> Abc_check.is_admissible fig1 ~xi:(q 2 1)));
    Test.make ~name:"F1_fig1_enum_check"
      (Staged.stage (fun () ->
           match Abc_check.check_enumerate fig1 ~xi:(q 2 1) with
           | Abc_check.Admissible -> true
           | _ -> false));
    Test.make ~name:"F2_cycle_decompose_20ev"
      (Staged.stage (fun () ->
           let relevant = List.filter (fun c -> c.Cycle.relevant) (Cycle.enumerate g20) in
           match relevant with
           | [] -> 0
           | l -> List.length (Cyclespace.decompose g20 (List.map (fun c -> (1, c)) l))));
    Test.make ~name:"F3_timeout_detector_run"
      (Staged.stage (fun () ->
           let rng = Random.State.make [| 3 |] in
           let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 2 1) ~tau_plus:(q 3 1) () in
           let cfg =
             Sim.make_config ~nprocs:4
               ~algorithm:(Failure_detector.algorithm ~xi:(q 2 1) ~rounds:1)
               ~faults:[| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Crash 1 |]
               ~scheduler ~max_events:200 ()
           in
           (Sim.run cfg).Sim.delivered));
    Test.make ~name:"F6_lp_simplex"
      (Staged.stage (fun () ->
           match Delay_assignment.solve_faithful fig3 ~xi:(q 9 4) with
           | Delay_assignment.Assignment d -> List.length d
           | Delay_assignment.Farkas _ -> 0));
    Test.make ~name:"F6_lp_fourier_motzkin"
      (Staged.stage (fun () ->
           match Delay_assignment.solve_faithful ~engine:`Fourier_motzkin fig3 ~xi:(q 9 4) with
           | Delay_assignment.Assignment d -> List.length d
           | Delay_assignment.Farkas _ -> 0));
    Test.make ~name:"F8_prover_game"
      (Staged.stage (fun () -> Parsync.prover_wins ~phi:16 ~delta:16 ~xi:(q 6 5)));
    Test.make ~name:"F10_fifo_guarantee"
      (Staged.stage (fun () -> Fifo.fifo_guaranteed ~xi:(q 4 1) ~n_messages:3 ~chatter:4));
    Test.make ~name:"T1_clock_sync_600ev"
      (Staged.stage (fun () ->
           let r =
             run_clock_sync ~seed:5 ~nprocs:4 ~f:1 ~faults:faults4 ~byz:None ~max_events:600
               ~tau_plus:(q 2 1)
           in
           Clock_sync.clock r.Sim.final_states.(0)));
    Test.make ~name:"T2_skew_analysis_150ev"
      (Staged.stage
         (let r =
            run_clock_sync ~seed:8 ~nprocs:4 ~f:1 ~faults:faults4 ~byz:None ~max_events:150
              ~tau_plus:(q 2 1)
          in
          let input = { Clock_sync.result = r; correct = [ 0; 1; 2; 3 ]; xi = q 5 2 } in
          fun () -> Clock_sync.max_skew_on_cuts input));
    Test.make ~name:"T5_lockstep_700ev"
      (Staged.stage (fun () ->
           let rng = Random.State.make [| 31 |] in
           let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) () in
           let cfg =
             Sim.make_config ~nprocs:4
               ~algorithm:(Lockstep.algorithm ~f:1 ~xi:(q 5 2) Lockstep.noop_round_algo)
               ~faults:faults4 ~scheduler ~max_events:700 ()
           in
           (Sim.run cfg).Sim.delivered));
    Test.make ~name:"T6_admissibility_200ev"
      (Staged.stage (fun () -> Abc_check.is_admissible g200 ~xi:(q 2 1)));
    Test.make ~name:"T7_fast_assignment_200ev"
      (Staged.stage (fun () -> Delay_assignment.solve_fast g200 ~xi:(q 4 1) <> None));
    Test.make ~name:"T7_max_ratio_200ev"
      (Staged.stage (fun () ->
           match Abc.max_relevant_ratio g200 with None -> "none" | Some r -> Rat.to_string r));
    Test.make ~name:"C1_eig_sync_n7_f2"
      (Staged.stage (fun () ->
           let behaviors = Array.make 7 Consensus.B_correct in
           behaviors.(6) <-
             Consensus.B_byzantine (fun ~round:_ ~dst -> Some [ ([], dst mod 2) ]);
           let inputs = [| 1; 0; 1; 0; 1; 0; 1 |] in
           let algo = Consensus.Eig.algo ~f:2 ~value:(fun p -> inputs.(p)) in
           List.length (Consensus.run_synchronous ~nprocs:7 ~behaviors ~algo ~nrounds:3)));
    Test.make ~name:"Z1_fuzz_case_eval_150ev"
      (Staged.stage
         (let case =
            {
              Fuzz.Gen.c_seed = 11;
              c_nprocs = 4;
              c_faults = Array.make 4 Sim.Correct;
              c_xi = q 2 1;
              c_sched = Fuzz.Gen.S_theta { tau_minus = q 1 1; tau_plus = q 3 2 };
              c_workload = Fuzz.Gen.W_clock;
              c_max_events = 150;
              c_plan = [];
              c_boundary = false;
              c_schedule = [];
            }
          in
          fun () -> List.length (Fuzz.Oracle.evaluate Fuzz.Oracle.registry case)));
  ]

let run_benchmarks () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  pr "@.==== Bechamel timings (monotonic clock) ====@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> pr "  %-34s %12.1f ns/run@." name t
          | _ -> pr "  %-34s (no estimate)@." name)
        results)
    (bench_tests ())

(* ------------------------------------------------------------------ *)
(* Pool scaling series: the same fuzz campaign at jobs=1 and jobs=J,
   byte-compared, timed, and recorded as a JSON series so the perf
   trajectory of the parallel runner has data across PRs. *)

type pool_point = {
  pp_jobs : int;
  pp_wall : float;
  pp_case_wall_total : float;
  pp_case_wall_max : float;
  pp_alloc_words : float;
}

let pool_point ~jobs ~seed ~cases =
  let t0 = Pool.now () in
  let o = Fuzz.Campaign.run ~shrink:false ~cases ~seed ~jobs () in
  let wall = Pool.now () -. t0 in
  let c = o.Fuzz.Campaign.cp_cost in
  ( o,
    {
      pp_jobs = jobs;
      pp_wall = wall;
      pp_case_wall_total =
        Array.fold_left ( +. ) 0.0 c.Fuzz.Campaign.ct_case_wall;
      pp_case_wall_max =
        Array.fold_left max 0.0 c.Fuzz.Campaign.ct_case_wall;
      pp_alloc_words = Array.fold_left ( +. ) 0.0 c.Fuzz.Campaign.ct_case_alloc;
    } )

let pool_json ?note ~seed ~cases ~identical ~speedup points =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "{\n  \"bench\": \"pool_campaign\",\n  \"seed\": %d,\n  \"cases\": %d,\n\
    \  \"cores\": %d,\n  \"identical_reports\": %b,\n  \"speedup\": %.3f,\n"
    seed cases (Pool.recommended_jobs ()) identical speedup;
  (match note with
  | None -> ()
  | Some n -> Printf.bprintf buf "  \"note\": %S,\n" n);
  Buffer.add_string buf "  \"series\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf buf
        "    {\"jobs\": %d, \"wall_s\": %.3f, \"case_wall_total_s\": %.3f, \
         \"case_wall_max_s\": %.4f, \"alloc_mwords\": %.1f}%s\n"
        p.pp_jobs p.pp_wall p.pp_case_wall_total p.pp_case_wall_max
        (p.pp_alloc_words /. 1e6)
        (if i = List.length points - 1 then "" else ","))
    points;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_file out contents =
  let oc = open_out out in
  output_string oc contents;
  close_out oc

let run_pool_bench ~seed ~cases ~jobs ~out =
  let cores = Pool.recommended_jobs () in
  if cores < 2 then begin
    (* Single-core container: a multi-job run measures only scheduling
       noise, so record the serial point and say why the series is
       short rather than publishing a meaningless "speedup". *)
    Format.printf
      "pool campaign series: seed=%d cases=%d; 1 core available, skipping \
       jobs=%d run@."
      seed cases jobs;
    let _, p1 = pool_point ~jobs:1 ~seed ~cases in
    Format.printf "  jobs=1: %.2fs@." p1.pp_wall;
    let json =
      pool_json ~note:"single core available: multi-job run skipped" ~seed
        ~cases ~identical:true ~speedup:1.0 [ p1 ]
    in
    write_file out json;
    Format.printf "  series written to %s@." out
  end
  else begin
    Format.printf "pool campaign series: seed=%d cases=%d jobs=1 vs jobs=%d@."
      seed cases jobs;
    let o1, p1 = pool_point ~jobs:1 ~seed ~cases in
    Format.printf "  jobs=1: %.2fs@." p1.pp_wall;
    let oj, pj = pool_point ~jobs ~seed ~cases in
    Format.printf "  jobs=%d: %.2fs@." jobs pj.pp_wall;
    let identical = Fuzz.Report.render o1 = Fuzz.Report.render oj in
    let speedup = p1.pp_wall /. pj.pp_wall in
    Format.printf "  byte-identical reports: %b; speedup: %.2fx@." identical
      speedup;
    let json = pool_json ~seed ~cases ~identical ~speedup [ p1; pj ] in
    write_file out json;
    Format.printf "  series written to %s@." out;
    if not identical then begin
      Format.eprintf "error: parallel report diverged from the serial one@.";
      exit 1
    end
  end

(* ------------------------------------------------------------------ *)
(* Rat fast-path series: micro-benchmarks of the small-rational
   representation and the incremental admissibility checker, plus the
   end-to-end 100-case Z1 campaign measured against the recorded
   pre-fast-path baseline (same container, commit 291c93e). *)

let rat_baseline_wall_s = 26.191
let rat_baseline_alloc_mwords = 5045.33

let rat_micro_tests () =
  let open Bechamel in
  let a = q 355 113 and b = q 113 355 in
  let big =
    Rat.make
      (Bigint.of_string "123456789012345678901234567890")
      (Bigint.of_string "98765432109876543210987654321")
  in
  let rng = Random.State.make [| 1 |] in
  let g200 =
    Generate.random_execution rng ~nprocs:4 ~max_events:200 ~max_delay:3
      ~fanout:2
  in
  let checker = Abc_check.Checker.create g200 ~xi:(q 2 1) in
  ignore (Abc_check.Checker.is_admissible checker);
  [
    Test.make ~name:"rat_add_small" (Staged.stage (fun () -> Rat.add a b));
    Test.make ~name:"rat_mul_small" (Staged.stage (fun () -> Rat.mul a b));
    Test.make ~name:"rat_div_small" (Staged.stage (fun () -> Rat.div a b));
    Test.make ~name:"rat_compare_small"
      (Staged.stage (fun () -> Rat.compare a b));
    Test.make ~name:"rat_add_big" (Staged.stage (fun () -> Rat.add big b));
    Test.make ~name:"rat_mul_big" (Staged.stage (fun () -> Rat.mul big big));
    Test.make ~name:"check_scratch_200ev"
      (Staged.stage (fun () -> Abc_check.is_admissible g200 ~xi:(q 2 1)));
    Test.make ~name:"checker_query_200ev"
      (Staged.stage (fun () -> Abc_check.Checker.is_admissible checker));
    Test.make ~name:"checker_spec_roundtrip_200ev"
      (Staged.stage (fun () ->
           Abc_check.Checker.spec_begin checker;
           ignore (Abc_check.Checker.spec_add_event checker ~proc:0);
           let ok = Abc_check.Checker.spec_admissible checker in
           Abc_check.Checker.spec_abort checker;
           ok));
    Test.make ~name:"max_ratio_200ev"
      (Staged.stage (fun () -> Abc.max_relevant_ratio g200 <> None));
  ]

let measure_micro tests =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.fold
        (fun name raw acc ->
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:false
              ~predictors:[| Measure.run |]
          in
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> (name, t) :: acc
          | _ -> acc)
        results [])
    tests

let run_rat_bench ~out =
  Format.printf "rat fast-path series: 100-case Z1 campaign + micro@.";
  (* End-to-end first: the Bechamel runs leave a large major heap
     behind, which would tax the campaign's GC and skew the number
     that the baseline comparison hangs on. *)
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Pool.now () in
  let o = Fuzz.Campaign.run ~shrink:false ~cases:100 ~seed:1 ~jobs:1 () in
  let wall = Pool.now () -. t0 in
  let alloc_mwords = (Gc.allocated_bytes () -. alloc0) /. 8.0 /. 1e6 in
  let failures = List.length o.Fuzz.Campaign.cp_failures in
  let micro = measure_micro (rat_micro_tests ()) in
  List.iter
    (fun (name, ns) -> Format.printf "  %-30s %12.1f ns/run@." name ns)
    micro;
  let speedup = rat_baseline_wall_s /. wall in
  let alloc_reduction = rat_baseline_alloc_mwords /. alloc_mwords in
  Format.printf
    "  campaign: %.3fs (baseline %.3fs, %.2fx), %.1f Mwords (baseline %.1f, \
     %.2fx), %d failures@."
    wall rat_baseline_wall_s speedup alloc_mwords rat_baseline_alloc_mwords
    alloc_reduction failures;
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "{\n  \"bench\": \"rat_fastpath\",\n  \"campaign\": {\n    \"cases\": 100,\n\
    \    \"seed\": 1,\n    \"jobs\": 1,\n    \"wall_s\": %.3f,\n\
    \    \"alloc_mwords\": %.2f,\n    \"failures\": %d,\n\
    \    \"baseline_wall_s\": %.3f,\n    \"baseline_alloc_mwords\": %.2f,\n\
    \    \"speedup\": %.2f,\n    \"alloc_reduction\": %.2f\n  },\n\
    \  \"micro_ns_per_run\": [\n"
    wall alloc_mwords failures rat_baseline_wall_s rat_baseline_alloc_mwords
    speedup alloc_reduction;
  List.iteri
    (fun i (name, ns) ->
      Printf.bprintf buf "    {\"name\": %S, \"ns\": %.1f}%s\n" name ns
        (if i = List.length micro - 1 then "" else ","))
    micro;
  Buffer.add_string buf "  ]\n}\n";
  write_file out (Buffer.contents buf);
  Format.printf "  series written to %s@." out

(* ------------------------------------------------------------------ *)
(* Nemesis series: the 100-case Z1 campaign under the full fault
   palette (structured byzantine strategies, omission, recovery,
   message-level plans) against the pre-nemesis baseline (same
   container, commit 09ecc2e), plus the boundary campaign that must
   witness violations at n = 3f. *)

let byz_baseline_wall_s = 4.249
let byz_baseline_alloc_mwords = 302.48

let run_byz_bench ~out =
  Format.printf "nemesis series: 100-case Z1 campaign + n = 3f boundary campaign@.";
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Pool.now () in
  let o = Fuzz.Campaign.run ~shrink:false ~cases:100 ~seed:1 ~jobs:1 () in
  let wall = Pool.now () -. t0 in
  let alloc_mwords = (Gc.allocated_bytes () -. alloc0) /. 8.0 /. 1e6 in
  let failures = List.length o.Fuzz.Campaign.cp_failures in
  let bt0 = Pool.now () in
  let ob = Fuzz.Campaign.run ~shrink:false ~boundary:true ~cases:50 ~seed:1 ~jobs:1 () in
  let bwall = Pool.now () -. bt0 in
  let fails_of name =
    match List.assoc_opt name ob.Fuzz.Campaign.cp_stats with
    | Some s -> s.Fuzz.Campaign.os_fail
    | None -> 0
  in
  let precision_w = fails_of "boundary-precision" in
  let agreement_w = fails_of "boundary-agreement" in
  let speedup = byz_baseline_wall_s /. wall in
  let alloc_ratio = byz_baseline_alloc_mwords /. alloc_mwords in
  Format.printf
    "  campaign: %.3fs (baseline %.3fs, %.2fx), %.1f Mwords (baseline %.1f, \
     %.2fx), %d failures@."
    wall byz_baseline_wall_s speedup alloc_mwords byz_baseline_alloc_mwords
    alloc_ratio failures;
  Format.printf
    "  boundary: %.3fs, %d precision witnesses, %d agreement witnesses over \
     %d cases@."
    bwall precision_w agreement_w ob.Fuzz.Campaign.cp_cases_run;
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "{\n  \"bench\": \"byz_nemesis\",\n  \"campaign\": {\n    \"cases\": 100,\n\
    \    \"seed\": 1,\n    \"jobs\": 1,\n    \"wall_s\": %.3f,\n\
    \    \"alloc_mwords\": %.2f,\n    \"failures\": %d,\n\
    \    \"baseline_wall_s\": %.3f,\n    \"baseline_alloc_mwords\": %.2f,\n\
    \    \"relative_wall\": %.2f,\n    \"relative_alloc\": %.2f\n  },\n\
    \  \"boundary\": {\n    \"cases\": %d,\n    \"seed\": 1,\n\
    \    \"wall_s\": %.3f,\n    \"precision_witnesses\": %d,\n\
    \    \"agreement_witnesses\": %d\n  }\n}\n"
    wall alloc_mwords failures byz_baseline_wall_s byz_baseline_alloc_mwords
    speedup alloc_ratio ob.Fuzz.Campaign.cp_cases_run bwall precision_w
    agreement_w;
  write_file out (Buffer.contents buf);
  Format.printf "  series written to %s@." out;
  if failures <> 0 then begin
    Format.eprintf "error: positive campaign found violations@.";
    exit 1
  end;
  if precision_w = 0 || agreement_w = 0 then begin
    Format.eprintf "error: boundary campaign failed to witness both violation kinds@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Argument parsing: no cmdliner here (the harness predates it and the
   grammar is three words); unknown flags fail loudly. *)

(* ------------------------------------------------------------------ *)
(* Model-checker benchmark: DPOR vs naive, incremental vs replay, on
   fixed exhaustively explorable boxes at two budgets -> BENCH_mc.json.
   Records states/sec, deliveries per execution (the replay
   amplification the incremental engine removes), the reduction ratio,
   the engine speedup and the cross-checks; exits 1 if any two
   configurations that must agree disagree, if DPOR fails to reduce,
   or if the incremental engine still re-simulates prefixes. *)

let mc_bench_box ~nprocs ~budget =
  {
    Fuzz.Gen.c_seed = 1;
    c_nprocs = nprocs;
    c_faults = Array.make nprocs Sim.Correct;
    c_xi = q 2 1;
    c_sched = Fuzz.Gen.S_async { max_delay = Rat.one };
    c_workload = Fuzz.Gen.W_clock;
    c_max_events = budget;
    c_plan = [];
    c_boundary = false;
    c_schedule = [];
  }

(* Stateless-checker baseline: the replay-from-scratch explorer as of
   commit 8a77dc8 (the last commit before the incremental engine),
   search only ([~oracles:[] ~dpor:true ~jobs:1]) on the same boxes,
   measured on this container as the min of five runs interleaved with
   the new build.  Same convention as [rat_baseline_wall_s] and
   [obs_baseline_wall_s]: the old code is gone from the tree, so the
   reduction the rewrite bought is checked against pinned numbers. *)
let mc_baseline_commit = "8a77dc8"
let mc_baseline_search_wall_s = [ (6, 0.0104); (8, 0.1165); (10, 2.656) ]

(* CI floor for the pinned-baseline reduction at the deeper budget:
   the recorded value is ~3x, the gate is lenient against container
   load (wall-clock noise here is routinely +/-30%) *)
let mc_reduction_floor = 2.0

let run_mc_bench ~nprocs ~budget ~budget2 ~out =
  Format.printf "mc bench: n=%d budgets=%d,%d (clock, async box)@." nprocs
    budget budget2;
  let point ~budget ~dpor ~engine ~tt =
    let case = mc_bench_box ~nprocs ~budget in
    let t0 = Pool.now () in
    let o = Mc.Driver.run ~dpor ~engine ~tt ~jobs:1 case in
    let wall = Pool.now () -. t0 in
    let dpe =
      float_of_int o.Mc.Driver.mc_deliveries
      /. float_of_int (max 1 o.Mc.Driver.mc_executions)
    in
    Format.printf
      "  e=%d %-6s %-11s %6d executions, %3d classes, %8d deliveries \
       (%5.2f/exec), %.3fs@."
      budget
      (if dpor then "dpor" else if tt then "naive+tt" else "naive")
      (match engine with
      | Mc.Explore.Incremental -> "incremental"
      | Mc.Explore.Replay -> "replay")
      o.Mc.Driver.mc_executions
      (List.length o.Mc.Driver.mc_classes)
      o.Mc.Driver.mc_deliveries dpe wall;
    (budget, dpor, engine, tt, o, wall)
  in
  (* the same class list must come out of every configuration that is
     supposed to agree: engines byte-identically (keys, representative
     schedules, verdicts), and naive+tt against the exhaustive naive *)
  let signature (o : Mc.Driver.outcome) =
    ( List.map
        (fun (c : Mc.Explore.class_rec) ->
          (c.Mc.Explore.cl_key, c.Mc.Explore.cl_choices))
        o.Mc.Driver.mc_classes,
      Mc.Mc_report.render_verdicts o )
  in
  let failures = ref 0 in
  let require cond msg =
    if not cond then begin
      Format.eprintf "error: %s@." msg;
      incr failures
    end
  in
  let check_budget ~budget ~exhaustive =
    let inc =
      point ~budget ~dpor:true ~engine:Mc.Explore.Incremental ~tt:true
    in
    let rep = point ~budget ~dpor:true ~engine:Mc.Explore.Replay ~tt:true in
    let ntt =
      point ~budget ~dpor:false ~engine:Mc.Explore.Incremental ~tt:true
    in
    let _, _, _, _, oi, wi = inc and _, _, _, _, orp, wr = rep in
    let _, _, _, _, ont, _ = ntt in
    require
      (signature oi = signature orp)
      (Printf.sprintf "e=%d: incremental and replay engines disagree" budget);
    let dpe =
      float_of_int oi.Mc.Driver.mc_deliveries
      /. float_of_int (max 1 oi.Mc.Driver.mc_executions)
    in
    require
      (dpe <= 1.5 *. float_of_int budget)
      (Printf.sprintf
         "e=%d: incremental engine still replays (%.2f deliveries/exec > \
          1.5x budget)"
         budget dpe);
    let speedup = wr /. wi in
    Format.printf "  e=%d incremental speedup over replay: %.2fx (full battery)@."
      budget speedup;
    let naive =
      if exhaustive then begin
        let full =
          point ~budget ~dpor:false ~engine:Mc.Explore.Incremental ~tt:false
        in
        let _, _, _, _, ofl, _ = full in
        require
          (signature ont = signature ofl)
          (Printf.sprintf "e=%d: the transposition table lost classes" budget);
        require
          (Mc.Mc_report.render_verdicts oi = Mc.Mc_report.render_verdicts ofl)
          (Printf.sprintf "e=%d: dpor and naive verdicts disagree" budget);
        require
          (float_of_int ofl.Mc.Driver.mc_executions
          > float_of_int oi.Mc.Driver.mc_executions)
          (Printf.sprintf "e=%d: dpor failed to reduce" budget);
        [ full ]
      end
      else begin
        (* at the bigger budget the exhaustive naive run is too slow to
           repeat on every bench; table-pruned naive stands in, checked
           against dpor's class keys (both are sound reductions) *)
        require
          (List.map
             (fun (c : Mc.Explore.class_rec) -> c.Mc.Explore.cl_key)
             ont.Mc.Driver.mc_classes
          = List.map
              (fun (c : Mc.Explore.class_rec) -> c.Mc.Explore.cl_key)
              oi.Mc.Driver.mc_classes)
          (Printf.sprintf "e=%d: naive+tt and dpor class keys differ" budget);
        []
      end
    in
    ((inc, speedup), ([ inc; rep; ntt ] @ naive))
  in
  let (inc1, _speed1), pts1 = check_budget ~budget ~exhaustive:true in
  let (_inc2, _speed2), pts2 = check_budget ~budget:budget2 ~exhaustive:false in
  let points = pts1 @ pts2 in
  (* Search-only walls (oracle battery off), min of five: the engine
     comparison and the pinned-baseline reduction are measured on the
     search itself — the thing the engine rewrite changes — with the
     oracle battery's per-class cost out of the frame. *)
  let search_wall ~budget ~engine =
    let case = mc_bench_box ~nprocs ~budget in
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Pool.now () in
      ignore (Mc.Driver.run ~oracles:[] ~dpor:true ~engine ~jobs:1 case);
      best := min !best (Pool.now () -. t0)
    done;
    !best
  in
  let search =
    List.map
      (fun b ->
        let wi = search_wall ~budget:b ~engine:Mc.Explore.Incremental in
        let wr = search_wall ~budget:b ~engine:Mc.Explore.Replay in
        let base = List.assoc_opt b mc_baseline_search_wall_s in
        let red = Option.map (fun w -> w /. wi) base in
        Format.printf
          "  e=%d search: incremental %.4fs, replay %.4fs (%.2fx)%s@." b wi wr
          (wr /. wi)
          (match red with
          | Some r ->
              Printf.sprintf ", %.2fx vs stateless checker @%s" r
                mc_baseline_commit
          | None -> "");
        (b, wi, wr, red))
      [ budget; budget2 ]
  in
  List.iter
    (fun (b, wi, wr, red) ->
      require
        (wr /. wi >= 1.5)
        (Printf.sprintf
           "e=%d: incremental engine not clearly faster than replay on the \
            search (%.4fs vs %.4fs)"
           b wi wr);
      match red with
      | Some r when b = budget2 ->
          require (r >= mc_reduction_floor)
            (Printf.sprintf
               "e=%d: search reduction vs the stateless checker fell to \
                %.2fx (floor %.1fx)"
               b r mc_reduction_floor)
      | _ -> ())
    search;
  let _, _, _, _, od, _ = inc1 in
  (* compat fields against the exhaustive naive baseline at the small
     budget, as the pre-engine bench recorded them *)
  let ratio =
    match
      List.find_opt (fun (_, dpor, _, tt, _, _) -> (not dpor) && not tt) pts1
    with
    | Some (_, _, _, _, ofl, _) ->
        float_of_int ofl.Mc.Driver.mc_executions
        /. float_of_int od.Mc.Driver.mc_executions
    | None -> 1.0
  in
  Format.printf "  reduction ratio at e=%d: %.2fx@." budget ratio;
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "{\n";
  Printf.bprintf buf "  \"bench\": \"mc\",\n";
  Printf.bprintf buf "  \"box\": %S,\n"
    (Fuzz.Replay.to_string (mc_bench_box ~nprocs ~budget));
  Printf.bprintf buf "  \"verdicts_agree\": %b,\n" (!failures = 0);
  Printf.bprintf buf "  \"reduction_ratio\": %.4f,\n" ratio;
  (match search with
  | [ (_, w1, r1, _); (_, w2, r2, _) ] ->
      Printf.bprintf buf
        "  \"speedup_vs_replay\": { \"e%d\": %.2f, \"e%d\": %.2f },\n" budget
        (r1 /. w1) budget2 (r2 /. w2)
  | _ -> ());
  Printf.bprintf buf "  \"search\": [\n";
  let ns = List.length search in
  List.iteri
    (fun i (b, wi, wr, _) ->
      Printf.bprintf buf
        "    { \"budget\": %d, \"incremental_wall_s\": %.4f, \
         \"replay_wall_s\": %.4f, \"speedup\": %.2f }%s\n"
        b wi wr (wr /. wi)
        (if i = ns - 1 then "" else ","))
    search;
  Printf.bprintf buf "  ],\n";
  Printf.bprintf buf "  \"baseline\": { \"commit\": %S, \"wall_s\": { %s }, \
                      \"reduction\": { %s } },\n"
    mc_baseline_commit
    (String.concat ", "
       (List.filter_map
          (fun (b, _, _, _) ->
            Option.map
              (fun w -> Printf.sprintf "\"e%d\": %.4f" b w)
              (List.assoc_opt b mc_baseline_search_wall_s))
          search))
    (String.concat ", "
       (List.filter_map
          (fun (b, _, _, red) ->
            Option.map (fun r -> Printf.sprintf "\"e%d\": %.2f" b r) red)
          search));
  Printf.bprintf buf "  \"series\": [\n";
  let n = List.length points in
  List.iteri
    (fun i (b, dpor, engine, tt, (o : Mc.Driver.outcome), wall) ->
      let dpe =
        float_of_int o.Mc.Driver.mc_deliveries
        /. float_of_int (max 1 o.Mc.Driver.mc_executions)
      in
      Printf.bprintf buf
        "    { \"budget\": %d, \"mode\": %S, \"engine\": %S, \"tt\": %b, \
         \"executions\": %d, \"classes\": %d, \"sleep_blocked\": %d, \
         \"deliveries\": %d, \"deliveries_per_exec\": %.2f, \
         \"replay_overhead\": %.2f, \"undos\": %d, \"tt_hits\": %d, \
         \"wall_s\": %.4f, \"states_per_s\": %.1f }%s\n"
        b
        (if dpor then "dpor" else "naive")
        (match engine with
        | Mc.Explore.Incremental -> "incremental"
        | Mc.Explore.Replay -> "replay")
        tt o.Mc.Driver.mc_executions
        (List.length o.Mc.Driver.mc_classes)
        o.Mc.Driver.mc_sleep_blocked o.Mc.Driver.mc_deliveries dpe
        (dpe /. float_of_int b)
        o.Mc.Driver.mc_undos o.Mc.Driver.mc_tt_hits wall
        (float_of_int o.Mc.Driver.mc_executions /. wall)
        (if i = n - 1 then "" else ","))
    points;
  Printf.bprintf buf "  ]\n}\n";
  write_file out (Buffer.contents buf);
  Format.printf "  written to %s@." out;
  if !failures <> 0 then exit 1

(* ------------------------------------------------------------------ *)
(* Observability overhead: the 100-case Z1 campaign with the tracing
   hooks compiled in but disabled, against the pre-instrumentation
   baseline recorded on this container (commit f951333, min of three
   runs).  The bar is < 3% wall overhead: every instrumentation site
   is guarded by one Atomic.t read and allocates nothing when off.
   Run-to-run noise here is the same order as the bar (~2%), so both
   sides of the comparison are min-of-three.  Also records the
   enabled-mode run (events, digest, cost) and per-emit micro costs. *)

let obs_baseline_wall_s = 4.787
let obs_baseline_alloc_mwords = 307.0
let obs_overhead_budget_pct = 3.0

let run_obs_bench ~out =
  Format.printf
    "obs series: 100-case Z1 campaign, tracing disabled vs enabled@.";
  let campaign () =
    let alloc0 = Gc.allocated_bytes () in
    let t0 = Pool.now () in
    let o = Fuzz.Campaign.run ~shrink:false ~cases:100 ~seed:1 ~jobs:1 () in
    let wall = Pool.now () -. t0 in
    let alloc_mwords = (Gc.allocated_bytes () -. alloc0) /. 8.0 /. 1e6 in
    (o, wall, alloc_mwords)
  in
  let runs = List.init 3 (fun _ -> campaign ()) in
  let dis_wall =
    List.fold_left (fun acc (_, w, _) -> min acc w) infinity runs
  in
  let dis_alloc =
    List.fold_left (fun acc (_, _, a) -> min acc a) infinity runs
  in
  let overhead_pct = ((dis_wall /. obs_baseline_wall_s) -. 1.0) *. 100.0 in
  Format.printf
    "  disabled: %.3fs min-of-3 (baseline %.3fs, %+.2f%% overhead), %.1f \
     Mwords (baseline %.1f)@."
    dis_wall obs_baseline_wall_s overhead_pct dis_alloc
    obs_baseline_alloc_mwords;
  let (_, en_wall, en_alloc), trace = Obs.capture campaign in
  let events = Array.length trace.Obs.t_events in
  let dg = Obs.digest trace in
  Format.printf
    "  enabled:  %.3fs, %.1f Mwords, %d events (%d dropped), digest %s@."
    en_wall en_alloc events trace.Obs.t_dropped dg;
  (* Per-emit micro costs, hand-timed (the quantities are far apart:
     the disabled site is one atomic load, the enabled one allocates
     an event record). *)
  let ns_per n f =
    let t0 = Pool.now () in
    for _ = 1 to n do
      f ()
    done;
    (Pool.now () -. t0) /. float_of_int n *. 1e9
  in
  let micro_disabled_ns =
    ns_per 10_000_000 (fun () ->
        if Obs.on () then Obs.instant "bench" "x" [ ("i", Obs.I 1) ])
  in
  Obs.start ~capacity:(1 lsl 16) ();
  let micro_enabled_ns =
    ns_per 1_000_000 (fun () ->
        if Obs.on () then Obs.instant "bench" "x" [ ("i", Obs.I 1) ])
  in
  ignore (Obs.drain ());
  Format.printf "  per-site: %.2f ns disabled, %.1f ns enabled@."
    micro_disabled_ns micro_enabled_ns;
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "{\n\
    \  \"bench\": \"obs\",\n\
    \  \"campaign\": {\"cases\": 100, \"seed\": 1, \"jobs\": 1},\n\
    \  \"disabled\": {\n\
    \    \"wall_s_min3\": %.3f,\n\
    \    \"alloc_mwords_min3\": %.1f,\n\
    \    \"baseline_wall_s\": %.3f,\n\
    \    \"baseline_alloc_mwords\": %.1f,\n\
    \    \"overhead_pct\": %.2f,\n\
    \    \"budget_pct\": %.1f\n\
    \  },\n\
    \  \"enabled\": {\n\
    \    \"wall_s\": %.3f,\n\
    \    \"alloc_mwords\": %.1f,\n\
    \    \"events\": %d,\n\
    \    \"dropped\": %d,\n\
    \    \"digest\": %S\n\
    \  },\n\
    \  \"per_site_ns\": {\"disabled\": %.2f, \"enabled\": %.1f}\n\
     }\n"
    dis_wall dis_alloc obs_baseline_wall_s obs_baseline_alloc_mwords
    overhead_pct obs_overhead_budget_pct en_wall en_alloc events
    trace.Obs.t_dropped dg micro_disabled_ns micro_enabled_ns;
  write_file out (Buffer.contents buf);
  Format.printf "  series written to %s@." out;
  if overhead_pct >= obs_overhead_budget_pct then begin
    Format.eprintf "error: disabled-tracing overhead %.2f%% >= %.1f%%@."
      overhead_pct obs_overhead_budget_pct;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Dist series: the same campaign serially, sharded across worker
   subprocesses, and sharded under a nemesis that kills one worker and
   corrupts another's stream.  The number that matters is boolean —
   all three reports byte-identical — with the walls recorded so a
   dispatch-overhead regression is visible in the series. *)

let dist_nemesis_spec = "kill:0@1,corrupt:1@1"

let run_dist_bench ~cases ~seed ~shards ~out =
  Format.printf
    "dist series: serial vs %d-shard subprocess campaign, cases=%d seed=%d@."
    shards cases seed;
  let time f =
    let t0 = Pool.now () in
    let r = f () in
    (r, Pool.now () -. t0)
  in
  let serial, serial_wall =
    time (fun () ->
        Fuzz.Campaign.run ~oracles:Fuzz.Oracle.registry ~shrink:true ~jobs:1
          ~cases ~seed ())
  in
  let serial_r = Fuzz.Report.render serial in
  Format.printf "  serial:            %.2fs@." serial_wall;
  let shard_run ~nemesis =
    let cfg = Dist.Supervisor.make_config ~nemesis ~shards () in
    time (fun () ->
        Dist.Supervisor.run_fuzz ~quiet:true cfg ~seed ~cases ~boundary:false
          ~shrink:true ~oracles:None ())
  in
  let sharded, sharded_wall = shard_run ~nemesis:Dist.Nemesis.none in
  let identical = Fuzz.Report.render sharded = serial_r in
  Format.printf "  %d shards:          %.2fs, byte-identical: %b@." shards
    sharded_wall identical;
  let nemesis =
    match Dist.Nemesis.parse dist_nemesis_spec with
    | Ok n -> n
    | Error e -> failwith e
  in
  let nem, nem_wall = shard_run ~nemesis in
  let nem_identical = Fuzz.Report.render nem = serial_r in
  Format.printf "  %d shards + nemesis: %.2fs, byte-identical: %b@." shards
    nem_wall nem_identical;
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "{\n\
    \  \"bench\": \"dist\",\n\
    \  \"campaign\": {\"cases\": %d, \"seed\": %d, \"shards\": %d},\n\
    \  \"serial_wall_s\": %.3f,\n\
    \  \"sharded_wall_s\": %.3f,\n\
    \  \"nemesis\": %S,\n\
    \  \"nemesis_wall_s\": %.3f,\n\
    \  \"identical\": %b,\n\
    \  \"nemesis_identical\": %b\n\
     }\n"
    cases seed shards serial_wall sharded_wall dist_nemesis_spec nem_wall
    identical nem_identical;
  write_file out (Buffer.contents buf);
  Format.printf "  series written to %s@." out;
  if not (identical && nem_identical) then begin
    Format.eprintf "error: sharded report diverged from the serial one@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* net: transport series.  Raw framing throughput over each byte
   stream the shard protocol can ride (pipe pair, Unix-domain socket,
   localhost TCP), then the same small campaign run over each
   transport with per-unit round-trip wall — and the only number that
   gates: all reports byte-identical to the serial run. *)

let net_frame_count = 20_000

(* frames/sec through one transport: a writer domain pushes
   [net_frame_count] heartbeat frames in batches, the main domain
   parses them back out of the stream. *)
let frames_per_sec mk =
  let wr, rd, cleanup = mk () in
  let one = Dist.Frame.encode Dist.Frame.M_heartbeat in
  let batch = String.concat "" (List.init 100 (fun _ -> one)) in
  let t0 = Pool.now () in
  let writer =
    Domain.spawn (fun () ->
        for _ = 1 to net_frame_count / 100 do
          Net.Transport.write wr batch
        done)
  in
  let p = Dist.Frame.parser_create () in
  let buf = Bytes.create 65536 in
  let got = ref 0 in
  while !got < net_frame_count do
    let n = Net.Transport.read rd buf 0 65536 in
    if n = 0 then failwith "net bench: unexpected EOF";
    Dist.Frame.feed p buf n;
    let rec drain () =
      match Dist.Frame.next p with
      | Ok (Some _) ->
          incr got;
          drain ()
      | Ok None -> ()
      | Error e -> failwith ("net bench: " ^ e)
    in
    drain ()
  done;
  Domain.join writer;
  let wall = Pool.now () -. t0 in
  cleanup ();
  float_of_int net_frame_count /. wall

let mk_pipe_wire () =
  let r, w = Unix.pipe () in
  let t = Net.Transport.of_pipe ~read_fd:r ~write_fd:w in
  (t, t, fun () -> Net.Transport.close t)

let mk_unix_wire () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ta = Net.Transport.of_fd a ~peer:"bench-a" in
  let tb = Net.Transport.of_fd b ~peer:"bench-b" in
  ( ta,
    tb,
    fun () ->
      Net.Transport.close ta;
      Net.Transport.close tb )

let mk_tcp_wire () =
  let l =
    match Net.Transport.listen (Net.Transport.Tcp ("127.0.0.1", 0)) with
    | Ok l -> l
    | Error e -> failwith e
  in
  let c =
    match Net.Transport.connect (Net.Transport.bound_addr l) with
    | Ok c -> c
    | Error e -> failwith e
  in
  let s =
    match Net.Transport.accept l with Ok s -> s | Error e -> failwith e
  in
  Net.Transport.close_listener l;
  ( c,
    s,
    fun () ->
      Net.Transport.close c;
      Net.Transport.close s )

(* a free localhost port: bind 0, read it back, release it *)
let free_tcp_port () =
  match Net.Transport.listen (Net.Transport.Tcp ("127.0.0.1", 0)) with
  | Error e -> failwith e
  | Ok l -> (
      let a = Net.Transport.bound_addr l in
      Net.Transport.close_listener l;
      match a with Net.Transport.Tcp (_, p) -> p | _ -> assert false)

let spawn_serve_worker ~id ~addr =
  let binding =
    Dist.Serve.env_binding ~id ~mode:Dist.Serve.Listen ~addr
      ~nemesis:Dist.Nemesis.none ~once:true ()
  in
  let env = Array.append (Unix.environment ()) [| binding |] in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin null null
  in
  Unix.close null;
  pid

let run_net_bench ~cases ~seed ~out =
  Format.printf
    "net series: framing throughput + campaign RTT per transport, cases=%d \
     seed=%d@."
    cases seed;
  let fps_pipe = frames_per_sec mk_pipe_wire in
  let fps_unix = frames_per_sec mk_unix_wire in
  let fps_tcp = frames_per_sec mk_tcp_wire in
  Format.printf
    "  frames/sec:        pipe %.0f, unix-socket %.0f, localhost tcp %.0f@."
    fps_pipe fps_unix fps_tcp;
  let time f =
    let t0 = Pool.now () in
    let r = f () in
    (r, Pool.now () -. t0)
  in
  let serial_r =
    Fuzz.Report.render
      (Fuzz.Campaign.run ~oracles:Fuzz.Oracle.registry ~shrink:true ~jobs:1
         ~cases ~seed ())
  in
  let nunits = (cases + 15) / 16 in
  let campaign ?(endpoints = []) () =
    let cfg = Dist.Supervisor.make_config ~shards:2 ~endpoints () in
    let report, wall =
      time (fun () ->
          Dist.Supervisor.run_fuzz ~quiet:true cfg ~seed ~cases
            ~boundary:false ~shrink:true ~oracles:None ())
    in
    (Fuzz.Report.render report = serial_r, wall /. float_of_int nunits)
  in
  let over_serve_fleet addrs k =
    let pids =
      List.mapi (fun i addr -> spawn_serve_worker ~id:(i + 1) ~addr) addrs
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun pid ->
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
          pids)
      k
  in
  let pipe_ok, pipe_rtt = campaign () in
  Format.printf "  pipe workers:      %.1f ms/unit, identical: %b@."
    (pipe_rtt *. 1e3) pipe_ok;
  let sock_path i =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "abc_bench_net_%d_%d.sock" (Unix.getpid ()) i)
  in
  let unix_addrs = [ sock_path 1; sock_path 2 ] in
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) unix_addrs;
  let unix_eps =
    List.map (fun p -> Net.Transport.Unix_sock p) unix_addrs
  in
  let unix_ok, unix_rtt =
    over_serve_fleet unix_eps (fun () ->
        campaign ~endpoints:(List.map (fun a -> (a, 1)) unix_eps) ())
  in
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) unix_addrs;
  Format.printf "  unix-socket workers: %.1f ms/unit, identical: %b@."
    (unix_rtt *. 1e3) unix_ok;
  let tcp_eps =
    [
      Net.Transport.Tcp ("127.0.0.1", free_tcp_port ());
      Net.Transport.Tcp ("127.0.0.1", free_tcp_port ());
    ]
  in
  let tcp_ok, tcp_rtt =
    over_serve_fleet tcp_eps (fun () ->
        campaign ~endpoints:(List.map (fun a -> (a, 1)) tcp_eps) ())
  in
  Format.printf "  tcp workers:       %.1f ms/unit, identical: %b@."
    (tcp_rtt *. 1e3) tcp_ok;
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "{\n\
    \  \"bench\": \"net\",\n\
    \  \"campaign\": {\"cases\": %d, \"seed\": %d, \"shards\": 2, \"units\": \
     %d},\n\
    \  \"frames_per_sec\": {\"pipe\": %.0f, \"unix\": %.0f, \"tcp\": %.0f},\n\
    \  \"unit_rtt_ms\": {\"pipe\": %.2f, \"unix\": %.2f, \"tcp\": %.2f},\n\
    \  \"identical\": {\"pipe\": %b, \"unix\": %b, \"tcp\": %b}\n\
     }\n"
    cases seed nunits fps_pipe fps_unix fps_tcp (pipe_rtt *. 1e3)
    (unix_rtt *. 1e3) (tcp_rtt *. 1e3) pipe_ok unix_ok tcp_ok;
  write_file out (Buffer.contents buf);
  Format.printf "  series written to %s@." out;
  if not (pipe_ok && unix_ok && tcp_ok) then begin
    Format.eprintf
      "error: a socket-sharded report diverged from the serial one@.";
    exit 1
  end

let usage () =
  prerr_endline
    "usage: main.exe [reports [SECTION...] [-j N]] | [pool [--cases N] \
     [--jobs N] [--seed N] [--out FILE]] | [rat [--out FILE]] | [byz [--out \
     FILE]] | [mc [--procs N] [--budget B] [--out FILE]] | [obs [--out \
     FILE]] | [dist [--cases N] [--seed N] [--shards N] [--out FILE]] | [net \
     [--cases N] [--seed N] [--out FILE]]";
  exit 2

let int_arg name = function
  | v :: rest -> (
      match int_of_string_opt v with
      | Some i -> (i, rest)
      | None ->
          Format.eprintf "error: %s expects an integer, got %S@." name v;
          exit 2)
  | [] ->
      Format.eprintf "error: %s expects an argument@." name;
      exit 2

let () =
  (* The dist supervisor re-executes whatever binary spawned it as its
     workers; this makes the bench harness self-hosting too. *)
  Dist.Worker.maybe_run ();
  Dist.Serve.maybe_run ();
  match Array.to_list Sys.argv with
  | _ :: "reports" :: rest ->
      let rec go only jobs = function
        | [] -> run_reports ~jobs ~only:(List.rev only) ()
        | ("-j" | "--jobs") :: rest ->
            let j, rest = int_arg "--jobs" rest in
            go only (max 1 j) rest
        | id :: rest when String.length id > 0 && id.[0] <> '-' ->
            go (id :: only) jobs rest
        | _ -> usage ()
      in
      go [] 1 rest
  | _ :: "pool" :: rest ->
      let rec go ~cases ~jobs ~seed ~out = function
        | [] -> run_pool_bench ~seed ~cases ~jobs ~out
        | "--cases" :: rest ->
            let cases, rest = int_arg "--cases" rest in
            go ~cases ~jobs ~seed ~out rest
        | ("-j" | "--jobs") :: rest ->
            let jobs, rest = int_arg "--jobs" rest in
            go ~cases ~jobs:(max 1 jobs) ~seed ~out rest
        | "--seed" :: rest ->
            let seed, rest = int_arg "--seed" rest in
            go ~cases ~jobs ~seed ~out rest
        | "--out" :: file :: rest -> go ~cases ~jobs ~seed ~out:file rest
        | _ -> usage ()
      in
      go ~cases:200 ~jobs:(max 2 (Pool.recommended_jobs ())) ~seed:1
        ~out:"BENCH_pool.json" rest
  | _ :: "rat" :: rest ->
      let rec go ~out = function
        | [] -> run_rat_bench ~out
        | "--out" :: file :: rest -> go ~out:file rest
        | _ -> usage ()
      in
      go ~out:"BENCH_rat.json" rest
  | _ :: "byz" :: rest ->
      let rec go ~out = function
        | [] -> run_byz_bench ~out
        | "--out" :: file :: rest -> go ~out:file rest
        | _ -> usage ()
      in
      go ~out:"BENCH_byz.json" rest
  | _ :: "mc" :: rest ->
      let rec go ~nprocs ~budget ~budget2 ~out = function
        | [] -> run_mc_bench ~nprocs ~budget ~budget2 ~out
        | "--procs" :: rest ->
            let nprocs, rest = int_arg "--procs" rest in
            go ~nprocs ~budget ~budget2 ~out rest
        | "--budget" :: rest ->
            let budget, rest = int_arg "--budget" rest in
            go ~nprocs ~budget ~budget2 ~out rest
        | "--budget2" :: rest ->
            let budget2, rest = int_arg "--budget2" rest in
            go ~nprocs ~budget ~budget2 ~out rest
        | "--out" :: file :: rest -> go ~nprocs ~budget ~budget2 ~out:file rest
        | _ -> usage ()
      in
      go ~nprocs:3 ~budget:6 ~budget2:8 ~out:"BENCH_mc.json" rest
  | _ :: "obs" :: rest ->
      let rec go ~out = function
        | [] -> run_obs_bench ~out
        | "--out" :: file :: rest -> go ~out:file rest
        | _ -> usage ()
      in
      go ~out:"BENCH_obs.json" rest
  | _ :: "dist" :: rest ->
      let rec go ~cases ~seed ~shards ~out = function
        | [] -> run_dist_bench ~cases ~seed ~shards ~out
        | "--cases" :: rest ->
            let cases, rest = int_arg "--cases" rest in
            go ~cases ~seed ~shards ~out rest
        | "--seed" :: rest ->
            let seed, rest = int_arg "--seed" rest in
            go ~cases ~seed ~shards ~out rest
        | "--shards" :: rest ->
            let shards, rest = int_arg "--shards" rest in
            go ~cases ~seed ~shards:(max 1 shards) ~out rest
        | "--out" :: file :: rest -> go ~cases ~seed ~shards ~out:file rest
        | _ -> usage ()
      in
      go ~cases:120 ~seed:1 ~shards:4 ~out:"BENCH_dist.json" rest
  | _ :: "net" :: rest ->
      let rec go ~cases ~seed ~out = function
        | [] -> run_net_bench ~cases ~seed ~out
        | "--cases" :: rest ->
            let cases, rest = int_arg "--cases" rest in
            go ~cases ~seed ~out rest
        | "--seed" :: rest ->
            let seed, rest = int_arg "--seed" rest in
            go ~cases ~seed ~out rest
        | "--out" :: file :: rest -> go ~cases ~seed ~out:file rest
        | _ -> usage ()
      in
      go ~cases:120 ~seed:1 ~out:"BENCH_net.json" rest
  | [ _ ] ->
      run_reports ();
      run_benchmarks ()
  | _ -> usage ()
