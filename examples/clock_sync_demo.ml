(* Byzantine clock synchronization (Algorithm 1) in action.

   Runs n = 7 processes, one of which is Byzantine (flooding ahead-of-
   time ticks) and one of which crashes mid-run, under a Θ(1,2)
   scheduler (so the execution is ABC-admissible for any Ξ > 2).
   Prints the tick progression, the measured precision on consistent
   cuts and real-time cuts against the 2Ξ bound of Theorems 2/3, and
   the bounded-progress check of Theorem 4.

   Run with: dune exec examples/clock_sync_demo.exe *)

open Core

let q = Rat.of_ints

let () =
  let nprocs = 7 and f = 2 in
  let xi = q 5 2 in
  let rng = Random.State.make [| 2026 |] in
  let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) () in
  let faults =
    [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Correct; Sim.Correct;
       Sim.Crash 25; Sim.Byzantine "rush6" |]
  in
  let correct = [ 0; 1; 2; 3; 4 ] in
  Format.printf "=== Algorithm 1: Byzantine clock synchronization ===@.";
  Format.printf "n = %d, f = %d (p5 crashes after 25 steps, p6 is Byzantine), Xi = %s@.@."
    nprocs f (Rat.to_string xi);
  let cfg =
    Sim.make_config
      ~byzantine:(fun _ -> Clock_sync.byzantine_rusher ~ahead:6)
      ~nprocs
      ~algorithm:(Clock_sync.algorithm ~f)
      ~faults ~scheduler ~max_events:1200 ()
  in
  let result = Sim.run cfg in
  Format.printf "simulated %d receive events (%d still in flight)@." result.Sim.delivered
    result.Sim.undelivered;
  Format.printf "@.final clocks:@.";
  Array.iteri
    (fun p st ->
      let role =
        match faults.(p) with
        | Sim.Correct -> "correct"
        | Sim.Crash _ -> "crashed"
        | Sim.Byzantine _ -> "byzantine"
        | _ -> "faulty"
      in
      Format.printf "  p%d (%-9s): C = %d@." p role (Clock_sync.clock st))
    result.Sim.final_states;
  let input = { Clock_sync.result; correct; xi } in
  let bound = Rat.floor_int (Rat.mul Rat.two xi) in
  Format.printf "@.Theorem 2 (precision on consistent cuts):@.";
  Format.printf "  measured max skew = %d, bound 2Xi = %d@."
    (Clock_sync.max_skew_on_cuts input) bound;
  Format.printf "Theorem 3 (precision on real-time cuts):@.";
  Format.printf "  measured max skew = %d, bound 2Xi = %d@."
    (Clock_sync.max_skew_realtime input) bound;
  let checked, violations = Clock_sync.causal_cone_violations input in
  Format.printf "Lemma 4 (causal cone): %d triples checked, %d violations@." checked
    (List.length violations);
  let checked, violations = Clock_sync.bounded_progress_violations input in
  Format.printf "Theorem 4 (bounded progress, rho = 4Xi+1): %d intervals checked, %d violations@."
    checked (List.length violations);
  Format.printf "@.ABC admissibility of the recorded execution at Xi = %s: %b@."
    (Rat.to_string xi)
    (Execgraph.Abc_check.is_admissible result.Sim.graph ~xi)
