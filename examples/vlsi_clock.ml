(* Fault-tolerant distributed clock generation on a chip (Section 5.3).

   The paper argues the ABC model fits VLSI systems-on-chip: link
   delays depend on place-and-route and on the implementation
   technology, so compiling absolute time bounds into a circuit is
   brittle, while the ABC parameter Ξ — a ratio of cumulative path
   delays — survives technology migration (all paths speed up roughly
   together).  The DARTS clock-generation circuit cited by the paper is
   based exactly on Algorithm 1.

   This example models a 3x3 tile grid running Algorithm 1 as its tick
   generation, with per-link delays derived from Manhattan wire lengths
   (plus jitter).  It then "migrates" the design to a faster process
   corner by scaling every delay by 1/3 and re-checks: the recorded
   executions of both corners are ABC-admissible for the same Ξ, and
   the clock precision bound 2Ξ holds in both — no re-tuning needed.

   One tile is fabricated faulty (Byzantine): the grid tolerates it
   with n = 9 >= 3f + 1.

   Run with: dune exec examples/vlsi_clock.exe *)

open Core

let q = Rat.of_ints

(* Manhattan distance between tiles of a 3x3 grid, as a delay factor. *)
let wire_delay a b =
  let xa, ya = (a mod 3, a / 3) and xb, yb = (b mod 3, b / 3) in
  let dist = abs (xa - xb) + abs (ya - yb) in
  (* self-loops have the minimal driver delay 1; each hop adds 1 *)
  1 + dist

let corner_scheduler ~rng ~scale () =
  {
    Sim.delay =
      (fun ~sender ~dst ~send_time:_ ~msg_index:_ ~payload:_ ->
        let base = wire_delay sender dst in
        (* jitter: +0..25% *)
        let jitter = Random.State.int rng 26 in
        Rat.mul scale (Rat.mul (q base 1) (Rat.add Rat.one (q jitter 100))));
  }

let run_corner ~label ~scale ~xi =
  let nprocs = 9 and f = 1 in
  let rng = Random.State.make [| 0xC0FFEE |] in
  let scheduler = corner_scheduler ~rng ~scale () in
  let faults = Array.make nprocs Sim.Correct in
  faults.(4) <- Sim.Byzantine "mute" (* the centre tile came out bad *);
  let cfg =
    Sim.make_config
      ~byzantine:(fun _ -> Clock_sync.byzantine_rusher ~ahead:4)
      ~nprocs
      ~algorithm:(Clock_sync.algorithm ~f)
      ~faults ~scheduler ~max_events:1500 ()
  in
  let r = Sim.run cfg in
  let correct = [ 0; 1; 2; 3; 5; 6; 7; 8 ] in
  let input = { Clock_sync.result = r; correct; xi } in
  let skew = Clock_sync.max_skew_realtime input in
  let bound = Rat.floor_int (Rat.mul Rat.two xi) in
  let admissible = Execgraph.Abc_check.is_admissible r.Sim.graph ~xi in
  let ratio =
    match Theta_model.static_delay_ratio r.Sim.graph with
    | Some x -> Rat.to_string x
    | None -> "-"
  in
  Format.printf "%-14s delay ratio %-8s admissible(Xi=%s): %-5b skew %d <= 2Xi = %d: %b@."
    label ratio (Rat.to_string xi) admissible skew bound (skew <= bound);
  List.iter
    (fun p ->
      if p = 0 then
        Format.printf "  sample clock at tile 0: %d ticks generated@."
          (Clock_sync.clock r.Sim.final_states.(p)))
    correct

let () =
  Format.printf "=== VLSI clock generation on a 3x3 tile grid (DARTS-style) ===@.";
  Format.printf "n = 9 tiles, centre tile Byzantine (f = 1), wire delays by Manhattan distance@.@.";
  (* max wire delay factor = (1+4)*1.25 = 6.25, min = 1: ratio 6.25, so
     any Xi > 6.25 admits both corners *)
  let xi = q 13 2 in
  run_corner ~label:"slow corner" ~scale:Rat.one ~xi;
  run_corner ~label:"fast corner" ~scale:(q 1 3) ~xi;
  Format.printf
    "@.The same Xi works at both process corners: the ABC condition is a ratio@.\
     of cumulative path delays, so technology migration preserves it while any@.\
     absolute timeout compiled into the circuit would have to be re-tuned.@."
