(* Byzantine consensus over ABC lock-step rounds.

   The paper's headline application: Algorithm 2 simulates lock-step
   rounds in the (purely time-free) ABC model, so any synchronous
   Byzantine consensus algorithm runs on top unchanged.  Here EIG
   (exponential information gathering, f+1 rounds, n > 3f) runs over
   the lock-step simulation with n = 4, f = 1; the Byzantine process
   participates in the tick protocol but relays forged values.

   Run with: dune exec examples/consensus_demo.exe *)

open Core

let q = Rat.of_ints

let () =
  let nprocs = 4 and f = 1 in
  let xi = q 5 2 in
  let inputs = [| 1; 1; 1; 0 |] in
  Format.printf "=== EIG consensus over Algorithm 2 lock-step rounds ===@.";
  Format.printf "n = %d, f = %d, Xi = %s, inputs = [1; 1; 1; _], p3 Byzantine@.@." nprocs f
    (Rat.to_string xi);
  let rng = Random.State.make [| 77 |] in
  let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) () in
  let algo = Consensus.Eig.algo ~f ~value:(fun p -> inputs.(p)) in
  let byz =
    (* correct tick behaviour, forged relays *)
    let real = Consensus.Eig.algo ~f ~value:(fun _ -> 0) in
    Lockstep.algorithm ~f ~xi
      {
        Lockstep.r_init =
          (fun ~self ~nprocs ->
            let st, _ = real.Lockstep.r_init ~self ~nprocs in
            (st, [ ([], 0) ]));
        r_step =
          (fun ~self ~nprocs:_ ~round st _ ->
            (st, List.init round (fun i -> ([ (self + i) mod 4 ], i mod 2))));
      }
  in
  let cfg =
    Sim.make_config ~byzantine:(fun _ -> byz) ~nprocs
      ~algorithm:(Lockstep.algorithm ~f ~xi algo)
      ~faults:[| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Byzantine "forger" |]
      ~scheduler ~max_events:4000
      ~stop_when:(fun states ->
        List.for_all
          (fun p -> Consensus.Eig.decision (Lockstep.round_state states.(p)) <> None)
          [ 0; 1; 2 ])
      ()
  in
  let r = Sim.run cfg in
  Format.printf "simulated %d receive events@." r.Sim.delivered;
  let correct = [ 0; 1; 2 ] in
  List.iter
    (fun p ->
      let st = r.Sim.final_states.(p) in
      Format.printf "  p%d: clock=%d round=%d decision=%s@." p (Lockstep.clock_of st)
        (Lockstep.round_of st)
        (match Consensus.Eig.decision (Lockstep.round_state st) with
        | Some d -> string_of_int d
        | None -> "-"))
    correct;
  let checked, violations = Lockstep.lockstep_violations r ~correct in
  Format.printf "Theorem 5 (lock-step): %d round starts checked, %d violations@." checked
    (List.length violations);
  let decisions =
    List.map
      (fun p -> (p, Consensus.Eig.decision (Lockstep.round_state r.Sim.final_states.(p))))
      correct
  in
  Format.printf "agreement + validity: %b@."
    (Consensus.check_agreement decisions ~inputs:[ 1; 1; 1 ])
