test/test_execgraph.ml: Abc_check Alcotest Array Cut Cycle Digraph Event Execgraph Fun Graph List QCheck QCheck_alcotest Random Rat Util
