test/test_extensions.ml: Abc_check Alcotest Array Core Execgraph List Lockstep Omega Printf Random Rat Related_models Scenarios Sim
