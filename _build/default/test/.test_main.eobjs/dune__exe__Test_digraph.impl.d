test/test_digraph.ml: Alcotest Array Digraph List Printf QCheck QCheck_alcotest Stdlib String
