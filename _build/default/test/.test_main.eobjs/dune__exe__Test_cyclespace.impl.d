test/test_cyclespace.ml: Abc_check Alcotest Cycle Cyclespace Digraph Event Execgraph Graph List QCheck QCheck_alcotest Random Rat Util
