test/test_bigint.ml: Alcotest Bigint List Printf QCheck QCheck_alcotest
