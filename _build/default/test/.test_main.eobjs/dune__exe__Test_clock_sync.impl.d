test/test_clock_sync.ml: Alcotest Array Clock_sync Core Execgraph Fun List Printf QCheck QCheck_alcotest Random Rat Sim
