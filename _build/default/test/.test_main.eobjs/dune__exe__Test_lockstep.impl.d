test/test_lockstep.ml: Alcotest Array Core Fun List Lockstep Printf QCheck QCheck_alcotest Random Rat Sim
