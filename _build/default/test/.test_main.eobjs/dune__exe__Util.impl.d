test/util.ml: Execgraph
