test/test_failure_detector.ml: Alcotest Array Core Execgraph Failure_detector QCheck QCheck_alcotest Random Rat Sim
