test/test_consensus.ml: Alcotest Array Consensus Core Fun List Lockstep QCheck QCheck_alcotest Random Rat Sim
