test/test_abc.ml: Abc Abc_check Alcotest Core Event Execgraph Graph QCheck QCheck_alcotest Random Rat Test_execgraph Util
