test/test_rat.ml: Alcotest Bigint QCheck QCheck_alcotest Rat
