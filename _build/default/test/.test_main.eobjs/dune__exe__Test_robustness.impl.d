test/test_robustness.ml: Abc_check Alcotest Array Bigint Core Cycle Digraph Event Execgraph Float Graph List QCheck QCheck_alcotest Rat Sim
