test/test_sim.ml: Abc_check Alcotest Array Core Event Execgraph Fun Graph List Printf Random Rat Sim
