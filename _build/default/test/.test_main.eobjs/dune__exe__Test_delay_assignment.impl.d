test/test_delay_assignment.ml: Abc_check Alcotest Array Core Delay_assignment Execgraph Graph List Lp QCheck QCheck_alcotest Random Rat Test_execgraph Util
