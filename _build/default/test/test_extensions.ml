(* Tests for the extension modules: Ω leader election, eventual
   lock-step with doubling rounds (Section 6), the parametric scenario
   builders, and the MMR query-round workload. *)

open Core

let q = Rat.of_ints
let xi = Rat.of_ints

(* ------------------------------------------------------------------ *)
(* Ω *)

let run_omega ?(seed = 13) ?(nprocs = 4) ?(f = 1) ?(xi = q 5 2) ~faults ~max_events () =
  let rng = Random.State.make [| seed |] in
  let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) () in
  let cfg =
    Sim.make_config ~nprocs ~algorithm:(Omega.algorithm ~f ~xi) ~faults ~scheduler
      ~max_events ()
  in
  Sim.run cfg

let omega_tests =
  [
    Alcotest.test_case "fault-free: leader is process 0 everywhere" `Quick (fun () ->
        let faults = Array.make 4 Sim.Correct in
        let r = run_omega ~faults ~max_events:400 () in
        let leaders, expected, agree = Omega.converged r ~correct:[ 0; 1; 2; 3 ] in
        Alcotest.(check int) "expected leader" 0 expected;
        Alcotest.(check bool) "agreement" true agree;
        Alcotest.(check int) "four leaders" 4 (List.length leaders));
    Alcotest.test_case "crash of process 0: leadership moves to 1" `Quick (fun () ->
        let faults = [| Sim.Crash 2; Sim.Correct; Sim.Correct; Sim.Correct |] in
        let r = run_omega ~faults ~max_events:500 () in
        let _, expected, agree = Omega.converged r ~correct:[ 1; 2; 3 ] in
        Alcotest.(check int) "leader 1" 1 expected;
        Alcotest.(check bool) "agreement" true agree);
    Alcotest.test_case "accuracy: no correct process ever suspected" `Quick (fun () ->
        let faults = [| Sim.Crash 5; Sim.Correct; Sim.Correct; Sim.Correct |] in
        let r = run_omega ~faults ~max_events:500 () in
        Alcotest.(check bool) "no false suspicions" true
          (Omega.no_false_suspicions r ~correct:[ 1; 2; 3 ]));
    Alcotest.test_case "completeness: the crashed process is suspected" `Quick (fun () ->
        let faults = [| Sim.Crash 2; Sim.Correct; Sim.Correct; Sim.Correct |] in
        let r = run_omega ~faults ~max_events:500 () in
        List.iter
          (fun p ->
            Alcotest.(check bool)
              (Printf.sprintf "p%d suspects 0" p)
              true
              (List.mem 0 (Omega.suspects r.Sim.final_states.(p))))
          [ 1; 2; 3 ]);
  ]

(* ------------------------------------------------------------------ *)
(* Eventual lock-step (doubling rounds) *)

let eventual_tests =
  [
    Alcotest.test_case "doubling schedule arithmetic" `Quick (fun () ->
        let s = Lockstep.doubling_schedule 3 in
        Alcotest.(check int) "start 0" 0 (s.Lockstep.start_of_round 0);
        Alcotest.(check int) "start 1" 3 (s.Lockstep.start_of_round 1);
        Alcotest.(check int) "start 2" 9 (s.Lockstep.start_of_round 2);
        Alcotest.(check int) "start 3" 21 (s.Lockstep.start_of_round 3);
        Alcotest.(check (option int)) "round at 9" (Some 2) (s.Lockstep.round_at 9);
        Alcotest.(check (option int)) "round at 10" None (s.Lockstep.round_at 10));
    Alcotest.test_case "uniform schedule matches the paper's Algorithm 2" `Quick
      (fun () ->
        let s = Lockstep.uniform_schedule 5 in
        Alcotest.(check int) "start 4" 20 (s.Lockstep.start_of_round 4);
        Alcotest.(check (option int)) "round at 15" (Some 3) (s.Lockstep.round_at 15));
    Alcotest.test_case "eventual lock-step under a ◇ABC scheduler" `Quick (fun () ->
        (* chaos until t = 30, Θ(1,2) afterwards; doubling rounds must
           eventually hold lock-step *)
        let rng = Random.State.make [| 5 |] in
        let scheduler =
          Sim.eventually_theta_scheduler ~rng ~gst:(q 30 1) ~chaos_max:(q 25 1)
            ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) ()
        in
        let algo =
          Lockstep.algorithm_scheduled ~f:1 ~schedule:(Lockstep.doubling_schedule 2)
            Lockstep.noop_round_algo
        in
        let cfg =
          Sim.make_config ~nprocs:4 ~algorithm:algo ~faults:(Array.make 4 Sim.Correct)
            ~scheduler ~max_events:2500 ()
        in
        let r = Sim.run cfg in
        let correct = [ 0; 1; 2; 3 ] in
        let rounds = Lockstep.rounds_reached r ~correct in
        Alcotest.(check bool) "several rounds happened" true
          (List.for_all (fun (_, x) -> x >= 4) rounds);
        let first_ok = Lockstep.first_lockstep_round r ~correct in
        let max_round = List.fold_left (fun acc (_, x) -> max acc x) 0 rounds in
        Alcotest.(check bool)
          (Printf.sprintf "lock-step from round %d on (max %d)" first_ok max_round)
          true
          (first_ok <= max_round));
    Alcotest.test_case "perpetual Θ + doubling rounds: lock-step from round 0" `Quick
      (fun () ->
        let rng = Random.State.make [| 6 |] in
        let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) () in
        let algo =
          Lockstep.algorithm_scheduled ~f:1 ~schedule:(Lockstep.doubling_schedule 5)
            Lockstep.noop_round_algo
        in
        let cfg =
          Sim.make_config ~nprocs:4 ~algorithm:algo ~faults:(Array.make 4 Sim.Correct)
            ~scheduler ~max_events:1500 ()
        in
        let r = Sim.run cfg in
        Alcotest.(check int) "no violating rounds" 0
          (Lockstep.first_lockstep_round r ~correct:[ 0; 1; 2; 3 ]));
  ]

(* ------------------------------------------------------------------ *)
(* Scenario builders *)

open Execgraph

let scenario_tests =
  [
    Alcotest.test_case "spanning_cycle generalizes fig 1" `Quick (fun () ->
        List.iter
          (fun (k1, k2) ->
            let g = Scenarios.spanning_cycle ~k1 ~k2 () in
            match Core.Abc.max_relevant_ratio g with
            | None ->
                Alcotest.(check bool)
                  (Printf.sprintf "k1=%d k2=%d: ratio <= 1" k1 k2)
                  true (k2 <= k1)
            | Some r ->
                Alcotest.(check bool)
                  (Printf.sprintf "k1=%d k2=%d: ratio %s" k1 k2 (Rat.to_string r))
                  true
                  (Rat.equal r (Rat.of_ints k2 k1)))
          [ (4, 5); (2, 7); (1, 3); (3, 3); (5, 2) ]);
    Alcotest.test_case "timeout chain sweeps the fig 3 ratio" `Quick (fun () ->
        (* ratio chain/2: admissible just above it, violating at it
           (chain = 2 has ratio 1 and is admissible for every Xi > 1) *)
        let g2 = Scenarios.timeout ~chain:2 () in
        Alcotest.(check bool) "chain 2 admissible at 11/10" true
          (Abc_check.is_admissible g2 ~xi:(xi 11 10));
        List.iter
          (fun chain ->
            let g = Scenarios.timeout ~chain () in
            Alcotest.(check bool)
              (Printf.sprintf "chain %d" chain)
              true
              (Abc_check.is_admissible g ~xi:(xi (chain + 1) 2)
              && not (Abc_check.is_admissible g ~xi:(xi chain 2))))
          [ 4; 6; 10 ]);
    Alcotest.test_case "timeout_early is admissible for tight Xi" `Quick (fun () ->
        let g = Scenarios.timeout_early ~chain:4 () in
        Alcotest.(check bool) "admissible at 2" true (Abc_check.is_admissible g ~xi:(xi 2 1)));
    Alcotest.test_case "max_reply_deferral = largest even chain < 2Xi" `Quick (fun () ->
        Alcotest.(check int) "Xi=2 -> 2" 2 (Scenarios.max_reply_deferral ~xi:(xi 2 1));
        Alcotest.(check int) "Xi=5/2 -> 4" 4 (Scenarios.max_reply_deferral ~xi:(xi 5 2));
        Alcotest.(check int) "Xi=3 -> 4" 4 (Scenarios.max_reply_deferral ~xi:(xi 3 1));
        Alcotest.(check int) "Xi=4 -> 6" 6 (Scenarios.max_reply_deferral ~xi:(xi 4 1)));
    Alcotest.test_case "isolated_slow admissible for every Xi" `Quick (fun () ->
        let g = Scenarios.isolated_slow ~exchanges:12 () in
        List.iter
          (fun x ->
            Alcotest.(check bool) (Rat.to_string x) true (Abc_check.is_admissible g ~xi:x))
          [ xi 21 20; xi 3 2; xi 5 1 ]);
  ]

(* ------------------------------------------------------------------ *)
(* MMR workload *)

let mmr_tests =
  [
    Alcotest.test_case "query rounds complete and are well-formed" `Quick (fun () ->
        let rng = Random.State.make [| 31 |] in
        let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 3 2) () in
        let cfg =
          Sim.make_config ~nprocs:4
            ~algorithm:(Related_models.Query_rounds.algorithm ~rounds:5)
            ~faults:(Array.make 4 Sim.Correct) ~scheduler ~max_events:600 ()
        in
        let r = Sim.run cfg in
        let rounds = Related_models.Query_rounds.rounds r.Sim.final_states.(0) in
        Alcotest.(check int) "five rounds" 5 (List.length rounds);
        List.iter
          (fun order ->
            Alcotest.(check int) "everyone responded" 4 (List.length order);
            Alcotest.(check (list int)) "a permutation" [ 0; 1; 2; 3 ]
              (List.sort compare order))
          rounds;
        (* with f = 0 the quorum is everyone: MMR trivially holds *)
        Alcotest.(check bool) "mmr holds at f=0" true
          (Related_models.mmr_holds ~n:4 ~f:0 rounds));
    Alcotest.test_case "wide async delays usually break MMR at f=2, n=4" `Quick
      (fun () ->
        (* statistical: count how often MMR holds across seeds; wide
           spreads should break it at least once *)
        let holds = ref 0 and total = 12 in
        for seed = 1 to total do
          let rng = Random.State.make [| seed |] in
          let scheduler = Sim.async_scheduler ~rng ~max_delay:(q 40 1) () in
          let cfg =
            Sim.make_config ~nprocs:4
              ~algorithm:(Related_models.Query_rounds.algorithm ~rounds:6)
              ~faults:(Array.make 4 Sim.Correct) ~scheduler ~max_events:800 ()
          in
          let r = Sim.run cfg in
          let rounds = Related_models.Query_rounds.rounds r.Sim.final_states.(0) in
          if List.length rounds >= 4 && Related_models.mmr_holds ~n:4 ~f:2 rounds then
            incr holds
        done;
        Alcotest.(check bool) "not always" true (!holds < total));
  ]

let suite = omega_tests @ eventual_tests @ scenario_tests @ mmr_tests
