(* Tests for the Fig. 3 Ξ-timeout failure detector: completeness
   (crashed processes get suspected) and accuracy (no false suspicions
   under schedulers whose executions are ABC-admissible for Ξ). *)

open Core

let q = Rat.of_ints

let run_fd ?(seed = 3) ?(nprocs = 4) ?(xi = q 2 1) ?(rounds = 3) ?(max_events = 400)
    ~faults () =
  let rng = Random.State.make [| seed |] in
  (* Θ ratio 3/2 < Xi = 2: replies always beat the timeout chain *)
  let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 2 1) ~tau_plus:(q 3 1) () in
  let cfg =
    Sim.make_config ~nprocs
      ~algorithm:(Failure_detector.algorithm ~xi ~rounds)
      ~faults ~scheduler ~max_events ()
  in
  Sim.run cfg

let unit_tests =
  [
    Alcotest.test_case "no suspicions when everyone is correct" `Quick (fun () ->
        let result = run_fd ~faults:[| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Correct |] () in
        let false_susp, missed = Failure_detector.accuracy result ~crashed:[] in
        Alcotest.(check (list int)) "no false suspicions" [] false_susp;
        Alcotest.(check (list int)) "nothing missed" [] missed;
        Alcotest.(check bool) "queries completed" true
          (Failure_detector.queries_done result.Sim.final_states.(0) >= 1));
    Alcotest.test_case "crashed process is suspected" `Quick (fun () ->
        (* p3 crashes immediately after waking (1 step: it never replies) *)
        let result =
          run_fd ~faults:[| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Crash 1 |] ()
        in
        let false_susp, missed = Failure_detector.accuracy result ~crashed:[ 3 ] in
        Alcotest.(check (list int)) "no false suspicions" [] false_susp;
        Alcotest.(check (list int)) "crash detected" [] missed);
    Alcotest.test_case "multiple crashes, n=6" `Quick (fun () ->
        let faults =
          [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Crash 1; Sim.Correct; Sim.Crash 1 |]
        in
        let result = run_fd ~nprocs:6 ~max_events:600 ~faults () in
        let false_susp, missed = Failure_detector.accuracy result ~crashed:[ 3; 5 ] in
        Alcotest.(check (list int)) "no false suspicions" [] false_susp;
        Alcotest.(check (list int)) "all crashes detected" [] missed);
    Alcotest.test_case "the run with a late responder stays admissible" `Quick (fun () ->
        (* all correct: the recorded execution must be ABC-admissible
           for Xi (the detector relies on exactly this) *)
        let result = run_fd ~faults:[| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Correct |] () in
        Alcotest.(check bool) "admissible" true
          (Execgraph.Abc_check.is_admissible result.Sim.graph ~xi:(q 2 1)));
    Alcotest.test_case "higher Xi means longer chains before verdict" `Quick (fun () ->
        (* chain length is ceil(2 Xi): count partner messages *)
        let count_events xi =
          let result =
            run_fd ~xi ~rounds:1 ~faults:[| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Crash 1 |] ()
          in
          result.Sim.delivered
        in
        Alcotest.(check bool) "Xi=4 run has more deliveries than Xi=2 run" true
          (count_events (q 4 1) > count_events (q 2 1)));
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100000)

let property_tests =
  [
    prop "completeness and accuracy across seeds" 20 arb_seed (fun seed ->
        let crash3 = seed mod 2 = 0 in
        let faults =
          if crash3 then [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Crash 1 |]
          else [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Correct |]
        in
        let result = run_fd ~seed ~faults () in
        let crashed = if crash3 then [ 3 ] else [] in
        let false_susp, missed = Failure_detector.accuracy result ~crashed in
        false_susp = [] && missed = []);
  ]

let suite = unit_tests @ property_tests
