(* Unit and property tests for the arbitrary-precision integer substrate. *)

let bi = Bigint.of_int
let s = Bigint.to_string
let check_str msg expected actual = Alcotest.(check string) msg expected actual

(* A generator producing integers spanning several digit widths,
   including values far beyond the native range. *)
let gen_bigint =
  let open QCheck.Gen in
  let small = map Bigint.of_int (int_range (-1000) 1000) in
  let native = map Bigint.of_int int in
  let wide =
    map3
      (fun a b c ->
        Bigint.add (Bigint.mul (Bigint.of_int a) (Bigint.of_int b)) (Bigint.of_int c))
      int int int
  in
  let huge =
    map2
      (fun x k -> Bigint.shift_left (Bigint.of_int x) (abs k mod 200))
      int (int_range 0 200)
  in
  frequency [ (2, small); (2, native); (3, wide); (2, huge) ]

let arb_bigint = QCheck.make ~print:Bigint.to_string gen_bigint

let arb_nonzero =
  QCheck.make ~print:Bigint.to_string
    (QCheck.Gen.map
       (fun x -> if Bigint.is_zero x then Bigint.one else x)
       gen_bigint)

let unit_tests =
  [
    Alcotest.test_case "of_int/to_string basics" `Quick (fun () ->
        check_str "zero" "0" (s (bi 0));
        check_str "one" "1" (s (bi 1));
        check_str "neg" "-42" (s (bi (-42)));
        check_str "max_int" (string_of_int max_int) (s (bi max_int));
        check_str "min_int" (string_of_int min_int) (s (bi min_int)));
    Alcotest.test_case "of_string roundtrip" `Quick (fun () ->
        List.iter
          (fun str -> check_str str str (s (Bigint.of_string str)))
          [
            "0"; "1"; "-1"; "123456789012345678901234567890";
            "-98765432109876543210987654321098765432109876543210";
            "1000000000000000000000000000000000000000";
          ];
        check_str "underscores" "1234567" (s (Bigint.of_string "1_234_567")));
    Alcotest.test_case "add/sub carry chains" `Quick (fun () ->
        let x = Bigint.of_string "999999999999999999999999999999" in
        check_str "x+1" "1000000000000000000000000000000" (s (Bigint.succ x));
        check_str "(x+1)-1" (s x) (s (Bigint.pred (Bigint.succ x))));
    Alcotest.test_case "mul known values" `Quick (fun () ->
        let x = Bigint.of_string "123456789123456789" in
        check_str "square" "15241578780673678515622620750190521"
          (s (Bigint.mul x x));
        check_str "times zero" "0" (s (Bigint.mul x Bigint.zero));
        check_str "neg*neg" (s (Bigint.mul x x))
          (s (Bigint.mul (Bigint.neg x) (Bigint.neg x))));
    Alcotest.test_case "divmod known values" `Quick (fun () ->
        let a = Bigint.of_string "10000000000000000000000000000000000001" in
        let b = Bigint.of_string "333333333333333333" in
        let q, r = Bigint.divmod a b in
        check_str "reconstruct" (s a) (s (Bigint.add (Bigint.mul q b) r));
        Alcotest.(check bool) "r in range" true
          (Bigint.compare r Bigint.zero >= 0 && Bigint.compare r (Bigint.abs b) < 0));
    Alcotest.test_case "euclidean remainder is non-negative" `Quick (fun () ->
        List.iter
          (fun (a, b) ->
            let q, r = Bigint.divmod (bi a) (bi b) in
            Alcotest.(check bool)
              (Printf.sprintf "%d /%% %d" a b)
              true
              (Bigint.sign r >= 0
              && Bigint.compare r (Bigint.abs (bi b)) < 0
              && Bigint.equal (bi a) (Bigint.add (Bigint.mul q (bi b)) r)))
          [ (7, 3); (-7, 3); (7, -3); (-7, -3); (0, 5); (6, 3); (-6, 3); (-6, -3) ]);
    Alcotest.test_case "divmod regression: power-of-two divisors, s=0 path" `Quick
      (fun () ->
        (* Knuth D with a normalized divisor (shift 0) must still extend
           the dividend by a top digit; 2^59's top digit is 2^29, which
           is already normalized in base 2^30. *)
        List.iter
          (fun (kx, kd) ->
            let x = Bigint.pred (Bigint.pow Bigint.two kx) in
            let d = Bigint.pow Bigint.two kd in
            let q, r = Bigint.divmod x d in
            Alcotest.(check bool)
              (Printf.sprintf "2^%d-1 / 2^%d" kx kd)
              true
              (Bigint.equal x (Bigint.add (Bigint.mul q d) r)
              && Bigint.sign r >= 0
              && Bigint.compare r d < 0))
          [ (90, 59); (120, 59); (120, 89); (300, 239); (61, 59) ]);
    Alcotest.test_case "pow" `Quick (fun () ->
        check_str "2^100" "1267650600228229401496703205376" (s (Bigint.pow Bigint.two 100));
        check_str "x^0" "1" (s (Bigint.pow (bi 12345) 0));
        check_str "(-3)^3" "-27" (s (Bigint.pow (bi (-3)) 3)));
    Alcotest.test_case "shifts" `Quick (fun () ->
        check_str "1 << 100" (s (Bigint.pow Bigint.two 100)) (s (Bigint.shift_left Bigint.one 100));
        check_str "shift back" "1" (s (Bigint.shift_right (Bigint.shift_left Bigint.one 100) 100));
        check_str "floor of -5 >> 1" "-3" (s (Bigint.shift_right (bi (-5)) 1));
        check_str "floor of -4 >> 1" "-2" (s (Bigint.shift_right (bi (-4)) 1)));
    Alcotest.test_case "gcd/lcm" `Quick (fun () ->
        check_str "gcd" "6" (s (Bigint.gcd (bi 54) (bi (-24))));
        check_str "gcd with zero" "7" (s (Bigint.gcd (bi 0) (bi 7)));
        check_str "lcm" "36" (s (Bigint.lcm (bi 12) (bi 18)));
        let big = Bigint.pow (bi 10) 50 in
        check_str "gcd big" (s big) (s (Bigint.gcd big (Bigint.mul big (bi 3)))));
    Alcotest.test_case "to_int bounds" `Quick (fun () ->
        Alcotest.(check (option int)) "max_int" (Some max_int) (Bigint.to_int (bi max_int));
        Alcotest.(check (option int)) "min_int+1" (Some (min_int + 1)) (Bigint.to_int (bi (min_int + 1)));
        Alcotest.(check (option int)) "overflow" None
          (Bigint.to_int (Bigint.mul (bi max_int) (bi 2))));
    Alcotest.test_case "of_float_floor" `Quick (fun () ->
        check_str "3.7" "3" (s (Bigint.of_float_floor 3.7));
        check_str "-3.2" "-4" (s (Bigint.of_float_floor (-3.2)));
        check_str "1e20" "100000000000000000000" (s (Bigint.of_float_floor 1e20)));
    Alcotest.test_case "compare is a total order on samples" `Quick (fun () ->
        let xs = List.map bi [ -100; -1; 0; 1; 2; 100; max_int ] in
        List.iteri
          (fun i x ->
            List.iteri
              (fun j y ->
                Alcotest.(check int)
                  (Printf.sprintf "cmp %d %d" i j)
                  (compare i j) (Bigint.compare x y))
              xs)
          xs);
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let property_tests =
  [
    prop "string roundtrip" 500 arb_bigint (fun x ->
        Bigint.equal x (Bigint.of_string (Bigint.to_string x)));
    prop "normal form" 500 arb_bigint Bigint.check_invariant;
    prop "add commutative" 300 (QCheck.pair arb_bigint arb_bigint) (fun (x, y) ->
        Bigint.equal (Bigint.add x y) (Bigint.add y x));
    prop "add associative" 300 (QCheck.triple arb_bigint arb_bigint arb_bigint)
      (fun (x, y, z) ->
        Bigint.equal (Bigint.add (Bigint.add x y) z) (Bigint.add x (Bigint.add y z)));
    prop "sub then add" 300 (QCheck.pair arb_bigint arb_bigint) (fun (x, y) ->
        Bigint.equal x (Bigint.add (Bigint.sub x y) y));
    prop "mul commutative" 300 (QCheck.pair arb_bigint arb_bigint) (fun (x, y) ->
        Bigint.equal (Bigint.mul x y) (Bigint.mul y x));
    prop "mul distributes" 300 (QCheck.triple arb_bigint arb_bigint arb_bigint)
      (fun (x, y, z) ->
        Bigint.equal
          (Bigint.mul x (Bigint.add y z))
          (Bigint.add (Bigint.mul x y) (Bigint.mul x z)));
    prop "divmod identity" 500 (QCheck.pair arb_bigint arb_nonzero) (fun (a, b) ->
        let q, r = Bigint.divmod a b in
        Bigint.equal a (Bigint.add (Bigint.mul q b) r)
        && Bigint.sign r >= 0
        && Bigint.compare r (Bigint.abs b) < 0);
    prop "div by self" 300 arb_nonzero (fun x ->
        Bigint.equal Bigint.one (Bigint.div x x));
    prop "gcd divides both" 300 (QCheck.pair arb_bigint arb_bigint) (fun (x, y) ->
        let g = Bigint.gcd x y in
        if Bigint.is_zero g then Bigint.is_zero x && Bigint.is_zero y
        else Bigint.is_zero (Bigint.rem x g) && Bigint.is_zero (Bigint.rem y g));
    prop "gcd is non-negative and symmetric" 300 (QCheck.pair arb_bigint arb_bigint)
      (fun (x, y) ->
        let g = Bigint.gcd x y in
        Bigint.sign g >= 0 && Bigint.equal g (Bigint.gcd y x));
    prop "shift_left equals mul by power" 200
      (QCheck.pair arb_bigint (QCheck.int_range 0 120))
      (fun (x, k) ->
        Bigint.equal (Bigint.shift_left x k) (Bigint.mul x (Bigint.pow Bigint.two k)));
    prop "shift_right is floor division" 200
      (QCheck.pair arb_bigint (QCheck.int_range 0 120))
      (fun (x, k) ->
        let d = Bigint.pow Bigint.two k in
        Bigint.equal (Bigint.shift_right x k) (Bigint.div x d)
        (* Euclidean division by a positive divisor is floor division. *));
    prop "compare antisymmetric" 300 (QCheck.pair arb_bigint arb_bigint) (fun (x, y) ->
        Bigint.compare x y = -Bigint.compare y x);
    prop "neg involutive" 300 arb_bigint (fun x -> Bigint.equal x (Bigint.neg (Bigint.neg x)));
    prop "abs non-negative" 300 arb_bigint (fun x -> Bigint.sign (Bigint.abs x) >= 0);
    prop "int agreement" 500 (QCheck.pair QCheck.int QCheck.int) (fun (a, b) ->
        (* Cross-check against native arithmetic where it cannot overflow. *)
        let a = a asr 2 and b = b asr 2 in
        Bigint.equal (Bigint.add (bi a) (bi b)) (bi (a + b))
        && Bigint.equal (Bigint.sub (bi a) (bi b)) (bi (a - b))
        && Bigint.compare (bi a) (bi b) = compare a b);
    prop "to_float sign" 300 arb_bigint (fun x ->
        let f = Bigint.to_float x in
        (Bigint.sign x > 0 && f > 0.) || (Bigint.sign x < 0 && f < 0.)
        || (Bigint.sign x = 0 && f = 0.));
  ]

let suite = unit_tests @ property_tests
