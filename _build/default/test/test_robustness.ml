(* Error-path and robustness tests: invalid inputs must fail loudly and
   precisely, and the parametric scenario sweeps must match their
   closed-form ratios. *)

open Execgraph

let q = Rat.of_ints

let raises_invalid name f =
  Alcotest.(check bool) name true
    (match f () with
    | exception Invalid_argument _ -> true
    | exception Division_by_zero -> true
    | _ -> false)

let unit_tests =
  [
    Alcotest.test_case "bigint: malformed strings rejected" `Quick (fun () ->
        List.iter
          (fun s -> raises_invalid s (fun () -> Bigint.of_string s))
          [ ""; "abc"; "1.5"; "--3"; "-" ];
        raises_invalid "pow negative" (fun () -> Bigint.pow Bigint.two (-1));
        raises_invalid "shift negative" (fun () -> Bigint.shift_left Bigint.one (-1));
        raises_invalid "div by zero" (fun () -> Bigint.div Bigint.one Bigint.zero);
        raises_invalid "of_float nan" (fun () -> Bigint.of_float_floor Float.nan));
    Alcotest.test_case "rat: zero denominators and inverses rejected" `Quick (fun () ->
        raises_invalid "of_ints 1 0" (fun () -> Rat.of_ints 1 0);
        raises_invalid "inv 0" (fun () -> Rat.inv Rat.zero);
        raises_invalid "div by 0" (fun () -> Rat.div Rat.one Rat.zero));
    Alcotest.test_case "digraph: out-of-range edges rejected" `Quick (fun () ->
        let g = Digraph.create 2 in
        raises_invalid "src out of range" (fun () -> Digraph.add_edge g ~src:5 ~dst:0);
        raises_invalid "dst out of range" (fun () -> Digraph.add_edge g ~src:0 ~dst:(-1));
        raises_invalid "edge index" (fun () -> Digraph.edge g 0));
    Alcotest.test_case "execgraph: invalid construction rejected" `Quick (fun () ->
        let g = Graph.create ~nprocs:2 in
        raises_invalid "bad process" (fun () -> Graph.add_event g ~proc:7);
        raises_invalid "bad event ids" (fun () -> Graph.add_message g ~src:0 ~dst:1);
        raises_invalid "event out of range" (fun () -> Graph.event g 0));
    Alcotest.test_case "abc checker: Xi <= 1 rejected" `Quick (fun () ->
        let g = Graph.create ~nprocs:1 in
        ignore (Graph.add_event g ~proc:0);
        raises_invalid "Xi = 1" (fun () -> Abc_check.is_admissible g ~xi:Rat.one);
        raises_invalid "Xi = 1/2" (fun () -> Abc_check.is_admissible g ~xi:(q 1 2)));
    Alcotest.test_case "scenario builders validate their parameters" `Quick (fun () ->
        raises_invalid "spanning k1=0" (fun () -> Core.Scenarios.spanning_cycle ~k1:0 ~k2:3 ());
        raises_invalid "timeout odd chain" (fun () -> Core.Scenarios.timeout ~chain:3 ());
        raises_invalid "timeout chain 0" (fun () -> Core.Scenarios.timeout ~chain:0 ()));
    Alcotest.test_case "lockstep schedules validate" `Quick (fun () ->
        raises_invalid "uniform 0" (fun () -> Core.Lockstep.uniform_schedule 0);
        raises_invalid "doubling 0" (fun () -> Core.Lockstep.doubling_schedule 0));
    Alcotest.test_case "sim config validation" `Quick (fun () ->
        let algo : (unit, unit) Sim.algorithm =
          {
            init = (fun ~self:_ ~nprocs:_ -> ((), []));
            step = (fun ~self:_ ~nprocs:_ () ~sender:_ () -> ((), []));
          }
        in
        raises_invalid "fault array size" (fun () ->
            Sim.make_config ~nprocs:3 ~algorithm:algo ~faults:[| Sim.Correct |]
              ~scheduler:(Sim.constant_scheduler Rat.one) ~max_events:10 ());
        raises_invalid "byzantine without algorithm" (fun () ->
            Sim.make_config ~nprocs:1 ~algorithm:algo ~faults:[| Sim.Byzantine |]
              ~scheduler:(Sim.constant_scheduler Rat.one) ~max_events:10 ()));
    Alcotest.test_case "cycle ratio on non-relevant cycles rejected" `Quick (fun () ->
        let g = Graph.create ~nprocs:1 in
        let a = Graph.add_event g ~proc:0 in
        let b = Graph.add_event g ~proc:0 in
        ignore (Graph.add_message g ~src:a.Event.id ~dst:b.Event.id);
        match Cycle.enumerate g with
        | [ c ] -> raises_invalid "ratio of non-relevant" (fun () -> Cycle.ratio c)
        | _ -> Alcotest.fail "expected one cycle");
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let property_tests =
  [
    prop "spanning_cycle threshold is exactly k2/k1" 60
      (QCheck.pair (QCheck.int_range 1 6) (QCheck.int_range 1 7))
      (fun (k1, k2) ->
        (* qcheck's int_range shrinker can escape its bounds; clamp *)
        let k1 = max 1 k1 and k2 = max 1 k2 in
        let g = Core.Scenarios.spanning_cycle ~k1 ~k2 () in
        (* admissible iff Xi > k2/k1: probe both sides of the boundary *)
        let r = Rat.of_ints k2 k1 in
        let above = Rat.max (Rat.add r (q 1 100)) (q 101 100) in
        let ok_above = Abc_check.is_admissible g ~xi:above in
        let ok_at =
          if Rat.compare r Rat.one > 0 then not (Abc_check.is_admissible g ~xi:r) else true
        in
        ok_above && ok_at);
    prop "deferring adversary never breaks admissibility" 12
      (QCheck.int_range 0 1000)
      (fun seed ->
        let xi = q (2 + (seed mod 3)) 1 in
        let cfg =
          Sim.make_config ~nprocs:4
            ~algorithm:(Core.Clock_sync.algorithm ~f:1)
            ~faults:(Array.make 4 Sim.Correct)
            ~scheduler:(Sim.constant_scheduler Rat.one)
            ~max_events:(120 + (seed mod 60))
            ()
        in
        let r =
          Sim.run_deferring cfg ~xi ~victim:(fun ~sender ~dst:_ -> sender = seed mod 4)
        in
        Abc_check.is_admissible r.Sim.graph ~xi && Graph.is_dag r.Sim.graph);
  ]

let suite = unit_tests @ property_tests
