(* Tests for the model-relation modules: Θ-Model (Theorem 6), ParSync
   and the Fig. 8 game, FIFO from ABC (Fig. 10), MCM/MMR conditions,
   and the Section 6 variants. *)

open Core
open Execgraph

let xi a b = Rat.of_ints a b
let q = Rat.of_ints

let run_theta ?(seed = 5) ?(nprocs = 3) ~tau_minus ~tau_plus ~max_events () =
  let rng = Random.State.make [| seed |] in
  let scheduler = Sim.theta_scheduler ~rng ~tau_minus ~tau_plus () in
  let cfg =
    Sim.make_config ~nprocs
      ~algorithm:(Clock_sync.algorithm ~f:0)
      ~faults:(Array.make nprocs Sim.Correct) ~scheduler ~max_events ()
  in
  Sim.run cfg

let theta_tests =
  [
    Alcotest.test_case "static delay ratio within scheduler bounds" `Quick (fun () ->
        let r = run_theta ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) ~max_events:120 () in
        match Theta_model.static_delay_ratio r.Sim.graph with
        | None -> Alcotest.fail "expected timed messages"
        | Some ratio -> Alcotest.(check bool) "<= 2" true Rat.O.(ratio <= q 2 1));
    Alcotest.test_case "thm6: Theta executions are ABC-admissible (Xi > Theta)" `Quick
      (fun () ->
        let r = run_theta ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) ~max_events:150 () in
        Alcotest.(check bool) "subset check" true
          (Theta_model.subset_of_abc r.Sim.graph ~theta:(q 2 1) ~xi:(q 9 4));
        Alcotest.(check bool) "directly admissible" true
          (Abc_check.is_admissible r.Sim.graph ~xi:(q 9 4)));
    Alcotest.test_case "dynamic Theta condition holds for uniform scheduler" `Quick
      (fun () ->
        let r = run_theta ~tau_minus:(q 1 1) ~tau_plus:(q 3 2) ~max_events:100 () in
        Alcotest.(check bool) "dynamic admissible" true
          (Theta_model.dynamic_admissible r.Sim.graph ~theta:(q 3 2)));
    Alcotest.test_case "converse of thm6 fails: ABC execution outside every Theta" `Quick
      (fun () ->
        (* a targeted scheduler stretches one isolated message without
           creating any relevant cycle: ABC-admissible, Θ-violating *)
        let rng = Random.State.make [| 9 |] in
        let scheduler =
          Sim.targeted_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1)
            ~victim:(fun ~sender:_ ~dst ~msg_index:_ -> dst = 2)
            ~stretched:(fun ~send_time -> Rat.add (q 500 1) send_time)
            ()
        in
        (* p2 only listens: use clock sync with n=3 but f=0; p2's
           replies exist but every message TO p2 is slow.  The delay
           ratio explodes while relevant cycles through p2 stay rare. *)
        let cfg =
          Sim.make_config ~nprocs:3
            ~algorithm:(Clock_sync.algorithm ~f:0)
            ~faults:[| Sim.Correct; Sim.Correct; Sim.Correct |]
            ~scheduler ~max_events:60 ()
        in
        let r = Sim.run cfg in
        match Theta_model.static_delay_ratio r.Sim.graph with
        | None -> () (* zero-delay message: outside every Theta, fine *)
        | Some ratio ->
            Alcotest.(check bool) "ratio far above any reasonable Theta" true
              Rat.O.(ratio > q 50 1));
  ]

let parsync_tests =
  [
    Alcotest.test_case "fig8: prover wins for every adversary choice" `Quick (fun () ->
        List.iter
          (fun (phi, delta) ->
            Alcotest.(check bool)
              (Printf.sprintf "phi=%d delta=%d" phi delta)
              true
              (Parsync.prover_wins ~phi ~delta ~xi:(xi 5 4)))
          [ (1, 1); (3, 2); (5, 10); (20, 7); (50, 50) ]);
    Alcotest.test_case "fig8: prover execution admissible for tiny Xi" `Quick (fun () ->
        let g = Parsync.prover_execution ~phi:4 ~delta:4 in
        Alcotest.(check bool) "admissible at 21/20" true
          (Abc_check.is_admissible g ~xi:(xi 21 20)));
    Alcotest.test_case "parsync checks accept compliant executions" `Quick (fun () ->
        (* a fully synchronous round-robin-ish run: constant delays *)
        let rng = Random.State.make [| 4 |] in
        ignore rng;
        let scheduler = Sim.constant_scheduler (q 1 1) in
        let cfg =
          Sim.make_config ~nprocs:3
            ~algorithm:(Clock_sync.algorithm ~f:0)
            ~faults:[| Sim.Correct; Sim.Correct; Sim.Correct |]
            ~scheduler ~max_events:90 ()
        in
        let r = Sim.run cfg in
        (* generous bounds: every message spans at most a few global
           events per time unit with constant delays *)
        Alcotest.(check bool) "consistent with large (phi, delta)" true
          (Parsync.parsync_consistent r.Sim.graph ~phi:60 ~delta:60));
  ]

let fifo_tests =
  [
    Alcotest.test_case "fig10: chatter 4 gives FIFO at Xi=4" `Quick (fun () ->
        Alcotest.(check bool) "guaranteed" true
          (Fifo.fifo_guaranteed ~xi:(xi 4 1) ~n_messages:4 ~chatter:4));
    Alcotest.test_case "fig10: reordering closes a relevant cycle of ratio 5" `Quick
      (fun () ->
        let bad = Fifo.build ~n_messages:2 ~chatter:4 ~reordered:(Some 0) () in
        match Abc_check.check bad.Fifo.graph ~xi:(xi 4 1) with
        | Abc_check.Admissible -> Alcotest.fail "should violate at Xi=4"
        | Abc_check.Violation c ->
            Alcotest.(check bool) "ratio is 5" true
              (Rat.equal (Cycle.ratio c) (xi 5 1)));
    Alcotest.test_case "fig10: insufficient chatter gives no FIFO guarantee" `Quick
      (fun () ->
        (* chatter 2 -> reorder cycle ratio 3 < Xi=4: allowed *)
        let bad = Fifo.build ~n_messages:2 ~chatter:2 ~reordered:(Some 0) () in
        Alcotest.(check bool) "reordered run admissible" true
          (Abc_check.is_admissible bad.Fifo.graph ~xi:(xi 4 1)));
    Alcotest.test_case "fig10: in-order run admissible for every Xi" `Quick (fun () ->
        let ok = Fifo.build ~n_messages:5 ~chatter:6 ~reordered:None () in
        List.iter
          (fun x ->
            Alcotest.(check bool) (Rat.to_string x) true
              (Abc_check.is_admissible ok.Fifo.graph ~xi:x))
          [ xi 21 20; xi 3 2; xi 10 1 ]);
  ]

let related_tests =
  [
    Alcotest.test_case "mcm: split exists iff factor-2 gap" `Quick (fun () ->
        let d l = List.map (fun (a, b) -> q a b) l in
        (match Related_models.mcm_split (d [ (1, 1); (11, 10); (5, 1); (6, 1) ]) with
        | None -> Alcotest.fail "expected a split"
        | Some c ->
            Alcotest.(check int) "fast count" 2 c.Related_models.n_fast;
            Alcotest.(check int) "slow count" 2 c.Related_models.n_slow);
        Alcotest.(check bool) "no split in dense delays" true
          (Related_models.mcm_split (d [ (1, 1); (3, 2); (2, 1); (3, 1) ]) = None));
    Alcotest.test_case "mmr: stable quorum detection" `Quick (fun () ->
        (* n=4, f=1: quorum 3; rounds where {0,1,2} always come first *)
        let good = [ [ 0; 1; 2; 3 ]; [ 2; 0; 1; 3 ]; [ 1; 2; 0; 3 ] ] in
        Alcotest.(check bool) "holds" true (Related_models.mmr_holds ~n:4 ~f:1 good);
        let bad = [ [ 0; 1; 2; 3 ]; [ 3; 0; 1; 2 ]; [ 2; 3; 0; 1 ] ] in
        Alcotest.(check bool) "fails" false (Related_models.mmr_holds ~n:4 ~f:1 bad);
        Alcotest.(check int) "stable size" 1
          (Related_models.mmr_stable_quorum_size ~n:4 ~f:1 bad));
  ]

let variants_tests =
  [
    Alcotest.test_case "eventual ABC: violating prefix is cut away" `Quick (fun () ->
        (* a graph that violates Xi=2 early (Fig. 3 shape) followed by
           nothing: the whole graph violates, the suffix is clean *)
        let g = Test_execgraph.build_fig ~reply_after_psi:true () in
        match Variants.eventually_admissible g ~xi:(xi 2 1) with
        | None -> Alcotest.fail "a suffix must be admissible"
        | Some k ->
            Alcotest.(check bool) "nontrivial cut" true (k > 0);
            Alcotest.(check bool) "suffix admissible" true
              (Abc_check.is_admissible (Variants.suffix_graph g ~cut:k) ~xi:(xi 2 1)));
    Alcotest.test_case "eventual ABC: admissible graph needs no cut" `Quick (fun () ->
        let g = Test_execgraph.build_fig1 () in
        Alcotest.(check (option int)) "cut 0" (Some 0)
          (Variants.eventually_admissible g ~xi:(xi 2 1)));
    Alcotest.test_case "xi learner converges upward" `Quick (fun () ->
        let open Variants.Xi_learner in
        let l = create ~initial:(xi 3 2) in
        let l = observe l ~ratio:(xi 2 1) ~margin:(xi 1 2) in
        Alcotest.(check bool) "revised" true (Rat.equal (estimate l) (xi 5 2));
        let l = observe l ~ratio:(xi 2 1) ~margin:(xi 1 2) in
        Alcotest.(check int) "no second revision" 1 (revisions l));
    Alcotest.test_case "bounded-cycle restriction is weaker" `Quick (fun () ->
        (* fig1 cycle has 4 forward messages: restricting to <= 2
           forward messages exempts it *)
        let g = Test_execgraph.build_fig1 () in
        Alcotest.(check bool) "violates unrestricted at 5/4" false
          (Abc_check.is_admissible g ~xi:(xi 5 4));
        Alcotest.(check bool) "admissible under bounded-cycle model" true
          (Variants.admissible_bounded_cycles g ~xi:(xi 5 4) ~max_forward:2));
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000)

let property_tests =
  [
    prop "thm6 on random Theta executions" 25 arb_seed (fun seed ->
        let r = run_theta ~seed ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) ~max_events:80 () in
        Theta_model.subset_of_abc r.Sim.graph ~theta:(q 2 1) ~xi:(q 9 4));
    prop "eventually_admissible returns the minimal admissible cut" 40 arb_seed
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:14 ~max_delay:3 ~fanout:2 in
        let x = xi 3 2 in
        match Variants.eventually_admissible g ~xi:x with
        | None -> true
        | Some 0 -> Abc_check.is_admissible g ~xi:x
        | Some k ->
            Abc_check.is_admissible (Variants.suffix_graph g ~cut:k) ~xi:x
            && not (Abc_check.is_admissible (Variants.suffix_graph g ~cut:(k - 1)) ~xi:x));
    prop "fig8 game across the adversary grid" 20 arb_seed (fun seed ->
        let phi = 1 + (seed mod 17) and delta = 1 + (seed mod 23) in
        Parsync.prover_wins ~phi ~delta ~xi:(xi 6 5));
  ]

let base_suite =
  theta_tests @ parsync_tests @ fifo_tests @ related_tests @ variants_tests
  @ property_tests

(* ------------------------------------------------------------------ *)
(* Additional coverage: MCM boundary pairs, Theta bounds, cut at_time *)

let coverage_tests =
  [
    Alcotest.test_case "mcm_boundary_pairs counts (1,2] ratios" `Quick (fun () ->
        let d l = List.map (fun (a, b) -> q a b) l in
        (* pairs: (1,3/2) ratio 3/2 bad; (1,4) ratio 4 ok; (3/2,4) ratio 8/3 ok *)
        let frac = Related_models.mcm_boundary_pairs (d [ (1, 1); (3, 2); (4, 1) ]) in
        Alcotest.(check bool) "1/3 of pairs" true (abs_float (frac -. (1.0 /. 3.0)) < 1e-9);
        Alcotest.(check bool) "no pairs -> 0" true
          (Related_models.mcm_boundary_pairs [] = 0.0));
    Alcotest.test_case "theta delay_bounds on a constant schedule" `Quick (fun () ->
        let r = run_theta ~tau_minus:(q 3 2) ~tau_plus:(q 3 2) ~max_events:60 () in
        match Theta_model.delay_bounds r.Sim.graph with
        | None -> Alcotest.fail "expected messages"
        | Some (lo, hi) ->
            Alcotest.(check bool) "lo = hi = 3/2" true
              (Rat.equal lo (q 3 2) && Rat.equal hi (q 3 2));
            Alcotest.(check bool) "ratio 1" true
              (match Theta_model.static_delay_ratio r.Sim.graph with
              | Some x -> Rat.equal x Rat.one
              | None -> false));
    Alcotest.test_case "cut at_time is left-closed on simulated runs" `Quick (fun () ->
        let r = run_theta ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) ~max_events:80 () in
        let g = r.Sim.graph in
        List.iter
          (fun t ->
            let c = Cut.at_time g (q t 1) in
            let cl = Cut.left_closure g c in
            Alcotest.(check bool)
              (Printf.sprintf "closed at t=%d" t)
              true
              (Cut.frontier cl = Cut.frontier c))
          [ 0; 3; 7; 15 ]);
    Alcotest.test_case "parsync delivery check catches the Fig. 8 stall" `Quick (fun () ->
        (* the slow message spans far more than delta + phi global
           ticks; r's only event is terminal, so the speed check (which
           requires activity on both sides of the window) is vacuous
           here -- the delivery condition is what the prover violates *)
        let g = Parsync.prover_execution ~phi:3 ~delta:3 in
        Alcotest.(check bool) "delivery violations found" true
          (Parsync.delivery_violations g ~phi:3 ~delta:3 <> []);
        Alcotest.(check bool) "not parsync consistent" false
          (Parsync.parsync_consistent g ~phi:3 ~delta:3));
    Alcotest.test_case "parsync speed check catches a mid-run stall" `Quick (fun () ->
        (* p takes a step, stalls while q takes 6 steps, then resumes:
           a Phi = 3 violation *)
        let g = Graph.create ~nprocs:2 in
        let p0 = Graph.add_event g ~proc:0 in
        let qe = ref None in
        for _ = 1 to 6 do
          qe := Some (Graph.add_event g ~proc:1)
        done;
        let p1 = Graph.add_event g ~proc:0 in
        ignore (Graph.add_message g ~src:p0.Event.id ~dst:(Option.get !qe).Event.id);
        ignore (Graph.add_message g ~src:(Option.get !qe).Event.id ~dst:p1.Event.id);
        Alcotest.(check bool) "violation found" true
          (Parsync.speed_violations g ~phi:3 <> []);
        Alcotest.(check bool) "fine with generous phi" true
          (Parsync.speed_violations g ~phi:10 = []));
  ]

let suite = base_suite @ coverage_tests
