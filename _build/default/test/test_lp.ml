(* Tests for the Fourier-Motzkin solver: feasibility, solutions,
   strictness handling, and Farkas certificates (Theorem 10). *)

let q = Rat.of_ints
let qa l = Array.of_list (List.map (fun (a, b) -> q a b) l)

let row coeffs rel rhs = (qa coeffs, rel, rhs)

let both_solvers = [ ("fm", Lp.solve); ("simplex", Simplex.solve) ]

let unit_tests =
  [
    Alcotest.test_case "single variable interval" `Quick (fun () ->
        (* 1 < x < 2 *)
        let sys =
          Lp.make_system ~nvars:1
            [ row [ (-1, 1) ] Lp.Lt (q (-1) 1); row [ (1, 1) ] Lp.Lt (q 2 1) ]
        in
        List.iter
          (fun (name, solve) ->
            match solve sys with
            | Lp.Infeasible _ -> Alcotest.failf "%s: should be feasible" name
            | Lp.Feasible x ->
                Alcotest.(check bool) (name ^ " checks") true (Lp.check_solution sys x);
                Alcotest.(check bool) (name ^ " strictly inside") true
                  Rat.O.(x.(0) > Rat.one && x.(0) < Rat.two))
          both_solvers);
    Alcotest.test_case "empty strict interval is infeasible" `Quick (fun () ->
        (* x < 1 and x > 1 *)
        let sys =
          Lp.make_system ~nvars:1
            [ row [ (1, 1) ] Lp.Lt (q 1 1); row [ (-1, 1) ] Lp.Lt (q (-1) 1) ]
        in
        List.iter
          (fun (name, solve) ->
            match solve sys with
            | Lp.Feasible _ -> Alcotest.failf "%s: should be infeasible" name
            | Lp.Infeasible cert ->
                Alcotest.(check bool) (name ^ " certificate valid") true
                  (Lp.check_certificate sys cert))
          both_solvers);
    Alcotest.test_case "point solution with non-strict bounds" `Quick (fun () ->
        (* x <= 1 and x >= 1 forces x = 1 *)
        let sys =
          Lp.make_system ~nvars:1
            [ row [ (1, 1) ] Lp.Le (q 1 1); row [ (-1, 1) ] Lp.Le (q (-1) 1) ]
        in
        match Lp.solve sys with
        | Lp.Infeasible _ -> Alcotest.fail "should be feasible"
        | Lp.Feasible x -> Alcotest.(check bool) "x=1" true (Rat.equal x.(0) Rat.one));
    Alcotest.test_case "two variables, coupled" `Quick (fun () ->
        (* x + y < 4, x - y < 0, -x < -1  =>  e.g. x = 3/2, y > 3/2 *)
        let sys =
          Lp.make_system ~nvars:2
            [
              row [ (1, 1); (1, 1) ] Lp.Lt (q 4 1);
              row [ (1, 1); (-1, 1) ] Lp.Lt (q 0 1);
              row [ (-1, 1); (0, 1) ] Lp.Lt (q (-1) 1);
            ]
        in
        match Lp.solve sys with
        | Lp.Infeasible _ -> Alcotest.fail "should be feasible"
        | Lp.Feasible x -> Alcotest.(check bool) "checks" true (Lp.check_solution sys x));
    Alcotest.test_case "infeasible triangle with certificate" `Quick (fun () ->
        (* x - y <= -1, y - z <= -1, z - x <= -1 sums to 0 <= -3 *)
        let sys =
          Lp.make_system ~nvars:3
            [
              row [ (1, 1); (-1, 1); (0, 1) ] Lp.Le (q (-1) 1);
              row [ (0, 1); (1, 1); (-1, 1) ] Lp.Le (q (-1) 1);
              row [ (-1, 1); (0, 1); (1, 1) ] Lp.Le (q (-1) 1);
            ]
        in
        match Lp.solve sys with
        | Lp.Feasible _ -> Alcotest.fail "should be infeasible"
        | Lp.Infeasible cert ->
            Alcotest.(check bool) "certificate valid" true (Lp.check_certificate sys cert);
            Alcotest.(check bool) "ytb negative" true (Rat.sign cert.Lp.y_b < 0));
    Alcotest.test_case "strict zero-sum infeasibility" `Quick (fun () ->
        (* x - y < 0 and y - x <= 0: adding gives 0 < 0 *)
        let sys =
          Lp.make_system ~nvars:2
            [
              row [ (1, 1); (-1, 1) ] Lp.Lt (q 0 1);
              row [ (-1, 1); (1, 1) ] Lp.Le (q 0 1);
            ]
        in
        match Lp.solve sys with
        | Lp.Feasible _ -> Alcotest.fail "should be infeasible"
        | Lp.Infeasible cert ->
            Alcotest.(check bool) "certificate valid" true (Lp.check_certificate sys cert);
            Alcotest.(check bool) "strict involved" true cert.Lp.strict_involved);
    Alcotest.test_case "unbounded directions still feasible" `Quick (fun () ->
        let sys = Lp.make_system ~nvars:3 [ row [ (1, 1); (0, 1); (0, 1) ] Lp.Lt (q 5 1) ] in
        match Lp.solve sys with
        | Lp.Infeasible _ -> Alcotest.fail "should be feasible"
        | Lp.Feasible x -> Alcotest.(check bool) "checks" true (Lp.check_solution sys x));
  ]

(* Random systems: compare the solver's verdict against its own
   evidence (solution check / certificate check), which must always
   hold; and against a rational "ball" sampling for small systems. *)
let gen_system =
  let open QCheck.Gen in
  int_range 1 4 >>= fun nvars ->
  int_range 1 8 >>= fun nrows ->
  let gen_row =
    list_repeat nvars (int_range (-3) 3) >>= fun coeffs ->
    int_range (-6) 6 >>= fun rhs ->
    bool >>= fun strict ->
    return
      ( Array.of_list (List.map (fun c -> q c 1) coeffs),
        (if strict then Lp.Lt else Lp.Le),
        q rhs 1 )
  in
  list_repeat nrows gen_row >>= fun rows -> return (Lp.make_system ~nvars rows)

let arb_system =
  QCheck.make
    ~print:(fun _sys -> "<system>")
    gen_system

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let property_tests =
  [
    prop "FM verdicts come with valid evidence" 300 arb_system (fun sys ->
        match Lp.solve sys with
        | Lp.Feasible x -> Lp.check_solution sys x
        | Lp.Infeasible cert -> Lp.check_certificate sys cert);
    prop "simplex verdicts come with valid evidence" 300 arb_system (fun sys ->
        match Simplex.solve sys with
        | Lp.Feasible x -> Lp.check_solution sys x
        | Lp.Infeasible cert -> Lp.check_certificate sys cert);
    prop "simplex and FM agree on feasibility" 300 arb_system (fun sys ->
        let v = function Lp.Feasible _ -> true | Lp.Infeasible _ -> false in
        v (Simplex.solve sys) = v (Lp.solve sys));
    prop "scaling rows preserves the verdict" 150 arb_system (fun sys ->
        (* multiply each row by 2: geometrically identical *)
        let scaled =
          match sys with
          | { Lp.nvars; rows } ->
              Lp.make_system ~nvars
                (List.map
                   (fun (c, r, b) -> (Array.map (Rat.mul Rat.two) c, r, Rat.mul Rat.two b))
                   rows)
        in
        let verdict s = match Lp.solve s with Lp.Feasible _ -> true | _ -> false in
        verdict sys = verdict scaled);
  ]

let suite = unit_tests @ property_tests
