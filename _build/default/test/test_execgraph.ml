(* Tests for execution graphs: Definitions 1-6 of the paper, the
   figure scenarios (Figs. 1, 3, 4), and cross-validation of the
   polynomial ABC admissibility checker against the exhaustive
   cycle-enumeration oracle. *)

open Execgraph

let xi a b = Rat.of_ints a b

let is_admissible_enum g ~xi =
  match Abc_check.check_enumerate g ~xi with
  | Abc_check.Admissible -> true
  | Abc_check.Violation _ -> false

(* ------------------------------------------------------------------ *)
(* Figure 1: a relevant cycle where a slow chain C1 of 4 messages spans
   a fast chain C2 of 5 messages; ratio |Z-|/|Z+| = 5/4. *)

let build_fig1 () =
  let g = Graph.create ~nprocs:9 in
  (* q = 0, relays of C2 = 1..4, p = 5, relays of C1 = 6..8 *)
  let phi0 = Graph.add_event g ~proc:0 in
  let a1 = Graph.add_event g ~proc:1 in
  let a2 = Graph.add_event g ~proc:2 in
  let a3 = Graph.add_event g ~proc:3 in
  let a4 = Graph.add_event g ~proc:4 in
  let psi1 = Graph.add_event g ~proc:5 in
  let b1 = Graph.add_event g ~proc:6 in
  let b2 = Graph.add_event g ~proc:7 in
  let b3 = Graph.add_event g ~proc:8 in
  let psi2 = Graph.add_event g ~proc:5 in
  (* C2: m1 .. m5 *)
  ignore (Graph.add_message g ~src:phi0.Event.id ~dst:a1.Event.id);
  ignore (Graph.add_message g ~src:a1.Event.id ~dst:a2.Event.id);
  ignore (Graph.add_message g ~src:a2.Event.id ~dst:a3.Event.id);
  ignore (Graph.add_message g ~src:a3.Event.id ~dst:a4.Event.id);
  ignore (Graph.add_message g ~src:a4.Event.id ~dst:psi1.Event.id);
  (* C1: m6 .. m9 *)
  ignore (Graph.add_message g ~src:phi0.Event.id ~dst:b1.Event.id);
  ignore (Graph.add_message g ~src:b1.Event.id ~dst:b2.Event.id);
  ignore (Graph.add_message g ~src:b2.Event.id ~dst:b3.Event.id);
  ignore (Graph.add_message g ~src:b3.Event.id ~dst:psi2.Event.id);
  g

(* ------------------------------------------------------------------ *)
(* Figures 3 and 4: process p = 0 ping-pongs twice with pfast = 1 while
   a message to pslow = 2 is outstanding.  If the reply lands after the
   second pong (event psi), it closes a relevant cycle with ratio 4/2
   (Fig. 3); if it lands before psi, the big cycle is non-relevant
   (Fig. 4). *)

let build_fig ~reply_after_psi () =
  let g = Graph.create ~nprocs:3 in
  let phi0 = Graph.add_event g ~proc:0 in
  let tau1 = Graph.add_event g ~proc:1 in
  let phi1 = Graph.add_event g ~proc:0 in
  let tau2 = Graph.add_event g ~proc:1 in
  let sigma = Graph.add_event g ~proc:2 in
  let mk_tail () =
    if reply_after_psi then begin
      let psi = Graph.add_event g ~proc:0 in
      let phi'' = Graph.add_event g ~proc:0 in
      (psi, phi'')
    end
    else begin
      let phi = Graph.add_event g ~proc:0 in
      let psi = Graph.add_event g ~proc:0 in
      (psi, phi)
    end
  in
  let psi, reply_target = mk_tail () in
  ignore (Graph.add_message g ~src:phi0.Event.id ~dst:tau1.Event.id) (* ping1 *);
  ignore (Graph.add_message g ~src:tau1.Event.id ~dst:phi1.Event.id) (* pong1 *);
  ignore (Graph.add_message g ~src:phi1.Event.id ~dst:tau2.Event.id) (* ping2 *);
  ignore (Graph.add_message g ~src:tau2.Event.id ~dst:psi.Event.id) (* pong2 *);
  ignore (Graph.add_message g ~src:phi0.Event.id ~dst:sigma.Event.id) (* to pslow *);
  ignore (Graph.add_message g ~src:sigma.Event.id ~dst:reply_target.Event.id) (* reply *);
  g

(* ------------------------------------------------------------------ *)

let unit_tests =
  [
    Alcotest.test_case "builder: local edges and seq numbers" `Quick (fun () ->
        let g = Graph.create ~nprocs:2 in
        let e0 = Graph.add_event g ~proc:0 in
        let e1 = Graph.add_event g ~proc:0 in
        let e2 = Graph.add_event g ~proc:1 in
        Alcotest.(check int) "seq 0" 0 e0.Event.seq;
        Alcotest.(check int) "seq 1" 1 e1.Event.seq;
        Alcotest.(check int) "seq of other proc" 0 e2.Event.seq;
        Alcotest.(check int) "one local edge" 1 (Digraph.edge_count (Graph.digraph g));
        Alcotest.(check int) "events" 3 (Graph.event_count g);
        Alcotest.(check int) "no messages yet" 0 (Graph.message_count g));
    Alcotest.test_case "causally_before across message" `Quick (fun () ->
        let g = Graph.create ~nprocs:2 in
        let a = Graph.add_event g ~proc:0 in
        let b = Graph.add_event g ~proc:1 in
        let c = Graph.add_event g ~proc:1 in
        ignore (Graph.add_message g ~src:a.Event.id ~dst:b.Event.id);
        Alcotest.(check bool) "a -> b" true (Graph.causally_before g a.Event.id b.Event.id);
        Alcotest.(check bool) "a -> c via local" true
          (Graph.causally_before g a.Event.id c.Event.id);
        Alcotest.(check bool) "reflexive" true (Graph.causally_before g a.Event.id a.Event.id);
        Alcotest.(check bool) "not backwards" false
          (Graph.causally_before g c.Event.id a.Event.id));
    Alcotest.test_case "fig1: single relevant cycle with ratio 5/4" `Quick (fun () ->
        let g = build_fig1 () in
        let cycles = Cycle.enumerate g in
        Alcotest.(check int) "one cycle" 1 (List.length cycles);
        let c = List.hd cycles in
        Alcotest.(check bool) "relevant" true c.Cycle.relevant;
        Alcotest.(check int) "|Z-|" 5 c.Cycle.backward_messages;
        Alcotest.(check int) "|Z+|" 4 c.Cycle.forward_messages;
        Alcotest.(check bool) "ratio" true (Rat.equal (Cycle.ratio c) (xi 5 4)));
    Alcotest.test_case "fig1: admissible for Xi=2, violating for Xi=5/4" `Quick (fun () ->
        let g = build_fig1 () in
        Alcotest.(check bool) "Xi=2 poly" true (Abc_check.is_admissible g ~xi:(xi 2 1));
        Alcotest.(check bool) "Xi=2 enum" true (is_admissible_enum g ~xi:(xi 2 1));
        Alcotest.(check bool) "Xi=5/4 poly" false (Abc_check.is_admissible g ~xi:(xi 5 4));
        Alcotest.(check bool) "Xi=5/4 enum" false (is_admissible_enum g ~xi:(xi 5 4));
        Alcotest.(check bool) "Xi=4/3 poly" true (Abc_check.is_admissible g ~xi:(xi 4 3)));
    Alcotest.test_case "fig3: late reply closes relevant cycle 4/2" `Quick (fun () ->
        let g = build_fig ~reply_after_psi:true () in
        (match Abc_check.check g ~xi:(xi 2 1) with
        | Abc_check.Admissible -> Alcotest.fail "expected violation at Xi=2"
        | Abc_check.Violation c ->
            Alcotest.(check bool) "relevant" true c.Cycle.relevant;
            Alcotest.(check bool) "ratio >= 2" true
              (Rat.compare (Cycle.ratio c) (xi 2 1) >= 0));
        Alcotest.(check bool) "enum agrees" false (is_admissible_enum g ~xi:(xi 2 1));
        (* with a laxer Xi the same graph is fine *)
        Alcotest.(check bool) "Xi=9/4 poly" true (Abc_check.is_admissible g ~xi:(xi 9 4));
        Alcotest.(check bool) "Xi=9/4 enum" true (is_admissible_enum g ~xi:(xi 9 4)));
    Alcotest.test_case "fig4: early reply yields only non-relevant big cycle" `Quick
      (fun () ->
        let g = build_fig ~reply_after_psi:false () in
        Alcotest.(check bool) "Xi=2 poly" true (Abc_check.is_admissible g ~xi:(xi 2 1));
        Alcotest.(check bool) "Xi=2 enum" true (is_admissible_enum g ~xi:(xi 2 1));
        (* the 6-message cycle through psi exists but is non-relevant *)
        let big =
          List.filter (fun c -> List.length (Cycle.messages g c.Cycle.traversal) = 6)
            (Cycle.enumerate g)
        in
        Alcotest.(check bool) "big cycle exists" true (big <> []);
        List.iter
          (fun c -> Alcotest.(check bool) "non-relevant" false c.Cycle.relevant)
          big);
    Alcotest.test_case "self-message parallel to local edge is non-relevant" `Quick
      (fun () ->
        let g = Graph.create ~nprocs:1 in
        let a = Graph.add_event g ~proc:0 in
        let b = Graph.add_event g ~proc:0 in
        ignore (Graph.add_message g ~src:a.Event.id ~dst:b.Event.id);
        let cycles = Cycle.enumerate g in
        Alcotest.(check int) "one 2-cycle" 1 (List.length cycles);
        Alcotest.(check bool) "non-relevant" false (List.hd cycles).Cycle.relevant;
        (* and hence admissible for every Xi *)
        Alcotest.(check bool) "admissible" true (Abc_check.is_admissible g ~xi:(xi 3 2)));
    Alcotest.test_case "consistent cuts: closure and membership" `Quick (fun () ->
        let g = build_fig1 () in
        (* closure of psi2 (last event of p=5) must contain everything *)
        let psi2 = List.nth (Graph.events_of_proc g 5) 1 in
        let cl = Cut.closure_of_event g (Graph.event g psi2) in
        let full = Cut.full g in
        Alcotest.(check bool) "closure of sink = full cut" true
          (Cut.frontier cl = Cut.frontier full);
        Alcotest.(check bool) "consistent" true
          (Cut.is_consistent g ~correct:[ 0; 1; 2; 3; 4; 5; 6; 7; 8 ] cl));
    Alcotest.test_case "consistent cuts: non-closed cut detected" `Quick (fun () ->
        let g = Graph.create ~nprocs:2 in
        let a = Graph.add_event g ~proc:0 in
        let b = Graph.add_event g ~proc:1 in
        ignore (Graph.add_message g ~src:a.Event.id ~dst:b.Event.id);
        (* cut containing b but not a is not left-closed *)
        let c = Cut.empty ~nprocs:2 in
        (Cut.frontier c).(1) <- 0;
        Alcotest.(check bool) "not consistent" false (Cut.is_consistent g ~correct:[ 1 ] c);
        let cl = Cut.left_closure g c in
        Alcotest.(check int) "closure pulls in a" 0 (Cut.frontier cl).(0));
    Alcotest.test_case "cut interval excludes the causal past" `Quick (fun () ->
        let g = build_fig ~reply_after_psi:true () in
        let p0_events = Graph.events_of_proc g 0 in
        let phi0 = Graph.event g (List.nth p0_events 0) in
        let psi = Graph.event g (List.nth p0_events 2) in
        let interval = Cut.interval g ~from_event:phi0 ~to_event:psi in
        Alcotest.(check bool) "phi0 not in interval" true
          (not (List.exists (fun (e : Event.t) -> Event.equal e phi0) interval));
        Alcotest.(check bool) "psi in interval" true
          (List.exists (fun (e : Event.t) -> Event.equal e psi) interval));
    Alcotest.test_case "execution graphs are DAGs" `Quick (fun () ->
        let rng = Random.State.make [| 42 |] in
        for _ = 1 to 20 do
          let g = Util.random_execution rng ~nprocs:3 ~max_events:30 ~max_delay:4 ~fanout:2 in
          Alcotest.(check bool) "dag" true (Graph.is_dag g)
        done);
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000)

let property_tests =
  [
    prop "poly checker agrees with enumeration oracle" 150 arb_seed (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:14 ~max_delay:3 ~fanout:2 in
        List.for_all
          (fun x ->
            let poly = Abc_check.is_admissible g ~xi:x in
            let enum = is_admissible_enum g ~xi:x in
            poly = enum)
          [ xi 5 4; xi 3 2; xi 2 1; xi 3 1; xi 7 2 ]);
    prop "violation witness really violates" 150 arb_seed (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:4 ~max_events:18 ~max_delay:5 ~fanout:2 in
        List.for_all
          (fun x ->
            match Abc_check.check g ~xi:x with
            | Abc_check.Admissible -> true
            | Abc_check.Violation c ->
                c.Cycle.relevant && Rat.compare (Cycle.ratio c) x >= 0)
          [ xi 5 4; xi 2 1 ]);
    prop "admissibility is monotone in Xi" 100 arb_seed (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:16 ~max_delay:4 ~fanout:2 in
        let xs = [ xi 5 4; xi 3 2; xi 2 1; xi 3 1; xi 5 1 ] in
        let verdicts = List.map (fun x -> Abc_check.is_admissible g ~xi:x) xs in
        (* once admissible at some Xi, admissible at every larger Xi *)
        let rec mono = function
          | a :: (b :: _ as tl) -> ((not a) || b) && mono tl
          | _ -> true
        in
        mono verdicts);
    prop "left closures are consistent cuts" 100 arb_seed (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:20 ~max_delay:4 ~fanout:2 in
        let correct =
          List.filter (fun p -> Graph.events_of_proc g p <> []) [ 0; 1; 2 ]
        in
        (* the full cut is the left closure of all sinks *)
        let full = Cut.full g in
        Cut.is_consistent g ~correct full
        &&
        let ids = List.init (Graph.event_count g) Fun.id in
        List.for_all
          (fun id ->
            let cl = Cut.closure_of_event g (Graph.event g id) in
            Cut.frontier (Cut.left_closure g cl) = Cut.frontier cl)
          ids);
    prop "causal past = membership in closure" 60 arb_seed (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:15 ~max_delay:3 ~fanout:2 in
        let n = Graph.event_count g in
        let ok = ref true in
        for id = 0 to n - 1 do
          let mask = Graph.causal_past g id in
          let cl = Cut.closure_of_event g (Graph.event g id) in
          for j = 0 to n - 1 do
            let in_past = mask.(j) in
            let ev = Graph.event g j in
            (* membership in the closure over-approximates the causal
               past only for events of the same process below the
               frontier -- which are exactly the causal past too, via
               local edges.  So the two notions coincide. *)
            if in_past <> Cut.mem cl ev then ok := false
          done
        done;
        !ok);
  ]

let suite = unit_tests @ property_tests
