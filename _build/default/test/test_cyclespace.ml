(* Tests for the cycle space of Section 4.1: cycle vectors, ⊕,
   consistency (Definition 10), mixed-free decomposition (Lemmas 8-10,
   Theorem 11) and the sum properties (Lemma 7/11, Corollary 1). *)

open Execgraph

let xi a b = Rat.of_ints a b

(* Figure 2 analogue: two relevant cycles X and Y sharing message e
   with opposite orientation, so X ⊕ Y cancels e. *)
type fig2 = {
  g : Graph.t;
  x : Cycle.t;
  y : Cycle.t;
  e_id : int; (* message shared oppositely *)
}

let build_fig2 () =
  let g = Graph.create ~nprocs:4 in
  (* u at p0; v at p1; a1 at p3; w1..w3 at p2 *)
  let u = Graph.add_event g ~proc:0 in
  let v = Graph.add_event g ~proc:1 in
  let a1 = Graph.add_event g ~proc:3 in
  let w1 = Graph.add_event g ~proc:2 in
  let w2 = Graph.add_event g ~proc:2 in
  let w3 = Graph.add_event g ~proc:2 in
  let e1 = Graph.add_message g ~src:u.Event.id ~dst:v.Event.id in
  let e4 = Graph.add_message g ~src:v.Event.id ~dst:a1.Event.id in
  let e5 = Graph.add_message g ~src:a1.Event.id ~dst:w1.Event.id in
  let e = Graph.add_message g ~src:v.Event.id ~dst:w2.Event.id in
  let e3 = Graph.add_message g ~src:u.Event.id ~dst:w3.Event.id in
  ignore e1;
  ignore e4;
  ignore e5;
  ignore e3;
  let cycles = Cycle.enumerate g in
  (* X: u -e1- v -e- w2 -local- w3 ~e3~ u   (ratio 2/1)
     Y: v -e- w2 ~local~ w1 ~e5~ a1 ~e4~ v  (ratio 2/1) *)
  let find_cycle msg_count has_edge not_edge =
    List.find
      (fun c ->
        let msgs = Cycle.messages g c.Cycle.traversal in
        List.length msgs = msg_count
        && List.exists (fun (t : Digraph.traversal) -> t.edge.id = has_edge) msgs
        && not (List.exists (fun (t : Digraph.traversal) -> t.edge.id = not_edge) msgs))
      cycles
  in
  let x = find_cycle 3 e.Digraph.id e4.Digraph.id in
  let y = find_cycle 3 e.Digraph.id e1.Digraph.id in
  { g; x; y; e_id = e.Digraph.id }

let unit_tests =
  [
    Alcotest.test_case "fig2: X and Y are relevant with ratio 2" `Quick (fun () ->
        let { g = _; x; y; _ } = build_fig2 () in
        Alcotest.(check bool) "X relevant" true x.Cycle.relevant;
        Alcotest.(check bool) "Y relevant" true y.Cycle.relevant;
        Alcotest.(check bool) "X ratio 2" true (Rat.equal (Cycle.ratio x) (xi 2 1));
        Alcotest.(check bool) "Y ratio 2" true (Rat.equal (Cycle.ratio y) (xi 2 1)));
    Alcotest.test_case "fig2: e oppositely oriented => o-consistent" `Quick (fun () ->
        let { g; x; y; e_id } = build_fig2 () in
        let vx = Cyclespace.vector_of_cycle g x and vy = Cyclespace.vector_of_cycle g y in
        Alcotest.(check int) "product -1" (-1)
          (Cyclespace.Vector.coeff vx e_id * Cyclespace.Vector.coeff vy e_id);
        Alcotest.(check bool) "o-consistent" true
          (Cyclespace.consistency g x y = Cyclespace.O_consistent));
    Alcotest.test_case "fig2: X + Y cancels e in the vector sum" `Quick (fun () ->
        let { g; x; y; e_id } = build_fig2 () in
        let s = Cyclespace.sum_vector g [ (1, x); (1, y) ] in
        Alcotest.(check int) "e cancelled" 0 (Cyclespace.Vector.coeff s e_id);
        Alcotest.(check int) "s- = 3" 3 (Cyclespace.Vector.s_minus s);
        Alcotest.(check int) "s+ = -1" (-1) (Cyclespace.Vector.s_plus s));
    Alcotest.test_case "fig2: mixed-free decomposition of X + Y" `Quick (fun () ->
        let { g; x; y; _ } = build_fig2 () in
        let outputs = Cyclespace.decompose g [ (1, x); (1, y) ] in
        Alcotest.(check bool) "valid decomposition" true
          (Cyclespace.verify_decomposition g ~inputs:[ (1, x); (1, y) ] ~outputs);
        (* the graph's maximal relevant ratio is 3 (the outer cycle), so
           for any Xi > 3 the combined vector obeys Corollary 1 *)
        let s = Cyclespace.sum_vector g [ (1, x); (1, y) ] in
        Alcotest.(check bool) "corollary 1 at Xi=7/2" true
          (Cyclespace.corollary1_holds s ~xi:(xi 7 2));
        Alcotest.(check bool) "ratio exactly 3 not below" false
          (Cyclespace.corollary1_holds s ~xi:(xi 3 1)));
    Alcotest.test_case "multiplicities: 2X decomposes and doubles the vector" `Quick
      (fun () ->
        let { g; x; _ } = build_fig2 () in
        let outputs = Cyclespace.decompose g [ (2, x) ] in
        Alcotest.(check bool) "valid" true
          (Cyclespace.verify_decomposition g ~inputs:[ (2, x) ] ~outputs);
        let s = Cyclespace.sum_vector g [ (2, x) ] in
        Alcotest.(check int) "s- doubled" 4 (Cyclespace.Vector.s_minus s));
    Alcotest.test_case "vector operations" `Quick (fun () ->
        let open Cyclespace.Vector in
        let v = set (set zero 0 2) 1 (-1) in
        let w = set (set zero 0 (-2)) 2 3 in
        let s = add v w in
        Alcotest.(check int) "cancel" 0 (coeff s 0);
        Alcotest.(check int) "keep" (-1) (coeff s 1);
        Alcotest.(check int) "keep2" 3 (coeff s 2);
        Alcotest.(check bool) "scale zero" true (is_zero (scale 0 v));
        Alcotest.(check int) "s_minus" 3 (s_minus s);
        Alcotest.(check int) "s_plus" (-1) (s_plus s));
    Alcotest.test_case "disjoint cycles are i-consistent" `Quick (fun () ->
        let g = Graph.create ~nprocs:4 in
        (* two disjoint 2-process ping-pong relevant cycles... use two
           fig1-style lens pairs on distinct processes *)
        let a0 = Graph.add_event g ~proc:0 in
        let b0 = Graph.add_event g ~proc:1 in
        let b1 = Graph.add_event g ~proc:1 in
        ignore (Graph.add_message g ~src:a0.Event.id ~dst:b0.Event.id);
        ignore (Graph.add_message g ~src:a0.Event.id ~dst:b1.Event.id);
        let c0 = Graph.add_event g ~proc:2 in
        let d0 = Graph.add_event g ~proc:3 in
        let d1 = Graph.add_event g ~proc:3 in
        ignore (Graph.add_message g ~src:c0.Event.id ~dst:d0.Event.id);
        ignore (Graph.add_message g ~src:c0.Event.id ~dst:d1.Event.id);
        match Cycle.enumerate g with
        | [ c1; c2 ] ->
            Alcotest.(check bool) "i-consistent" true
              (Cyclespace.consistency g c1 c2 = Cyclespace.I_consistent)
        | l -> Alcotest.failf "expected 2 cycles, got %d" (List.length l));
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000)

let property_tests =
  [
    prop "decomposition always verifies on random relevant sums" 100 arb_seed
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:14 ~max_delay:3 ~fanout:2 in
        let relevant = List.filter (fun c -> c.Cycle.relevant) (Cycle.enumerate g) in
        if relevant = [] then true
        else begin
          let inputs =
            List.filteri (fun i _ -> i < 4) relevant
            |> List.map (fun c -> (1 + Random.State.int rng 2, c))
          in
          let outputs = Cyclespace.decompose g inputs in
          Cyclespace.verify_decomposition g ~inputs ~outputs
        end);
    prop "corollary 1 on admissible graphs" 100 arb_seed (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:12 ~max_delay:3 ~fanout:2 in
        match Util.max_relevant_ratio g with
        | None -> true
        | Some rmax ->
            (* pick Xi strictly above the max ratio: graph is admissible *)
            let x = Rat.add rmax (Rat.of_ints 1 3) in
            assert (Abc_check.is_admissible g ~xi:x);
            let relevant = List.filter (fun c -> c.Cycle.relevant) (Cycle.enumerate g) in
            let inputs = List.map (fun c -> (1 + Random.State.int rng 2, c)) relevant in
            let s = Cyclespace.sum_vector g inputs in
            Cyclespace.corollary1_holds s ~xi:x);
    prop "decomposed cycles never contain a forward local edge if inputs are relevant"
      60 arb_seed (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:12 ~max_delay:3 ~fanout:2 in
        let relevant = List.filter (fun c -> c.Cycle.relevant) (Cycle.enumerate g) in
        if relevant = [] then true
        else begin
          let inputs = List.map (fun c -> (1, c)) relevant in
          let outputs = Cyclespace.decompose g inputs in
          (* Corollary 1 case analysis: an output aligned with the sum
             (case 1) must be relevant; we check the weaker structural
             fact that its locals are consistently oriented. *)
          List.for_all
            (fun (c : Cycle.t) ->
              let locals =
                List.filter
                  (fun (t : Digraph.traversal) -> not (Graph.is_message g t.edge))
                  c.Cycle.traversal
              in
              let plus = List.length (List.filter (fun (t : Digraph.traversal) -> t.dir = 1) locals) in
              plus = 0 || plus = List.length locals)
            outputs
        end);
  ]

let suite = unit_tests @ property_tests
