(* Shared helpers for the test suites: thin wrappers over the library
   generators so suites stay uniform. *)

let random_execution = Execgraph.Generate.random_execution
let max_relevant_ratio g = Execgraph.Generate.max_relevant_ratio_enum g
