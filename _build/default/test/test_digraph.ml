(* Tests for the digraph substrate: construction, orders, Bellman-Ford,
   and undirected simple-cycle enumeration. *)

module BF = Digraph.Bellman_ford (struct
  type t = int

  let zero = 0
  let add = ( + )
  let compare = Stdlib.compare
end)

let mk_graph n edges =
  let g = Digraph.create n in
  let es = List.map (fun (s, d) -> Digraph.add_edge g ~src:s ~dst:d) edges in
  (g, es)

let unit_tests =
  [
    Alcotest.test_case "construction and accessors" `Quick (fun () ->
        let g, es = mk_graph 3 [ (0, 1); (1, 2); (0, 2) ] in
        Alcotest.(check int) "nodes" 3 (Digraph.node_count g);
        Alcotest.(check int) "edges" 3 (Digraph.edge_count g);
        Alcotest.(check int) "edge ids dense" 2 (List.nth es 2).Digraph.id;
        Alcotest.(check int) "out deg 0" 2 (List.length (Digraph.out_edges g 0));
        Alcotest.(check int) "in deg 2" 2 (List.length (Digraph.in_edges g 2));
        Alcotest.(check int) "shadow deg 1" 2 (List.length (Digraph.shadow_incident g 1)));
    Alcotest.test_case "add_node grows" `Quick (fun () ->
        let g = Digraph.create 0 in
        let ids = List.init 100 (fun _ -> Digraph.add_node g) in
        Alcotest.(check int) "dense ids" 99 (List.nth ids 99);
        Alcotest.(check int) "count" 100 (Digraph.node_count g));
    Alcotest.test_case "topological sort on DAG" `Quick (fun () ->
        let g, _ = mk_graph 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
        match Digraph.topological_sort g with
        | None -> Alcotest.fail "expected DAG"
        | Some order ->
            let pos = Array.make 4 0 in
            List.iteri (fun i v -> pos.(v) <- i) order;
            List.iter
              (fun (e : Digraph.edge) ->
                Alcotest.(check bool) "respects edges" true (pos.(e.src) < pos.(e.dst)))
              (Digraph.edges g));
    Alcotest.test_case "topological sort detects cycle" `Quick (fun () ->
        let g, _ = mk_graph 3 [ (0, 1); (1, 2); (2, 0) ] in
        Alcotest.(check bool) "not a DAG" false (Digraph.is_dag g));
    Alcotest.test_case "scc" `Quick (fun () ->
        let g, _ = mk_graph 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 3) ] in
        let comp = Digraph.scc g in
        Alcotest.(check bool) "0,1,2 together" true
          (comp.(0) = comp.(1) && comp.(1) = comp.(2));
        Alcotest.(check bool) "3,4 together" true (comp.(3) = comp.(4));
        Alcotest.(check bool) "separate" true (comp.(0) <> comp.(3)));
    Alcotest.test_case "bellman-ford: no negative cycle" `Quick (fun () ->
        let g, _ = mk_graph 3 [ (0, 1); (1, 2); (2, 0) ] in
        let weight (e : Digraph.edge) = if e.src = 2 then -1 else 1 in
        Alcotest.(check bool) "total weight 1 > 0" true
          (BF.negative_cycle g ~weight = None);
        match BF.potentials g ~weight with
        | None -> Alcotest.fail "potentials should exist"
        | Some pi ->
            List.iter
              (fun (e : Digraph.edge) ->
                Alcotest.(check bool) "feasible" true (pi.(e.dst) <= pi.(e.src) + weight e))
              (Digraph.edges g));
    Alcotest.test_case "bellman-ford: finds negative cycle" `Quick (fun () ->
        let g, _ = mk_graph 4 [ (0, 1); (1, 2); (2, 1); (2, 3) ] in
        let weight (e : Digraph.edge) =
          match (e.src, e.dst) with 1, 2 -> -3 | 2, 1 -> 2 | _ -> 1
        in
        (match BF.negative_cycle g ~weight with
        | None -> Alcotest.fail "expected negative cycle"
        | Some cycle ->
            let total = List.fold_left (fun acc e -> acc + weight e) 0 cycle in
            Alcotest.(check bool) "cycle weight negative" true (total < 0);
            (* the returned edges form a closed walk *)
            let ok = ref true in
            let arr = Array.of_list cycle in
            Array.iteri
              (fun i (e : Digraph.edge) ->
                let nxt = arr.((i + 1) mod Array.length arr) in
                if e.dst <> nxt.Digraph.src then ok := false)
              arr;
            Alcotest.(check bool) "closed walk" true !ok);
        Alcotest.(check bool) "potentials infeasible" true (BF.potentials g ~weight = None));
    Alcotest.test_case "shadow cycles: triangle" `Quick (fun () ->
        let g, _ = mk_graph 3 [ (0, 1); (1, 2); (0, 2) ] in
        let cycles = Digraph.shadow_cycles g in
        Alcotest.(check int) "one cycle" 1 (List.length cycles);
        Alcotest.(check int) "three edges" 3 (List.length (List.hd cycles)));
    Alcotest.test_case "shadow cycles: parallel edges (2-cycle)" `Quick (fun () ->
        let g, _ = mk_graph 2 [ (0, 1); (0, 1) ] in
        let cycles = Digraph.shadow_cycles g in
        Alcotest.(check int) "one 2-cycle" 1 (List.length cycles);
        Alcotest.(check int) "two edges" 2 (List.length (List.hd cycles)));
    Alcotest.test_case "shadow cycles: K4 count" `Quick (fun () ->
        (* K4 has 7 simple cycles: 4 triangles + 3 four-cycles. *)
        let edges = [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
        let g, _ = mk_graph 4 edges in
        Alcotest.(check int) "seven cycles" 7 (List.length (Digraph.shadow_cycles g)));
    Alcotest.test_case "shadow cycles: tree has none" `Quick (fun () ->
        let g, _ = mk_graph 5 [ (0, 1); (0, 2); (1, 3); (1, 4) ] in
        Alcotest.(check int) "no cycles" 0 (List.length (Digraph.shadow_cycles g)));
  ]

(* Random DAG generator for property tests. *)
let gen_dag =
  let open QCheck.Gen in
  int_range 2 8 >>= fun n ->
  list_size (int_range 1 14) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
  >>= fun raw ->
  let edges = List.filter_map (fun (a, b) -> if a < b then Some (a, b) else if b < a then Some (b, a) else None) raw in
  return (n, edges)

let arb_dag =
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) es)))
    gen_dag

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let property_tests =
  [
    prop "DAGs topo-sort" 200 arb_dag (fun (n, es) ->
        let g, _ = mk_graph n es in
        Digraph.is_dag g);
    prop "shadow cycles are simple and closed" 200 arb_dag (fun (n, es) ->
        let g, _ = mk_graph n es in
        let check_cycle tr =
          (* closed walk in the shadow graph, no repeated vertex *)
          let endpoints (t : Digraph.traversal) =
            if t.dir = 1 then (t.edge.src, t.edge.dst) else (t.edge.dst, t.edge.src)
          in
          let arr = Array.of_list tr in
          let k = Array.length arr in
          let closed = ref (k >= 2) in
          for i = 0 to k - 1 do
            let _, b = endpoints arr.(i) and a', _ = endpoints arr.((i + 1) mod k) in
            if b <> a' then closed := false
          done;
          let starts = List.map (fun t -> fst (endpoints t)) tr in
          let sorted = List.sort_uniq compare starts in
          !closed && List.length sorted = k
        in
        List.for_all check_cycle (Digraph.shadow_cycles g));
    prop "cycle count vs cyclomatic lower bound" 200 arb_dag (fun (n, es) ->
        (* every connected graph with m >= n edges has at least one cycle *)
        let g, _ = mk_graph n es in
        let distinct = List.sort_uniq compare es in
        let cycles = Digraph.shadow_cycles g in
        if List.length es > List.length distinct then List.length cycles >= 1
        else true);
    prop "potentials certify absence of negative cycles" 200 arb_dag (fun (n, es) ->
        let g, _ = mk_graph n es in
        (* random-ish weights derived from edge endpoints; DAG has no
           directed cycle at all, so potentials always exist *)
        let weight (e : Digraph.edge) = (e.src * 7) - (e.dst * 3) in
        match BF.potentials g ~weight with
        | None -> false
        | Some pi ->
            List.for_all
              (fun (e : Digraph.edge) -> pi.(e.dst) <= pi.(e.src) + weight e)
              (Digraph.edges g));
  ]

let suite = unit_tests @ property_tests
