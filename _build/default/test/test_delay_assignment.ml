(* Tests for Theorem 7/12: normalized delay assignments via the fast
   potential solver and the paper-faithful Fig. 6 LP, including Farkas
   certificates (Theorem 10) on inadmissible graphs. *)

open Core
open Execgraph

let xi a b = Rat.of_ints a b

let unit_tests =
  [
    Alcotest.test_case "fig1 graph: fast solver finds delays in (1, Xi)" `Quick
      (fun () ->
        (* reuse the Fig. 1 construction (relevant cycle ratio 5/4) *)
        let g = Test_execgraph.build_fig1 () in
        (match Delay_assignment.solve_fast g ~xi:(xi 2 1) with
        | None -> Alcotest.fail "should be solvable at Xi=2"
        | Some a ->
            Alcotest.(check bool) "verifies" true (Delay_assignment.verify g ~xi:(xi 2 1) a));
        (* at Xi = 5/4 the graph is inadmissible: no assignment *)
        Alcotest.(check bool) "unsolvable at Xi=5/4" true
          (Delay_assignment.solve_fast g ~xi:(xi 5 4) = None));
    Alcotest.test_case "fig1 graph: faithful LP agrees" `Quick (fun () ->
        let g = Test_execgraph.build_fig1 () in
        (match Delay_assignment.solve_faithful g ~xi:(xi 2 1) with
        | Delay_assignment.Farkas _ -> Alcotest.fail "should be feasible at Xi=2"
        | Delay_assignment.Assignment delays ->
            Alcotest.(check bool) "verifies against paper conditions" true
              (Delay_assignment.verify_faithful g ~xi:(xi 2 1) delays));
        match Delay_assignment.solve_faithful g ~xi:(xi 5 4) with
        | Delay_assignment.Assignment _ -> Alcotest.fail "should be infeasible at Xi=5/4"
        | Delay_assignment.Farkas cert ->
            let f6 = Delay_assignment.build_fig6 g ~xi:(xi 5 4) in
            Alcotest.(check bool) "certificate checks" true
              (Lp.check_certificate f6.Delay_assignment.system cert));
    Alcotest.test_case "fig6 matrix shape" `Quick (fun () ->
        let g = Test_execgraph.build_fig1 () in
        let f6 = Delay_assignment.build_fig6 g ~xi:(xi 2 1) in
        (* 9 messages, 1 relevant cycle, 0 non-relevant *)
        Alcotest.(check int) "columns" 9 (Array.length f6.Delay_assignment.message_ids);
        Alcotest.(check int) "relevant rows" 1 f6.Delay_assignment.n_relevant;
        Alcotest.(check int) "non-relevant rows" 0 f6.Delay_assignment.n_nonrelevant;
        match f6.Delay_assignment.system with
        | { Lp.nvars; rows } ->
            Alcotest.(check int) "nvars" 9 nvars;
            Alcotest.(check int) "rows = 2k + l + m" (9 + 9 + 1) (List.length rows));
    Alcotest.test_case "fig3 graph: both solvers reject at Xi=2, accept at 9/4" `Quick
      (fun () ->
        let g = Test_execgraph.build_fig ~reply_after_psi:true () in
        Alcotest.(check bool) "fast rejects" true
          (Delay_assignment.solve_fast g ~xi:(xi 2 1) = None);
        (match Delay_assignment.solve_faithful g ~xi:(xi 2 1) with
        | Delay_assignment.Assignment _ -> Alcotest.fail "faithful should reject"
        | Delay_assignment.Farkas cert ->
            let f6 = Delay_assignment.build_fig6 g ~xi:(xi 2 1) in
            Alcotest.(check bool) "certificate" true
              (Lp.check_certificate f6.Delay_assignment.system cert));
        match
          ( Delay_assignment.solve_fast g ~xi:(xi 9 4),
            Delay_assignment.solve_faithful g ~xi:(xi 9 4) )
        with
        | Some a, Delay_assignment.Assignment d ->
            Alcotest.(check bool) "fast verifies" true
              (Delay_assignment.verify g ~xi:(xi 9 4) a);
            Alcotest.(check bool) "faithful verifies" true
              (Delay_assignment.verify_faithful g ~xi:(xi 9 4) d)
        | _ -> Alcotest.fail "both should accept at Xi=9/4");
    Alcotest.test_case "delays imply Theta-execution (Theorem 7 -> Theorem 9)" `Quick
      (fun () ->
        (* assignment delays lie in (1, Xi) so the delay ratio is < Xi:
           the timed version satisfies the static Θ condition for Θ=Xi *)
        let g = Test_execgraph.build_fig1 () in
        match Delay_assignment.solve_fast g ~xi:(xi 2 1) with
        | None -> Alcotest.fail "solvable"
        | Some a ->
            let ds = List.map snd a.Delay_assignment.delays in
            let lo = List.fold_left Rat.min (List.hd ds) ds in
            let hi = List.fold_left Rat.max (List.hd ds) ds in
            Alcotest.(check bool) "ratio < Xi" true
              Rat.O.(Rat.div hi lo < xi 2 1));
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000)

let property_tests =
  [
    prop "fast solver solvable iff ABC-admissible (Theorem 12)" 100 arb_seed
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:14 ~max_delay:3 ~fanout:2 in
        List.for_all
          (fun x ->
            let solvable = Delay_assignment.solve_fast g ~xi:x <> None in
            solvable = Abc_check.is_admissible g ~xi:x)
          [ xi 5 4; xi 3 2; xi 2 1; xi 3 1 ]);
    prop "fast and faithful solvers agree on feasibility" 60 arb_seed (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:11 ~max_delay:3 ~fanout:2 in
        List.for_all
          (fun x ->
            let fast = Delay_assignment.solve_fast g ~xi:x <> None in
            let faithful =
              match Delay_assignment.solve_faithful g ~xi:x with
              | Delay_assignment.Assignment _ -> true
              | Delay_assignment.Farkas _ -> false
            in
            fast = faithful)
          [ xi 3 2; xi 2 1 ]);
    prop "solutions always verify; certificates always check" 60 arb_seed (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:11 ~max_delay:3 ~fanout:2 in
        List.for_all
          (fun x ->
            (match Delay_assignment.solve_fast g ~xi:x with
            | Some a -> Delay_assignment.verify g ~xi:x a
            | None -> true)
            &&
            match Delay_assignment.solve_faithful g ~xi:x with
            | Delay_assignment.Assignment d -> Delay_assignment.verify_faithful g ~xi:x d
            | Delay_assignment.Farkas cert ->
                let f6 = Delay_assignment.build_fig6 g ~xi:x in
                Lp.check_certificate f6.Delay_assignment.system cert)
          [ xi 3 2; xi 2 1 ]);
    prop "assigned times preserve the event order at every process" 60 arb_seed
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:12 ~max_delay:3 ~fanout:2 in
        match Delay_assignment.solve_fast g ~xi:(xi 3 1) with
        | None -> true
        | Some a ->
            List.for_all
              (fun p ->
                let evs = Graph.events_of_proc g p in
                let rec increasing = function
                  | a' :: (b :: _ as tl) ->
                      Rat.compare a.Delay_assignment.times.(a') a.Delay_assignment.times.(b) < 0
                      && increasing tl
                  | _ -> true
                in
                increasing evs)
              [ 0; 1; 2 ]);
  ]

let suite = unit_tests @ property_tests
