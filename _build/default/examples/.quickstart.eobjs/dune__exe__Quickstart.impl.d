examples/quickstart.ml: Abc_check Core Cycle Event Execgraph Format Graph List Rat
