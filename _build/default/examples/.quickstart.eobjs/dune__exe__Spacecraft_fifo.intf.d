examples/spacecraft_fifo.mli:
