examples/clock_sync_demo.ml: Array Clock_sync Core Execgraph Format List Random Rat Sim
