examples/quickstart.mli:
