examples/vlsi_clock.ml: Array Clock_sync Core Execgraph Format List Random Rat Sim Theta_model
