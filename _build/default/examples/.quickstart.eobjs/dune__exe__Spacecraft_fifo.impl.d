examples/spacecraft_fifo.ml: Abc Array Core Execgraph Fifo Format Random Rat Sim Theta_model
