examples/vlsi_clock.mli:
