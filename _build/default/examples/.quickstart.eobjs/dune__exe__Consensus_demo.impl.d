examples/consensus_demo.ml: Array Consensus Core Format List Lockstep Random Rat Sim
