(* Spacecraft formations and FIFO channels: the ABC model where no
   bounded-delay model applies (Sections 5.1 and 5.3, Figs. 9-10).

   Part 1 (Fig. 9): two clusters of processes drift apart, so
   inter-cluster delays grow without bound, while intra-cluster delays
   stay in [1, 2].  The recorded execution violates the Θ condition for
   every Θ (the static delay ratio explodes), yet it remains
   ABC-admissible as long as the algorithm's relevant cycles balance
   their use of inter-cluster hops — here we let the clusters ping-pong
   internally and exchange occasional one-way status messages (isolated
   chains: unconstrained in the ABC model).

   Part 2 (Fig. 10): FIFO order on a link with growing delays, enforced
   purely by the ABC condition with Ξ = 4 and 4 chatter messages
   between consecutive data sends.

   Run with: dune exec examples/spacecraft_fifo.exe *)

open Core

let q = Rat.of_ints

(* A simple status-gossip algorithm: each process ping-pongs with its
   cluster peer forever and sends a one-way status message to the other
   cluster every 4 local steps. *)
type msg = Ping | Status

let gossip ~peer ~other_cluster : (int, msg) Sim.algorithm =
  {
    init = (fun ~self ~nprocs:_ -> (0, [ { Sim.dst = peer self; payload = Ping } ]));
    step =
      (fun ~self ~nprocs:_ n ~sender:_ m ->
        match m with
        | Ping ->
            let out = [ { Sim.dst = peer self; payload = Ping } ] in
            let out =
              if (n + 1) mod 4 = 0 then
                { Sim.dst = other_cluster self; payload = Status } :: out
              else out
            in
            (n + 1, out)
        | Status -> (n + 1, []));
  }

let () =
  Format.printf "=== Fig. 9: clusters drifting apart ===@.";
  (* processes 0,1 = cluster A; 2,3 = cluster B *)
  let cluster_of p = if p < 2 then 0 else 1 in
  let peer p = match p with 0 -> 1 | 1 -> 0 | 2 -> 3 | _ -> 2 in
  let other p = if p < 2 then 2 + (p mod 2) else p mod 2 in
  let rng = Random.State.make [| 314 |] in
  let scheduler =
    Sim.growing_scheduler ~rng ~cluster_of ~intra_min:(q 1 1) ~intra_max:(q 2 1)
      ~inter_base:(q 5 1) ~growth_rate:(q 2 1) ()
  in
  let cfg =
    Sim.make_config ~nprocs:4
      ~algorithm:(gossip ~peer ~other_cluster:other)
      ~faults:(Array.make 4 Sim.Correct) ~scheduler ~max_events:400 ()
  in
  let r = Sim.run cfg in
  Format.printf "simulated %d events; %d messages still in flight (drifting!)@."
    r.Sim.delivered r.Sim.undelivered;
  (match Theta_model.static_delay_ratio r.Sim.graph with
  | None -> Format.printf "static delay ratio: undefined (zero-delay messages)@."
  | Some ratio ->
      Format.printf "static delay ratio tau+/tau- = %s (no Theta-Model applies)@."
        (Rat.to_string ratio));
  (match Abc.max_relevant_ratio r.Sim.graph with
  | None ->
      Format.printf
        "max relevant-cycle ratio <= 1: ABC-admissible for EVERY Xi > 1@."
  | Some m ->
      Format.printf "max relevant-cycle ratio = %s: ABC-admissible for any Xi above it@."
        (Rat.to_string m));

  Format.printf "@.=== Fig. 10: FIFO from the ABC condition (Xi = 4) ===@.";
  let xi = q 4 1 in
  let ok = Fifo.build ~n_messages:5 ~chatter:4 ~reordered:None () in
  Format.printf "in-order delivery admissible at Xi=4: %b@."
    (Execgraph.Abc_check.is_admissible ok.Fifo.graph ~xi);
  let bad = Fifo.build ~n_messages:5 ~chatter:4 ~reordered:(Some 2) () in
  (match Execgraph.Abc_check.check bad.Fifo.graph ~xi with
  | Execgraph.Abc_check.Admissible ->
      Format.printf "reordered delivery admissible (unexpected!)@."
  | Execgraph.Abc_check.Violation c ->
      Format.printf
        "reordering messages 2 and 3 closes a relevant cycle of ratio %s >= 4: forbidden@."
        (Rat.to_string (Execgraph.Cycle.ratio c)));
  Format.printf "FIFO guaranteed for all adjacent swaps: %b@."
    (Fifo.fifo_guaranteed ~xi ~n_messages:5 ~chatter:4)
