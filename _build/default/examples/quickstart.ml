(* Quickstart: the ABC model in five minutes.

   Builds the paper's Fig. 1 scenario by hand — a "slow" causal chain
   of 4 messages spanning a "fast" chain of 5 messages, forming a
   relevant cycle of ratio 5/4 — then:
   1. classifies its cycles,
   2. checks ABC admissibility (Definition 4) for several Ξ,
   3. computes the exact admissibility threshold,
   4. derives a normalized delay assignment (Theorem 7): rational
      message delays in (1, Ξ) consistent with the causal structure.

   Run with: dune exec examples/quickstart.exe *)

open Execgraph

let xi a b = Rat.of_ints a b

let () =
  Format.printf "=== ABC model quickstart ===@.@.";
  (* 1. Build an execution graph: q broadcasts to two relay chains that
     reconvene at p (Fig. 1 of the paper). *)
  let g = Graph.create ~nprocs:9 in
  let ev p = Graph.add_event g ~proc:p in
  let msg a b = ignore (Graph.add_message g ~src:a.Event.id ~dst:b.Event.id) in
  let phi0 = ev 0 in
  (* fast chain C2: 5 messages through relays 1..4 *)
  let a1 = ev 1 and a2 = ev 2 and a3 = ev 3 and a4 = ev 4 in
  let psi1 = ev 5 in
  msg phi0 a1; msg a1 a2; msg a2 a3; msg a3 a4; msg a4 psi1;
  (* slow chain C1: 4 messages through relays 6..8, arriving later *)
  let b1 = ev 6 and b2 = ev 7 and b3 = ev 8 in
  let psi2 = ev 5 in
  msg phi0 b1; msg b1 b2; msg b2 b3; msg b3 psi2;
  Format.printf "execution graph: %d events, %d messages@." (Graph.event_count g)
    (Graph.message_count g);

  (* 2. Enumerate and classify cycles (Definitions 2-3). *)
  List.iter
    (fun c ->
      Format.printf "  %a  ratio=%s@." Cycle.pp c
        (if c.Cycle.relevant then Rat.to_string (Cycle.ratio c) else "-"))
    (Cycle.enumerate g);

  (* 3. Admissibility for a few Ξ (Definition 4). *)
  List.iter
    (fun x ->
      Format.printf "admissible for Xi = %-4s : %b@." (Rat.to_string x)
        (Abc_check.is_admissible g ~xi:x))
    [ xi 5 4; xi 4 3; xi 3 2; xi 2 1 ];

  (* 4. The exact threshold. *)
  Format.printf "admissibility threshold (max relevant ratio): %s@."
    (Core.Abc.admissibility_threshold g);

  (* 5. A normalized delay assignment at Xi = 2 (Theorem 7). *)
  (match Core.Delay_assignment.solve_fast g ~xi:(xi 2 1) with
  | None -> Format.printf "no delay assignment (graph not admissible)@."
  | Some a ->
      Format.printf "@.delay assignment for Xi = 2 (all delays in (1, 2)):@.";
      List.iter
        (fun (eid, d) -> Format.printf "  message e%d: tau = %s@." eid (Rat.to_string d))
        a.Core.Delay_assignment.delays;
      Format.printf "verifies: %b@." (Core.Delay_assignment.verify g ~xi:(xi 2 1) a));
  Format.printf "@.Done.@."
