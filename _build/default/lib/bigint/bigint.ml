(* Sign-magnitude bignum in base 2^30.

   Invariants: [mag] is little-endian with no trailing (most-significant)
   zero digit; [sign] is 0 iff [mag] is empty, otherwise -1 or 1.  All
   functions below preserve these invariants, so structural equality is
   numeric equality. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let check_invariant x =
  let n = Array.length x.mag in
  (if n = 0 then x.sign = 0 else x.sign = 1 || x.sign = -1)
  && (n = 0 || x.mag.(n - 1) <> 0)
  && Array.for_all (fun d -> d >= 0 && d < base) x.mag

(* Strip most-significant zero digits; takes ownership of [a]. *)
let normalize_mag a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* |min_int| = max_int + 1, so compute the magnitude with a carry
       rather than [abs], which is undefined on [min_int]. *)
    let m = if n = min_int then max_int else Stdlib.abs n in
    let extra = if n = min_int then 1 else 0 in
    let d0 = (m land base_mask) + extra in
    let carry = d0 lsr base_bits in
    let d0 = d0 land base_mask in
    let m1 = (m lsr base_bits) + carry in
    let d1 = m1 land base_mask in
    let d2 = m1 lsr base_bits in
    make sign [| d0; d1; d2 |]
  end

let one = of_int 1
let two = of_int 2
let ten = of_int 10
let minus_one = of_int (-1)
let sign x = x.sign
let is_zero x = x.sign = 0
let is_negative x = x.sign < 0
let is_positive x = x.sign > 0
let is_one x = x.sign = 1 && Array.length x.mag = 1 && x.mag.(0) = 1

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let compare x y =
  if x.sign <> y.sign then Stdlib.compare x.sign y.sign
  else if x.sign >= 0 then compare_mag x.mag y.mag
  else compare_mag y.mag x.mag

let equal x y = compare x y = 0
let hash x = Hashtbl.hash (x.sign, x.mag)
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(l) <- !carry;
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then make x.sign (add_mag x.mag y.mag)
  else
    let c = compare_mag x.mag y.mag in
    if c = 0 then zero
    else if c > 0 then make x.sign (sub_mag x.mag y.mag)
    else make y.sign (sub_mag y.mag x.mag)

let sub x y = add x (neg y)
let succ x = add x one
let pred x = sub x one

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          (* ai*bj <= (2^30-1)^2 < 2^60; + r + carry stays < 2^62. *)
          let p = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- p land base_mask;
          carry := p lsr base_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    r
  end

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else make (x.sign * y.sign) (mul_mag x.mag y.mag)

let mul_int x n = mul x (of_int n)

(* Shift a magnitude left by [s] bits, 0 <= s < base_bits. *)
let shl_mag_small a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) lsl s) lor !carry in
      r.(i) <- v land base_mask;
      carry := v lsr base_bits
    done;
    r.(la) <- !carry;
    r
  end

(* Shift a magnitude right by [s] bits, 0 <= s < base_bits (truncating). *)
let shr_mag_small a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      let hi = if i + 1 < la then a.(i + 1) else 0 in
      r.(i) <- (a.(i) lsr s) lor ((hi lsl (base_bits - s)) land base_mask)
    done;
    r
  end

(* Divide a magnitude by a single digit 0 < d < base; returns (q, r). *)
let divmod_mag_digit a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Knuth algorithm D on magnitudes; returns (q, r) with a = q*b + r,
   0 <= r < b.  Requires b <> 0. *)
let divmod_mag a b =
  let lb = Array.length b in
  if lb = 0 then raise Division_by_zero;
  if compare_mag a b < 0 then ([||], Array.copy a)
  else if lb = 1 then begin
    let q, r = divmod_mag_digit a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    (* Normalize so the top divisor digit has its high bit set. *)
    let top = b.(lb - 1) in
    let s = ref 0 in
    while top lsl !s < base lsr 1 do
      incr s
    done;
    let s = !s in
    let v = normalize_mag (shl_mag_small b s) in
    (* [u] must keep an explicit extra top digit (possibly 0): Knuth D
       divides a (m+n+1)-digit dividend by an n-digit divisor.  When
       [s = 0] the shift returns the original length, so extend. *)
    let u0 = shl_mag_small a s in
    let u = if Array.length u0 = Array.length a then Array.append u0 [| 0 |] else u0 in
    let n = Array.length v in
    let lu = Array.length u in
    let m = lu - n - 1 in
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) and vsnd = v.(n - 2) in
    for j = m downto 0 do
      let num = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
      let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
      let continue_fix = ref true in
      while
        !continue_fix
        && (!qhat >= base || !qhat * vsnd > (!rhat lsl base_bits) lor u.(j + n - 2))
      do
        decr qhat;
        rhat := !rhat + vtop;
        if !rhat >= base then continue_fix := false
      done;
      (* Multiply and subtract. *)
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !borrow in
        borrow := p lsr base_bits;
        let d = u.(j + i) - (p land base_mask) in
        if d < 0 then begin
          u.(j + i) <- d + base;
          incr borrow
        end
        else u.(j + i) <- d
      done;
      let d = u.(j + n) - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add back. *)
        u.(j + n) <- d + base;
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let sum = u.(j + i) + v.(i) + !carry in
          u.(j + i) <- sum land base_mask;
          carry := sum lsr base_bits
        done;
        u.(j + n) <- (u.(j + n) + !carry) land base_mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = shr_mag_small (normalize_mag (Array.sub u 0 n)) s in
    (q, r)
  end

let divmod x y =
  if y.sign = 0 then raise Division_by_zero;
  let qm, rm = divmod_mag x.mag y.mag in
  let q0 = make (x.sign * y.sign) qm and r0 = make 1 rm in
  if x.sign >= 0 || is_zero r0 then (q0, r0)
  else
    (* Euclidean adjustment: remainder must be non-negative. *)
    let q = if y.sign > 0 then pred q0 else succ q0 in
    (q, sub (abs y) r0)

let div x y = fst (divmod x y)
let rem x y = snd (divmod x y)

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b k =
    if k = 0 then acc
    else
      let acc = if k land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (k lsr 1)
  in
  go one x k

let shift_left x s =
  if s < 0 then invalid_arg "Bigint.shift_left";
  if x.sign = 0 || s = 0 then x
  else begin
    let digits = s / base_bits and bits = s mod base_bits in
    let shifted = shl_mag_small x.mag bits in
    let mag = Array.append (Array.make digits 0) shifted in
    make x.sign mag
  end

let shift_right x s =
  if s < 0 then invalid_arg "Bigint.shift_right";
  if x.sign = 0 || s = 0 then x
  else begin
    let digits = s / base_bits and bits = s mod base_bits in
    let la = Array.length x.mag in
    if digits >= la then if x.sign > 0 then zero else minus_one
    else begin
      let hi = Array.sub x.mag digits (la - digits) in
      let truncated = make x.sign (shr_mag_small hi bits) in
      if x.sign > 0 then truncated
      else begin
        (* Floor semantics for negatives: subtract 1 if any bit dropped. *)
        let dropped = ref false in
        for i = 0 to digits - 1 do
          if x.mag.(i) <> 0 then dropped := true
        done;
        if bits > 0 && digits < la && x.mag.(digits) land ((1 lsl bits) - 1) <> 0 then
          dropped := true;
        if !dropped then pred truncated else truncated
      end
    end
  end

let rec gcd x y =
  let x = abs x and y = abs y in
  if is_zero y then x else gcd y (rem x y)

let lcm x y = if is_zero x || is_zero y then zero else abs (div (mul x y) (gcd x y))

(* 10^9 fits in one base-2^30 digit, so decimal I/O goes via 9-digit
   chunks and single-digit division. *)
let decimal_chunk = 1_000_000_000
let decimal_chunk_digits = 9

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks mag acc =
      if Array.length mag = 0 then acc
      else
        let q, r = divmod_mag_digit mag decimal_chunk in
        chunks (normalize_mag q) (r :: acc)
    in
    (match chunks x.mag [] with
    | [] -> assert false
    | first :: rest ->
        if x.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let s = String.concat "" (String.split_on_char '_' s) in
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let sign, start =
    match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  (* only digits may follow the optional sign *)
  String.iteri
    (fun i c ->
      if i >= start && not (c >= '0' && c <= '9') then
        invalid_arg "Bigint.of_string: bad character")
    s;
  let acc = ref zero in
  let chunk_mult = of_int decimal_chunk in
  let i = ref start in
  (* Leading partial chunk so the remaining length is a multiple of 9. *)
  let first_len =
    let rem = (len - start) mod decimal_chunk_digits in
    if rem = 0 then decimal_chunk_digits else rem
  in
  let first = int_of_string (String.sub s !i first_len) in
  acc := of_int first;
  i := !i + first_len;
  while !i < len do
    let c = int_of_string (String.sub s !i decimal_chunk_digits) in
    acc := add (mul !acc chunk_mult) (of_int c);
    i := !i + decimal_chunk_digits
  done;
  if sign < 0 then neg !acc else !acc

let to_int x =
  let n = Array.length x.mag in
  if n = 0 then Some 0
  else if n > 3 then None
  else begin
    let limit = Stdlib.max_int in
    let v = ref 0 and ok = ref true in
    for i = n - 1 downto 0 do
      if !v > (limit - x.mag.(i)) lsr base_bits then ok := false
      else v := (!v lsl base_bits) lor x.mag.(i)
    done;
    if !ok then Some (x.sign * !v) else None
  end

let to_int_exn x =
  match to_int x with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: overflow"

let to_float x =
  let acc = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    acc := (!acc *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  float_of_int x.sign *. !acc

let of_float_floor f =
  if not (Float.is_finite f) then invalid_arg "Bigint.of_float_floor: not finite";
  let m, e = Float.frexp f in
  (* m * 2^53 is integral for every finite double. *)
  let scaled = Int64.to_int (Int64.of_float (m *. 9007199254740992.0)) in
  let x = of_int scaled in
  let sh = e - 53 in
  if sh >= 0 then shift_left x sh else shift_right x (-sh)

let pp fmt x = Format.pp_print_string fmt (to_string x)

module O = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) x y = not (equal x y)
  let ( < ) x y = compare x y < 0
  let ( <= ) x y = compare x y <= 0
  let ( > ) x y = compare x y > 0
  let ( >= ) x y = compare x y >= 0
end
