(** Arbitrary-precision signed integers.

    This module is a self-contained bignum substrate (the sealed build
    environment has no [zarith]).  It provides exactly the operations
    needed by the exact-rational layer ({!module:Rat}) and the simplex /
    Farkas machinery of the ABC delay-assignment proof engine.

    Representation: sign-magnitude with little-endian digit arrays in
    base [2^30], so every digit product fits comfortably in OCaml's
    63-bit native [int].  All values are normalized (no leading zero
    digits; zero has positive sign and empty magnitude), which makes
    structural equality coincide with numeric equality. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t
val ten : t

(** {1 Conversions} *)

val of_int : int -> t
(** [of_int n] converts a native integer exactly. *)

val to_int : t -> int option
(** [to_int x] is [Some n] if [x] fits in a native [int], else [None]. *)

val to_int_exn : t -> int
(** Like {!to_int} but raises [Failure] on overflow. *)

val of_string : string -> t
(** [of_string s] parses an optionally-signed decimal literal.
    Underscores are permitted as digit separators.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal rendering, with a leading ['-'] for negatives. *)

val of_float_floor : float -> t
(** [of_float_floor f] is the floor of [f] as an integer.
    @raise Invalid_argument if [f] is not finite. *)

val to_float : t -> float
(** Nearest-double approximation (may overflow to infinity). *)

(** {1 Predicates and comparisons} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_negative : t -> bool
val is_positive : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is the unique pair [(q, r)] with [a = q*b + r] and
    [0 <= r < |b|] (Euclidean division: the remainder is never
    negative).  @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
(** Euclidean quotient; see {!divmod}. *)

val rem : t -> t -> t
(** Euclidean remainder; see {!divmod}. *)

val pow : t -> int -> t
(** [pow x k] for [k >= 0].  @raise Invalid_argument on negative [k]. *)

val shift_left : t -> int -> t
(** Multiplication by a power of two. *)

val shift_right : t -> int -> t
(** Arithmetic shift: floor division by a power of two. *)

val gcd : t -> t -> t
(** Greatest common divisor, always non-negative; [gcd 0 0 = 0]. *)

val lcm : t -> t -> t
(** Least common multiple, always non-negative. *)

val succ : t -> t
val pred : t -> t

(** {1 Infix operators}

    Opened locally as [Bigint.O] where expression-heavy code benefits. *)

module O : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( mod ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit

(** {1 Internal checks} *)

val check_invariant : t -> bool
(** [true] iff the value is in normal form (used by the test suite). *)
