(** Cycles of an execution graph and their classification
    (Definitions 2 and 3 of the paper).

    A cycle [Z] is a subgraph corresponding to a cycle of the
    undirected shadow graph.  Traversing it, edges traversed along
    their direction and against it fall into two classes; restricting
    to non-local edges (messages) gives [Z+] (forward) and [Z−]
    (backward), with the {e orientation} chosen so that
    [|Z+| ≤ |Z−|] (Eq. (1)).  [Z] is {e relevant} iff every local edge
    is a backward edge under that orientation.

    Structural facts exploited by the checker (asserted in the code):
    every relevant cycle has [|Z+| ≥ 1] (otherwise the reversed
    traversal would be a directed cycle of the DAG), and when
    [|Z+| = |Z−|] the orientation is ambiguous but the ratio is
    1 < Ξ, so admissibility never depends on the choice. *)

type t = {
  traversal : Digraph.traversal list;
      (** the cycle in traversal order; [dir = +1] means the edge is
          traversed from [src] to [dst] *)
  orientation : int;
      (** +1 if the forward class is the [dir = +1] class, else -1 *)
  forward_messages : int;  (** [|Z+|] *)
  backward_messages : int;  (** [|Z−|] *)
  relevant : bool;
}

val messages : Graph.t -> Digraph.traversal list -> Digraph.traversal list
(** The non-local (message) steps of a traversal. *)

val classify : Graph.t -> Digraph.traversal list -> t
(** Classify one shadow-graph cycle per Definition 3. *)

val local_profile :
  Graph.t -> t -> [ `All_backward | `All_forward | `Mixed | `No_locals ]
(** Orientation of the local edges relative to the cycle's orientation:
    a relevant cycle has all locals backward; an all-forward cycle is
    the Fig. 4 shape; a cycle with locals in both classes constrains no
    delay assignment.  [`No_locals] cannot occur for genuine execution
    graphs (every cycle has a sink node whose second incoming edge must
    be local). *)

val ratio : t -> Rat.t
(** [|Z−|/|Z+|] of a relevant cycle.
    @raise Invalid_argument on non-relevant cycles. *)

val satisfies_abc : t -> xi:Rat.t -> bool
(** Eq. (2): [|Z−|/|Z+| < Ξ]; non-relevant cycles pass vacuously. *)

val enumerate : ?max_cycles:int -> Graph.t -> t list
(** Enumerate and classify all simple cycles.  Exponential — tests and
    the paper-faithful LP only. *)

val pp : Format.formatter -> t -> unit
