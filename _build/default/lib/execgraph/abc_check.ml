(** The ABC synchrony condition (Definition 4): an execution is
    admissible for parameter Ξ iff every relevant cycle [Z] of its
    execution graph satisfies [|Z−|/|Z+| < Ξ].

    Two checkers are provided.

    {b Exhaustive} ({!check_enumerate}): classify every simple shadow
    cycle and test Eq. (2).  Exponential; the test oracle.

    {b Polynomial} ({!check}): our reduction to nonpositive-cycle
    detection.  Write Ξ = α/β in lowest terms and build an auxiliary
    digraph [H] on the events of [G] with, for every message [u → v],
    a {e forward arc} [u → v] of weight [+α] and a {e backward arc}
    [v → u] of weight [−β]; and for every local edge [u → v] a backward
    arc [v → u] of weight [0] (no forward local arcs: relevance demands
    all local edges be backward).

    Claim: [G] violates Def. 4 iff [H] has a directed cycle of weight
    ≤ 0.

    Proof sketch (both directions; details mirror Cycle.classify):
    - A violating relevant cycle [Z] ([|Z−| ≥ Ξ·|Z+|]), traversed along
      its orientation, uses forward-message arcs for [Z+], backward
      message arcs for [Z−] and backward local arcs for its local
      edges; its weight in [H] is [α·|Z+| − β·|Z−| ≤ 0].
    - Conversely a directed cycle [C] in [H] of weight
      [α·f − β·b ≤ 0] cannot consist of backward arcs only (that would
      reverse into a directed cycle of the DAG [G]), so [f ≥ 1], hence
      [b/f ≥ α/β = Ξ > 1], so [f < b]; its shadow in [G] is a cycle
      whose orientation may legally be the traversal direction
      (Eq. (1) holds), all local edges are backward (only backward
      local arcs exist in [H]) — a relevant cycle violating Eq. (2).
      (A non-simple [C] splits into simple cycles, at least one of
      which has weight ≤ 0, and simple cycles of [H] that use both
      arcs of the {e same} message have weight [α − β > 0], so a
      genuine violation survives the splitting.)

    Detecting "some cycle has weight ≤ 0" with Bellman–Ford (which
    finds strictly negative cycles): with integer arc weights, rescale
    each arc weight [w] to [(m+1)·w − 1] where [m] is the arc count.
    A simple cycle of [k ≤ m] arcs and original weight [W] gets
    [(m+1)·W − k], which is negative iff [W ≤ 0]
    (if [W ≤ 0] it is [≤ −k < 0]; if [W ≥ 1] it is
    [≥ m + 1 − k ≥ 1 > 0]). *)

type verdict =
  | Admissible
  | Violation of Cycle.t  (** a concrete relevant cycle with ratio ≥ Ξ *)

let xi_parts xi =
  if Rat.compare xi Rat.one <= 0 then invalid_arg "Abc_check: requires Xi > 1";
  let a = Bigint.to_int_exn (Rat.num xi) and b = Bigint.to_int_exn (Rat.den xi) in
  (a, b)

module BF_int = Digraph.Bellman_ford (struct
  type t = int

  let zero = 0
  let add = ( + )
  let compare = Stdlib.compare
end)

(* Arc origin: which execution-graph edge an arc of H came from, and
   with which traversal direction. *)
type arc_origin = { g_edge : Digraph.edge; g_dir : int }

let build_h g ~xi =
  let alpha, beta = xi_parts xi in
  let h = Digraph.create (Graph.event_count g) in
  let origins = ref [] and weights = ref [] in
  List.iter
    (fun (e : Digraph.edge) ->
      if Graph.is_message g e then begin
        let fwd = Digraph.add_edge h ~src:e.src ~dst:e.dst in
        ignore fwd;
        origins := { g_edge = e; g_dir = 1 } :: !origins;
        weights := alpha :: !weights;
        let bwd = Digraph.add_edge h ~src:e.dst ~dst:e.src in
        ignore bwd;
        origins := { g_edge = e; g_dir = -1 } :: !origins;
        weights := -beta :: !weights
      end
      else begin
        let bwd = Digraph.add_edge h ~src:e.dst ~dst:e.src in
        ignore bwd;
        origins := { g_edge = e; g_dir = -1 } :: !origins;
        weights := 0 :: !weights
      end)
    (Digraph.edges (Graph.digraph g));
  let origins = Array.of_list (List.rev !origins) in
  let weights = Array.of_list (List.rev !weights) in
  (h, origins, weights)

(** Polynomial admissibility check; on violation, returns a concrete
    violating relevant cycle (reconstructed from the nonpositive cycle
    of [H], with repeated uses of the same message cancelled by the
    splitting argument above — Bellman–Ford returns a simple cycle, so
    no cancellation is needed in practice). *)
let check g ~xi =
  let h, origins, weights = build_h g ~xi in
  let m = Digraph.edge_count h in
  let scaled (e : Digraph.edge) = ((m + 1) * weights.(e.id)) - 1 in
  match BF_int.negative_cycle h ~weight:scaled with
  | None -> Admissible
  | Some arcs ->
      let traversal =
        List.map
          (fun (a : Digraph.edge) ->
            let o = origins.(a.id) in
            { Digraph.edge = o.g_edge; dir = o.g_dir })
          arcs
      in
      let c = Cycle.classify g traversal in
      Violation c

(** Exhaustive oracle: enumerate all simple cycles and apply Eq. (2). *)
let check_enumerate ?max_cycles g ~xi =
  let cycles = Cycle.enumerate ?max_cycles g in
  match List.find_opt (fun c -> not (Cycle.satisfies_abc c ~xi)) cycles with
  | None -> Admissible
  | Some c -> Violation c

let is_admissible g ~xi = match check g ~xi with Admissible -> true | Violation _ -> false

let pp_verdict fmt = function
  | Admissible -> Format.fprintf fmt "admissible"
  | Violation c -> Format.fprintf fmt "violation: %a" Cycle.pp c
