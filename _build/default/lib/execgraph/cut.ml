(** Consistent cuts, frontiers, cut intervals and real-time cuts
    (Definitions 5 and 6 of the paper; Theorem 3's Mattern-style
    real-time cuts).

    A cut is represented by its {e frontier}: for each process, the
    sequence number of its last included event ([-1] when the process
    contributes no event).  A cut [S] is consistent when (1) every
    {e correct} process has an event in [S] and (2) [S] is left-closed
    under the reflexive-transitive causal order [→*]. *)

type t = { frontier : int array  (** per process: last included seq, or -1 *) }

let frontier c = c.frontier

let mem c (ev : Event.t) = ev.seq <= c.frontier.(ev.proc)

(** The empty cut. *)
let empty ~nprocs = { frontier = Array.make nprocs (-1) }

(** All events of the graph. *)
let full g =
  let n = Graph.nprocs g in
  let f = Array.make n (-1) in
  for p = 0 to n - 1 do
    f.(p) <- List.length (Graph.events_of_proc g p) - 1
  done;
  { frontier = f }

(** Left closure ⟨S⟩ of a cut (Definition 6 uses ⟨φ⟩ for single
    events): extend the frontier with the causal past of every included
    event.  Implemented as a reverse BFS from the frontier events. *)
let left_closure g c =
  let n = Graph.nprocs g in
  let f = Array.copy c.frontier in
  let dg = Graph.digraph g in
  let seen = Array.make (Graph.event_count g) false in
  let q = Queue.create () in
  for p = 0 to n - 1 do
    if f.(p) >= 0 then begin
      (* frontier event id of process p *)
      List.iter
        (fun id ->
          let ev = Graph.event g id in
          if ev.seq <= f.(p) && not seen.(id) then begin
            seen.(id) <- true;
            Queue.add id q
          end)
        (Graph.events_of_proc g p)
    end
  done;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let ev = Graph.event g v in
    if ev.seq > f.(ev.proc) then f.(ev.proc) <- ev.seq;
    List.iter
      (fun (e : Digraph.edge) ->
        if not seen.(e.src) then begin
          seen.(e.src) <- true;
          Queue.add e.src q
        end)
      (Digraph.in_edges dg v)
  done;
  { frontier = f }

(** ⟨φ⟩: the left closure of a single event. *)
let closure_of_event g (ev : Event.t) =
  let f = Array.make (Graph.nprocs g) (-1) in
  f.(ev.proc) <- ev.seq;
  left_closure g { frontier = f }

(** Consistency (Definition 5) relative to a set of correct processes:
    every correct process has an event in the cut and the cut is left
    closed. *)
let is_consistent g ~correct c =
  let closed =
    let cl = left_closure g c in
    cl.frontier = c.frontier
  in
  closed && List.for_all (fun p -> c.frontier.(p) >= 0) correct

(** Cut interval [⟨φ⟩, ⟨ψ⟩] := ⟨ψ⟩ \ ⟨φ⟩ (Definition 6): the events of
    the closure of ψ that are not in the closure of φ, as a predicate
    and an explicit list. *)
let interval g ~from_event ~to_event =
  let lo = closure_of_event g from_event and hi = closure_of_event g to_event in
  let events = ref [] in
  for id = Graph.event_count g - 1 downto 0 do
    let ev = Graph.event g id in
    if mem hi ev && not (mem lo ev) then events := ev :: !events
  done;
  !events

(** Real-time cut (Mattern): all events with timestamp ≤ t.  Only
    meaningful when the graph records occurrence times; such a cut is
    automatically left-closed when message delays are non-negative. *)
let at_time g t =
  let n = Graph.nprocs g in
  let f = Array.make n (-1) in
  for id = 0 to Graph.event_count g - 1 do
    let ev = Graph.event g id in
    match ev.time with
    | Some ti when Rat.compare ti t <= 0 -> if ev.seq > f.(ev.proc) then f.(ev.proc) <- ev.seq
    | _ -> ()
  done;
  { frontier = f }

(** Enumerate the "principal" consistent cuts of a graph: the left
    closures of each single event plus the full cut.  This family
    suffices for checking the frontier-based synchrony bound of
    Theorem 2, since every consistent cut's frontier clock values are
    dominated by principal ones (used by tests and benches). *)
let principal_cuts g =
  let cuts = ref [ full g ] in
  for id = 0 to Graph.event_count g - 1 do
    cuts := closure_of_event g (Graph.event g id) :: !cuts
  done;
  !cuts

let pp fmt c =
  Format.fprintf fmt "@[<h>cut[";
  Array.iteri (fun p s -> Format.fprintf fmt " p%d:%d" p s) c.frontier;
  Format.fprintf fmt " ]@]"
