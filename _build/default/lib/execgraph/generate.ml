(** Random execution-graph generators, for tests and benchmarks.

    The generator runs a toy time-driven simulation: every process
    takes a wake-up event at time 0; every event sends messages to
    random processes with random integer delays (zero allowed, as in
    the ABC model).  The result is always a structurally valid
    execution graph (a DAG with per-process local chains); its ABC
    admissibility varies with the delay spread, so both checker
    verdicts are exercised. *)

let random_execution rng ~nprocs ~max_events ~max_delay ~fanout =
  let g = Graph.create ~nprocs in
  let module PQ = Set.Make (struct
    type t = int * int * int * int (* time, counter, src_event, dst_proc *)

    let compare = compare
  end) in
  let q = ref PQ.empty in
  let counter = ref 0 in
  let push time src dst =
    incr counter;
    q := PQ.add (time, !counter, src, dst) !q
  in
  for p = 0 to nprocs - 1 do
    push 0 (-1) p
  done;
  let events = ref 0 in
  while (not (PQ.is_empty !q)) && !events < max_events do
    let ((time, _, src, dst) as entry) = PQ.min_elt !q in
    q := PQ.remove entry !q;
    let ev = Graph.add_event g ~proc:dst in
    incr events;
    if src >= 0 then ignore (Graph.add_message g ~src ~dst:ev.Event.id);
    let nsend = Random.State.int rng (fanout + 1) in
    for _ = 1 to nsend do
      let target = Random.State.int rng nprocs in
      let delay = Random.State.int rng (max_delay + 1) in
      push (time + delay) ev.Event.id target
    done
  done;
  g

(** The largest ratio over relevant cycles by exhaustive enumeration —
    a slow oracle for {!Abc_check} / [Core.Abc.max_relevant_ratio];
    [None] if the graph has no relevant cycle. *)
let max_relevant_ratio_enum ?max_cycles g =
  let cycles = Cycle.enumerate ?max_cycles g in
  List.fold_left
    (fun acc c ->
      if c.Cycle.relevant then
        let r = Cycle.ratio c in
        match acc with None -> Some r | Some r' -> Some (Rat.max r r')
      else acc)
    None cycles
