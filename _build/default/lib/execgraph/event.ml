(** Events of an execution graph (Definition 1 of the paper).

    A node of the execution graph is a {e receive event}: the reception
    of exactly one message, which (at a correct process) triggers an
    atomic zero-time receive+compute+send step.  Events are identified
    by a dense integer id (the node index in the underlying digraph) and
    carry the process they occur at, their sequence number at that
    process, and an optional real-time timestamp (used only for the
    Mattern-style real-time cuts of Theorem 3 — the ABC model itself is
    time-free). *)

type t = {
  id : int;  (** dense node id in the execution graph *)
  proc : int;  (** process at which the event occurs *)
  seq : int;  (** 0-based position among the process's events *)
  time : Rat.t option;  (** real-time of occurrence, if recorded *)
}

let pp fmt e =
  match e.time with
  | None -> Format.fprintf fmt "\xcf\x86(p%d,#%d)" e.proc e.seq
  | Some t -> Format.fprintf fmt "\xcf\x86(p%d,#%d,t=%a)" e.proc e.seq Rat.pp t

let equal a b = a.id = b.id
let compare a b = Stdlib.compare a.id b.id
