(** Consistent cuts, frontiers, cut intervals and real-time cuts
    (Definitions 5 and 6 of the paper; Theorem 3's Mattern-style
    real-time cuts).

    A cut is represented by its {e frontier}: for each process, the
    sequence number of its last included event ([-1] when the process
    contributes no event).  A cut [S] is consistent when every
    {e correct} process has an event in [S] and [S] is left-closed
    under the reflexive-transitive causal order [→*]. *)

type t

val frontier : t -> int array
(** Per process: last included seq, or [-1].  The returned array is the
    cut's own representation; callers may mutate it to build cuts. *)

val mem : t -> Event.t -> bool
val empty : nprocs:int -> t

val full : Graph.t -> t
(** The cut containing all events. *)

val left_closure : Graph.t -> t -> t
(** Extend the frontier with the causal past of every included event. *)

val closure_of_event : Graph.t -> Event.t -> t
(** ⟨φ⟩: the left closure of a single event. *)

val is_consistent : Graph.t -> correct:int list -> t -> bool
(** Definition 5, relative to a set of correct processes. *)

val interval : Graph.t -> from_event:Event.t -> to_event:Event.t -> Event.t list
(** Cut interval [⟨φ⟩, ⟨ψ⟩] := ⟨ψ⟩ \ ⟨φ⟩ (Definition 6). *)

val at_time : Graph.t -> Rat.t -> t
(** Real-time cut (Mattern): all events with timestamp ≤ t; left-closed
    whenever message delays are non-negative. *)

val principal_cuts : Graph.t -> t list
(** The left closures of each single event plus the full cut — the
    family over which the Theorem 2 skew bound is checked. *)

val pp : Format.formatter -> t -> unit
