(** Random execution-graph generators, for tests and benchmarks.

    The generator runs a toy time-driven simulation: every process
    takes a wake-up event at time 0; every event sends messages to
    random processes with random integer delays (zero allowed, as in
    the ABC model).  The result is always a structurally valid
    execution graph (a DAG with per-process local chains); its ABC
    admissibility varies with the delay spread, so both checker
    verdicts are exercised. *)

val random_execution :
  Random.State.t ->
  nprocs:int ->
  max_events:int ->
  max_delay:int ->
  fanout:int ->
  Graph.t

val max_relevant_ratio_enum : ?max_cycles:int -> Graph.t -> Rat.t option
(** The largest ratio over relevant cycles by exhaustive enumeration —
    a slow oracle for [Abc_check] / [Core.Abc.max_relevant_ratio];
    [None] if the graph has no relevant cycle. *)
