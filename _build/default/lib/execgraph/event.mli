(** Events of an execution graph (Definition 1 of the paper).

    A node of the execution graph is a {e receive event}: the reception
    of exactly one message, which (at a correct process) triggers an
    atomic zero-time receive+compute+send step.  The optional timestamp
    is used only for the Mattern-style real-time cuts of Theorem 3 —
    the ABC model itself is time-free. *)

type t = {
  id : int;  (** dense node id in the execution graph *)
  proc : int;  (** process at which the event occurs *)
  seq : int;  (** 0-based position among the process's events *)
  time : Rat.t option;  (** real-time of occurrence, if recorded *)
}

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
