(** Cycles of an execution graph and their classification
    (Definitions 2 and 3 of the paper).

    A cycle [Z] is a subgraph corresponding to a cycle of the undirected
    shadow graph.  Traversing it, edges traversed along their direction
    and edges traversed against it fall into two classes; restricting to
    non-local edges (messages) gives [Z+] (forward) and [Z−] (backward),
    with the {e orientation} chosen so that [|Z+| <= |Z−|] (Eq. (1)).
    [Z] is {e relevant} iff every local edge is a backward edge under
    that orientation.

    Two structural facts exploited below (and asserted):
    - every relevant cycle has [|Z+| >= 1]: otherwise all edges would be
      traversed against their direction, i.e. the reversed traversal
      would be a directed cycle — impossible in a DAG;
    - when [|Z+| = |Z−|] the orientation is ambiguous, but the ratio is
      1 < Ξ, so admissibility never depends on the choice. *)

type t = {
  traversal : Digraph.traversal list;
      (** the cycle in traversal order; [dir = +1] means the edge is
          traversed from [src] to [dst] *)
  orientation : int;
      (** +1 if the forward class is the [dir = +1] class, else -1 *)
  forward_messages : int;  (** [|Z+|] *)
  backward_messages : int;  (** [|Z−|] *)
  relevant : bool;
}

let messages g t =
  List.filter (fun (tr : Digraph.traversal) -> Graph.is_message g tr.edge) t

(** Classify one shadow-graph cycle per Definition 3. *)
let classify g traversal =
  let msgs = messages g traversal in
  let f = List.length (List.filter (fun (tr : Digraph.traversal) -> tr.dir = 1) msgs) in
  let b = List.length msgs - f in
  let locals =
    List.filter (fun (tr : Digraph.traversal) -> not (Graph.is_message g tr.edge)) traversal
  in
  let locals_plus =
    List.length (List.filter (fun (tr : Digraph.traversal) -> tr.dir = 1) locals)
  in
  let locals_minus = List.length locals - locals_plus in
  (* Orientation +1 is permitted when f <= b (Eq. (1) holds with the
     dir=+1 class as Z+); it makes the cycle relevant iff no local edge
     is traversed forward.  Symmetrically for orientation -1. *)
  let rel_plus = f <= b && locals_plus = 0 in
  let rel_minus = b <= f && locals_minus = 0 in
  let orientation, forward_messages, backward_messages, relevant =
    if rel_plus then (1, f, b, true)
    else if rel_minus then (-1, b, f, true)
    else if f <= b then (1, f, b, false)
    else (-1, b, f, false)
  in
  if relevant then
    (* A relevant cycle with |Z+| = 0 would be a directed cycle in the
       DAG; see the module comment. *)
    assert (forward_messages >= 1);
  { traversal; orientation; forward_messages; backward_messages; relevant }

(** Orientation of the local edges relative to the cycle's orientation:
    a relevant cycle has all locals backward; a cycle whose locals are
    {e all forward} is the Fig. 4 shape (its delay sums must carry the
    opposite sign to leave room for positive local weights); a cycle
    with locals in both classes constrains nothing (both sides have
    slack).  Cycles without local edges cannot occur: every cycle of an
    execution graph has a "sink" node with two incoming edges, at most
    one of which can be the node's unique triggering message. *)
let local_profile g c =
  let locals =
    List.filter (fun (tr : Digraph.traversal) -> not (Graph.is_message g tr.edge)) c.traversal
  in
  let fwd =
    List.length (List.filter (fun (tr : Digraph.traversal) -> tr.dir = c.orientation) locals)
  in
  let n = List.length locals in
  if n = 0 then `No_locals
  else if fwd = 0 then `All_backward
  else if fwd = n then `All_forward
  else `Mixed

(** The ratio |Z−|/|Z+| of a relevant cycle. *)
let ratio c =
  if not c.relevant then invalid_arg "Cycle.ratio: non-relevant cycle";
  Rat.of_ints c.backward_messages c.forward_messages

(** [satisfies_abc c ~xi] is Eq. (2): [|Z−|/|Z+| < Ξ].  Non-relevant
    cycles are unconstrained and always satisfy the condition. *)
let satisfies_abc c ~xi = (not c.relevant) || Rat.compare (ratio c) xi < 0

(** Enumerate and classify all simple cycles.  Exponential — test/LP
    use only. *)
let enumerate ?max_cycles g =
  List.map (classify g) (Digraph.shadow_cycles ?max_cycles (Graph.digraph g))

let pp fmt c =
  let dir_str d = if d = 1 then "+" else "-" in
  Format.fprintf fmt "@[<h>cycle[%s|Z+|=%d |Z-|=%d%s]:"
    (if c.relevant then "relevant " else "non-relevant ")
    c.forward_messages c.backward_messages
    (if c.orientation = 1 then "" else " (flipped)");
  List.iter
    (fun (tr : Digraph.traversal) ->
      Format.fprintf fmt " %se%d" (dir_str tr.dir) tr.edge.id)
    c.traversal;
  Format.fprintf fmt "@]"
