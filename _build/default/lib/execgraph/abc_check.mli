(** The ABC synchrony condition (Definition 4): an execution is
    admissible for parameter Ξ iff every relevant cycle [Z] of its
    execution graph satisfies [|Z−|/|Z+| < Ξ].

    Two checkers:

    - {!check}: {b polynomial}, by reduction to nonpositive-cycle
      detection.  Writing Ξ = α/β in lowest terms, build a digraph [H]
      with a forward arc of weight +α per message, a backward arc of
      weight −β per message, and a backward arc of weight 0 per local
      edge (no forward local arcs: relevance demands all locals
      backward).  [G] violates Definition 4 iff [H] has a directed
      cycle of weight ≤ 0, decided exactly by Bellman–Ford on the
      rescaled integer weights [(m+1)·w − 1].  The full proof is in the
      implementation's header comment.
    - {!check_enumerate}: {b exhaustive} oracle over all simple shadow
      cycles; exponential, used by tests to cross-validate. *)

type verdict =
  | Admissible
  | Violation of Cycle.t  (** a concrete relevant cycle with ratio ≥ Ξ *)

val check : Graph.t -> xi:Rat.t -> verdict
(** Polynomial check; on violation returns a concrete witness cycle.
    @raise Invalid_argument unless [Ξ > 1]. *)

val check_enumerate : ?max_cycles:int -> Graph.t -> xi:Rat.t -> verdict
(** Exhaustive oracle (small graphs only). *)

val is_admissible : Graph.t -> xi:Rat.t -> bool
val pp_verdict : Format.formatter -> verdict -> unit
