lib/execgraph/abc_check.mli: Cycle Format Graph Rat
