lib/execgraph/generate.ml: Cycle Event Graph List Random Rat Set
