lib/execgraph/cycle.mli: Digraph Format Graph Rat
