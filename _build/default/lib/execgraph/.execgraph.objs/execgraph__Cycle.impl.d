lib/execgraph/cycle.ml: Digraph Format Graph List Rat
