lib/execgraph/abc_check.ml: Array Bigint Cycle Digraph Format Graph List Rat Stdlib
