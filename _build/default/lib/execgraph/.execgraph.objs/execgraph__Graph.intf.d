lib/execgraph/graph.mli: Digraph Event Format Rat
