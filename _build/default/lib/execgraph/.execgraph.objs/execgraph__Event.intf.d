lib/execgraph/event.mli: Format Rat
