lib/execgraph/cut.mli: Event Format Graph Rat
