lib/execgraph/graph.ml: Array Digraph Event Format List Queue
