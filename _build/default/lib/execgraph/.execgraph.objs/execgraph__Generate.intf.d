lib/execgraph/generate.mli: Graph Random Rat
