lib/execgraph/event.ml: Format Rat Stdlib
