lib/execgraph/cut.ml: Array Digraph Event Format Graph List Queue Rat
