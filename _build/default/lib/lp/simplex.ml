(** Exact simplex feasibility solver for mixed strict/non-strict linear
    systems, over the ε-extended rationals.

    This is the scalable companion to the Fourier–Motzkin engine in
    {!Lp} (which mirrors the paper's proof but is doubly exponential).
    A strict row [aᵀx < b] becomes [aᵀx ≤ b − ε] over the ordered field
    ℚ(ε) with ε a positive infinitesimal ({!Rat.Eps}); the system
    [Ax ≤ b′] is then decided by a phase-1 simplex:

    {v maximize −t  subject to  A(u − v) − t·1 + s = b′,  u,v,t,s ≥ 0 v}

    which always has the feasible start [u = v = 0], [t] pivoted in at
    the most-negative row.  Bland's rule guarantees termination.

    - optimum [t = 0]: the system is feasible; [x = u − v] standardized
      with a small enough concrete rational ε gives a strict rational
      solution;
    - optimum [t > 0] (possibly infinitesimally): infeasible, and the
      final reduced costs of the slack columns are a Farkas vector
      [y ≥ 0] with [yᵀA = 0] and [yᵀb′ = −t < 0] — exactly the
      certificate shape of Theorem 10 (strict rows entering the support
      when [yᵀb = 0]). *)

type tableau = {
  nvars : int;  (** original free variables *)
  m : int;  (** rows *)
  cols : int;  (** structural + slack columns = 2·nvars + 1 + m *)
  a : Rat.t array array;  (** m × cols *)
  rhs : Rat.Eps.t array;
  basis : int array;  (** basic column per row *)
  zrow : Rat.t array;  (** reduced costs (for max −t) *)
  mutable zval : Rat.Eps.t;  (** current objective value (−t) *)
}

let t_col nvars = 2 * nvars
let slack_col nvars i = (2 * nvars) + 1 + i

let build ({ Lp.nvars; rows } : Lp.system) =
  let m = List.length rows in
  let cols = (2 * nvars) + 1 + m in
  let a = Array.make_matrix m cols Rat.zero in
  let rhs = Array.make m Rat.Eps.zero in
  let basis = Array.make m 0 in
  List.iteri
    (fun i (coeffs, rel, b) ->
      Array.iteri
        (fun j c ->
          a.(i).(j) <- c;
          a.(i).(nvars + j) <- Rat.neg c)
        coeffs;
      a.(i).(t_col nvars) <- Rat.minus_one;
      a.(i).(slack_col nvars i) <- Rat.one;
      basis.(i) <- slack_col nvars i;
      rhs.(i) <-
        (match rel with
        | Lp.Le -> Rat.Eps.of_rat b
        | Lp.Lt -> Rat.Eps.make b Rat.minus_one))
    rows;
  (* objective: maximize −t, i.e. c = −e_t; with the all-slack basis the
     reduced-cost row is just c *)
  let zrow = Array.make cols Rat.zero in
  zrow.(t_col nvars) <- Rat.minus_one;
  { nvars; m; cols; a; rhs; basis; zrow; zval = Rat.Eps.zero }

(* Pivot on (row r, column j): standard exact Gauss-Jordan step on the
   tableau, the rhs and the reduced-cost row. *)
let pivot t r j =
  let piv = t.a.(r).(j) in
  let inv = Rat.inv piv in
  for c = 0 to t.cols - 1 do
    t.a.(r).(c) <- Rat.mul t.a.(r).(c) inv
  done;
  t.rhs.(r) <- Rat.Eps.scale inv t.rhs.(r);
  for i = 0 to t.m - 1 do
    if i <> r && not (Rat.is_zero t.a.(i).(j)) then begin
      let factor = t.a.(i).(j) in
      for c = 0 to t.cols - 1 do
        t.a.(i).(c) <- Rat.sub t.a.(i).(c) (Rat.mul factor t.a.(r).(c))
      done;
      t.rhs.(i) <- Rat.Eps.sub t.rhs.(i) (Rat.Eps.scale factor t.rhs.(r))
    end
  done;
  if not (Rat.is_zero t.zrow.(j)) then begin
    let factor = t.zrow.(j) in
    for c = 0 to t.cols - 1 do
      t.zrow.(c) <- Rat.sub t.zrow.(c) (Rat.mul factor t.a.(r).(c))
    done;
    (* the objective row transforms like a constraint row whose
       right-hand side is the negated objective value, so the value
       itself increases by factor * rhs *)
    t.zval <- Rat.Eps.add t.zval (Rat.Eps.scale factor t.rhs.(r))
  end;
  t.basis.(r) <- j

(* Phase start: if some rhs is negative, pivot t in at the most
   negative row, which makes every rhs non-negative (all t-column
   entries are −1). *)
let make_feasible t =
  let worst = ref (-1) in
  for i = 0 to t.m - 1 do
    if Rat.Eps.compare t.rhs.(i) Rat.Eps.zero < 0 then
      match !worst with
      | -1 -> worst := i
      | w -> if Rat.Eps.compare t.rhs.(i) t.rhs.(w) < 0 then worst := i
  done;
  if !worst >= 0 then pivot t !worst (t_col t.nvars)

(* Bland's rule primal simplex for the max problem: entering = smallest
   column with positive reduced cost; leaving = min-ratio row, ties by
   smallest basic column. *)
let optimize t =
  let continue_ = ref true in
  while !continue_ do
    let entering = ref (-1) in
    (for j = 0 to t.cols - 1 do
       if !entering < 0 && Rat.sign t.zrow.(j) > 0 then entering := j
     done);
    if !entering < 0 then continue_ := false
    else begin
      let j = !entering in
      let leave = ref (-1) in
      let best = ref Rat.Eps.zero in
      for i = 0 to t.m - 1 do
        if Rat.sign t.a.(i).(j) > 0 then begin
          let ratio = Rat.Eps.scale (Rat.inv t.a.(i).(j)) t.rhs.(i) in
          if
            !leave < 0
            || Rat.Eps.compare ratio !best < 0
            || (Rat.Eps.compare ratio !best = 0 && t.basis.(i) < t.basis.(!leave))
          then begin
            leave := i;
            best := ratio
          end
        end
      done;
      if !leave < 0 then
        (* cannot happen: the objective −t is bounded above by 0 *)
        failwith "Simplex.optimize: unbounded";
      pivot t !leave j
    end
  done

(* Extract the rational primal point: standardize the ε-components with
   a concrete ε small enough to keep every strict row strict. *)
let extract_solution (sys : Lp.system) t =
  let x_eps = Array.make t.nvars Rat.Eps.zero in
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    if b < t.nvars then x_eps.(b) <- Rat.Eps.add x_eps.(b) t.rhs.(i)
    else if b < 2 * t.nvars then
      x_eps.(b - t.nvars) <- Rat.Eps.sub x_eps.(b - t.nvars) t.rhs.(i)
  done;
  (* find a concrete epsilon: halve until all rows check *)
  let candidate e =
    let x = Array.map (Rat.Eps.standardize_with e) x_eps in
    if Lp.check_solution sys x then Some x else None
  in
  let rec search e fuel =
    if fuel = 0 then None
    else match candidate e with Some x -> Some x | None -> search (Rat.div e Rat.two) (fuel - 1)
  in
  (* the ε-feasible point guarantees a small enough concrete ε exists;
     coefficients are rationals of bounded size, so few halvings are
     ever needed (fuel is defensive) *)
  search Rat.one 256

(** Decide the system; same result shape as {!Lp.solve}. *)
let solve (sys : Lp.system) =
  let t = build sys in
  make_feasible t;
  optimize t;
  (* optimum value is −t*: feasible iff zval = 0 *)
  if Rat.Eps.compare t.zval Rat.Eps.zero >= 0 then begin
    match extract_solution sys t with
    | Some x -> Lp.Feasible x
    | None ->
        (* unreachable if the tableau logic is sound *)
        failwith "Simplex.solve: could not standardize a feasible point"
  end
  else begin
    (* infeasible: Farkas vector from the slack reduced costs *)
    let y = Array.init t.m (fun i -> Rat.neg t.zrow.(slack_col t.nvars i)) in
    let rows = Array.of_list sys.Lp.rows in
    let y_b =
      snd
        (Array.fold_left
           (fun (i, acc) yi ->
             let _, _, b = rows.(i) in
             (i + 1, Rat.add acc (Rat.mul yi b)))
           (0, Rat.zero) y)
    in
    let strict_involved =
      snd
        (Array.fold_left
           (fun (i, acc) yi ->
             let _, rel, _ = rows.(i) in
             (i + 1, acc || (Rat.sign yi > 0 && rel = Lp.Lt)))
           (0, false) y)
    in
    Lp.Infeasible { Lp.y; y_b; strict_involved }
  end
