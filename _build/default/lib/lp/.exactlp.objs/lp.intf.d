lib/lp/lp.mli: Format Rat
