lib/lp/lp.ml: Array Format Fun Hashtbl List Option Rat String
