lib/lp/simplex.ml: Array List Lp Rat
