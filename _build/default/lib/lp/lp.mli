(** Exact linear-inequality solving for the delay-assignment proof
    engine (Section 4.1 of the paper) — the Fourier–Motzkin engine.

    The paper shows (Theorem 12) that the strict system [Ax < b] built
    from a finite ABC execution graph (Fig. 6) always has a solution,
    via a variant of Farkas' lemma (Theorem 10, after Carver 1921):

    {e [Ax < b] has a solution iff every [y ≥ 0] with [yᵀA = 0]
    satisfies [yᵀb > 0].}

    This module provides the computational counterpart: a
    Fourier–Motzkin eliminator over exact rationals (greedy variable
    ordering, constraint deduplication) that decides feasibility of
    mixed strict/non-strict systems, returns a concrete solution when
    feasible, and returns a {e Farkas certificate} when infeasible — a
    non-negative combination [y] of the original rows with [yᵀA = 0]
    and [yᵀb ≤ 0] (or [= 0] with a strict row involved), exactly a
    witness violating Theorem 10's criterion.

    Fourier–Motzkin is doubly exponential in the worst case, matching
    its role as the paper-faithful engine for small graphs; use
    {!Simplex.solve} (same interface) for anything larger. *)

type relation = Le  (** [≤] *) | Lt  (** [<] *)

type certificate = {
  y : Rat.t array;  (** [y ≥ 0], [yᵀA = 0] *)
  y_b : Rat.t;  (** [yᵀb], which is [≤ 0] *)
  strict_involved : bool;
      (** whether a strict row has positive coefficient in [y]; when
          [yᵀb = 0] this is what makes the system infeasible *)
}

type result = Feasible of Rat.t array | Infeasible of certificate

type system = { nvars : int; rows : (Rat.t array * relation * Rat.t) list }

val make_system : nvars:int -> (Rat.t array * relation * Rat.t) list -> system

val solve : system -> result
(** Decide by Fourier–Motzkin; see the module documentation. *)

val check_solution : system -> Rat.t array -> bool
(** Verify a putative solution row by row. *)

val check_certificate : system -> certificate -> bool
(** Verify a Farkas certificate: [y ≥ 0], [y ≠ 0], [yᵀA = 0], and
    [yᵀb < 0] (or [= 0] with a strict row in the support). *)

val pp_result : Format.formatter -> result -> unit
