(** Exact linear-inequality solving for the delay-assignment proof
    engine (Section 4.1 of the paper).

    The paper shows (Theorem 12) that the strict system [Ax < b] built
    from a finite ABC execution graph (Fig. 6) always has a solution,
    via a variant of Farkas' lemma (Theorem 10, after Carver 1921):

    {e [Ax < b] has a solution iff every [y ≥ 0] with [yᵀA = 0]
    satisfies [yᵀb > 0].}

    This module provides the computational counterpart: a
    Fourier–Motzkin eliminator over exact rationals that
    - decides feasibility of mixed strict/non-strict systems,
    - returns a concrete solution when feasible (back-substitution
      picking midpoints of the residual intervals), and
    - returns a {e Farkas certificate} when infeasible: a non-negative
      combination [y] of the original rows with [yᵀA = 0] and
      [yᵀb ≤ 0] (or [= 0] with at least one strict row involved),
      which is exactly a witness violating Theorem 10's criterion.

    Fourier–Motzkin is exponential in the number of variables in the
    worst case, matching its role here: the paper-faithful engine runs
    on small execution graphs (the fast potential-based solver in
    [Core.Delay_assignment] covers large ones). *)

type relation = Le  (** [≤] *) | Lt  (** [<] *)

type constr = {
  coeffs : Rat.t array;  (** left-hand side coefficients *)
  rel : relation;
  rhs : Rat.t;
  provenance : Rat.t array;
      (** this constraint as a non-negative combination of the
          original rows; starts as a unit vector *)
}

type certificate = {
  y : Rat.t array;  (** [y ≥ 0], [yᵀA = 0] *)
  y_b : Rat.t;  (** [yᵀb], which is [≤ 0] *)
  strict_involved : bool;
      (** whether a strict row has positive coefficient in [y]; when
          [yᵀb = 0] this is what makes the system infeasible *)
}

type result = Feasible of Rat.t array | Infeasible of certificate

type system = { nvars : int; rows : (Rat.t array * relation * Rat.t) list }

let make_system ~nvars rows = { nvars; rows }

let constr_of_row nrows i (coeffs, rel, rhs) =
  let provenance = Array.make nrows Rat.zero in
  provenance.(i) <- Rat.one;
  { coeffs = Array.copy coeffs; rel; rhs; provenance }

let is_trivial c = Array.for_all Rat.is_zero c.coeffs

(* A trivial constraint is contradictory iff rhs < 0, or rhs = 0 with a
   strict relation. *)
let is_contradiction c =
  is_trivial c
  && (Rat.sign c.rhs < 0 || (Rat.is_zero c.rhs && c.rel = Lt))

let scale_constr k c =
  {
    coeffs = Array.map (Rat.mul k) c.coeffs;
    rel = c.rel;
    rhs = Rat.mul k c.rhs;
    provenance = Array.map (Rat.mul k) c.provenance;
  }

let add_constr a b =
  {
    coeffs = Array.mapi (fun i x -> Rat.add x b.coeffs.(i)) a.coeffs;
    rel = (if a.rel = Lt || b.rel = Lt then Lt else Le);
    rhs = Rat.add a.rhs b.rhs;
    provenance = Array.mapi (fun i x -> Rat.add x b.provenance.(i)) a.provenance;
  }

let certificate_of c =
  { y = c.provenance; y_b = c.rhs; strict_involved = c.rel = Lt }

(* Normalize a constraint so its first non-zero coefficient is ±1, and
   deduplicate a constraint set keeping, for each left-hand side, only
   the tightest right-hand side (smaller rhs, strict beating non-strict
   at equality).  This containment of redundant rows is what keeps
   Fourier-Motzkin from exploding on systems with many cycle rows. *)
let dedupe constrs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let c =
        match Array.find_opt (fun x -> not (Rat.is_zero x)) c.coeffs with
        | Some pivot -> scale_constr (Rat.inv (Rat.abs pivot)) c
        | None -> c
      in
      let key = Array.map Rat.to_string c.coeffs |> Array.to_list |> String.concat "," in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key c
      | Some c' ->
          let tighter =
            let cmp = Rat.compare c.rhs c'.rhs in
            cmp < 0 || (cmp = 0 && c.rel = Lt && c'.rel = Le)
          in
          if tighter then Hashtbl.replace tbl key c)
    constrs;
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []

(* Eliminate variable [j]: combine every (lower-bound, upper-bound)
   pair after normalizing the coefficient of [j] to ±1. *)
let eliminate j constrs =
  let zero_j, nonzero_j =
    List.partition (fun c -> Rat.is_zero c.coeffs.(j)) constrs
  in
  let normalized =
    List.map
      (fun c -> scale_constr (Rat.inv (Rat.abs c.coeffs.(j))) c)
      nonzero_j
  in
  let uppers, lowers =
    List.partition (fun c -> Rat.sign c.coeffs.(j) > 0) normalized
  in
  let combos =
    List.concat_map (fun lo -> List.map (fun up -> add_constr lo up) uppers) lowers
  in
  (* combined constraints have coefficient 0 on j by construction *)
  dedupe (zero_j @ combos)

exception Found of certificate

(* Back-substitution: variables were eliminated in increasing index
   order, so assign them in decreasing order using the constraint sets
   recorded before each elimination. *)
let back_substitute nvars stages =
  let x = Array.make nvars Rat.zero in
  List.iter
    (fun (j, constrs) ->
      (* bounds on x.(j) once later variables are fixed *)
      let lo = ref None and hi = ref None in
      let tighten_lo v strict =
        match !lo with
        | None -> lo := Some (v, strict)
        | Some (v', s') ->
            if Rat.compare v v' > 0 || (Rat.equal v v' && strict && not s') then
              lo := Some (v, strict)
      in
      let tighten_hi v strict =
        match !hi with
        | None -> hi := Some (v, strict)
        | Some (v', s') ->
            if Rat.compare v v' < 0 || (Rat.equal v v' && strict && not s') then
              hi := Some (v, strict)
      in
      List.iter
        (fun c ->
          let cj = c.coeffs.(j) in
          if not (Rat.is_zero cj) then begin
            (* c: cj * xj + rest ≤/< rhs, with all other vars fixed *)
            let rest = ref Rat.zero in
            Array.iteri
              (fun i ci ->
                if i <> j && not (Rat.is_zero ci) then
                  rest := Rat.add !rest (Rat.mul ci x.(i)))
              c.coeffs;
            let bound = Rat.div (Rat.sub c.rhs !rest) cj in
            if Rat.sign cj > 0 then tighten_hi bound (c.rel = Lt)
            else tighten_lo bound (c.rel = Lt)
          end)
        constrs;
      let value =
        match (!lo, !hi) with
        | None, None -> Rat.zero
        | Some (v, false), None -> v
        | Some (v, true), None -> Rat.add v Rat.one
        | None, Some (v, false) -> v
        | None, Some (v, true) -> Rat.sub v Rat.one
        | Some (l, ls), Some (h, hs) ->
            if Rat.equal l h then begin
              (* feasibility guarantees neither bound is strict here *)
              assert ((not ls) && not hs);
              l
            end
            else Rat.div (Rat.add l h) Rat.two
      in
      x.(j) <- value)
    stages;
  x

(** Decide the system; see the module documentation.

    Variables are eliminated greedily, picking at each step the
    variable with the smallest product of lower- and upper-bound
    constraint counts (the classic heuristic bounding Fourier-Motzkin
    blowup); back-substitution assigns them in reverse elimination
    order, which is what the recorded stages encode. *)
let solve { nvars; rows } =
  let nrows = List.length rows in
  let constrs = List.mapi (constr_of_row nrows) rows in
  try
    (* check initial contradictions (e.g. 0 < 0 rows) *)
    List.iter (fun c -> if is_contradiction c then raise (Found (certificate_of c))) constrs;
    let stages = ref [] in
    let current = ref constrs in
    let remaining = ref (List.init nvars Fun.id) in
    while !remaining <> [] do
      let cost j =
        let lo = ref 0 and hi = ref 0 in
        List.iter
          (fun c ->
            let s = Rat.sign c.coeffs.(j) in
            if s > 0 then incr hi else if s < 0 then incr lo)
          !current;
        (!lo * !hi) - (!lo + !hi)
      in
      let j =
        List.fold_left
          (fun best j -> match best with
            | None -> Some (j, cost j)
            | Some (_, cb) ->
                let cj = cost j in
                if cj < cb then Some (j, cj) else best)
          None !remaining
        |> Option.get |> fst
      in
      remaining := List.filter (fun v -> v <> j) !remaining;
      stages := (j, !current) :: !stages;
      let next = eliminate j !current in
      List.iter (fun c -> if is_contradiction c then raise (Found (certificate_of c))) next;
      (* drop trivially-true rows to limit blowup *)
      current := List.filter (fun c -> not (is_trivial c)) next
    done;
    Feasible (back_substitute nvars !stages)
  with Found cert -> Infeasible cert

(** [check_solution sys x] verifies a putative solution row by row. *)
let check_solution { nvars = _; rows } x =
  List.for_all
    (fun (coeffs, rel, rhs) ->
      let lhs =
        snd
          (Array.fold_left
             (fun (i, acc) c -> (i + 1, Rat.add acc (Rat.mul c x.(i))))
             (0, Rat.zero) coeffs)
      in
      match rel with Le -> Rat.compare lhs rhs <= 0 | Lt -> Rat.compare lhs rhs < 0)
    rows

(** [check_certificate sys cert] verifies a Farkas certificate:
    [y ≥ 0], [y ≠ 0], [yᵀA = 0], and [yᵀb < 0] (or [= 0] with a strict
    row in the support). *)
let check_certificate { nvars; rows } cert =
  let rows_arr = Array.of_list rows in
  Array.length cert.y = Array.length rows_arr
  && Array.for_all (fun v -> Rat.sign v >= 0) cert.y
  && Array.exists (fun v -> Rat.sign v > 0) cert.y
  && (let combo = Array.make nvars Rat.zero in
      Array.iteri
        (fun i yi ->
          let coeffs, _, _ = rows_arr.(i) in
          Array.iteri
            (fun j aij -> combo.(j) <- Rat.add combo.(j) (Rat.mul yi aij))
            coeffs)
        cert.y;
      Array.for_all Rat.is_zero combo)
  &&
  let ytb =
    snd
      (Array.fold_left
         (fun (i, acc) yi ->
           let _, _, rhs = rows_arr.(i) in
           (i + 1, Rat.add acc (Rat.mul yi rhs)))
         (0, Rat.zero) cert.y)
  in
  let strict_used =
    snd
      (Array.fold_left
         (fun (i, acc) yi ->
           let _, rel, _ = rows_arr.(i) in
           (i + 1, acc || (Rat.sign yi > 0 && rel = Lt)))
         (0, false) cert.y)
  in
  Rat.sign ytb < 0 || (Rat.is_zero ytb && strict_used)

let pp_result fmt = function
  | Feasible x ->
      Format.fprintf fmt "@[<h>feasible:";
      Array.iteri (fun i v -> Format.fprintf fmt " x%d=%a" i Rat.pp v) x;
      Format.fprintf fmt "@]"
  | Infeasible c ->
      Format.fprintf fmt "@[<h>infeasible (y\xe1\xb5\x80b=%a%s)@]" Rat.pp c.y_b
        (if c.strict_involved then ", strict" else "")
