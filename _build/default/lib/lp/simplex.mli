(** Exact simplex feasibility solver for mixed strict/non-strict linear
    systems, over the ε-extended rationals — the scalable companion to
    the Fourier–Motzkin engine in {!Lp}.

    A strict row [aᵀx < b] becomes [aᵀx ≤ b − ε] over the ordered field
    ℚ(ε) with ε a positive infinitesimal ({!Rat.Eps}); the system is
    then decided by a phase-1 simplex (maximize −t subject to
    [A(u − v) − t·1 + s = b′], all variables non-negative) with Bland's
    rule.  At optimum [t = 0] the system is feasible and the ε-point is
    standardized to a strictly feasible rational solution; otherwise
    the final reduced costs of the slack columns form a Farkas vector,
    in exactly the certificate shape of the paper's Theorem 10. *)

val solve : Lp.system -> Lp.result
(** Same contract as {!Lp.solve}; polynomial-time in practice. *)
