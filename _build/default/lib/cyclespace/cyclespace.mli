(** The paper's non-standard cycle space (Section 4.1).

    A cycle [Z] of an execution graph induces a {e cycle vector} over
    the messages of the graph: coefficient [+1] for backward messages
    ([e ∈ Z−]), [−1] for forward messages ([e ∈ Z+]), [0] elsewhere
    (Fig. 7).  Cycle addition [⊕] adds vectors: oppositely-oriented
    common messages ({e mixed edges}) cancel, identically-oriented ones
    become multi-edges.

    The module implements cycle vectors and their non-negative integer
    linear combinations, consistency of cycle pairs (Definition 10),
    the constructive {e mixed-free decomposition} of Lemmas 8–10 /
    Theorem 11 (by cancelling opposite traversal steps and Eulerian
    re-splitting of the balanced remainder into vertex-simple cycles),
    and the aggregated ratio checks of Lemma 7/11 and Corollary 1. *)

open Execgraph

(** Sparse integer vectors indexed by message edge id. *)
module Vector : sig
  type t

  val zero : t
  val coeff : t -> int -> int
  val set : t -> int -> int -> t
  val add : t -> t -> t
  val scale : int -> t -> t
  val equal : t -> t -> bool
  val is_zero : t -> bool

  val support : t -> int list
  (** Message ids with non-zero coefficient. *)

  val s_minus : t -> int
  (** [s−]: sum of the non-negative coefficients (backward weight). *)

  val s_plus : t -> int
  (** [s+]: sum of the negative coefficients (forward weight, ≤ 0). *)

  val satisfies_sum_property : t -> xi:Rat.t -> bool
  (** The sum property [Ξ·s+ + s− < 0] of Lemmas 7 and 11 — for a
      vector representing a relevant cycle this is exactly the ABC
      synchrony condition (2). *)

  val pp : Format.formatter -> t -> unit
end

val vector_of_cycle : Graph.t -> Cycle.t -> Vector.t
(** The cycle vector per the paper's convention: [+1] on [Z−], [−1] on
    [Z+], under the cycle's Definition-3 orientation. *)

(** Consistency of a cycle pair (Definition 10): [I_consistent] when
    all common messages are identically oriented in the two cycle
    vectors (or the cycles are message-disjoint), [O_consistent] when
    all are oppositely oriented, [Mixed] otherwise. *)
type consistency = I_consistent | O_consistent | Mixed

val consistency : Graph.t -> Cycle.t -> Cycle.t -> consistency

exception Not_decomposable of string
(** Raised when the input steps are not balanced — impossible for
    genuine cycles; kept as a defensive check. *)

val decompose : Graph.t -> (int * Cycle.t) list -> Cycle.t list
(** [decompose g cycles] re-expresses the ⊕-sum of [cycles] (with
    non-negative multiplicities) as a mixed-free family (Theorem 11).
    @raise Invalid_argument on negative multiplicities.
    @raise Not_decomposable if the steps are not balanced. *)

val sum_vector : Graph.t -> (int * Cycle.t) list -> Vector.t
(** The ⊕-sum of a weighted family, as a vector. *)

val verify_decomposition :
  Graph.t -> inputs:(int * Cycle.t) list -> outputs:Cycle.t list -> bool
(** The decomposition's defining property: the vector sum is preserved
    and no two output cycles share an oppositely-oriented message. *)

val corollary1_holds : Vector.t -> xi:Rat.t -> bool
(** Corollary 1, checked on a concrete vector: a non-negative
    combination of relevant cycles of an ABC-admissible graph satisfies
    [|C−|/|C+| < Ξ] (zero vectors pass vacuously). *)
