(** The paper's non-standard cycle space (Section 4.1).

    A cycle [Z] of an execution graph induces a {e cycle vector} over
    the messages of the graph: coefficient [+1] for backward messages
    ([e ∈ Z−]), [−1] for forward messages ([e ∈ Z+]), [0] elsewhere
    (Fig. 7).  Cycle addition [⊕] adds vectors: oppositely-oriented
    common messages ({e mixed edges}) cancel, identically-oriented ones
    become multi-edges.

    This module implements:
    - cycle vectors and their non-negative integer linear combinations,
    - consistency of cycle pairs (Definition 10),
    - the constructive {e mixed-free decomposition} of
      Lemmas 8–10 / Theorem 11: a sum of cycles is re-expressed as a
      sum of cycles none of which share oppositely-oriented messages
      (implemented by cancelling opposite traversal steps and
      re-splitting the balanced remainder into vertex-simple cycles —
      an Eulerian decomposition),
    - the aggregated ratio check of Corollary 1 and the sum properties
      of Lemmas 7 and 11 ([Ξ·s+ + s− < 0]). *)

open Execgraph

module Imap = Map.Make (Int)

(** Sparse integer vectors indexed by message edge id. *)
module Vector = struct
  type t = int Imap.t

  let zero : t = Imap.empty
  let coeff v e = match Imap.find_opt e v with Some c -> c | None -> 0

  let set v e c : t = if c = 0 then Imap.remove e v else Imap.add e c v

  let add (a : t) (b : t) : t =
    Imap.union (fun _ x y -> if x + y = 0 then None else Some (x + y)) a b

  let scale k (v : t) : t =
    if k = 0 then zero else Imap.map (fun c -> k * c) v

  let equal (a : t) (b : t) = Imap.equal Int.equal a b
  let is_zero (v : t) = Imap.is_empty v
  let support (v : t) = Imap.fold (fun e _ acc -> e :: acc) v []

  (** [s−]: sum of the non-negative coefficients (backward weight). *)
  let s_minus (v : t) = Imap.fold (fun _ c acc -> if c > 0 then acc + c else acc) v 0

  (** [s+]: sum of the negative coefficients (forward weight, ≤ 0). *)
  let s_plus (v : t) = Imap.fold (fun _ c acc -> if c < 0 then acc + c else acc) v 0

  (** The sum property [Ξ·s+ + s− < 0] of Lemmas 7 and 11 (equivalently
      [s− < Ξ·|s+|]), which for a vector representing a relevant cycle
      is exactly the ABC synchrony condition (2). *)
  let satisfies_sum_property v ~xi =
    let open Rat.O in
    (Rat.mul xi (Rat.of_int (s_plus v)) + Rat.of_int (s_minus v)) < Rat.zero

  let pp fmt (v : t) =
    Format.fprintf fmt "@[<h>{";
    Imap.iter (fun e c -> Format.fprintf fmt " m%d:%+d" e c) v;
    Format.fprintf fmt " }@]"
end

(** The cycle vector of a classified cycle, per the paper's convention:
    [+1] on [Z−], [−1] on [Z+].  A message traversed with direction
    [dir] under cycle orientation [o] is forward iff [dir = o], so its
    coefficient is [−dir·o]. *)
let vector_of_cycle g (c : Cycle.t) : Vector.t =
  List.fold_left
    (fun acc (tr : Digraph.traversal) ->
      if Graph.is_message g tr.edge then
        Vector.set acc tr.edge.id (-tr.dir * c.orientation)
      else acc)
    Vector.zero c.traversal

(** Consistency of a cycle pair (Definition 10): [I_consistent] when
    all common messages are identically oriented in the two cycle
    vectors (or the cycles are message-disjoint), [O_consistent] when
    all are oppositely oriented, [Mixed] otherwise. *)
type consistency = I_consistent | O_consistent | Mixed

let consistency g c1 c2 =
  let v1 = vector_of_cycle g c1 and v2 = vector_of_cycle g c2 in
  let common =
    List.filter (fun e -> Vector.coeff v2 e <> 0) (Vector.support v1)
  in
  if common = [] then I_consistent
  else begin
    let products = List.map (fun e -> Vector.coeff v1 e * Vector.coeff v2 e) common in
    if List.for_all (fun p -> p > 0) products then I_consistent
    else if List.for_all (fun p -> p < 0) products then O_consistent
    else Mixed
  end

(* ------------------------------------------------------------------ *)
(* Mixed-free decomposition (Theorem 11).

   Given relevant cycles Z1..Zn with non-negative multiplicities, we
   form the multiset of oriented traversal steps of all copies (taken
   along each cycle's orientation so that its steps match its cycle
   vector), cancel pairs of opposite steps over the same edge (both
   messages and local edges), and decompose the balanced remainder into
   vertex-simple closed traversals.  Each resulting cycle uses every
   remaining step with its surviving orientation, so no two resulting
   cycles (and no resulting cycle vs. any input) contain oppositely
   oriented messages: the family is mixed-free and i-consistent, and
   the vector sum is preserved — the algorithmic content of
   Lemmas 8–10 and Theorem 11. *)

(** One oriented step: an edge of the execution graph together with the
    direction it is traversed ([+1] = along the edge). *)
type step = { edge : Digraph.edge; sdir : int }

let steps_of_cycle (c : Cycle.t) =
  (* Orient the traversal along the cycle's orientation so the step
     signs agree with the cycle vector. *)
  let tr = if c.orientation = 1 then c.traversal else List.rev c.traversal in
  let flip = c.orientation in
  List.map (fun (t : Digraph.traversal) -> { edge = t.edge; sdir = t.dir * flip }) tr

(** Cancel opposite steps on the same edge; returns the surviving net
    multiplicity per (edge id, direction). *)
let net_steps (steps : step list) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl s.edge.id) in
      Hashtbl.replace tbl s.edge.id (cur + s.sdir))
    steps;
  tbl

exception Not_decomposable of string

(** Decompose the multiset of net steps into vertex-simple closed
    traversals.  The net steps are balanced at every vertex (each input
    cycle is a closed traversal and cancellation removes one in- and
    one out-step at each endpoint), so an Eulerian peeling succeeds. *)
let euler_split g (net : (int, int) Hashtbl.t) : Cycle.t list =
  (* remaining multiplicity per edge id (signed) *)
  let remaining = Hashtbl.copy net in
  (* adjacency: vertex -> available outgoing steps *)
  let out_steps v =
    let dg = Graph.digraph g in
    let from_out =
      List.filter_map
        (fun (e : Digraph.edge) ->
          match Hashtbl.find_opt remaining e.id with
          | Some m when m > 0 -> Some { edge = e; sdir = 1 }
          | _ -> None)
        (Digraph.out_edges dg v)
    in
    let from_in =
      List.filter_map
        (fun (e : Digraph.edge) ->
          match Hashtbl.find_opt remaining e.id with
          | Some m when m < 0 -> Some { edge = e; sdir = -1 }
          | _ -> None)
        (Digraph.in_edges dg v)
    in
    from_out @ from_in
  in
  let consume s =
    let cur = Option.value ~default:0 (Hashtbl.find_opt remaining s.edge.id) in
    Hashtbl.replace remaining s.edge.id (cur - s.sdir)
  in
  let unconsume s =
    let cur = Option.value ~default:0 (Hashtbl.find_opt remaining s.edge.id) in
    Hashtbl.replace remaining s.edge.id (cur + s.sdir)
  in
  let target s = if s.sdir = 1 then s.edge.dst else s.edge.src in
  let source s = if s.sdir = 1 then s.edge.src else s.edge.dst in
  let cycles = ref [] in
  let any_remaining () =
    Hashtbl.fold (fun _ m acc -> acc || m <> 0) remaining false
  in
  while any_remaining () do
    (* start from any vertex with an available step *)
    let start =
      let found = ref None in
      Hashtbl.iter
        (fun eid m ->
          if m <> 0 && !found = None then begin
            let e = Digraph.edge (Graph.digraph g) eid in
            found := Some (if m > 0 then e.src else e.dst)
          end)
        remaining;
      match !found with Some v -> v | None -> assert false
    in
    (* walk until a vertex repeats, then extract the enclosed simple
       cycle and push the prefix back *)
    let path = ref [] (* steps, reversed *) in
    let on_path = Hashtbl.create 16 in
    Hashtbl.replace on_path start ();
    let v = ref start in
    let extracted = ref false in
    while not !extracted do
      match out_steps !v with
      | [] ->
          raise
            (Not_decomposable
               (Printf.sprintf "stuck at vertex %d: steps not balanced" !v))
      | s :: _ ->
          consume s;
          path := s :: !path;
          let w = target s in
          if Hashtbl.mem on_path w then begin
            (* extract the cycle ending at w *)
            let rec split acc = function
              | [] -> (acc, [])
              | s' :: rest ->
                  if source s' = w then (s' :: acc, rest) else split (s' :: acc) rest
            in
            let cycle_steps, prefix = split [] !path in
            (* return the unused prefix steps to the pool *)
            List.iter unconsume prefix;
            let traversal =
              List.map (fun s' -> { Digraph.edge = s'.edge; dir = s'.sdir }) cycle_steps
            in
            cycles := Cycle.classify g traversal :: !cycles;
            extracted := true
          end
          else begin
            Hashtbl.replace on_path w ();
            v := w
          end
    done
  done;
  !cycles

(** [decompose g cycles] re-expresses the ⊕-sum of [cycles] (with
    multiplicities) as a mixed-free family (Theorem 11).  Raises
    {!Not_decomposable} if the input steps are not balanced — which
    cannot happen for genuine cycles. *)
let decompose g (cycles : (int * Cycle.t) list) : Cycle.t list =
  let steps =
    List.concat_map
      (fun (mult, c) ->
        if mult < 0 then invalid_arg "Cyclespace.decompose: negative multiplicity";
        List.concat (List.init mult (fun _ -> steps_of_cycle c)))
      cycles
  in
  euler_split g (net_steps steps)

(** The ⊕-sum of a weighted family, as a vector. *)
let sum_vector g (cycles : (int * Cycle.t) list) : Vector.t =
  List.fold_left
    (fun acc (mult, c) -> Vector.add acc (Vector.scale mult (vector_of_cycle g c)))
    Vector.zero cycles

(** The decomposition's defining property: the vector sum is preserved
    and no two output cycles (nor any output vs. input) share an
    oppositely-oriented message. *)
let verify_decomposition g ~(inputs : (int * Cycle.t) list) ~(outputs : Cycle.t list) =
  let in_sum = sum_vector g inputs in
  (* Output cycle vectors must be taken with the orientation of their
     traversal as produced (steps already oriented); recompute from
     traversal directly: coefficient −dir. *)
  let vector_of_traversal (c : Cycle.t) =
    List.fold_left
      (fun acc (tr : Digraph.traversal) ->
        if Graph.is_message g tr.edge then Vector.set acc tr.edge.id (-tr.dir) else acc)
      Vector.zero c.traversal
  in
  let out_sum =
    List.fold_left (fun acc c -> Vector.add acc (vector_of_traversal c)) Vector.zero outputs
  in
  let sums_match = Vector.equal in_sum out_sum in
  let mixed_free =
    let vs = List.map vector_of_traversal outputs in
    let rec pairs = function
      | [] -> true
      | v :: rest ->
          List.for_all
            (fun w ->
              List.for_all
                (fun e -> Vector.coeff v e * Vector.coeff w e >= 0)
                (Vector.support v))
            rest
          && pairs rest
    in
    pairs vs
  in
  sums_match && mixed_free

(** Corollary 1, checked: a non-negative combination of relevant cycles
    of an ABC-admissible graph satisfies [|C−|/|C+| < Ξ]; here we test
    the inequality on a concrete vector. *)
let corollary1_holds v ~xi = Vector.is_zero v || Vector.satisfies_sum_property v ~xi
