(** FIFO channels from the ABC condition (Fig. 10, Section 5.1).

    The ABC model can enforce FIFO order on a link [p2 → q1] with
    {e unbounded and even growing} delays — something no bounded-delay
    partially synchronous model can express.  The construction: between
    two consecutive data messages to [q1], the sender [p2] performs
    enough message exchanges with a helper [p1] that a reordering at
    [q1] would close a relevant cycle of ratio [≥ Ξ]:

    - data message [m_i] is sent at event [s_i];
    - a chatter chain of [c] messages links [s_i] causally to
      [s_{i+1}];
    - if [m_{i+1}] overtook [m_i] at [q1], the cycle
      [s_i → (m_i) → φ ← (local) ← φ′ ← (m_{i+1}) ← s_{i+1} ← chain ← s_i]
      would be relevant with [|Z−| = c + 1] backward messages
      ([m_{i+1}] plus the chatter) and [|Z+| = 1] ([m_i]), so it is
      forbidden whenever [c + 1 ≥ Ξ], i.e. [c ≥ ⌈Ξ⌉ − 1 + 1] messages
      suffice strictly (we use [c = ⌈Ξ⌉] for the margin the paper's
      Fig. 10 shows: Ξ = 4 forbidden ratio 5).

    [build ~n_messages ~chatter ~reordered] constructs the execution
    graph directly (the scenario is about graph structure, not about an
    algorithm's computation), with or without a reordering at [q1];
    checking admissibility then reproduces the figure's claim. *)

open Execgraph

type built = {
  graph : Graph.t;
  data_receive_order : int list;  (** indices of data messages in arrival order *)
}

(** Processes: 0 = p2 (sender), 1 = p1 (helper), 2 = q1 (receiver).
    [chatter] = number of p1↔p2 messages between consecutive sends.
    [reordered]: if [Some (i)], data messages [i] and [i+1] arrive
    swapped at [q1]. *)
let build ~n_messages ~chatter ~reordered () =
  let g = Graph.create ~nprocs:3 in
  (* p2's events: s_0, then chatter hops, s_1, ... *)
  let send_events = Array.make n_messages (-1) in
  let prev = ref None in
  for i = 0 to n_messages - 1 do
    (* Build the chatter chain's intermediate events BEFORE the send
       event s_i: they precede it causally, and events of one process
       must be appended in causal order. *)
    let chain_end =
      match !prev with
      | None -> None
      | Some last ->
          let cur = ref last in
          let hops = max 2 chatter in
          (* alternate p1 / p2 events; the final hop lands on s_i *)
          for h = 1 to hops - 1 do
            let proc = if h mod 2 = 1 then 1 else 0 in
            let ev = Graph.add_event g ~proc in
            ignore (Graph.add_message g ~src:!cur ~dst:ev.Event.id);
            cur := ev.Event.id
          done;
          Some !cur
    in
    let s = Graph.add_event g ~proc:0 in
    send_events.(i) <- s.Event.id;
    (match chain_end with
    | None -> ()
    | Some cur -> ignore (Graph.add_message g ~src:cur ~dst:s.Event.id));
    prev := Some s.Event.id
  done;
  (* q1's receive events, possibly with a swap *)
  let order = List.init n_messages Fun.id in
  let order =
    match reordered with
    | None -> order
    | Some i ->
        List.map (fun j -> if j = i then i + 1 else if j = i + 1 then i else j) order
  in
  List.iter
    (fun i ->
      let r = Graph.add_event g ~proc:2 in
      ignore (Graph.add_message g ~src:send_events.(i) ~dst:r.Event.id))
    order;
  { graph = g; data_receive_order = order }

(** The figure's claim, as a predicate: with chatter [c ≥ ⌈Ξ⌉], the
    in-order execution is admissible for Ξ while every single-swap
    reordering is not. *)
let fifo_guaranteed ~xi ~n_messages ~chatter =
  let ok = build ~n_messages ~chatter ~reordered:None () in
  let in_order_admissible = Abc_check.is_admissible ok.graph ~xi in
  let all_swaps_rejected =
    List.for_all
      (fun i ->
        let bad = build ~n_messages ~chatter ~reordered:(Some i) () in
        not (Abc_check.is_admissible bad.graph ~xi))
      (List.init (n_messages - 1) Fun.id)
  in
  in_order_admissible && all_swaps_rejected
