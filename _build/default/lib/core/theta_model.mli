(** The Θ-Model (Section 4): bounds the ratio of maximum and minimum
    end-to-end delays of messages simultaneously in transit,
    [τ+(t)/τ−(t) ≤ Θ] (Eq. (3)).  Checkers over timed execution
    graphs, and Theorem 6's direction [MΘ ⊆ MABC]. *)

val message_delays :
  Execgraph.Graph.t -> (Digraph.edge * Rat.t * Rat.t * Rat.t) list
(** Timed messages as (edge, send time, receive time, delay). *)

val delay_bounds : Execgraph.Graph.t -> (Rat.t * Rat.t) option
(** (min, max) delay over timed messages; [None] without any. *)

val static_delay_ratio : Execgraph.Graph.t -> Rat.t option
(** The static Θ: max/min delay.  [None] when there are no messages or
    a delay is zero (admissible in ABC, in no Θ-Model). *)

val dynamic_admissible : Execgraph.Graph.t -> theta:Rat.t -> bool
(** Eq. (3) proper, over pairs of simultaneously-in-transit messages. *)

val subset_of_abc : Execgraph.Graph.t -> theta:Rat.t -> xi:Rat.t -> bool
(** Theorem 6 checked on a concrete execution: Θ-admissible implies
    ABC-admissible for [Ξ > Θ] (vacuous when not Θ-admissible).
    @raise Invalid_argument unless [Ξ > Θ]. *)
