(** Normalized delay assignments (Section 4.1, Theorems 7 and 12).

    Theorem 7: for every finite ABC execution graph [G] (admissible for
    Ξ) there is an end-to-end delay assignment [τ] with
    [1 < τ(e) < Ξ] for every message and strictly positive weights on
    local edges, such that the weighted graph [Gτ] is causally
    equivalent to [G].  This is the engine behind the model
    indistinguishability of the ABC and Θ models (Theorem 9).

    Two independent constructions are provided:

    - {!solve_fast}: assign {e occurrence times} [t(φ)] to events via
      difference constraints ([1 + ε ≤ t(ψ) − t(φ) ≤ Ξ − ε] per
      message, [t(ψ) − t(φ) ≥ ε] per local edge) solved by
      Bellman–Ford potentials over the ε-extended rationals
      ({!Rat.Eps}); delays are differences of times, so the zero-sum
      condition around every cycle holds by construction.  Polynomial.

    - {!solve_faithful}: the paper's own construction (Fig. 6): build
      the strict system [Ax < b] with one variable per message — rows
      [−τ(e) < −1] and [τ(e) < Ξ] for every message, row
      [Σ_{Z−} τ − Σ_{Z+} τ < 0] for every relevant cycle and the
      sign-flipped row for every cycle whose local edges are all
      forward (cycles with locals in both classes are unconstrained;
      see {!build_fig6}) — and solve it exactly (simplex over
      ε-extended rationals by default, or the paper's Fourier–Motzkin
      narrative).  When the graph is {e not} admissible, the solver
      returns a Farkas certificate
      ([y ≥ 0, yᵀA = 0, yᵀb ≤ 0]), witnessing Theorem 10's criterion;
      its cycle coefficients point at the violating relevant cycles.
      Exponential (enumerates simple cycles): small graphs only. *)

open Execgraph

(* ------------------------------------------------------------------ *)
(* Fast potential-based construction *)

module BF_eps = Digraph.Bellman_ford (struct
  type t = Rat.Eps.t

  let zero = Rat.Eps.zero
  let add = Rat.Eps.add
  let compare = Rat.Eps.compare
end)

type assignment = {
  times : Rat.t array;  (** event id -> occurrence time *)
  delays : (int * Rat.t) list;  (** message edge id -> delay in (1, Ξ) *)
  epsilon : Rat.t;  (** the concrete ε substituted for the infinitesimal *)
}

(** Solve by difference constraints; [None] iff the graph violates the
    ABC condition for Ξ (Theorem 12 in contrapositive). *)
let solve_fast g ~xi =
  if Rat.compare xi Rat.one <= 0 then invalid_arg "Delay_assignment.solve_fast: Xi > 1";
  let dg = Graph.digraph g in
  (* Constraint graph: t(dst_of_arc) <= t(src_of_arc) + w(arc). *)
  let h = Digraph.create (Graph.event_count g) in
  let weights = ref [] in
  let add_arc src dst w =
    ignore (Digraph.add_edge h ~src ~dst);
    weights := w :: !weights
  in
  List.iter
    (fun (e : Digraph.edge) ->
      if Graph.is_message g e then begin
        (* t(v) - t(u) <= Ξ - ε  and  t(u) - t(v) <= -1 - ε *)
        add_arc e.src e.dst (Rat.Eps.make xi Rat.minus_one);
        add_arc e.dst e.src (Rat.Eps.make Rat.minus_one Rat.minus_one)
      end
      else
        (* local edge: t(u) - t(v) <= -ε, i.e. t strictly increases *)
        add_arc e.dst e.src (Rat.Eps.make Rat.zero Rat.minus_one))
    (Digraph.edges dg);
  let weights = Array.of_list (List.rev !weights) in
  match BF_eps.potentials h ~weight:(fun (a : Digraph.edge) -> weights.(a.id)) with
  | None -> None
  | Some pi ->
      (* Choose a concrete ε > 0 preserving every strict inequality.
         Each original constraint is [t(v) − t(u) ≤ w_std + w_c·ε] with
         w_c = −1; satisfied in Eps order.  With diff = pi(v) − pi(u) =
         (s, c), we need s + c·e < bound_std strictly (bounds 1 below,
         Ξ above, 0 for locals).  If s is strictly inside, take e below
         slack/(|c|+1); if s sits on the bound, the ε-parts already
         enforce strictness for every e in (0, 1). *)
      let n = Graph.event_count g in
      let eps = ref Rat.one in
      let consider (diff : Rat.Eps.t) (bound : Rat.Eps.t) =
        (* requirement: diff < bound with concrete ε (bound's ε part
           encodes the strictness margin) *)
        let s = Rat.sub bound.Rat.Eps.std diff.Rat.Eps.std in
        let c = Rat.sub diff.Rat.Eps.eps bound.Rat.Eps.eps in
        if Rat.sign s > 0 && Rat.sign c > 0 then
          eps := Rat.min !eps (Rat.div s (Rat.add c Rat.one))
      in
      List.iter
        (fun (e : Digraph.edge) ->
          let diff = Rat.Eps.sub pi.(e.dst) pi.(e.src) in
          if Graph.is_message g e then begin
            consider diff (Rat.Eps.of_rat xi);
            consider (Rat.Eps.of_rat Rat.one) diff
          end
          else consider (Rat.Eps.of_rat Rat.zero) diff)
        (Digraph.edges dg);
      let e_val = Rat.div !eps Rat.two in
      let times = Array.make n Rat.zero in
      for i = 0 to n - 1 do
        times.(i) <- Rat.Eps.standardize_with e_val pi.(i)
      done;
      let delays =
        List.filter_map
          (fun (e : Digraph.edge) ->
            if Graph.is_message g e then Some (e.id, Rat.sub times.(e.dst) times.(e.src))
            else None)
          (Digraph.edges dg)
      in
      Some { times; delays; epsilon = e_val }

(** Verify an assignment: [1 < τ(e) < Ξ] for every message, and strict
    time increase along every local edge (causal equivalence: the event
    order at every process is preserved and delays are consistent with
    the times by construction). *)
let verify g ~xi (a : assignment) =
  List.for_all
    (fun (e : Digraph.edge) ->
      let d = Rat.sub a.times.(e.dst) a.times.(e.src) in
      if Graph.is_message g e then Rat.compare Rat.one d < 0 && Rat.compare d xi < 0
      else Rat.sign d > 0)
    (Digraph.edges (Graph.digraph g))

(* ------------------------------------------------------------------ *)
(* Paper-faithful construction: the Fig. 6 linear system *)

type fig6_system = {
  system : Lp.system;
  message_ids : int array;  (** column -> message edge id *)
  n_relevant : int;
  n_nonrelevant : int;
}

(** Build the matrix of Fig. 6: [2k] bound rows, one row per relevant
    cycle ([+1] on [Z−] columns, [−1] on [Z+]), and the sign-flipped
    row per all-forward-locals cycle (see the comment inside). *)
let build_fig6 ?max_cycles g ~xi =
  let msgs =
    List.filter (fun (e : Digraph.edge) -> Graph.is_message g e)
      (Digraph.edges (Graph.digraph g))
  in
  let message_ids = Array.of_list (List.map (fun (e : Digraph.edge) -> e.id) msgs) in
  let k = Array.length message_ids in
  let col_of = Hashtbl.create 16 in
  Array.iteri (fun col id -> Hashtbl.replace col_of id col) message_ids;
  let lower_rows =
    List.init k (fun col ->
        let row = Array.make k Rat.zero in
        row.(col) <- Rat.minus_one;
        (row, Lp.Lt, Rat.minus_one))
  in
  let upper_rows =
    List.init k (fun col ->
        let row = Array.make k Rat.zero in
        row.(col) <- Rat.one;
        (row, Lp.Lt, xi))
  in
  let cycles = Cycle.enumerate ?max_cycles g in
  let n_relevant = ref 0 and n_nonrelevant = ref 0 in
  (* One row per cycle whose local edges all point one way:
     - relevant (locals all backward): Σ_{Z−}τ − Σ_{Z+}τ < 0, leaving
       room for the positive backward local weights;
     - locals all forward (the Fig. 4 shape): the sign-flipped row.
     Cycles with locals in both classes constrain nothing: the local
     weights on both sides can absorb any message-delay sum, and adding
     a row for them can make the system of an admissible graph
     infeasible (the orientation in Definition 3 is ambiguous when
     |Z+| = |Z−|). *)
  let cycle_rows =
    List.filter_map
      (fun (c : Cycle.t) ->
        let sign =
          if c.Cycle.relevant then begin
            incr n_relevant;
            Some 1
          end
          else
            match Cycle.local_profile g c with
            | `All_forward ->
                incr n_nonrelevant;
                Some (-1)
            | `All_backward | `Mixed | `No_locals -> None
        in
        match sign with
        | None -> None
        | Some sign ->
            let v = Cyclespace.vector_of_cycle g c in
            let row = Array.make k Rat.zero in
            List.iter
              (fun eid ->
                match Hashtbl.find_opt col_of eid with
                | Some col -> row.(col) <- Rat.of_int (sign * Cyclespace.Vector.coeff v eid)
                | None -> assert false)
              (Cyclespace.Vector.support v);
            Some (row, Lp.Lt, Rat.zero))
      cycles
  in
  {
    system = Lp.make_system ~nvars:k (lower_rows @ upper_rows @ cycle_rows);
    message_ids;
    n_relevant = !n_relevant;
    n_nonrelevant = !n_nonrelevant;
  }

type faithful_result =
  | Assignment of (int * Rat.t) list  (** message edge id -> delay *)
  | Farkas of Lp.certificate

(** Solve the Fig. 6 system.  Feasible for every ABC-admissible graph
    (Theorem 12); otherwise the Farkas certificate refutes Theorem 10's
    criterion.

    Two interchangeable exact engines: [`Simplex] (default; phase-1
    simplex over ε-extended rationals, polynomial in practice) and
    [`Fourier_motzkin] (the elimination procedure closest to the
    paper's proof narrative; doubly exponential, small graphs only). *)
let solve_faithful ?max_cycles ?(engine = `Simplex) g ~xi =
  let f6 = build_fig6 ?max_cycles g ~xi in
  let result =
    match engine with
    | `Simplex -> Simplex.solve f6.system
    | `Fourier_motzkin -> Lp.solve f6.system
  in
  match result with
  | Lp.Feasible x ->
      Assignment (Array.to_list (Array.mapi (fun col id -> (id, x.(col))) f6.message_ids))
  | Lp.Infeasible cert -> Farkas cert

(** Verify a faithful assignment directly against the paper's
    conditions: bounds (4) and the cycle conditions (6) for relevant
    cycles / sign-flipped for non-relevant ones. *)
let verify_faithful ?max_cycles g ~xi (delays : (int * Rat.t) list) =
  let delay_of id = List.assoc id delays in
  let bounds_ok =
    List.for_all
      (fun (id, d) ->
        ignore id;
        Rat.compare Rat.one d < 0 && Rat.compare d xi < 0)
      delays
  in
  let cycles = Cycle.enumerate ?max_cycles g in
  let cycles_ok =
    List.for_all
      (fun (c : Cycle.t) ->
        let v = Cyclespace.vector_of_cycle g c in
        let s =
          List.fold_left
            (fun acc eid ->
              Rat.add acc (Rat.mul (Rat.of_int (Cyclespace.Vector.coeff v eid)) (delay_of eid)))
            Rat.zero (Cyclespace.Vector.support v)
        in
        (* relevant: Σ_{Z−} − Σ_{Z+} < 0; all-forward locals: the
           opposite; mixed locals: unconstrained (see build_fig6) *)
        if c.Cycle.relevant then Rat.sign s < 0
        else
          match Cycle.local_profile g c with
          | `All_forward -> Rat.sign s > 0
          | `All_backward | `Mixed | `No_locals -> true)
      cycles
  in
  bounds_ok && cycles_ok
