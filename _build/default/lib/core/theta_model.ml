(** The Θ-Model (Section 4; Le Lann & Schmid / Widder & Schmid): a
    message-driven partially synchronous model that bounds the ratio of
    the maximum and minimum end-to-end delays of messages simultaneously
    in transit, [τ+(t)/τ−(t) ≤ Θ] (Eq. (3)).

    Checkers over {e timed} execution graphs (events carrying real-time
    stamps, as recorded by {!Sim}):
    - {!static_delay_ratio}: max/min over all message delays — the
      static Θ-Model's [τ+/τ−];
    - {!dynamic_admissible}: Eq. (3) proper, quantified over pairs of
      messages simultaneously in transit;
    - {!subset_of_abc} is Theorem 6's direction [MΘ ⊆ MABC]:
      a Θ-admissible timed execution is ABC-admissible for any
      [Ξ > Θ] (checked, not assumed). *)

open Execgraph

let message_delays g =
  List.filter_map
    (fun (e : Digraph.edge) ->
      if Graph.is_message g e then begin
        let src = Graph.event g e.src and dst = Graph.event g e.dst in
        match (src.Event.time, dst.Event.time) with
        | Some t0, Some t1 -> Some (e, t0, t1, Rat.sub t1 t0)
        | _ -> None
      end
      else None)
    (Digraph.edges (Graph.digraph g))

(** [Some (min, max)] delay over all timed messages; [None] if there
    are no timed messages. *)
let delay_bounds g =
  match message_delays g with
  | [] -> None
  | (_, _, _, d) :: rest ->
      Some
        (List.fold_left
           (fun (lo, hi) (_, _, _, d') -> (Rat.min lo d', Rat.max hi d'))
           (d, d) rest)

(** The static Θ of the execution: max delay / min delay.  [None] when
    there are no messages or some delay is zero (zero-delay messages
    are admissible in the ABC model but in no Θ-Model). *)
let static_delay_ratio g =
  match delay_bounds g with
  | None -> None
  | Some (lo, hi) -> if Rat.sign lo <= 0 then None else Some (Rat.div hi lo)

(** Eq. (3) over simultaneously-in-transit pairs: admissible iff for
    every pair of messages whose transit intervals overlap (with
    positive-length intersection or shared instant), the delay ratio is
    at most Θ.  Messages with zero delay make the execution
    inadmissible for every Θ if any other message is then in transit. *)
let dynamic_admissible g ~theta =
  let msgs = message_delays g in
  let overlap (_, s1, r1, _) (_, s2, r2, _) =
    Rat.compare s1 r2 <= 0 && Rat.compare s2 r1 <= 0
  in
  let rec pairs = function
    | [] -> true
    | m :: rest ->
        List.for_all
          (fun m' ->
            if not (overlap m m') then true
            else begin
              let (_, _, _, d1) = m and (_, _, _, d2) = m' in
              let lo = Rat.min d1 d2 and hi = Rat.max d1 d2 in
              if Rat.sign lo <= 0 then Rat.sign hi <= 0
              else Rat.compare (Rat.div hi lo) theta <= 0
            end)
          rest
        && pairs rest
  in
  pairs msgs

(** Theorem 6, checked on a concrete execution: if the timed execution
    is (statically) Θ-admissible then it is ABC-admissible for every
    [Ξ > Θ].  Returns [true] when the implication holds (it always
    should; benches count this). *)
let subset_of_abc g ~theta ~xi =
  if Rat.compare theta xi >= 0 then invalid_arg "Theta_model.subset_of_abc: need Xi > Theta";
  match static_delay_ratio g with
  | None -> true (* not Θ-admissible for any Θ: implication vacuous *)
  | Some ratio ->
      if Rat.compare ratio theta <= 0 then Abc_check.is_admissible g ~xi else true
