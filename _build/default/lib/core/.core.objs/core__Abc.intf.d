lib/core/abc.mli: Execgraph Rat
