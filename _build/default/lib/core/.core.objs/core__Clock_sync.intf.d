lib/core/clock_sync.mli: Execgraph Map Rat Set Sim
