lib/core/omega.ml: Array Clock_sync Int List Rat Set Sim
