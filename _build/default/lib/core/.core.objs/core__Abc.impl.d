lib/core/abc.ml: Abc_check Array Bigint Digraph Execgraph Graph List Rat
