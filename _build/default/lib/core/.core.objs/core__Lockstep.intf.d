lib/core/lockstep.mli: Clock_sync Map Rat Set Sim
