lib/core/delay_assignment.ml: Array Cycle Cyclespace Digraph Execgraph Graph Hashtbl List Lp Rat Simplex
