lib/core/theta_model.mli: Digraph Execgraph Rat
