lib/core/fifo.mli: Execgraph Rat
