lib/core/consensus.ml: Array Fun Int List Lockstep Map Option Stdlib
