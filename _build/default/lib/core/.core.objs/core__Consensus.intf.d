lib/core/consensus.mli: Lockstep
