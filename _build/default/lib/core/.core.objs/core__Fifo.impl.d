lib/core/fifo.ml: Abc_check Array Event Execgraph Fun Graph List
