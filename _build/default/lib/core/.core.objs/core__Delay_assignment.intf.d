lib/core/delay_assignment.mli: Execgraph Lp Rat
