lib/core/theta_model.ml: Abc_check Digraph Event Execgraph Graph List Rat
