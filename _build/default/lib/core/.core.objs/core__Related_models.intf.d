lib/core/related_models.mli: Rat Sim
