lib/core/clock_sync.ml: Array Cut Event Execgraph Fun Graph Hashtbl Int List Map Option Rat Set Sim
