lib/core/omega.mli: Clock_sync Rat Sim
