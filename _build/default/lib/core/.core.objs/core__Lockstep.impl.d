lib/core/lockstep.ml: Array Clock_sync Int List Map Option Rat Set Sim
