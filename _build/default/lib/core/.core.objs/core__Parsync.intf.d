lib/core/parsync.mli: Digraph Execgraph Rat
