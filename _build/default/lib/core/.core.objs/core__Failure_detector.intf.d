lib/core/failure_detector.mli: Rat Set Sim
