lib/core/parsync.ml: Abc_check Array Digraph Event Execgraph Graph List
