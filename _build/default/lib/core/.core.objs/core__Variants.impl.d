lib/core/variants.ml: Abc_check Cycle Digraph Event Execgraph Graph Hashtbl List Rat
