lib/core/scenarios.ml: Abc_check Event Execgraph Graph
