lib/core/failure_detector.ml: Array Fun Int List Rat Set Sim
