lib/core/scenarios.mli: Execgraph Rat
