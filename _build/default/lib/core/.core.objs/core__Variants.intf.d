lib/core/variants.mli: Execgraph Rat
