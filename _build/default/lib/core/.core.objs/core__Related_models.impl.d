lib/core/related_models.ml: Array Int List Rat Set Sim
