(** FIFO channels from the ABC condition (Fig. 10, Section 5.1): with
    [c] chatter messages between consecutive data sends, a reordering
    at the receiver closes a relevant cycle of ratio [c + 1] — so the
    ABC condition with [Ξ ≤ c + 1] enforces FIFO order even on links
    with unbounded, growing delays, which no bounded-delay partially
    synchronous model can express. *)

type built = {
  graph : Execgraph.Graph.t;
  data_receive_order : int list;  (** data message indices in arrival order *)
}

val build :
  n_messages:int -> chatter:int -> reordered:int option -> unit -> built
(** Processes: 0 = sender, 1 = chatter helper, 2 = receiver; the chain
    between consecutive sends has [max 2 chatter] messages.
    [reordered = Some i] swaps the arrivals of data messages [i] and
    [i+1]. *)

val fifo_guaranteed : xi:Rat.t -> n_messages:int -> chatter:int -> bool
(** The figure's claim as a predicate: the in-order execution is
    admissible while every single-swap reordering is not. *)
