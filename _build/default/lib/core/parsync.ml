(** Relation to the classic partially synchronous model of Dwork,
    Lynch & Stockmeyer (Section 5.1; Fig. 8).

    ParSync stipulates a bound [Φ] on relative process speeds and a
    bound [Δ] on message delays, measured on a discrete global clock
    that ticks whenever any process takes a step.  For message-driven
    executions mapped onto that clock (one tick per receive event), two
    necessary conditions are checkable on an (untimed) execution graph:

    - {e Δ+Φ-delivery}: a message sent at global tick [k] is received
      by tick [k + Δ + Φ] (in ParSync the destination performs a
      receive step at most [Φ] ticks after [k + Δ], and the message
      must be delivered by it);
    - {e Φ-speed}: while any process takes [Φ + 1] steps, every
      process that is still active (takes steps both before and after
      the window) takes at least one.

    Violating either means {e no} ParSync run with parameters (Φ, Δ)
    produces this message pattern.

    {!prover_execution} implements the Prover's winning strategy of the
    2-player game in Section 5.1: given any (Φ, Δ) chosen by the
    Adversary with knowledge of Ξ, it builds an execution that is
    ABC-admissible for {e every} Ξ > 1 (its only cycles are
    non-relevant ping-pong cycles, and the slow message lies on an
    isolated chain) yet violates both ParSync conditions — Fig. 8. *)

open Execgraph

(* Global tick of each event = its position in a linear extension
   consistent with recorded times (we use event id order, which the
   Sim layer and the builders below produce in causal/time order). *)

(** Messages whose transit spans more than [delta + phi] global ticks.
    Returns the offending (message edge, span) list. *)
let delivery_violations g ~phi ~delta =
  List.filter_map
    (fun (e : Digraph.edge) ->
      if Graph.is_message g e then begin
        let span = e.dst - e.src in
        if span > delta + phi then Some (e, span) else None
      end
      else None)
    (Digraph.edges (Graph.digraph g))

(** Windows in which one process takes [phi + 1] steps while another
    active process takes none.  Returns the offending
    (fast process, slow process, window start event id) list. *)
let speed_violations g ~phi =
  let n = Graph.nprocs g in
  let events_by_proc = Array.init n (fun p -> Array.of_list (Graph.events_of_proc g p)) in
  let violations = ref [] in
  for fast = 0 to n - 1 do
    let evs = events_by_proc.(fast) in
    let k = Array.length evs in
    for i = 0 to k - 1 - phi do
      (* window of phi+1 consecutive steps of [fast] *)
      let lo = evs.(i) and hi = evs.(i + phi) in
      for slow = 0 to n - 1 do
        if slow <> fast then begin
          let sevs = events_by_proc.(slow) in
          let takes_inside = Array.exists (fun id -> id > lo && id < hi) sevs in
          let before = Array.exists (fun id -> id <= lo) sevs in
          let after = Array.exists (fun id -> id >= hi) sevs in
          if before && after && not takes_inside then
            violations := (fast, slow, lo) :: !violations
        end
      done
    done
  done;
  !violations

(** Is the execution producible by some ParSync run with (Φ, Δ)?
    (Necessary conditions only; sufficient for the Fig. 8 argument.) *)
let parsync_consistent g ~phi ~delta =
  delivery_violations g ~phi ~delta = [] && speed_violations g ~phi = []

(** The Prover's execution: q ping-pongs [n_exchanges] times with p
    while a message from q to r is in transit; r's only step is the
    final receipt.  With [n_exchanges > max (Φ, Δ)] the execution
    violates ParSync(Φ, Δ) but contains no relevant cycle at all, so it
    is ABC-admissible for every Ξ > 1. *)
let prover_execution ~phi ~delta =
  let n_exchanges = max phi delta + 1 in
  let g = Graph.create ~nprocs:3 in
  (* processes: 0 = q, 1 = p, 2 = r *)
  let q0 = Graph.add_event g ~proc:0 in
  ignore
    (let rec ping_pong cur i =
       if i = 0 then cur
       else begin
         let at_p = Graph.add_event g ~proc:1 in
         ignore (Graph.add_message g ~src:cur ~dst:at_p.Event.id);
         let at_q = Graph.add_event g ~proc:0 in
         ignore (Graph.add_message g ~src:at_p.Event.id ~dst:at_q.Event.id);
         ping_pong at_q.Event.id (i - 1)
       end
     in
     ping_pong q0.Event.id n_exchanges);
  (* the slow message from q0 to r, received last *)
  let r_ev = Graph.add_event g ~proc:2 in
  ignore (Graph.add_message g ~src:q0.Event.id ~dst:r_ev.Event.id);
  g

(** The full game (Section 5.1): for the given adversary choice
    (Φ, Δ), the Prover's execution is ABC-admissible for [xi] (any
    [> 1]) and not ParSync-consistent.  Returns [true] iff the Prover
    wins. *)
let prover_wins ~phi ~delta ~xi =
  let g = prover_execution ~phi ~delta in
  Abc_check.is_admissible g ~xi && not (parsync_consistent g ~phi ~delta)
