(** Normalized delay assignments (Section 4.1, Theorems 7 and 12).

    Theorem 7: for every finite ABC execution graph (admissible for Ξ)
    there is an end-to-end delay assignment τ with [1 < τ(e) < Ξ] for
    every message and strictly positive local-edge weights, such that
    the weighted graph is causally equivalent to the original.  This is
    the engine behind the ABC/Θ model indistinguishability (Thm. 9).

    Two independent constructions:
    - {!solve_fast}: event occurrence times via difference constraints
      over the ε-extended rationals, solved by Bellman–Ford potentials;
      polynomial, delays are time differences so every cycle condition
      holds by construction;
    - {!solve_faithful}: the paper's Fig. 6 system [Ax < b] over one
      variable per message, with cycle rows from explicit enumeration;
      solved exactly by simplex over ℚ(ε) (default) or Fourier–Motzkin
      (the proof-faithful narrative).  Infeasibility comes with a
      Farkas certificate (Theorem 10). *)

type assignment = {
  times : Rat.t array;  (** event id -> occurrence time *)
  delays : (int * Rat.t) list;  (** message edge id -> delay in (1, Ξ) *)
  epsilon : Rat.t;  (** the concrete ε substituted for the infinitesimal *)
}

val solve_fast : Execgraph.Graph.t -> xi:Rat.t -> assignment option
(** [None] iff the graph violates the ABC condition for Ξ (Theorem 12
    in contrapositive).  @raise Invalid_argument unless [Ξ > 1]. *)

val verify : Execgraph.Graph.t -> xi:Rat.t -> assignment -> bool
(** [1 < τ(e) < Ξ] for every message and strict time increase along
    every local edge. *)

type fig6_system = {
  system : Lp.system;
  message_ids : int array;  (** column -> message edge id *)
  n_relevant : int;
  n_nonrelevant : int;  (** all-forward-locals cycle rows *)
}

val build_fig6 : ?max_cycles:int -> Execgraph.Graph.t -> xi:Rat.t -> fig6_system
(** The matrix of Fig. 6: 2k bound rows, one row per relevant cycle
    and the sign-flipped row per all-forward-locals cycle (cycles with
    locals in both classes are unconstrained — see DESIGN.md,
    "Deviations"). *)

type faithful_result =
  | Assignment of (int * Rat.t) list  (** message edge id -> delay *)
  | Farkas of Lp.certificate

val solve_faithful :
  ?max_cycles:int ->
  ?engine:[ `Simplex | `Fourier_motzkin ] ->
  Execgraph.Graph.t ->
  xi:Rat.t ->
  faithful_result
(** Solve the Fig. 6 system ([`Simplex] by default; [`Fourier_motzkin]
    mirrors the paper's proof and is exponential). *)

val verify_faithful :
  ?max_cycles:int -> Execgraph.Graph.t -> xi:Rat.t -> (int * Rat.t) list -> bool
(** Check an assignment directly against the paper's conditions:
    bounds (4) and the per-cycle conditions (6) / sign-flipped. *)
