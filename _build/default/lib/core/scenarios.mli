(** Parametric builders for the paper's figure scenarios, for tests and
    sweep benches.  Each builds the execution graph directly — the
    scenarios are statements about causal structure. *)

val spanning_cycle : k1:int -> k2:int -> unit -> Execgraph.Graph.t
(** Fig. 1 generalized: a slow chain of [k1] messages spanning a fast
    chain of [k2]; one relevant cycle of ratio [k2/k1].
    @raise Invalid_argument unless [k1, k2 ≥ 1]. *)

val timeout : chain:int -> unit -> Execgraph.Graph.t
(** Fig. 3 generalized: [chain] (even) ping-pong messages while a
    query is outstanding; the late reply closes a relevant cycle of
    ratio [chain/2]. *)

val timeout_early : chain:int -> unit -> Execgraph.Graph.t
(** Fig. 4: the reply arrives before the chain's last receive; only
    non-relevant cycles close. *)

val isolated_slow : exchanges:int -> unit -> Execgraph.Graph.t
(** Fig. 8: a message in transit across [exchanges] ping-pongs, on an
    isolated chain: admissible for every Ξ > 1. *)

val max_reply_deferral : xi:Rat.t -> int
(** The failure-detection latency of the Fig. 3 mechanism: the largest
    even chain length after which a reply may still arrive without
    violating Ξ (= largest even integer < 2Ξ). *)
