(** Ξ-timeout failure detection (the Fig. 3 mechanism, Section 2).

    A monitor (process 0) broadcasts a query and ping-pongs with a
    partner (process 1); once the chain since the query reaches
    [⌈2Ξ⌉] messages, any missing reply proves a crash — a later
    arrival would close a relevant cycle of ratio ≥ Ξ.  No false
    suspicions in any admissible execution; the ABC condition is used
    indirectly, never evaluated at run time. *)

module Iset : Set.S with type elt = int

type msg =
  | Query of int
  | Reply of int
  | Ping of int * int  (** (query number, messages in the chain so far) *)
  | Pong of int * int

type state = {
  xi_chain : int;  (** [⌈2Ξ⌉]: chain length before the verdict *)
  query : int;
  replied : Iset.t;
  chain : int;
  suspects : Iset.t;  (** processes declared crashed (monotone) *)
  queries_done : int;
  role : [ `Monitor | `Partner | `Responder ];
}

val suspects : state -> int list
val queries_done : state -> int

val algorithm : xi:Rat.t -> rounds:int -> (state, msg) Sim.algorithm
(** The detector; the monitor issues [rounds] successive queries. *)

val accuracy : (state, msg) Sim.result -> crashed:int list -> int list * int list
(** (false suspicions, missed crashes) against ground truth. *)
