(** Byzantine consensus on top of lock-step rounds (Section 3 / 6: any
    synchronous Byzantine consensus algorithm runs unchanged over
    Algorithm 2's round simulation).

    Two classic synchronous algorithms are provided as
    {!Lockstep.round_algo}s over integer values:

    - {b EIG} (exponential information gathering): [f + 1] rounds,
      resilience [n > 3f].  Processes relay everything they heard,
      filling a tree of values indexed by sender sequences, and decide
      by recursive majority resolution.
    - {b Phase Queen}: [2(f + 1)] rounds, resilience [n > 4f].  Each
      phase is a general exchange followed by a queen round; a process
      adopts the queen's value unless its own majority was
      overwhelming.
    - {b Phase King} (Berman–Garay–Perry): [3(f + 1)] rounds,
      resilience [n > 3f] with constant-size messages — the classic
      trade-off against EIG's exponential messages.

    Both run (a) over a perfect synchronous executor
    ({!run_synchronous}, the baseline, with per-recipient two-faced
    Byzantine behaviour) and (b) over the ABC lock-step simulation
    (via {!Lockstep.algorithm} in the benches/tests), demonstrating the
    paper's claim that lock-step rounds — and hence consensus — are
    solvable in the ABC model with [n ≥ 3f + 1]. *)

module Imap = Map.Make (Int)

let default_value = 0

(* ------------------------------------------------------------------ *)
(* EIG *)

module Eig = struct
  module Smap = Map.Make (struct
    type t = int list

    let compare = Stdlib.compare
  end)

  type state = {
    n : int;
    f : int;
    value : int;
    tree : int Smap.t;  (** σ -> reported value, |σ| ≥ 1 *)
    decision : int option;
  }

  (** Round message: the level-(r−1) values to relay. *)
  type msg = (int list * int) list

  let resolve st =
    (* recursive majority resolution over the stored tree *)
    let rec res sigma depth =
      if depth = st.f + 1 then
        match Smap.find_opt sigma st.tree with Some v -> v | None -> default_value
      else begin
        let children =
          List.filter_map
            (fun q ->
              if List.mem q sigma then None
              else if Smap.mem (sigma @ [ q ]) st.tree || depth + 1 <= st.f + 1 then
                Some (res (sigma @ [ q ]) (depth + 1))
              else None)
            (List.init st.n Fun.id)
        in
        (* strict majority, else default *)
        let counts =
          List.fold_left
            (fun m v -> Imap.add v (1 + Option.value ~default:0 (Imap.find_opt v m)) m)
            Imap.empty children
        in
        let total = List.length children in
        match
          Imap.fold
            (fun v c acc -> match acc with Some _ -> acc | None -> if 2 * c > total then Some v else None)
            counts None
        with
        | Some v -> v
        | None -> default_value
      end
    in
    res [] 0

  let algo ~f ~(value : int -> int) : (state, msg) Lockstep.round_algo =
    {
      r_init =
        (fun ~self ~nprocs ->
          let st =
            { n = nprocs; f; value = value self; tree = Smap.empty; decision = None }
          in
          (st, [ ([], value self) ]));
      r_step =
        (fun ~self ~nprocs:_ ~round st msgs ->
          (* store the level-(round) values: (σ, v) from q becomes σ·q *)
          let tree =
            List.fold_left
              (fun tree (q, pairs) ->
                List.fold_left
                  (fun tree (sigma, v) ->
                    if List.length sigma = round - 1 && not (List.mem q sigma) then
                      Smap.add (sigma @ [ q ]) v tree
                    else tree)
                  tree pairs)
              st.tree msgs
          in
          let st = { st with tree } in
          if round > st.f + 1 then (st, []) (* done; keep quiet *)
          else begin
            let st =
              if round = st.f + 1 then { st with decision = Some (resolve st) } else st
            in
            (* relay level-(round) values not involving self *)
            let out =
              Smap.fold
                (fun sigma v acc ->
                  if List.length sigma = round && not (List.mem self sigma) then
                    (sigma, v) :: acc
                  else acc)
                st.tree []
            in
            (st, out)
          end);
    }

  let decision st = st.decision
end

(* ------------------------------------------------------------------ *)
(* Phase Queen *)

module Queen = struct
  type state = {
    n : int;
    f : int;
    pref : int;
    maj : int;
    cnt : int;
    decision : int option;
  }

  type msg = int

  let majority msgs =
    let counts =
      List.fold_left
        (fun m (_, v) -> Imap.add v (1 + Option.value ~default:0 (Imap.find_opt v m)) m)
        Imap.empty msgs
    in
    Imap.fold
      (fun v c (bv, bc) -> if c > bc then (v, c) else (bv, bc))
      counts (default_value, 0)

  (* Rounds: 2(p−1) = exchange of phase p (broadcast pref);
     2p−1 = queen round of phase p (queen = p−1 broadcasts its maj). *)
  let algo ~f ~(value : int -> int) : (state, msg) Lockstep.round_algo =
    {
      r_init =
        (fun ~self ~nprocs ->
          let v = value self in
          ({ n = nprocs; f; pref = v; maj = v; cnt = 0; decision = None }, v));
      r_step =
        (fun ~self ~nprocs:_ ~round st msgs ->
          ignore self;
          if round > (2 * (st.f + 1)) then (st, st.pref)
          else if round mod 2 = 1 then begin
            (* consumed an exchange round: compute majority, emit it
               (only the queen's copy will be used) *)
            let maj, cnt = majority msgs in
            ({ st with maj; cnt }, maj)
          end
          else begin
            (* consumed a queen round of phase p = round/2 *)
            let phase = round / 2 in
            let queen = phase - 1 in
            let queen_val =
              match List.assoc_opt queen msgs with Some v -> v | None -> default_value
            in
            let pref =
              if st.cnt > (st.n / 2) + st.f then st.maj else queen_val
            in
            let st = { st with pref } in
            let st =
              if phase = st.f + 1 then { st with decision = Some pref } else st
            in
            (st, pref)
          end);
    }

  let decision st = st.decision
end

(* ------------------------------------------------------------------ *)
(* Perfect synchronous executor (baseline) *)

type 'm sync_behavior =
  | B_correct
  | B_crash of int
  | B_byzantine of (round:int -> dst:int -> 'm option)
      (** per-recipient (two-faced) message forging *)

(** Run a round algorithm under a perfect synchronous executor for
    [nrounds] rounds; returns final round states of correct processes
    (index, state). *)
let run_synchronous ~nprocs ~(behaviors : 'm sync_behavior array)
    ~(algo : ('rs, 'm) Lockstep.round_algo) ~nrounds =
  let states = Array.make nprocs None in
  let outbox = Array.make nprocs None in
  (* round 0 *)
  for p = 0 to nprocs - 1 do
    match behaviors.(p) with
    | B_correct | B_crash _ ->
        let rs, m = algo.Lockstep.r_init ~self:p ~nprocs in
        states.(p) <- Some rs;
        outbox.(p) <- Some (`Broadcast m)
    | B_byzantine forge -> outbox.(p) <- Some (`Forge forge)
  done;
  for round = 1 to nrounds do
    let inboxes = Array.make nprocs [] in
    for q = 0 to nprocs - 1 do
      match outbox.(q) with
      | Some (`Broadcast m) ->
          let silent =
            match behaviors.(q) with B_crash c -> round - 1 >= c | _ -> false
          in
          if not silent then
            for p = 0 to nprocs - 1 do
              inboxes.(p) <- (q, m) :: inboxes.(p)
            done
      | Some (`Forge forge) ->
          for p = 0 to nprocs - 1 do
            match forge ~round:(round - 1) ~dst:p with
            | Some m -> inboxes.(p) <- (q, m) :: inboxes.(p)
            | None -> ()
          done
      | None -> ()
    done;
    for p = 0 to nprocs - 1 do
      match (behaviors.(p), states.(p)) with
      | (B_correct | B_crash _), Some rs ->
          let rs', m = algo.Lockstep.r_step ~self:p ~nprocs ~round rs (List.rev inboxes.(p)) in
          states.(p) <- Some rs';
          outbox.(p) <- Some (`Broadcast m)
      | _ -> ()
    done
  done;
  List.filter_map
    (fun p ->
      match (behaviors.(p), states.(p)) with
      | B_correct, Some rs -> Some (p, rs)
      | _ -> None)
    (List.init nprocs Fun.id)

(** Agreement + validity check over decisions of correct processes. *)
let check_agreement decisions ~inputs =
  match decisions with
  | [] -> true
  | (_, None) :: _ -> false
  | (_, Some d0) :: _ ->
      List.for_all (fun (_, d) -> d = Some d0) decisions
      && (* validity: if all correct inputs equal, decide that value *)
      (match inputs with
      | [] -> true
      | v0 :: vs -> if List.for_all (( = ) v0) vs then d0 = v0 else true)

(* ------------------------------------------------------------------ *)
(* Phase King (Berman–Garay–Perry): n > 3f, 3 rounds per phase *)

module King = struct
  (** The 3-round phase-king algorithm with proposals, resilience
      [n > 3f], binary values and constant-size messages (the classic
      trade-off against EIG's exponential messages).  Each phase
      [k = 1..f+1]:

      - round A (exchange): broadcast the preference;
      - round B (proposal): a process that saw [≥ n − f] copies of a
        value [w] proposes [w] (at most one value can be proposed by
        correct processes, since [2(n−f) > n+f] for [n > 3f]); on
        receiving [≥ f+1] proposals for [w], adopt [w], and mark the
        phase {e strong} when [≥ n−f] proposals arrived;
      - round C (king): process [k−1] broadcasts its preference;
        non-strong processes adopt it.

      Persistence: a unanimous correct value yields [n−f] proposals at
      everyone, so all correct stay strong and ignore even a Byzantine
      king.  Agreement: after the first phase with a correct king, all
      correct preferences coincide (strong processes force the king's
      own adoption of their value). *)
  type state = {
    n : int;
    f : int;
    pref : int;
    strong : bool;
    decision : int option;
  }

  (** Round message: a value; [-1] encodes "no proposal" in proposal
      rounds. *)
  type msg = int

  let no_proposal = -1

  let value_counts msgs =
    List.fold_left
      (fun m (_, v) ->
        if v = no_proposal then m
        else Imap.add v (1 + Option.value ~default:0 (Imap.find_opt v m)) m)
      Imap.empty msgs

  let algo ~f ~(value : int -> int) : (state, msg) Lockstep.round_algo =
    {
      r_init =
        (fun ~self ~nprocs ->
          let v = value self in
          ({ n = nprocs; f; pref = v; strong = false; decision = None }, v));
      r_step =
        (fun ~self:_ ~nprocs:_ ~round st msgs ->
          if round > 3 * (st.f + 1) then (st, st.pref)
          else
            match (round - 1) mod 3 with
            | 0 ->
                (* consumed exchange A: propose a value seen n−f times *)
                let counts = value_counts msgs in
                let proposal =
                  Imap.fold
                    (fun v c acc -> if c >= st.n - st.f then Some v else acc)
                    counts None
                in
                (st, Option.value ~default:no_proposal proposal)
            | 1 ->
                (* consumed proposals: adopt a value proposed f+1 times;
                   strong if n−f proposals *)
                let counts = value_counts msgs in
                let best =
                  Imap.fold
                    (fun v c acc ->
                      match acc with
                      | Some (_, c') when c' >= c -> acc
                      | _ -> Some (v, c))
                    counts None
                in
                let st =
                  match best with
                  | Some (w, c) when c >= st.f + 1 ->
                      { st with pref = w; strong = c >= st.n - st.f }
                  | _ -> { st with strong = false }
                in
                (st, st.pref)
            | _ ->
                (* consumed the king round of phase k = round/3 *)
                let phase = round / 3 in
                let king = phase - 1 in
                let king_val =
                  match List.assoc_opt king msgs with
                  | Some v when v <> no_proposal -> v
                  | _ -> default_value
                in
                let st = if st.strong then st else { st with pref = king_val } in
                let st = { st with strong = false } in
                let st =
                  if phase = st.f + 1 then { st with decision = Some st.pref } else st
                in
                (st, st.pref));
    }

  let decision st = st.decision
end
