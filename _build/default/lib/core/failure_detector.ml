(** Ξ-timeout failure detection (the Fig. 3 mechanism, Section 2).

    A monitor process [p] exploits the ABC synchrony condition to
    time out crashed processes without any clock: after broadcasting a
    query, it ping-pongs with a responsive partner; once the causal
    chain of ping-pong messages since the query reaches length
    [L = ⌈2Ξ⌉], any process whose reply is still missing {e must} have
    crashed — a reply arriving later would close a relevant cycle with
    [|Z−|/|Z+| ≥ L/2 ≥ Ξ], violating Definition 4.

    The detector is {e indirect}: the ABC condition is never evaluated
    at run time; the mere impossibility of the late arrival justifies
    the suspicion (no false suspicions in any admissible execution).

    The monitor is process 0; its ping-pong partner is process 1
    (assumed correct, as [pfast] in the paper). *)

module Iset = Set.Make (Int)

type msg =
  | Query of int  (** query number *)
  | Reply of int
  | Ping of int * int  (** (query number, hop count) *)
  | Pong of int * int

type state = {
  xi_chain : int;  (** L = ⌈2Ξ⌉: chain length needed before timeout *)
  query : int;  (** current query number *)
  replied : Iset.t;  (** processes that answered the current query *)
  chain : int;  (** ping-pong messages exchanged since the query *)
  suspects : Iset.t;  (** processes declared crashed (monotone) *)
  queries_done : int;
  role : [ `Monitor | `Partner | `Responder ];
}

let suspects s = Iset.elements s.suspects
let queries_done s = s.queries_done

(** The detector algorithm.  [rounds] bounds how many successive
    queries the monitor issues (each ends in a suspicion verdict). *)
let algorithm ~xi ~rounds : (state, msg) Sim.algorithm =
  let l = Rat.ceil_int (Rat.mul Rat.two xi) in
  let broadcast ~nprocs m = List.init nprocs (fun d -> { Sim.dst = d; payload = m }) in
  let fresh role =
    {
      xi_chain = l;
      query = 0;
      replied = Iset.empty;
      chain = 0;
      suspects = Iset.empty;
      queries_done = 0;
      role;
    }
  in
  {
    init =
      (fun ~self ~nprocs ->
        if self = 0 then
          (* monitor: broadcast query 0 and launch the ping-pong *)
          ( { (fresh `Monitor) with query = 0 },
            broadcast ~nprocs (Query 0) @ [ { Sim.dst = 1; payload = Ping (0, 1) } ] )
        else if self = 1 then (fresh `Partner, [])
        else (fresh `Responder, []));
    step =
      (fun ~self:_ ~nprocs s ~sender m ->
        match (s.role, m) with
        | `Responder, Query q | `Partner, Query q ->
            (* immediate reply, as the paper's processes do *)
            ignore q;
            (s, [ { Sim.dst = sender; payload = Reply q } ])
        | `Partner, Ping (q, h) -> (s, [ { Sim.dst = sender; payload = Pong (q, h + 1) } ])
        | `Monitor, Reply q when q = s.query ->
            ({ s with replied = Iset.add sender s.replied }, [])
        | `Monitor, Pong (q, h) when q = s.query ->
            (* [h] counts the messages of the ping-pong chain so far *)
            let chain = h in
            if chain >= s.xi_chain then begin
              (* timeout point ψ: everyone not heard from is crashed *)
              let all = List.init nprocs Fun.id in
              let missing =
                List.filter
                  (fun r -> r <> 0 && r <> 1 && not (Iset.mem r s.replied))
                  all
              in
              let s' =
                {
                  s with
                  suspects = List.fold_left (fun acc r -> Iset.add r acc) s.suspects missing;
                  queries_done = s.queries_done + 1;
                }
              in
              if s'.queries_done >= rounds then (s', [])
              else begin
                (* next query round *)
                let q' = s.query + 1 in
                let s'' = { s' with query = q'; replied = Iset.empty; chain = 0 } in
                (s'', broadcast ~nprocs (Query q') @ [ { Sim.dst = 1; payload = Ping (q', 1) } ])
              end
            end
            else ({ s with chain }, [ { Sim.dst = sender; payload = Ping (q, chain + 1) } ])
        | `Monitor, (Reply _ | Pong _ | Ping _ | Query _) ->
            (* stale round, or the monitor's own broadcast to itself *)
            (s, [])
        | `Partner, (Reply _ | Pong _) -> (s, [])
        | `Responder, (Reply _ | Pong _ | Ping _) -> (s, []))
  }

(** Ground truth vs. verdicts: returns (false_suspicions, missed) where
    [missed] are crashed processes not suspected after all rounds. *)
let accuracy (result : (state, msg) Sim.result) ~crashed =
  let mon = result.Sim.final_states.(0) in
  let suspected = mon.suspects in
  let false_susp =
    Iset.elements (Iset.filter (fun p -> not (List.mem p crashed)) suspected)
  in
  let missed = List.filter (fun p -> not (Iset.mem p suspected)) crashed in
  (false_susp, missed)
