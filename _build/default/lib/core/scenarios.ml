(** Parametric builders for the paper's figure scenarios.

    Each builder constructs the execution graph of a figure directly
    (the scenarios are statements about causal structure, not about any
    particular algorithm's computation), generalized by the chain
    lengths, so that tests and benches can sweep them:

    - {!spanning_cycle}: Fig. 1 — a slow chain of [k1] messages spans a
      fast chain of [k2] messages, forming one relevant cycle of ratio
      [k2/k1];
    - {!timeout} / {!timeout_early}: Figs. 3/4 — a monitor ping-pongs
      [chain] messages with a fast partner while a query to a slow
      process is outstanding; the reply lands after the chain
      ({!timeout}, closing a relevant cycle of ratio [chain/2]) or
      before its last receive ({!timeout_early}, closing only
      non-relevant cycles);
    - {!isolated_slow}: Fig. 8 — a message stays in transit while its
      sender exchanges [exchanges] ping-pongs with a third process; the
      slow message lies on an isolated chain, so the graph is
      ABC-admissible for every Ξ > 1 but realizable in no ParSync or
      Θ model with corresponding bounds. *)

open Execgraph

(** Fig. 1 generalized: [k1 >= 1] messages in the spanning (slow)
    chain, [k2 >= 1] in the spanned (fast) chain.  Uses [k1 + k2 - 1]
    relay processes plus the two endpoints. *)
let spanning_cycle ~k1 ~k2 () =
  if k1 < 1 || k2 < 1 then invalid_arg "Scenarios.spanning_cycle";
  let nprocs = 2 + (k2 - 1) + (k1 - 1) in
  let g = Graph.create ~nprocs in
  let ev p = Graph.add_event g ~proc:p in
  let msg a b = ignore (Graph.add_message g ~src:a.Event.id ~dst:b.Event.id) in
  let src = ev 0 in
  (* fast chain: k2 messages through relays 2 .. k2 *)
  let cur = ref src in
  for i = 1 to k2 - 1 do
    let r = ev (1 + i) in
    msg !cur r;
    cur := r
  done;
  let fast_end = ev 1 in
  msg !cur fast_end;
  (* slow chain: k1 messages through the remaining relays, arriving at
     process 1 after the fast chain *)
  let cur = ref src in
  for i = 1 to k1 - 1 do
    let r = ev (k2 + i) in
    msg !cur r;
    cur := r
  done;
  let slow_end = ev 1 in
  msg !cur slow_end;
  g

(** Fig. 3 generalized.  [chain]: number of ping-pong messages (even)
    between the monitor (process 0) and the partner (process 1) after
    the query is broadcast; the reply of the slow process (2) arrives
    after the full chain, closing a relevant cycle of ratio
    [chain/2]. *)
let timeout ~chain () =
  if chain < 2 || chain mod 2 <> 0 then
    invalid_arg "Scenarios.timeout: chain must be even and >= 2";
  let g = Graph.create ~nprocs:3 in
  let ev p = Graph.add_event g ~proc:p in
  let msg a b = ignore (Graph.add_message g ~src:a.Event.id ~dst:b.Event.id) in
  let phi0 = ev 0 in
  let monitor_ev = ref phi0 in
  for _ = 1 to chain / 2 do
    let at_partner = ev 1 in
    msg !monitor_ev at_partner;
    let back = ev 0 in
    msg at_partner back;
    monitor_ev := back
  done;
  let sigma = ev 2 in
  msg phi0 sigma;
  let phi'' = ev 0 in
  msg sigma phi'';
  g

(** Exact Fig. 4 shape: the reply arrives between the last two monitor
    events, making the big cycle non-relevant. *)
let timeout_early ~chain () =
  if chain < 2 || chain mod 2 <> 0 then
    invalid_arg "Scenarios.timeout_early: chain must be even and >= 2";
  let g = Graph.create ~nprocs:3 in
  let ev p = Graph.add_event g ~proc:p in
  let msg a b = ignore (Graph.add_message g ~src:a.Event.id ~dst:b.Event.id) in
  let phi0 = ev 0 in
  let monitor_ev = ref phi0 in
  let pending_pong = ref None in
  (* all but the last pong delivered normally *)
  for i = 1 to chain / 2 do
    let at_partner = ev 1 in
    msg !monitor_ev at_partner;
    if i < chain / 2 then begin
      let back = ev 0 in
      msg at_partner back;
      monitor_ev := back
    end
    else pending_pong := Some at_partner
  done;
  let sigma = ev 2 in
  msg phi0 sigma;
  (* reply lands before the final pong *)
  let phi = ev 0 in
  msg sigma phi;
  (match !pending_pong with
  | Some at_partner ->
      let psi = ev 0 in
      msg at_partner psi
  | None -> assert false);
  g

(** Fig. 8: the prover's execution (see {!Parsync.prover_execution};
    re-exported here for uniformity). *)
let isolated_slow ~exchanges () =
  let g = Graph.create ~nprocs:3 in
  let ev p = Graph.add_event g ~proc:p in
  let msg a b = ignore (Graph.add_message g ~src:a.Event.id ~dst:b.Event.id) in
  let q0 = ev 0 in
  let cur = ref q0 in
  for _ = 1 to exchanges do
    let at_p = ev 1 in
    msg !cur at_p;
    let at_q = ev 0 in
    msg at_p at_q;
    cur := at_q
  done;
  let r_ev = ev 2 in
  msg q0 r_ev;
  g

(** The largest ping-pong chain length after which a reply may still
    arrive without violating Ξ — i.e. the failure-detection latency of
    the Fig. 3 mechanism, in messages.  The reply closes a relevant
    cycle of ratio [chain/2], forbidden iff [chain/2 ≥ Ξ]; so the
    adversary can defer the reply past a chain of length [L] iff
    [L < 2Ξ].  Computed experimentally by probing the builder. *)
let max_reply_deferral ~xi =
  let rec probe chain =
    let g = timeout ~chain () in
    if Abc_check.is_admissible g ~xi then probe (chain + 2) else chain - 2
  in
  probe 2
