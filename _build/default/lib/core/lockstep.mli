(** Algorithm 2 (Section 3): lock-step round simulation on top of the
    clock synchronization Algorithm 1.

    Clocks are treated as phase counters; with the paper's uniform
    schedule a round lasts [P = ⌈2Ξ⌉] phases (any integer [P ≥ 2Ξ]
    preserves Theorem 5's proof, which only needs Lemma 4's causal cone
    across a clock distance of [2Ξ]).  The round [r] computing step
    runs exactly when the clock reaches the round's start tick: it
    reads the buffered round [r−1] messages, computes, and broadcasts
    the round [r] message piggybacked on the start tick.

    Round schedules are pluggable: {!uniform_schedule} is the paper's
    Algorithm 2; {!doubling_schedule} implements §6's eventual
    lock-step for the ◇ABC / ?ABC variants. *)

module Iset : Set.S with type elt = int
module Imap : Map.S with type key = int

(** A synchronous full-information round algorithm to run on top.
    [r_step] receives the round [r−1] messages that arrived in time —
    under Theorem 5 all correct ones — and returns the round [r]
    broadcast payload. *)
type ('rs, 'rm) round_algo = {
  r_init : self:int -> nprocs:int -> 'rs * 'rm;
  r_step : self:int -> nprocs:int -> round:int -> 'rs -> (int * 'rm) list -> 'rs * 'rm;
}

type 'rm msg = { tick : int; round_payload : 'rm option }

type ('rs, 'rm) state = {
  cs : Clock_sync.state;  (** the underlying Algorithm 1 state *)
  r : int;  (** current round *)
  rs : 'rs;  (** round-algorithm state *)
  round_msgs : (int * 'rm) list Imap.t;  (** round -> messages received *)
  history : (int * Iset.t) list;
      (** (round started, senders whose round-(r−1) messages were
          available at that moment) — for Theorem 5 verification *)
}

val phase_length : xi:Rat.t -> int
(** [⌈2Ξ⌉]. *)

val round_of : ('rs, 'rm) state -> int
val clock_of : ('rs, 'rm) state -> int
val round_state : ('rs, 'rm) state -> 'rs

(** A round schedule: [start_of_round r] is the clock value at which
    the round [r] computing step runs, strictly increasing with
    [start_of_round 0 = 0]; [round_at k] is [Some r] iff
    [k = start_of_round r]. *)
type schedule = { start_of_round : int -> int; round_at : int -> int option }

val uniform_schedule : int -> schedule
(** Rounds of [p] phases: the paper's Algorithm 2 with [p = ⌈2Ξ⌉]. *)

val doubling_schedule : int -> schedule
(** §6 eventual lock-step: round [r] lasts [p0·2^r] phases, so once the
    duration exceeds the actual (unknown / eventually-holding) [2Ξ],
    rounds are lock-step for good. *)

val algorithm_scheduled :
  f:int -> schedule:schedule -> ('rs, 'rm) round_algo ->
  (('rs, 'rm) state, 'rm msg) Sim.algorithm
(** Algorithm 1 + Algorithm 2 merged, over an arbitrary schedule. *)

val algorithm :
  f:int -> xi:Rat.t -> ('rs, 'rm) round_algo ->
  (('rs, 'rm) state, 'rm msg) Sim.algorithm
(** The paper's Algorithm 2: {!uniform_schedule} with [⌈2Ξ⌉] phases. *)

(** {1 Theorem 5 verification} *)

val lockstep_violations :
  (('rs, 'rm) state, 'rm msg) Sim.result -> correct:int list ->
  int * (int * int * int) list
(** For every correct [p] and started round [ρ ≥ 1]: the round [ρ−1]
    messages of all correct processes that started [ρ−1] were available
    at [p]'s round-[ρ] step.  Returns (round starts checked,
    violations as (p, ρ, missing sender)). *)

val violating_rounds :
  (('rs, 'rm) state, 'rm msg) Sim.result -> correct:int list -> int list
(** The rounds at which lock-step failed — empty under the uniform
    schedule on perpetually admissible executions (Theorem 5); a finite
    prefix under the doubling schedule on eventually-admissible ones. *)

val first_lockstep_round :
  (('rs, 'rm) state, 'rm msg) Sim.result -> correct:int list -> int
(** First round from which lock-step holds for good. *)

val rounds_reached :
  (('rs, 'rm) state, 'rm msg) Sim.result -> correct:int list -> (int * int) list

val noop_round_algo : (unit, unit) round_algo
(** Empty payloads, for running the bare simulation. *)
