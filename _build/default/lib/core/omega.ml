(** Ω (eventual leader election) in the ABC model, for crash faults.

    Section 6 of the paper observes that message-driven Ω
    implementations (Biely & Widder's for the Θ-Model) carry over to
    the ABC model by the indistinguishability result.  This module
    implements the natural ABC-native construction, built directly on
    the causal-cone property of Lemma 4:

    every process runs the clock synchronization Algorithm 1; when a
    correct process [p] is at clock [c], Lemma 4 guarantees it has
    received [(tick ℓ)] from {e every} correct process for all
    [ℓ ≤ c − 2Ξ].  Hence any process whose ticks are missing at level
    [c − L] for the integer margin [L = ⌈2Ξ⌉] {e must} have crashed,
    and can be suspected without any real-time clock.  The leader is
    the smallest non-suspected process id.

    Properties (checked by the test suite and benches):
    - {e eventual accuracy}: under any scheduler whose executions are
      ABC-admissible for Ξ, no correct process is ever suspected
      (suspicion would contradict Lemma 4), so the leader of every
      correct process converges to the smallest correct id;
    - {e completeness}: a crashed process stops broadcasting ticks, so
      once clocks pass its last tick by [L], everyone suspects it.

    Byzantine processes are out of scope here (as in the failure
    detector literature the paper cites for Ω); with [f] crash faults
    the underlying Algorithm 1 still needs [n ≥ 3f + 1] to guarantee
    its bounds under our fault model. *)

module Iset = Set.Make (Int)

type state = {
  cs : Clock_sync.state;
  margin : int;  (** L = ⌈2Ξ⌉ *)
  leader : int;
  suspects : Iset.t;
}

let leader s = s.leader
let suspects s = Iset.elements s.suspects
let clock s = Clock_sync.clock s.cs

(* Recompute suspicions and leader from the clock-sync receipt state:
   q is alive at level l iff (tick l) from q was received. *)
let refresh ~nprocs s =
  let level = Clock_sync.clock s.cs - s.margin in
  if level < 0 then s
  else begin
    let received_at l q =
      match Clock_sync.Imap.find_opt l s.cs.Clock_sync.received with
      | None -> false
      | Some senders -> Clock_sync.Iset.mem q senders
    in
    let suspects = ref Iset.empty in
    for q = 0 to nprocs - 1 do
      (* q is suspected iff some tick level <= clock - L is missing;
         levels are filled monotonically, so checking the single level
         [clock - L] suffices once all earlier ones were seen — we keep
         the check cumulative to stay monotone under catch-up jumps *)
      let missing = ref false in
      for l = 0 to level do
        if not (received_at l q) then missing := true
      done;
      if !missing then suspects := Iset.add q !suspects
    done;
    let leader =
      let rec first q = if q >= nprocs then nprocs - 1 else if Iset.mem q !suspects then first (q + 1) else q in
      first 0
    in
    { s with suspects = !suspects; leader }
  end

(** The Ω algorithm: Algorithm 1 with leader output. *)
let algorithm ~f ~xi : (state, Clock_sync.msg) Sim.algorithm =
  let margin = Rat.ceil_int (Rat.mul Rat.two xi) in
  let base = Clock_sync.algorithm ~f in
  {
    init =
      (fun ~self ~nprocs ->
        let cs, sends = base.Sim.init ~self ~nprocs in
        (refresh ~nprocs { cs; margin; leader = 0; suspects = Iset.empty }, sends));
    step =
      (fun ~self ~nprocs s ~sender m ->
        let cs, sends = base.Sim.step ~self ~nprocs s.cs ~sender m in
        (refresh ~nprocs { s with cs }, sends));
  }

(** Analysis: the final leader of every correct process, and whether
    they all agree on the smallest correct id. *)
let converged (result : (state, Clock_sync.msg) Sim.result) ~correct =
  let leaders = List.map (fun p -> (p, result.Sim.final_states.(p).leader)) correct in
  let expected = List.fold_left min max_int correct in
  let agree = List.for_all (fun (_, l) -> l = expected) leaders in
  (leaders, expected, agree)

(** Analysis: no correct process was ever suspected by a correct
    process (eventual accuracy is in fact perpetual in the ABC model,
    because a false suspicion would contradict Lemma 4). *)
let no_false_suspicions (result : (state, Clock_sync.msg) Sim.result) ~correct =
  List.for_all
    (fun p ->
      let s = result.Sim.final_states.(p) in
      List.for_all (fun q -> not (Iset.mem q s.suspects)) correct)
    correct
