(** Weaker variants of the ABC model (Section 6):

    - {b ?ABC}: Ξ holds perpetually but is unknown — algorithms must
      learn a feasible Ξ at run time ({!XiLearner});
    - {b ◇ABC}: a known Ξ holds only eventually — only relevant cycles
      starting at or after some unknown consistent cut [C_GST] satisfy
      Eq. (2) ({!eventually_admissible});
    - {b ?◇ABC}: both.

    Also the cycle-length restriction mentioned at the end of
    Section 6: Algorithm 1 remains correct in an ABC model in which
    only cycles with at most [c] forward messages are constrained
    ({!admissible_bounded_cycles}). *)

open Execgraph

(* ------------------------------------------------------------------ *)
(* ◇ABC *)

(** The subgraph of [g] restricted to events with id ≥ [cut]: the
    suffix of the execution after a prefix of [cut] events.  Relevant
    cycles "starting at or after the cut" are exactly the cycles of
    this subgraph. *)
let suffix_graph g ~cut =
  let sub = Graph.create ~nprocs:(Graph.nprocs g) in
  let remap = Hashtbl.create 64 in
  for id = cut to Graph.event_count g - 1 do
    let ev = Graph.event g id in
    let ev' = Graph.add_event ?time:ev.Event.time sub ~proc:ev.Event.proc in
    Hashtbl.replace remap id ev'.Event.id
  done;
  List.iter
    (fun (e : Digraph.edge) ->
      if Graph.is_message g e then
        match (Hashtbl.find_opt remap e.src, Hashtbl.find_opt remap e.dst) with
        | Some s, Some d -> ignore (Graph.add_message sub ~src:s ~dst:d)
        | _ -> ())
    (Digraph.edges (Graph.digraph g));
  sub

(** ◇ABC admissibility: the smallest prefix length [k] such that the
    suffix after dropping the first [k] events is ABC-admissible for
    [Ξ] — the position of a viable [C_GST].  [Some 0] means plain ABC
    admissibility; [None] means even the final single event's suffix
    violates (cannot happen: tiny suffixes have no cycles). *)
let eventually_admissible g ~xi =
  let n = Graph.event_count g in
  if Abc_check.is_admissible g ~xi then Some 0
  else begin
    (* admissibility of suffixes is monotone in the cut (dropping more
       events only removes cycles), so binary search applies *)
    let lo = ref 0 and hi = ref n in
    (* invariant: suffix at hi admissible, suffix at lo not *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if Abc_check.is_admissible (suffix_graph g ~cut:mid) ~xi then hi := mid else lo := mid
    done;
    if !hi >= n then None else Some !hi
  end

(* ------------------------------------------------------------------ *)
(* ?ABC: learning Ξ *)

(** An adaptive estimator for the unknown Ξ of the ?ABC model
    (Section 6 sketches this: when a timeout verdict is contradicted by
    a late arrival, the estimate was too small — increase it).  The
    learner starts at [initial] and, fed the maximum relevant-cycle
    ratio observed so far (e.g. from {!Abc.max_relevant_ratio} on
    growing prefixes), maintains a feasible estimate
    [Ξ̂ > max ratio seen]. *)
module Xi_learner = struct
  type t = { estimate : Rat.t; revisions : int }

  let create ~initial = { estimate = initial; revisions = 0 }

  (** Feed an observed relevant-cycle ratio; if it refutes the current
      estimate ([ratio ≥ Ξ̂]), revise to [ratio + margin]. *)
  let observe t ~ratio ~margin =
    if Rat.compare ratio t.estimate >= 0 then
      { estimate = Rat.add ratio margin; revisions = t.revisions + 1 }
    else t

  let estimate t = t.estimate
  let revisions t = t.revisions
end

(* ------------------------------------------------------------------ *)
(* Restricted execution graphs *)

(** Admissibility when only cycles with at most [max_forward] forward
    messages are constrained (end of Section 6: Algorithm 1 works even
    when only cycles with ≤ 2 forward messages are considered).
    Checked by enumeration — an oracle for small graphs. *)
let admissible_bounded_cycles ?max_cycles g ~xi ~max_forward =
  List.for_all
    (fun (c : Cycle.t) ->
      (not c.Cycle.relevant)
      || c.Cycle.forward_messages > max_forward
      || Rat.compare (Cycle.ratio c) xi < 0)
    (Cycle.enumerate ?max_cycles g)
