(** The MCM and MMR models (Section 5.2), as checkable conditions over
    recorded executions — used by the model-comparison benches (sweep
    S5) to show where each model's assumption holds.

    {b MCM} (Fetzer): received messages are flagged fast/slow with
    every slow delay more than twice every fast delay.  {b MMR}
    (Mostefaoui–Mourgaya–Raynal): a fixed quorum of [n − f] processes
    answers among the first [n − f] in every query round. *)

type mcm_classification = {
  fast_max : Rat.t;
  slow_min : Rat.t;  (** [> 2 · fast_max] *)
  n_fast : int;
  n_slow : int;
}

val mcm_split : Rat.t list -> mcm_classification option
(** A two-class split with [min slow > 2 · max fast], maximizing the
    fast class; [None] if no factor-2 gap exists. *)

val mcm_boundary_pairs : Rat.t list -> float
(** Fraction of delay pairs with ratio in (1, 2] — the pairs MCM
    forbids from being simultaneously in transit with mixed flags. *)

val mmr_holds : n:int -> f:int -> int list list -> bool
(** Each round lists responder ids in arrival order: does a fixed
    [(n−f)]-quorum always arrive first? *)

val mmr_stable_quorum_size : n:int -> f:int -> int list list -> int
(** Size of the largest fixed set inside every round's first-(n−f)
    prefix (MMR holds iff ≥ n−f). *)

(** A query–response workload driving the MMR condition: process 0
    broadcasts numbered queries, everyone answers immediately, and the
    monitor records each completed round's arrival order. *)
module Query_rounds : sig
  type msg = Q of int | R of int
  type state

  val rounds : state -> int list list
  (** Completed rounds, oldest first, each in arrival order. *)

  val algorithm : rounds:int -> (state, msg) Sim.algorithm
end
