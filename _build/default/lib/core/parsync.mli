(** Relation to the classic partially synchronous model of Dwork, Lynch
    & Stockmeyer (Section 5.1, Fig. 8): necessary conditions for an
    (untimed) execution graph to be producible by a ParSync(Φ, Δ) run,
    and the Prover's winning strategy in the 2-player game showing ABC
    executions outside every ParSync. *)

val delivery_violations :
  Execgraph.Graph.t -> phi:int -> delta:int -> (Digraph.edge * int) list
(** Messages whose transit spans more than [Δ + Φ] global ticks (one
    tick per receive event). *)

val speed_violations : Execgraph.Graph.t -> phi:int -> (int * int * int) list
(** Windows where one process takes [Φ+1] steps while another active
    process takes none. *)

val parsync_consistent : Execgraph.Graph.t -> phi:int -> delta:int -> bool

val prover_execution : phi:int -> delta:int -> Execgraph.Graph.t
(** q ping-pongs with p ([max Φ Δ + 1] exchanges) while a message from
    q to r stays in transit: no relevant cycle at all (ABC-admissible
    for every Ξ > 1), yet both ParSync conditions fail. *)

val prover_wins : phi:int -> delta:int -> xi:Rat.t -> bool
