(** The MCM and MMR models (Section 5.2), as checkable conditions over
    recorded executions — used by the model-comparison benches to show
    where the ABC condition holds while these fail, and vice versa.

    {b MCM} (Fetzer's Message Classification Model): all received
    messages are correctly flagged "fast" or "slow", where every slow
    message's end-to-end delay is more than twice every fast message's.
    On a recorded timed execution, such a classification exists (with
    at least one fast message) iff the sorted delay sequence has a gap
    of factor [> 2], or all messages can be flagged fast... — precisely:
    there must be a threshold splitting the delays so that
    [min slow > 2 · max fast]; flagging {e all} messages fast is also a
    valid classification.  What defeats MCM is needing both classes:
    we expose the finest classification and its quality.

    {b MMR} (Mostefaoui–Mourgaya–Raynal): there is a fixed set [Q_i]
    of [n − f] processes whose responses to each of [p_i]'s round-trip
    queries arrive among the first [n − f] responses.  On a recorded
    sequence of query rounds (each an arrival order of responders), the
    condition holds iff the intersection of the first-[n − f] sets
    across rounds has size [≥ n − f]. *)

module Iset = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* MCM *)

type mcm_classification = {
  fast_max : Rat.t;
  slow_min : Rat.t;  (** [> 2 · fast_max] *)
  n_fast : int;
  n_slow : int;
}

(** Find a fast/slow split of the given delays with
    [min slow > 2 · max fast] and both classes non-empty; among valid
    splits, the one with the most fast messages.  [None] if no such
    two-class split exists. *)
let mcm_split delays =
  let sorted = List.sort Rat.compare delays in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let best = ref None in
  for i = 0 to n - 2 do
    (* fast = arr[0..i], slow = arr[i+1..] *)
    let fmax = arr.(i) and smin = arr.(i + 1) in
    if Rat.compare smin (Rat.mul Rat.two fmax) > 0 then
      best := Some { fast_max = fmax; slow_min = smin; n_fast = i + 1; n_slow = n - i - 1 }
  done;
  !best

(** MCM's key structural requirement on a pair of simultaneously
    in-transit messages: their delays must not have a ratio in (1, 2]
    unless equal-classed.  Fraction of message pairs that would violate
    a given split's threshold boundary — 0 means classification is
    safe. *)
let mcm_boundary_pairs delays =
  let arr = Array.of_list (List.sort Rat.compare delays) in
  let n = Array.length arr in
  let bad = ref 0 and total = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      incr total;
      let r = if Rat.sign arr.(i) > 0 then Rat.div arr.(j) arr.(i) else Rat.of_int 1000000 in
      if Rat.compare r Rat.one > 0 && Rat.compare r Rat.two <= 0 then incr bad
    done
  done;
  if !total = 0 then 0.0 else float_of_int !bad /. float_of_int !total

(* ------------------------------------------------------------------ *)
(* MMR *)

(** [mmr_holds ~n ~f rounds] where each round lists responder ids in
    arrival order: does a fixed (n−f)-quorum always arrive first? *)
let mmr_holds ~n ~f (rounds : int list list) =
  let quorum = n - f in
  let firsts =
    List.map
      (fun order ->
        let rec take k = function
          | [] -> []
          | _ when k = 0 -> []
          | x :: tl -> x :: take (k - 1) tl
        in
        Iset.of_list (take quorum order))
      rounds
  in
  match firsts with
  | [] -> true
  | first :: rest -> Iset.cardinal (List.fold_left Iset.inter first rest) >= quorum

(** The size of the largest fixed set contained in every round's
    first-(n−f) prefix (MMR holds iff this is ≥ n−f). *)
let mmr_stable_quorum_size ~n ~f (rounds : int list list) =
  let quorum = n - f in
  let firsts =
    List.map
      (fun order ->
        let rec take k = function
          | [] -> []
          | _ when k = 0 -> []
          | x :: tl -> x :: take (k - 1) tl
        in
        Iset.of_list (take quorum order))
      rounds
  in
  match firsts with
  | [] -> n
  | first :: rest -> Iset.cardinal (List.fold_left Iset.inter first rest)

(* ------------------------------------------------------------------ *)
(* MMR round-trip simulation *)

(** A query–response workload driving the MMR condition: process 0
    repeatedly broadcasts a numbered query; every process answers
    immediately; the monitor records, for each completed round, the
    responder ids in arrival order.  Feeding {!mmr_holds} with the
    recorded rounds decides whether this execution satisfies the MMR
    assumption for a given [f]. *)
module Query_rounds = struct
  type msg = Q of int | R of int

  type state = {
    role : [ `Monitor | `Responder ];
    current : int;
    arrived : int list;  (** responders of the current round, reversed *)
    rounds : int list list;  (** completed rounds, newest first *)
    target_rounds : int;
  }

  let rounds s = List.rev (List.map List.rev s.rounds)

  let algorithm ~rounds:target_rounds : (state, msg) Sim.algorithm =
    let broadcast ~nprocs m = List.init nprocs (fun d -> { Sim.dst = d; payload = m }) in
    {
      init =
        (fun ~self ~nprocs ->
          if self = 0 then
            ( { role = `Monitor; current = 0; arrived = []; rounds = []; target_rounds },
              broadcast ~nprocs (Q 0) )
          else
            ({ role = `Responder; current = 0; arrived = []; rounds = []; target_rounds }, []));
      step =
        (fun ~self ~nprocs s ~sender m ->
          match (s.role, m) with
          | `Responder, Q q -> (s, [ { Sim.dst = sender; payload = R q } ])
          | `Monitor, Q q ->
              (* the monitor answers its own query too *)
              if self = sender then (s, [ { Sim.dst = 0; payload = R q } ]) else (s, [])
          | `Monitor, R q when q = s.current ->
              let s = { s with arrived = sender :: s.arrived } in
              if List.length s.arrived >= nprocs then begin
                let s =
                  { s with rounds = s.arrived :: s.rounds; arrived = []; current = q + 1 }
                in
                if List.length s.rounds >= s.target_rounds then (s, [])
                else (s, broadcast ~nprocs (Q (q + 1)))
              end
              else (s, [])
          | `Monitor, R _ -> (s, [])
          | `Responder, R _ -> (s, []))
    }
end
