(** Byzantine consensus on top of lock-step rounds (Section 3 / 6: any
    synchronous Byzantine consensus algorithm runs unchanged over
    Algorithm 2's round simulation).

    Three classic synchronous algorithms over integer values, each a
    {!Lockstep.round_algo} usable both over the ABC lock-step
    simulation and over the perfect synchronous executor
    {!run_synchronous} (the baseline, with per-recipient two-faced
    Byzantine behaviour):

    - {!Eig}: exponential information gathering, [f+1] rounds,
      resilience [n > 3f], exponential messages;
    - {!Queen}: phase queen, [2(f+1)] rounds, [n > 4f], constant
      messages;
    - {!King}: phase king with proposals (Berman–Garay–Perry),
      [3(f+1)] rounds, [n > 3f], constant messages. *)

val default_value : int

module Eig : sig
  type state
  type msg = (int list * int) list
      (** relayed (sender-sequence, value) pairs *)

  val algo : f:int -> value:(int -> int) -> (state, msg) Lockstep.round_algo
  val decision : state -> int option
end

module Queen : sig
  type state
  type msg = int

  val algo : f:int -> value:(int -> int) -> (state, msg) Lockstep.round_algo
  val decision : state -> int option
end

module King : sig
  type state
  type msg = int  (** a value; [-1] encodes "no proposal" *)

  val algo : f:int -> value:(int -> int) -> (state, msg) Lockstep.round_algo
  val decision : state -> int option
end

(** Behaviour of a process under the synchronous executor. *)
type 'm sync_behavior =
  | B_correct
  | B_crash of int  (** silent from this round on *)
  | B_byzantine of (round:int -> dst:int -> 'm option)
      (** per-recipient (two-faced) message forging *)

val run_synchronous :
  nprocs:int ->
  behaviors:'m sync_behavior array ->
  algo:('rs, 'm) Lockstep.round_algo ->
  nrounds:int ->
  (int * 'rs) list
(** Run for [nrounds] rounds; returns (id, final state) of the correct
    processes. *)

val check_agreement : ('a * 'b option) list -> inputs:'b list -> bool
(** Agreement of the decisions plus validity on unanimous inputs. *)
