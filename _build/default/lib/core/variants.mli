(** Weaker variants of the ABC model (Section 6): ◇ABC (Ξ holds only
    after an unknown consistent cut C_GST), ?ABC (unknown Ξ, learnable
    at run time), ?◇ABC, and the restricted-cycle models where only
    cycles with few forward messages are constrained. *)

val suffix_graph : Execgraph.Graph.t -> cut:int -> Execgraph.Graph.t
(** The subgraph on events with id ≥ [cut] (the suffix after a prefix
    of [cut] events). *)

val eventually_admissible : Execgraph.Graph.t -> xi:Rat.t -> int option
(** ◇ABC admissibility: the smallest prefix length whose removal makes
    the suffix ABC-admissible for Ξ (monotone, found by binary search).
    [Some 0] is plain admissibility. *)

(** Adaptive estimation of the unknown Ξ of the ?ABC model: start with
    an initial guess and revise upward whenever an observed
    relevant-cycle ratio refutes it. *)
module Xi_learner : sig
  type t

  val create : initial:Rat.t -> t
  val observe : t -> ratio:Rat.t -> margin:Rat.t -> t
  val estimate : t -> Rat.t
  val revisions : t -> int
end

val admissible_bounded_cycles :
  ?max_cycles:int -> Execgraph.Graph.t -> xi:Rat.t -> max_forward:int -> bool
(** Admissibility when only relevant cycles with at most [max_forward]
    forward messages are constrained (end of Section 6: Algorithm 1
    needs only cycles with ≤ 2 forward messages).  By enumeration —
    small graphs. *)
