(** Ω (eventual leader election) in the ABC model, for crash faults,
    built directly on the causal-cone property of Lemma 4: at clock
    [c], ticks at level [≤ c − ⌈2Ξ⌉] are guaranteed present from every
    correct process, so a missing tick proves a crash.  The leader is
    the smallest non-suspected id.  Accuracy is perpetual (a false
    suspicion would contradict Lemma 4); completeness follows from
    clock progress. *)

type state

val leader : state -> int
val suspects : state -> int list
val clock : state -> int

val algorithm : f:int -> xi:Rat.t -> (state, Clock_sync.msg) Sim.algorithm
(** Algorithm 1 with leader output; [n ≥ 3f + 1]. *)

val converged :
  (state, Clock_sync.msg) Sim.result -> correct:int list ->
  (int * int) list * int * bool
(** (leaders per correct process, smallest correct id, all agree?). *)

val no_false_suspicions :
  (state, Clock_sync.msg) Sim.result -> correct:int list -> bool
