type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.is_negative den then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    if Bigint.is_one g then { num; den }
    else { num = Bigint.div num g; den = Bigint.div den g }
  end

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)
let zero = of_int 0
let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let num x = x.num
let den x = x.den
let sign x = Bigint.sign x.num
let is_zero x = Bigint.is_zero x.num
let is_integer x = Bigint.is_one x.den
let neg x = { x with num = Bigint.neg x.num }
let abs x = { x with num = Bigint.abs x.num }

let add x y =
  make
    (Bigint.add (Bigint.mul x.num y.den) (Bigint.mul y.num x.den))
    (Bigint.mul x.den y.den)

let sub x y = add x (neg y)
let mul x y = make (Bigint.mul x.num y.num) (Bigint.mul x.den y.den)
let div x y = make (Bigint.mul x.num y.den) (Bigint.mul x.den y.num)

let inv x =
  if is_zero x then raise Division_by_zero;
  make x.den x.num

let mul_int x n = mul x (of_int n)

let compare x y =
  Bigint.compare (Bigint.mul x.num y.den) (Bigint.mul y.num x.den)

let equal x y = Bigint.equal x.num y.num && Bigint.equal x.den y.den
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y
let floor x = Bigint.div x.num x.den (* Euclidean division is floor for positive den *)
let ceil x = Bigint.neg (floor (neg x))
let floor_int x = Bigint.to_int_exn (floor x)
let ceil_int x = Bigint.to_int_exn (ceil x)
let to_float x = Bigint.to_float x.num /. Bigint.to_float x.den

let to_string x =
  if is_integer x then Bigint.to_string x.num
  else Bigint.to_string x.num ^ "/" ^ Bigint.to_string x.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
      let a = Bigint.of_string (String.sub s 0 i) in
      let b = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make a b
  | None -> (
      match String.index_opt s '.' with
      | None -> of_bigint (Bigint.of_string s)
      | Some i ->
          let int_part = String.sub s 0 i in
          let frac = String.sub s (i + 1) (String.length s - i - 1) in
          let scale = Bigint.pow Bigint.ten (String.length frac) in
          let whole = Bigint.of_string (if int_part = "" || int_part = "-" then int_part ^ "0" else int_part) in
          let fpart = make (Bigint.of_string ("0" ^ frac)) scale in
          let fpart = if String.length s > 0 && s.[0] = '-' then neg fpart else fpart in
          add (of_bigint whole) fpart)

let pp fmt x = Format.pp_print_string fmt (to_string x)

module O = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) x y = not (equal x y)
  let ( < ) x y = compare x y < 0
  let ( <= ) x y = compare x y <= 0
  let ( > ) x y = compare x y > 0
  let ( >= ) x y = compare x y >= 0
end

module Eps = struct
  type rat = t

  (* Aliases for the plain-rational operations shadowed below. *)
  let rzero = zero
  let rone = one
  let radd = add
  let rsub = sub
  let rneg = neg
  let rmul = mul
  let rcompare = compare
  let ris_zero = is_zero
  let rpp = pp

  type nonrec t = { std : t; eps : t }

  let zero = { std = rzero; eps = rzero }
  let one = { std = rone; eps = rzero }
  let epsilon = { std = rzero; eps = rone }
  let of_rat r = { std = r; eps = rzero }
  let make std eps = { std; eps }
  let add x y = { std = radd x.std y.std; eps = radd x.eps y.eps }
  let sub x y = { std = rsub x.std y.std; eps = rsub x.eps y.eps }
  let neg x = { std = rneg x.std; eps = rneg x.eps }
  let scale c x = { std = rmul c x.std; eps = rmul c x.eps }

  let compare x y =
    let c = rcompare x.std y.std in
    if c <> 0 then c else rcompare x.eps y.eps

  let equal x y = compare x y = 0
  let min x y = if compare x y <= 0 then x else y
  let max x y = if compare x y >= 0 then x else y
  let is_nonneg x = compare x zero >= 0
  let standardize_with e x = radd x.std (rmul e x.eps)

  let pp fmt x =
    if ris_zero x.eps then rpp fmt x.std
    else Format.fprintf fmt "%a + %a\xc2\xb7\xce\xb5" rpp x.std rpp x.eps
end
