(** Message-driven discrete-event simulator.

    This is the "distributed system" substrate of the reproduction: the
    paper's claims are all about the causal structure (execution graph)
    of executions of message-driven algorithms, which this simulator
    produces exactly, under adversarial control of message delays.

    Model (Section 2 of the paper):
    - processes are state machines taking atomic, zero-time
      receive+compute+send steps, each triggered by exactly one message;
    - an external wake-up message triggers each process's first step,
      before any message from another process is received;
    - processes may be Byzantine (arbitrary behaviour, modelled by an
      alternative algorithm chosen by the experiment) or crash after a
      given number of steps;
    - every message sent by a correct process is received by every
      recipient within finite time; a faulty receiver still {e receives}
      (the receive event occurs) but need not {e process} the message.

    The simulator records two execution graphs: the {e faithful} graph
    — the paper's space–time diagram, with every message sent by a
    Byzantine process dropped along with its send step and its receive
    event, and every receive event a faulty receiver failed to process
    dropped too (the graph the ABC synchrony condition of Definition 4
    constrains) — and the {e full} graph with everything, for uniform
    analyses. *)

(** A message posted during a step. *)
type 'm send = { dst : int; payload : 'm }

(** A message-driven distributed algorithm.  [init] is the wake-up step
    (the paper's externally triggered first computing step); [step]
    handles one received message. *)
type ('s, 'm) algorithm = {
  init : self:int -> nprocs:int -> 's * 'm send list;
  step : self:int -> nprocs:int -> 's -> sender:int -> 'm -> 's * 'm send list;
}

type fault =
  | Correct
  | Crash of int
      (** [Crash k]: behaves correctly for its first [k] computing steps
          (including the wake-up), then stops processing.

          Boundary semantics, pinned: [Crash 0] crashes {e before} the
          wake-up step.  The process still has a well-defined initial
          state (the one [init] would compute), but it sends nothing —
          its wake-up broadcast is lost with the crash — and it appears
          in {e no} faithful-graph node. *)
  | Recover of int * int
      (** [Recover (k_down, k_up)]: correct for its first [k_down]
          computing steps, then down — arriving messages are received
          but not processed — until [k_up] messages have been lost,
          after which it resumes processing with its pre-crash state
          (amnesia-free crash-recovery).  Requires [k_up >= 1]. *)
  | Send_omission of int
      (** [Send_omission k]: processes normally, but from its
          [(k+1)]-th computing step on (wake-up counts as step 1) every
          message it posts is silently dropped. *)
  | Receive_omission of int
      (** [Receive_omission j], [j >= 1]: fails to process every [j]-th
          received message (the wake-up is exempt). *)
  | Byzantine of string
      (** runs the per-process strategy from the config's byzantine
          table.  The string is an opaque strategy name (lowercase
          alphanumerics; [""] conventionally means "silent") carried
          through serialization — see [Byz] for the named palette. *)

val valid_strategy_name : string -> bool
(** Whether a byzantine strategy name is serializable: lowercase
    alphanumerics only (no wire separators). *)

val fault_to_string : fault -> string
(** Compact serialization: ["C"], ["K<k>"], ["R<kd>-<ku>"], ["SO<k>"],
    ["RO<j>"], or ["B<name>"] — the wire form used by fuzz-case repro
    lines. *)

val fault_of_string : string -> fault option
(** Inverse of {!fault_to_string}; [None] on malformed input. *)

val pp_fault : Format.formatter -> fault -> unit

(** {1 Fault plans} *)

(** Message-level fault action, applied to the message whose global
    [msg_index] it is keyed on; composable with any scheduler. *)
type plan_action =
  | P_drop  (** silently lost *)
  | P_duplicate of Rat.t
      (** delivered normally plus a copy arriving the given extra delay
          after the first (under {!run_deferring}, the copy is simply
          queued after the original) *)
  | P_misdirect of int  (** rerouted to the given destination *)
  | P_delay of Rat.t
      (** scheduler delay overridden with this one (no-op under
          {!run_deferring}, whose time is logical) *)

type fault_plan = (int * plan_action) list
(** Actions keyed by [msg_index]; at most one action per index. *)

val plan_to_string : fault_plan -> string
(** Wire form, e.g. ["5:drop,9:dup2,14:to0,21:dl7/2"] (empty string for
    the empty plan). *)

val plan_of_string : string -> fault_plan option
(** Inverse of {!plan_to_string}; [None] on malformed input or
    duplicate indices. *)

(** Scheduler: assigns a non-negative rational delay to each message.
    [msg_index] is a global dense counter, usable for adversarial
    targeting of individual messages. *)
type 'm scheduler = {
  delay :
    sender:int -> dst:int -> send_time:Rat.t -> msg_index:int -> payload:'m -> Rat.t;
}

(** Per-event trace record, indexed by {e full-graph} event id. *)
type 's trace_entry = {
  tr_proc : int;
  tr_sender : int;  (** [-1] for the wake-up *)
  tr_time : Rat.t;
  tr_faithful_id : int option;  (** node id in the faithful graph, if kept *)
  tr_state_after : 's option;  (** [None] if the receiver did not process *)
  tr_processed : bool;
}

type ('s, 'm) result = {
  graph : Execgraph.Graph.t;
      (** faithful execution graph (faulty-sent messages dropped) *)
  full_graph : Execgraph.Graph.t;
  final_states : 's array;
  trace : 's trace_entry array;  (** indexed by full-graph event id *)
  delivered : int;  (** number of receive events simulated *)
  undelivered : int;  (** messages still in flight when the run stopped *)
  posted : int;  (** wake-ups + messages emitted by steps + duplicate copies *)
  dropped : int;
      (** messages lost to send-omission or a plan's [P_drop];
          [posted = delivered + undelivered + dropped] always holds *)
}

type ('s, 'm) config = {
  nprocs : int;
  algorithm : ('s, 'm) algorithm;
  byzantine : (int -> ('s, 'm) algorithm) option;
      (** per-process strategy table for [Byzantine] processes *)
  faults : fault array;
  plan : fault_plan;
  scheduler : 'm scheduler;
  max_events : int;  (** hard cap on simulated receive events *)
  stop_when : 's array -> bool;  (** checked after every processed step *)
}

val make_config :
  ?byzantine:(int -> ('s, 'm) algorithm) ->
  ?plan:fault_plan ->
  ?stop_when:('s array -> bool) ->
  nprocs:int ->
  algorithm:('s, 'm) algorithm ->
  faults:fault array ->
  scheduler:'m scheduler ->
  max_events:int ->
  unit ->
  ('s, 'm) config
(** Validates sizes, fault parameters, that [Byzantine] faults come
    with a strategy table, and the plan (indices >= 0, misdirect
    targets in range, delays non-negative).
    @raise Invalid_argument otherwise. *)

val run : ('s, 'm) config -> ('s, 'm) result
(** Run to completion: agenda exhausted, event cap hit, or [stop_when]
    satisfied.  Deterministic given the scheduler. *)

(** {1 Schedulers} *)

val theta_scheduler :
  rng:Random.State.t ->
  tau_minus:Rat.t ->
  tau_plus:Rat.t ->
  ?grain:int ->
  unit ->
  'm scheduler
(** Θ-Model scheduler: delays uniform on [[tau_minus, tau_plus]] (as
    rationals with denominator [grain]).  By Theorem 6 every execution
    it produces is ABC-admissible for any [Ξ > tau_plus/tau_minus]. *)

val async_scheduler :
  rng:Random.State.t -> max_delay:Rat.t -> ?grain:int -> unit -> 'm scheduler
(** Fully asynchronous: delays uniform on [[0, max_delay]] (zero-delay
    messages allowed, as in the ABC model). *)

val constant_scheduler : Rat.t -> 'm scheduler
(** Fixed delay (a degenerate Θ with τ− = τ+). *)

val growing_scheduler :
  rng:Random.State.t ->
  cluster_of:(int -> int) ->
  intra_min:Rat.t ->
  intra_max:Rat.t ->
  inter_base:Rat.t ->
  growth_rate:Rat.t ->
  ?grain:int ->
  unit ->
  'm scheduler
(** Fig. 9 / §5.3 spacecraft formation: inter-cluster delays grow
    linearly with send time (unbounded — no Θ-Model applies) while
    intra-cluster delays stay within [[intra_min, intra_max]]. *)

val eventually_theta_scheduler :
  rng:Random.State.t ->
  gst:Rat.t ->
  chaos_max:Rat.t ->
  tau_minus:Rat.t ->
  tau_plus:Rat.t ->
  ?grain:int ->
  unit ->
  'm scheduler
(** ◇-model scheduler (§6 ◇ABC / ?◇ABC): chaotic delays on
    [[0, chaos_max]] before the global stabilization time [gst],
    Θ-bounded afterwards. *)

val targeted_scheduler :
  rng:Random.State.t ->
  tau_minus:Rat.t ->
  tau_plus:Rat.t ->
  victim:(sender:int -> dst:int -> msg_index:int -> bool) ->
  stretched:(send_time:Rat.t -> Rat.t) ->
  ?grain:int ->
  unit ->
  'm scheduler
(** Θ on non-victims; messages selected by [victim] get the [stretched]
    delay — used to build ABC-admissible executions violating every Θ
    (isolated slow chains, cf. Fig. 1 and §5.2). *)

(** {1 Analyses} *)

val faithful_states : ('s, 'm) result -> (int, 's) Hashtbl.t
(** States reached after each faithful-graph event (event id -> state),
    for algorithm-level analyses such as per-event clock values. *)

(** {1 Choice-point sessions}

    The model checker's hook into the simulator: a session exposes the
    set of {e ready} (posted, undelivered) messages at every point and
    lets the caller pick which one is delivered next, with the same
    per-delivery machinery (fault bookkeeping, plan handling, graph
    growth, trace) as {!run}.  Time is logical — each event is stamped
    with its delivery index — so an execution is fully determined by
    the sequence of choices. *)

module Session : sig
  type ('s, 'm) t

  (** A ready message, as seen by an external explorer. *)
  type info = {
    i_env : int;
        (** dense envelope id in posting order; wake-ups are [0..n-1] *)
    i_sender : int;  (** [-1] for a wake-up *)
    i_dst : int;
    i_posted_at : int;
        (** delivery index of the step that posted it; [-1] for the
            initial wake-ups *)
    i_correct : bool;  (** posted by a non-Byzantine sender *)
    i_faithful_src : int option;
        (** faithful-graph node of the sending step, if kept *)
  }

  val create : ?record:bool -> ('s, 'm) config -> ('s, 'm) t
  (** Fresh session: the ready list holds exactly the [n] wake-ups.
      With [record:true] every {!deliver} pushes an O(1) undo-journal
      frame, enabling {!undo}; default [false] (no journal, no
      overhead). *)

  val ready : ('s, 'm) t -> info list
  (** Undelivered messages, in posting order (the canonical choice
      order: choice [k] of {!deliver} picks the [k]-th entry). *)

  val iter_ready :
    ('s, 'm) t -> (env:int -> dst:int -> posted_at:int -> unit) -> unit
  (** Allocation-free view of {!ready}: calls [f] once per visible
      entry, in the same order, with the fields an explorer keys on.
      The model checker's DFS visits a node per delivery, so this is
      its hottest read path. *)

  val deliver : ('s, 'm) t -> int -> info
  (** [deliver s k] removes the [k]-th ready message and executes the
      step it triggers; returns the delivered message's info.
      @raise Invalid_argument if [k] is out of range. *)

  val finished : ('s, 'm) t -> bool
  (** No ready messages, event budget exhausted, or [stop_when]
      satisfied — the execution is maximal. *)

  val snapshot : ('s, 'm) t -> int
  (** The current logical time (= {!delivered}), as a token for
      {!undo_to}.  O(1): the undo journal {e is} the snapshot — no
      state is copied. *)

  val undo : ('s, 'm) t -> unit
  (** Roll the most recent delivery back: ready list, trace, the
      destination's algorithm state and fault counters, both execution
      graphs, and every derived counter return to their exact prior
      values.  O(Δ) in the work that delivery did.  Requires the
      session to record ([create ~record:true]).
      @raise Invalid_argument if there is nothing recorded to undo. *)

  val undo_to : ('s, 'm) t -> int -> unit
  (** [undo_to s d] undoes until [delivered s = d] (a value previously
      returned by {!snapshot}).
      @raise Invalid_argument if [d] lies beyond the current point or
      before the recorded journal. *)

  val graph : ('s, 'm) t -> Execgraph.Graph.t
  (** The faithful execution graph recorded so far (live view). *)

  val delivered : ('s, 'm) t -> int
  (** Deliveries executed so far (= the current logical time). *)

  val envelopes : ('s, 'm) t -> int
  (** Envelopes created so far; the ids posted by the next step are
      assigned densely from this value (explorers use the before/after
      difference to attribute messages to their posting step). *)

  val result : ?allow_unwoken:bool -> ?who:string -> ('s, 'm) t -> ('s, 'm) result
  (** Package the execution so far.  With [allow_unwoken:true]
      (default [false]) a process whose wake-up was starved by the
      choice sequence gets its well-defined initial state (the
      [Crash 0] convention) instead of raising. *)
end

val run_scheduled : ('s, 'm) config -> choices:int array -> ('s, 'm) result
(** Replay an externally chosen delivery sequence through a
    {!Session}: choice [i] picks the index-[choices.(i)] entry of the
    ready list at step [i].  Out-of-range choices saturate at the last
    ready entry; when the array is exhausted the run continues FIFO
    (choice 0) until maximal.  The config's [scheduler] is ignored;
    the result uses the unwoken-process fallback, since a schedule may
    starve a wake-up within the budget. *)

(** {1 Oracle-guided deferring adversary} *)

val run_deferring :
  ('s, 'm) config ->
  xi:Rat.t ->
  victim:(sender:int -> dst:int -> bool) ->
  ('s, 'm) result
(** Like {!run}, but delivery order is chosen by an adaptive adversary
    that defers every message selected by [victim] for as long as the
    ABC condition for [xi] allows: before delivering the oldest
    non-victim message, it checks on the recorded graph whether the
    deferral would still be admissible, and delivers the victim at the
    last admissible moment.  Executions sit exactly at the
    admissibility boundary — the adversary behind the paper's
    "timing out message chains" observation (Fig. 3, sweep S1).  The
    config's [scheduler] is ignored; events are stamped with logical
    times. *)
