(** Message-driven discrete-event simulator.

    This is the "distributed system" substrate of the reproduction: the
    paper's claims are all about the causal structure (execution graph)
    of executions of message-driven algorithms, which this simulator
    produces exactly, under adversarial control of message delays.

    Model (Section 2 of the paper):
    - processes are state machines taking atomic, zero-time
      receive+compute+send steps, each triggered by exactly one message;
    - an external wake-up message triggers each process's first step,
      before any message from another process is received;
    - up to [f] processes may be Byzantine (arbitrary behaviour,
      modelled by an alternative algorithm chosen by the experiment) or
      crash after a given number of steps;
    - every message sent by a correct process is received by every
      recipient within finite time; a faulty receiver still {e receives}
      (the receive event occurs) but need not {e process} the message.

    The simulator records two execution graphs:
    - [graph]: the paper's space–time diagram, with every message sent
      by a Byzantine process dropped along with its send step and its
      receive event, and every receive event a faulty receiver failed
      to process dropped too (such events are causally inert — no state
      change, no sends — so they lie on no relevant cycle and this is
      the graph the ABC synchrony condition (Definition 4) constrains);
    - [full_graph]: everything, used for uniform analyses
      (cf. the remark after Theorem 5).

    Delivery order and timing are controlled by a {!scheduler}, which
    assigns each message a rational delay possibly depending on sender,
    destination, send time and a per-message index. *)

open Execgraph

(** A message posted during a step. *)
type 'm send = { dst : int; payload : 'm }

(** A message-driven distributed algorithm.  [init] is the wake-up step
    (the paper's externally triggered first computing step); [step]
    handles one received message. *)
type ('s, 'm) algorithm = {
  init : self:int -> nprocs:int -> 's * 'm send list;
  step : self:int -> nprocs:int -> 's -> sender:int -> 'm -> 's * 'm send list;
}

type fault =
  | Correct
  | Crash of int
      (** [Crash k]: behaves correctly for its first [k] computing steps
          (including the wake-up), then stops processing.

          Boundary semantics, pinned: [Crash 0] crashes {e before} the
          wake-up step.  The process still has a well-defined initial
          state (the one [init] would compute), but it sends nothing —
          its wake-up broadcast is lost with the crash — and, because
          the faithful graph records only computing steps actually
          taken, it appears in {e no} faithful-graph node. *)
  | Recover of int * int
      (** [Recover (k_down, k_up)]: correct for its first [k_down]
          computing steps, then down — messages arriving while down are
          received but not processed (and dropped from the faithful
          graph) — until [k_up] messages have been lost, after which it
          resumes processing with its pre-crash state (amnesia-free
          crash-recovery). *)
  | Send_omission of int
      (** [Send_omission k]: processes every message normally, but from
          its [(k+1)]-th computing step on (wake-up counts as step 1)
          every message it posts is silently dropped.  [Send_omission 0]
          never gets a message out. *)
  | Receive_omission of int
      (** [Receive_omission j], [j >= 1]: fails to process every [j]-th
          message it receives (the wake-up is exempt, so the process
          always starts).  The lost receive events are dropped from the
          faithful graph. *)
  | Byzantine of string
      (** runs the per-process byzantine algorithm from the config's
          strategy table.  The string is an opaque strategy name carried
          through serialization (lowercase alphanumerics; [""] is the
          conventional "silent" strategy) — the simulator itself only
          dispatches on the table. *)

let valid_strategy_name s =
  String.for_all (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) s

let fault_to_string = function
  | Correct -> "C"
  | Crash k -> "K" ^ string_of_int k
  | Recover (kd, ku) -> Printf.sprintf "R%d-%d" kd ku
  | Send_omission k -> "SO" ^ string_of_int k
  | Receive_omission j -> "RO" ^ string_of_int j
  | Byzantine name -> "B" ^ name

let nonneg_int_of_string s =
  match int_of_string_opt s with Some k when k >= 0 -> Some k | _ -> None

let fault_of_string s =
  let tail i = String.sub s i (String.length s - i) in
  match s with
  | "C" -> Some Correct
  | _ when String.length s >= 2 && s.[0] = 'S' && s.[1] = 'O' -> (
      match nonneg_int_of_string (tail 2) with
      | Some k -> Some (Send_omission k)
      | None -> None)
  | _ when String.length s >= 2 && s.[0] = 'R' && s.[1] = 'O' -> (
      match nonneg_int_of_string (tail 2) with
      | Some j when j >= 1 -> Some (Receive_omission j)
      | _ -> None)
  | _ when String.length s >= 2 && s.[0] = 'K' -> (
      match nonneg_int_of_string (tail 1) with
      | Some k -> Some (Crash k)
      | None -> None)
  | _ when String.length s >= 2 && s.[0] = 'R' -> (
      match String.index_opt s '-' with
      | Some i when i >= 2 && i < String.length s - 1 -> (
          match
            ( nonneg_int_of_string (String.sub s 1 (i - 1)),
              nonneg_int_of_string (tail (i + 1)) )
          with
          | Some kd, Some ku when ku >= 1 -> Some (Recover (kd, ku))
          | _ -> None)
      | _ -> None)
  | _ when String.length s >= 1 && s.[0] = 'B' ->
      let name = tail 1 in
      if valid_strategy_name name then Some (Byzantine name) else None
  | _ -> None

let pp_fault fmt f = Format.pp_print_string fmt (fault_to_string f)

(* ------------------------------------------------------------------ *)
(* Fault plans *)

(** Message-level fault action, keyed on the global [msg_index] of the
    posted message; composable with any scheduler. *)
type plan_action =
  | P_drop  (** the message is silently lost *)
  | P_duplicate of Rat.t
      (** delivered normally, plus a second copy arriving the given
          extra delay after the first *)
  | P_misdirect of int  (** rerouted to the given destination *)
  | P_delay of Rat.t
      (** the scheduler's delay is overridden with this one (ignored by
          {!run_deferring}, whose time is logical) *)

type fault_plan = (int * plan_action) list

let plan_action_to_string = function
  | P_drop -> "drop"
  | P_duplicate r -> "dup" ^ Rat.to_string r
  | P_misdirect d -> "to" ^ string_of_int d
  | P_delay r -> "dl" ^ Rat.to_string r

let plan_to_string plan =
  String.concat ","
    (List.map (fun (i, a) -> Printf.sprintf "%d:%s" i (plan_action_to_string a)) plan)

let plan_action_of_string s =
  let tail i = String.sub s i (String.length s - i) in
  let rat_of t = try Some (Rat.of_string t) with _ -> None in
  if s = "drop" then Some P_drop
  else if String.length s > 3 && String.sub s 0 3 = "dup" then
    match rat_of (tail 3) with
    | Some r when Rat.sign r >= 0 -> Some (P_duplicate r)
    | _ -> None
  else if String.length s > 2 && String.sub s 0 2 = "to" then
    match nonneg_int_of_string (tail 2) with
    | Some d -> Some (P_misdirect d)
    | None -> None
  else if String.length s > 2 && String.sub s 0 2 = "dl" then
    match rat_of (tail 2) with
    | Some r when Rat.sign r >= 0 -> Some (P_delay r)
    | _ -> None
  else None

let plan_of_string s =
  if s = "" then Some []
  else
    let entries = String.split_on_char ',' s in
    let rec parse acc seen = function
      | [] -> Some (List.rev acc)
      | e :: rest -> (
          match String.index_opt e ':' with
          | None -> None
          | Some i -> (
              match
                ( nonneg_int_of_string (String.sub e 0 i),
                  plan_action_of_string
                    (String.sub e (i + 1) (String.length e - i - 1)) )
              with
              | Some idx, Some a when not (List.mem idx seen) ->
                  parse ((idx, a) :: acc) (idx :: seen) rest
              | _ -> None))
    in
    parse [] [] entries

(** Scheduler: assigns a non-negative rational delay to each message.
    [msg_index] is a global dense counter, usable for adversarial
    targeting of individual messages. *)
type 'm scheduler = {
  delay :
    sender:int -> dst:int -> send_time:Rat.t -> msg_index:int -> payload:'m -> Rat.t;
}

(** Per-event trace record, indexed by {e full-graph} event id. *)
type 's trace_entry = {
  tr_proc : int;
  tr_sender : int;  (** [-1] for the wake-up *)
  tr_time : Rat.t;
  tr_faithful_id : int option;  (** node id in the faithful graph, if kept *)
  tr_state_after : 's option;  (** [None] if the receiver did not process *)
  tr_processed : bool;
}

type ('s, 'm) result = {
  graph : Graph.t;  (** faithful execution graph (faulty-sent messages dropped) *)
  full_graph : Graph.t;
  final_states : 's array;
  trace : 's trace_entry array;  (** indexed by full-graph event id *)
  delivered : int;  (** number of receive events simulated *)
  undelivered : int;  (** messages still in flight when the run stopped *)
  posted : int;  (** wake-ups + messages emitted by steps + duplicate copies *)
  dropped : int;
      (** messages lost to send-omission or a plan's [P_drop]; the run
          maintains [posted = delivered + undelivered + dropped] *)
}

type ('s, 'm) config = {
  nprocs : int;
  algorithm : ('s, 'm) algorithm;
  byzantine : (int -> ('s, 'm) algorithm) option;
      (** per-process strategy table for [Byzantine] processes, indexed
          by process id *)
  faults : fault array;
  plan : fault_plan;  (** message-level fault actions keyed on [msg_index] *)
  scheduler : 'm scheduler;
  max_events : int;  (** hard cap on simulated receive events *)
  stop_when : 's array -> bool;  (** checked after every processed step *)
}

let default_stop _ = false

let is_byz_fault = function Byzantine _ -> true | _ -> false

let make_config ?byzantine ?(plan = []) ?(stop_when = default_stop) ~nprocs ~algorithm
    ~faults ~scheduler ~max_events () =
  if Array.length faults <> nprocs then invalid_arg "Sim.make_config: faults size";
  if Array.exists is_byz_fault faults && byzantine = None then
    invalid_arg "Sim.make_config: Byzantine faults require a byzantine algorithm";
  Array.iter
    (fun f ->
      match f with
      | Byzantine name when not (valid_strategy_name name) ->
          invalid_arg "Sim.make_config: invalid byzantine strategy name"
      | Receive_omission j when j < 1 ->
          invalid_arg "Sim.make_config: Receive_omission needs j >= 1"
      | Recover (kd, ku) when kd < 0 || ku < 1 ->
          invalid_arg "Sim.make_config: Recover needs k_down >= 0 and k_up >= 1"
      | Crash k when k < 0 -> invalid_arg "Sim.make_config: negative crash step"
      | Send_omission k when k < 0 ->
          invalid_arg "Sim.make_config: negative send-omission step"
      | _ -> ())
    faults;
  List.iter
    (fun (idx, a) ->
      if idx < 0 then invalid_arg "Sim.make_config: plan: negative msg_index";
      match a with
      | P_misdirect d when d < 0 || d >= nprocs ->
          invalid_arg "Sim.make_config: plan: misdirect target out of range"
      | P_delay r when Rat.sign r < 0 ->
          invalid_arg "Sim.make_config: plan: negative delay override"
      | P_duplicate r when Rat.sign r < 0 ->
          invalid_arg "Sim.make_config: plan: negative duplicate delay"
      | _ -> ())
    plan;
  { nprocs; algorithm; byzantine; faults; plan; scheduler; max_events; stop_when }

(* In-flight message. *)
type 'm envelope = {
  env_sender : int;  (* -1 = wake-up *)
  env_dst : int;
  env_payload : 'm option;  (* None = wake-up *)
  env_send_faithful : int option;  (* faithful node id of the sending step *)
  env_sender_correct : bool;
}

module Agenda = Map.Make (struct
  type t = Rat.t * int (* delivery time, tiebreak counter *)

  let compare (t1, c1) (t2, c2) =
    let c = Rat.compare t1 t2 in
    if c <> 0 then c else Int.compare c1 c2
end)

(** Run a configuration to completion (queue exhausted, event cap hit,
    or [stop_when] satisfied). *)
(* Shared per-run fault bookkeeping: decides, with side effects, whether
   the receiver of the next delivery processes it.  Must be called
   exactly once per delivery, before the step executes. *)
type fault_state = {
  fs_steps : int array;  (* computing steps executed (wake-up included) *)
  fs_recv_seen : int array;  (* non-wake-up deliveries, for Receive_omission *)
  fs_down_drops : int array;  (* messages lost while down, for Recover *)
}

let make_fault_state n =
  {
    fs_steps = Array.make n 0;
    fs_recv_seen = Array.make n 0;
    fs_down_drops = Array.make n 0;
  }

let will_process fs faults p ~is_wakeup =
  match faults.(p) with
  | Correct | Byzantine _ | Send_omission _ -> true
  | Crash k -> fs.fs_steps.(p) < k
  | Receive_omission j ->
      if is_wakeup then true
      else begin
        fs.fs_recv_seen.(p) <- fs.fs_recv_seen.(p) + 1;
        fs.fs_recv_seen.(p) mod j <> 0
      end
  | Recover (k_down, k_up) ->
      if fs.fs_steps.(p) < k_down then true
      else if fs.fs_down_drops.(p) < k_up then begin
        fs.fs_down_drops.(p) <- fs.fs_down_drops.(p) + 1;
        false
      end
      else true (* recovered: resumes with its pre-crash state *)

(* does the sender's current step (already counted in fs_steps) lose its
   posts to a send-omission fault? *)
let sends_omitted fs faults p =
  match faults.(p) with Send_omission k -> fs.fs_steps.(p) > k | _ -> false

let byz_algo cfg p =
  match cfg.faults.(p) with
  | Byzantine _ -> (Option.get cfg.byzantine) p (* validated in make_config *)
  | _ -> cfg.algorithm

(** Run a configuration to completion (queue exhausted, event cap hit,
    or [stop_when] satisfied). *)
let run (cfg : ('s, 'm) config) : ('s, 'm) result =
  let n = cfg.nprocs in
  let graph = Graph.create ~nprocs:n in
  let full_graph = Graph.create ~nprocs:n in
  let states : 's option array = Array.make n None in
  let fs = make_fault_state n in
  let trace = ref [] in
  let agenda = ref Agenda.empty in
  let counter = ref 0 in
  let msg_index = ref 0 in
  let posted = ref 0 in
  let dropped = ref 0 in
  let is_byz p = is_byz_fault cfg.faults.(p) in
  let post time env =
    incr counter;
    agenda := Agenda.add (time, !counter) env !agenda
  in
  (* Wake-up messages, all at time 0, before anything else. *)
  for p = 0 to n - 1 do
    incr posted;
    post Rat.zero
      {
        env_sender = -1;
        env_dst = p;
        env_payload = None;
        env_send_faithful = None;
        env_sender_correct = true;
      }
  done;
  let delivered = ref 0 in
  let stop = ref false in
  while (not !stop) && (not (Agenda.is_empty !agenda)) && !delivered < cfg.max_events do
    let ((time, _) as key), env = Agenda.min_binding !agenda in
    agenda := Agenda.remove key !agenda;
    let p = env.env_dst in
    (* Record the receive event. *)
    let _full_ev = Graph.add_event ~time full_graph ~proc:p in
    incr delivered;
    let is_wakeup = env.env_sender = -1 in
    let processes = will_process fs cfg.faults p ~is_wakeup in
    if Obs.on () then begin
      Obs.instant "sim" "deliver"
        [ ("dst", Obs.I p); ("from", Obs.I env.env_sender); ("ok", Obs.B processes) ];
      if not processes then Obs.instant "sim" "fault" [ ("proc", Obs.I p) ]
    end;
    (* The faithful graph keeps only computing steps actually taken:
       unprocessed deliveries are causally inert (no state change, no
       sends), so no relevant cycle passes through them and dropping
       them leaves ABC admissibility untouched. *)
    let faithful_id =
      if processes && env.env_sender_correct then begin
        let ev = Graph.add_event ~time graph ~proc:p in
        (match env.env_send_faithful with
        | Some src -> ignore (Graph.add_message graph ~src ~dst:ev.Event.id)
        | None -> ());
        Some ev.Event.id
      end
      else None
    in
    let processed, state_after, sends =
      if not processes then
        if is_wakeup && states.(p) = None then begin
          (* a process that is down before its very first step still has
             a well-defined initial state — it just never acts on it
             (its wake-up broadcast is lost) *)
          let s, _suppressed = (byz_algo cfg p).init ~self:p ~nprocs:n in
          (false, Some s, [])
        end
        else (false, states.(p), [])
      else begin
        let algo = byz_algo cfg p in
        match (env.env_sender, env.env_payload, states.(p)) with
        | -1, None, _ ->
            (* wake-up: the very first step *)
            let s, out = algo.init ~self:p ~nprocs:n in
            fs.fs_steps.(p) <- fs.fs_steps.(p) + 1;
            (true, Some s, out)
        | sender, Some payload, Some s ->
            let s', out = algo.step ~self:p ~nprocs:n s ~sender payload in
            fs.fs_steps.(p) <- fs.fs_steps.(p) + 1;
            (true, Some s', out)
        | _, Some _, None ->
            (* message arrived before the wake-up: the paper assumes the
               wake-up occurs first; our agenda guarantees this (wake-ups
               are posted at time 0 with the smallest counters), so this
               is unreachable for time >= 0 schedules. *)
            assert false
        | _, None, _ -> assert false
      end
    in
    states.(p) <- state_after;
    (* Post the step's messages, through send-omission and the plan. *)
    let sender_correct_now = not (is_byz p) in
    let omitting = processed && sends_omitted fs cfg.faults p in
    List.iter
      (fun { dst; payload } ->
        let idx = !msg_index in
        incr msg_index;
        incr posted;
        if omitting then begin
          incr dropped;
          if Obs.on () then
            Obs.instant "sim" "drop" [ ("idx", Obs.I idx); ("why", Obs.S "omission") ]
        end
        else begin
          let enqueue ~dst ~delay =
            if Rat.sign delay < 0 then invalid_arg "Sim.run: negative delay";
            if Obs.on () then
              Obs.instant "sim" "send" [ ("dst", Obs.I dst); ("idx", Obs.I idx) ];
            post (Rat.add time delay)
              {
                env_sender = p;
                env_dst = dst;
                env_payload = Some payload;
                env_send_faithful = (if sender_correct_now then faithful_id else None);
                env_sender_correct = sender_correct_now;
              }
          in
          let sched_delay ~dst =
            cfg.scheduler.delay ~sender:p ~dst ~send_time:time ~msg_index:idx ~payload
          in
          match List.assoc_opt idx cfg.plan with
          | None -> enqueue ~dst ~delay:(sched_delay ~dst)
          | Some P_drop ->
              incr dropped;
              if Obs.on () then
                Obs.instant "sim" "drop" [ ("idx", Obs.I idx); ("why", Obs.S "plan") ]
          | Some (P_misdirect d) -> enqueue ~dst:d ~delay:(sched_delay ~dst:d)
          | Some (P_delay r) -> enqueue ~dst ~delay:r
          | Some (P_duplicate extra) ->
              let d = sched_delay ~dst in
              enqueue ~dst ~delay:d;
              incr posted;
              enqueue ~dst ~delay:(Rat.add d extra)
        end)
      sends;
    trace :=
      {
        tr_proc = p;
        tr_sender = env.env_sender;
        tr_time = time;
        tr_faithful_id = faithful_id;
        tr_state_after = (if processed then state_after else None);
        tr_processed = processed;
      }
      :: !trace;
    if processed && Array.for_all Option.is_some states then
      if cfg.stop_when (Array.map Option.get states) then stop := true
  done;
  let final_states =
    Array.mapi
      (fun p s ->
        match s with
        | Some s -> s
        | None ->
            (* a process that never woke up cannot happen: wake-ups are
               delivered first and max_events >= nprocs is required *)
            invalid_arg (Printf.sprintf "Sim.run: process %d never woke up" p))
      states
  in
  {
    graph;
    full_graph;
    final_states;
    trace = Array.of_list (List.rev !trace);
    delivered = !delivered;
    undelivered = Agenda.cardinal !agenda;
    posted = !posted;
    dropped = !dropped;
  }

(* ------------------------------------------------------------------ *)
(* Schedulers *)

(** Θ-Model scheduler: delays drawn uniformly (as rationals with
    denominator [grain]) from [[tau_minus, tau_plus]].  By Theorem 6
    every execution it produces is ABC-admissible for any
    [Ξ > tau_plus/tau_minus]. *)
let theta_scheduler ~rng ~tau_minus ~tau_plus ?(grain = 1000) () =
  if Rat.compare tau_minus tau_plus > 0 || Rat.sign tau_minus <= 0 then
    invalid_arg "Sim.theta_scheduler: need 0 < tau_minus <= tau_plus";
  {
    delay =
      (fun ~sender:_ ~dst:_ ~send_time:_ ~msg_index:_ ~payload:_ ->
        let t = Random.State.int rng (grain + 1) in
        let frac = Rat.of_ints t grain in
        Rat.add tau_minus (Rat.mul frac (Rat.sub tau_plus tau_minus)));
  }

(** Fully asynchronous scheduler: delays uniform on [[0, max_delay]]
    (zero-delay messages allowed, as in the ABC model). *)
let async_scheduler ~rng ~max_delay ?(grain = 1000) () =
  {
    delay =
      (fun ~sender:_ ~dst:_ ~send_time:_ ~msg_index:_ ~payload:_ ->
        let t = Random.State.int rng (grain + 1) in
        Rat.mul (Rat.of_ints t grain) max_delay);
  }

(** Fixed-delay scheduler (a degenerate Θ with τ− = τ+). *)
let constant_scheduler d =
  { delay = (fun ~sender:_ ~dst:_ ~send_time:_ ~msg_index:_ ~payload:_ -> d) }

(** Growing-delay scheduler (Fig. 9 / the spacecraft-formation example
    of Section 5.3): messages between processes in different {e
    clusters} have delays that grow linearly with send time — they
    increase without bound, which no bounded-delay model can express —
    while intra-cluster delays stay within [[intra_min, intra_max]]. *)
let growing_scheduler ~rng ~cluster_of ~intra_min ~intra_max ~inter_base ~growth_rate
    ?(grain = 1000) () =
  {
    delay =
      (fun ~sender ~dst ~send_time ~msg_index:_ ~payload:_ ->
        if cluster_of sender = cluster_of dst then begin
          let t = Random.State.int rng (grain + 1) in
          let frac = Rat.of_ints t grain in
          Rat.add intra_min (Rat.mul frac (Rat.sub intra_max intra_min))
        end
        else Rat.add inter_base (Rat.mul growth_rate send_time));
  }

(** ◇-model scheduler: chaotic delays (uniform on [[0, chaos_max]],
    zero allowed) for messages sent before the global stabilization
    time [gst], Θ-bounded delays from then on.  Executions are
    eventually-ABC admissible (Section 6's ◇ABC / ?◇ABC variants):
    some prefix may violate any given Ξ, but every relevant cycle
    lying after a consistent cut around [gst] satisfies
    [Ξ > tau_plus/tau_minus]. *)
let eventually_theta_scheduler ~rng ~gst ~chaos_max ~tau_minus ~tau_plus ?(grain = 1000)
    () =
  let chaos = async_scheduler ~rng ~max_delay:chaos_max ~grain () in
  let steady = theta_scheduler ~rng ~tau_minus ~tau_plus ~grain () in
  {
    delay =
      (fun ~sender ~dst ~send_time ~msg_index ~payload ->
        if Rat.compare send_time gst < 0 then
          chaos.delay ~sender ~dst ~send_time ~msg_index ~payload
        else steady.delay ~sender ~dst ~send_time ~msg_index ~payload);
  }

(** Adversarial targeted scheduler: like Θ on [tau_minus, tau_plus] but
    messages selected by [victim] get delay [stretched].  Used to
    construct executions that are ABC-admissible for a given Ξ yet
    violate the Θ assumption for every Θ (arbitrarily slow isolated
    messages, cf. Fig. 1 and Section 5.2). *)
let targeted_scheduler ~rng ~tau_minus ~tau_plus ~victim ~stretched ?(grain = 1000) ()
    =
  let base = theta_scheduler ~rng ~tau_minus ~tau_plus ~grain () in
  {
    delay =
      (fun ~sender ~dst ~send_time ~msg_index ~payload ->
        if victim ~sender ~dst ~msg_index then stretched ~send_time
        else base.delay ~sender ~dst ~send_time ~msg_index ~payload);
  }

(* ------------------------------------------------------------------ *)
(* Post-hoc analyses *)

(** Events of the faithful graph annotated with the algorithm states
    reached, for algorithm-level analyses (clock values per event). *)
let faithful_states result =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun te ->
      match (te.tr_faithful_id, te.tr_state_after) with
      | Some id, Some s -> Hashtbl.replace tbl id s
      | _ -> ())
    result.trace;
  tbl

(* ------------------------------------------------------------------ *)
(* Choice-point sessions *)

(* Ready (undelivered) message.  [re_id] is a dense envelope id in
   posting order (wake-ups are 0..n-1); [re_posted_at] is the delivery
   index of the step that posted it, -1 for the initial wake-ups.  Both
   are what an external explorer needs to reconstruct causality. *)
type 'm ready_env = { re_id : int; re_posted_at : int; re_env : 'm envelope }

(* Undo journal frame: everything one delivery can touch, captured on
   entry to {!Session.deliver}.  The ready list and trace are immutable
   (persistent) lists, so saving the old head reference is O(1) and
   restoring it is exact; the graphs are mutable but append-only, so a
   watermark pair per graph suffices ({!Graph.truncate}).  A delivery
   mutates fault state only at the destination, so one saved triple per
   frame restores it. *)
type ('s, 'm) undo_frame = {
  u_ready : 'm ready_env list;
  u_trace : 's trace_entry list;
  u_dst : int;
  u_state : 's option;  (* ss_states.(u_dst) *)
  u_steps : int;  (* fs_steps.(u_dst) *)
  u_recv : int;  (* fs_recv_seen.(u_dst) *)
  u_drops : int;  (* fs_down_drops.(u_dst) *)
  u_msg_index : int;
  u_posted : int;
  u_dropped : int;
  u_next_env : int;
  u_stop : bool;
  u_g_events : int;  (* faithful-graph watermark *)
  u_g_edges : int;
  u_f_events : int;  (* full-graph watermark *)
  u_f_edges : int;
}

type ('s, 'm) session = {
  ss_cfg : ('s, 'm) config;
  ss_graph : Graph.t;
  ss_full : Graph.t;
  ss_states : 's option array;
  ss_fs : fault_state;
  mutable ss_trace : 's trace_entry list;
  mutable ss_ready : 'm ready_env list;  (* posting order *)
  mutable ss_msg_index : int;
  mutable ss_posted : int;
  mutable ss_dropped : int;
  mutable ss_delivered : int;
  mutable ss_stop : bool;
  mutable ss_next_env : int;
  ss_record : bool;  (* keep an undo journal? *)
  mutable ss_journal : ('s, 'm) undo_frame list;  (* newest first *)
}

module Session = struct
  type ('s, 'm) t = ('s, 'm) session

  type info = {
    i_env : int;
    i_sender : int;
    i_dst : int;
    i_posted_at : int;
    i_correct : bool;
    i_faithful_src : int option;
  }

  let info_of re =
    {
      i_env = re.re_id;
      i_sender = re.re_env.env_sender;
      i_dst = re.re_env.env_dst;
      i_posted_at = re.re_posted_at;
      i_correct = re.re_env.env_sender_correct;
      i_faithful_src = re.re_env.env_send_faithful;
    }

  let create ?(record = false) (cfg : ('s, 'm) config) : ('s, 'm) t =
    let n = cfg.nprocs in
    let wakeups =
      List.init n (fun p ->
          {
            re_id = p;
            re_posted_at = -1;
            re_env =
              {
                env_sender = -1;
                env_dst = p;
                env_payload = None;
                env_send_faithful = None;
                env_sender_correct = true;
              };
          })
    in
    {
      ss_cfg = cfg;
      ss_graph = Graph.create ~nprocs:n;
      ss_full = Graph.create ~nprocs:n;
      ss_states = Array.make n None;
      ss_fs = make_fault_state n;
      ss_trace = [];
      ss_ready = wakeups;
      ss_msg_index = 0;
      ss_posted = n;
      ss_dropped = 0;
      ss_delivered = 0;
      ss_stop = false;
      ss_next_env = n;
      ss_record = record;
      ss_journal = [];
    }

  let graph s = s.ss_graph

  (* A process's wake-up is its causally-first event: until it is
     delivered ([ss_states] still [None]), messages to that process are
     posted but not {e ready} — offering them as choices would step an
     unbooted algorithm.  No visible-emptiness deadlock: a hidden entry
     implies its destination's wake-up is itself still visible. *)
  let visible s =
    List.filter
      (fun re ->
        re.re_env.env_sender < 0 || s.ss_states.(re.re_env.env_dst) <> None)
      s.ss_ready

  let ready s = List.map info_of (visible s)

  let iter_ready s f =
    List.iter
      (fun re ->
        if re.re_env.env_sender < 0 || s.ss_states.(re.re_env.env_dst) <> None
        then
          f ~env:re.re_id ~dst:re.re_env.env_dst ~posted_at:re.re_posted_at)
      s.ss_ready
  let delivered s = s.ss_delivered
  let envelopes s = s.ss_next_env

  let finished s =
    s.ss_stop || s.ss_ready = [] || s.ss_delivered >= s.ss_cfg.max_events

  (* Execute the step triggered by [re] (already removed from the ready
     list).  Faithfully the same per-delivery machinery as {!run}, with
     logical time (the delivery index) in place of scheduler time: the
     faithful/full graph growth, fault bookkeeping, send-omission,
     plan handling (P_delay degrades to normal queueing, P_duplicate
     queues two copies back-to-back) and trace order are identical. *)
  let deliver_re s re =
    let cfg = s.ss_cfg in
    let n = cfg.nprocs in
    let env = re.re_env in
    let step_index = s.ss_delivered in
    let time = Rat.of_int step_index in
    let _full_ev = Graph.add_event ~time s.ss_full ~proc:env.env_dst in
    let p = env.env_dst in
    let is_wakeup = env.env_sender = -1 in
    let processes = will_process s.ss_fs cfg.faults p ~is_wakeup in
    if Obs.on () then begin
      Obs.instant "sim" "deliver"
        [ ("dst", Obs.I p); ("from", Obs.I env.env_sender); ("ok", Obs.B processes) ];
      if not processes then Obs.instant "sim" "fault" [ ("proc", Obs.I p) ]
    end;
    let faithful_id =
      if processes && env.env_sender_correct then begin
        let ev = Graph.add_event ~time s.ss_graph ~proc:p in
        (match env.env_send_faithful with
        | Some src -> ignore (Graph.add_message s.ss_graph ~src ~dst:ev.Event.id)
        | None -> ());
        Some ev.Event.id
      end
      else None
    in
    s.ss_delivered <- s.ss_delivered + 1;
    let processed, state_after, sends =
      if not processes then
        if is_wakeup && s.ss_states.(p) = None then begin
          let st, _ = (byz_algo cfg p).init ~self:p ~nprocs:n in
          (false, Some st, [])
        end
        else (false, s.ss_states.(p), [])
      else begin
        let algo = byz_algo cfg p in
        match (env.env_sender, env.env_payload, s.ss_states.(p)) with
        | -1, None, _ ->
            let st, out = algo.init ~self:p ~nprocs:n in
            s.ss_fs.fs_steps.(p) <- s.ss_fs.fs_steps.(p) + 1;
            (true, Some st, out)
        | sender, Some payload, Some st ->
            let st', out = algo.step ~self:p ~nprocs:n st ~sender payload in
            s.ss_fs.fs_steps.(p) <- s.ss_fs.fs_steps.(p) + 1;
            (true, Some st', out)
        | _ -> assert false
      end
    in
    s.ss_states.(p) <- state_after;
    let sender_correct_now = not (is_byz_fault cfg.faults.(p)) in
    let omitting = processed && sends_omitted s.ss_fs cfg.faults p in
    (* postings of this step, newest first; appended to the pending
       list in one rebuild below instead of one O(n) rebuild per post *)
    let posts = ref [] in
    List.iter
      (fun { dst; payload } ->
        let idx = s.ss_msg_index in
        s.ss_msg_index <- idx + 1;
        s.ss_posted <- s.ss_posted + 1;
        if omitting then begin
          s.ss_dropped <- s.ss_dropped + 1;
          if Obs.on () then
            Obs.instant "sim" "drop" [ ("idx", Obs.I idx); ("why", Obs.S "omission") ]
        end
        else begin
          let enqueue ~dst =
            if Obs.on () then
              Obs.instant "sim" "send" [ ("dst", Obs.I dst); ("idx", Obs.I idx) ];
            let env' =
              {
                env_sender = p;
                env_dst = dst;
                env_payload = Some payload;
                env_send_faithful = (if sender_correct_now then faithful_id else None);
                env_sender_correct = sender_correct_now;
              }
            in
            posts :=
              { re_id = s.ss_next_env; re_posted_at = step_index; re_env = env' }
              :: !posts;
            s.ss_next_env <- s.ss_next_env + 1
          in
          match List.assoc_opt idx cfg.plan with
          | None | Some (P_delay _) -> enqueue ~dst
          | Some P_drop ->
              s.ss_dropped <- s.ss_dropped + 1;
              if Obs.on () then
                Obs.instant "sim" "drop" [ ("idx", Obs.I idx); ("why", Obs.S "plan") ]
          | Some (P_misdirect d) -> enqueue ~dst:d
          | Some (P_duplicate _) ->
              enqueue ~dst;
              s.ss_posted <- s.ss_posted + 1;
              enqueue ~dst
        end)
      sends;
    if !posts <> [] then s.ss_ready <- s.ss_ready @ List.rev !posts;
    s.ss_trace <-
      {
        tr_proc = p;
        tr_sender = env.env_sender;
        tr_time = time;
        tr_faithful_id = faithful_id;
        tr_state_after = (if processed then state_after else None);
        tr_processed = processed;
      }
      :: s.ss_trace;
    if processed && Array.for_all Option.is_some s.ss_states then
      if cfg.stop_when (Array.map Option.get s.ss_states) then s.ss_stop <- true;
    info_of re

  let push_frame s dst =
    s.ss_journal <-
      {
        u_ready = s.ss_ready;
        u_trace = s.ss_trace;
        u_dst = dst;
        u_state = s.ss_states.(dst);
        u_steps = s.ss_fs.fs_steps.(dst);
        u_recv = s.ss_fs.fs_recv_seen.(dst);
        u_drops = s.ss_fs.fs_down_drops.(dst);
        u_msg_index = s.ss_msg_index;
        u_posted = s.ss_posted;
        u_dropped = s.ss_dropped;
        u_next_env = s.ss_next_env;
        u_stop = s.ss_stop;
        u_g_events = Graph.event_count s.ss_graph;
        u_g_edges = Graph.edge_count s.ss_graph;
        u_f_events = Graph.event_count s.ss_full;
        u_f_edges = Graph.edge_count s.ss_full;
      }
      :: s.ss_journal

  let deliver s k =
    if k < 0 then invalid_arg "Sim.Session.deliver: negative choice index";
    (* one pass over the pending list: find the [k]-th visible entry
       and unlink it (the suffix is shared, so the journal's captured
       list head stays valid) *)
    let rec split i acc = function
      | [] -> invalid_arg "Sim.Session.deliver: choice index out of range"
      | re :: rest ->
          if
            re.re_env.env_sender < 0
            || s.ss_states.(re.re_env.env_dst) <> None
          then
            if i = k then (re, List.rev_append acc rest)
            else split (i + 1) (re :: acc) rest
          else split i (re :: acc) rest
    in
    let re, remaining = split 0 [] s.ss_ready in
    if s.ss_record then push_frame s re.re_env.env_dst;
    s.ss_ready <- remaining;
    deliver_re s re

  let snapshot s = s.ss_delivered

  (* Roll the last delivery back.  Everything a delivery touches is
     either captured in the frame (scalars, the destination's algorithm
     state and fault counters, the persistent ready/trace list heads)
     or append-only and watermarked (the two graphs).  Algorithm states
     and payloads are immutable values, so restoring the old references
     is exact. *)
  let undo s =
    match s.ss_journal with
    | [] -> invalid_arg "Sim.Session.undo: nothing recorded to undo"
    | fr :: rest ->
        Graph.truncate s.ss_graph ~events:fr.u_g_events ~edges:fr.u_g_edges;
        Graph.truncate s.ss_full ~events:fr.u_f_events ~edges:fr.u_f_edges;
        s.ss_states.(fr.u_dst) <- fr.u_state;
        s.ss_fs.fs_steps.(fr.u_dst) <- fr.u_steps;
        s.ss_fs.fs_recv_seen.(fr.u_dst) <- fr.u_recv;
        s.ss_fs.fs_down_drops.(fr.u_dst) <- fr.u_drops;
        s.ss_trace <- fr.u_trace;
        s.ss_ready <- fr.u_ready;
        s.ss_msg_index <- fr.u_msg_index;
        s.ss_posted <- fr.u_posted;
        s.ss_dropped <- fr.u_dropped;
        s.ss_next_env <- fr.u_next_env;
        s.ss_stop <- fr.u_stop;
        s.ss_delivered <- s.ss_delivered - 1;
        s.ss_journal <- rest

  let undo_to s target =
    if target > s.ss_delivered then
      invalid_arg "Sim.Session.undo_to: target beyond the current point";
    while s.ss_delivered > target do
      undo s
    done

  let result ?(allow_unwoken = false) ?(who = "Sim.Session.result") s =
    let final_states =
      Array.mapi
        (fun p st ->
          match st with
          | Some st -> st
          | None ->
              if allow_unwoken then
                (* same convention as a Crash 0 process: the initial
                   state is well-defined even if never acted upon *)
                fst ((byz_algo s.ss_cfg p).init ~self:p ~nprocs:s.ss_cfg.nprocs)
              else invalid_arg (Printf.sprintf "%s: process %d never woke up" who p))
        s.ss_states
    in
    {
      graph = s.ss_graph;
      full_graph = s.ss_full;
      final_states;
      trace = Array.of_list (List.rev s.ss_trace);
      delivered = s.ss_delivered;
      undelivered = List.length s.ss_ready;
      posted = s.ss_posted;
      dropped = s.ss_dropped;
    }
end

(** Replay an externally chosen delivery sequence: choice [k] of the
    array picks the [k]-th entry of the ready list (posting order) at
    that point; out-of-range choices saturate at the last entry, and an
    exhausted array continues FIFO (choice 0) to a maximal execution.
    A schedule may starve a wake-up within the budget, so the result is
    built with the unwoken-processes fallback. *)
let run_scheduled (cfg : ('s, 'm) config) ~(choices : int array) : ('s, 'm) result =
  let s = Session.create cfg in
  let i = ref 0 in
  while not (Session.finished s) do
    let m = List.length (Session.visible s) in
    let c = if !i < Array.length choices then choices.(!i) else 0 in
    let c = if c < 0 then 0 else if c >= m then m - 1 else c in
    ignore (Session.deliver s c);
    incr i
  done;
  Session.result ~allow_unwoken:true ~who:"Sim.run_scheduled" s

(* ------------------------------------------------------------------ *)
(* Oracle-guided deferring adversary *)

(** [run_deferring cfg ~xi ~victim] runs like {!run} but replaces the
    time-based scheduler with an {e adaptive adversary} that tries to
    defer every message selected by [victim] for as long as the ABC
    condition for [xi] allows:

    before delivering the oldest non-victim message [m], the adversary
    checks — on the recorded execution graph extended with [m]'s
    receive event followed by the victim's receive event — whether the
    deferral would still be admissible.  If yes, [m] is delivered and
    the victim keeps waiting; otherwise the victim is delivered
    immediately (the last admissible moment).

    The resulting executions sit exactly at the admissibility boundary:
    this is the adversary behind the paper's observation that the ABC
    condition "facilitates timing out message chains" — the deferral a
    victim can suffer is bounded by the Ξ-ratio of the cycles its late
    arrival would close (cf. Fig. 3 and the S1 sweep).

    Victim messages are identified by sender and destination.  Events
    are stamped with a logical time (delivery index) rather than the
    scheduler's real time.  Implemented over {!Session}: the ready list
    in posting order, partitioned on the victim predicate, is exactly
    the pending/deferred FIFO pair of the original formulation. *)
let run_deferring (cfg : ('s, 'm) config) ~xi
    ~(victim : sender:int -> dst:int -> bool) : ('s, 'm) result =
  let s = Session.create cfg in
  (* would delivering the given messages (in order) on top of the
     recorded graph still be admissible?  Asked as a speculative
     extension of an incremental checker attached to the faithful
     graph: committed growth is absorbed by delta relaxation and the
     hypothetical tail is rolled back, instead of copying the whole
     graph and re-running Bellman–Ford per query.  The adversary
     maintains the invariant that the current graph extended with the
     whole deferred queue is admissible, so forced deliveries (of
     queue prefixes) can never violate. *)
  let checker = Abc_check.Checker.create s.ss_graph ~xi in
  let extension_admissible (res : 'm ready_env list) =
    Abc_check.Checker.spec_begin checker;
    List.iter
      (fun re ->
        let env = re.re_env in
        if env.env_sender_correct then begin
          let ev = Abc_check.Checker.spec_add_event checker ~proc:env.env_dst in
          match env.env_send_faithful with
          | Some src -> Abc_check.Checker.spec_add_message checker ~src ~dst:ev
          | None -> ()
        end)
      res;
    let ok = Abc_check.Checker.spec_admissible checker in
    Abc_check.Checker.spec_abort checker;
    if Obs.on () then
      Obs.instant "sim" "adm"
        [ ("ok", Obs.B ok); ("pending", Obs.I (List.length res)) ];
    ok
  in
  let is_victim re =
    let env = re.re_env in
    env.env_sender >= 0 && env.env_sender_correct
    && victim ~sender:env.env_sender ~dst:env.env_dst
  in
  let take re =
    s.ss_ready <- List.filter (fun re' -> re'.re_id <> re.re_id) s.ss_ready;
    ignore (Session.deliver_re s re)
  in
  let live () =
    (not s.ss_stop) && s.ss_ready <> [] && s.ss_delivered < cfg.max_events
  in
  while live () do
    (* re-establish the queue invariant: new victim messages may have
       been appended during the last step; release queue heads until
       deferring the rest is admissible again *)
    let rec release () =
      match List.filter is_victim s.ss_ready with
      | v :: _ as dq when not (extension_admissible dq) ->
          take v;
          release ()
      | _ -> ()
    in
    release ();
    if live () then begin
      match (List.filter (fun re -> not (is_victim re)) s.ss_ready,
             List.filter is_victim s.ss_ready)
      with
      | [], v :: _ ->
          (* nothing else to deliver: the victim must arrive eventually *)
          take v
      | next :: _, [] -> take next
      | next :: _, (v :: _ as dq) ->
          if extension_admissible (next :: dq) then take next else take v
      | [], [] -> assert false
    end
  done;
  Session.result ~allow_unwoken:false ~who:"Sim.run_deferring" s
