(** Harness-level nemesis: structured faults injected into the shard
    runner {e itself} — the same philosophy as [lib/byz], aimed at our
    own supervisor/worker protocol instead of the simulated processes.

    A plan is a comma-separated spec, deterministic by construction
    (faults key on worker id and per-worker unit ordinal, never on
    time):

    {v
      kill:W@S      worker W SIGKILLs itself after sending its S-th
                    result — death exactly at a shard boundary
      stall:W@S     worker W stops heartbeating and sleeps forever
                    instead of computing its S-th unit (the SIGSTOP
                    shape: alive, silent, holding a shard)
      corrupt:W@S   worker W answers its S-th unit with a CRC-broken
                    frame, then continues normally
      trunc:W@S     worker W writes half a frame header for its S-th
                    unit and SIGKILLs itself mid-write
      dup:W@S       worker W sends its S-th result twice (the late
                    duplicate-reply shape)
      flip:W@S      worker W sends a well-formed frame whose payload
                    checksum does not match its evals — a {e divergent}
                    shard result, exercising quarantine + re-run
      skill@S       the supervisor itself dies (raises
                    {!Supervisor_killed}) right after merging and
                    checkpointing its S-th unit — the --resume test
    v}

    Network faults, for socket workers ([abc serve]); on the pipe
    transport they are inert (a pipe has no connections to refuse):

    {v
      nrefuse:W@K   serve worker W slams its K-th {e connection} shut
                    before the handshake — the connect-refused shape
                    (K counts connections, not units)
      ndrop:W@S     worker W computes its S-th unit, writes half the
                    result frame, and drops the connection — the
                    mid-frame disconnect; the process survives and
                    accepts the reconnect
      npartial:W@S  worker W dribbles its S-th result out in tiny
                    delayed writes — a benign fault proving the
                    supervisor reassembles frames across TCP segment
                    boundaries
      ndup:W@S      after its S-th result, a {e self-registering}
                    worker (abc serve --connect) opens a duplicate
                    registration, so the supervisor sees the same
                    worker twice; inert for listening workers
    v}

    Ordinals [S] are 1-based.  Worker ids name {e initial} spawn slots;
    replacement workers get fresh ids beyond the initial range, so a
    fault fires at most once and a re-dispatched shard lands on a
    clean worker.  Socket workers keep their id (and their ordinal
    counters) across reconnects — their faults are keyed on lifetime
    totals of the serve process, deterministic for a given dispatch
    history. *)

type fault =
  | Kill
  | Stall
  | Corrupt
  | Trunc
  | Dup
  | Flip
  | NRefuse
  | NDrop
  | NPartial
  | NDup

type t = {
  worker_faults : (int * int * fault) list;
      (** (worker id, 1-based unit ordinal, fault) *)
  supervisor_kill : int option;  (** merged-unit count to die after *)
}

let none = { worker_faults = []; supervisor_kill = None }
let is_none t = t.worker_faults = [] && t.supervisor_kill = None

exception Supervisor_killed of int
(** Raised by the supervisor after merging the configured number of
    units (checkpoint already fsync'd); the CLI lets it escape as a
    crash, tests catch it and resume. *)

let fault_name = function
  | Kill -> "kill"
  | Stall -> "stall"
  | Corrupt -> "corrupt"
  | Trunc -> "trunc"
  | Dup -> "dup"
  | Flip -> "flip"
  | NRefuse -> "nrefuse"
  | NDrop -> "ndrop"
  | NPartial -> "npartial"
  | NDup -> "ndup"

let fault_of_name = function
  | "kill" -> Some Kill
  | "stall" -> Some Stall
  | "corrupt" -> Some Corrupt
  | "trunc" -> Some Trunc
  | "dup" -> Some Dup
  | "flip" -> Some Flip
  | "nrefuse" -> Some NRefuse
  | "ndrop" -> Some NDrop
  | "npartial" -> Some NPartial
  | "ndup" -> Some NDup
  | _ -> None

let to_string t =
  String.concat ","
    (List.map
       (fun (w, s, f) -> Printf.sprintf "%s:%d@%d" (fault_name f) w s)
       t.worker_faults
    @ match t.supervisor_kill with
      | None -> []
      | Some s -> [ Printf.sprintf "skill@%d" s ])

let parse (spec : string) : (t, string) result =
  let items =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc skill = function
    | [] -> Ok { worker_faults = List.rev acc; supervisor_kill = skill }
    | item :: rest -> (
        match String.index_opt item '@' with
        | None -> Error (Printf.sprintf "nemesis item %S: missing '@ordinal'" item)
        | Some at -> (
            let head = String.sub item 0 at in
            let ord = String.sub item (at + 1) (String.length item - at - 1) in
            match int_of_string_opt ord with
            | None | Some 0 ->
                Error
                  (Printf.sprintf "nemesis item %S: ordinal must be a positive int" item)
            | Some s when s < 0 ->
                Error
                  (Printf.sprintf "nemesis item %S: ordinal must be a positive int" item)
            | Some s -> (
                if head = "skill" then
                  match skill with
                  | Some _ -> Error "nemesis: duplicate skill@ item"
                  | None -> go acc (Some s) rest
                else
                  match String.index_opt head ':' with
                  | None ->
                      Error
                        (Printf.sprintf "nemesis item %S: expected FAULT:WORKER@ORDINAL" item)
                  | Some colon -> (
                      let fname = String.sub head 0 colon in
                      let wid = String.sub head (colon + 1) (String.length head - colon - 1) in
                      match (fault_of_name fname, int_of_string_opt wid) with
                      | None, _ ->
                          Error (Printf.sprintf "nemesis item %S: unknown fault %S" item fname)
                      | _, None ->
                          Error (Printf.sprintf "nemesis item %S: bad worker id %S" item wid)
                      | Some f, Some w when w >= 0 -> go ((w, s, f) :: acc) skill rest
                      | _ -> Error (Printf.sprintf "nemesis item %S: bad worker id %S" item wid)))))
  in
  go [] None items

(** The fault worker [w] must inject on its [ordinal]-th assigned
    unit, if any.  At most one fault per (worker, ordinal): the first
    listed wins.  {!NRefuse} is connection-keyed, not unit-keyed, so
    it never fires here — see {!conn_fault_for}. *)
let fault_for t ~worker ~ordinal =
  List.find_map
    (fun (w, s, f) ->
      if w = worker && s = ordinal && f <> NRefuse then Some f else None)
    t.worker_faults

(** Should worker [w] refuse its [conn]-th accepted (or dialed)
    connection?  Only {!NRefuse} keys on connection ordinals. *)
let conn_fault_for t ~worker ~conn =
  List.exists
    (fun (w, s, f) -> w = worker && s = conn && f = NRefuse)
    t.worker_faults

(** The spec substring a worker needs (its own faults only), for the
    [ABC_DIST_WORKER] environment handshake. *)
let worker_spec t ~worker =
  to_string
    {
      worker_faults = List.filter (fun (w, _, _) -> w = worker) t.worker_faults;
      supervisor_kill = None;
    }
