(** Length-prefixed, CRC-guarded frames over byte pipes.

    The shard protocol runs over plain [stdin]/[stdout] pipes, so a
    dying or malicious worker can hand the supervisor {e any} byte
    sequence: a frame cut mid-header, a frame whose payload was
    scribbled over, a valid frame repeated.  Every frame therefore
    carries a magic, a type byte, a big-endian payload length and a
    CRC-32 of the payload:

    {v 'A' 'B' <type> <len:4 BE> <crc32:4 BE> <payload:len> v}

    The supervisor parses incrementally ({!parser}); any violation —
    bad magic, unknown type, implausible length, CRC mismatch — is
    {e unrecoverable} for that stream ([Error]), because after
    corruption there is no way to find the next frame boundary without
    trusting the corrupted bytes.  The caller's move is to kill the
    worker and re-dispatch its work, never to resynchronize.

    The worker side reads blocking ({!read_blocking}) — its peer is
    the supervisor, and a corrupt supervisor frame is equally fatal.

    {!write_garbage} and {!write_truncated} exist for the harness
    nemesis: a deliberately CRC-broken frame and a frame cut short
    mid-header. *)

(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — table-based, no
   external dependency.  Int32 keeps it exact on 32- and 64-bit. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 (s : string) ~pos ~len : int32 =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

type msg =
  | M_spec of string  (** marshaled {!Work.spec}, supervisor → worker *)
  | M_request of { unit_id : int; lo : int; hi : int }
  | M_heartbeat  (** worker liveness, sent while a unit computes *)
  | M_done of { unit_id : int; blob : string }  (** marshaled {!Work.blob} *)
  | M_error of { unit_id : int; message : string }
      (** the unit raised in the worker; the worker itself is alive *)
  | M_quit  (** supervisor → worker: drain and exit 0 *)

(* A payload length beyond the cap is treated as corruption, not as a
   frame to wait for — it would otherwise make the reader buffer (or
   [Bytes.create]) unbounded garbage before detecting the bad CRC.
   The default is generous; [--max-frame] tightens it per run, and
   both the incremental parser and the blocking reader enforce it
   {e before} allocating the payload. *)
let max_payload = 256 * 1024 * 1024

let type_byte = function
  | M_spec _ -> 'S'
  | M_request _ -> 'R'
  | M_heartbeat -> 'H'
  | M_done _ -> 'D'
  | M_error _ -> 'E'
  | M_quit -> 'Q'

let put_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let get_u32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let payload_of = function
  | M_spec s -> s
  | M_request { unit_id; lo; hi } -> Printf.sprintf "%d %d %d" unit_id lo hi
  | M_heartbeat -> ""
  | M_done { unit_id; blob } ->
      let b = Buffer.create (String.length blob + 4) in
      put_u32 b unit_id;
      Buffer.add_string b blob;
      Buffer.contents b
  | M_error { unit_id; message } ->
      let b = Buffer.create (String.length message + 4) in
      put_u32 b unit_id;
      Buffer.add_string b message;
      Buffer.contents b
  | M_quit -> ""

let msg_of_payload ty payload =
  match ty with
  | 'S' -> Ok (M_spec payload)
  | 'R' -> (
      match String.split_on_char ' ' payload with
      | [ u; l; h ] -> (
          match (int_of_string_opt u, int_of_string_opt l, int_of_string_opt h) with
          | Some unit_id, Some lo, Some hi -> Ok (M_request { unit_id; lo; hi })
          | _ -> Error "malformed request payload")
      | _ -> Error "malformed request payload")
  | 'H' -> Ok M_heartbeat
  | 'D' ->
      if String.length payload < 4 then Error "short done payload"
      else
        Ok
          (M_done
             {
               unit_id = get_u32 payload 0;
               blob = String.sub payload 4 (String.length payload - 4);
             })
  | 'E' ->
      if String.length payload < 4 then Error "short error payload"
      else
        Ok
          (M_error
             {
               unit_id = get_u32 payload 0;
               message = String.sub payload 4 (String.length payload - 4);
             })
  | 'Q' -> Ok M_quit
  | c -> Error (Printf.sprintf "unknown frame type %C" c)

let encode (m : msg) : string =
  let payload = payload_of m in
  let b = Buffer.create (String.length payload + 11) in
  Buffer.add_string b "AB";
  Buffer.add_char b (type_byte m);
  put_u32 b (String.length payload);
  put_u32 b
    (Int32.to_int (crc32 payload ~pos:0 ~len:(String.length payload))
    land 0xFFFFFFFF);
  Buffer.add_string b payload;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Writing *)

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)
  end

let write fd (m : msg) =
  let s = encode m in
  write_all fd s 0 (String.length s)

(** A frame whose CRC cannot match its payload: header promises one
    payload, the bytes on the wire are different.  For the nemesis. *)
let write_garbage fd =
  let good = encode (M_heartbeat) in
  (* flip the CRC bytes of an otherwise valid frame *)
  let b = Bytes.of_string good in
  Bytes.set b 7 (Char.chr (Char.code (Bytes.get b 7) lxor 0xFF));
  write_all fd (Bytes.to_string b) 0 (Bytes.length b)

(** Half a header, then nothing — what a worker killed mid-write
    leaves on the pipe.  For the nemesis. *)
let write_truncated fd =
  let s = encode (M_done { unit_id = 0; blob = "truncated" }) in
  write_all fd s 0 (min 7 (String.length s))

(* ------------------------------------------------------------------ *)
(* Incremental parsing (supervisor side) *)

(** The worker handshake: the first thing a worker writes on its frame
    channel.  Everything {e before} it is preamble the host binary
    leaked (a test-harness banner, a stray printf during module
    initialization — anything that ran before {!Worker.maybe_run}
    could claim the fd) and is discarded; everything after is framed,
    strictly.  A stream that produces this much output without the
    marker is not a worker. *)
let hello = "ABCDIST-WORKER-1\n"

let max_preamble = 65536

type parser = { buf : Buffer.t; mutable await_hello : bool; max : int }

let parser_create ?(await_hello = false) ?(max_payload = max_payload) () =
  if max_payload < 1 then invalid_arg "Frame.parser_create: max_payload must be >= 1";
  { buf = Buffer.create 4096; await_hello; max = max_payload }

let awaiting_hello p = p.await_hello

let feed p (b : Bytes.t) n = Buffer.add_subbytes p.buf b 0 n

(* First index of [hello] in [data], if any. *)
let find_hello data =
  let n = String.length data and hn = String.length hello in
  let rec go i =
    if i + hn > n then None
    else if String.sub data i hn = hello then Some i
    else go (i + 1)
  in
  go 0

(** Extract the next complete frame.  [Ok None] = need more bytes;
    [Error _] = the stream is corrupt and must be abandoned. *)
let rec next (p : parser) : (msg option, string) result =
  if p.await_hello then begin
    let data = Buffer.contents p.buf in
    match find_hello data with
    | Some i ->
        p.await_hello <- false;
        Buffer.clear p.buf;
        let tail = i + String.length hello in
        Buffer.add_substring p.buf data tail (String.length data - tail);
        next p
    | None ->
        if String.length data > max_preamble then
          Error "no worker handshake in the first 64KiB"
        else Ok None
  end
  else
  let data = Buffer.contents p.buf in
  let have = String.length data in
  if have < 11 then Ok None
  else if not (data.[0] = 'A' && data.[1] = 'B') then Error "bad frame magic"
  else
    let len = get_u32 data 3 in
    if len < 0 || len > p.max then
      Error (Printf.sprintf "frame length %d exceeds the %d-byte cap" len p.max)
    else if have < 11 + len then Ok None
    else
      let crc_hdr = get_u32 data 7 in
      let crc_real = Int32.to_int (crc32 data ~pos:11 ~len) land 0xFFFFFFFF in
      if crc_hdr <> crc_real then Error "frame crc mismatch"
      else
        match msg_of_payload data.[2] (String.sub data 11 len) with
        | Error _ as e -> e
        | Ok m ->
            Buffer.clear p.buf;
            Buffer.add_substring p.buf data (11 + len) (have - 11 - len);
            Ok (Some m)

(* ------------------------------------------------------------------ *)
(* Blocking read (worker side) *)

let really_read fd b pos len =
  let got = ref 0 in
  (try
     while !got < len do
       let n = Unix.read fd b (pos + !got) (len - !got) in
       if n = 0 then raise Exit;
       got := !got + n
     done
   with Exit -> ());
  !got

let read_blocking ?(max_payload = max_payload) fd : (msg, string) result =
  let hdr = Bytes.create 11 in
  match really_read fd hdr 0 11 with
  | 0 -> Error "eof"
  | n when n < 11 -> Error "eof inside frame header"
  | _ ->
      let hs = Bytes.to_string hdr in
      if not (hs.[0] = 'A' && hs.[1] = 'B') then Error "bad frame magic"
      else
        let len = get_u32 hs 3 in
        if len < 0 || len > max_payload then
          Error (Printf.sprintf "frame length %d exceeds the %d-byte cap" len max_payload)
        else
          let payload = Bytes.create len in
          if really_read fd payload 0 len < len then
            Error "eof inside frame payload"
          else
            let ps = Bytes.to_string payload in
            let crc_real = Int32.to_int (crc32 ps ~pos:0 ~len) land 0xFFFFFFFF in
            if get_u32 hs 7 <> crc_real then Error "frame crc mismatch"
            else msg_of_payload hs.[2] ps
