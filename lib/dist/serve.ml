(** Socket worker: the remote end of a multi-machine campaign.

    [abc serve] speaks exactly the protocol the pipe worker speaks —
    {!Frame.hello}, then framed messages — but over a stream socket
    ({!Net.Transport}), in one of two provisioning shapes:

    - {e listen} ([abc serve --listen HOST:PORT]): the worker binds a
      socket and waits; the supervisor is given the address via
      [--workers] and dials in.  The worker serves one campaign
      connection at a time and goes back to accepting when it ends,
      so one long-lived process can serve many campaigns.
    - {e connect} ([abc serve --connect HOST:PORT]): the worker dials
      a supervisor running with [--listen] and {e self-registers}.
      If the connection drops before the supervisor says [M_quit],
      the worker redials with the same jittered backoff the
      supervisor uses, then gives up when its budget is spent.

    Per-connection lifecycle mirrors {!Worker.run}: write the
    handshake, spawn a heartbeat domain, answer [M_request]s with
    {!Worker.exec_reply} until [M_quit] or EOF.  Unit {e ordinals}
    (what the nemesis keys on) are lifetime totals of the process,
    shared across reconnects — a fault plan stays deterministic for a
    given dispatch history even when the connection bounces.

    The network nemesis faults live here: [nrefuse] (slam the K-th
    connection before the handshake), [ndrop] (half a result frame,
    then hang up — the process survives and serves the reconnect),
    [npartial] (dribble the result out in delayed single-byte writes),
    [ndup] (open a duplicate registration after a result; connect
    mode only). *)

module Transport = Net.Transport

let env_var = "ABC_DIST_SERVE"

type mode = Listen | Connect

type cfg = {
  sv_id : int;
  sv_mode : mode;
  sv_addr : Transport.addr;
  sv_nemesis : Nemesis.t;
  sv_max_frame : int;
  sv_once : bool;  (** exit after the first peer-ended connection *)
}

(* Writes from the request loop and the heartbeat domain share the
   transport; one mutex per connection keeps frames whole. *)
type cio = { lock : Mutex.t; tr : Transport.t }

let csend c m =
  Mutex.lock c.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.lock)
    (fun () -> Transport.write c.tr (Frame.encode m))

let craw c s =
  Mutex.lock c.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.lock)
    (fun () -> Transport.write c.tr s)

let say fmt = Printf.ksprintf (fun s -> Printf.eprintf "serve: %s\n%!" s) fmt

(* How a connection ended, which decides what happens next. *)
type conn_end =
  | C_quit  (** supervisor said [M_quit]: the campaign is over *)
  | C_peer  (** EOF / error from the peer: redial or re-accept *)
  | C_self  (** we hung up on purpose (ndrop): the peer will retry *)

(* ------------------------------------------------------------------ *)

(* Serve one established connection.  [ordinal] is the process-wide
   unit counter (shared with any duplicate-registration domain). *)
let serve_conn (cfg : cfg) ~(ordinal : int Atomic.t) ~redial (tr : Transport.t) :
    conn_end =
  let c = { lock = Mutex.create (); tr } in
  (match craw c Frame.hello with
  | () -> ()
  | exception _ -> ());
  let alive = Atomic.make true in
  let beating = Atomic.make true in
  let hb =
    Domain.spawn (fun () ->
        while Atomic.get alive do
          Unix.sleepf Worker.heartbeat_interval;
          if Atomic.get alive && Atomic.get beating then
            try csend c Frame.M_heartbeat with _ -> Atomic.set alive false
        done)
  in
  let spec : Work.spec option ref = ref None in
  let finish res =
    Atomic.set alive false;
    (try Domain.join hb with _ -> ());
    Transport.close tr;
    res
  in
  let fd = Transport.readable_fd tr in
  let rec loop () =
    match Frame.read_blocking ~max_payload:cfg.sv_max_frame fd with
    | Error _ -> finish C_peer
    | Ok (Frame.M_spec s) -> (
        match (Marshal.from_string s 0 : Work.spec) with
        | sp ->
            spec := Some sp;
            loop ()
        | exception _ -> finish C_peer)
    | Ok Frame.M_quit -> finish C_quit
    | Ok (Frame.M_heartbeat | Frame.M_done _ | Frame.M_error _) -> finish C_peer
    | Ok (Frame.M_request { unit_id; lo; hi }) -> (
        let ord = Atomic.fetch_and_add ordinal 1 + 1 in
        match !spec with
        | None -> finish C_peer (* request before spec *)
        | Some sp -> (
            match
              Nemesis.fault_for cfg.sv_nemesis ~worker:cfg.sv_id ~ordinal:ord
            with
            | Some Nemesis.Stall ->
                Atomic.set beating false;
                while true do
                  Unix.sleepf 3600.0
                done;
                assert false
            | Some Nemesis.Trunc ->
                (try craw c (String.sub (Frame.encode Frame.M_heartbeat) 0 5)
                 with _ -> ());
                Worker.kill_self ();
                assert false
            | Some Nemesis.Corrupt ->
                (try Frame.write_garbage fd with _ -> ());
                loop ()
            | Some Nemesis.NDrop ->
                (* compute the real reply, send half of it, hang up;
                   the process survives and serves the reconnect *)
                let reply =
                  Worker.exec_reply sp ~unit_id ~lo ~hi ~flip:false
                in
                let bytes = Frame.encode reply in
                (try craw c (String.sub bytes 0 (String.length bytes / 2))
                 with _ -> ());
                finish C_self
            | Some Nemesis.NPartial ->
                (* the same bytes, dribbled: proves the supervisor
                   reassembles frames across segment boundaries *)
                let reply =
                  Worker.exec_reply sp ~unit_id ~lo ~hi ~flip:false
                in
                let bytes = Frame.encode reply in
                let n = String.length bytes in
                let cut = min n 11 in
                (try
                   for i = 0 to cut - 1 do
                     craw c (String.sub bytes i 1);
                     Unix.sleepf 0.002
                   done;
                   craw c (String.sub bytes cut (n - cut))
                 with _ -> ());
                loop ()
            | fault ->
                let reply =
                  Worker.exec_reply sp ~unit_id ~lo ~hi
                    ~flip:(fault = Some Nemesis.Flip)
                in
                (match csend c reply with
                | () -> ()
                | exception _ -> ());
                (match fault with
                | Some Nemesis.Dup -> (
                    try csend c reply with _ -> ())
                | Some Nemesis.Kill -> Worker.kill_self ()
                | Some Nemesis.NDup ->
                    (* duplicate registration: a second dial serving
                       the same process-wide ordinal counter *)
                    redial ()
                | _ -> ());
                loop ()))
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* The two provisioning shapes *)

let redial_budget = 30

(* Deterministic jittered backoff for redials, same shape as the
   supervisor's (splitmix64 of (id, attempt)). *)
let backoff ~id ~attempt =
  let frac =
    let open Int64 in
    let z = add (of_int ((id * 777_767) + attempt)) 0x9E3779B97F4A7C15L in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = logxor z (shift_right_logical z 31) in
    to_float (logand z 0xFFFFFFL) /. 16_777_216.0
  in
  let exp = 0.05 *. (2.0 ** float_of_int (max 0 (attempt - 1))) in
  min 2.0 exp *. (1.0 +. ((frac -. 0.5) /. 2.0))

let run (cfg : cfg) : 'a =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let ordinal = Atomic.make 0 in
  let conns = ref 0 in
  (* dial the supervisor once more, serving the connection in a fresh
     domain — the ndup duplicate-registration fault (connect mode) *)
  let dup_redial () =
    match cfg.sv_mode with
    | Listen -> () (* a listening worker cannot self-register twice *)
    | Connect -> (
        match Transport.connect cfg.sv_addr with
        | Error e -> say "ndup redial failed: %s" e
        | Ok tr ->
            ignore
              (Domain.spawn (fun () ->
                   ignore (serve_conn cfg ~ordinal ~redial:(fun () -> ()) tr))))
  in
  match cfg.sv_mode with
  | Listen -> (
      match Transport.listen cfg.sv_addr with
      | Error e ->
          say "%s" e;
          exit 2
      | Ok l ->
          say "listening on %s (worker %d)"
            (Transport.addr_to_string (Transport.bound_addr l))
            cfg.sv_id;
          let rec accept_loop () =
            match Transport.accept l with
            | Error e ->
                say "accept: %s" e;
                accept_loop ()
            | Ok tr ->
                incr conns;
                if
                  Nemesis.conn_fault_for cfg.sv_nemesis ~worker:cfg.sv_id
                    ~conn:!conns
                then begin
                  (* nrefuse: slam the door before the handshake *)
                  Transport.close tr;
                  accept_loop ()
                end
                else begin
                  match serve_conn cfg ~ordinal ~redial:dup_redial tr with
                  | C_quit when cfg.sv_once ->
                      Transport.close_listener l;
                      exit 0
                  | C_peer when cfg.sv_once ->
                      Transport.close_listener l;
                      exit 0
                  | _ -> accept_loop ()
                end
          in
          accept_loop ())
  | Connect ->
      let rec dial_loop attempt =
        if attempt > redial_budget then begin
          say "supervisor unreachable after %d dials, giving up" redial_budget;
          exit 2
        end
        else begin
          incr conns;
          if
            Nemesis.conn_fault_for cfg.sv_nemesis ~worker:cfg.sv_id
              ~conn:!conns
          then begin
            (* nrefuse, connect shape: register, then slam the door
               before the handshake — the supervisor sees a silent
               connection die *)
            (match Transport.connect cfg.sv_addr with
            | Ok tr -> Transport.close tr
            | Error _ -> ());
            Unix.sleepf (backoff ~id:cfg.sv_id ~attempt);
            dial_loop (attempt + 1)
          end
          else
            match Transport.connect cfg.sv_addr with
            | Error e ->
                say "dial %s: %s (attempt %d)"
                  (Transport.addr_to_string cfg.sv_addr)
                  e attempt;
                Unix.sleepf (backoff ~id:cfg.sv_id ~attempt);
                dial_loop (attempt + 1)
            | Ok tr -> (
                match serve_conn cfg ~ordinal ~redial:dup_redial tr with
                | C_quit -> exit 0
                | C_self ->
                    (* our own ndrop hangup: the supervisor expects
                       the reconnect even under --once *)
                    Unix.sleepf (backoff ~id:cfg.sv_id ~attempt);
                    dial_loop (attempt + 1)
                | C_peer ->
                    if cfg.sv_once then exit 0;
                    Unix.sleepf (backoff ~id:cfg.sv_id ~attempt);
                    dial_loop (attempt + 1))
        end
      in
      dial_loop 1

(* ------------------------------------------------------------------ *)
(* Environment handshake (self-exec, mirrors {!Worker.maybe_run}) *)

(* "id=1;mode=listen;addr=unix:/tmp/w.sock;nem=ndrop:1@2;mf=4096;once=1" *)
let parse_env (s : string) : (cfg, string) result =
  let fields =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  let find k =
    List.find_map
      (fun f ->
        match String.index_opt f '=' with
        | Some i when String.sub f 0 i = k ->
            Some (String.sub f (i + 1) (String.length f - i - 1))
        | _ -> None)
      fields
  in
  match (find "id", find "mode", find "addr") with
  | None, _, _ -> Error (env_var ^ ": missing id=")
  | _, None, _ -> Error (env_var ^ ": missing mode=")
  | _, _, None -> Error (env_var ^ ": missing addr=")
  | Some id, Some mode, Some addr -> (
      match int_of_string_opt id with
      | None -> Error (env_var ^ ": bad id")
      | Some sv_id -> (
          match
            match mode with
            | "listen" -> Ok Listen
            | "connect" -> Ok Connect
            | m -> Error (env_var ^ ": bad mode " ^ m)
          with
          | Error e -> Error e
          | Ok sv_mode -> (
              match Transport.addr_of_string addr with
              | Error e -> Error (env_var ^ ": " ^ e)
              | Ok sv_addr -> (
                  let sv_max_frame =
                    match find "mf" with
                    | Some mf -> (
                        match int_of_string_opt mf with
                        | Some m when m >= 1 -> m
                        | _ -> Frame.max_payload)
                    | None -> Frame.max_payload
                  in
                  let sv_once = find "once" = Some "1" in
                  match find "nem" with
                  | None | Some "" ->
                      Ok
                        {
                          sv_id;
                          sv_mode;
                          sv_addr;
                          sv_nemesis = Nemesis.none;
                          sv_max_frame;
                          sv_once;
                        }
                  | Some nem -> (
                      match Nemesis.parse nem with
                      | Error e -> Error (env_var ^ ": " ^ e)
                      | Ok sv_nemesis ->
                          Ok
                            {
                              sv_id;
                              sv_mode;
                              sv_addr;
                              sv_nemesis;
                              sv_max_frame;
                              sv_once;
                            })))))

(** Call right after {!Worker.maybe_run} in any binary that may serve
    as a socket worker: if [ABC_DIST_SERVE] is set, enter the serve
    loop and never return.  A no-op otherwise. *)
let maybe_run () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some s -> (
      match parse_env s with
      | Ok cfg -> run cfg
      | Error e ->
          prerr_endline ("serve: " ^ e);
          exit 2)

(** The environment binding a test (or script) sets to self-exec a
    socket worker. *)
let env_binding ~id ~(mode : mode) ~(addr : Transport.addr)
    ~(nemesis : Nemesis.t) ?max_frame ?(once = false) () =
  let b = Buffer.create 64 in
  Printf.bprintf b "%s=id=%d;mode=%s;addr=%s" env_var id
    (match mode with Listen -> "listen" | Connect -> "connect")
    (Transport.addr_to_string addr);
  let nem = Nemesis.worker_spec nemesis ~worker:id in
  if nem <> "" then Printf.bprintf b ";nem=%s" nem;
  (match max_frame with
  | Some m -> Printf.bprintf b ";mf=%d" m
  | None -> ());
  if once then Buffer.add_string b ";once=1";
  Buffer.contents b
