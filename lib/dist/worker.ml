(** Shard worker: the child end of the [abc worker] protocol.

    A worker reads {!Frame} messages from stdin — first a [M_spec]
    describing the campaign, then [M_request]s naming unit ranges —
    executes each unit with {!Work.exec_unit} (Obs capture on, so the
    reply carries the per-shard trace digest) and writes [M_done]
    replies to stdout.  A background domain emits [M_heartbeat]
    frames every {!heartbeat_interval} seconds so the supervisor can
    tell "computing a long unit" from "stalled": the beat keeps going
    {e during} computation, and the stall nemesis silences it.

    Workers are spawned not as a separate binary but as {e this}
    binary re-executed with [ABC_DIST_WORKER] in the environment:
    {!maybe_run} at the top of an entry point turns any host
    executable (the CLI, the test runner, the bench harness) into its
    own worker, which is what lets the supervisor default to
    [Sys.executable_name] and keeps the protocol version trivially in
    lockstep with the spawner.  The documented CLI spelling
    [abc worker --id N] enters the same loop.

    Every nemesis fault a worker can inject ({!Nemesis.fault}) lives
    here, keyed on (worker id, per-worker unit ordinal) — fully
    deterministic, no clocks involved. *)

let heartbeat_interval = 0.25

let env_var = "ABC_DIST_WORKER"

(* Frame writes come from two domains (the main loop and the
   heartbeat domain), so they are serialized by one mutex — a torn
   frame would poison the whole stream. *)
type io = { lock : Mutex.t; fd : Unix.file_descr }

let send io m =
  Mutex.lock io.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock io.lock)
    (fun () -> Frame.write io.fd m)

let kill_self () = Unix.kill (Unix.getpid ()) Sys.sigkill

(* {!Obs.capture} is process-global (one start/drain pair at a time),
   so unit executions must never overlap within a process — the pipe
   worker is single-threaded anyway, but the socket worker ({!Serve})
   can hold several connections (the duplicate-registration nemesis),
   and an interleaved capture would corrupt both shard digests. *)
let exec_lock = Mutex.create ()

(** Compute the reply for one unit request — shared between the pipe
    worker below and the socket worker ({!Serve}).  A raising unit
    becomes [M_error] (the worker itself stays up); [flip] corrupts
    the verdict checksum, the divergent-shard nemesis. *)
let exec_reply (sp : Work.spec) ~unit_id ~lo ~hi ~flip : Frame.msg =
  Mutex.lock exec_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock exec_lock)
    (fun () ->
      match Work.exec_unit sp ~unit_id ~lo ~hi ~capture:true with
      | exception e -> Frame.M_error { unit_id; message = Printexc.to_string e }
      | blob ->
          let blob =
            if flip then
              {
                blob with
                Work.b_checksum = Digest.to_hex (Digest.string "divergent");
              }
            else blob
          in
          Frame.M_done { unit_id; blob = Work.encode_blob blob })

let run ~id ~(nemesis : Nemesis.t) : 'a =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* stdout IS the frame channel: claim the fd, then repoint fd 1 at
     stderr so a stray print from the host binary (a test-harness
     banner, a debug printf in an oracle) cannot tear a frame.
     Whatever the host had buffered on the stdout channel flushes to
     stderr after the repoint instead of landing between frames. *)
  let frame_fd = Unix.dup Unix.stdout in
  Unix.dup2 Unix.stderr Unix.stdout;
  (* handshake before anything else: the supervisor discards whatever
     the host binary printed before we claimed the fd, up to this
     marker, and is strict from here on *)
  Frame.write_all frame_fd Frame.hello 0 (String.length Frame.hello);
  let io = { lock = Mutex.create (); fd = frame_fd } in
  let alive = Atomic.make true in
  let beating = Atomic.make true in
  let hb =
    Domain.spawn (fun () ->
        while Atomic.get alive do
          Unix.sleepf heartbeat_interval;
          if Atomic.get alive && Atomic.get beating then
            try send io Frame.M_heartbeat with _ -> Atomic.set alive false
        done)
  in
  let spec : Work.spec option ref = ref None in
  let ordinal = ref 0 in
  let quit code =
    Atomic.set alive false;
    (try Domain.join hb with _ -> ());
    exit code
  in
  let rec loop () =
    match Frame.read_blocking Unix.stdin with
    | Error _ -> quit 0 (* supervisor gone or stream corrupt: nothing to do *)
    | Ok (Frame.M_spec s) ->
        (match (Marshal.from_string s 0 : Work.spec) with
        | sp -> spec := Some sp
        | exception _ -> quit 1);
        loop ()
    | Ok Frame.M_quit -> quit 0
    | Ok (Frame.M_heartbeat | Frame.M_done _ | Frame.M_error _) ->
        (* supervisor never sends these; treat as corruption *)
        quit 1
    | Ok (Frame.M_request { unit_id; lo; hi }) -> (
        incr ordinal;
        match !spec with
        | None -> quit 1 (* request before spec: protocol violation *)
        | Some sp -> (
            match Nemesis.fault_for nemesis ~worker:id ~ordinal:!ordinal with
            | Some Nemesis.Stall ->
                (* alive but silent, holding the shard: the heartbeat
                   timeout is the only way the supervisor gets it back *)
                Atomic.set beating false;
                while true do
                  Unix.sleepf 3600.0
                done;
                assert false
            | Some Nemesis.Trunc ->
                Frame.write_truncated io.fd;
                kill_self ();
                assert false
            | Some Nemesis.Corrupt ->
                (* a well-framed-looking reply whose CRC cannot match:
                   the supervisor must abandon this stream *)
                Frame.write_garbage io.fd;
                loop ()
            | fault ->
                let reply =
                  exec_reply sp ~unit_id ~lo ~hi
                    ~flip:(fault = Some Nemesis.Flip)
                in
                send io reply;
                (match fault with
                | Some Nemesis.Dup -> send io reply (* the late duplicate *)
                | Some Nemesis.Kill -> kill_self () (* at the shard boundary *)
                | _ -> ());
                loop ()))
  in
  loop ()

(* "id=3;nem=kill:3@1" *)
let parse_env (s : string) : (int * Nemesis.t, string) result =
  let fields =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  let find k =
    List.find_map
      (fun f ->
        match String.index_opt f '=' with
        | Some i when String.sub f 0 i = k ->
            Some (String.sub f (i + 1) (String.length f - i - 1))
        | _ -> None)
      fields
  in
  match find "id" with
  | None -> Error (env_var ^ ": missing id=")
  | Some id -> (
      match int_of_string_opt id with
      | None -> Error (env_var ^ ": bad id")
      | Some id -> (
          match find "nem" with
          | None | Some "" -> Ok (id, Nemesis.none)
          | Some nem -> (
              match Nemesis.parse nem with
              | Ok n -> Ok (id, n)
              | Error e -> Error (env_var ^ ": " ^ e))))

(** Call first thing in any binary that may serve as a worker: if
    [ABC_DIST_WORKER] is set, enter the worker loop and never return.
    A no-op otherwise. *)
let maybe_run () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some s -> (
      match parse_env s with
      | Ok (id, nemesis) -> run ~id ~nemesis
      | Error e ->
          prerr_endline ("worker: " ^ e);
          exit 2)

(** The environment binding the supervisor sets when spawning. *)
let env_binding ~id ~(nemesis : Nemesis.t) =
  let nem = Nemesis.worker_spec nemesis ~worker:id in
  if nem = "" then Printf.sprintf "%s=id=%d" env_var id
  else Printf.sprintf "%s=id=%d;nem=%s" env_var id nem
