(** Write-ahead checkpoint journal for sharded runs.

    Layout:
    {v
      header : "ABCDIST" <version:1> <fingerprint:32>   (40 bytes)
      record : <len:4 BE> <crc32:4 BE> <payload:len>    (repeated)
    v}

    The fingerprint is the hex MD5 of the {e canonical spec string}
    ({!Work.fingerprint}): a journal can only resume the exact
    campaign that wrote it — same seed, same case count, same oracle
    selection, same unit size — because unit ids are only meaningful
    against that partition.

    Durability contract: the header is written to a temp file,
    fsync'd, and renamed into place ([create]), so a journal either
    exists with a complete header or not at all; each accepted unit is
    appended as one CRC'd record and fsync'd before the supervisor
    counts it as merged ([append]).  A crash mid-append leaves a
    truncated or CRC-broken {e tail}, which [load] silently drops —
    that unit simply re-runs on resume.  A bad magic, unsupported
    version, or foreign fingerprint is a {e hard} error: resuming a
    different campaign's journal must fail loudly, not quietly re-run
    everything.

    Records are [(unit_id, blob)] pairs; on replayed or re-dispatched
    units the journal may contain several records for one id — the
    {e last} valid one wins, so a supervisor that re-ran a divergent
    shard just appends the arbitrated result. *)

let magic = "ABCDIST"
let version = '\001'

type t = { fd : Unix.file_descr; path : string }

let fsync fd = try Unix.fsync fd with Unix.Unix_error _ -> ()

let put_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let get_u32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let header ~fingerprint =
  if String.length fingerprint <> 32 then
    invalid_arg "Checkpoint: fingerprint must be 32 hex chars";
  magic ^ String.make 1 version ^ fingerprint

let header_len = 7 + 1 + 32

(** Create a fresh journal (truncating any previous file at [path]):
    header goes to [path ^ ".tmp"], fsync, rename — atomic on POSIX. *)
let create ~path ~fingerprint : t =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let h = header ~fingerprint in
  let n = Unix.write_substring fd h 0 (String.length h) in
  if n <> String.length h then failwith "Checkpoint.create: short header write";
  fsync fd;
  Unix.close fd;
  Unix.rename tmp path;
  let fd = Unix.openfile path [ O_WRONLY; O_APPEND ] 0o644 in
  { fd; path }

(* Header validation shared by {!load} and {!reopen}: magic, version
   and campaign fingerprint must all match before any byte of the
   journal is trusted. *)
let check_header ~path (data : string) ~fingerprint : (unit, string) result =
  if String.length data < header_len then
    Error (Printf.sprintf "checkpoint %s: truncated header" path)
  else if String.sub data 0 7 <> magic then
    Error (Printf.sprintf "checkpoint %s: bad magic (not a journal)" path)
  else if data.[7] <> version then
    Error
      (Printf.sprintf "checkpoint %s: version %d, this binary writes version %d"
         path (Char.code data.[7]) (Char.code version))
  else if String.sub data 8 32 <> fingerprint then
    Error
      (Printf.sprintf
         "checkpoint %s: fingerprint %s does not match this campaign (%s) — \
          wrong seed, case count, oracle selection or shard layout"
         path (String.sub data 8 32) fingerprint)
  else Ok ()

(** Reopen an existing journal for appending (after {!load}).
    Re-verifies the header even though {!load} already did: between
    the validation and the append — or between a [--resume] flag and
    whatever worker endpoint set it is mixed with — the path can have
    been swapped for a different campaign's journal, and appending
    foreign-partition unit ids must fail loudly, not corrupt a
    journal that would later resume cleanly. *)
let reopen ~path ~fingerprint : (t, string) result =
  match Unix.openfile path [ O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot open checkpoint %s: %s" path
           (Unix.error_message e))
  | fd ->
      let hdr = Bytes.create header_len in
      let got = ref 0 in
      (try
         while !got < header_len do
           let n = Unix.read fd hdr !got (header_len - !got) in
           if n = 0 then raise Exit;
           got := !got + n
         done
       with Exit -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match
        check_header ~path (Bytes.sub_string hdr 0 !got) ~fingerprint
      with
      | Error _ as e -> e
      | Ok () ->
          Ok { fd = Unix.openfile path [ O_WRONLY; O_APPEND ] 0o644; path }

let append (t : t) ~unit_id ~(blob : string) =
  let payload = Marshal.to_string (unit_id, blob) [] in
  let b = Buffer.create (String.length payload + 8) in
  put_u32 b (String.length payload);
  put_u32 b
    (Int32.to_int (Frame.crc32 payload ~pos:0 ~len:(String.length payload))
    land 0xFFFFFFFF);
  Buffer.add_string b payload;
  let s = Buffer.contents b in
  let rec w pos len =
    if len > 0 then begin
      let n = Unix.write_substring t.fd s pos len in
      w (pos + n) (len - n)
    end
  in
  w 0 (String.length s);
  fsync t.fd

let close (t : t) = try Unix.close t.fd with Unix.Unix_error _ -> ()

(** Load every valid record.  [Ok l] lists [(unit_id, blob)] in append
    order (callers apply last-wins); a corrupt or truncated {e tail}
    ends the list silently — that is the crash-mid-write recovery
    path.  [Error _] means the file cannot belong to this run: bad
    magic, unsupported version, or a fingerprint from a different
    campaign — each diagnostic says which. *)
let load ~path ~fingerprint : ((int * string) list, string) result =
  match Unix.openfile path [ O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot open checkpoint %s: %s" path
           (Unix.error_message e))
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let len = (Unix.fstat fd).st_size in
          let data = Bytes.create len in
          let got = ref 0 in
          (try
             while !got < len do
               let n = Unix.read fd data !got (len - !got) in
               if n = 0 then raise Exit;
               got := !got + n
             done
           with Exit -> ());
          let data = Bytes.sub_string data 0 !got in
          let have = String.length data in
          if have < header_len then
            Error (Printf.sprintf "checkpoint %s: truncated header" path)
          else if String.sub data 0 7 <> magic then
            Error (Printf.sprintf "checkpoint %s: bad magic (not a journal)" path)
          else if data.[7] <> version then
            Error
              (Printf.sprintf
                 "checkpoint %s: version %d, this binary writes version %d"
                 path (Char.code data.[7]) (Char.code version))
          else if String.sub data 8 32 <> fingerprint then
            Error
              (Printf.sprintf
                 "checkpoint %s: fingerprint %s does not match this campaign \
                  (%s) — wrong seed, case count, oracle selection or shard \
                  layout"
                 path (String.sub data 8 32) fingerprint)
          else begin
            let records = ref [] in
            let pos = ref header_len in
            (try
               while !pos + 8 <= have do
                 let rlen = get_u32 data !pos in
                 if rlen < 0 || rlen > Frame.max_payload then raise Exit;
                 if !pos + 8 + rlen > have then raise Exit (* truncated tail *);
                 let crc_hdr = get_u32 data (!pos + 4) in
                 let payload = String.sub data (!pos + 8) rlen in
                 let crc_real =
                   Int32.to_int (Frame.crc32 payload ~pos:0 ~len:rlen)
                   land 0xFFFFFFFF
                 in
                 if crc_hdr <> crc_real then raise Exit (* corrupt tail *);
                 (match (Marshal.from_string payload 0 : int * string) with
                 | r -> records := r :: !records
                 | exception _ -> raise Exit);
                 pos := !pos + 8 + rlen
               done
             with Exit -> ());
            Ok (List.rev !records)
          end)
