(** Deterministic work units and their results.

    A sharded run is described by a {!spec} — everything a worker
    needs to reproduce its slice of the campaign from scratch — and
    partitioned into fixed-size {e units} of consecutive item indices
    (fuzz case indices, mc frontier-task indices).  The partition is a
    pure function of the spec, {e independent of the shard count}:
    unit [k] always covers the same items no matter how many workers
    exist, which worker runs it, or how many times it is retried.
    That is what makes unit ids valid checkpoint keys and lets the
    merge produce byte-identical output for any shard count.

    A unit's result travels as a {!blob}: the marshaled payload plus
    two independent integrity witnesses.  [b_checksum] is recomputed
    {e by the supervisor} from the deserialized payload
    ({!payload_checksum}), so a worker whose computation diverged — or
    whose payload bytes were damaged in a way [Marshal] survives — is
    caught at merge time, not at report time.  [b_digest] is the
    worker's jobs-invariant Obs trace digest over the unit's scoped
    events; two executions of the same unit must agree on it, which
    arbitrates duplicate and re-dispatched replies. *)

type spec =
  | W_fuzz of {
      wf_seed : int;
      wf_cases : int;
      wf_boundary : bool;
      wf_shrink : bool;
      wf_oracles : string option;  (** raw [--oracles] spec; [None] = registry *)
    }
  | W_mc of {
      wm_line : string;  (** {!Fuzz.Replay.to_string} of the schedule-free box *)
      wm_dpor : bool;
      wm_incremental : bool;
      wm_tt : bool;
      wm_frontier : int;
    }

(* Unit sizes: small enough that a shard dying late loses little work
   and the dist-smoke matrix exercises many dispatches, large enough
   that framing cost stays invisible next to the work. *)
let fuzz_unit_cases = 16
let mc_unit_tasks = 4

let resolve_oracles = function
  | None -> Ok Fuzz.Oracle.registry
  | Some spec -> Fuzz.Oracle.select spec

let mc_case (line : string) : (Fuzz.Gen.case, string) result =
  match Fuzz.Replay.of_string line with
  | Error e -> Error (Printf.sprintf "dist mc spec line: %s" e)
  | Ok case ->
      if case.Fuzz.Gen.c_schedule <> [] then Error "dist mc spec line carries a schedule"
      else Ok case

let engine_of (s : spec) =
  match s with
  | W_mc { wm_incremental = false; _ } -> Mc.Explore.Replay
  | _ -> Mc.Explore.Incremental

(** Canonical one-line description of the spec {e and} its partition:
    the checkpoint fingerprint is the MD5 of this string, so resuming
    with a different seed, case count, oracle selection, mc flags or
    unit size fails the fingerprint check instead of merging
    mismatched units. *)
let canonical (s : spec) : string =
  match s with
  | W_fuzz { wf_seed; wf_cases; wf_boundary; wf_shrink; wf_oracles } ->
      Printf.sprintf "fuzz;seed=%d;cases=%d;boundary=%b;shrink=%b;oracles=%s;unit=%d"
        wf_seed wf_cases wf_boundary wf_shrink
        (match wf_oracles with None -> "-" | Some o -> o)
        fuzz_unit_cases
  | W_mc { wm_line; wm_dpor; wm_incremental; wm_tt; wm_frontier } ->
      Printf.sprintf "mc;line=%s;dpor=%b;engine=%s;tt=%b;frontier=%d;unit=%d"
        wm_line wm_dpor
        (if wm_incremental then "incremental" else "replay")
        wm_tt wm_frontier mc_unit_tasks

let fingerprint (s : spec) : string = Digest.to_hex (Digest.string (canonical s))

(** Total number of shardable items.  For mc this enumerates the
    frontier — cheap, deterministic, and re-done identically by every
    worker.  @raise Invalid_argument on an invalid spec. *)
let total_items (s : spec) : int =
  match s with
  | W_fuzz { wf_cases; _ } -> wf_cases
  | W_mc ({ wm_frontier; _ } as m) -> (
      match mc_case m.wm_line with
      | Error e -> invalid_arg e
      | Ok case ->
          Array.length
            (Obs.muted @@ fun () -> Mc.Driver.frontier_tasks ~frontier:wm_frontier case))

(** The unit partition: [(lo, hi)] item ranges, unit id = array index.
    A pure function of the spec. *)
let units (s : spec) : (int * int) array =
  let total = total_items s in
  let size = match s with W_fuzz _ -> fuzz_unit_cases | W_mc _ -> mc_unit_tasks in
  let n = (total + size - 1) / size in
  Array.init n (fun k -> (k * size, min total ((k + 1) * size)))

(* ------------------------------------------------------------------ *)
(* Execution *)

type fuzz_payload = {
  fp_evals : Fuzz.Campaign.case_eval array;  (** cases [lo..hi), in order *)
  fp_wall : float array;
  fp_alloc : float array;
}

type mc_payload = { mp_subtrees : Mc.Explore.subtree array }
(** frontier tasks [lo..hi), in order *)

type blob = {
  b_unit : int;
  b_digest : string;  (** worker Obs digest over the unit; [""] = not captured *)
  b_checksum : string;  (** {!payload_checksum} of [b_payload] *)
  b_payload : string;  (** marshaled {!fuzz_payload} / {!mc_payload} *)
}

let encode_blob (b : blob) : string = Marshal.to_string b []

let decode_blob (s : string) : (blob, string) result =
  match (Marshal.from_string s 0 : blob) with
  | b -> Ok b
  | exception _ -> Error "undecodable result blob"

(* Execute the raw unit work.  Fuzz cases carry their absolute index
   so Obs scopes (and hence digests) are placement-invariant. *)
let exec_payload (s : spec) ~lo ~hi : string =
  match s with
  | W_fuzz { wf_seed; wf_boundary; wf_shrink; wf_oracles; _ } ->
      let oracles =
        match resolve_oracles wf_oracles with
        | Ok os -> os
        | Error e -> invalid_arg ("dist fuzz spec: " ^ e)
      in
      let n = hi - lo in
      let evals = Array.make n None in
      let wall = Array.make n 0.0 in
      let alloc = Array.make n 0.0 in
      for k = 0 to n - 1 do
        let t0 = Mclock.now () in
        let a0 = Gc.minor_words () in
        evals.(k) <-
          Some
            (Fuzz.Campaign.eval_case ~oracles ~shrink:wf_shrink
               ~boundary:wf_boundary ~seed:wf_seed (lo + k));
        wall.(k) <- Mclock.now () -. t0;
        alloc.(k) <- Gc.minor_words () -. a0
      done;
      let evals = Array.map (function Some e -> e | None -> assert false) evals in
      Marshal.to_string { fp_evals = evals; fp_wall = wall; fp_alloc = alloc } []
  | W_mc ({ wm_dpor; wm_tt; wm_frontier; _ } as m) ->
      let case =
        match mc_case m.wm_line with Ok c -> c | Error e -> invalid_arg e
      in
      let tasks = Mc.Driver.frontier_tasks ~frontier:wm_frontier case in
      let engine = engine_of s in
      let subtrees =
        Array.init (hi - lo) (fun k ->
            Mc.Driver.explore_task ~oracles:Fuzz.Oracle.registry ~dpor:wm_dpor
              ~engine ~tt:wm_tt ~case ~tasks (lo + k))
      in
      Marshal.to_string { mp_subtrees = subtrees } []

(** Recompute the oracle-verdict checksum from a deserialized payload:
    an MD5 over every deterministic fact the merge will consume —
    cases, verdicts, failure details, shrunk lines for fuzz; class
    keys, schedules, verdicts and subtree counters for mc.  Two
    correct executions of a unit agree on it by campaign determinism;
    a divergent or damaged payload does not.  [Error] when the payload
    does not even deserialize. *)
let payload_checksum (s : spec) (payload : string) : (string, string) result =
  let buf = Buffer.create 4096 in
  let outcome_line name (o : Fuzz.Oracle.outcome) =
    Buffer.add_string buf name;
    Buffer.add_char buf '=';
    (match o with
    | Fuzz.Oracle.Pass -> Buffer.add_string buf "pass"
    | Fuzz.Oracle.Skip d ->
        Buffer.add_string buf "skip:";
        Buffer.add_string buf d
    | Fuzz.Oracle.Fail d ->
        Buffer.add_string buf "fail:";
        Buffer.add_string buf d);
    Buffer.add_char buf '\n'
  in
  match s with
  | W_fuzz _ -> (
      match (Marshal.from_string payload 0 : fuzz_payload) with
      | exception _ -> Error "undecodable fuzz payload"
      | { fp_evals; _ } ->
          Array.iter
            (fun (ce : Fuzz.Campaign.case_eval) ->
              Buffer.add_string buf (Fuzz.Replay.to_string ce.Fuzz.Campaign.ce_case);
              Buffer.add_char buf '\n';
              List.iter
                (fun (n, o) -> outcome_line n o)
                ce.Fuzz.Campaign.ce_results;
              List.iter
                (fun (f : Fuzz.Campaign.failure) ->
                  Buffer.add_string buf f.Fuzz.Campaign.fl_oracle;
                  Buffer.add_char buf '|';
                  Buffer.add_string buf f.Fuzz.Campaign.fl_detail;
                  Buffer.add_char buf '|';
                  (match f.Fuzz.Campaign.fl_shrunk with
                  | None -> Buffer.add_string buf "-"
                  | Some r ->
                      Buffer.add_string buf
                        (Fuzz.Replay.to_string r.Fuzz.Shrink.shrunk);
                      Buffer.add_string buf
                        (Printf.sprintf "|%d|%d" r.Fuzz.Shrink.steps
                           r.Fuzz.Shrink.evaluations));
                  Buffer.add_char buf '\n')
                ce.Fuzz.Campaign.ce_failures)
            fp_evals;
          Ok (Digest.to_hex (Digest.string (Buffer.contents buf))))
  | W_mc _ -> (
      match (Marshal.from_string payload 0 : mc_payload) with
      | exception _ -> Error "undecodable mc payload"
      | { mp_subtrees } ->
          Array.iter
            (fun (sb : Mc.Explore.subtree) ->
              Buffer.add_string buf
                (Printf.sprintf "sb:%d:%d:%d\n" sb.Mc.Explore.sb_execs
                   sb.Mc.Explore.sb_sleep_blocked
                   (List.length sb.Mc.Explore.sb_classes));
              List.iter
                (fun (cl : Mc.Explore.class_rec) ->
                  Buffer.add_string buf cl.Mc.Explore.cl_key;
                  Buffer.add_char buf '|';
                  Buffer.add_string buf
                    (String.concat "." (List.map string_of_int cl.Mc.Explore.cl_choices));
                  Buffer.add_char buf '\n';
                  List.iter (fun (n, o) -> outcome_line n o) cl.Mc.Explore.cl_results)
                sb.Mc.Explore.sb_classes)
            mp_subtrees;
          Ok (Digest.to_hex (Digest.string (Buffer.contents buf))))

(** Execute one unit and package the result.  [capture:true] (the
    worker path) wraps the work in an {!Obs} capture session to
    compute the per-shard trace digest; the in-process fallback passes
    [false] and leaves the digest empty. *)
let exec_unit (s : spec) ~unit_id ~lo ~hi ~capture : blob =
  let payload, digest =
    if capture then begin
      let payload, trace =
        Obs.capture ~capacity:(1 lsl 18) (fun () -> exec_payload s ~lo ~hi)
      in
      (payload, Obs.digest trace)
    end
    else (exec_payload s ~lo ~hi, "")
  in
  let checksum =
    match payload_checksum s payload with
    | Ok c -> c
    | Error e -> invalid_arg ("Work.exec_unit: " ^ e)
  in
  { b_unit = unit_id; b_digest = digest; b_checksum = checksum; b_payload = payload }

(** Human repro pointer for a shard, for divergence hard errors. *)
let shard_repro (s : spec) ~lo : string =
  match s with
  | W_fuzz { wf_seed; wf_boundary; _ } ->
      let gen = if wf_boundary then Fuzz.Gen.generate_boundary else Fuzz.Gen.generate in
      Fuzz.Replay.repro_command
        (gen ~seed:(Fuzz.Campaign.case_seed ~seed:wf_seed lo))
  | W_mc { wm_line; _ } -> Printf.sprintf "abc mc box %s (frontier task %d)" wm_line lo

(* ------------------------------------------------------------------ *)
(* Merging (supervisor side; unit order = item order) *)

let merge_fuzz (s : spec) ~(cost_wall : float) ~(shards : int)
    (payloads : string array) : Fuzz.Campaign.outcome =
  match s with
  | W_mc _ -> invalid_arg "Work.merge_fuzz: mc spec"
  | W_fuzz { wf_seed; wf_cases; wf_boundary; wf_oracles; _ } ->
      let oracles =
        match resolve_oracles wf_oracles with
        | Ok os -> os
        | Error e -> invalid_arg ("dist fuzz spec: " ^ e)
      in
      let parts =
        Array.map
          (fun p -> (Marshal.from_string p 0 : fuzz_payload))
          payloads
      in
      let evals =
        Array.concat (Array.to_list (Array.map (fun p -> p.fp_evals) parts))
      in
      let cost =
        {
          Fuzz.Campaign.ct_jobs = shards;
          ct_wall = cost_wall;
          ct_case_wall =
            Array.concat (Array.to_list (Array.map (fun p -> p.fp_wall) parts));
          ct_case_alloc =
            Array.concat (Array.to_list (Array.map (fun p -> p.fp_alloc) parts));
        }
      in
      Fuzz.Campaign.merge_evals ~oracles ~seed:wf_seed ~cases:wf_cases
        ~boundary:wf_boundary ~cost evals

let merge_mc (s : spec) (payloads : string array) : Mc.Driver.outcome =
  match s with
  | W_fuzz _ -> invalid_arg "Work.merge_mc: fuzz spec"
  | W_mc ({ wm_dpor; wm_frontier; _ } as m) ->
      let case =
        match mc_case m.wm_line with Ok c -> c | Error e -> invalid_arg e
      in
      let subtrees =
        Array.concat
          (Array.to_list
             (Array.map
                (fun p -> (Marshal.from_string p 0 : mc_payload).mp_subtrees)
                payloads))
      in
      Mc.Driver.merge_tasks ~oracles:Fuzz.Oracle.registry ~dpor:wm_dpor
        ~engine:(engine_of s) ~frontier:wm_frontier ~case subtrees
