(** Fault-tolerant shard supervisor.

    Owns the whole life of a sharded run: partition the spec into
    {!Work.units}, provision workers, dispatch units lowest-id-first,
    validate every reply, retry what was lost, and hand back the unit
    results {e in unit order} — at which point the merge is the same
    pure function the serial path uses, so the report is
    byte-identical to a serial run no matter the worker topology,
    deaths, or retry history.

    Workers arrive on a three-rung {e degradation ladder}, each rung
    used only while the one above has nothing left to offer:

    + {e Socket workers} ([lib/net]): endpoints from [--workers] are
      dialed through a {!Net.Registry} (health machine, reconnect
      budget, jittered backoff), and a [--listen] address accepts
      {e self-registering} workers started with [abc serve].  Unit
      {e leases} tie in-flight units to endpoints so a death re-leases
      exactly what was lost.  Dealing is capacity-weighted
      ([host:port*4] is offered work before a [*1] peer) — weights
      shape wall-clock only, never output, because the merge consumes
      units in unit order.
    + {e Subprocess workers}: this very binary re-executed over pipes
      (see {!Worker.maybe_run}), spawned only once no socket endpoint
      can come back.
    + {e In-process fallback}: a {!Pool} right here, when nothing can
      be spawned at all.

    Robustness mechanisms, in the order they fire:

    - {e Heartbeat timeout}: a worker holding a unit (or one that
      never completed the handshake) silent longer than [heartbeat]
      seconds (monotonic clock — wall steps cannot fake a stall) is
      killed and its unit re-dispatched.
    - {e Crash / EOF / connection loss}: a dead worker's unit goes
      back to pending with {e bounded retry}: exponential backoff
      with deterministic jitter, at most [max_attempts] dispatches
      per unit, then a hard error naming the unit.
    - {e Frame corruption}: a reply stream that breaks the {!Frame}
      contract — including a length prefix beyond [max_frame] — is
      unrecoverable; the worker is quarantined and its unit
      re-dispatched.
    - {e Result validation}: every reply's payload is re-checksummed
      by the supervisor ({!Work.payload_checksum}).  A mismatch
      quarantines the sender and re-runs the shard; a {e second}
      divergence on the same shard is a hard error naming the shard's
      replay line.  Duplicate replies are accepted iff checksum and
      digest agree with the recorded result.
    - {e Budgets}: socket endpoints get [dial_budget] connection
      attempts each; replacement subprocesses are spawned while the
      respawn budget lasts.
    - {e Write-ahead checkpoint}: with [checkpoint] set, each
      accepted unit is appended (CRC'd, fsync'd) to a {!Checkpoint}
      journal before counting as merged; [resume] reloads the valid
      prefix and re-runs only what is missing — and re-verifies the
      journal's campaign fingerprint at both load and reopen, so
      mixing [--resume] with a foreign [--workers] topology can never
      graft units from a different campaign. *)

exception Dist_error of string

type config = {
  cf_shards : int;
  cf_heartbeat : float;  (** seconds of silence before a kill *)
  cf_checkpoint : string option;
  cf_resume : bool;  (** load [cf_checkpoint] before running *)
  cf_nemesis : Nemesis.t;
  cf_worker_exe : string option;  (** default [Sys.executable_name] *)
  cf_max_attempts : int;
  cf_respawn_budget : int;
  cf_endpoints : (Net.Transport.addr * int) list;
      (** socket workers to dial, with capacity weights *)
  cf_listen : Net.Transport.addr option;
      (** accept self-registering [abc serve --connect] workers here *)
  cf_connect_timeout : float;
  cf_max_frame : int;  (** payload cap enforced before allocation *)
  cf_dial_budget : int;  (** connect attempts per endpoint *)
}

let make_config ?(heartbeat = 30.0) ?checkpoint ?(resume = false)
    ?(nemesis = Nemesis.none) ?worker_exe ?max_attempts ?respawn_budget
    ?(endpoints = []) ?listen ?(connect_timeout = 5.0) ?max_frame
    ?dial_budget ~shards () : config =
  if shards < 1 then invalid_arg "Dist: shards must be >= 1";
  if resume && checkpoint = None then
    invalid_arg "Dist: resume needs a checkpoint file";
  {
    cf_shards = shards;
    cf_heartbeat = (if heartbeat > 0.0 then heartbeat else 30.0);
    cf_checkpoint = checkpoint;
    cf_resume = resume;
    cf_nemesis = nemesis;
    cf_worker_exe = worker_exe;
    cf_max_attempts = (match max_attempts with Some m -> max 1 m | None -> 5);
    cf_respawn_budget =
      (match respawn_budget with Some b -> max 0 b | None -> 2 * shards);
    cf_endpoints = endpoints;
    cf_listen = listen;
    cf_connect_timeout = (if connect_timeout > 0.0 then connect_timeout else 5.0);
    cf_max_frame =
      (match max_frame with
      | Some m when m >= 1 -> m
      | Some _ -> invalid_arg "Dist: max_frame must be >= 1"
      | None -> Frame.max_payload);
    cf_dial_budget =
      (match dial_budget with Some b -> max 1 b | None -> Net.Registry.default_budget);
  }

(* ------------------------------------------------------------------ *)

(** Where a worker connection came from — it decides who may be
    killed (only subprocesses have pids), who is reaped, and whose
    endpoint health to update on loss. *)
type origin =
  | O_proc of int  (** spawned subprocess (pid) *)
  | O_ep of int  (** dialed endpoint (registry index) *)
  | O_accepted  (** self-registered through [--listen] *)

type wrk = {
  w_id : int;
  w_origin : origin;
  w_tr : Net.Transport.t;
  w_parser : Frame.parser;
  mutable w_unit : int;  (** assigned unit id, [-1] when idle *)
  mutable w_last : float;  (** {!Mclock.now} of the last frame *)
  mutable w_dead : bool;
}

let is_socket = function O_proc _ -> false | O_ep _ | O_accepted -> true

type ustate = Pending | Running of int (* worker id *) | Completed

type ust = {
  u_id : int;
  u_lo : int;
  u_hi : int;
  mutable u_state : ustate;
  mutable u_attempts : int;
  mutable u_not_before : float;  (** backoff gate, {!Mclock.now} scale *)
  mutable u_blob : Work.blob option;
  mutable u_divergences : int;
}

(* Deterministic jitter in [-0.25, +0.25), a splitmix64 finalizer of
   (unit, attempt): retries of the same unit spread out, identically
   on every run of the same history. *)
let jitter ~unit_id ~attempt =
  let open Int64 in
  let z = add (of_int ((unit_id * 1_000_003) + attempt)) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  let frac = to_float (logand z 0xFFFFFFL) /. 16_777_216.0 in
  (frac -. 0.5) /. 2.0

let backoff_base = 0.05
let backoff_cap = 2.0

let backoff ~unit_id ~attempt =
  let exp = backoff_base *. (2.0 ** float_of_int (max 0 (attempt - 1))) in
  let d = min backoff_cap exp in
  d *. (1.0 +. jitter ~unit_id ~attempt)

let obs name args = if Obs.on () then Obs.instant "dist" name args

let say fmt = Printf.ksprintf (fun s -> Printf.eprintf "dist: %s\n%!" s) fmt

(* ------------------------------------------------------------------ *)

type state = {
  cfg : config;
  spec : Work.spec;
  spec_bytes : string;  (** marshaled once, sent to every worker *)
  units : ust array;
  reg : Net.Registry.t;  (** socket endpoints (may be empty) *)
  mutable listener : Net.Transport.listener option;
  mutable net_last : float;
      (** {!Mclock.now} of the last sign of socket-rung life *)
  mutable workers : wrk list;  (** live or not-yet-reaped *)
  mutable next_worker_id : int;
  mutable respawns_left : int;
  mutable merged : int;  (** units accepted this run (resume excluded) *)
  mutable journal : Checkpoint.t option;
  mutable quiet : bool;  (** suppress per-event stderr chatter *)
}

let pending_count st =
  Array.fold_left
    (fun n u -> match u.u_state with Completed -> n | _ -> n + 1)
    0 st.units

let live_workers st = List.filter (fun w -> not w.w_dead) st.workers

let kill_quiet pid =
  try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let reap_quiet pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let send st (w : wrk) m =
  Net.Transport.write
    ~deadline:(Mclock.now () +. st.cfg.cf_heartbeat)
    w.w_tr (Frame.encode m)

let endpoint_of st (w : wrk) =
  match w.w_origin with
  | O_ep i -> Some (Net.Registry.get st.reg i)
  | O_proc _ | O_accepted -> None

(* The worker no longer owns a unit: drop the lease mirror too. *)
let clear_assignment st (w : wrk) =
  (match endpoint_of st w with
  | Some e -> Net.Registry.unlease e
  | None -> ());
  w.w_unit <- -1

(* Put a worker's unit (if any) back on the queue with backoff. *)
let requeue st (w : wrk) ~why =
  if w.w_unit >= 0 then begin
    let u = st.units.(w.w_unit) in
    (match u.u_state with
    | Running wid when wid = w.w_id ->
        u.u_state <- Pending;
        u.u_not_before <-
          Mclock.now () +. backoff ~unit_id:u.u_id ~attempt:u.u_attempts;
        if not st.quiet then
          say "unit %d requeued (%s, worker %d, attempt %d)" u.u_id why w.w_id
            u.u_attempts;
        obs "requeue"
          [ ("unit", Obs.I u.u_id); ("worker", Obs.I w.w_id); ("why", Obs.S why) ]
    | _ -> ());
    clear_assignment st w
  end

let mark_dead st (w : wrk) ~why =
  if not w.w_dead then begin
    w.w_dead <- true;
    requeue st w ~why;
    Net.Transport.close w.w_tr;
    match endpoint_of st w with
    | Some e -> ignore (Net.Registry.mark_lost e ~why)
    | None -> ()
  end

let quarantine st (w : wrk) ~why =
  if not w.w_dead then begin
    if not st.quiet then say "worker %d quarantined: %s" w.w_id why;
    obs "quarantine" [ ("worker", Obs.I w.w_id); ("why", Obs.S why) ];
    (match w.w_origin with
    | O_proc pid -> kill_quiet pid
    | O_ep _ | O_accepted -> () (* no pid to kill: dropping the
                                    connection is the whole sanction *));
    mark_dead st w ~why
  end

(* ------------------------------------------------------------------ *)
(* Provisioning: dial endpoints, accept registrations, spawn pipes *)

let add_worker st ~origin ~tr =
  let id = st.next_worker_id in
  st.next_worker_id <- id + 1;
  let w =
    {
      w_id = id;
      w_origin = origin;
      w_tr = tr;
      w_parser =
        Frame.parser_create ~await_hello:true ~max_payload:st.cfg.cf_max_frame ();
      w_unit = -1;
      w_last = Mclock.now ();
      w_dead = false;
    }
  in
  st.workers <- w :: st.workers;
  if is_socket origin then st.net_last <- Mclock.now ();
  (* the spec goes down immediately; a worker that dies before
     reading it shows up as EOF like any other death *)
  (match send st w (Frame.M_spec st.spec_bytes) with
  | () -> ()
  | exception _ -> mark_dead st w ~why:"spec write failed");
  w

(* Dial every endpoint whose backoff gate has passed.  Synchronous
   with a deadline: localhost dials resolve in microseconds, dead
   ports fail fast with ECONNREFUSED, and a genuinely unreachable
   host costs at most [cf_connect_timeout] per attempt. *)
let dial_endpoints st =
  let now = Mclock.now () in
  List.iter
    (fun (e : Net.Registry.endpoint) ->
      Net.Registry.dialing e;
      obs "dial"
        [
          ("ep", Obs.I e.Net.Registry.ep_id);
          ("attempt", Obs.I e.Net.Registry.ep_attempts);
        ];
      let deadline = Mclock.now () +. st.cfg.cf_connect_timeout in
      match Net.Transport.connect ~deadline e.Net.Registry.ep_addr with
      | Error why ->
          if not st.quiet then say "%s" why;
          ignore (Net.Registry.mark_lost e ~why)
      | Ok tr ->
          Net.Registry.mark_ready e;
          st.net_last <- Mclock.now ();
          let w =
            add_worker st ~origin:(O_ep e.Net.Registry.ep_id) ~tr
          in
          if not st.quiet then
            say "endpoint %d (%s) connected as worker %d"
              e.Net.Registry.ep_id
              (Net.Transport.addr_to_string e.Net.Registry.ep_addr)
              w.w_id)
    (Net.Registry.due st.reg ~now)

let accept_registration st =
  match st.listener with
  | None -> ()
  | Some l -> (
      match Net.Transport.accept l with
      | Error why -> if not st.quiet then say "accept failed: %s" why
      | Ok tr ->
          let w = add_worker st ~origin:O_accepted ~tr in
          if not st.quiet then
            say "worker %d self-registered from %s" w.w_id
              (Net.Transport.peer tr);
          obs "register" [ ("worker", Obs.I w.w_id) ])

let spawn st =
  let exe =
    match st.cfg.cf_worker_exe with
    | Some e -> e
    | None -> Sys.executable_name
  in
  let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> () in
  let child_stdin, sup_write = Unix.pipe ~cloexec:true () in
  let sup_read, child_stdout = Unix.pipe ~cloexec:true () in
  let env =
    Array.append (Unix.environment ())
      [| Worker.env_binding ~id:st.next_worker_id ~nemesis:st.cfg.cf_nemesis |]
  in
  match
    Unix.create_process_env exe [| exe |] env child_stdin child_stdout
      Unix.stderr
  with
  | exception e ->
      close_quiet child_stdin;
      close_quiet sup_write;
      close_quiet sup_read;
      close_quiet child_stdout;
      say "spawn failed: %s" (Printexc.to_string e);
      None
  | pid ->
      close_quiet child_stdin;
      close_quiet child_stdout;
      let tr = Net.Transport.of_pipe ~read_fd:sup_read ~write_fd:sup_write in
      let w = add_worker st ~origin:(O_proc pid) ~tr in
      obs "spawn" [ ("worker", Obs.I w.w_id); ("pid", Obs.I pid) ];
      Some w

(* ------------------------------------------------------------------ *)
(* Results *)

(* Record an accepted unit result: store, checkpoint (fsync'd), count
   it merged, and let the supervisor nemesis strike. *)
let accept st (u : ust) (blob : Work.blob) =
  u.u_blob <- Some blob;
  u.u_state <- Completed;
  (match st.journal with
  | Some j -> Checkpoint.append j ~unit_id:u.u_id ~blob:(Work.encode_blob blob)
  | None -> ());
  st.merged <- st.merged + 1;
  obs "accept" [ ("unit", Obs.I u.u_id) ];
  match st.cfg.cf_nemesis.Nemesis.supervisor_kill with
  | Some s when st.merged = s ->
      (* the checkpoint record for this unit is already on disk:
         exactly the state a kill -9 here would leave *)
      say "nemesis: supervisor killed after %d merged units" s;
      raise (Nemesis.Supervisor_killed s)
  | _ -> ()

let divergence st (u : ust) ~(sender : wrk option) ~what =
  u.u_divergences <- u.u_divergences + 1;
  obs "divergence" [ ("unit", Obs.I u.u_id); ("n", Obs.I u.u_divergences) ];
  (match sender with
  | Some w -> quarantine st w ~why:("divergent result: " ^ what)
  | None -> ());
  if u.u_divergences >= 2 then
    raise
      (Dist_error
         (Printf.sprintf
            "shard %d (items %d..%d) produced divergent results twice — \
             refusing to pick a winner; replay it directly: %s"
            u.u_id u.u_lo (u.u_hi - 1)
            (Work.shard_repro st.spec ~lo:u.u_lo)))
  else begin
    (* arbitration: discard what we had (if anything) and re-run *)
    u.u_blob <- None;
    u.u_state <- Pending;
    u.u_not_before <- Mclock.now () +. backoff ~unit_id:u.u_id ~attempt:u.u_attempts;
    say "unit %d: divergent result, re-running to arbitrate" u.u_id
  end

(* Digest agreement between two executions of the same unit: both
   non-empty and different = real divergence; an empty side (Obs
   capture off, e.g. in-process fallback) abstains. *)
let digests_disagree a b = a <> "" && b <> "" && a <> b

let handle_result st (w : wrk) ~unit_id ~(blob_bytes : string) =
  if unit_id < 0 || unit_id >= Array.length st.units then
    quarantine st w ~why:(Printf.sprintf "reply for unknown unit %d" unit_id)
  else
    let u = st.units.(unit_id) in
    match Work.decode_blob blob_bytes with
    | Error e -> quarantine st w ~why:e
    | Ok blob -> (
        let valid =
          blob.Work.b_unit = unit_id
          &&
          match Work.payload_checksum st.spec blob.Work.b_payload with
          | Ok c -> c = blob.Work.b_checksum
          | Error _ -> false
        in
        match u.u_state with
        | Completed -> (
            (* duplicate (late retransmit or dup nemesis) *)
            match u.u_blob with
            | Some prev
              when valid
                   && prev.Work.b_checksum = blob.Work.b_checksum
                   && not
                        (digests_disagree prev.Work.b_digest blob.Work.b_digest)
              ->
                obs "duplicate" [ ("unit", Obs.I unit_id) ];
                if w.w_unit = unit_id then clear_assignment st w
            | _ -> divergence st u ~sender:(Some w) ~what:"duplicate disagrees")
        | Pending | Running _ ->
            if w.w_unit = unit_id then clear_assignment st w;
            if not valid then divergence st u ~sender:(Some w) ~what:"checksum mismatch"
            else begin
              (match u.u_blob with
              | Some prev
                when prev.Work.b_checksum <> blob.Work.b_checksum
                     || digests_disagree prev.Work.b_digest blob.Work.b_digest
                ->
                  (* an arbitration re-run disagreeing with a ghost of a
                     previous divergence round: count it *)
                  divergence st u ~sender:None ~what:"arbitration disagrees"
              | _ -> ());
              if u.u_state <> Completed then accept st u blob
            end)

let handle_msg st (w : wrk) (m : Frame.msg) =
  w.w_last <- Mclock.now ();
  match m with
  | Frame.M_heartbeat -> ()
  | Frame.M_done { unit_id; blob } -> handle_result st w ~unit_id ~blob_bytes:blob
  | Frame.M_error { unit_id; message } ->
      say "worker %d: unit %d raised: %s" w.w_id unit_id message;
      obs "worker-error" [ ("unit", Obs.I unit_id); ("worker", Obs.I w.w_id) ];
      if w.w_unit = unit_id then clear_assignment st w;
      if unit_id >= 0 && unit_id < Array.length st.units then begin
        let u = st.units.(unit_id) in
        match u.u_state with
        | Running wid when wid = w.w_id ->
            if u.u_attempts >= st.cfg.cf_max_attempts then
              raise
                (Dist_error
                   (Printf.sprintf
                      "unit %d failed %d times, last error: %s — replay: %s"
                      unit_id u.u_attempts message
                      (Work.shard_repro st.spec ~lo:u.u_lo)))
            else begin
              u.u_state <- Pending;
              u.u_not_before <-
                Mclock.now () +. backoff ~unit_id ~attempt:u.u_attempts
            end
        | _ -> ()
      end
  | Frame.M_spec _ | Frame.M_request _ | Frame.M_quit ->
      quarantine st w ~why:"protocol violation (supervisor-only frame)"

(* ------------------------------------------------------------------ *)
(* The main loop *)

let reap st =
  List.iter
    (fun w ->
      match w.w_origin with
      | O_proc pid when not w.w_dead -> (
          match Unix.waitpid [ WNOHANG ] pid with
          | 0, _ -> ()
          | _, _ -> mark_dead st w ~why:"worker exited"
          | exception Unix.Unix_error _ -> mark_dead st w ~why:"worker unreachable")
      | _ -> ())
    st.workers

(* Idle workers in dealing order: socket endpoints first (capacity
   weight descending, then endpoint id), then self-registered
   workers, then subprocesses — a deterministic preference for the
   biggest remote boxes.  Order shapes wall-clock only; the merge is
   in unit order regardless. *)
let deal_order st =
  let key w =
    match w.w_origin with
    | O_ep i -> (0, -(Net.Registry.get st.reg i).Net.Registry.ep_weight, w.w_id)
    | O_accepted -> (1, 0, w.w_id)
    | O_proc _ -> (2, 0, w.w_id)
  in
  live_workers st
  |> List.filter (fun w -> w.w_unit = -1)
  |> List.stable_sort (fun a b -> compare (key a) (key b))

let dispatch st =
  let now = Mclock.now () in
  List.iter
    (fun w ->
      if (not w.w_dead) && w.w_unit = -1 then
        let ready =
          Array.to_seq st.units
          |> Seq.filter (fun u ->
                 u.u_state = Pending
                 && u.u_not_before <= now
                 && u.u_attempts < st.cfg.cf_max_attempts)
          |> Seq.fold_left
               (fun best u ->
                 match best with
                 | Some b when b.u_id <= u.u_id -> best
                 | _ -> Some u)
               None
        in
        match ready with
        | None -> ()
        | Some u -> (
            match
              send st w
                (Frame.M_request { unit_id = u.u_id; lo = u.u_lo; hi = u.u_hi })
            with
            | () ->
                u.u_state <- Running w.w_id;
                u.u_attempts <- u.u_attempts + 1;
                w.w_unit <- u.u_id;
                w.w_last <- now;
                (match endpoint_of st w with
                | Some e -> Net.Registry.lease e ~unit_id:u.u_id
                | None -> ());
                obs "dispatch"
                  [ ("unit", Obs.I u.u_id); ("worker", Obs.I w.w_id) ]
            | exception _ -> mark_dead st w ~why:"request write failed"))
    (deal_order st)

(* A pending unit that has exhausted its dispatch budget is a hard
   error — checked centrally so timeouts and deaths hit it too. *)
let check_attempts st =
  Array.iter
    (fun u ->
      if
        u.u_state = Pending
        && u.u_attempts >= st.cfg.cf_max_attempts
        && u.u_blob = None
      then
        raise
          (Dist_error
             (Printf.sprintf
                "unit %d (items %d..%d) lost after %d dispatch attempts — \
                 replay: %s"
                u.u_id u.u_lo (u.u_hi - 1) u.u_attempts
                (Work.shard_repro st.spec ~lo:u.u_lo))))
    st.units

let read_ready st fds =
  List.iter
    (fun fd ->
      match
        List.find_opt
          (fun w -> (not w.w_dead) && Net.Transport.readable_fd w.w_tr = fd)
          st.workers
      with
      | None -> ()
      | Some w -> (
          let buf = Bytes.create 65536 in
          match Unix.read fd buf 0 (Bytes.length buf) with
          | exception Unix.Unix_error (EINTR, _, _) -> ()
          | exception Unix.Unix_error _ -> mark_dead st w ~why:"read error"
          | 0 -> mark_dead st w ~why:"eof"
          | n -> (
              Frame.feed w.w_parser buf n;
              if is_socket w.w_origin then st.net_last <- Mclock.now ();
              let rec drain () =
                if not w.w_dead then
                  match Frame.next w.w_parser with
                  | Ok None -> ()
                  | Ok (Some m) ->
                      handle_msg st w m;
                      drain ()
                  | Error e -> quarantine st w ~why:("corrupt stream: " ^ e)
              in
              drain ())))
    fds

(* A worker is on the clock when it holds a unit, and also while it
   has not completed the handshake — an accepted connection that
   never says hello must not squat forever. *)
let check_heartbeats st =
  let now = Mclock.now () in
  List.iter
    (fun w ->
      if
        (not w.w_dead)
        && (w.w_unit >= 0 || Frame.awaiting_hello w.w_parser)
        && now -. w.w_last > st.cfg.cf_heartbeat
      then begin
        say "worker %d silent for %.1fs on unit %d: killing" w.w_id
          (now -. w.w_last) w.w_unit;
        obs "stall-kill" [ ("worker", Obs.I w.w_id); ("unit", Obs.I w.w_unit) ];
        quarantine st w ~why:"heartbeat timeout"
      end)
    st.workers

(* In-process fallback: no worker can be provisioned on any rung, so
   run what remains on a Pool right here.  map_all_errors so one
   failing unit does not mask the others in the diagnostic. *)
let fallback st =
  let remaining =
    Array.to_list st.units
    |> List.filter (fun u -> u.u_state <> Completed)
  in
  if remaining <> [] then begin
    say "no workers available: degrading to in-process execution of %d units"
      (List.length remaining);
    obs "fallback" [ ("units", Obs.I (List.length remaining)) ];
    let arr = Array.of_list remaining in
    let results =
      Pool.map_all_errors ~jobs:st.cfg.cf_shards ~chunk:1 (Array.length arr)
        (fun k ->
          let u = arr.(k) in
          Work.exec_unit st.spec ~unit_id:u.u_id ~lo:u.u_lo ~hi:u.u_hi
            ~capture:false)
    in
    let failed = ref [] in
    Array.iteri
      (fun k r ->
        match r with
        | Ok blob -> accept st arr.(k) blob
        | Error e ->
            failed := (arr.(k).u_id, Printexc.to_string e) :: !failed)
      results;
    match List.rev !failed with
    | [] -> ()
    | fs ->
        raise
          (Dist_error
             (Printf.sprintf "in-process fallback failed on %d unit(s): %s"
                (List.length fs)
                (String.concat "; "
                   (List.map (fun (u, e) -> Printf.sprintf "unit %d: %s" u e) fs))))
  end

let terminate st =
  List.iter
    (fun w ->
      if not w.w_dead then begin
        (try send st w Frame.M_quit with _ -> ());
        (match w.w_origin with
        | O_proc pid -> kill_quiet pid
        | O_ep _ | O_accepted -> ());
        Net.Transport.close w.w_tr;
        w.w_dead <- true
      end)
    st.workers;
  List.iter
    (fun w ->
      match w.w_origin with O_proc pid -> reap_quiet pid | _ -> ())
    st.workers;
  st.workers <- [];
  (match st.listener with
  | Some l ->
      Net.Transport.close_listener l;
      st.listener <- None
  | None -> ());
  match st.journal with
  | Some j ->
      Checkpoint.close j;
      st.journal <- None
  | None -> ()

(** Run the spec to completion and return the unit results in unit
    order.  @raise Dist_error on unrecoverable loss or divergence;
    @raise Nemesis.Supervisor_killed when the nemesis says so. *)
let run_units ?(quiet = false) (cfg : config) (spec : Work.spec) : Work.blob array =
  let units =
    Array.mapi
      (fun i (lo, hi) ->
        {
          u_id = i;
          u_lo = lo;
          u_hi = hi;
          u_state = Pending;
          u_attempts = 0;
          u_not_before = 0.0;
          u_blob = None;
          u_divergences = 0;
        })
      (Work.units spec)
  in
  let fp = Work.fingerprint spec in
  let st =
    {
      cfg;
      spec;
      spec_bytes = Marshal.to_string spec [];
      units;
      reg = Net.Registry.make ~budget:cfg.cf_dial_budget cfg.cf_endpoints;
      listener = None;
      net_last = Mclock.now ();
      workers = [];
      next_worker_id = 0;
      respawns_left = cfg.cf_respawn_budget;
      merged = 0;
      journal = None;
      quiet;
    }
  in
  (* resume: adopt every valid checkpointed unit, last record wins *)
  (match (cfg.cf_resume, cfg.cf_checkpoint) with
  | true, Some path -> (
      match Checkpoint.load ~path ~fingerprint:fp with
      | Error e -> raise (Dist_error e)
      | Ok records ->
          let recovered = ref 0 in
          List.iter
            (fun (uid, blob_bytes) ->
              if uid >= 0 && uid < Array.length st.units then
                match Work.decode_blob blob_bytes with
                | Error _ -> ()
                | Ok blob -> (
                    match Work.payload_checksum spec blob.Work.b_payload with
                    | Ok c when c = blob.Work.b_checksum ->
                        let u = st.units.(uid) in
                        if u.u_state <> Completed then incr recovered;
                        u.u_blob <- Some blob;
                        u.u_state <- Completed
                    | _ -> ()))
            records;
          say "resumed %d/%d units from %s" !recovered (Array.length st.units)
            path;
          obs "resume" [ ("units", Obs.I !recovered) ])
  | _ -> ());
  (* open (or create) the journal for what this run will add; reopen
     re-verifies the campaign fingerprint (see {!Checkpoint.reopen}) *)
  (match cfg.cf_checkpoint with
  | Some path ->
      st.journal <-
        Some
          (if cfg.cf_resume then
             match Checkpoint.reopen ~path ~fingerprint:fp with
             | Ok j -> j
             | Error e -> raise (Dist_error e)
           else Checkpoint.create ~path ~fingerprint:fp)
  | None -> ());
  (* the listener for self-registering workers, if requested *)
  (match cfg.cf_listen with
  | None -> ()
  | Some addr -> (
      match Net.Transport.listen addr with
      | Error e -> raise (Dist_error e)
      | Ok l ->
          st.listener <- Some l;
          say "accepting workers on %s"
            (Net.Transport.addr_to_string (Net.Transport.bound_addr l))));
  let saved_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      terminate st;
      match saved_sigpipe with
      | Some h -> ( try Sys.set_signal Sys.sigpipe h with _ -> ())
      | None -> ())
    (fun () ->
      let net_mode = cfg.cf_endpoints <> [] || st.listener <> None in
      (* how long a bare listener keeps the socket rung alive with no
         connection at all: enough for a worker to show up *)
      let listen_grace = Float.max 2.0 cfg.cf_heartbeat in
      let socket_alive now =
        net_mode
        && (Net.Registry.alive st.reg
           || List.exists (fun w -> is_socket w.w_origin) (live_workers st)
           || (st.listener <> None && now -. st.net_last <= listen_grace))
      in
      let out_of_workers () =
        (not (socket_alive (Mclock.now ())))
        && live_workers st = []
        && st.respawns_left <= 0
      in
      while pending_count st > 0 && not (out_of_workers ()) do
        reap st;
        dial_endpoints st;
        (* subprocess rung: only once the socket rung has nothing
           left (never-degraded pipe-only runs take it immediately) *)
        if not (socket_alive (Mclock.now ())) then begin
          let want = min st.cfg.cf_shards (pending_count st) in
          let spawned_any = ref true in
          while
            !spawned_any
            && List.length (live_workers st) < want
            && st.respawns_left > 0
          do
            st.respawns_left <- st.respawns_left - 1;
            spawned_any := spawn st <> None
          done
        end;
        check_attempts st;
        dispatch st;
        let wfds =
          List.map (fun w -> Net.Transport.readable_fd w.w_tr) (live_workers st)
        in
        let lfds =
          match st.listener with
          | Some l -> [ Net.Transport.listener_fd l ]
          | None -> []
        in
        (if wfds = [] && lfds = [] then Unix.sleepf 0.01
         else
           match Unix.select (lfds @ wfds) [] [] 0.05 with
           | readable, _, _ ->
               let accepts, worker_fds =
                 List.partition (fun fd -> List.mem fd lfds) readable
               in
               List.iter (fun _ -> accept_registration st) accepts;
               read_ready st worker_fds
           | exception Unix.Unix_error (EINTR, _, _) -> ());
        check_heartbeats st;
        if Sys.getenv_opt "ABC_DIST_DEBUG" <> None then
          say "loop: pending=%d live=%d reg=[%s] units=[%s] workers=[%s]"
            (pending_count st)
            (List.length (live_workers st))
            (Net.Registry.summary st.reg)
            (String.concat ";"
               (Array.to_list
                  (Array.map
                     (fun u ->
                       Printf.sprintf "%d:%s:a%d" u.u_id
                         (match u.u_state with
                         | Pending -> "P"
                         | Running w -> "R" ^ string_of_int w
                         | Completed -> "C")
                         u.u_attempts)
                     st.units)))
            (String.concat ";"
               (List.map
                  (fun w ->
                    Printf.sprintf "%d:%s:u%d" w.w_id
                      (if w.w_dead then "dead" else "live")
                      w.w_unit)
                  st.workers))
      done;
      (* anything left means every rung above died: degrade gracefully *)
      fallback st;
      Array.map
        (fun u ->
          match u.u_blob with
          | Some b -> b
          | None -> raise (Dist_error (Printf.sprintf "unit %d has no result" u.u_id)))
        st.units)

(* ------------------------------------------------------------------ *)
(* Front doors *)

let run_fuzz ?quiet (cfg : config) ~seed ~cases ~boundary ~shrink ~oracles () :
    Fuzz.Campaign.outcome =
  let spec =
    Work.W_fuzz
      {
        wf_seed = seed;
        wf_cases = cases;
        wf_boundary = boundary;
        wf_shrink = shrink;
        wf_oracles = oracles;
      }
  in
  let t0 = Mclock.now () in
  let blobs = run_units ?quiet cfg spec in
  Work.merge_fuzz spec ~cost_wall:(Mclock.now () -. t0) ~shards:cfg.cf_shards
    (Array.map (fun b -> b.Work.b_payload) blobs)

let run_mc ?quiet (cfg : config) ~dpor ~incremental ~tt ~frontier
    (case : Fuzz.Gen.case) : Mc.Driver.outcome =
  let spec =
    Work.W_mc
      {
        wm_line = Fuzz.Replay.to_string case;
        wm_dpor = dpor;
        wm_incremental = incremental;
        wm_tt = tt;
        wm_frontier = frontier;
      }
  in
  let blobs = run_units ?quiet cfg spec in
  Work.merge_mc spec (Array.map (fun b -> b.Work.b_payload) blobs)
