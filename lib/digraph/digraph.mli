(** Generic directed multigraphs and the graph algorithms used by the
    ABC reproduction.

    Nodes are dense integers [0 .. node_count - 1]; edges carry dense
    integer ids so that callers can attach weights or labels in flat
    arrays.  The structure is a {e multigraph}: parallel edges and
    (in principle) self-loops are representable, which matters for
    execution graphs where a process may send a message to itself in
    parallel with the local edge between two consecutive events.

    Three algorithm families live here:
    - {!topological_sort} / {!is_dag} for causal orders,
    - {!module:Bellman_ford}, a functor over an ordered additive monoid
      of weights, used both for negative-/nonpositive-cycle detection
      (the polynomial ABC admissibility check) and for
      difference-constraint potentials over ε-extended rationals,
    - {!shadow_cycles}, exhaustive enumeration of the simple cycles of
      the {e undirected shadow graph} (Definition 2 of the paper), used
      by the paper-faithful LP construction and as a test oracle. *)

type t

type edge = { id : int; src : int; dst : int }

(** {1 Construction} *)

val create : int -> t
(** [create n] is an empty graph on nodes [0 .. n-1]. *)

val add_node : t -> int
(** Appends a fresh node and returns its index. *)

val add_edge : t -> src:int -> dst:int -> edge
(** Appends a fresh edge and returns it.  Ids are dense and assigned in
    insertion order. *)

val truncate : t -> nodes:int -> edges:int -> unit
(** [truncate g ~nodes ~edges] removes every edge with id [>= edges]
    and every node with index [>= nodes], rolling the graph back to an
    earlier prefix of its construction (ids are dense and assigned in
    insertion order, so a prefix is identified by the two counts).
    Used by the incremental admissibility checker to retract
    speculative extensions.
    @raise Invalid_argument if the counts exceed the current sizes or
    if a surviving edge references a removed node. *)

(** {1 Accessors} *)

val node_count : t -> int
val edge_count : t -> int
val edge : t -> int -> edge
val edges : t -> edge list
val out_edges : t -> int -> edge list
val in_edges : t -> int -> edge list

(** All edges incident to a node in the undirected shadow graph, each
    tagged with [+1] if it leaves the node, [-1] if it enters it. *)
val shadow_incident : t -> int -> (edge * int) list

(** {1 Orders and components} *)

val topological_sort : t -> int list option
(** [Some order] (sources first) if the graph is acyclic, else [None]. *)

val is_dag : t -> bool

val scc : t -> int array
(** Tarjan strongly connected components; returns the component index
    of each node, numbered in reverse topological order. *)

(** {1 Shortest paths / cycle detection} *)

module type WEIGHT = sig
  type t

  val zero : t
  val add : t -> t -> t
  val compare : t -> t -> int
end

module Bellman_ford (W : WEIGHT) : sig
  val negative_cycle : t -> weight:(edge -> W.t) -> edge list option
  (** [negative_cycle g ~weight] is [Some cycle] (a directed cycle whose
      total weight is strictly negative, as an edge list in traversal
      order) if one exists, and [None] otherwise.  Runs Bellman–Ford
      from a virtual super-source, so disconnected graphs are handled. *)

  val potentials : t -> weight:(edge -> W.t) -> W.t array option
  (** [potentials g ~weight] is [Some pi] with
      [pi.(dst) <= pi.(src) + weight e] for every edge [e] — a feasible
      solution of the difference constraints — or [None] if a negative
      cycle makes the system infeasible. *)
end

(** {1 Undirected simple cycles} *)

type traversal = { edge : edge; dir : int }
(** One step of a cycle traversal: [dir = +1] if the edge is traversed
    from [src] to [dst], [-1] otherwise. *)

val shadow_cycles : ?max_cycles:int -> t -> traversal list list
(** All simple cycles of the undirected shadow graph, each reported
    exactly once as a traversal.  A simple cycle visits every node at
    most once and has at least two edges (a pair of parallel edges forms
    the smallest cycle).  Exponential in general: intended for small
    graphs (tests, the paper-faithful LP of Fig. 6).
    @param max_cycles safety cap; raises [Failure] when exceeded. *)

val pp : Format.formatter -> t -> unit
