type edge = { id : int; src : int; dst : int }

type t = {
  mutable n : int;
  mutable out_adj : edge list array; (* length >= n, index < n valid *)
  mutable in_adj : edge list array;
  mutable edge_arr : edge array; (* length >= m, index < m valid *)
  mutable m : int;
}

let create n =
  {
    n;
    out_adj = Array.make (max n 1) [];
    in_adj = Array.make (max n 1) [];
    edge_arr = Array.make 8 { id = -1; src = -1; dst = -1 };
    m = 0;
  }

let node_count g = g.n
let edge_count g = g.m

let grow_nodes g =
  let cap = Array.length g.out_adj in
  if g.n >= cap then begin
    let cap' = 2 * cap in
    let out' = Array.make cap' [] and in' = Array.make cap' [] in
    Array.blit g.out_adj 0 out' 0 cap;
    Array.blit g.in_adj 0 in' 0 cap;
    g.out_adj <- out';
    g.in_adj <- in'
  end

let add_node g =
  grow_nodes g;
  let v = g.n in
  g.n <- g.n + 1;
  v

let add_edge g ~src ~dst =
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then
    invalid_arg "Digraph.add_edge: node out of range";
  let e = { id = g.m; src; dst } in
  let cap = Array.length g.edge_arr in
  if g.m >= cap then begin
    let arr' = Array.make (2 * cap) e in
    Array.blit g.edge_arr 0 arr' 0 cap;
    g.edge_arr <- arr'
  end;
  g.edge_arr.(g.m) <- e;
  g.m <- g.m + 1;
  g.out_adj.(src) <- e :: g.out_adj.(src);
  g.in_adj.(dst) <- e :: g.in_adj.(dst);
  e

let truncate g ~nodes ~edges =
  if nodes < 0 || nodes > g.n || edges < 0 || edges > g.m then
    invalid_arg "Digraph.truncate: counts out of range";
  (* Adjacency lists are built by prepending, so within each list edge
     ids are strictly decreasing: removing every edge with id >= edges
     is popping list heads, newest first. *)
  for i = g.m - 1 downto edges do
    let e = g.edge_arr.(i) in
    (match g.out_adj.(e.src) with
    | x :: tl when x.id = e.id -> g.out_adj.(e.src) <- tl
    | _ -> invalid_arg "Digraph.truncate: adjacency out of sync");
    match g.in_adj.(e.dst) with
    | x :: tl when x.id = e.id -> g.in_adj.(e.dst) <- tl
    | _ -> invalid_arg "Digraph.truncate: adjacency out of sync"
  done;
  g.m <- edges;
  for v = nodes to g.n - 1 do
    if g.out_adj.(v) <> [] || g.in_adj.(v) <> [] then
      invalid_arg "Digraph.truncate: surviving edge references a removed node"
  done;
  g.n <- nodes

let edge g i =
  if i < 0 || i >= g.m then invalid_arg "Digraph.edge: out of range";
  g.edge_arr.(i)

let edges g = List.init g.m (fun i -> g.edge_arr.(i))
let out_edges g v = g.out_adj.(v)
let in_edges g v = g.in_adj.(v)

let shadow_incident g v =
  List.map (fun e -> (e, 1)) g.out_adj.(v) @ List.map (fun e -> (e, -1)) g.in_adj.(v)

let topological_sort g =
  let indeg = Array.make (max g.n 1) 0 in
  for i = 0 to g.m - 1 do
    let e = g.edge_arr.(i) in
    indeg.(e.dst) <- indeg.(e.dst) + 1
  done;
  let queue = Queue.create () in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    order := v :: !order;
    List.iter
      (fun e ->
        indeg.(e.dst) <- indeg.(e.dst) - 1;
        if indeg.(e.dst) = 0 then Queue.add e.dst queue)
      g.out_adj.(v)
  done;
  if !seen = g.n then Some (List.rev !order) else None

let is_dag g = topological_sort g <> None

(* Iterative Tarjan SCC (explicit stack: the execution graphs we feed
   this can have tens of thousands of events). *)
let scc g =
  let n = g.n in
  let index = Array.make (max n 1) (-1) in
  let lowlink = Array.make (max n 1) 0 in
  let on_stack = Array.make (max n 1) false in
  let comp = Array.make (max n 1) (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 and next_comp = ref 0 in
  let visit root =
    (* Frames: (node, remaining out-edges). *)
    let frames = Stack.create () in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    Stack.push root stack;
    on_stack.(root) <- true;
    Stack.push (root, ref g.out_adj.(root)) frames;
    while not (Stack.is_empty frames) do
      let v, rest = Stack.top frames in
      match !rest with
      | e :: tl -> begin
          rest := tl;
          let w = e.dst in
          if index.(w) < 0 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            Stack.push w stack;
            on_stack.(w) <- true;
            Stack.push (w, ref g.out_adj.(w)) frames
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
      | [] ->
          ignore (Stack.pop frames);
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              comp.(w) <- !next_comp;
              if w = v then continue := false
            done;
            incr next_comp
          end;
          if not (Stack.is_empty frames) then begin
            let u, _ = Stack.top frames in
            lowlink.(u) <- min lowlink.(u) lowlink.(v)
          end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then visit v
  done;
  if n = 0 then [||] else Array.sub comp 0 n

module type WEIGHT = sig
  type t

  val zero : t
  val add : t -> t -> t
  val compare : t -> t -> int
end

module Bellman_ford (W : WEIGHT) = struct
  (* Distances from a virtual super-source connected to every node with
     weight zero, so negative cycles anywhere are found. *)
  let run g ~weight =
    let n = g.n in
    let dist = Array.make (max n 1) W.zero in
    let parent = Array.make (max n 1) None in
    let changed = ref true and rounds = ref 0 in
    while !changed && !rounds < n do
      changed := false;
      incr rounds;
      for i = 0 to g.m - 1 do
        let e = g.edge_arr.(i) in
        let cand = W.add dist.(e.src) (weight e) in
        if W.compare cand dist.(e.dst) < 0 then begin
          dist.(e.dst) <- cand;
          parent.(e.dst) <- Some e;
          changed := true
        end
      done
    done;
    (dist, parent, !changed && !rounds = n)

  let negative_cycle g ~weight =
    let dist, parent, unstable = run g ~weight in
    if not unstable then None
    else begin
      (* One more relaxation pass locates an edge that still improves.
         Applying that relaxation first is essential: a node relaxed in
         round [n+1] has a predecessor chain of length > n, so walking
         [n] parents from it is guaranteed to stay on defined parents
         and to land inside a predecessor cycle (which is always a
         negative cycle of the current weights). *)
      let start = ref None in
      for i = 0 to g.m - 1 do
        let e = g.edge_arr.(i) in
        if !start = None && W.compare (W.add dist.(e.src) (weight e)) dist.(e.dst) < 0
        then begin
          dist.(e.dst) <- W.add dist.(e.src) (weight e);
          parent.(e.dst) <- Some e;
          start := Some e.dst
        end
      done;
      match !start with
      | None -> None
      | Some v0 ->
          let v = ref v0 in
          for _ = 1 to g.n do
            match parent.(!v) with Some e -> v := e.src | None -> ()
          done;
          (* !v is on the cycle; collect parent edges until we return,
             with a defensive bound of [n] steps. *)
          let cycle = ref [] and u = ref !v and looping = ref true and steps = ref 0 in
          while !looping && !steps <= g.n do
            incr steps;
            match parent.(!u) with
            | Some e ->
                cycle := e :: !cycle;
                u := e.src;
                if !u = !v then looping := false
            | None -> looping := false
          done;
          if !looping then None (* defensive; cannot happen *) else Some !cycle
    end

  let potentials g ~weight =
    let dist, _, unstable = run g ~weight in
    if unstable then None else Some dist
end

type traversal = { edge : edge; dir : int }

let shadow_cycles ?(max_cycles = 1_000_000) g =
  let n = g.n in
  let visited = Array.make (max n 1) false in
  let used_edge = Array.make (max g.m 1) false in
  let cycles = ref [] and count = ref 0 in
  let adj v =
    (* (edge, dir, other endpoint) in the undirected shadow graph *)
    List.map (fun e -> (e, 1, e.dst)) g.out_adj.(v)
    @ List.map (fun e -> (e, -1, e.src)) g.in_adj.(v)
  in
  let report path =
    incr count;
    if !count > max_cycles then failwith "Digraph.shadow_cycles: cycle cap exceeded";
    cycles := List.rev path :: !cycles
  in
  for root = 0 to n - 1 do
    (* Enumerate simple cycles whose minimal node is [root].  Each cycle
       is found twice (once per direction); keep the copy whose first
       edge id is smaller than its last edge id. *)
    let rec extend v path first_edge_id =
      List.iter
        (fun (e, dir, w) ->
          if not used_edge.(e.id) then
            if w = root then begin
              if path <> [] && first_edge_id < e.id then
                report ({ edge = e; dir } :: path)
            end
            else if w > root && not visited.(w) then begin
              visited.(w) <- true;
              used_edge.(e.id) <- true;
              extend w ({ edge = e; dir } :: path) first_edge_id;
              used_edge.(e.id) <- false;
              visited.(w) <- false
            end)
        (adj v)
    in
    visited.(root) <- true;
    List.iter
      (fun (e, dir, w) ->
        if w >= root then begin
          (* First step out of the root. *)
          if w = root then () (* self-loops cannot occur in execution graphs *)
          else begin
            visited.(w) <- true;
            used_edge.(e.id) <- true;
            extend w [ { edge = e; dir } ] e.id;
            used_edge.(e.id) <- false;
            visited.(w) <- false
          end
        end)
      (adj root);
    visited.(root) <- false
  done;
  !cycles

let pp fmt g =
  Format.fprintf fmt "@[<v>digraph: %d nodes, %d edges@," g.n g.m;
  List.iter (fun e -> Format.fprintf fmt "  e%d: %d -> %d@," e.id e.src e.dst) (edges g);
  Format.fprintf fmt "@]"
