(** Stateless DFS explorer with sleep sets and dynamic partial-order
    reduction.

    The exploration tree's nodes are schedule prefixes; every node is
    reconstructed by replaying its prefix from scratch
    ({!Schedule.replay}), so the only persistent state is the DFS stack
    of backtrack/sleep sets — the CHESS/Nidhugg stateless-search
    shape.

    Dependence relation: two deliveries commute unless they target the
    same process or are causally ordered (one's send is in the causal
    past of the other's delivery).  The race rule is phrased on the
    {e send's} causal past: a delivery [e] races with an earlier step
    [j] at the same destination iff [j] is not in the causal past of
    [e]'s send — same-destination deliveries are always ordered in the
    realized path, so testing the delivery's own past would find no
    race ever.  When a race [(j, e)] is found:

    - if [e] was already pending when [j] was chosen, delivering [e]
      at [j] instead is the canonical reversal: add [e] to [j]'s
      backtrack set;
    - otherwise the reversal needs some intermediate step first, and we
      fall back to adding every choice enabled at [j] (the conservative
      DPOR fallback).

    Under an event-budget cut, a class can differ from an explored one
    only in deliveries the cut removed, so still-pending messages at a
    terminal run the same race analysis ({e virtual races}) — this is
    what keeps the bounded search's class coverage exhaustive at the
    boundary (cross-checked against naive search by `--no-dpor`).

    Sleep sets prune sibling-redundant subtrees: after exploring [e],
    the classes reachable by first taking a delivery independent of
    [e] and later [e] itself are already covered, so such siblings are
    put to sleep.  A node whose every enabled choice sleeps is counted
    and abandoned without touching the oracle battery. *)

module IntSet = Set.Make (Int)

(** One canonical equivalence class of maximal executions. *)
type class_rec = {
  cl_key : string;  (** {!Canon.key} of the class *)
  cl_choices : int list;
      (** schedule of the first-explored representative *)
  cl_results : (string * Fuzz.Oracle.outcome) list;
      (** oracle battery on that representative *)
}

(** Result of exploring one subtree (all statistics are sums over the
    subtree only; class dedup is local to it). *)
type subtree = {
  sb_execs : int;  (** maximal executions explored *)
  sb_sleep_blocked : int;  (** nodes pruned with every choice asleep *)
  sb_deliveries : int;  (** deliveries simulated, replays included *)
  sb_classes : class_rec list;  (** first-seen order *)
}

type node = {
  nd_ready : Sim.Session.info array;
  mutable nd_backtrack : IntSet.t;  (** envelope ids still to explore *)
  mutable nd_done : IntSet.t;  (** envelope ids fully explored *)
}

let explore ~oracles ~dpor ~(case : Fuzz.Gen.case) ~(prefix : int list) : subtree =
  let budget = case.Fuzz.Gen.c_max_events in
  if budget > Schedule.max_budget then
    invalid_arg
      (Printf.sprintf "Mc.Explore.explore: budget %d above the mc cap %d" budget
         Schedule.max_budget);
  let d0 = List.length prefix in
  let nodes : node option array = Array.make (budget + 1) None in
  let execs = ref 0 in
  let sleep_blocked = ref 0 in
  let deliveries = ref 0 in
  let classes = ref [] in
  let seen = Hashtbl.create 64 in
  let base_case = { case with Fuzz.Gen.c_schedule = [] } in
  (* race analysis for delivery [e] (about to execute, or pending at a
     terminal) after [steps]; backtrack requests target only nodes of
     this subtree — races into the frontier prefix are covered by the
     driver's full expansion above it *)
  (* step index of each process's wake-up: an envelope is {e enabled}
     at node [j] only if it was posted before [j] and its destination
     had already booted — a pending-but-unbootable envelope in a
     backtrack set would never be picked *)
  let wake_steps steps =
    let wake = Array.make case.Fuzz.Gen.c_nprocs max_int in
    Array.iteri
      (fun i (sp : Schedule.step) ->
        if sp.Schedule.sp_posted_at < 0 then wake.(sp.Schedule.sp_dst) <- i)
      steps;
    wake
  in
  let enabled wake (e : Sim.Session.info) j =
    e.Sim.Session.i_posted_at < j
    && (e.Sim.Session.i_posted_at < 0 || wake.(e.Sim.Session.i_dst) < j)
  in
  let backtrack_env_at j (e : Sim.Session.info) =
    match nodes.(j) with
    | None -> ()
    | Some nj ->
        if Obs.on () then
          Obs.instant "mc" "race"
            [ ("at", Obs.I j); ("env", Obs.I e.Sim.Session.i_env) ];
        nj.nd_backtrack <- IntSet.add e.Sim.Session.i_env nj.nd_backtrack
  in
  let backtrack_all_at j =
    match nodes.(j) with
    | None -> ()
    | Some nj ->
        if Obs.on () then
          Obs.instant "mc" "race" [ ("at", Obs.I j); ("all", Obs.B true) ];
        nj.nd_backtrack <-
          Array.fold_left
            (fun s (i : Sim.Session.info) -> IntSet.add i.Sim.Session.i_env s)
            nj.nd_backtrack nj.nd_ready
  in
  (* realized race: the chosen delivery [e] against every earlier
     same-destination step not in the causal past of [e]'s send *)
  let add_races steps masks wake (e : Sim.Session.info) =
    let k = Array.length steps in
    let smask = Schedule.send_mask masks ~posted_at:e.Sim.Session.i_posted_at in
    for j = d0 to k - 1 do
      if
        steps.(j).Schedule.sp_dst = e.Sim.Session.i_dst
        && smask land (1 lsl j) = 0
      then
        if enabled wake e j then backtrack_env_at j e else backtrack_all_at j
    done
  in
  (* cut race: at a terminal truncated with messages still pending, the
     bound itself breaks commutativity — an execution spending its last
     slots on {e different} deliveries is a different class even when
     the destinations differ.  Every pending envelope therefore gets a
     backtrack point at every node where it was enabled (and the
     conservative all-choices fallback where it existed but could not
     boot), so the deliveries the cut removed are re-inserted at each
     position they could have taken. *)
  let add_cut_races steps wake (e : Sim.Session.info) =
    let k = Array.length steps in
    for j = d0 to k - 1 do
      if enabled wake e j then backtrack_env_at j e
      else if e.Sim.Session.i_posted_at >= 0 && e.Sim.Session.i_posted_at < j
      then backtrack_all_at j
    done
  in
  let rec visit (choices : int list) (sleep : IntSet.t) =
    let sess, steps = Schedule.replay case choices in
    deliveries := !deliveries + Array.length steps;
    let depth = Array.length steps in
    if Obs.on () then Obs.instant "mc" "expand" [ ("depth", Obs.I depth) ];
    if sess.Fuzz.Gen.ms_finished () then begin
      incr execs;
      if dpor then begin
        let wake = wake_steps steps in
        List.iter (add_cut_races steps wake) (sess.Fuzz.Gen.ms_ready ())
      end;
      let key = Canon.key ~nprocs:case.Fuzz.Gen.c_nprocs steps in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        let run = sess.Fuzz.Gen.ms_run () in
        let results = Fuzz.Oracle.evaluate_run oracles base_case run in
        classes :=
          { cl_key = key; cl_choices = choices; cl_results = results } :: !classes
      end
    end
    else begin
      let ready = Array.of_list (sess.Fuzz.Gen.ms_ready ()) in
      let dst_of =
        let tbl = Hashtbl.create (Array.length ready) in
        Array.iter
          (fun (i : Sim.Session.info) ->
            Hashtbl.replace tbl i.Sim.Session.i_env i.Sim.Session.i_dst)
          ready;
        fun id -> Hashtbl.find tbl id
      in
      let candidates =
        Array.to_list ready
        |> List.filter (fun (i : Sim.Session.info) ->
               not (IntSet.mem i.Sim.Session.i_env sleep))
      in
      match candidates with
      | [] ->
          incr sleep_blocked;
          if Obs.on () then
            Obs.instant "mc" "sleep-prune" [ ("depth", Obs.I depth) ]
      | first :: _ ->
          let node =
            {
              nd_ready = ready;
              nd_backtrack =
                (if dpor then IntSet.singleton first.Sim.Session.i_env
                 else
                   List.fold_left
                     (fun s (i : Sim.Session.info) ->
                       IntSet.add i.Sim.Session.i_env s)
                     IntSet.empty candidates);
              nd_done = IntSet.empty;
            }
          in
          nodes.(depth) <- Some node;
          let masks = lazy (Schedule.hb_masks steps) in
          let wake = lazy (wake_steps steps) in
          let rec loop () =
            match
              List.find_opt
                (fun (i : Sim.Session.info) ->
                  IntSet.mem i.Sim.Session.i_env node.nd_backtrack
                  && not (IntSet.mem i.Sim.Session.i_env node.nd_done))
                candidates
            with
            | None -> ()
            | Some e ->
                if dpor then
                  add_races steps (Lazy.force masks) (Lazy.force wake) e;
                let idx = ref 0 in
                Array.iteri
                  (fun i (r : Sim.Session.info) ->
                    if r.Sim.Session.i_env = e.Sim.Session.i_env then idx := i)
                  ready;
                let child_sleep =
                  if dpor then
                    IntSet.filter
                      (fun s -> dst_of s <> e.Sim.Session.i_dst)
                      (IntSet.union sleep node.nd_done)
                  else IntSet.empty
                in
                visit (choices @ [ !idx ]) child_sleep;
                node.nd_done <- IntSet.add e.Sim.Session.i_env node.nd_done;
                loop ()
          in
          loop ();
          nodes.(depth) <- None
    end
  in
  visit prefix IntSet.empty;
  {
    sb_execs = !execs;
    sb_sleep_blocked = !sleep_blocked;
    sb_deliveries = !deliveries;
    sb_classes = List.rev !classes;
  }
