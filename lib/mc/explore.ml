(** DFS explorer with sleep sets and dynamic partial-order reduction,
    over two interchangeable state engines.

    The exploration tree's nodes are schedule prefixes.  How a node's
    simulator state is materialized is an {e engine} choice:

    - {!Replay} is the stateless CHESS/Nidhugg shape: every node is
      reconstructed by replaying its prefix from scratch
      ({!Schedule.replay}), so a search of depth [d] pays O(d²)
      deliveries per maximal execution;
    - {!Incremental} (the default) walks the tree push/pop on one live
      {!Sim.Session} with an undo journal: descending executes one
      delivery, ascending rolls it back in O(Δ), so deliveries per
      execution stay near the schedule depth.  Happens-before masks,
      wake-up indices and the canonical-state fingerprint
      ({!Canon.State}) are maintained incrementally alongside.

    Both engines drive the {e same} DFS code path below, so the visit
    order, the race analysis, the class list with its representative
    schedules, and the scoped {!Obs} event stream are byte-identical by
    construction — the engine choice is invisible in every output
    (deliver/undo simulator events are {!Obs.muted} as engine
    artifacts).

    Dependence relation: two deliveries commute unless they target the
    same process or are causally ordered (one's send is in the causal
    past of the other's delivery).  The race rule is phrased on the
    {e send's} causal past: a delivery [e] races with an earlier step
    [j] at the same destination iff [j] is not in the causal past of
    [e]'s send — same-destination deliveries are always ordered in the
    realized path, so testing the delivery's own past would find no
    race ever.  When a race [(j, e)] is found:

    - if [e] was already pending when [j] was chosen, delivering [e]
      at [j] instead is the canonical reversal: add [e] to [j]'s
      backtrack set;
    - otherwise the reversal needs some intermediate step first, and we
      fall back to adding every choice enabled at [j] (the conservative
      DPOR fallback).

    Under an event-budget cut, a class can differ from an explored one
    only in deliveries the cut removed, so still-pending messages at a
    terminal run the same race analysis ({e virtual races}) — this is
    what keeps the bounded search's class coverage exhaustive at the
    boundary (cross-checked against naive search by `--no-dpor`).

    Sleep sets prune sibling-redundant subtrees: after exploring [e],
    the classes reachable by first taking a delivery independent of
    [e] and later [e] itself are already covered, so such siblings are
    put to sleep.  A node whose every enabled choice sleeps is counted
    and abandoned without touching the oracle battery.

    {2 Transposition table}

    In {e naive} mode a per-task table of canonical-state fingerprints
    prunes converging prefixes: two prefixes with equal {!Canon.key}
    are linearizations of the same Mazurkiewicz trace, so they have
    the same length, the same pending multiset, and isomorphic futures
    — the earlier visit (same depth, already completed: DFS finishes
    equal-depth nodes before revisiting the depth) has already explored
    exactly the classes below, with representatives that stay valid.
    Pruning on state equality is therefore sound {e and} preserves the
    first-seen representatives, turning the naive search into a walk of
    the trace {e trie} — its execution count drops to roughly the class
    count.

    Under DPOR the same pruning is {e unsound} and is never applied:
    two occurrences of one state can carry different sleep sets, so
    the first visit explores only a complement of what the second
    visit's sleep set would allow, and a pruned second visit would also
    stop contributing race-driven backtrack points to {e its own}
    ancestors — the classic stateful-DPOR interaction.  DPOR keeps
    sleep sets, naive keeps the table; `--cross-check` compares the two
    independent reductions. *)

type engine = Replay | Incremental

(** One canonical equivalence class of maximal executions. *)
type class_rec = {
  cl_key : string;  (** {!Canon.key} of the class *)
  cl_choices : int list;
      (** schedule of the first-explored representative *)
  cl_results : (string * Fuzz.Oracle.outcome) list;
      (** oracle battery on that representative *)
}

(** Result of exploring one subtree (all statistics are sums over the
    subtree only; class dedup is local to it). *)
type subtree = {
  sb_execs : int;  (** maximal executions explored *)
  sb_sleep_blocked : int;  (** nodes pruned with every choice asleep *)
  sb_deliveries : int;  (** deliveries simulated, replays included *)
  sb_undos : int;  (** deliveries rolled back (incremental engine) *)
  sb_tt_hits : int;  (** nodes pruned by the transposition table *)
  sb_classes : class_rec list;  (** first-seen order *)
}

(* Backtrack and done sets hold only envelopes {e pending at the node}
   (a race (j, e) has e posted before step j, so e is in node j's ready
   list), so both are bitmasks over the node's ready-array index — the
   hot DPOR bookkeeping (thousands of set inserts per terminal under
   cut races) mutates two ints instead of rebalancing allocated trees.
   Ready lists are bounded by the budget cap (62), so one word is
   enough.  The ready entries themselves live in per-depth int arrays
   preallocated once per [explore] call and refilled in place through
   {!Sim.Session.iter_ready} — the DFS's hottest read path allocates
   nothing per node. *)
type node = {
  nd_env : int array;  (** envelope id per ready index *)
  nd_dst : int array;  (** destination per ready index *)
  nd_posted : int array;  (** posting step per ready index *)
  mutable nd_len : int;  (** live entry count; [-1] = no node at this depth *)
  mutable nd_backtrack : int;  (** ready-index bitmask still to explore *)
  mutable nd_done : int;  (** ready-index bitmask fully explored *)
}

(* The engine interface.  Positional contract: [op_len],
   [op_iter_ready], [op_run], [op_fp] and [op_key] describe the current
   position and are called only right after positioning (visit entry /
   terminal); [op_wake ~len] is read only while positioned at depth
   [len]; [op_step j] and [op_masks ~len] are valid for indices below
   [len] at any time (both engines keep the current path's prefix
   stable). *)
type ops = {
  op_finished : unit -> bool;
  op_iter_ready : (env:int -> dst:int -> posted_at:int -> unit) -> unit;
  op_run : unit -> Fuzz.Gen.run;
  op_len : unit -> int;
  op_step : int -> Schedule.step;
  op_masks : len:int -> int array;
  op_wake : len:int -> int array;
  op_fp : unit -> int * int;
  op_key : unit -> string;
  op_descend : int -> unit;  (** visible-ready index; executes one delivery *)
  op_ascend : unit -> unit;
  op_deliveries : unit -> int;
  op_undos : unit -> int;
}

let clamp c m = if c < 0 then 0 else if c >= m then m - 1 else c

(* wake-up step index per process within the first [len] steps *)
let wake_of_steps ~nprocs (step : int -> Schedule.step) len =
  let wake = Array.make nprocs max_int in
  for i = 0 to len - 1 do
    let sp = step i in
    if sp.Schedule.sp_posted_at < 0 then wake.(sp.Schedule.sp_dst) <- i
  done;
  wake

let replay_ops (case : Fuzz.Gen.case) (prefix : int list) : ops =
  let nprocs = case.Fuzz.Gen.c_nprocs in
  let deliveries = ref 0 in
  let chosen = ref (List.rev prefix) in
  (* the session/steps of the last replay; after an ascend this still
     holds the deeper child's array, whose prefix equals the current
     position's steps — the positional contract above makes that
     sufficient *)
  let sync () =
    let sess, steps = Schedule.replay case (List.rev !chosen) in
    deliveries := !deliveries + Array.length steps;
    (sess, steps)
  in
  let cur = ref (sync ()) in
  let sess () = fst !cur in
  let steps () = snd !cur in
  {
    op_finished = (fun () -> (sess ()).Fuzz.Gen.ms_finished ());
    op_iter_ready = (fun f -> (sess ()).Fuzz.Gen.ms_iter_ready f);
    op_run = (fun () -> (sess ()).Fuzz.Gen.ms_run ());
    op_len = (fun () -> Array.length (steps ()));
    op_step = (fun j -> (steps ()).(j));
    op_masks = (fun ~len -> Schedule.hb_masks ~nprocs (Array.sub (steps ()) 0 len));
    op_wake = (fun ~len -> wake_of_steps ~nprocs (fun j -> (steps ()).(j)) len);
    op_fp = (fun () -> Canon.State.of_steps ~nprocs (steps ()) (Array.length (steps ())));
    op_key = (fun () -> Canon.key ~nprocs (steps ()));
    op_descend =
      (fun c ->
        chosen := c :: !chosen;
        cur := sync ());
    op_ascend = (fun () -> chosen := List.tl !chosen);
    op_deliveries = (fun () -> !deliveries);
    op_undos = (fun () -> 0);
  }

let incremental_ops (case : Fuzz.Gen.case) (prefix : int list) : ops =
  let nprocs = case.Fuzz.Gen.c_nprocs in
  let s = Fuzz.Gen.open_session ~record:true case in
  let cap = Schedule.max_budget + 1 in
  let dummy =
    { Schedule.sp_env = 0; sp_dst = 0; sp_posted_at = -1; sp_first_env = 0; sp_choice = 0 }
  in
  let steps = Array.make cap dummy in
  let masks = Array.make cap 0 in
  let len = ref 0 in
  let wake = Array.make nprocs max_int in
  let last_at = Array.make nprocs (-1) in
  (* per-push journal for the two per-process indices *)
  let wake_prev = Array.make cap 0 in
  let last_prev = Array.make cap 0 in
  let st = Canon.State.create ~nprocs in
  let deliveries = ref 0 in
  let undos = ref 0 in
  (* one reused thunk: a muted delivery per DFS edge, without a fresh
     closure per call *)
  let mute_choice = ref 0 in
  let mute_deliver () = s.Fuzz.Gen.ms_deliver !mute_choice in
  let deliver c =
    let watermark = s.Fuzz.Gen.ms_envelopes () in
    mute_choice := c;
    let info = Obs.muted mute_deliver in
    let i = !len in
    let sp =
      {
        Schedule.sp_env = info.Sim.Session.i_env;
        sp_dst = info.Sim.Session.i_dst;
        sp_posted_at = info.Sim.Session.i_posted_at;
        sp_first_env = watermark;
        sp_choice = c;
      }
    in
    steps.(i) <- sp;
    let d = sp.Schedule.sp_dst in
    masks.(i) <-
      Schedule.hb_mask_step masks ~posted_at:sp.Schedule.sp_posted_at
        ~last:last_at.(d);
    last_prev.(i) <- last_at.(d);
    last_at.(d) <- i;
    wake_prev.(i) <- wake.(d);
    if sp.Schedule.sp_posted_at < 0 then wake.(d) <- i;
    Canon.State.push st sp;
    incr deliveries;
    len := i + 1
  in
  (* position at the prefix, mirroring Schedule.replay's clamping *)
  List.iter
    (fun c ->
      if not (s.Fuzz.Gen.ms_finished ()) then
        deliver (clamp c (List.length (s.Fuzz.Gen.ms_ready ()))))
    prefix;
  {
    op_finished = s.Fuzz.Gen.ms_finished;
    op_iter_ready = s.Fuzz.Gen.ms_iter_ready;
    op_run = s.Fuzz.Gen.ms_run;
    op_len = (fun () -> !len);
    op_step = (fun j -> steps.(j));
    op_masks = (fun ~len:_ -> masks);
    op_wake = (fun ~len:_ -> wake);
    op_fp = (fun () -> Canon.State.fingerprint st);
    op_key = (fun () -> Canon.key ~nprocs (Array.sub steps 0 !len));
    op_descend = deliver;
    op_ascend =
      (fun () ->
        let i = !len - 1 in
        s.Fuzz.Gen.ms_undo ();
        let d = steps.(i).Schedule.sp_dst in
        last_at.(d) <- last_prev.(i);
        wake.(d) <- wake_prev.(i);
        Canon.State.pop st;
        incr undos;
        len := i)
      ;
    op_deliveries = (fun () -> !deliveries);
    op_undos = (fun () -> !undos);
  }

let explore ~engine ~tt ~oracles ~dpor ~(case : Fuzz.Gen.case)
    ~(prefix : int list) : subtree =
  let budget = case.Fuzz.Gen.c_max_events in
  if budget > Schedule.max_budget then
    invalid_arg
      (Printf.sprintf "Mc.Explore.explore: budget %d above the mc cap %d" budget
         Schedule.max_budget);
  let d0 = List.length prefix in
  let nodes =
    Array.init (budget + 1) (fun _ ->
        {
          nd_env = Array.make Sys.int_size 0;
          nd_dst = Array.make Sys.int_size 0;
          nd_posted = Array.make Sys.int_size 0;
          nd_len = -1;
          nd_backtrack = 0;
          nd_done = 0;
        })
  in
  let execs = ref 0 in
  let sleep_blocked = ref 0 in
  let tt_hits = ref 0 in
  let classes = ref [] in
  let base_case = { case with Fuzz.Gen.c_schedule = [] } in
  let ops =
    match engine with
    | Replay -> replay_ops case prefix
    | Incremental -> incremental_ops case prefix
  in
  (* the current path's choice indices below the prefix, for class
     representatives (one reused array instead of list appends) *)
  let extra = Array.make (budget + 1) 0 in
  let choices_list depth =
    if depth <= d0 then prefix
    else prefix @ List.init (depth - d0) (fun i -> extra.(d0 + i))
  in
  (* env id -> destination, filled idempotently from each node's ready
     list: ids are assigned densely along the path, so an entry written
     at a node stays valid throughout that node's subtree (one reused
     array instead of a per-node Hashtbl) *)
  let env_dst = ref (Array.make 64 0) in
  let note_dst id dst =
    if id >= Array.length !env_dst then
      env_dst :=
        Array.append !env_dst
          (Array.make (max (Array.length !env_dst) (id + 1)) 0);
    !env_dst.(id) <- dst
  in
  let dst_of id = !env_dst.(id) in
  (* class dedup and the naive-mode transposition table are both keyed
     by the 126-bit fingerprint pair, bucketed by the first half so the
     probe hashes a bare int *)
  let fp_seen (tbl : (int, int list) Hashtbl.t) (h1, h2) =
    match Hashtbl.find_opt tbl h1 with
    | Some l when List.mem h2 l -> true
    | Some l ->
        Hashtbl.replace tbl h1 (h2 :: l);
        false
    | None ->
        Hashtbl.add tbl h1 [ h2 ];
        false
  in
  let seen : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  (* sound under naive search only; see the module comment *)
  let use_tt = tt && not dpor in
  let ttbl : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  let enabled wake ~dst ~posted_at j =
    posted_at < j && (posted_at < 0 || wake.(dst) < j)
  in
  let idx_of (nj : node) env =
    let r = nj.nd_env in
    let n = nj.nd_len in
    let i = ref 0 in
    while !i < n && r.(!i) <> env do incr i done;
    if !i < n then !i else -1
  in
  let backtrack_env_at j env =
    let nj = nodes.(j) in
    if nj.nd_len >= 0 then begin
      if Obs.on () then
        Obs.instant "mc" "race" [ ("at", Obs.I j); ("env", Obs.I env) ];
      let i = idx_of nj env in
      if i >= 0 then nj.nd_backtrack <- nj.nd_backtrack lor (1 lsl i)
    end
  in
  let backtrack_all_at j =
    let nj = nodes.(j) in
    if nj.nd_len >= 0 then begin
      if Obs.on () then
        Obs.instant "mc" "race" [ ("at", Obs.I j); ("all", Obs.B true) ];
      nj.nd_backtrack <- (1 lsl nj.nd_len) - 1
    end
  in
  (* realized race: the chosen delivery [e] against every earlier
     same-destination step not in the causal past of [e]'s send;
     backtrack requests target only nodes of this subtree — races into
     the frontier prefix are covered by the driver's full expansion
     above it *)
  let add_races k masks wake ~env ~dst ~posted_at =
    let smask = Schedule.send_mask masks ~posted_at in
    for j = d0 to k - 1 do
      if (ops.op_step j).Schedule.sp_dst = dst && smask land (1 lsl j) = 0 then
        if enabled wake ~dst ~posted_at j then backtrack_env_at j env
        else backtrack_all_at j
    done
  in
  (* cut race: at a terminal truncated with messages still pending, the
     bound itself breaks commutativity — an execution spending its last
     slots on {e different} deliveries is a different class even when
     the destinations differ.  Every pending envelope therefore gets a
     backtrack point at every node where it was enabled (and the
     conservative all-choices fallback where it existed but could not
     boot), so the deliveries the cut removed are re-inserted at each
     position they could have taken. *)
  let add_cut_races k wake ~env ~dst ~posted_at =
    for j = d0 to k - 1 do
      if enabled wake ~dst ~posted_at j then backtrack_env_at j env
      else if posted_at >= 0 && posted_at < j then backtrack_all_at j
    done
  in
  (* [sleep] is a small list of sleeping envelope ids (bounded by the
     widest ready list on the path); membership scans beat allocated
     sets at this size *)
  let rec visit (sleep : int list) =
    let depth = ops.op_len () in
    if Obs.on () then Obs.instant "mc" "expand" [ ("depth", Obs.I depth) ];
    if use_tt && fp_seen ttbl (ops.op_fp ()) then begin
      incr tt_hits;
      if Obs.on () then
        Obs.instant "mc" "tt-prune" [ ("depth", Obs.I depth) ]
    end
    else if ops.op_finished () then begin
      incr execs;
      if dpor then begin
        let wake = ops.op_wake ~len:depth in
        ops.op_iter_ready (fun ~env ~dst ~posted_at ->
            add_cut_races depth wake ~env ~dst ~posted_at)
      end;
      (* dedup by the O(1) state fingerprint first; the O(depth) string
         key is built only for first-seen classes (equal keys have equal
         fingerprints, and a pair collision — odds ~2^-126 per pair —
         would merge the same two classes under either engine) *)
      if not (fp_seen seen (ops.op_fp ())) then begin
        let results =
          if oracles = [] then []
          else Fuzz.Oracle.evaluate_run oracles base_case (ops.op_run ())
        in
        classes :=
          {
            cl_key = ops.op_key ();
            cl_choices = choices_list depth;
            cl_results = results;
          }
          :: !classes
      end
    end
    else begin
      let node = nodes.(depth) in
      (* refill this depth's ready buffers in place *)
      let fill = ref 0 in
      ops.op_iter_ready (fun ~env ~dst ~posted_at ->
          let i = !fill in
          if i > Sys.int_size - 2 then
            invalid_arg
              (Printf.sprintf
                 "Mc.Explore.explore: over %d pending messages at one node \
                  (the bitmask bookkeeping caps there)"
                 (Sys.int_size - 2));
          node.nd_env.(i) <- env;
          node.nd_dst.(i) <- dst;
          node.nd_posted.(i) <- posted_at;
          note_dst env dst;
          fill := i + 1);
      let len = !fill in
      (* candidate = non-sleeping ready entry, as a ready-index bitmask
         (iteration below is in ready order, lowest index first) *)
      let cand =
        if sleep = [] then (1 lsl len) - 1
        else begin
          let cand = ref 0 in
          for i = len - 1 downto 0 do
            if not (List.memq node.nd_env.(i) sleep) then
              cand := (!cand lsl 1) lor 1
            else cand := !cand lsl 1
          done;
          !cand
        end
      in
      if cand = 0 then begin
        incr sleep_blocked;
        if Obs.on () then
          Obs.instant "mc" "sleep-prune" [ ("depth", Obs.I depth) ]
      end
      else begin
        node.nd_len <- len;
        node.nd_backtrack <- (if dpor then cand land -cand else cand);
        node.nd_done <- 0;
        let masks = lazy (ops.op_masks ~len:depth) in
        let wake = lazy (ops.op_wake ~len:depth) in
        let rec loop () =
          let todo = node.nd_backtrack land cand land lnot node.nd_done in
          if todo <> 0 then begin
            (* lowest set bit = first candidate in ready order *)
            let bit = todo land -todo in
            let idx =
              let rec go i m = if m land 1 <> 0 then i else go (i + 1) (m lsr 1) in
              go 0 bit
            in
            let dst_e = node.nd_dst.(idx) in
            if dpor then
              add_races depth (Lazy.force masks) (Lazy.force wake)
                ~env:node.nd_env.(idx) ~dst:dst_e ~posted_at:node.nd_posted.(idx);
            let child_sleep =
              if not dpor then []
              else if node.nd_done = 0 && sleep == [] then []
              else begin
                let acc = ref [] in
                for i = len - 1 downto 0 do
                  if node.nd_done land (1 lsl i) <> 0 && node.nd_dst.(i) <> dst_e
                  then acc := node.nd_env.(i) :: !acc
                done;
                List.iter
                  (fun s ->
                    if dst_of s <> dst_e && not (List.memq s !acc) then
                      acc := s :: !acc)
                  sleep;
                !acc
              end
            in
            extra.(depth) <- idx;
            ops.op_descend idx;
            visit child_sleep;
            ops.op_ascend ();
            node.nd_done <- node.nd_done lor bit;
            loop ()
          end
        in
        loop ();
        node.nd_len <- -1
      end
    end
  in
  visit [];
  {
    sb_execs = !execs;
    sb_sleep_blocked = !sleep_blocked;
    sb_deliveries = ops.op_deliveries ();
    sb_undos = ops.op_undos ();
    sb_tt_hits = !tt_hits;
    sb_classes = List.rev !classes;
  }
