(** Frontier-splitting exploration driver.

    Parallel DPOR is racy in general: backtrack sets computed in one
    subtree may target nodes owned by another worker.  We sidestep this
    by splitting at a fixed {e frontier depth}: every prefix of that
    length is expanded {e naively} (all choices, no reduction), and each
    resulting prefix becomes an independent task explored with full
    DPOR below the frontier.  Race analysis inside a subtree never
    reaches above its own root ({!Explore.explore} ignores prefix
    steps), so tasks share nothing and the output is independent of the
    worker count: tasks are enumerated in lexicographic prefix order,
    merged in that same order with first-seen class dedup, and the
    final class list is sorted by canonical key.  Byte-determinism of
    the report then follows for any [--jobs].

    The phases are exposed separately ({!frontier_tasks},
    {!explore_task}, {!merge_tasks}) because a distributed runner
    executes them in different processes: every worker re-enumerates
    the (cheap, deterministic) frontier locally, explores its assigned
    task range, and ships the subtrees back for an in-order merge that
    is byte-identical to {!run}.

    The price is duplicated work proportional to the naive blow-up of
    the frontier layer; depth 2 is the default and plenty for the tree
    widths this model produces. *)

type violation = {
  vi_class : string;  (** canonical key of the violating class *)
  vi_oracle : string;
  vi_detail : string;
  vi_case : Fuzz.Gen.case;  (** schedule-bearing repro case *)
  vi_shrunk : Fuzz.Gen.case;  (** after {!Mc_shrink.shrink} *)
}

type outcome = {
  mc_case : Fuzz.Gen.case;  (** the box, schedule-free *)
  mc_dpor : bool;
  mc_engine : Explore.engine;
  mc_frontier : int;  (** effective frontier depth *)
  mc_tasks : int;
  mc_executions : int;
  mc_sleep_blocked : int;
  mc_deliveries : int;
  mc_undos : int;  (** deliveries rolled back (incremental engine) *)
  mc_tt_hits : int;  (** transposition-table prunes (naive mode) *)
  mc_classes : Explore.class_rec list;  (** sorted by [cl_key] *)
  mc_violations : violation list;
}

(* Reject cases the driver cannot model-check; shared by the local run
   and the distributed worker (which must fail identically). *)
let validate_case (case : Fuzz.Gen.case) =
  (match Fuzz.Gen.validate case with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Mc.Driver.run: " ^ e));
  if case.Fuzz.Gen.c_schedule <> [] then
    invalid_arg "Mc.Driver.run: the case already carries a schedule";
  if case.Fuzz.Gen.c_max_events > Schedule.max_budget then
    invalid_arg
      (Printf.sprintf "Mc.Driver.run: budget %d above the mc cap %d"
         case.Fuzz.Gen.c_max_events Schedule.max_budget);
  match case.Fuzz.Gen.c_sched with
  | Fuzz.Gen.S_deferring _ ->
      invalid_arg
        "Mc.Driver.run: the deferring adversary picks its own delivery \
         order; model-check an async box instead"
  | _ -> ()

let effective_frontier ~frontier (case : Fuzz.Gen.case) =
  max 0 (min frontier case.Fuzz.Gen.c_max_events)

(* Naive expansion of the frontier layer, in lexicographic prefix
   order; prefixes that hit a maximal execution early become tasks of
   their own (the subtree explorer records them as terminals).  A pure
   function of (case, frontier): any process enumerating the same case
   gets the same task array, which is what makes task indices stable
   distributed work ids. *)
let frontier_tasks ~frontier (case : Fuzz.Gen.case) : int list array =
  validate_case case;
  let frontier = effective_frontier ~frontier case in
  let tasks = ref [] in
  let rec enum prefix depth =
    if depth = frontier then tasks := prefix :: !tasks
    else begin
      let sess, _steps = Schedule.replay case prefix in
      if sess.Fuzz.Gen.ms_finished () then tasks := prefix :: !tasks
      else
        let m = List.length (sess.Fuzz.Gen.ms_ready ()) in
        for c = 0 to m - 1 do
          enum (prefix @ [ c ]) (depth + 1)
        done
    end
  in
  (* scope 0: the (serial) frontier enumeration; scope 1+i: task i.
     Every scoped event stream is a pure function of the case, so the
     trace digest is jobs-invariant like the report itself. *)
  Obs.with_scope 0 @@ fun () ->
  enum [] 0;
  let tasks = Array.of_list (List.rev !tasks) in
  if Obs.on () then
    Obs.instant "mc" "frontier"
      [ ("tasks", Obs.I (Array.length tasks)); ("depth", Obs.I frontier) ];
  tasks

let explore_task ~oracles ~dpor ~engine ~tt ~(case : Fuzz.Gen.case)
    ~(tasks : int list array) i : Explore.subtree =
  let sb =
    Obs.with_scope (1 + i) @@ fun () ->
    if Obs.on () then Obs.span_begin "mc" "task" [ ("i", Obs.I i) ];
    let sb = Explore.explore ~engine ~tt ~oracles ~dpor ~case ~prefix:tasks.(i) in
    if Obs.on () then
      Obs.span_end "mc" "task"
        [ ("i", Obs.I i); ("execs", Obs.I sb.Explore.sb_execs) ];
    sb
  in
  (* engine-dependent statistics are emitted {e ambient} (outside the
     task scope, under their own category): they vary with the engine
     by design, so they must stay out of the digest and of the
     scoped stream the goldens pin *)
  if Obs.on () then begin
    Obs.counter "mce" "deliveries" [ ("task", Obs.I i) ] sb.Explore.sb_deliveries;
    Obs.counter "mce" "undos" [ ("task", Obs.I i) ] sb.Explore.sb_undos;
    Obs.counter "mce" "tt-hits" [ ("task", Obs.I i) ] sb.Explore.sb_tt_hits
  end;
  sb

(* Merge in task order (lexicographic prefixes) with first-seen class
   dedup, then sort classes by key: both steps are independent of the
   worker count — and of which process explored which subtree. *)
let merge_tasks ~oracles ~dpor ~engine ~frontier ~(case : Fuzz.Gen.case)
    (subtrees : Explore.subtree array) : outcome =
  let execs = ref 0 in
  let sleep_blocked = ref 0 in
  let deliveries = ref 0 in
  let undos = ref 0 in
  let tt_hits = ref 0 in
  let seen = Hashtbl.create 64 in
  let classes = ref [] in
  Array.iter
    (fun (sb : Explore.subtree) ->
      execs := !execs + sb.Explore.sb_execs;
      sleep_blocked := !sleep_blocked + sb.Explore.sb_sleep_blocked;
      deliveries := !deliveries + sb.Explore.sb_deliveries;
      undos := !undos + sb.Explore.sb_undos;
      tt_hits := !tt_hits + sb.Explore.sb_tt_hits;
      List.iter
        (fun (cl : Explore.class_rec) ->
          if not (Hashtbl.mem seen cl.Explore.cl_key) then begin
            Hashtbl.add seen cl.Explore.cl_key ();
            classes := cl :: !classes
          end)
        sb.Explore.sb_classes)
    subtrees;
  let classes =
    List.sort
      (fun (a : Explore.class_rec) b ->
        compare a.Explore.cl_key b.Explore.cl_key)
      !classes
  in
  let violations =
    List.concat_map
      (fun (cl : Explore.class_rec) ->
        List.filter_map
          (fun (name, o) ->
            match o with
            | Fuzz.Oracle.Fail detail ->
                let vcase =
                  { case with Fuzz.Gen.c_schedule = cl.Explore.cl_choices }
                in
                let shrunk = Mc_shrink.shrink ~oracles ~oracle:name vcase in
                Some
                  {
                    vi_class = cl.Explore.cl_key;
                    vi_oracle = name;
                    vi_detail = detail;
                    vi_case = vcase;
                    vi_shrunk = shrunk;
                  }
            | Fuzz.Oracle.Pass | Fuzz.Oracle.Skip _ -> None)
          cl.Explore.cl_results)
      classes
  in
  {
    mc_case = case;
    mc_dpor = dpor;
    mc_engine = engine;
    mc_frontier = effective_frontier ~frontier case;
    mc_tasks = Array.length subtrees;
    mc_executions = !execs;
    mc_sleep_blocked = !sleep_blocked;
    mc_deliveries = !deliveries;
    mc_undos = !undos;
    mc_tt_hits = !tt_hits;
    mc_classes = classes;
    mc_violations = violations;
  }

let run ?(oracles = Fuzz.Oracle.registry) ?(dpor = true)
    ?(engine = Explore.Incremental) ?(tt = true) ?(frontier = 2) ?jobs
    (case : Fuzz.Gen.case) : outcome =
  let tasks = frontier_tasks ~frontier case in
  let explore i = explore_task ~oracles ~dpor ~engine ~tt ~case ~tasks i in
  let subtrees =
    match jobs with
    | Some j when j <= 1 -> Array.init (Array.length tasks) explore
    | _ -> Pool.map ?jobs ~chunk:1 (Array.length tasks) explore
  in
  merge_tasks ~oracles ~dpor ~engine ~frontier ~case subtrees
