(** Deterministic text reports for model-checking outcomes.

    Two renderings: {!render_verdicts} is the {e mode-invariant} core —
    class count, per-oracle outcome tallies and the violating
    (class, oracle) pairs, with no detail strings (details may embed
    interleaving-dependent event ids or times, and DPOR and naive
    search pick different representatives) — and is what the
    [--cross-check] comparison hashes.  {!render} is the full report:
    search statistics, verdicts, and one repro + shrunk line per
    violation. *)

let outcome_kind = function
  | Fuzz.Oracle.Pass -> "pass"
  | Fuzz.Oracle.Skip _ -> "skip"
  | Fuzz.Oracle.Fail _ -> "fail"

let render_verdicts (o : Driver.outcome) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "verdicts over %d classes:\n" (List.length o.Driver.mc_classes));
  let names =
    match o.Driver.mc_classes with
    | [] -> []
    | cl :: _ -> List.map fst cl.Explore.cl_results
  in
  List.iter
    (fun name ->
      let pass = ref 0 and skip = ref 0 and fail = ref 0 in
      List.iter
        (fun (cl : Explore.class_rec) ->
          match List.assoc_opt name cl.Explore.cl_results with
          | Some Fuzz.Oracle.Pass -> incr pass
          | Some (Fuzz.Oracle.Skip _) -> incr skip
          | Some (Fuzz.Oracle.Fail _) -> incr fail
          | None -> ())
        o.Driver.mc_classes;
      Buffer.add_string b
        (Printf.sprintf "  %-22s pass=%-6d skip=%-6d fail=%d\n" name !pass
           !skip !fail))
    names;
  (match o.Driver.mc_violations with
  | [] -> Buffer.add_string b "violating classes: none\n"
  | vs ->
      Buffer.add_string b "violating classes:\n";
      List.iter
        (fun (v : Driver.violation) ->
          Buffer.add_string b
            (Printf.sprintf "  %s %s\n" (Canon.short v.Driver.vi_class)
               v.Driver.vi_oracle))
        vs);
  Buffer.contents b

let render ?(stats = false) (o : Driver.outcome) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "model check: %s\n"
       (Fuzz.Replay.to_string o.Driver.mc_case));
  Buffer.add_string b
    (Printf.sprintf "mode: %s, engine: %s, frontier depth %d, %d tasks\n"
       (if o.Driver.mc_dpor then "dpor" else "naive")
       (match o.Driver.mc_engine with
       | Explore.Replay -> "replay"
       | Explore.Incremental -> "incremental")
       o.Driver.mc_frontier o.Driver.mc_tasks);
  Buffer.add_string b
    (Printf.sprintf
       "explored: %d maximal executions, %d classes, %d sleep-set prunes, %d \
        table prunes\n"
       o.Driver.mc_executions
       (List.length o.Driver.mc_classes)
       o.Driver.mc_sleep_blocked o.Driver.mc_tt_hits);
  if stats then
    Buffer.add_string b
      (Printf.sprintf
         "deliveries simulated (replays included): %d (%d undone, %.2f per \
          execution)\n"
         o.Driver.mc_deliveries o.Driver.mc_undos
         (float_of_int o.Driver.mc_deliveries
         /. float_of_int (max 1 o.Driver.mc_executions)));
  Buffer.add_string b (render_verdicts o);
  (match o.Driver.mc_violations with
  | [] -> ()
  | vs ->
      Buffer.add_string b (Printf.sprintf "violations: %d\n" (List.length vs));
      List.iter
        (fun (v : Driver.violation) ->
          Buffer.add_string b
            (Printf.sprintf "  %s %s: %s\n"
               (Canon.short v.Driver.vi_class)
               v.Driver.vi_oracle v.Driver.vi_detail);
          Buffer.add_string b
            (Printf.sprintf "    repro:  %s\n"
               (Fuzz.Replay.repro_command v.Driver.vi_case));
          Buffer.add_string b
            (Printf.sprintf "    shrunk: %s\n"
               (Fuzz.Replay.repro_command v.Driver.vi_shrunk)))
        vs);
  Buffer.contents b
