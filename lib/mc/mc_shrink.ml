(** Schedule shrinking: greedily minimize a violating schedule while
    the named oracle keeps failing.

    Candidate moves, tried in order of aggressiveness: truncate the
    schedule to a prefix (half, then all-but-one), delete a single
    choice, and replace a choice by [0] (FIFO).  The empty schedule is
    never a candidate — [c_schedule = []] means "no schedule" and would
    hand the run back to the case's own scheduler.  Each accepted move
    strictly decreases (length, sum of choices) lexicographically, so
    the loop terminates; [max_evals] bounds the re-simulation work on
    stubborn cases. *)

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let remove i l = List.filteri (fun j _ -> j <> i) l

let set i v l = List.mapi (fun j x -> if j = i then v else x) l

let still_fails ?walker ~oracles ~oracle case =
  let results =
    match walker with
    | Some w when Fuzz.Sched_walk.compatible w case ->
        Fuzz.Sched_walk.evaluate w ~oracles case
    | _ -> Fuzz.Oracle.evaluate oracles case
  in
  List.exists
    (fun (n, o) ->
      n = oracle
      && match o with Fuzz.Oracle.Fail _ -> true | Pass | Skip _ -> false)
    results

let shrink ?(max_evals = 200) ?(session_reuse = true) ~oracles ~oracle
    (case : Fuzz.Gen.case) : Fuzz.Gen.case =
  (* every move below is schedule-only, so one walker serves the whole
     descent: undo to the divergence point, re-deliver the suffix *)
  let walker =
    if session_reuse && case.Fuzz.Gen.c_schedule <> [] then
      Some (Fuzz.Sched_walk.create case)
    else None
  in
  let evals = ref 0 in
  let ok c =
    !evals < max_evals
    && begin
         incr evals;
         still_fails ?walker ~oracles ~oracle c
       end
  in
  let rec improve (case : Fuzz.Gen.case) =
    let sch = case.Fuzz.Gen.c_schedule in
    let n = List.length sch in
    let with_s s = { case with Fuzz.Gen.c_schedule = s } in
    let truncations =
      List.filter_map
        (fun k -> if k >= 1 && k < n then Some (with_s (take k sch)) else None)
        [ n / 2; n - 1 ]
    in
    let deletions =
      if n >= 2 then List.init n (fun i -> with_s (remove i sch)) else []
    in
    let zeroings =
      List.concat
        (List.mapi
           (fun i c -> if c > 0 then [ with_s (set i 0 sch) ] else [])
           sch)
    in
    match List.find_opt ok (truncations @ deletions @ zeroings) with
    | Some better -> improve better
    | None -> case
  in
  if case.Fuzz.Gen.c_schedule = [] then case else improve case
