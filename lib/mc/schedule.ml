(** Schedule prefixes and their deterministic replay.

    A schedule is a sequence of {e choice indices}: choice [i] picks
    the index-[i]th entry of the session's ready list (posting order)
    at step [i].  Replaying the same prefix through {!Fuzz.Gen}'s
    choice-point session always yields the identical execution —
    {!Sim.Session} is deterministic given the choices — which is what
    makes stateless search sound: every node of the exploration tree is
    reconstructed from its prefix alone.

    Each executed delivery is summarized as a {!step}, carrying exactly
    the causal facts the DPOR race analysis and the canonicalizer need:
    which envelope was delivered where, which step posted it, and the
    envelope-id watermark before the step ran (so a message can be
    named by its posting step and send offset, independent of the
    interleaving). *)

(** One executed delivery. *)
type step = {
  sp_env : int;  (** envelope id (dense, posting order) *)
  sp_dst : int;  (** receiving process *)
  sp_posted_at : int;
      (** delivery index of the step that posted the envelope; [-1] for
          the initial wake-ups *)
  sp_first_env : int;
      (** envelope-id watermark before this step ran: the envelopes
          this step posted have ids in [[sp_first_env; next watermark)] *)
  sp_choice : int;  (** the choice index that selected this delivery *)
}

(** Hard cap on the event budget of model-checked cases: the explorer
    tracks happens-before as per-step bit masks in a native [int]. *)
let max_budget = 62

(** Replay a choice prefix from scratch.  Returns the live session
    (positioned after the prefix, ready for further choices or
    [ms_run]) and the executed steps.  Choices are clamped to the
    ready-list size, mirroring {!Sim.run_scheduled}; a prefix longer
    than the execution is cut at the maximal point.

    Replays run {!Obs.muted}: the simulator-level events of an
    exploration-internal replay are an engine artifact (the incremental
    engine reaches the same node without them), so they are kept out of
    the scoped stream — the trace digest of a model-checking run is a
    function of the search tree, not of how the engine walks it. *)
let replay (case : Fuzz.Gen.case) (choices : int list) :
    Fuzz.Gen.mc_session * step array =
  Obs.muted @@ fun () ->
  let s = Fuzz.Gen.open_session case in
  let steps = ref [] in
  let rec go = function
    | [] -> ()
    | c :: rest ->
        if s.Fuzz.Gen.ms_finished () then ()
        else begin
          let m = List.length (s.Fuzz.Gen.ms_ready ()) in
          let c = if c < 0 then 0 else if c >= m then m - 1 else c in
          let watermark = s.Fuzz.Gen.ms_envelopes () in
          let info = s.Fuzz.Gen.ms_deliver c in
          steps :=
            {
              sp_env = info.Sim.Session.i_env;
              sp_dst = info.Sim.Session.i_dst;
              sp_posted_at = info.Sim.Session.i_posted_at;
              sp_first_env = watermark;
              sp_choice = c;
            }
            :: !steps;
          go rest
        end
  in
  go choices;
  (s, Array.of_list (List.rev !steps))

(** The happens-before mask of one more step, given the masks so far:
    bit [j] of the result is set iff step [j] is in the causal past of
    the new step (same receiving process, or posting, transitively
    closed).  [last] is the index of the previous step at the new
    step's destination ([-1] if none).  The length-[max_budget] cap
    keeps every mask in one [int]. *)
let hb_mask_step (masks : int array) ~posted_at ~last =
  let m = ref 0 in
  if posted_at >= 0 then m := (1 lsl posted_at) lor masks.(posted_at);
  if last >= 0 then m := !m lor (1 lsl last) lor masks.(last);
  !m

(** Happens-before masks of a whole step sequence (the replay engine's
    per-node recomputation; the incremental engine maintains the same
    masks one {!hb_mask_step} at a time). *)
let hb_masks ~nprocs (steps : step array) : int array =
  let k = Array.length steps in
  let masks = Array.make k 0 in
  (* last previous step at each process, for the program-order edge *)
  let last_at = Array.make nprocs (-1) in
  for i = 0 to k - 1 do
    let d = steps.(i).sp_dst in
    masks.(i) <- hb_mask_step masks ~posted_at:steps.(i).sp_posted_at ~last:last_at.(d);
    last_at.(d) <- i
  done;
  masks

(** Causal past of a {e send}: the posting step and everything before
    it.  Used by the race rule — two same-destination deliveries are a
    reversible race exactly when neither message's send is caused by
    the other's delivery. *)
let send_mask (masks : int array) ~posted_at =
  if posted_at < 0 then 0 else (1 lsl posted_at) lor masks.(posted_at)
