(** Interchangeable-state canonicalizer.

    Two interleavings are {e equivalent} (Mazurkiewicz-trace equal for
    our dependence relation) iff every process receives the same
    messages in the same order — deliveries at different processes
    commute, deliveries at the same process do not.  The canonical key
    is therefore the per-process sequence of {e message identities},
    where a message is named not by its envelope id (assignment order
    is interleaving-dependent) but structurally:

    - a wake-up is ["w"];
    - a message posted by the [o]-th send of the step that is the
      [s]-th delivery at process [p] is ["p.s.o"] — and [(p, s)] names
      that step canonically by induction.

    Equal keys ⇔ same per-process delivery sequences ⇔ isomorphic
    execution graphs with identical per-process algorithm behaviour, so
    the oracle battery needs to run on only one representative per
    key. *)

let key ~nprocs (steps : Schedule.step array) : string =
  let k = Array.length steps in
  (* canonical label of each executed step: (dst, per-dst sequence no.) *)
  let labels = Array.make k (0, 0) in
  let seq = Array.make nprocs 0 in
  for i = 0 to k - 1 do
    let d = steps.(i).Schedule.sp_dst in
    labels.(i) <- (d, seq.(d));
    seq.(d) <- seq.(d) + 1
  done;
  (* built with one buffer: [Printf]-free, this is the per-class hot
     path of the explorer's terminal processing *)
  let buf = Buffer.create (16 * k) in
  let cause i =
    let c = steps.(i).Schedule.sp_posted_at in
    if c < 0 then Buffer.add_char buf 'w'
    else begin
      let p, s = labels.(c) in
      let offset = steps.(i).Schedule.sp_env - steps.(c).Schedule.sp_first_env in
      Buffer.add_string buf (string_of_int p);
      Buffer.add_char buf '.';
      Buffer.add_string buf (string_of_int s);
      Buffer.add_char buf '.';
      Buffer.add_string buf (string_of_int offset)
    end
  in
  let per_proc = Array.make nprocs [] in
  for i = k - 1 downto 0 do
    let d = steps.(i).Schedule.sp_dst in
    per_proc.(d) <- i :: per_proc.(d)
  done;
  for d = 0 to nprocs - 1 do
    if d > 0 then Buffer.add_char buf '|';
    List.iteri
      (fun j i ->
        if j > 0 then Buffer.add_char buf ',';
        cause i)
      per_proc.(d)
  done;
  Buffer.contents buf

(** Short display form of a key for reports: a stable hex digest
    prefix (keys grow with the budget; reports want a fixed-width
    name). *)
let short k = String.sub (Digest.to_hex (Digest.string k)) 0 10

(** Incrementally maintained canonical-state fingerprint.

    A push/pop mirror of {!key}: the state after a prefix is its
    per-process sequence of structural message names, and a delivery
    appends exactly one name at one process — so the fingerprint is
    maintained as one rolling hash {e per process} plus a combined
    value updated by the changed process's delta, all O(1) per
    operation (pop restores the saved pair from a journal).

    Two independent 63-bit hashes are kept and probed as a pair
    (SPIN-style hash compaction, but with the pair width pushing the
    collision odds below any realistic search size): the transposition
    table stores fingerprints, not keys, so probing stays O(1) instead
    of rebuilding an O(depth) key string per node.  Prefixes with equal
    {!key}s have equal fingerprints by construction — the fingerprint
    is a pure function of the same per-process name sequences. *)
module State = struct
  (* odd multiplicative constants (63-bit), two independent lanes *)
  let m1 = 0x9E3779B97F4A7
  let m2 = 0xC2B2AE3D27D4F

  type t = {
    nprocs : int;
    mutable dst : int array;  (* per pushed step *)
    mutable lab : int array;  (* per-dst sequence number of step i *)
    mutable first_env : int array;  (* envelope watermark of step i *)
    mutable len : int;
    seq : int array;  (* per process: deliveries so far *)
    ph1 : int array;  (* per-process rolling hash, lane 1 *)
    ph2 : int array;  (* lane 2 *)
    mutable c1 : int;  (* combined fingerprint, lane 1 *)
    mutable c2 : int;  (* lane 2 *)
    (* journal (parallel to [dst]): saved per-push values for pop *)
    mutable j_ph1 : int array;
    mutable j_ph2 : int array;
    mutable j_c1 : int array;
    mutable j_c2 : int array;
  }

  let create ~nprocs =
    {
      nprocs;
      dst = Array.make 16 0;
      lab = Array.make 16 0;
      first_env = Array.make 16 0;
      len = 0;
      seq = Array.make nprocs 0;
      ph1 = Array.make nprocs 0;
      ph2 = Array.make nprocs 0;
      c1 = 0;
      c2 = 0;
      j_ph1 = Array.make 16 0;
      j_ph2 = Array.make 16 0;
      j_c1 = Array.make 16 0;
      j_c2 = Array.make 16 0;
    }

  let grow a = Array.append a (Array.make (Array.length a) 0)

  (* injective-ish code of one structural name (kind, p, s, o) *)
  let code m kind p s o =
    (((((kind * m) + p + 1) * m) + s + 1) * m) + o + 1

  (* per-process contribution to the combined value: a finalized mix so
     that swapping hashes between processes changes the sum *)
  let contrib m p h =
    let x = h lxor (h lsr 31) in
    (p + 1) * ((x * m) lxor (x lsr 17))

  let push t (sp : Schedule.step) =
    if t.len >= Array.length t.dst then begin
      t.dst <- grow t.dst;
      t.lab <- grow t.lab;
      t.first_env <- grow t.first_env;
      t.j_ph1 <- grow t.j_ph1;
      t.j_ph2 <- grow t.j_ph2;
      t.j_c1 <- grow t.j_c1;
      t.j_c2 <- grow t.j_c2
    end;
    let i = t.len in
    let d = sp.Schedule.sp_dst in
    let kind, p, s, o =
      let c = sp.Schedule.sp_posted_at in
      if c < 0 then (0, 0, 0, 0)
      else (1, t.dst.(c), t.lab.(c), sp.Schedule.sp_env - t.first_env.(c))
    in
    t.dst.(i) <- d;
    t.lab.(i) <- t.seq.(d);
    t.first_env.(i) <- sp.Schedule.sp_first_env;
    t.j_ph1.(i) <- t.ph1.(d);
    t.j_ph2.(i) <- t.ph2.(d);
    t.j_c1.(i) <- t.c1;
    t.j_c2.(i) <- t.c2;
    let h1 = (t.ph1.(d) * m1) + code m1 kind p s o in
    let h2 = (t.ph2.(d) * m2) + code m2 kind p s o in
    t.c1 <- t.c1 + contrib m1 d h1 - contrib m1 d t.ph1.(d);
    t.c2 <- t.c2 + contrib m2 d h2 - contrib m2 d t.ph2.(d);
    t.ph1.(d) <- h1;
    t.ph2.(d) <- h2;
    t.seq.(d) <- t.seq.(d) + 1;
    t.len <- i + 1

  let pop t =
    if t.len = 0 then invalid_arg "Canon.State.pop: empty";
    let i = t.len - 1 in
    let d = t.dst.(i) in
    t.ph1.(d) <- t.j_ph1.(i);
    t.ph2.(d) <- t.j_ph2.(i);
    t.c1 <- t.j_c1.(i);
    t.c2 <- t.j_c2.(i);
    t.seq.(d) <- t.seq.(d) - 1;
    t.len <- i

  let fingerprint t = (t.c1, t.c2)

  (** Fingerprint of the first [len] steps of a replayed prefix, by
      folding a fresh state — the replay engine's O(depth) counterpart
      of the incremental engine's O(1) lookup, equal by construction. *)
  let of_steps ~nprocs (steps : Schedule.step array) len =
    let t = create ~nprocs in
    for i = 0 to len - 1 do
      push t steps.(i)
    done;
    fingerprint t
end
