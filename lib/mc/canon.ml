(** Interchangeable-state canonicalizer.

    Two interleavings are {e equivalent} (Mazurkiewicz-trace equal for
    our dependence relation) iff every process receives the same
    messages in the same order — deliveries at different processes
    commute, deliveries at the same process do not.  The canonical key
    is therefore the per-process sequence of {e message identities},
    where a message is named not by its envelope id (assignment order
    is interleaving-dependent) but structurally:

    - a wake-up is ["w"];
    - a message posted by the [o]-th send of the step that is the
      [s]-th delivery at process [p] is ["p.s.o"] — and [(p, s)] names
      that step canonically by induction.

    Equal keys ⇔ same per-process delivery sequences ⇔ isomorphic
    execution graphs with identical per-process algorithm behaviour, so
    the oracle battery needs to run on only one representative per
    key. *)

let key ~nprocs (steps : Schedule.step array) : string =
  let k = Array.length steps in
  (* canonical label of each executed step: (dst, per-dst sequence no.) *)
  let labels = Array.make k (0, 0) in
  let seq = Array.make nprocs 0 in
  for i = 0 to k - 1 do
    let d = steps.(i).Schedule.sp_dst in
    labels.(i) <- (d, seq.(d));
    seq.(d) <- seq.(d) + 1
  done;
  let cause i =
    let c = steps.(i).Schedule.sp_posted_at in
    if c < 0 then "w"
    else
      let p, s = labels.(c) in
      let offset = steps.(i).Schedule.sp_env - steps.(c).Schedule.sp_first_env in
      Printf.sprintf "%d.%d.%d" p s offset
  in
  let per_proc = Array.make nprocs [] in
  for i = k - 1 downto 0 do
    let d = steps.(i).Schedule.sp_dst in
    per_proc.(d) <- cause i :: per_proc.(d)
  done;
  String.concat "|"
    (Array.to_list (Array.map (fun l -> String.concat "," l) per_proc))

(** Short display form of a key for reports: a stable hex digest
    prefix (keys grow with the budget; reports want a fixed-width
    name). *)
let short k = String.sub (Digest.to_hex (Digest.string k)) 0 10
