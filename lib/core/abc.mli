(** The ABC model (Section 2): parameters and admissibility.

    The model is parameterized by a rational synchrony parameter Ξ > 1
    (Definition 4).  Besides wrapping the checkers of
    [Execgraph.Abc_check], this module computes the {e exact maximum
    relevant-cycle ratio} of an execution graph — the infimum of the
    admissible Ξ — in polynomial time by parametric search: exact
    binary search on the Stern–Brocot tree over the monotone
    cycle-detection probe, every probe a native-int Bellman–Ford on a
    single prebuilt auxiliary graph. *)

type params = { xi : Rat.t  (** the synchrony parameter Ξ > 1 *) }

val make_params : Rat.t -> params
(** @raise Invalid_argument unless [Ξ > 1]. *)

val is_admissible : Execgraph.Graph.t -> params:params -> bool
val check : Execgraph.Graph.t -> params:params -> Execgraph.Abc_check.verdict

val simplest_between : Rat.t -> Rat.t -> Rat.t
(** The simplest rational (smallest denominator) in a closed positive
    interval, by continued-fraction descent; exposed for tests. *)

val max_relevant_ratio : Execgraph.Graph.t -> Rat.t option
(** The maximum ratio [|Z−|/|Z+|] over the relevant cycles: [Some r]
    means the graph is admissible exactly for every [Ξ > r]; [None]
    means every relevant cycle has ratio ≤ 1 (or there is none), i.e.
    admissible for {e every} Ξ > 1. *)

val admissible_xi : Execgraph.Graph.t -> fallback:Rat.t -> Rat.t
(** A Ξ for which the graph is guaranteed admissible: [fallback] if the
    graph is admissible for it already, otherwise a rational just above
    {!max_relevant_ratio}.  Used by theorem oracles to instantiate
    "admissible for Ξ ⇒ …" hypotheses on arbitrary executions.
    @raise Invalid_argument unless [fallback > 1]. *)

val admissibility_threshold : Execgraph.Graph.t -> string
(** {!max_relevant_ratio}, rendered for reports. *)
