(** Algorithm 1 (Section 3): Byzantine fault-tolerant clock
    synchronization by tick propagation, for systems of [n >= 3f + 1]
    processes in the ABC model.

    Every process maintains a clock [k], initially broadcasting
    [(tick 0)], and applies two rules to each received tick:

    - {e catch-up} (line 3): on [(tick l)] from [f + 1] distinct
      processes with [l > k]: broadcast [(tick k+1) .. (tick l)] (each
      at most once) and set [k := l];
    - {e advance} (line 6): on [(tick k)] from [n − f] distinct
      processes: broadcast [(tick k+1)] (at most once) and set
      [k := k + 1].

    The theorems reproduced by the analyses below:
    - Theorem 1 (progress): correct clocks grow without bound;
    - Theorem 2 (synchrony): [|Cp(S) − Cq(S)| ≤ 2Ξ] on every
      consistent cut [S];
    - Theorem 3 (precision): the same bound on real-time cuts;
    - Theorem 4 (bounded progress): [ϱ = 4Ξ + 1] for the distinguished
      clock-increment/broadcast events;
    - Lemma 4 (causal cone): when [Cp(φ′) = k + 2Ξ], process [p] has
      already received [(tick ℓ)] from every correct process, for every
      [ℓ ≤ k]. *)

module Iset = Set.Make (Int)
module Imap = Map.Make (Int)

type msg = Tick of int

type state = {
  k : int;  (** the local clock *)
  f : int;  (** resilience parameter *)
  received : Iset.t Imap.t;  (** tick value -> senders seen *)
  sent_upto : int;  (** largest tick already broadcast (-1 = none) *)
  receipt_log : (int * int) list;  (** (sender, tick) receipts, newest first *)
  peer_view : int Imap.t;
      (** per-peer message visibility: the largest tick this process has
          told each destination, individually.  The honest algorithm
          broadcasts uniformly and leaves this empty; equivocating
          strategies (lib/byz) maintain it to keep each per-peer tick
          stream monotone while the streams diverge from each other. *)
}

let initial ~f =
  {
    k = 0;
    f;
    received = Imap.empty;
    sent_upto = 0;
    receipt_log = [];
    peer_view = Imap.empty;
  }

let clock s = s.k

let peer_view_tick s d =
  match Imap.find_opt d s.peer_view with Some t -> t | None -> -1

let record_peer_view s d t = { s with peer_view = Imap.add d (max t (peer_view_tick s d)) s.peer_view }

let broadcast_range ~nprocs lo hi =
  List.concat_map
    (fun t -> List.init nprocs (fun d -> { Sim.dst = d; payload = Tick t }))
    (List.init (max 0 (hi - lo + 1)) (fun i -> lo + i))

(* Apply the catch-up and advance rules to quiescence; returns the new
   state and the range of fresh ticks to broadcast. *)
let apply_rules ~nprocs s =
  let count t s = match Imap.find_opt t s.received with None -> 0 | Some set -> Iset.cardinal set in
  let rec fix s hi =
    (* catch-up: largest l > k with f+1 distinct (tick l) senders *)
    let catch =
      Imap.fold
        (fun l senders acc ->
          if l > s.k && Iset.cardinal senders >= s.f + 1 then max acc l else acc)
        s.received (-1)
    in
    if catch > s.k then fix { s with k = catch; sent_upto = max s.sent_upto catch } (max hi catch)
    else if count s.k s >= nprocs - s.f then
      (* advance *)
      let k' = s.k + 1 in
      fix { s with k = k'; sent_upto = max s.sent_upto k' } (max hi k')
    else (s, hi)
  in
  let before = s.sent_upto in
  let s', hi = fix s before in
  let sends = if hi > before then broadcast_range ~nprocs (before + 1) hi else [] in
  (s', sends)

(** The algorithm, as a {!Sim.algorithm}. *)
let algorithm ~f : (state, msg) Sim.algorithm =
  {
    init =
      (fun ~self:_ ~nprocs -> (initial ~f, broadcast_range ~nprocs 0 0));
    step =
      (fun ~self ~nprocs s ~sender (Tick t) ->
        let k0 = s.k in
        let senders =
          match Imap.find_opt t s.received with None -> Iset.empty | Some set -> set
        in
        let s =
          {
            s with
            received = Imap.add t (Iset.add sender senders) s.received;
            receipt_log = (sender, t) :: s.receipt_log;
          }
        in
        let s', sends = apply_rules ~nprocs s in
        if Obs.on () && s'.k > k0 then
          Obs.counter "sim" "clock" [ ("proc", Obs.I self) ] s'.k;
        (s', sends));
  }

(* ------------------------------------------------------------------ *)
(* Byzantine strategies for experiments *)

(** A Byzantine process that tries to rush the system: on every receipt
    it broadcasts a burst of ticks far ahead of any legitimate clock,
    with different values to different destinations (two-faced). *)
let byzantine_rusher ~ahead : (state, msg) Sim.algorithm =
  let others ~self ~nprocs mk =
    List.filter_map (fun d -> if d = self then None else Some (mk d)) (List.init nprocs Fun.id)
  in
  {
    init =
      (fun ~self ~nprocs ->
        ( initial ~f:0,
          others ~self ~nprocs (fun d -> { Sim.dst = d; payload = Tick (d mod ahead) })
        ));
    step =
      (fun ~self ~nprocs s ~sender (Tick t) ->
        (* never message itself (a self-loop would flood the run with
           byzantine-only events and starve everyone of scheduler
           budget) and only react to others *)
        if sender = self then (s, [])
        else
          let burst =
            others ~self ~nprocs (fun d -> { Sim.dst = d; payload = Tick (t + 1 + (d mod ahead)) })
          in
          (s, burst));
  }

(** A Byzantine process that stays silent (still receives). *)
let byzantine_mute : (state, msg) Sim.algorithm =
  {
    init = (fun ~self:_ ~nprocs:_ -> (initial ~f:0, []));
    step = (fun ~self:_ ~nprocs:_ s ~sender:_ _ -> (s, []));
  }

(* ------------------------------------------------------------------ *)
(* Analyses over a simulation result *)

open Execgraph

type analysis_input = {
  result : (state, msg) Sim.result;
  correct : int list;  (** indices of correct processes *)
  xi : Rat.t;
}

(* Clock value per faithful-graph event at correct processes (clock of
   the state reached after executing that event). *)
let clocks_by_event input =
  let tbl = Sim.faithful_states input.result in
  fun id -> Option.map clock (Hashtbl.find_opt tbl id)

(* Clock of process p in the frontier of cut [c]: the clock after p's
   last processed event in the cut (0 before any event). *)
let clock_in_cut input c p =
  let g = input.result.Sim.graph in
  let clocks = clocks_by_event input in
  let frontier_seq = (Cut.frontier c).(p) in
  List.fold_left
    (fun acc id ->
      let ev = Graph.event g id in
      if ev.Event.seq <= frontier_seq then
        match clocks id with Some k -> max acc k | None -> acc
      else acc)
    0
    (Graph.events_of_proc g p)

(** Maximum clock skew [|Cp(S) − Cq(S)|] between correct processes over
    all principal consistent cuts (Theorem 2's quantity; the bound is
    [2Ξ]). *)
let max_skew_on_cuts input =
  let g = input.result.Sim.graph in
  (* Definition 5 requires every correct process to have an event in a
     consistent cut; principal cuts that miss a correct process are not
     consistent and Theorem 2 does not apply to them. *)
  let cuts =
    List.filter
      (fun c -> List.for_all (fun p -> (Cut.frontier c).(p) >= 0) input.correct)
      (Cut.principal_cuts g)
  in
  List.fold_left
    (fun acc c ->
      let clocks = List.map (clock_in_cut input c) input.correct in
      match (clocks, List.length clocks) with
      | [], _ | _, 0 -> acc
      | ks, _ -> max acc (List.fold_left max min_int ks - List.fold_left min max_int ks))
    0 cuts

(** Maximum clock skew over real-time cuts (Theorem 3's quantity).
    Scans event times in order, maintaining each correct process's
    current clock. *)
let max_skew_realtime input =
  let g = input.result.Sim.graph in
  let clocks = clocks_by_event input in
  let events = ref [] in
  for id = 0 to Graph.event_count g - 1 do
    let ev = Graph.event g id in
    match (ev.Event.time, clocks id) with
    | Some t, Some k when List.mem ev.Event.proc input.correct ->
        events := (t, ev.Event.proc, k) :: !events
    | _ -> ()
  done;
  let events = List.sort (fun (t1, _, _) (t2, _, _) -> Rat.compare t1 t2) (List.rev !events) in
  let nprocs = Graph.nprocs g in
  let current = Array.make nprocs 0 in
  let skew = ref 0 in
  let spread () =
    let ks = List.map (fun p -> current.(p)) input.correct in
    List.fold_left max min_int ks - List.fold_left min max_int ks
  in
  List.iter
    (fun (_, p, k) ->
      current.(p) <- max current.(p) k;
      skew := max !skew (spread ()))
    events;
  !skew

(** Final clock of each correct process (Theorem 1: these grow with the
    event budget). *)
let final_clocks input =
  List.map (fun p -> (p, clock input.result.Sim.final_states.(p))) input.correct

(** Lemma 4 (causal cone) check: for every event [φ′] of a correct
    process [p] with clock [c], and every [ℓ ≤ c − 2Ξ], [p] has already
    received [(tick ℓ)] from every correct process by [φ′].  Returns
    the number of (event, ℓ, q) triples checked and any violations. *)
let causal_cone_violations input =
  let g = input.result.Sim.graph in
  let states = Sim.faithful_states input.result in
  let checked = ref 0 and violations = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun id ->
          match Hashtbl.find_opt states id with
          | None -> ()
          | Some st ->
              let c = st.k in
              (* largest integer l with l <= c - 2Xi *)
              let lmax = Rat.floor_int (Rat.sub (Rat.of_int c) (Rat.mul Rat.two input.xi)) in
              if lmax >= 0 then begin
                (* receipts processed by p up to and including this event *)
                let seen = Hashtbl.create 16 in
                List.iter
                  (fun (sender, t) -> Hashtbl.replace seen (sender, t) ())
                  st.receipt_log;
                List.iter
                  (fun q ->
                    for l = 0 to lmax do
                      incr checked;
                      if not (Hashtbl.mem seen (q, l)) then
                        violations := (id, l, q) :: !violations
                    done)
                  input.correct
              end)
        (Graph.events_of_proc g p))
    input.correct;
  (!checked, !violations)

(** Theorem 4 (bounded progress) check for [ϱ = 4Ξ + 1]: the
    distinguished events are the clock-increment (and hence broadcast)
    steps.  For every pair of events [φp →* φ′p] at a correct process
    [p] such that [p] performs at least [ϱ] distinguished events in the
    cut interval [[⟨φp⟩, ⟨φ′p⟩]], every correct process must perform at
    least one distinguished event in that interval.  Returns the number
    of intervals checked and the violations. *)
let bounded_progress_violations input =
  let g = input.result.Sim.graph in
  let states = Sim.faithful_states input.result in
  let rho =
    (* smallest integer >= 4Xi + 1 *)
    Rat.ceil_int (Rat.add (Rat.mul (Rat.of_int 4) input.xi) Rat.one)
  in
  (* distinguished: the clock strictly increased at this event *)
  let distinguished id prev_clock =
    match Hashtbl.find_opt states id with
    | Some st -> st.k > prev_clock
    | None -> false
  in
  let dist_events_of p =
    let prev = ref 0 in
    List.filter_map
      (fun id ->
        match Hashtbl.find_opt states id with
        | Some st ->
            let d = distinguished id !prev in
            prev := st.k;
            if d then Some id else None
        | None -> None)
      (Graph.events_of_proc g p)
  in
  let dist_by_proc = List.map (fun p -> (p, dist_events_of p)) input.correct in
  let checked = ref 0 and violations = ref [] in
  List.iter
    (fun p ->
      let devs = Array.of_list (List.assoc p dist_by_proc) in
      let nd = Array.length devs in
      (* consider intervals spanning exactly rho distinguished events
         (they witness the property for all larger spans) *)
      for i = 0 to nd - 1 - rho do
        let from_id = devs.(i) and to_id = devs.(i + rho) in
        incr checked;
        let interval =
          Cut.interval g ~from_event:(Graph.event g from_id) ~to_event:(Graph.event g to_id)
        in
        let in_interval id =
          List.exists (fun (e : Event.t) -> e.Event.id = id) interval
        in
        List.iter
          (fun q ->
            if q <> p then begin
              let q_dist = List.assoc q dist_by_proc in
              if not (List.exists in_interval q_dist) then
                violations := (p, from_id, to_id, q) :: !violations
            end)
          input.correct
      done)
    input.correct;
  (!checked, !violations)
