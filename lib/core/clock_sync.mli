(** Algorithm 1 (Section 3): Byzantine fault-tolerant clock
    synchronization by tick propagation, for systems of [n ≥ 3f + 1]
    processes in the ABC model.

    Every process maintains a clock [k], initially broadcasting
    [(tick 0)], and applies two rules to each received tick:
    {e catch-up} — on [(tick l)] from [f+1] distinct processes with
    [l > k], broadcast [(tick k+1) .. (tick l)] (each once) and set
    [k := l]; {e advance} — on [(tick k)] from [n−f] distinct
    processes, broadcast [(tick k+1)] (once) and set [k := k+1].

    The analyses below reproduce Theorem 1 (progress), Theorems 2/3
    (precision ≤ 2Ξ on consistent and real-time cuts), Theorem 4
    (bounded progress ϱ = 4Ξ+1) and Lemma 4 (causal cone). *)

module Iset : Set.S with type elt = int
module Imap : Map.S with type key = int

type msg = Tick of int

type state = {
  k : int;  (** the local clock *)
  f : int;  (** resilience parameter *)
  received : Iset.t Imap.t;  (** tick value -> senders seen *)
  sent_upto : int;  (** largest tick already broadcast *)
  receipt_log : (int * int) list;  (** (sender, tick) receipts, newest first *)
  peer_view : int Imap.t;
      (** per-peer message visibility: the largest tick this process
          has told each destination individually.  Empty for the honest
          algorithm (it broadcasts uniformly); equivocating strategies
          ({!Byz}) maintain it so each per-peer tick stream stays
          monotone while the streams diverge from each other. *)
}

val initial : f:int -> state
(** Fresh state: clock 0, nothing received or sent. *)

val clock : state -> int

val peer_view_tick : state -> int -> int
(** Largest tick told to the given destination ([-1] if none). *)

val record_peer_view : state -> int -> int -> state
(** [record_peer_view s d t]: note that [t] was sent to [d]. *)

val broadcast_range : nprocs:int -> int -> int -> msg Sim.send list
(** Broadcasts of [(tick lo) .. (tick hi)] to everyone (self included,
    as in the paper). *)

val apply_rules : nprocs:int -> state -> state * msg Sim.send list
(** Apply catch-up and advance to quiescence; exposed for the merged
    Algorithm 2 ({!Lockstep}). *)

val algorithm : f:int -> (state, msg) Sim.algorithm
(** Algorithm 1 as a simulator process. *)

(** {1 Byzantine strategies for experiments} *)

val byzantine_rusher : ahead:int -> (state, msg) Sim.algorithm
(** Floods ahead-of-time ticks, two-faced per destination (never
    messages itself, so it cannot starve the event budget). *)

val byzantine_mute : (state, msg) Sim.algorithm
(** Receives but never sends. *)

(** {1 Analyses over a simulation result} *)

type analysis_input = {
  result : (state, msg) Sim.result;
  correct : int list;  (** indices of correct processes *)
  xi : Rat.t;
}

val clocks_by_event : analysis_input -> int -> int option
(** Clock value after each faithful-graph event. *)

val clock_in_cut : analysis_input -> Execgraph.Cut.t -> int -> int
(** [Cp(S)]: the clock of process [p] in the frontier of the cut. *)

val max_skew_on_cuts : analysis_input -> int
(** Theorem 2's quantity: max [|Cp(S) − Cq(S)|] between correct
    processes over the principal consistent cuts (cuts missing a
    correct process are not consistent per Definition 5 and are
    skipped).  Bound: [2Ξ]. *)

val max_skew_realtime : analysis_input -> int
(** Theorem 3's quantity, over real-time cuts. *)

val final_clocks : analysis_input -> (int * int) list
(** Final clock per correct process (Theorem 1: grows with the event
    budget). *)

val causal_cone_violations : analysis_input -> int * (int * int * int) list
(** Lemma 4 check: for every event of a correct [p] with clock [c] and
    every [ℓ ≤ c − 2Ξ], [p] has received [(tick ℓ)] from every correct
    process.  Returns (triples checked, violations as
    (event id, ℓ, sender)). *)

val bounded_progress_violations : analysis_input -> int * (int * int * int * int) list
(** Theorem 4 check for [ϱ = ⌈4Ξ + 1⌉]: whenever a correct process
    performs ϱ distinguished (clock-increment) events in a cut
    interval, every correct process performs at least one there.
    Returns (intervals checked, violations as (p, from, to, q)). *)
