(** Algorithm 2 (Section 3): lock-step round simulation on top of the
    clock synchronization Algorithm 1.

    Clocks are treated as phase counters; a round lasts [P] phases
    where [P = ⌈2Ξ⌉] (the paper's [2Ξ]; any integer [P ≥ 2Ξ] preserves
    the proof of Theorem 5, which only needs the causal-cone property
    of Lemma 4 across a clock distance of at least [2Ξ]).  The round
    [r] computing step [start r] runs exactly when the clock reaches
    [P·r]: it reads the buffered round [r−1] messages, performs the
    round computation, and broadcasts the round [r] message piggybacked
    on [(tick P·r)].

    Theorem 5 states that this simulates lock-step rounds: every round
    [r] message of a correct process arrives at every correct process
    before that process starts round [r+1].  The per-event [history]
    recorded in the state lets the analysis check exactly this. *)

module Iset = Set.Make (Int)
module Imap = Map.Make (Int)

(** A synchronous full-information round algorithm to run on top of the
    simulation.  [r_step] receives the round [r−1] messages (sender,
    payload) that arrived in time — under Theorem 5 this includes all
    correct ones — and returns the round [r] broadcast payload. *)
type ('rs, 'rm) round_algo = {
  r_init : self:int -> nprocs:int -> 'rs * 'rm;
  r_step : self:int -> nprocs:int -> round:int -> 'rs -> (int * 'rm) list -> 'rs * 'rm;
}

type 'rm msg = { tick : int; round_payload : 'rm option }

type ('rs, 'rm) state = {
  cs : Clock_sync.state;  (** the underlying Algorithm 1 state *)
  r : int;  (** current round *)
  rs : 'rs;  (** round-algorithm state *)
  round_msgs : (int * 'rm) list Imap.t;  (** round -> messages received *)
  history : (int * Iset.t) list;
      (** (round started, senders whose round-(r−1) messages were
          available at that moment) — for Theorem 5 verification *)
}

let phase_length ~xi = Rat.ceil_int (Rat.mul Rat.two xi)

let round_of s = s.r
let clock_of s = Clock_sync.clock s.cs
let round_state s = s.rs

(** A round schedule: [start_of_round r] is the clock value at which
    the round [r] computing step runs (and its message is sent),
    strictly increasing with [start_of_round 0 = 0]; [round_at k] is
    [Some r] iff [k = start_of_round r]. *)
type schedule = { start_of_round : int -> int; round_at : int -> int option }

(** Uniform rounds of [p] phases: the paper's Algorithm 2 with
    [p = ⌈2Ξ⌉]. *)
let uniform_schedule p =
  if p < 1 then invalid_arg "Lockstep.uniform_schedule";
  {
    start_of_round = (fun r -> p * r);
    round_at = (fun k -> if k mod p = 0 then Some (k / p) else None);
  }

(** Doubling rounds for the ◇ABC / ?ABC variants (Section 6): round
    [r] lasts [p0·2^r] phases, so once the duration exceeds the actual
    (unknown or eventually-holding) [2Ξ], rounds are lock-step from
    then on.  [start_of_round r = p0·(2^r − 1)]. *)
let doubling_schedule p0 =
  if p0 < 1 then invalid_arg "Lockstep.doubling_schedule";
  let start r = p0 * ((1 lsl r) - 1) in
  {
    start_of_round = start;
    round_at =
      (fun k ->
        let rec scan r = if start r > k then None else if start r = k then Some r else scan (r + 1) in
        scan 0);
  }

(** Algorithm 1 + Algorithm 2 merged, over an arbitrary round
    schedule. *)
let algorithm_scheduled ~f ~(schedule : schedule) (ra : ('rs, 'rm) round_algo) :
    (('rs, 'rm) state, 'rm msg) Sim.algorithm =
  (* broadcast ticks lo..hi, attaching round payloads at round starts *)
  let emit ~self ~nprocs st lo hi =
    let st = ref st and sends = ref [] in
    for j = lo to hi do
      let payload =
        match schedule.round_at j with
        | Some round when round > !st.r ->
            let prev_msgs =
              match Imap.find_opt (round - 1) !st.round_msgs with
              | Some l -> List.rev l
              | None -> []
            in
            let senders =
              List.fold_left (fun acc (q, _) -> Iset.add q acc) Iset.empty prev_msgs
            in
            let rs', m = ra.r_step ~self ~nprocs ~round !st.rs prev_msgs in
            st := { !st with r = round; rs = rs'; history = (round, senders) :: !st.history };
            Some m
        | _ -> None
      in
      sends :=
        !sends
        @ List.init nprocs (fun d ->
              { Sim.dst = d; payload = { tick = j; round_payload = payload } })
    done;
    (!st, !sends)
  in
  {
    init =
      (fun ~self ~nprocs ->
        let rs0, m0 = ra.r_init ~self ~nprocs in
        let cs = Clock_sync.initial ~f in
        let st = { cs; r = 0; rs = rs0; round_msgs = Imap.empty; history = [] } in
        let sends =
          List.init nprocs (fun d ->
              { Sim.dst = d; payload = { tick = 0; round_payload = Some m0 } })
        in
        (st, sends));
    step =
      (fun ~self ~nprocs st ~sender m ->
        (* buffer the piggybacked round message *)
        let st =
          match (m.round_payload, schedule.round_at m.tick) with
          | Some pl, Some round ->
              let cur = Option.value ~default:[] (Imap.find_opt round st.round_msgs) in
              { st with round_msgs = Imap.add round ((sender, pl) :: cur) st.round_msgs }
          | _ -> st
        in
        (* run the Algorithm 1 rules on the tick *)
        let senders =
          match Clock_sync.Imap.find_opt m.tick st.cs.received with
          | None -> Clock_sync.Iset.empty
          | Some set -> set
        in
        let cs =
          {
            st.cs with
            received =
              Clock_sync.Imap.add m.tick
                (Clock_sync.Iset.add sender senders)
                st.cs.received;
            receipt_log = (sender, m.tick) :: st.cs.receipt_log;
          }
        in
        let before = cs.sent_upto in
        let cs', _tick_sends = Clock_sync.apply_rules ~nprocs cs in
        let st = { st with cs = cs' } in
        if cs'.sent_upto > before then emit ~self ~nprocs st (before + 1) cs'.sent_upto
        else (st, []))
  }

(** The paper's Algorithm 2: uniform rounds of [⌈2Ξ⌉] phases. *)
let algorithm ~f ~xi (ra : ('rs, 'rm) round_algo) =
  algorithm_scheduled ~f ~schedule:(uniform_schedule (phase_length ~xi)) ra

(* ------------------------------------------------------------------ *)
(* Theorem 5 verification *)

(** Check the lock-step property on a finished run: for every correct
    process [p] and every round [ρ ≥ 1] that [p] started, the round
    [ρ−1] messages of {e all} correct processes that started round
    [ρ−1] were available.  Returns [(rounds_checked, violations)]. *)
let lockstep_violations (result : (('rs, 'rm) state, 'rm msg) Sim.result) ~correct =
  let checked = ref 0 and violations = ref [] in
  (* which rounds did each correct process start? *)
  let started =
    List.map
      (fun p ->
        let st = result.Sim.final_states.(p) in
        (p, List.fold_left (fun acc (r, _) -> Iset.add r acc) (Iset.add 0 Iset.empty)
               (List.map (fun (r, s) -> (r, s)) st.history)))
      correct
  in
  List.iter
    (fun p ->
      let st = result.Sim.final_states.(p) in
      List.iter
        (fun (rho, senders) ->
          if rho >= 1 then begin
            incr checked;
            List.iter
              (fun q ->
                let q_started = List.assoc q started in
                if Iset.mem (rho - 1) q_started && not (Iset.mem q senders) then
                  violations := (p, rho, q) :: !violations)
              correct
          end)
        st.history)
    correct;
  (!checked, !violations)

(** The rounds at which some correct process missed another correct
    process's previous-round message — the lock-step property fails
    exactly there.  With the uniform schedule and a perpetually
    admissible execution this is empty (Theorem 5); with the doubling
    schedule under an eventually-admissible execution it is a finite
    prefix of rounds (eventual lock-step, Section 6). *)
let violating_rounds (result : (('rs, 'rm) state, 'rm msg) Sim.result) ~correct =
  let _, violations = lockstep_violations result ~correct in
  List.sort_uniq compare (List.map (fun (_, rho, _) -> rho) violations)

(** The first round from which lock-step holds for good: 0 when it
    never failed, [max violating round + 1] otherwise. *)
let first_lockstep_round result ~correct =
  match violating_rounds result ~correct with
  | [] -> 0
  | l -> List.fold_left max 0 l + 1

(** Highest round reached by each correct process. *)
let rounds_reached (result : (('rs, 'rm) state, 'rm msg) Sim.result) ~correct =
  List.map (fun p -> (p, result.Sim.final_states.(p).r)) correct

(** A trivial round algorithm (empty payloads) for running the bare
    lock-step simulation. *)
let noop_round_algo : (unit, unit) round_algo =
  {
    r_init = (fun ~self:_ ~nprocs:_ -> ((), ()));
    r_step = (fun ~self:_ ~nprocs:_ ~round:_ () _ -> ((), ()));
  }
