(** The ABC model (Section 2): parameters and admissibility.

    The model is parameterized by a rational synchrony parameter Ξ > 1
    (Definition 4).  This module wraps the checkers of
    {!Execgraph.Abc_check} and adds the {e exact maximum relevant-cycle
    ratio} of an execution graph — the infimum of the admissible Ξ —
    computed in polynomial time by parametric search (Lawler-style
    binary search over the checker, with exact rational recovery via
    the Stern–Brocot simplest-fraction construction). *)

open Execgraph

type params = { xi : Rat.t  (** the synchrony parameter Ξ > 1 *) }

let make_params xi =
  if Rat.compare xi Rat.one <= 0 then invalid_arg "Abc.make_params: need Xi > 1";
  { xi }

let is_admissible g ~params = Abc_check.is_admissible g ~xi:params.xi
let check g ~params = Abc_check.check g ~xi:params.xi

(* Bigint-weighted Bellman-Ford: the fallback when a probe's scaled
   integer weights could overflow native ints (gigantic graphs only —
   the Stern-Brocot search keeps probe numerators and denominators
   small, so in practice every probe runs on native ints). *)
module BF_big = Digraph.Bellman_ford (struct
  type t = Bigint.t

  let zero = Bigint.zero
  let add = Bigint.add
  let compare = Bigint.compare
end)

module BF_int = Digraph.Bellman_ford (struct
  type t = int

  let zero = 0
  let add = ( + )
  let compare = Int.compare
end)

(* The auxiliary digraph of the admissibility reduction (see
   Execgraph.Abc_check for the proof), built once per parametric search
   and reused across every probe.  [kinds.(id)] records how arc [id]'s
   weight depends on the probed ratio a/b: [+1] forward message arc
   (weight a), [-1] backward message arc (weight -b), [0] backward
   local arc (weight 0). *)
let build_aux g =
  let h = Digraph.create (Graph.event_count g) in
  let kinds = ref [] in
  List.iter
    (fun (e : Digraph.edge) ->
      if Graph.is_message g e then begin
        ignore (Digraph.add_edge h ~src:e.src ~dst:e.dst);
        kinds := 1 :: !kinds;
        ignore (Digraph.add_edge h ~src:e.dst ~dst:e.src);
        kinds := -1 :: !kinds
      end
      else begin
        ignore (Digraph.add_edge h ~src:e.dst ~dst:e.src);
        kinds := 0 :: !kinds
      end)
    (Digraph.edges (Graph.digraph g));
  (h, Array.of_list (List.rev !kinds))

(* Is there a relevant cycle with ratio >= num/den?  Nonpositive-cycle
   detection on the prebuilt graph via the rescale (M+1)*w - 1.  Path
   weights are bounded by n * ((M+1)*max(num,den) + 1), so native ints
   suffice whenever that product stays below 2^61; otherwise fall back
   to exact big-integer weights. *)
let viol_at h kinds ~num ~den =
  let mm = Digraph.edge_count h + 1 in
  let n = Digraph.node_count h + 1 in
  let amax = if num > den then num else den in
  if amax <= (1 lsl 61) / mm / n then begin
    let pos = (mm * num) - 1 and neg = -(mm * den) - 1 in
    let scaled (e : Digraph.edge) =
      let k = kinds.(e.id) in
      if k > 0 then pos else if k < 0 then neg else -1
    in
    BF_int.negative_cycle h ~weight:scaled <> None
  end
  else begin
    let mb = Bigint.of_int mm in
    let pos = Bigint.sub (Bigint.mul mb (Bigint.of_int num)) Bigint.one in
    let neg = Bigint.sub (Bigint.mul mb (Bigint.of_int (-den))) Bigint.one in
    let minus_one = Bigint.neg Bigint.one in
    let scaled (e : Digraph.edge) =
      let k = kinds.(e.id) in
      if k > 0 then pos else if k < 0 then neg else minus_one
    in
    BF_big.negative_cycle h ~weight:scaled <> None
  end

(* Simplest rational in the closed interval [lo, hi] (smallest
   denominator, then smallest numerator), by continued-fraction
   descent.  Requires 0 < lo <= hi.  No longer on the hot path (the
   parametric search below recovers the exact answer directly); kept
   as a test oracle for the Stern-Brocot machinery. *)
let rec simplest_between lo hi =
  let fl = Rat.floor lo in
  let fl_r = Rat.of_bigint fl in
  let cl = Rat.of_bigint (Rat.ceil lo) in
  if Rat.compare cl (Rat.of_bigint (Rat.floor hi)) <= 0 || Rat.is_integer lo then
    (* an integer lies in the interval *)
    if Rat.is_integer lo then lo else cl
  else
    (* lo and hi share the integer part fl; recurse on the fractional
       parts, inverted (which swaps the roles of lo and hi) *)
    let lo' = Rat.inv (Rat.sub hi fl_r) and hi' = Rat.inv (Rat.sub lo fl_r) in
    Rat.add fl_r (Rat.inv (simplest_between lo' hi'))

(** The maximum ratio [|Z−|/|Z+|] over the relevant cycles of [g]:
    [Some r] means [g] is admissible exactly for every [Ξ > r];
    [None] means every relevant cycle has ratio [≤ 1] (or there is no
    relevant cycle), so [g] is admissible for {e every} [Ξ > 1].

    Computed by exact binary search on the Stern–Brocot tree: the
    answer is a fraction with numerator and denominator at most the
    message count [m], and the probe [viol a b] ("is there a relevant
    cycle with ratio ≥ a/b?") is monotone, so descending the tree with
    galloped runs finds it in O(log² m) probes — every probe a cheap
    native-int Bellman–Ford on the one prebuilt auxiliary graph.  The
    descent maintains [L ≤ r* < R] with [viol L] true and [viol R]
    false; because consecutive Stern–Brocot bounds satisfy the
    unimodular relation, every fraction strictly between [L] and [R]
    has numerator ≥ num(L)+num(R) and denominator ≥ den(L)+den(R), so
    once either sum exceeds [m] no candidate remains and [r* = L]. *)
let max_relevant_ratio g =
  let m = Graph.message_count g in
  if m = 0 then None
  else begin
    let h, kinds = build_aux g in
    let viol num den = viol_at h kinds ~num ~den in
    (* Any relevant cycle with ratio > 1?  Candidate ratios have parts
       <= m, so the smallest candidate above 1 is >= (m+1)/m, and
       probing (2m+1)/2m < (m+1)/m decides it. *)
    if not (viol (m + m + 1) (m + m)) then None
    else begin
      (* L = pl/ql <= r* (viol true), R = pr/qr > r* (viol false;
         initially 1/0 = infinity). *)
      let pl = ref 1 and ql = ref 1 in
      let pr = ref 1 and qr = ref 0 in
      let exception Done in
      (try
         while true do
           if !pl + !pr > m || !ql + !qr > m then raise Done;
           if viol (!pl + !pr) (!ql + !qr) then begin
             (* Run right: find the largest k with viol (L + kR), by
                galloping then bisecting.  Termination: L + kR
                increases towards (or past) R > r*. *)
             let k = ref 1 in
             while viol (!pl + (2 * !k * !pr)) (!ql + (2 * !k * !qr)) do
               k := 2 * !k
             done;
             let lo = ref !k and hi = ref (2 * !k) in
             while !hi - !lo > 1 do
               let mid = (!lo + !hi) / 2 in
               if viol (!pl + (mid * !pr)) (!ql + (mid * !qr)) then lo := mid
               else hi := mid
             done;
             pl := !pl + (!lo * !pr);
             ql := !ql + (!lo * !qr)
           end
           else begin
             (* Run left: find the largest j with viol (jL + R) false.
                If L = r* that j is unbounded, so probe directly at
                jstop, the smallest j where a false answer already
                proves r* = L: fractions strictly inside (L, jL + R)
                have numerator ≥ (j+1)*num(L) + num(R) and denominator
                ≥ (j+1)*den(L) + den(R), so once either exceeds [m] no
                candidate remains. *)
             let jstop = ref 1 in
             while
               ((!jstop + 1) * !pl) + !pr <= m
               && ((!jstop + 1) * !ql) + !qr <= m
             do
               incr jstop
             done;
             if not (viol ((!jstop * !pl) + !pr) ((!jstop * !ql) + !qr)) then
               raise Done;
             (* viol is false at j = 1 (the mediant) and true at jstop:
                bisect for the largest false j in [1, jstop). *)
             let lo = ref 1 and hi = ref !jstop in
             while !hi - !lo > 1 do
               let mid = (!lo + !hi) / 2 in
               if viol ((mid * !pl) + !pr) ((mid * !ql) + !qr) then hi := mid
               else lo := mid
             done;
             pr := (!lo * !pl) + !pr;
             qr := (!lo * !ql) + !qr
           end
         done
       with Done -> ());
      assert (viol !pl !ql);
      Some (Rat.of_ints !pl !ql)
    end
  end

(** A Ξ for which [g] is provably admissible: [fallback] when [g] is
    already admissible for it, otherwise a rational just above the
    exact threshold.  The fuzz oracles use this to instantiate theorem
    hypotheses ("for every Ξ the execution is admissible for…") on
    executions produced by schedulers with no a-priori Θ bound. *)
let admissible_xi g ~fallback =
  if Rat.compare fallback Rat.one <= 0 then
    invalid_arg "Abc.admissible_xi: need fallback > 1";
  if Abc_check.is_admissible g ~xi:fallback then fallback
  else
  match max_relevant_ratio g with
  | None -> fallback
  | Some r ->
      if Rat.compare fallback r > 0 then fallback
      else Rat.add r (Rat.of_ints 1 8)

(** Convenience: smallest Ξ (exclusive bound) for which [g] is
    admissible, as a printable string. *)
let admissibility_threshold g =
  match max_relevant_ratio g with
  | None -> "1 (admissible for every Xi > 1)"
  | Some r -> Rat.to_string r
