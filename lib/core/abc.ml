(** The ABC model (Section 2): parameters and admissibility.

    The model is parameterized by a rational synchrony parameter Ξ > 1
    (Definition 4).  This module wraps the checkers of
    {!Execgraph.Abc_check} and adds the {e exact maximum relevant-cycle
    ratio} of an execution graph — the infimum of the admissible Ξ —
    computed in polynomial time by parametric search (Lawler-style
    binary search over the checker, with exact rational recovery via
    the Stern–Brocot simplest-fraction construction). *)

open Execgraph

type params = { xi : Rat.t  (** the synchrony parameter Ξ > 1 *) }

let make_params xi =
  if Rat.compare xi Rat.one <= 0 then invalid_arg "Abc.make_params: need Xi > 1";
  { xi }

let is_admissible g ~params = Abc_check.is_admissible g ~xi:params.xi
let check g ~params = Abc_check.check g ~xi:params.xi

(* Bigint-weighted Bellman-Ford: the parametric search probes ratios
   whose denominators grow with the search precision, so scaled native
   ints could overflow. *)
module BF_big = Digraph.Bellman_ford (struct
  type t = Bigint.t

  let zero = Bigint.zero
  let add = Bigint.add
  let compare = Bigint.compare
end)

(* Is there a relevant cycle with ratio >= a/b?  Same reduction as
   Execgraph.Abc_check (see there for the proof), with exact big-integer
   weights. *)
let violation_at g ~num ~den =
  let h = Digraph.create (Graph.event_count g) in
  let weights = ref [] in
  List.iter
    (fun (e : Digraph.edge) ->
      if Graph.is_message g e then begin
        ignore (Digraph.add_edge h ~src:e.src ~dst:e.dst);
        weights := num :: !weights;
        ignore (Digraph.add_edge h ~src:e.dst ~dst:e.src);
        weights := Bigint.neg den :: !weights
      end
      else begin
        ignore (Digraph.add_edge h ~src:e.dst ~dst:e.src);
        weights := Bigint.zero :: !weights
      end)
    (Digraph.edges (Graph.digraph g));
  let weights = Array.of_list (List.rev !weights) in
  let m = Digraph.edge_count h in
  let mb = Bigint.of_int (m + 1) in
  let scaled (e : Digraph.edge) = Bigint.sub (Bigint.mul mb weights.(e.id)) Bigint.one in
  BF_big.negative_cycle h ~weight:scaled <> None

(* Simplest rational in the closed interval [lo, hi] (smallest
   denominator, then smallest numerator), by continued-fraction
   descent.  Requires 0 < lo <= hi. *)
let rec simplest_between lo hi =
  let fl = Rat.floor lo in
  let fl_r = Rat.of_bigint fl in
  let cl = Rat.of_bigint (Rat.ceil lo) in
  if Rat.compare cl (Rat.of_bigint (Rat.floor hi)) <= 0 || Rat.is_integer lo then
    (* an integer lies in the interval *)
    if Rat.is_integer lo then lo else cl
  else
    (* lo and hi share the integer part fl; recurse on the fractional
       parts, inverted (which swaps the roles of lo and hi) *)
    let lo' = Rat.inv (Rat.sub hi fl_r) and hi' = Rat.inv (Rat.sub lo fl_r) in
    Rat.add fl_r (Rat.inv (simplest_between lo' hi'))

(** The maximum ratio [|Z−|/|Z+|] over the relevant cycles of [g]:
    [Some r] means [g] is admissible exactly for every [Ξ > r];
    [None] means every relevant cycle has ratio [≤ 1] (or there is no
    relevant cycle), so [g] is admissible for {e every} [Ξ > 1]. *)
let max_relevant_ratio g =
  let m = Graph.message_count g in
  if m = 0 then None
  else begin
    let viol r = violation_at g ~num:(Rat.num r) ~den:(Rat.den r) in
    (* smallest candidate ratio > 1 is (f+1)/f >= (m+1)/m *)
    let eps_probe = Rat.of_ints (m + m + 1) (m + m) in
    if not (viol eps_probe) then None
    else begin
      (* binary search: viol lo = true, viol hi = false, answer in [lo, hi) *)
      let lo = ref eps_probe and hi = ref (Rat.of_int (m + 1)) in
      let width_target = Rat.of_ints 1 ((m * m) + 1) in
      while Rat.compare (Rat.sub !hi !lo) width_target > 0 do
        let mid = Rat.div (Rat.add !lo !hi) Rat.two in
        if viol mid then lo := mid else hi := mid
      done;
      (* the interval [lo, hi) has width < 1/m^2, so it contains exactly
         one fraction with numerator and denominator <= m: the answer.
         It is the simplest fraction in the interval. *)
      let c = simplest_between !lo !hi in
      assert (viol c);
      Some c
    end
  end

(** A Ξ for which [g] is provably admissible: [fallback] when [g] is
    already admissible for it, otherwise a rational just above the
    exact threshold.  The fuzz oracles use this to instantiate theorem
    hypotheses ("for every Ξ the execution is admissible for…") on
    executions produced by schedulers with no a-priori Θ bound. *)
let admissible_xi g ~fallback =
  if Rat.compare fallback Rat.one <= 0 then
    invalid_arg "Abc.admissible_xi: need fallback > 1";
  if Abc_check.is_admissible g ~xi:fallback then fallback
  else
  match max_relevant_ratio g with
  | None -> fallback
  | Some r ->
      if Rat.compare fallback r > 0 then fallback
      else Rat.add r (Rat.of_ints 1 8)

(** Convenience: smallest Ξ (exclusive bound) for which [g] is
    admissible, as a printable string. *)
let admissibility_threshold g =
  match max_relevant_ratio g with
  | None -> "1 (admissible for every Xi > 1)"
  | Some r -> Rat.to_string r
