(** Campaign reports: pure, deterministic rendering of campaign
    outcomes and replay results. *)

val render : Campaign.outcome -> string
(** Full campaign report: coverage by scheduler family and workload,
    per-oracle pass/skip/fail table, and for every violation the
    original and shrunk cases with their one-line repro commands. *)

val render_outcomes : (string * Oracle.outcome) list -> string
(** One line per oracle outcome, for [abc fuzz --replay]. *)
