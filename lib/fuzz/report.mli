(** Campaign reports: pure, deterministic rendering of campaign
    outcomes and replay results. *)

val render : Campaign.outcome -> string
(** Full campaign report: coverage by scheduler family and workload,
    per-oracle pass/skip/fail table, and for every violation the
    original and shrunk cases with their one-line repro commands.
    Byte-identical for identical [(seed, cases, oracles)], whatever
    [jobs] the campaign ran on: {!Campaign.cost} is excluded. *)

val render_cost : Campaign.outcome -> string
(** The campaign's {!Campaign.cost} block — wall time, per-case
    aggregates, allocation.  Nondeterministic; never mix it into
    output that must be byte-stable (the CLI prints it to stderr). *)

val render_outcomes : (string * Oracle.outcome) list -> string
(** One line per oracle outcome, for [abc fuzz --replay]. *)
