(** Session-reuse evaluator for schedule-bearing shrink candidates.

    Shrinking a counterexample whose delivery order is an explicit
    schedule ([c_schedule <> []]) evaluates many candidates that share
    a long prefix with the current case: a truncation, a single
    deleted choice, a zeroed choice, a smaller event budget.  The
    stateless path re-simulates every candidate from scratch —
    O(len²) deliveries per shrink pass.  This walker keeps {e one}
    recording {!Sim.Session} ([record:true]) open on the case's box
    and, per candidate, undoes down to the divergence point and
    re-delivers only the suffix: O(len) amortized per pass.

    Soundness rests on three session facts.  (1) A session ignores the
    case's scheduler — delivery is driven purely by choice indices
    against the ready list, exactly like {!Sim.run_scheduled}, with
    the same clamping (negative → 0, overflow → last entry) and the
    same FIFO-0 continuation past the end of the schedule.  (2) The
    state after a choice prefix is a function of the prefix alone, so
    a candidate agreeing with the applied prefix up to step [p] can
    resume from the recorded state at [p].  (3) {!Sim.Session.undo}
    restores that state exactly (the qcheck suites of PR 8 pin this
    against fresh replay), so re-delivery reproduces the identical
    execution the candidate's from-scratch run would produce.

    A candidate may only differ from the walker's box in [c_schedule]
    and a {e smaller-or-equal} [c_max_events] ({!compatible});
    anything else — dropped process, weakened fault, tamed scheduler —
    changes the box itself and must go through the stateless path.

    The walk runs {!Obs.muted}, mirroring {!Mc}'s replay engine: the
    deliveries and undos of a shrink-internal re-walk are an engine
    artifact, not part of the case's observable behavior. *)

type t = {
  box : Gen.case;  (** the reference case; schedule/budget may differ *)
  sess : Gen.mc_session;
  applied : int array;  (** clamped choices delivered, [0 .. len) *)
  ready_sizes : int array;
      (** ready-list size observed just before each applied step —
          what the clamp of a future candidate's raw choice at that
          step will see, without replaying *)
  mutable len : int;
  mutable poisoned : bool;
      (** a walk raised: session state unknown, fall back for good *)
}

let create (box : Gen.case) : t =
  let sess = Obs.muted @@ fun () -> Gen.open_session ~record:true box in
  let cap = max 1 box.Gen.c_max_events in
  {
    box;
    sess;
    applied = Array.make cap 0;
    ready_sizes = Array.make cap 0;
    len = 0;
    poisoned = false;
  }

(* Same box, schedule and (no larger) budget aside?  Field-by-field so
   a new Gen.case field breaks the build here instead of silently
   widening what the walker accepts. *)
let compatible (t : t) (c : Gen.case) =
  (not t.poisoned)
  && c.Gen.c_schedule <> []
  && c.Gen.c_max_events <= t.box.Gen.c_max_events
  && { c with Gen.c_schedule = t.box.Gen.c_schedule;
       c_max_events = t.box.Gen.c_max_events }
     = t.box

let clamp c m = if c < 0 then 0 else if c >= m then m - 1 else c

(* Position the session on [cand]'s execution: undo to the divergence
   point, deliver the rest, return the terminal run. *)
let walk (t : t) (cand : Gen.case) : Gen.run =
  Obs.muted @@ fun () ->
  let budget = cand.Gen.c_max_events in
  let raws = Array.of_list cand.Gen.c_schedule in
  let eff i = if i < Array.length raws then raws.(i) else 0 in
  (* longest prefix of the applied walk the candidate reproduces: the
     ready size at step i is a function of the choices before i, so
     the recorded size is exactly what the candidate's clamp sees *)
  let p = ref 0 in
  while
    !p < t.len && !p < budget
    && clamp (eff !p) t.ready_sizes.(!p) = t.applied.(!p)
  do
    incr p
  done;
  while t.sess.Gen.ms_delivered () > !p do
    t.sess.Gen.ms_undo ()
  done;
  t.len <- !p;
  while
    t.sess.Gen.ms_delivered () < budget && not (t.sess.Gen.ms_finished ())
  do
    let i = t.sess.Gen.ms_delivered () in
    let m = List.length (t.sess.Gen.ms_ready ()) in
    let c = clamp (eff i) m in
    ignore (t.sess.Gen.ms_deliver c);
    t.applied.(i) <- c;
    t.ready_sizes.(i) <- m;
    t.len <- i + 1
  done;
  t.sess.Gen.ms_run ()

let evaluate (t : t) ~oracles (cand : Gen.case) :
    (string * Oracle.outcome) list =
  if not (compatible t cand) then Oracle.evaluate oracles cand
  else
    match walk t cand with
    | run -> Oracle.evaluate_run oracles cand run
    | exception _ ->
        (* session state is now unknown; poison the walker and let the
           stateless path both answer this candidate and reproduce the
           crash verdict the fresh run would report *)
        t.poisoned <- true;
        Oracle.evaluate oracles cand
