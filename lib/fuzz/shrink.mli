(** Greedy counterexample shrinking: minimize a failing case while the
    same oracle keeps failing. *)

val candidates : Gen.case -> Gen.case list
(** Valid "smaller" variants of a case, most aggressive first: fewer
    events, milder/fewer faults, fewer processes, tamer schedulers.
    Every candidate satisfies {!Gen.validate}. *)

type result = {
  shrunk : Gen.case;
  steps : int;  (** accepted reductions *)
  evaluations : int;  (** candidate executions spent *)
}

val shrink :
  ?max_evals:int ->
  ?session_reuse:bool ->
  oracles:Oracle.t list ->
  oracle:string ->
  Gen.case ->
  result
(** Greedy descent: keep the first candidate on which oracle [oracle]
    still fails; stop at a local minimum or after [max_evals]
    (default 80) candidate runs.  On a schedule-bearing case the
    prefix-preserving candidates replay through one recording session
    ({!Sched_walk}) instead of from scratch; [session_reuse:false]
    (default [true]) forces the stateless path.  The shrunk result is
    identical either way. *)
