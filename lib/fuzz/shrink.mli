(** Greedy counterexample shrinking: minimize a failing case while the
    same oracle keeps failing. *)

val candidates : Gen.case -> Gen.case list
(** Valid "smaller" variants of a case, most aggressive first: fewer
    events, milder/fewer faults, fewer processes, tamer schedulers.
    Every candidate satisfies {!Gen.validate}. *)

type result = {
  shrunk : Gen.case;
  steps : int;  (** accepted reductions *)
  evaluations : int;  (** candidate executions spent *)
}

val shrink :
  ?max_evals:int -> oracles:Oracle.t list -> oracle:string -> Gen.case -> result
(** Greedy descent: keep the first candidate on which oracle [oracle]
    still fails; stop at a local minimum or after [max_evals]
    (default 80) candidate runs. *)
