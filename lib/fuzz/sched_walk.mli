(** Session-reuse evaluator for schedule-bearing shrink candidates.

    One recording {!Sim.Session} is kept open on a case's {e box} (its
    processes, faults, workload — everything but the schedule); each
    candidate that differs only in [c_schedule] / a smaller
    [c_max_events] is evaluated by undoing to the divergence point and
    re-delivering the suffix, instead of re-simulating from scratch.
    Oracle verdicts are identical to {!Oracle.evaluate} on the same
    candidate — the shrinker's result cannot change, only its cost
    (O(len) amortized deliveries per pass instead of O(len²)). *)

type t

val create : Gen.case -> t
(** Open a recording session on the case's box.  The case's own
    [c_schedule] is not replayed until the first {!evaluate}.
    @raise Invalid_argument if the case does not {!Gen.validate}. *)

val compatible : t -> Gen.case -> bool
(** Can this candidate reuse the session?  True iff the walker is
    healthy and the candidate differs from the walker's case only in
    [c_schedule] (non-empty) and an equal-or-smaller [c_max_events]. *)

val evaluate : t -> oracles:Oracle.t list -> Gen.case -> (string * Oracle.outcome) list
(** Evaluate the candidate, through the session when {!compatible}
    (muted — walk deliveries are an engine artifact) and through
    {!Oracle.evaluate} otherwise.  If a session walk raises, the
    walker is poisoned (every later call falls back) and the
    candidate is re-evaluated statelessly, which also reproduces the
    crash verdict the fresh run reports. *)
