(** One-line, versioned serialization of fuzz cases, and deterministic
    replay: [of_string (to_string c) = Ok c], and replaying re-runs the
    bit-identical execution. *)

val to_string : Gen.case -> string
(** E.g. [abc1;s=317;n=5;f=C,C,C,C,B;xi=5/2;w=clock;d=theta:1:2;e=260]. *)

val of_string : string -> (Gen.case, string) result
(** Parse and {!Gen.validate}.  Total: malformed input yields
    [Error _], never an exception. *)

val repro_command : Gen.case -> string
(** The CLI one-liner reproducing the case: [abc fuzz --replay '…']. *)

val replay :
  ?oracles:Oracle.t list ->
  string ->
  (Gen.case * (string * Oracle.outcome) list, string) result
(** Parse, re-run, re-check.  A failing case fails again, with the same
    oracle outcomes. *)
