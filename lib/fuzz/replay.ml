(** One-line, versioned serialization of fuzz cases, and deterministic
    replay.

    The wire form is a single `;`-separated line of `key=value` fields,

    {[ abc1;s=317;n=5;f=C,C,C,C,B;xi=5/2;w=clock;d=theta:1:2;e=260 ]}

    with rationals in {!Rat.to_string} form (`a/b` or `a`), faults via
    {!Sim.fault_to_string}, and scheduler parameters `:`-separated.
    Optional trailing fields appear only when non-default: `p=<plan>`
    carries a message-level fault plan ({!Sim.plan_to_string}), `b=1`
    marks a resilience-boundary case, and `sch=<c0.c1...>` carries an
    explicit delivery schedule (dot-separated choice indices, emitted
    by the model checker's counterexamples; `s=` was already taken by
    the seed).  [of_string (to_string c) = c] exactly, and replaying a
    line reruns the identical execution ({!Gen.run_case} is
    deterministic). *)

let version = "abc1"

let string_of_sched (s : Gen.sched_spec) =
  let r = Rat.to_string in
  match s with
  | Gen.S_theta { tau_minus; tau_plus } ->
      Printf.sprintf "theta:%s:%s" (r tau_minus) (r tau_plus)
  | Gen.S_async { max_delay } -> Printf.sprintf "async:%s" (r max_delay)
  | Gen.S_growing { nclusters; intra_min; intra_max; inter_base; growth_rate } ->
      Printf.sprintf "growing:%d:%s:%s:%s:%s" nclusters (r intra_min) (r intra_max)
        (r inter_base) (r growth_rate)
  | Gen.S_eventually_theta { gst; chaos_max; tau_minus; tau_plus } ->
      Printf.sprintf "etheta:%s:%s:%s:%s" (r gst) (r chaos_max) (r tau_minus)
        (r tau_plus)
  | Gen.S_targeted { tau_minus; tau_plus; victim_sender; victim_dst; stretch } ->
      Printf.sprintf "targeted:%s:%s:%d:%d:%s" (r tau_minus) (r tau_plus) victim_sender
        victim_dst (r stretch)
  | Gen.S_deferring { victim_sender; victim_dst } ->
      Printf.sprintf "defer:%d:%d" victim_sender victim_dst

let schedule_to_string sch = String.concat "." (List.map string_of_int sch)

let schedule_of_string s =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | t :: rest -> (
        match int_of_string_opt t with
        | Some k when k >= 0 -> go (k :: acc) rest
        | _ -> None)
  in
  if s = "" then None else go [] (String.split_on_char '.' s)

let to_string (c : Gen.case) =
  Printf.sprintf "%s;s=%d;n=%d;f=%s;xi=%s;w=%s;d=%s;e=%d%s%s%s" version c.Gen.c_seed
    c.Gen.c_nprocs
    (String.concat "," (Array.to_list (Array.map Sim.fault_to_string c.Gen.c_faults)))
    (Rat.to_string c.Gen.c_xi)
    (Gen.workload_name c.Gen.c_workload)
    (string_of_sched c.Gen.c_sched)
    c.Gen.c_max_events
    (* optional fields are omitted when at their defaults, so pre-nemesis
       lines round-trip byte-identically *)
    (if c.Gen.c_plan = [] then "" else ";p=" ^ Sim.plan_to_string c.Gen.c_plan)
    (if c.Gen.c_boundary then ";b=1" else "")
    (if c.Gen.c_schedule = [] then ""
     else ";sch=" ^ schedule_to_string c.Gen.c_schedule)

(* ------------------------------------------------------------------ *)
(* Parsing *)

let ( let* ) = Result.bind

let int_field k v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %s: not an integer: %S" k v)

let rat_field k v =
  match Rat.of_string v with
  | r -> Ok r
  | exception _ -> Error (Printf.sprintf "field %s: not a rational: %S" k v)

let sched_of_string s =
  let parts = String.split_on_char ':' s in
  let ri k v = int_field k v and rr k v = rat_field k v in
  match parts with
  | [ "theta"; tm; tp ] ->
      let* tau_minus = rr "d.tau-" tm in
      let* tau_plus = rr "d.tau+" tp in
      Ok (Gen.S_theta { tau_minus; tau_plus })
  | [ "async"; md ] ->
      let* max_delay = rr "d.max" md in
      Ok (Gen.S_async { max_delay })
  | [ "growing"; nc; imin; imax; base; rate ] ->
      let* nclusters = ri "d.clusters" nc in
      let* intra_min = rr "d.intra-" imin in
      let* intra_max = rr "d.intra+" imax in
      let* inter_base = rr "d.base" base in
      let* growth_rate = rr "d.rate" rate in
      Ok (Gen.S_growing { nclusters; intra_min; intra_max; inter_base; growth_rate })
  | [ "etheta"; gst; chaos; tm; tp ] ->
      let* gst = rr "d.gst" gst in
      let* chaos_max = rr "d.chaos" chaos in
      let* tau_minus = rr "d.tau-" tm in
      let* tau_plus = rr "d.tau+" tp in
      Ok (Gen.S_eventually_theta { gst; chaos_max; tau_minus; tau_plus })
  | [ "targeted"; tm; tp; vs; vd; st ] ->
      let* tau_minus = rr "d.tau-" tm in
      let* tau_plus = rr "d.tau+" tp in
      let* victim_sender = ri "d.victim-sender" vs in
      let* victim_dst = ri "d.victim-dst" vd in
      let* stretch = rr "d.stretch" st in
      Ok (Gen.S_targeted { tau_minus; tau_plus; victim_sender; victim_dst; stretch })
  | [ "defer"; vs; vd ] ->
      let* victim_sender = ri "d.victim-sender" vs in
      let* victim_dst = ri "d.victim-dst" vd in
      Ok (Gen.S_deferring { victim_sender; victim_dst })
  | _ -> Error (Printf.sprintf "unknown scheduler spec %S" s)

let workload_of_string = function
  | "clock" -> Ok Gen.W_clock
  | "lockstep" -> Ok Gen.W_lockstep
  | "eig" -> Ok Gen.W_consensus
  | w -> Error (Printf.sprintf "unknown workload %S" w)

let faults_of_string s =
  let toks = if s = "" then [] else String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | t :: rest -> (
        match Sim.fault_of_string t with
        | Some f -> go (f :: acc) rest
        | None -> Error (Printf.sprintf "field f: bad fault %S" t))
  in
  go [] toks

let of_string line =
  let line = String.trim line in
  match String.split_on_char ';' line with
  | v :: fields when v = version ->
      let* kvs =
        List.fold_left
          (fun acc field ->
            let* acc = acc in
            match String.index_opt field '=' with
            | Some i ->
                Ok
                  ((String.sub field 0 i,
                    String.sub field (i + 1) (String.length field - i - 1))
                  :: acc)
            | None -> Error (Printf.sprintf "malformed field %S" field))
          (Ok []) fields
      in
      let find k =
        match List.assoc_opt k kvs with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing field %s" k)
      in
      let* s = find "s" in
      let* c_seed = int_field "s" s in
      let* n = find "n" in
      let* c_nprocs = int_field "n" n in
      let* f = find "f" in
      let* c_faults = faults_of_string f in
      let* xi = find "xi" in
      let* c_xi = rat_field "xi" xi in
      let* w = find "w" in
      let* c_workload = workload_of_string w in
      let* d = find "d" in
      let* c_sched = sched_of_string d in
      let* e = find "e" in
      let* c_max_events = int_field "e" e in
      let* c_plan =
        match List.assoc_opt "p" kvs with
        | None -> Ok []
        | Some p -> (
            match Sim.plan_of_string p with
            | Some plan when plan <> [] -> Ok plan
            | Some [] -> Error "field p: empty plan (omit the field instead)"
            | _ -> Error (Printf.sprintf "field p: bad fault plan %S" p))
      in
      let* c_boundary =
        match List.assoc_opt "b" kvs with
        | None -> Ok false
        | Some "1" -> Ok true
        | Some b -> Error (Printf.sprintf "field b: expected 1, got %S" b)
      in
      let* c_schedule =
        match List.assoc_opt "sch" kvs with
        | None -> Ok []
        | Some "" -> Error "field sch: empty schedule (omit the field instead)"
        | Some s -> (
            match schedule_of_string s with
            | Some sch -> Ok sch
            | None -> Error (Printf.sprintf "field sch: bad schedule %S" s))
      in
      Gen.validate
        {
          Gen.c_seed;
          c_nprocs;
          c_faults;
          c_xi;
          c_sched;
          c_workload;
          c_max_events;
          c_plan;
          c_boundary;
          c_schedule;
        }
  | v :: _ -> Error (Printf.sprintf "unknown case format %S (expected %s)" v version)
  | [] -> Error "empty case"

let repro_command c = Printf.sprintf "abc fuzz --replay '%s'" (to_string c)

(** Parse and re-run a serialized case against [oracles]; the failing
    outcomes are exactly those of the original run (determinism). *)
let replay ?(oracles = Oracle.registry) line =
  let* case = of_string line in
  Ok (case, Oracle.evaluate oracles case)
