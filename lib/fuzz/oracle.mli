(** Theorem oracles: the paper's quantitative claims as executable
    checks over a finished fuzz run.  Oracles {e skip} (rather than
    pass) when their theorem's hypothesis does not hold for the case,
    so reports distinguish vacuous from real coverage. *)

type outcome = Pass | Skip of string | Fail of string

(** Per-case evaluation context, shared so expensive analyses (the
    exact admissibility threshold behind [xi_eff]) run at most once. *)
type ctx = {
  case : Gen.case;
  run : Gen.run;
  graph : Execgraph.Graph.t;  (** faithful execution graph *)
  adm : bool Lazy.t;
      (** whether [graph] is admissible for the case's own Ξ; several
          oracles gate on this, so it is decided at most once *)
  xi_eff : Rat.t Lazy.t;
      (** a Ξ the execution is provably admissible for, via
          {!Core.Abc.admissible_xi} *)
}

type t = {
  name : string;
  theorem : string;  (** the claim of the paper being checked *)
  check : ctx -> outcome;
}

val make_ctx : Gen.case -> Gen.run -> ctx

val registry : t list
(** The default oracles: Θ/deferring admissibility (Thm 6, Def 4),
    clock progress (Thm 1), precision on consistent and real-time cuts
    (Thms 2-3), causal cone (Lemma 4), bounded progress (Thm 4),
    lock-step rounds (Thm 5), EIG consensus agreement + validity,
    delay-assignment existence with [1 < τ(e) < Ξ] on the full graph
    and its half prefix (Thm 7), and the two resilience-boundary
    oracles [boundary-precision] / [boundary-agreement].

    The positive theorem oracles skip on boundary cases ([n = 3f]) and
    on cases whose fault plan voids their hypothesis (drop/misdirect
    break reliable delivery; delay overrides and duplicates void the Θ
    certificate of the scheduler).  The boundary oracles run only on
    boundary cases and have inverted polarity: a {e witnessed
    violation} of the corresponding [n ≥ 3f + 1] bound is reported as
    [Fail], so shrinking, repro lines and golden replays work on
    witnesses unchanged. *)

val evaluate : t list -> Gen.case -> (string * outcome) list
(** Run the case once, apply every oracle.  Results start with the
    pseudo-oracle ["no-crash"], which fails iff the simulation or an
    oracle raised. *)

val evaluate_run : t list -> Gen.case -> Gen.run -> (string * outcome) list
(** Like {!evaluate}, on an execution the caller already produced —
    the model checker's per-equivalence-class evaluation.  Oracle
    exceptions are caught per oracle; ["no-crash"] passes (the run
    exists). *)

val select : string -> (t list, string) result
(** Resolve a comma-separated oracle-name list against {!registry},
    preserving registry order; ["no-crash"] is accepted but selects no
    registry oracle.  [Error] on an unknown name, listing the valid
    names. *)

val oracle_names : t list -> string list
(** The names {!evaluate} can report, in report order. *)

val failures : (string * outcome) list -> (string * string) list
(** The [(oracle, detail)] pairs of failing outcomes. *)
