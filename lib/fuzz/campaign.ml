(** Campaign driver: generate cases from a base seed, run every oracle
    on each, shrink the failures, and accumulate statistics.

    A campaign is a pure function of [(seed, cases, oracles)]: the
    per-case seeds are mixed deterministically from the base seed, so
    identical invocations produce identical {!outcome} values (and
    identical rendered reports — see {!Report}).  An optional wall-time
    budget stops early for smoke runs; only [cases_run] differs then. *)

type failure = {
  fl_oracle : string;
  fl_detail : string;
  fl_case : Gen.case;
  fl_shrunk : Shrink.result option;  (** [None] when shrinking is off *)
}

type oracle_stat = { os_pass : int; os_skip : int; os_fail : int }

type outcome = {
  cp_seed : int;
  cp_cases_requested : int;
  cp_cases_run : int;
  cp_families : (string * int) list;  (** scheduler family -> cases, sorted *)
  cp_workloads : (string * int) list;  (** workload -> cases, sorted *)
  cp_stats : (string * oracle_stat) list;  (** in registry order *)
  cp_failures : failure list;
}

(* Distinct per-case seeds from the base seed; any injective-enough
   mixing works, replays never need to invert it (the repro line
   carries the whole case). *)
let case_seed ~seed i = (seed * 1_000_003) + (i * 7919) + i

let bump assoc key =
  match List.assoc_opt key assoc with
  | Some n -> (key, n + 1) :: List.remove_assoc key assoc
  | None -> (key, 1) :: assoc

let run ?(oracles = Oracle.registry) ?(shrink = true) ?time_budget ?(cases = 100)
    ~seed () : outcome =
  let stats =
    ref
      (List.map
         (fun n -> (n, { os_pass = 0; os_skip = 0; os_fail = 0 }))
         (Oracle.oracle_names oracles))
  in
  let families = ref [] and workloads = ref [] in
  let failures = ref [] in
  let started = Sys.time () in
  let out_of_time () =
    match time_budget with
    | None -> false
    | Some b -> Sys.time () -. started > b
  in
  let ran = ref 0 in
  let i = ref 0 in
  while !i < cases && not (out_of_time ()) do
    let case = Gen.generate ~seed:(case_seed ~seed !i) in
    incr i;
    incr ran;
    families := bump !families (Gen.family_name case.Gen.c_sched);
    workloads := bump !workloads (Gen.workload_name case.Gen.c_workload);
    let results = Oracle.evaluate oracles case in
    List.iter
      (fun (name, o) ->
        stats :=
          List.map
            (fun (n, s) ->
              if n <> name then (n, s)
              else
                ( n,
                  match o with
                  | Oracle.Pass -> { s with os_pass = s.os_pass + 1 }
                  | Oracle.Skip _ -> { s with os_skip = s.os_skip + 1 }
                  | Oracle.Fail _ -> { s with os_fail = s.os_fail + 1 } ))
            !stats)
      results;
    List.iter
      (fun (fl_oracle, fl_detail) ->
        let fl_shrunk =
          if shrink then Some (Shrink.shrink ~oracles ~oracle:fl_oracle case) else None
        in
        failures := { fl_oracle; fl_detail; fl_case = case; fl_shrunk } :: !failures)
      (Oracle.failures results)
  done;
  {
    cp_seed = seed;
    cp_cases_requested = cases;
    cp_cases_run = !ran;
    cp_families = List.sort compare !families;
    cp_workloads = List.sort compare !workloads;
    cp_stats = !stats;
    cp_failures = List.rev !failures;
  }
