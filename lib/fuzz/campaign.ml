(** Campaign driver: generate cases from a base seed, run every oracle
    on each, shrink the failures, and accumulate statistics.

    A campaign is a pure function of [(seed, cases, oracles)]: each
    case derives its RNG seed from [(seed, case_index)] through a
    splitmix64 finalizer — no shared random stream — so case [i] is
    the same case no matter which worker runs it or in which order.
    Cases are evaluated on a {!Pool} of [jobs] domains (shrinking of a
    failing case happens inside the same task, so it parallelizes and
    stays a function of the case alone) and the per-worker result
    buffers are merged back {e in case-index order} before any
    statistic or failure is accumulated.  Identical [(seed, cases)]
    invocations therefore produce identical {!outcome} values — and
    identical rendered reports (see {!Report}) — {e regardless of
    [jobs]}.

    The only nondeterministic part of an outcome is {!cost} (wall
    time, allocation), which {!Report.render} deliberately excludes.
    An optional wall-time budget stops early for smoke runs and forces
    [jobs:1], since "how many cases fit in the budget" is inherently a
    serial notion; only [cases_run] differs then. *)

type failure = {
  fl_oracle : string;
  fl_detail : string;
  fl_case : Gen.case;
  fl_shrunk : Shrink.result option;  (** [None] when shrinking is off *)
}

type oracle_stat = { os_pass : int; os_skip : int; os_fail : int }

type cost = {
  ct_jobs : int;  (** workers the campaign ran on *)
  ct_wall : float;  (** whole-campaign wall-clock seconds *)
  ct_case_wall : float array;  (** per-case wall seconds, index order *)
  ct_case_alloc : float array;  (** per-case minor words, index order *)
}

type outcome = {
  cp_seed : int;
  cp_cases_requested : int;
  cp_cases_run : int;
  cp_boundary : bool;  (** resilience-boundary campaign ([n = 3f] cases) *)
  cp_families : (string * int) list;  (** scheduler family -> cases, sorted *)
  cp_workloads : (string * int) list;  (** workload -> cases, sorted *)
  cp_stats : (string * oracle_stat) list;  (** in registry order *)
  cp_failures : failure list;
  cp_cost : cost;  (** nondeterministic; excluded from {!Report.render} *)
}

(* Distinct per-case seeds, splitmix64-style: the base seed is offset
   by (index+1) times the golden-gamma increment and pushed through
   the splitmix finalizer.  Unlike drawing case seeds from one shared
   stream, this makes case i a function of (seed, i) alone — exactly
   what index-ordered parallel evaluation needs.  Replays never need
   to invert it (the repro line carries the whole case). *)
let case_seed ~seed i =
  let open Int64 in
  let golden_gamma = 0x9E3779B97F4A7C15L in
  let z = add (of_int seed) (mul golden_gamma (of_int (i + 1))) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z 0x3FFFFFFFFFFFFFFFL)

let bump assoc key =
  match List.assoc_opt key assoc with
  | Some n -> (key, n + 1) :: List.remove_assoc key assoc
  | None -> (key, 1) :: assoc

(* Everything one case contributes to the outcome; produced inside a
   pool task, merged in index order afterwards. *)
type case_eval = {
  ce_case : Gen.case;
  ce_results : (string * Oracle.outcome) list;
  ce_failures : failure list;
}

let eval_case ~oracles ~shrink ~boundary ~seed i =
  (* the case index is the event scope: everything a case emits gets
     logical timestamps (i, 0), (i, 1), … no matter which worker runs
     it, so campaign trace digests are jobs-invariant *)
  Obs.with_scope i @@ fun () ->
  if Obs.on () then
    Obs.span_begin "fuzz" "case"
      [ ("i", Obs.I i); ("seed", Obs.I (case_seed ~seed i)) ];
  let gen = if boundary then Gen.generate_boundary else Gen.generate in
  let case = gen ~seed:(case_seed ~seed i) in
  let results = Oracle.evaluate oracles case in
  if Obs.on () then
    List.iter
      (fun (name, o) ->
        Obs.instant "fuzz" "oracle"
          [
            ("name", Obs.S name);
            ( "verdict",
              Obs.S
                (match o with
                | Oracle.Pass -> "pass"
                | Oracle.Skip _ -> "skip"
                | Oracle.Fail _ -> "fail") );
          ])
      results;
  let failures =
    List.map
      (fun (fl_oracle, fl_detail) ->
        let fl_shrunk =
          if shrink then Some (Shrink.shrink ~oracles ~oracle:fl_oracle case)
          else None
        in
        { fl_oracle; fl_detail; fl_case = case; fl_shrunk })
      (Oracle.failures results)
  in
  if Obs.on () then
    Obs.span_end "fuzz" "case"
      [ ("i", Obs.I i); ("failures", Obs.I (List.length failures)) ];
  { ce_case = case; ce_results = results; ce_failures = failures }

(* Fold the per-case evaluations, in index order, into the outcome. *)
let merge_evals ~oracles ~seed ~cases ~boundary ~cost (evals : case_eval array) =
  let stats =
    ref
      (List.map
         (fun n -> (n, { os_pass = 0; os_skip = 0; os_fail = 0 }))
         (Oracle.oracle_names oracles))
  in
  let families = ref [] and workloads = ref [] in
  let failures = ref [] in
  Array.iter
    (fun ce ->
      families := bump !families (Gen.family_name ce.ce_case.Gen.c_sched);
      workloads := bump !workloads (Gen.workload_name ce.ce_case.Gen.c_workload);
      List.iter
        (fun (name, o) ->
          stats :=
            List.map
              (fun (n, s) ->
                if n <> name then (n, s)
                else
                  ( n,
                    match o with
                    | Oracle.Pass -> { s with os_pass = s.os_pass + 1 }
                    | Oracle.Skip _ -> { s with os_skip = s.os_skip + 1 }
                    | Oracle.Fail _ -> { s with os_fail = s.os_fail + 1 } ))
              !stats)
        ce.ce_results;
      failures := List.rev_append ce.ce_failures !failures)
    evals;
  {
    cp_seed = seed;
    cp_cases_requested = cases;
    cp_cases_run = Array.length evals;
    cp_boundary = boundary;
    cp_families = List.sort compare !families;
    cp_workloads = List.sort compare !workloads;
    cp_stats = !stats;
    cp_failures = List.rev !failures;
    cp_cost = cost;
  }

let run ?(oracles = Oracle.registry) ?(shrink = true) ?(boundary = false)
    ?time_budget ?(cases = 100) ?jobs ~seed () : outcome =
  let started = Pool.now () in
  let jobs =
    (* how many cases fit in a budget is inherently a serial notion *)
    match time_budget with
    | Some _ -> 1
    | None -> (
        match jobs with Some j -> max 1 j | None -> Pool.recommended_jobs ())
  in
  let evals, case_wall, case_alloc =
    if jobs = 1 then begin
      (* The historical serial loop, on the calling domain, with no
         pool machinery — so a [jobs:1] campaign also composes from
         inside a pool task (the bench harness runs its Z1 report
         section on a worker). *)
      let evals = ref [] in
      let wall = ref [] and alloc = ref [] in
      let cpu0 = Sys.time () in
      let within_budget () =
        match time_budget with
        | None -> true
        | Some b -> Sys.time () -. cpu0 <= b
      in
      let i = ref 0 in
      while !i < cases && within_budget () do
        let t0 = Pool.now () in
        let a0 = Gc.minor_words () in
        evals := eval_case ~oracles ~shrink ~boundary ~seed !i :: !evals;
        wall := (Pool.now () -. t0) :: !wall;
        alloc := (Gc.minor_words () -. a0) :: !alloc;
        incr i
      done;
      ( Array.of_list (List.rev !evals),
        Array.of_list (List.rev !wall),
        Array.of_list (List.rev !alloc) )
    end
    else
      let evals, stats =
        (* chunk:1 because case costs vary by orders of magnitude (an
           EIG case simulates thousands of events, a shrunk clock case
           a handful): fine-grained stealing beats batching here *)
        Pool.map_stats ~jobs ~chunk:1 cases (eval_case ~oracles ~shrink ~boundary ~seed)
      in
      ( evals,
        Array.map (fun s -> s.Pool.st_wall) stats,
        Array.map (fun s -> s.Pool.st_alloc_words) stats )
  in
  let cost =
    {
      ct_jobs = jobs;
      ct_wall = Pool.now () -. started;
      ct_case_wall = case_wall;
      ct_case_alloc = case_alloc;
    }
  in
  merge_evals ~oracles ~seed ~cases ~boundary ~cost evals
