(** Fuzz-case generation and execution.

    A {!case} is a fully serializable adversarial simulation: process
    count, fault vector, Ξ, a scheduler from the full {!Sim} palette
    (including the deferring adversary), a workload, and an event
    budget.  All randomness derives from the single [c_seed], so a case
    replays bit-for-bit from its one-line form (see {!Replay}). *)

type sched_spec =
  | S_theta of { tau_minus : Rat.t; tau_plus : Rat.t }
  | S_async of { max_delay : Rat.t }
  | S_growing of {
      nclusters : int;
      intra_min : Rat.t;
      intra_max : Rat.t;
      inter_base : Rat.t;
      growth_rate : Rat.t;
    }
  | S_eventually_theta of {
      gst : Rat.t;
      chaos_max : Rat.t;
      tau_minus : Rat.t;
      tau_plus : Rat.t;
    }
  | S_targeted of {
      tau_minus : Rat.t;
      tau_plus : Rat.t;
      victim_sender : int;
      victim_dst : int;
      stretch : Rat.t;
    }
  | S_deferring of { victim_sender : int; victim_dst : int }

type workload = W_clock | W_lockstep | W_consensus

type case = {
  c_seed : int;
  c_nprocs : int;
  c_faults : Sim.fault array;
  c_xi : Rat.t;
  c_sched : sched_spec;
  c_workload : workload;
  c_max_events : int;
  c_plan : Sim.fault_plan;  (** message-level fault actions, [] for none *)
  c_boundary : bool;
      (** resilience-boundary mode: [n = 3f] with an equivocator, where
          violations of the paper's bounds are expected and witnessed *)
  c_schedule : int list;
      (** explicit delivery schedule ([] for none): replayed through
          {!Sim.run_scheduled}, overriding the scheduler.  Emitted by
          the model checker's counterexample lines ([sch=] field). *)
}

val family_name : sched_spec -> string
(** ["theta"], ["async"], ["growing"], ["etheta"], ["targeted"] or
    ["defer"]. *)

val workload_name : workload -> string
(** ["clock"], ["lockstep"] or ["eig"]. *)

val nfaulty : case -> int
val correct_procs : case -> int list

val has_equivocator : case -> bool
(** Whether some process runs an equivocating strategy
    ({!Byz.Equivocator} or {!Byz.Mimic}). *)

val strategy_of : case -> int -> Byz.t
(** The byzantine strategy of a process ({!Byz.Silent} for
    non-byzantine processes). *)

val validate : case -> (case, string) result
(** Check every structural invariant the theorem oracles rely on:
    [n ≥ 3f + 1] (positive cases) or exactly [n = 3f] with an
    equivocator (boundary cases), known strategy names, [Ξ > 1],
    [Ξ > τ+/τ−] for Θ cases, victim and misdirect indices in range,
    budget ≥ nprocs, … *)

val generate : seed:int -> case
(** Deterministic: equal seeds produce equal cases.  Generated cases
    always satisfy {!validate}.  Samples the full nemesis palette:
    named byzantine strategies, crashes (including [Crash 0]),
    send/receive omission, crash-recovery, and message-level fault
    plans on a quarter of the cases — always at [n ≥ 3f + 1]. *)

val generate_boundary : seed:int -> case
(** Resilience-boundary cases at exactly [n = 3f] with an equivocator:
    clock workload under the deferring adversary (Thm 2 precision
    expected to break) or EIG consensus with forged per-destination
    relays (agreement expected to break). *)

(** A finished run, tagged by workload. *)
type run =
  | R_clock of (Core.Clock_sync.state, Core.Clock_sync.msg) Sim.result
  | R_lockstep of
      ((unit, unit) Core.Lockstep.state, unit Core.Lockstep.msg) Sim.result
  | R_consensus of
      ( (Core.Consensus.Eig.state, Core.Consensus.Eig.msg) Core.Lockstep.state,
        Core.Consensus.Eig.msg Core.Lockstep.msg )
      Sim.result
      * int array  (** the per-process consensus inputs *)

val graph_of_run : run -> Execgraph.Graph.t
(** The faithful execution graph of the run. *)

val delivered_of_run : run -> int

val consensus_input : case -> int -> int
(** Input value of a process in a consensus case (a pure function of
    the case seed — no extra serialization needed). *)

val run_case : case -> run
(** Execute the case ({!Sim.run}; {!Sim.run_deferring} for
    [S_deferring]; {!Sim.run_scheduled} when [c_schedule] is
    non-empty).  Deterministic.  @raise Invalid_argument if the case
    does not {!validate}. *)

(** A case opened as an interactive choice-point session (see
    {!Sim.Session}), with the workload's state/message types hidden:
    the model checker inspects the ready list, picks deliveries one by
    one, and wraps the terminal execution as a {!run} for the oracle
    battery.  Call [ms_run] once, at a maximal point. *)
type mc_session = {
  ms_ready : unit -> Sim.Session.info list;
  ms_iter_ready : (env:int -> dst:int -> posted_at:int -> unit) -> unit;
      (** {!Sim.Session.iter_ready}: the same entries without the list
          allocation (the explorer's per-node read path) *)
  ms_deliver : int -> Sim.Session.info;
  ms_finished : unit -> bool;
  ms_delivered : unit -> int;
  ms_envelopes : unit -> int;
  ms_snapshot : unit -> int;
      (** {!Sim.Session.snapshot}: the current logical time, as an
          [undo] target *)
  ms_undo : unit -> unit;
      (** {!Sim.Session.undo}: roll the last delivery back (sessions
          opened with [record:true] only) *)
  ms_run : unit -> run;
}

val open_session : ?record:bool -> case -> mc_session
(** Fresh session for the case (its [c_schedule] is ignored — the
    caller drives).  [record:true] keeps the undo journal that
    [ms_undo] needs (default [false]).
    @raise Invalid_argument if the case does not {!validate}. *)
