(** Fuzz-case generation and execution.

    A {!case} is a fully serializable description of one adversarial
    simulation: process count, fault vector, synchrony parameter Ξ, a
    scheduler drawn from the full palette of {!Sim} (including the
    oracle-guided deferring adversary), a workload (which of the
    paper's algorithms runs), and an event budget.  Every random choice
    is derived from the single [c_seed], so a case replays bit-for-bit
    from its one-line serialization ({!Replay}).

    Campaigns hand each case a seed mixed splitmix64-style from the
    base seed and the case index ({!Campaign.case_seed}) — never a
    shared RNG stream — so a case is a pure function of
    [(campaign seed, index)] and can be generated on any pool worker
    in any order without changing what it is.

    The generator maintains the structural invariants the paper's
    theorems assume — [n ≥ 3f + 1], Ξ > 1, and for Θ schedulers
    [Ξ > τ+/τ−] so that Theorem 6 applies unconditionally. *)

open Core

let q = Rat.of_ints

(** Scheduler family, with every parameter needed to rebuild it. *)
type sched_spec =
  | S_theta of { tau_minus : Rat.t; tau_plus : Rat.t }
      (** Θ-Model: delays in [[τ−, τ+]]; Theorem 6 territory *)
  | S_async of { max_delay : Rat.t }  (** fully asynchronous, zero allowed *)
  | S_growing of {
      nclusters : int;
      intra_min : Rat.t;
      intra_max : Rat.t;
      inter_base : Rat.t;
      growth_rate : Rat.t;
    }  (** Fig. 9 spacecraft formation: unbounded inter-cluster delays *)
  | S_eventually_theta of {
      gst : Rat.t;
      chaos_max : Rat.t;
      tau_minus : Rat.t;
      tau_plus : Rat.t;
    }  (** §6 ◇-model: chaos before GST, Θ after *)
  | S_targeted of {
      tau_minus : Rat.t;
      tau_plus : Rat.t;
      victim_sender : int;
      victim_dst : int;
      stretch : Rat.t;
    }  (** Θ plus one stretched link (Fig. 1 / §5.2 isolated slow chain) *)
  | S_deferring of { victim_sender : int; victim_dst : int }
      (** the adaptive adversary of {!Sim.run_deferring}: defers the
          victim link to the exact ABC admissibility boundary *)

type workload =
  | W_clock  (** Algorithm 1: Byzantine clock synchronization *)
  | W_lockstep  (** Algorithm 2 over the no-op round algorithm *)
  | W_consensus  (** EIG Byzantine consensus over lock-step rounds *)

type case = {
  c_seed : int;  (** seeds the scheduler RNG and the consensus inputs *)
  c_nprocs : int;
  c_faults : Sim.fault array;
  c_xi : Rat.t;  (** the protocol-level Ξ (> 1; > τ+/τ− for Θ cases) *)
  c_sched : sched_spec;
  c_workload : workload;
  c_max_events : int;  (** receive-event budget (≥ nprocs) *)
}

let family_name = function
  | S_theta _ -> "theta"
  | S_async _ -> "async"
  | S_growing _ -> "growing"
  | S_eventually_theta _ -> "etheta"
  | S_targeted _ -> "targeted"
  | S_deferring _ -> "defer"

let workload_name = function
  | W_clock -> "clock"
  | W_lockstep -> "lockstep"
  | W_consensus -> "eig"

let nfaulty c =
  Array.fold_left (fun a f -> if f = Sim.Correct then a else a + 1) 0 c.c_faults

let correct_procs c =
  List.filter (fun p -> c.c_faults.(p) = Sim.Correct) (List.init c.c_nprocs Fun.id)

(* ------------------------------------------------------------------ *)
(* Validation: the invariants every case (generated or parsed from a
   repro line) must satisfy before it can run. *)

let validate c =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let f = nfaulty c in
  if c.c_nprocs < 2 then err "need at least 2 processes"
  else if Array.length c.c_faults <> c.c_nprocs then err "fault vector size mismatch"
  else if c.c_nprocs < (3 * f) + 1 then
    err "need n >= 3f + 1 (n = %d, f = %d)" c.c_nprocs f
  else if Rat.compare c.c_xi Rat.one <= 0 then err "need Xi > 1"
  else if c.c_max_events < c.c_nprocs then err "event budget below nprocs"
  else
    let proc_ok p = p >= 0 && p < c.c_nprocs in
    let pos x = Rat.sign x > 0 in
    let nonneg x = Rat.sign x >= 0 in
    match c.c_sched with
    | S_theta { tau_minus; tau_plus } ->
        if not (pos tau_minus && Rat.compare tau_minus tau_plus <= 0) then
          err "theta: need 0 < tau- <= tau+"
        else if Rat.compare c.c_xi (Rat.div tau_plus tau_minus) <= 0 then
          err "theta: need Xi > tau+/tau- (Theorem 6)"
        else Ok c
    | S_async { max_delay } ->
        if nonneg max_delay then Ok c else err "async: negative max delay"
    | S_growing { nclusters; intra_min; intra_max; inter_base; growth_rate } ->
        if nclusters < 1 then err "growing: need >= 1 cluster"
        else if
          not
            (pos intra_min
            && Rat.compare intra_min intra_max <= 0
            && nonneg inter_base && nonneg growth_rate)
        then err "growing: bad delay parameters"
        else Ok c
    | S_eventually_theta { gst; chaos_max; tau_minus; tau_plus } ->
        if not (nonneg gst && nonneg chaos_max) then err "etheta: negative gst/chaos"
        else if not (pos tau_minus && Rat.compare tau_minus tau_plus <= 0) then
          err "etheta: need 0 < tau- <= tau+"
        else Ok c
    | S_targeted { tau_minus; tau_plus; victim_sender; victim_dst; stretch } ->
        if not (pos tau_minus && Rat.compare tau_minus tau_plus <= 0) then
          err "targeted: need 0 < tau- <= tau+"
        else if not (proc_ok victim_sender && proc_ok victim_dst) then
          err "targeted: victim out of range"
        else if not (pos stretch) then err "targeted: need stretch > 0"
        else Ok c
    | S_deferring { victim_sender; victim_dst } ->
        if not (proc_ok victim_sender && proc_ok victim_dst) then
          err "defer: victim out of range"
        else if c.c_workload = W_consensus then
          err "defer: not paired with the eig workload (cost)"
        else Ok c

(* ------------------------------------------------------------------ *)
(* Generation *)

let generate ~seed =
  let st = Random.State.make [| 0xF0552; seed |] in
  let pick arr = arr.(Random.State.int st (Array.length arr)) in
  let sched_kind = Random.State.int st 6 in
  let workload =
    (* the deferring adversary re-checks admissibility per delivery
       (quadratic), so it never carries the heavy consensus workload *)
    if sched_kind = 5 then pick [| W_clock; W_clock; W_lockstep |]
    else pick [| W_clock; W_clock; W_clock; W_lockstep; W_lockstep; W_consensus |]
  in
  let nprocs, fmax =
    match workload with
    | W_consensus -> (4 + Random.State.int st 2, 1)
    | W_clock | W_lockstep ->
        let n = 4 + Random.State.int st 5 in
        (n, min 2 ((n - 1) / 3))
  in
  let f = Random.State.int st (fmax + 1) in
  let faults = Array.make nprocs Sim.Correct in
  for i = 0 to f - 1 do
    faults.(nprocs - 1 - i) <-
      (if Random.State.bool st then Sim.Byzantine
       else Sim.Crash (1 + Random.State.int st 8))
  done;
  let margin = pick [| q 1 4; q 1 2; q 1 1 |] in
  let xi_palette () = Rat.add (pick [| q 3 2; q 2 1; q 5 2; q 3 1 |]) margin in
  let victim () =
    let s = Random.State.int st nprocs in
    (s, (s + 1 + Random.State.int st (nprocs - 1)) mod nprocs)
  in
  let sched, xi =
    match sched_kind with
    | 0 ->
        let tau_minus = pick [| q 1 2; q 1 1; q 2 1 |] in
        let ratio = pick [| q 3 2; q 2 1; q 3 1 |] in
        ( S_theta { tau_minus; tau_plus = Rat.mul tau_minus ratio },
          Rat.add ratio margin )
    | 1 -> (S_async { max_delay = pick [| q 3 1; q 8 1; q 20 1 |] }, xi_palette ())
    | 2 ->
        ( S_growing
            {
              nclusters = 2 + Random.State.int st 2;
              intra_min = q 1 1;
              intra_max = q 2 1;
              inter_base = pick [| q 3 1; q 5 1 |];
              growth_rate = pick [| q 1 2; q 2 1 |];
            },
          xi_palette () )
    | 3 ->
        ( S_eventually_theta
            {
              gst = pick [| Rat.zero; q 5 1; q 15 1 |];
              chaos_max = pick [| q 10 1; q 40 1 |];
              tau_minus = q 1 1;
              tau_plus = q 2 1;
            },
          xi_palette () )
    | 4 ->
        let victim_sender, victim_dst = victim () in
        ( S_targeted
            {
              tau_minus = q 1 1;
              tau_plus = q 2 1;
              victim_sender;
              victim_dst;
              stretch = pick [| q 5 1; q 12 1; q 25 1 |];
            },
          xi_palette () )
    | _ ->
        let victim_sender, victim_dst = victim () in
        (S_deferring { victim_sender; victim_dst }, xi_palette ())
  in
  let deferring = match sched with S_deferring _ -> true | _ -> false in
  let max_events =
    match workload with
    | W_clock -> (
        if deferring then 70 + Random.State.int st 30
        else
          match sched with
          | S_theta _ ->
              (* Theorems 2-4 and Lemma 4 are checked in full on Θ
                 executions, so scale the budget with ϱ = ⌈4Ξ+1⌉: a
                 clock increment costs ≈ n² events, and Theorem 4 only
                 bites once some process performs ϱ of them. *)
              let rho =
                Rat.ceil_int (Rat.add (Rat.mul (Rat.of_int 4) xi) Rat.one)
              in
              (nprocs * nprocs * (rho + 2)) + Random.State.int st 80
          | _ -> 120 + (12 * nprocs) + Random.State.int st 80)
    | W_lockstep ->
        if deferring then 90 + Random.State.int st 40
        else 300 + Random.State.int st 250
    | W_consensus -> 2500 + (700 * f)
  in
  let case =
    {
      c_seed = 1 + Random.State.int st 0x3FFFFFFF;
      c_nprocs = nprocs;
      c_faults = faults;
      c_xi = xi;
      c_sched = sched;
      c_workload = workload;
      c_max_events = max_events;
    }
  in
  match validate case with
  | Ok c -> c
  | Error e ->
      (* the generator keeps every invariant by construction *)
      invalid_arg (Printf.sprintf "Fuzz.Gen.generate: internal invariant: %s" e)

(* ------------------------------------------------------------------ *)
(* Execution *)

(** Result of running a case, tagged by workload (the three workloads
    have different state types). *)
type run =
  | R_clock of (Clock_sync.state, Clock_sync.msg) Sim.result
  | R_lockstep of ((unit, unit) Lockstep.state, unit Lockstep.msg) Sim.result
  | R_consensus of
      ( (Consensus.Eig.state, Consensus.Eig.msg) Lockstep.state,
        Consensus.Eig.msg Lockstep.msg )
      Sim.result
      * int array  (** the per-process input values *)

let graph_of_run = function
  | R_clock r -> r.Sim.graph
  | R_lockstep r -> r.Sim.graph
  | R_consensus (r, _) -> r.Sim.graph

let delivered_of_run = function
  | R_clock r -> r.Sim.delivered
  | R_lockstep r -> r.Sim.delivered
  | R_consensus (r, _) -> r.Sim.delivered

(* A scheduler for the case's spec.  Polymorphic in the payload (all
   palette schedulers ignore it); for the deferring adversary the
   returned scheduler is a placeholder — [run_deferring] ignores it. *)
let scheduler_of_spec ~rng spec =
  match spec with
  | S_theta { tau_minus; tau_plus } -> Sim.theta_scheduler ~rng ~tau_minus ~tau_plus ()
  | S_async { max_delay } -> Sim.async_scheduler ~rng ~max_delay ()
  | S_growing { nclusters; intra_min; intra_max; inter_base; growth_rate } ->
      Sim.growing_scheduler ~rng
        ~cluster_of:(fun p -> p mod nclusters)
        ~intra_min ~intra_max ~inter_base ~growth_rate ()
  | S_eventually_theta { gst; chaos_max; tau_minus; tau_plus } ->
      Sim.eventually_theta_scheduler ~rng ~gst ~chaos_max ~tau_minus ~tau_plus ()
  | S_targeted { tau_minus; tau_plus; victim_sender; victim_dst; stretch } ->
      Sim.targeted_scheduler ~rng ~tau_minus ~tau_plus
        ~victim:(fun ~sender ~dst ~msg_index:_ ->
          sender = victim_sender && dst = victim_dst)
        ~stretched:(fun ~send_time:_ -> stretch)
        ()
  | S_deferring _ -> Sim.constant_scheduler Rat.one

(** Input value of process [p] in a consensus case: a deterministic
    function of the case seed, so it needs no extra serialization. *)
let consensus_input c p = (c.c_seed lsr (p mod 24)) land 1

let run_case (c : case) : run =
  (match validate c with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Fuzz.Gen.run_case: " ^ e));
  let n = c.c_nprocs in
  let f = nfaulty c in
  let rng = Random.State.make [| 0xD1CE; c.c_seed |] in
  let exec cfg =
    match c.c_sched with
    | S_deferring { victim_sender; victim_dst } ->
        Sim.run_deferring cfg ~xi:c.c_xi ~victim:(fun ~sender ~dst ->
            sender = victim_sender && dst = victim_dst)
    | _ -> Sim.run cfg
  in
  match c.c_workload with
  | W_clock ->
      let cfg =
        Sim.make_config
          ~byzantine:(Clock_sync.byzantine_rusher ~ahead:4)
          ~nprocs:n
          ~algorithm:(Clock_sync.algorithm ~f)
          ~faults:c.c_faults
          ~scheduler:(scheduler_of_spec ~rng c.c_sched)
          ~max_events:c.c_max_events ()
      in
      R_clock (exec cfg)
  | W_lockstep ->
      let cfg =
        Sim.make_config
          ~byzantine:(Lockstep.algorithm ~f ~xi:c.c_xi Lockstep.noop_round_algo)
          ~nprocs:n
          ~algorithm:(Lockstep.algorithm ~f ~xi:c.c_xi Lockstep.noop_round_algo)
          ~faults:c.c_faults
          ~scheduler:(scheduler_of_spec ~rng c.c_sched)
          ~max_events:c.c_max_events ()
      in
      R_lockstep (exec cfg)
  | W_consensus ->
      let inputs = Array.init n (consensus_input c) in
      let algo = Consensus.Eig.algo ~f ~value:(fun p -> inputs.(p)) in
      let byz =
        (* two-faced liar over lock-step, as in the CLI's consensus demo *)
        let real = Consensus.Eig.algo ~f ~value:(fun _ -> 0) in
        Lockstep.algorithm ~f ~xi:c.c_xi
          {
            Lockstep.r_init =
              (fun ~self ~nprocs ->
                let st, _ = real.Lockstep.r_init ~self ~nprocs in
                (st, [ ([], 0) ]));
            r_step =
              (fun ~self ~nprocs ~round st _ ->
                (st, List.init round (fun i -> ([ (self + i) mod nprocs ], i mod 2))));
          }
      in
      let correct = correct_procs c in
      let cfg =
        Sim.make_config ~byzantine:byz ~nprocs:n
          ~algorithm:(Lockstep.algorithm ~f ~xi:c.c_xi algo)
          ~faults:c.c_faults
          ~scheduler:(scheduler_of_spec ~rng c.c_sched)
          ~max_events:c.c_max_events
          ~stop_when:(fun states ->
            List.for_all
              (fun p ->
                Consensus.Eig.decision (Lockstep.round_state states.(p)) <> None)
              correct)
          ()
      in
      R_consensus (exec cfg, inputs)
