(** Fuzz-case generation and execution.

    A {!case} is a fully serializable description of one adversarial
    simulation: process count, fault vector, synchrony parameter Ξ, a
    scheduler drawn from the full palette of {!Sim} (including the
    oracle-guided deferring adversary), a workload (which of the
    paper's algorithms runs), and an event budget.  Every random choice
    is derived from the single [c_seed], so a case replays bit-for-bit
    from its one-line serialization ({!Replay}).

    Campaigns hand each case a seed mixed splitmix64-style from the
    base seed and the case index ({!Campaign.case_seed}) — never a
    shared RNG stream — so a case is a pure function of
    [(campaign seed, index)] and can be generated on any pool worker
    in any order without changing what it is.

    The generator maintains the structural invariants the paper's
    theorems assume — [n ≥ 3f + 1], Ξ > 1, and for Θ schedulers
    [Ξ > τ+/τ−] so that Theorem 6 applies unconditionally. *)

open Core

let q = Rat.of_ints

(** Scheduler family, with every parameter needed to rebuild it. *)
type sched_spec =
  | S_theta of { tau_minus : Rat.t; tau_plus : Rat.t }
      (** Θ-Model: delays in [[τ−, τ+]]; Theorem 6 territory *)
  | S_async of { max_delay : Rat.t }  (** fully asynchronous, zero allowed *)
  | S_growing of {
      nclusters : int;
      intra_min : Rat.t;
      intra_max : Rat.t;
      inter_base : Rat.t;
      growth_rate : Rat.t;
    }  (** Fig. 9 spacecraft formation: unbounded inter-cluster delays *)
  | S_eventually_theta of {
      gst : Rat.t;
      chaos_max : Rat.t;
      tau_minus : Rat.t;
      tau_plus : Rat.t;
    }  (** §6 ◇-model: chaos before GST, Θ after *)
  | S_targeted of {
      tau_minus : Rat.t;
      tau_plus : Rat.t;
      victim_sender : int;
      victim_dst : int;
      stretch : Rat.t;
    }  (** Θ plus one stretched link (Fig. 1 / §5.2 isolated slow chain) *)
  | S_deferring of { victim_sender : int; victim_dst : int }
      (** the adaptive adversary of {!Sim.run_deferring}: defers the
          victim link to the exact ABC admissibility boundary *)

type workload =
  | W_clock  (** Algorithm 1: Byzantine clock synchronization *)
  | W_lockstep  (** Algorithm 2 over the no-op round algorithm *)
  | W_consensus  (** EIG Byzantine consensus over lock-step rounds *)

type case = {
  c_seed : int;  (** seeds the scheduler RNG and the consensus inputs *)
  c_nprocs : int;
  c_faults : Sim.fault array;
  c_xi : Rat.t;  (** the protocol-level Ξ (> 1; > τ+/τ− for Θ cases) *)
  c_sched : sched_spec;
  c_workload : workload;
  c_max_events : int;  (** receive-event budget (≥ nprocs) *)
  c_plan : Sim.fault_plan;  (** message-level fault actions, [] for none *)
  c_boundary : bool;
      (** resilience-boundary mode: the case deliberately sits at
          [n = 3f] with an equivocator, where the paper's guarantees
          are allowed — and expected — to break.  Positive theorem
          oracles skip such cases; the boundary oracles fail on them
          exactly when a violation is witnessed. *)
  c_schedule : int list;
      (** explicit delivery schedule ([] for none): choice [i] picks
          the index-[i]th entry of the ready list at step [i] (see
          {!Sim.run_scheduled}).  Produced by the model checker's
          counterexample emission; overrides the scheduler entirely. *)
}

let family_name = function
  | S_theta _ -> "theta"
  | S_async _ -> "async"
  | S_growing _ -> "growing"
  | S_eventually_theta _ -> "etheta"
  | S_targeted _ -> "targeted"
  | S_deferring _ -> "defer"

let workload_name = function
  | W_clock -> "clock"
  | W_lockstep -> "lockstep"
  | W_consensus -> "eig"

let nfaulty c =
  Array.fold_left (fun a f -> if f = Sim.Correct then a else a + 1) 0 c.c_faults

let correct_procs c =
  List.filter (fun p -> c.c_faults.(p) = Sim.Correct) (List.init c.c_nprocs Fun.id)

(* ------------------------------------------------------------------ *)
(* Validation: the invariants every case (generated or parsed from a
   repro line) must satisfy before it can run. *)

let has_equivocator c =
  Array.exists
    (fun fl ->
      match Byz.of_fault fl with
      | Some (Byz.Equivocator | Byz.Mimic _) -> true
      | _ -> false)
    c.c_faults

let validate c =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let f = nfaulty c in
  let strategies_known =
    Array.for_all
      (fun fl -> match fl with Sim.Byzantine _ -> Byz.of_fault fl <> None | _ -> true)
      c.c_faults
  in
  if c.c_nprocs < 2 then err "need at least 2 processes"
  else if Array.length c.c_faults <> c.c_nprocs then err "fault vector size mismatch"
  else if not strategies_known then err "unknown byzantine strategy"
  else if (not c.c_boundary) && c.c_nprocs < (3 * f) + 1 then
    err "need n >= 3f + 1 (n = %d, f = %d)" c.c_nprocs f
  else if c.c_boundary && (f < 1 || c.c_nprocs <> 3 * f) then
    err "boundary: need n = 3f with f >= 1 (n = %d, f = %d)" c.c_nprocs f
  else if c.c_boundary && not (has_equivocator c) then
    err "boundary: need an equivocating byzantine process"
  else if c.c_boundary && c.c_workload = W_lockstep then
    err "boundary: workload must be clock or eig"
  else if Rat.compare c.c_xi Rat.one <= 0 then err "need Xi > 1"
  else if c.c_max_events < c.c_nprocs then err "event budget below nprocs"
  else if
    List.exists
      (fun (_, a) ->
        match a with Sim.P_misdirect d -> d < 0 || d >= c.c_nprocs | _ -> false)
      c.c_plan
  then err "plan: misdirect target out of range"
  else if List.exists (fun (i, _) -> i < 0) c.c_plan then err "plan: negative msg_index"
  else if List.exists (fun k -> k < 0) c.c_schedule then
    err "schedule: negative choice index"
  else if
    c.c_schedule <> []
    && match c.c_sched with S_deferring _ -> true | _ -> false
  then err "schedule: the deferring adversary picks its own delivery order"
  else
    let proc_ok p = p >= 0 && p < c.c_nprocs in
    let pos x = Rat.sign x > 0 in
    let nonneg x = Rat.sign x >= 0 in
    match c.c_sched with
    | S_theta { tau_minus; tau_plus } ->
        if not (pos tau_minus && Rat.compare tau_minus tau_plus <= 0) then
          err "theta: need 0 < tau- <= tau+"
        else if Rat.compare c.c_xi (Rat.div tau_plus tau_minus) <= 0 then
          err "theta: need Xi > tau+/tau- (Theorem 6)"
        else Ok c
    | S_async { max_delay } ->
        if nonneg max_delay then Ok c else err "async: negative max delay"
    | S_growing { nclusters; intra_min; intra_max; inter_base; growth_rate } ->
        if nclusters < 1 then err "growing: need >= 1 cluster"
        else if
          not
            (pos intra_min
            && Rat.compare intra_min intra_max <= 0
            && nonneg inter_base && nonneg growth_rate)
        then err "growing: bad delay parameters"
        else Ok c
    | S_eventually_theta { gst; chaos_max; tau_minus; tau_plus } ->
        if not (nonneg gst && nonneg chaos_max) then err "etheta: negative gst/chaos"
        else if not (pos tau_minus && Rat.compare tau_minus tau_plus <= 0) then
          err "etheta: need 0 < tau- <= tau+"
        else Ok c
    | S_targeted { tau_minus; tau_plus; victim_sender; victim_dst; stretch } ->
        if not (pos tau_minus && Rat.compare tau_minus tau_plus <= 0) then
          err "targeted: need 0 < tau- <= tau+"
        else if not (proc_ok victim_sender && proc_ok victim_dst) then
          err "targeted: victim out of range"
        else if not (pos stretch) then err "targeted: need stretch > 0"
        else Ok c
    | S_deferring { victim_sender; victim_dst } ->
        if not (proc_ok victim_sender && proc_ok victim_dst) then
          err "defer: victim out of range"
        else if c.c_workload = W_consensus then
          err "defer: not paired with the eig workload (cost)"
        else Ok c

(* ------------------------------------------------------------------ *)
(* Generation *)

let generate ~seed =
  let st = Random.State.make [| 0xF0552; seed |] in
  let pick arr = arr.(Random.State.int st (Array.length arr)) in
  let sched_kind = Random.State.int st 6 in
  let workload =
    (* the deferring adversary re-checks admissibility per delivery
       (quadratic), so it never carries the heavy consensus workload *)
    if sched_kind = 5 then pick [| W_clock; W_clock; W_lockstep |]
    else pick [| W_clock; W_clock; W_clock; W_lockstep; W_lockstep; W_consensus |]
  in
  let nprocs, fmax =
    match workload with
    | W_consensus -> (4 + Random.State.int st 2, 1)
    | W_clock | W_lockstep ->
        let n = 4 + Random.State.int st 5 in
        (n, min 2 ((n - 1) / 3))
  in
  let f = Random.State.int st (fmax + 1) in
  let faults = Array.make nprocs Sim.Correct in
  let byz_palette = Array.of_list Byz.palette in
  for i = 0 to f - 1 do
    faults.(nprocs - 1 - i) <-
      (match Random.State.int st 8 with
      | 0 | 1 | 2 -> Byz.fault (pick byz_palette)
      | 3 | 4 -> Sim.Crash (Random.State.int st 9)
      | 5 -> Sim.Send_omission (Random.State.int st 6)
      | 6 -> Sim.Receive_omission (1 + Random.State.int st 4)
      | _ -> Sim.Recover (Random.State.int st 6, 1 + Random.State.int st 6))
  done;
  let margin = pick [| q 1 4; q 1 2; q 1 1 |] in
  let xi_palette () = Rat.add (pick [| q 3 2; q 2 1; q 5 2; q 3 1 |]) margin in
  let victim () =
    let s = Random.State.int st nprocs in
    (s, (s + 1 + Random.State.int st (nprocs - 1)) mod nprocs)
  in
  let sched, xi =
    match sched_kind with
    | 0 ->
        let tau_minus = pick [| q 1 2; q 1 1; q 2 1 |] in
        let ratio = pick [| q 3 2; q 2 1; q 3 1 |] in
        ( S_theta { tau_minus; tau_plus = Rat.mul tau_minus ratio },
          Rat.add ratio margin )
    | 1 -> (S_async { max_delay = pick [| q 3 1; q 8 1; q 20 1 |] }, xi_palette ())
    | 2 ->
        ( S_growing
            {
              nclusters = 2 + Random.State.int st 2;
              intra_min = q 1 1;
              intra_max = q 2 1;
              inter_base = pick [| q 3 1; q 5 1 |];
              growth_rate = pick [| q 1 2; q 2 1 |];
            },
          xi_palette () )
    | 3 ->
        ( S_eventually_theta
            {
              gst = pick [| Rat.zero; q 5 1; q 15 1 |];
              chaos_max = pick [| q 10 1; q 40 1 |];
              tau_minus = q 1 1;
              tau_plus = q 2 1;
            },
          xi_palette () )
    | 4 ->
        let victim_sender, victim_dst = victim () in
        ( S_targeted
            {
              tau_minus = q 1 1;
              tau_plus = q 2 1;
              victim_sender;
              victim_dst;
              stretch = pick [| q 5 1; q 12 1; q 25 1 |];
            },
          xi_palette () )
    | _ ->
        let victim_sender, victim_dst = victim () in
        (S_deferring { victim_sender; victim_dst }, xi_palette ())
  in
  let deferring = match sched with S_deferring _ -> true | _ -> false in
  let max_events =
    match workload with
    | W_clock -> (
        if deferring then 70 + Random.State.int st 30
        else
          match sched with
          | S_theta _ ->
              (* Theorems 2-4 and Lemma 4 are checked in full on Θ
                 executions, so scale the budget with ϱ = ⌈4Ξ+1⌉: a
                 clock increment costs ≈ n² events, and Theorem 4 only
                 bites once some process performs ϱ of them. *)
              let rho =
                Rat.ceil_int (Rat.add (Rat.mul (Rat.of_int 4) xi) Rat.one)
              in
              (nprocs * nprocs * (rho + 2)) + Random.State.int st 80
          | _ -> 120 + (12 * nprocs) + Random.State.int st 80)
    | W_lockstep ->
        if deferring then 90 + Random.State.int st 40
        else 300 + Random.State.int st 250
    | W_consensus -> 2500 + (700 * f)
  in
  let plan =
    (* a quarter of the cases carry a message-level fault plan; the
       indices target the early message range every workload posts *)
    if Random.State.int st 4 > 0 then []
    else
      let actions = 1 + Random.State.int st 3 in
      let used = ref [] in
      List.filter_map
        (fun _ ->
          let idx = Random.State.int st 60 in
          if List.mem idx !used then None
          else begin
            used := idx :: !used;
            let a =
              match Random.State.int st 4 with
              | 0 -> Sim.P_drop
              | 1 -> Sim.P_duplicate (q (1 + Random.State.int st 4) 2)
              | 2 -> Sim.P_misdirect (Random.State.int st nprocs)
              | _ -> Sim.P_delay (q (1 + Random.State.int st 10) 2)
            in
            Some (idx, a)
          end)
        (List.init actions Fun.id)
  in
  let case =
    {
      c_seed = 1 + Random.State.int st 0x3FFFFFFF;
      c_nprocs = nprocs;
      c_faults = faults;
      c_xi = xi;
      c_sched = sched;
      c_workload = workload;
      c_max_events = max_events;
      c_plan = plan;
      c_boundary = false;
      c_schedule = [];
    }
  in
  match validate case with
  | Ok c -> c
  | Error e ->
      (* the generator keeps every invariant by construction *)
      invalid_arg (Printf.sprintf "Fuzz.Gen.generate: internal invariant: %s" e)

(** Resilience-boundary generator: cases at exactly [n = 3f] with an
    equivocator, where Theorem 2 precision (clock workload, deferring
    adversary starving one correct process while the equivocator pumps
    the other) and EIG agreement (consensus workload with forged
    per-destination relays) are expected to break.  Used by boundary
    campaigns; {!validate} accepts these cases only with
    [c_boundary = true]. *)
let generate_boundary ~seed =
  let st = Random.State.make [| 0xB0DE; seed |] in
  let pick arr = arr.(Random.State.int st (Array.length arr)) in
  let case =
    if Random.State.bool st then
      (* Thm 2 precision witness: defer the pumped process's ticks to
         the starved one, at the exact admissibility boundary *)
      let victim_sender, victim_dst = (0, 1) in
      {
        c_seed = 1 + Random.State.int st 0x3FFFFFFF;
        c_nprocs = 3;
        c_faults = [| Sim.Correct; Sim.Correct; Byz.fault Byz.Equivocator |];
        c_xi = pick [| q 3 2; q 2 1; q 5 2 |];
        c_sched = S_deferring { victim_sender; victim_dst };
        c_workload = W_clock;
        c_max_events = 90 + Random.State.int st 40;
        c_plan = [];
        c_boundary = true;
        c_schedule = [];
      }
    else
      (* EIG agreement witness: correct inputs forced to (0, 1) — the
         per-destination-parity forgery needs diverging inputs *)
      let raw = 1 + Random.State.int st 0x3FFFFFFF in
      {
        c_seed = (raw land lnot 3) lor 2;
        c_nprocs = 3;
        c_faults = [| Sim.Correct; Sim.Correct; Byz.fault Byz.Equivocator |];
        c_xi = q 5 2;
        c_sched = S_theta { tau_minus = q 1 1; tau_plus = q 2 1 };
        c_workload = W_consensus;
        c_max_events = 500;
        c_plan = [];
        c_boundary = true;
        c_schedule = [];
      }
  in
  match validate case with
  | Ok c -> c
  | Error e ->
      invalid_arg (Printf.sprintf "Fuzz.Gen.generate_boundary: internal invariant: %s" e)

(* ------------------------------------------------------------------ *)
(* Execution *)

(** Result of running a case, tagged by workload (the three workloads
    have different state types). *)
type run =
  | R_clock of (Clock_sync.state, Clock_sync.msg) Sim.result
  | R_lockstep of ((unit, unit) Lockstep.state, unit Lockstep.msg) Sim.result
  | R_consensus of
      ( (Consensus.Eig.state, Consensus.Eig.msg) Lockstep.state,
        Consensus.Eig.msg Lockstep.msg )
      Sim.result
      * int array  (** the per-process input values *)

let graph_of_run = function
  | R_clock r -> r.Sim.graph
  | R_lockstep r -> r.Sim.graph
  | R_consensus (r, _) -> r.Sim.graph

let delivered_of_run = function
  | R_clock r -> r.Sim.delivered
  | R_lockstep r -> r.Sim.delivered
  | R_consensus (r, _) -> r.Sim.delivered

(* A scheduler for the case's spec.  Polymorphic in the payload (all
   palette schedulers ignore it); for the deferring adversary the
   returned scheduler is a placeholder — [run_deferring] ignores it. *)
let scheduler_of_spec ~rng spec =
  match spec with
  | S_theta { tau_minus; tau_plus } -> Sim.theta_scheduler ~rng ~tau_minus ~tau_plus ()
  | S_async { max_delay } -> Sim.async_scheduler ~rng ~max_delay ()
  | S_growing { nclusters; intra_min; intra_max; inter_base; growth_rate } ->
      Sim.growing_scheduler ~rng
        ~cluster_of:(fun p -> p mod nclusters)
        ~intra_min ~intra_max ~inter_base ~growth_rate ()
  | S_eventually_theta { gst; chaos_max; tau_minus; tau_plus } ->
      Sim.eventually_theta_scheduler ~rng ~gst ~chaos_max ~tau_minus ~tau_plus ()
  | S_targeted { tau_minus; tau_plus; victim_sender; victim_dst; stretch } ->
      Sim.targeted_scheduler ~rng ~tau_minus ~tau_plus
        ~victim:(fun ~sender ~dst ~msg_index:_ ->
          sender = victim_sender && dst = victim_dst)
        ~stretched:(fun ~send_time:_ -> stretch)
        ()
  | S_deferring _ -> Sim.constant_scheduler Rat.one

(** Input value of process [p] in a consensus case: a deterministic
    function of the case seed, so it needs no extra serialization. *)
let consensus_input c p = (c.c_seed lsr (p mod 24)) land 1

(** The byzantine strategy of process [p] in a case ({!Byz.Silent} for
    non-byzantine processes; validation guarantees every byzantine name
    parses). *)
let strategy_of c p =
  Option.value (Byz.of_fault c.c_faults.(p)) ~default:Byz.Silent

(* Workload dispatch in CPS: the three workloads have three different
   (state, message) type pairs, so a caller that wants the config
   (rather than just the finished run) gets it through a polymorphic
   handler.  [run_case] and [open_session] share every construction
   detail (byzantine tables, stop conditions, scheduler) through this
   single point. *)
type 'r cfg_handler = {
  h : 's 'm. ('s, 'm) Sim.config -> (('s, 'm) Sim.result -> run) -> 'r;
}

let dispatch (c : case) (handler : 'r cfg_handler) : 'r =
  let n = c.c_nprocs in
  let f = nfaulty c in
  let rng = Random.State.make [| 0xD1CE; c.c_seed |] in
  match c.c_workload with
  | W_clock ->
      let cfg =
        Sim.make_config
          ~byzantine:(fun p -> Byz.clock ~f (strategy_of c p))
          ~plan:c.c_plan ~nprocs:n
          ~algorithm:(Clock_sync.algorithm ~f)
          ~faults:c.c_faults
          ~scheduler:(scheduler_of_spec ~rng c.c_sched)
          ~max_events:c.c_max_events ()
      in
      handler.h cfg (fun r -> R_clock r)
  | W_lockstep ->
      let cfg =
        Sim.make_config
          ~byzantine:(fun p ->
            Byz.lockstep (strategy_of c p) ~f ~xi:c.c_xi
              ~inner:Lockstep.noop_round_algo
              ~forge:(fun ~self:_ ~round:_ ~dst:_ -> ()))
          ~plan:c.c_plan ~nprocs:n
          ~algorithm:(Lockstep.algorithm ~f ~xi:c.c_xi Lockstep.noop_round_algo)
          ~faults:c.c_faults
          ~scheduler:(scheduler_of_spec ~rng c.c_sched)
          ~max_events:c.c_max_events ()
      in
      handler.h cfg (fun r -> R_lockstep r)
  | W_consensus ->
      let inputs = Array.init n (consensus_input c) in
      let algo = Consensus.Eig.algo ~f ~value:(fun p -> inputs.(p)) in
      let correct = correct_procs c in
      let cfg =
        Sim.make_config
          ~byzantine:(fun p ->
            Byz.lockstep (strategy_of c p) ~f ~xi:c.c_xi
              ~inner:(Consensus.Eig.algo ~f ~value:(fun _ -> 0))
              ~forge:(Byz.eig_forge ~nprocs:n))
          ~plan:c.c_plan ~nprocs:n
          ~algorithm:(Lockstep.algorithm ~f ~xi:c.c_xi algo)
          ~faults:c.c_faults
          ~scheduler:(scheduler_of_spec ~rng c.c_sched)
          ~max_events:c.c_max_events
          ~stop_when:(fun states ->
            List.for_all
              (fun p ->
                Consensus.Eig.decision (Lockstep.round_state states.(p)) <> None)
              correct)
          ()
      in
      handler.h cfg (fun r -> R_consensus (r, inputs))

let run_case (c : case) : run =
  (match validate c with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Fuzz.Gen.run_case: " ^ e));
  dispatch c
    {
      h =
        (fun cfg wrap ->
          if c.c_schedule <> [] then
            wrap (Sim.run_scheduled cfg ~choices:(Array.of_list c.c_schedule))
          else
            match c.c_sched with
            | S_deferring { victim_sender; victim_dst } ->
                wrap
                  (Sim.run_deferring cfg ~xi:c.c_xi ~victim:(fun ~sender ~dst ->
                       sender = victim_sender && dst = victim_dst))
            | _ -> wrap (Sim.run cfg));
    }

(* ------------------------------------------------------------------ *)
(* Choice-point sessions over cases (the model checker's entry) *)

(** A case opened as an interactive {!Sim.Session}, with the workload's
    state/message types hidden: the model checker picks deliveries one
    by one and wraps the terminal execution as a {!run} for the oracle
    battery.  [ms_run] packages the execution explored {e so far}; call
    it once, at a maximal point. *)
type mc_session = {
  ms_ready : unit -> Sim.Session.info list;
  ms_iter_ready : (env:int -> dst:int -> posted_at:int -> unit) -> unit;
  ms_deliver : int -> Sim.Session.info;
  ms_finished : unit -> bool;
  ms_delivered : unit -> int;
  ms_envelopes : unit -> int;
  ms_snapshot : unit -> int;
  ms_undo : unit -> unit;
  ms_run : unit -> run;
}

let open_session ?(record = false) (c : case) : mc_session =
  (match validate c with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Fuzz.Gen.open_session: " ^ e));
  dispatch c
    {
      h =
        (fun cfg wrap ->
          let s = Sim.Session.create ~record cfg in
          {
            ms_ready = (fun () -> Sim.Session.ready s);
            ms_iter_ready = (fun f -> Sim.Session.iter_ready s f);
            ms_deliver = (fun k -> Sim.Session.deliver s k);
            ms_finished = (fun () -> Sim.Session.finished s);
            ms_delivered = (fun () -> Sim.Session.delivered s);
            ms_envelopes = (fun () -> Sim.Session.envelopes s);
            ms_snapshot = (fun () -> Sim.Session.snapshot s);
            ms_undo = (fun () -> Sim.Session.undo s);
            ms_run =
              (fun () ->
                wrap (Sim.Session.result ~allow_unwoken:true ~who:"Fuzz.Gen.open_session" s));
          });
    }
