(** Greedy counterexample shrinking.

    Given a case failing some oracle, repeatedly try "smaller" variants
    — fewer events, fewer processes, milder faults, tamer schedulers —
    keeping a variant iff the {e same} oracle still fails on it, until
    no candidate fails (a local minimum) or the evaluation budget runs
    out.  All candidates go through {!Gen.validate}, so shrinking never
    leaves the space of well-formed cases. *)

let dedup_cases l =
  let rec go acc = function
    | [] -> List.rev acc
    | c :: rest -> if List.mem c acc then go acc rest else go (c :: acc) rest
  in
  go [] l

(* Candidate list, most aggressive reductions first. *)
let candidates (c : Gen.case) : Gen.case list =
  let ev = c.Gen.c_max_events in
  let n = c.Gen.c_nprocs in
  let event_cands =
    List.filter_map
      (fun e -> if e >= max n 2 && e < ev then Some { c with Gen.c_max_events = e } else None)
      [ ev / 4; ev / 2; 3 * ev / 4; ev - 1 ]
  in
  let drop_proc =
    if n <= 2 then []
    else
      let n' = n - 1 in
      let fix p = if p >= n' then 0 else p in
      let fix_pair vs vd =
        let vs = fix vs and vd = fix vd in
        if vs = vd then (vs, (vs + 1) mod n') else (vs, vd)
      in
      let sched =
        match c.Gen.c_sched with
        | Gen.S_targeted t ->
            let victim_sender, victim_dst = fix_pair t.victim_sender t.victim_dst in
            Gen.S_targeted { t with victim_sender; victim_dst }
        | Gen.S_deferring { victim_sender; victim_dst } ->
            let victim_sender, victim_dst = fix_pair victim_sender victim_dst in
            Gen.S_deferring { victim_sender; victim_dst }
        | s -> s
      in
      [
        {
          c with
          Gen.c_nprocs = n';
          c_faults = Array.sub c.Gen.c_faults 0 n';
          c_sched = sched;
        };
      ]
  in
  let weaken_faults =
    match
      (* the last faulty process, mirroring the generator's layout *)
      Array.to_list c.Gen.c_faults
      |> List.mapi (fun i f -> (i, f))
      |> List.filter (fun (_, f) -> f <> Sim.Correct)
      |> List.rev
    with
    | [] -> []
    | (i, f) :: _ ->
        let with_fault g =
          let faults = Array.copy c.Gen.c_faults in
          faults.(i) <- g;
          { c with Gen.c_faults = faults }
        in
        (match f with
        | Sim.Byzantine _ -> [ with_fault Sim.Correct; with_fault (Sim.Crash 2) ]
        | Sim.Crash k when k > 1 -> [ with_fault Sim.Correct; with_fault (Sim.Crash (k / 2)) ]
        | _ -> [ with_fault Sim.Correct ])
  in
  let shrink_plan =
    match c.Gen.c_plan with
    | [] -> []
    | plan ->
        let half =
          List.filteri (fun i _ -> 2 * i < List.length plan) plan
        in
        { c with Gen.c_plan = [] }
        :: (if List.length half < List.length plan then [ { c with Gen.c_plan = half } ] else [])
  in
  let q = Rat.of_ints in
  let tame_sched =
    match c.Gen.c_sched with
    | Gen.S_theta { tau_minus; tau_plus } ->
        if Rat.equal tau_minus tau_plus then []
        else [ { c with Gen.c_sched = Gen.S_theta { tau_minus; tau_plus = tau_minus } } ]
    | Gen.S_async _ ->
        [ { c with Gen.c_sched = Gen.S_theta { tau_minus = q 1 1; tau_plus = q 2 1 } } ]
    | Gen.S_growing { intra_min; intra_max; _ } ->
        [ { c with Gen.c_sched = Gen.S_theta { tau_minus = intra_min; tau_plus = intra_max } } ]
    | Gen.S_eventually_theta { tau_minus; tau_plus; _ } ->
        [ { c with Gen.c_sched = Gen.S_theta { tau_minus; tau_plus } } ]
    | Gen.S_targeted { tau_minus; tau_plus; victim_sender; victim_dst; stretch } ->
        { c with Gen.c_sched = Gen.S_theta { tau_minus; tau_plus } }
        ::
        (if Rat.compare stretch (Rat.mul_int tau_plus 2) > 0 then
           [
             {
               c with
               Gen.c_sched =
                 Gen.S_targeted
                   {
                     tau_minus;
                     tau_plus;
                     victim_sender;
                     victim_dst;
                     stretch = Rat.div stretch Rat.two;
                   };
             };
           ]
         else [])
    | Gen.S_deferring _ ->
        [ { c with Gen.c_sched = Gen.S_theta { tau_minus = q 1 1; tau_plus = q 2 1 } } ]
  in
  dedup_cases
    (List.filter
       (fun c' -> c' <> c && Result.is_ok (Gen.validate c'))
       (event_cands @ shrink_plan @ weaken_faults @ drop_proc @ tame_sched))

type result = {
  shrunk : Gen.case;
  steps : int;  (** accepted reductions *)
  evaluations : int;  (** candidate runs spent *)
}

(** [shrink ~oracles ~oracle c] greedily minimizes [c] while oracle
    [oracle] keeps failing.  At most [max_evals] candidate executions
    (default 80) are spent.

    When the case carries an explicit schedule, the prefix-preserving
    candidates (smaller event budgets) are evaluated through one
    recording session ({!Sched_walk}): undo to the divergence point
    and re-deliver the suffix, instead of re-simulating from scratch.
    Verdicts are identical; [session_reuse:false] forces the
    stateless path (the qcheck equivalence property runs both). *)
let shrink ?(max_evals = 80) ?(session_reuse = true) ~oracles ~oracle
    (c0 : Gen.case) : result =
  let walker =
    if session_reuse && c0.Gen.c_schedule <> [] then Some (Sched_walk.create c0)
    else None
  in
  let evals = ref 0 in
  let still_fails c =
    incr evals;
    if Obs.on () then Obs.instant "fuzz" "shrink-eval" [ ("n", Obs.I !evals) ];
    match
      match walker with
      | Some w when Sched_walk.compatible w c -> Sched_walk.evaluate w ~oracles c
      | _ -> Oracle.evaluate oracles c
    with
    | results ->
        List.exists
          (fun (name, o) ->
            name = oracle && match o with Oracle.Fail _ -> true | _ -> false)
          results
    | exception _ -> false
  in
  let rec go c steps =
    if !evals >= max_evals then { shrunk = c; steps; evaluations = !evals }
    else
      match
        List.find_opt
          (fun c' -> !evals < max_evals && still_fails c')
          (candidates c)
      with
      | Some c' ->
          if Obs.on () then
            Obs.instant "fuzz" "shrink-step" [ ("steps", Obs.I (steps + 1)) ];
          go c' (steps + 1)
      | None -> { shrunk = c; steps; evaluations = !evals }
  in
  go c0 0
