(** Theorem oracles: the paper's quantitative claims as executable
    checks over a finished fuzz run.

    Each oracle encodes one theorem as "hypothesis ⇒ bound": when the
    hypothesis does not hold for the case at hand (wrong workload, or
    the execution is not admissible for the protocol's Ξ), the oracle
    {e skips} rather than passes, so campaign reports distinguish
    vacuous from real coverage.  For theorems quantified over every
    admissible Ξ (precision, progress, delay assignment), the oracle
    instantiates Ξ with {!Core.Abc.admissible_xi} — the case's Ξ when
    the execution is admissible for it, else a witness just above the
    exact admissibility threshold — so the bounds are checked at their
    tightest on {e every} execution, whatever scheduler produced it. *)

open Core
open Execgraph

type outcome = Pass | Skip of string | Fail of string

(** Evaluation context, shared by all oracles so per-case analyses
    (notably the parametric-search threshold behind [xi_eff]) run at
    most once. *)
type ctx = {
  case : Gen.case;
  run : Gen.run;
  graph : Graph.t;  (** faithful execution graph *)
  adm : bool Lazy.t;  (** graph admissible for the case's own Ξ; several
                          oracles gate on this, so it is decided once *)
  xi_eff : Rat.t Lazy.t;  (** a Ξ the execution is admissible for *)
}

type t = {
  name : string;
  theorem : string;  (** which claim of the paper this checks *)
  check : ctx -> outcome;
}

let make_ctx case run =
  let graph = Gen.graph_of_run run in
  let adm = lazy (Abc_check.is_admissible graph ~xi:case.Gen.c_xi) in
  {
    case;
    run;
    graph;
    adm;
    xi_eff =
      lazy
        (if Lazy.force adm then case.Gen.c_xi
         else Abc.admissible_xi graph ~fallback:case.Gen.c_xi);
  }

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt

(* Fault plans tamper with individual messages, which voids different
   hypotheses for different oracles:
   - drop / misdirect break reliable delivery between correct
     processes, the hypothesis of every liveness-flavoured theorem
     (progress, causal cone, lock-step, consensus);
   - delay overrides and the duplicates' extra copies can exceed τ+,
     voiding the Θ certification of Theorem 6 (the delivered graph's
     own admissibility, which [xi_eff] measures, is unaffected). *)
let plan_preserves_delivery plan =
  List.for_all
    (fun (_, a) ->
      match a with Sim.P_drop | Sim.P_misdirect _ -> false | _ -> true)
    plan

let plan_theta_safe plan =
  List.for_all
    (fun (_, a) ->
      match a with Sim.P_delay _ | Sim.P_duplicate _ -> false | _ -> true)
    plan

(* Whether the scheduler family guarantees that the COMPLETE execution
   (not just the simulated prefix) is admissible for the case's Ξ:
   Theta by Theorem 6 (the generator enforces Ξ > τ+/τ−), the
   deferring adversary by construction.  Theorems whose hypothesis is
   admissibility of the whole execution (lock-step, consensus on top
   of it) must not be checked on other families: a truncated run can
   be admissible while a message still in flight — e.g. the targeted
   scheduler's stretched link — would close an inadmissible cycle
   right after the budget ran out.  A fault plan that rewrites delays
   voids the Θ certificate; the deferring adversary's certificate
   reasons about the exact message set, so any plan voids it. *)
let complete_execution_admissible case =
  match case.Gen.c_sched with
  | Gen.S_theta _ -> plan_theta_safe case.Gen.c_plan
  | Gen.S_deferring _ -> case.Gen.c_plan = []
  | _ -> false

(* Gate for the positive theorem oracles (their statements quantify
   over n >= 3f + 1): at the resilience boundary the bounds are
   expected to break, and witnessing that is the job of the
   [boundary-*] oracles below. *)
let positive ctx k =
  if ctx.case.Gen.c_boundary then Skip "resilience-boundary case (n = 3f)" else k ()

(* Messages between correct processes that were delivered and
   processed: the deliveries that actually drive the protocols.  Gates
   based on [delivered] alone are unsound with a Byzantine flooder in
   the system — it burns event budget without contributing progress. *)
let faithful_deliveries (r : (_, _) Sim.result) =
  Array.fold_left
    (fun n (te : _ Sim.trace_entry) ->
      if te.Sim.tr_sender >= 0 && te.Sim.tr_processed && te.Sim.tr_faithful_id <> None
      then n + 1
      else n)
    0 r.Sim.trace

(* A prefix of the faithful graph: the first [k] events (event ids are
   dense in delivery order) with the messages among them.  Prefixes of
   admissible executions are admissible — removing events only removes
   cycles — so they are exactly the "admissible prefixes" Theorem 7
   quantifies over. *)
let prefix_graph g k =
  let g' = Graph.create ~nprocs:(Graph.nprocs g) in
  for id = 0 to k - 1 do
    let ev = Graph.event g id in
    ignore (Graph.add_event g' ~proc:ev.Event.proc)
  done;
  List.iter
    (fun (e : Digraph.edge) ->
      if Graph.is_message g e && e.src < k && e.dst < k then
        ignore (Graph.add_message g' ~src:e.src ~dst:e.dst))
    (Digraph.edges (Graph.digraph g));
  g'

(* ------------------------------------------------------------------ *)
(* Admissibility of scheduler-guaranteed executions *)

let o_theta_admissible =
  {
    name = "theta-admissible";
    theorem = "Thm 6: every Theta(tau-,tau+) execution is ABC-admissible for Xi > tau+/tau-";
    check =
      (fun ctx ->
        match ctx.case.Gen.c_sched with
        | Gen.S_theta _ ->
            if not (plan_theta_safe ctx.case.Gen.c_plan) then
              Skip "fault plan overrides scheduler delays"
            else if Lazy.force ctx.adm then Pass
            else
              failf "Theta execution not admissible for Xi = %s"
                (Rat.to_string ctx.case.Gen.c_xi)
        | _ -> Skip "non-Theta scheduler");
  }

let o_defer_admissible =
  {
    name = "defer-admissible";
    theorem = "Def 4: the deferring adversary stays exactly inside admissibility";
    check =
      (fun ctx ->
        match ctx.case.Gen.c_sched with
        | Gen.S_deferring _ ->
            if ctx.case.Gen.c_plan <> [] then
              Skip "fault plan tampers with the adversary's message set"
            else if Lazy.force ctx.adm then Pass
            else
              failf "deferring-adversary execution violates its own Xi = %s"
                (Rat.to_string ctx.case.Gen.c_xi)
        | _ -> Skip "not the deferring adversary");
  }

(* ------------------------------------------------------------------ *)
(* Clock synchronization (Algorithm 1): Theorems 1-4 and Lemma 4 *)

let clock_input ctx r =
  { Clock_sync.result = r; correct = Gen.correct_procs ctx.case; xi = Lazy.force ctx.xi_eff }

(* Hypothesis gate for Algorithm 1's quantitative theorems (2-4 and
   Lemma 4), which quantify over admissible {e complete} executions.
   Checking them is sound when the scheduler family bounds the
   complete execution, or when the run quiesced — no message in
   flight, so the simulated prefix IS the complete execution and
   [xi_eff] certifies it.  Otherwise a receipt past the event budget
   (a stretched targeted link, say) can break the theorem's bound
   while the truncated graph still looks admissible. *)
let clock_hypothesis ctx (r : (_, _) Sim.result) k =
  positive ctx (fun () ->
      if not (plan_preserves_delivery ctx.case.Gen.c_plan) then
        Skip "fault plan drops or misdirects messages"
      else if complete_execution_admissible ctx.case || r.Sim.undelivered = 0 then
        k ()
      else Skip "messages in flight: complete execution not certified admissible")

let o_clock_progress =
  {
    name = "clock-progress";
    theorem = "Thm 1: correct clocks advance (>= 1 after the initial exchange)";
    check =
      (fun ctx ->
        match ctx.run with
        | Gen.R_clock _ when ctx.case.Gen.c_boundary ->
            Skip "resilience-boundary case (n = 3f)"
        | Gen.R_clock _ when not (plan_preserves_delivery ctx.case.Gen.c_plan) ->
            Skip "fault plan drops or misdirects messages"
        | Gen.R_clock r ->
            let n = ctx.case.Gen.c_nprocs in
            let woke p =
              Array.exists
                (fun (te : _ Sim.trace_entry) ->
                  te.Sim.tr_proc = p && te.Sim.tr_sender = -1 && te.Sim.tr_processed)
                r.Sim.trace
            in
            if faithful_deliveries r < n * (n + 3) then
              Skip "too few correct-to-correct deliveries for the initial exchange"
            else if not (List.for_all woke (Gen.correct_procs ctx.case)) then
              (* an adversarial (model-checked) schedule can starve a
                 wake-up within the budget; Thm 1 presumes every correct
                 process eventually takes its first step *)
              Skip "a correct process's wake-up is still in flight"
            else
              let lagging =
                List.filter
                  (fun p -> Clock_sync.clock r.Sim.final_states.(p) < 1)
                  (Gen.correct_procs ctx.case)
              in
              if lagging = [] then Pass
              else failf "correct processes stuck at clock 0: %s"
                  (String.concat "," (List.map string_of_int lagging))
        | _ -> Skip "clock workload only");
  }

let o_precision_cuts =
  {
    name = "precision-cuts";
    theorem = "Thm 2: skew <= 2Xi between correct processes on consistent cuts";
    check =
      (fun ctx ->
        match ctx.run with
        | Gen.R_clock r ->
            clock_hypothesis ctx r (fun () ->
                let input = clock_input ctx r in
                let bound = Rat.floor_int (Rat.mul Rat.two input.Clock_sync.xi) in
                let skew = Clock_sync.max_skew_on_cuts input in
                if skew <= bound then Pass
                else failf "skew %d > 2Xi = %d (Xi = %s)" skew bound
                    (Rat.to_string input.Clock_sync.xi))
        | _ -> Skip "clock workload only");
  }

let o_precision_realtime =
  {
    name = "precision-rt";
    theorem = "Thm 3: skew <= 2Xi between correct processes on real-time cuts";
    check =
      (fun ctx ->
        match ctx.run with
        | Gen.R_clock r ->
            clock_hypothesis ctx r (fun () ->
                let input = clock_input ctx r in
                let bound = Rat.floor_int (Rat.mul Rat.two input.Clock_sync.xi) in
                let skew = Clock_sync.max_skew_realtime input in
                if skew <= bound then Pass
                else failf "real-time skew %d > 2Xi = %d (Xi = %s)" skew bound
                    (Rat.to_string input.Clock_sync.xi))
        | _ -> Skip "clock workload only");
  }

let o_causal_cone =
  {
    name = "causal-cone";
    theorem = "Lemma 4: ticks older than C - 2Xi were received from every correct process";
    check =
      (fun ctx ->
        match ctx.run with
        | Gen.R_clock r ->
            clock_hypothesis ctx r (fun () ->
                let checked, violations =
                  Clock_sync.causal_cone_violations (clock_input ctx r)
                in
                match violations with
                | [] -> if checked = 0 then Skip "no checkable (event, tick) pair" else Pass
                | (ev, l, sender) :: _ ->
                    failf "%d violations, first: event %d misses (tick %d) from p%d"
                      (List.length violations) ev l sender)
        | _ -> Skip "clock workload only");
  }

let o_bounded_progress =
  {
    name = "bounded-progress";
    theorem = "Thm 4: within rho = 4Xi+1 distinguished events, every correct process acts";
    check =
      (fun ctx ->
        match ctx.run with
        | Gen.R_clock r ->
            clock_hypothesis ctx r (fun () ->
                let checked, violations =
                  Clock_sync.bounded_progress_violations (clock_input ctx r)
                in
                match violations with
                | [] -> if checked = 0 then Skip "no full rho-interval in the run" else Pass
                | (p, lo, hi, q) :: _ ->
                    failf "%d violations, first: p%d ran events %d..%d with no step of p%d"
                      (List.length violations) p lo hi q)
        | _ -> Skip "clock workload only");
  }

(* ------------------------------------------------------------------ *)
(* Lock-step rounds (Algorithm 2): Theorem 5 *)

let o_lockstep =
  {
    name = "lockstep";
    theorem = "Thm 5: rounds of ceil(2Xi) phases are lock-step on admissible executions";
    check =
      (fun ctx ->
        match ctx.run with
        | Gen.R_lockstep _ when ctx.case.Gen.c_boundary ->
            Skip "resilience-boundary case (n = 3f)"
        | Gen.R_lockstep _ when not (plan_preserves_delivery ctx.case.Gen.c_plan) ->
            Skip "fault plan drops or misdirects messages"
        | Gen.R_lockstep r -> (
            if not (complete_execution_admissible ctx.case) then
              Skip "scheduler does not bound the complete execution"
            else if not (Lazy.force ctx.adm) then
              Skip "execution not admissible for the protocol's Xi"
            else
              let correct = Gen.correct_procs ctx.case in
              let checked, violations = Lockstep.lockstep_violations r ~correct in
              match violations with
              | [] -> if checked = 0 then Skip "no round started" else Pass
              | (p, rho, missing) :: _ ->
                  failf "%d violations, first: p%d started round %d without p%d's message"
                    (List.length violations) p rho missing)
        | _ -> Skip "lockstep workload only");
  }

(* ------------------------------------------------------------------ *)
(* Consensus over lock-step rounds: agreement and validity *)

let o_consensus =
  {
    name = "eig-consensus";
    theorem = "Sect 3/6: EIG over Algorithm 2 solves Byzantine consensus";
    check =
      (fun ctx ->
        match ctx.run with
        | Gen.R_consensus _ when ctx.case.Gen.c_boundary ->
            Skip "resilience-boundary case (n = 3f)"
        | Gen.R_consensus _ when not (plan_preserves_delivery ctx.case.Gen.c_plan) ->
            Skip "fault plan drops or misdirects messages"
        | Gen.R_consensus (r, inputs) ->
            if not (complete_execution_admissible ctx.case) then
              Skip "scheduler does not bound the complete execution"
            else if not (Lazy.force ctx.adm) then
              Skip "execution not admissible for the protocol's Xi"
            else
              let correct = Gen.correct_procs ctx.case in
              let decisions =
                List.map
                  (fun p ->
                    (p, Consensus.Eig.decision (Lockstep.round_state r.Sim.final_states.(p))))
                  correct
              in
              if List.exists (fun (_, d) -> d = None) decisions then
                if r.Sim.delivered >= ctx.case.Gen.c_max_events then
                  Skip "event budget exhausted before decision"
                else failf "run quiesced with undecided correct processes"
              else if
                Consensus.check_agreement decisions
                  ~inputs:(List.map (fun p -> inputs.(p)) correct)
              then Pass
              else
                failf "agreement/validity broken: decisions %s on inputs %s"
                  (String.concat ","
                     (List.map
                        (fun (_, d) ->
                          match d with Some v -> string_of_int v | None -> "-")
                        decisions))
                  (String.concat ","
                     (List.map (fun p -> string_of_int inputs.(p)) correct))
        | _ -> Skip "eig workload only");
  }

(* ------------------------------------------------------------------ *)
(* Normalized delay assignments: Theorem 7 *)

let delay_assignment_at graph ~xi ~what =
  match Delay_assignment.solve_fast graph ~xi with
  | None ->
      failf "no delay assignment on %s despite admissibility for Xi = %s" what
        (Rat.to_string xi)
  | Some a ->
      if Delay_assignment.verify graph ~xi a then Pass
      else
        failf "assignment on %s violates 1 < tau(e) < %s or local monotonicity" what
          (Rat.to_string xi)

let o_delay_assignment =
  {
    name = "delay-assignment";
    theorem = "Thm 7: every admissible prefix has delays with 1 < tau(e) < Xi";
    check =
      (fun ctx ->
        let xi = Lazy.force ctx.xi_eff in
        match delay_assignment_at ctx.graph ~xi ~what:"the full graph" with
        | Pass ->
            let k = Graph.event_count ctx.graph / 2 in
            if k < 2 then Pass
            else delay_assignment_at (prefix_graph ctx.graph k) ~xi ~what:"the half prefix"
        | other -> other);
  }

(* ------------------------------------------------------------------ *)
(* Resilience-boundary oracles: the paper's bounds are TIGHT at
   n = 3f, and these witness it.  The polarity is inverted on purpose:
   a witnessed violation of the (here inapplicable) n >= 3f + 1
   theorem is reported as [Fail], so the whole failure machinery —
   shrinking, repro lines, golden replays — works on witnesses
   unchanged, and a boundary campaign that finds {e no} witness shows
   up loudly in the report. *)

let o_boundary_precision =
  {
    name = "boundary-precision";
    theorem =
      "Thm 2 tightness: at n = 3f an equivocator can push skew beyond 2Xi";
    check =
      (fun ctx ->
        if not ctx.case.Gen.c_boundary then Skip "resilience-boundary cases only"
        else
          match ctx.run with
          | Gen.R_clock r ->
              let input =
                {
                  Clock_sync.result = r;
                  correct = Gen.correct_procs ctx.case;
                  xi = ctx.case.Gen.c_xi;
                }
              in
              let bound = Rat.floor_int (Rat.mul Rat.two ctx.case.Gen.c_xi) in
              let skew = Clock_sync.max_skew_on_cuts input in
              if skew > bound then
                failf "WITNESS: skew %d > 2Xi = %d at n = 3f (Xi = %s)" skew bound
                  (Rat.to_string ctx.case.Gen.c_xi)
              else Pass
          | _ -> Skip "clock boundary cases only");
  }

let o_boundary_agreement =
  {
    name = "boundary-agreement";
    theorem = "EIG tightness: at n = 3f an equivocator can break agreement";
    check =
      (fun ctx ->
        if not ctx.case.Gen.c_boundary then Skip "resilience-boundary cases only"
        else
          match ctx.run with
          | Gen.R_consensus (r, _) -> (
              let decisions =
                List.filter_map
                  (fun p ->
                    match
                      Consensus.Eig.decision (Lockstep.round_state r.Sim.final_states.(p))
                    with
                    | Some v -> Some (p, v)
                    | None -> None)
                  (Gen.correct_procs ctx.case)
              in
              match decisions with
              | (p, v) :: rest -> (
                  match List.find_opt (fun (_, v') -> v' <> v) rest with
                  | Some (q, v') ->
                      failf "WITNESS: p%d decided %d but p%d decided %d at n = 3f" p v q v'
                  | None -> Pass)
              | [] -> Pass)
          | _ -> Skip "eig boundary cases only");
  }

(* ------------------------------------------------------------------ *)

let registry =
  [
    o_theta_admissible;
    o_defer_admissible;
    o_clock_progress;
    o_precision_cuts;
    o_precision_realtime;
    o_causal_cone;
    o_bounded_progress;
    o_lockstep;
    o_consensus;
    o_delay_assignment;
    o_boundary_precision;
    o_boundary_agreement;
  ]

(** Apply every oracle to an already-finished run (the model checker
    evaluates executions it produced itself, one per equivalence
    class).  An oracle that raises surfaces as a ["no-crash"]-style
    failure of that oracle rather than escaping the caller. *)
let evaluate_run oracles case run =
  let ctx = make_ctx case run in
  ("no-crash", Pass)
  :: List.map
       (fun o ->
         let outcome = try o.check ctx with e -> Fail (Printexc.to_string e) in
         (o.name, outcome))
       oracles

(** Run the case once and apply every oracle.  A crash anywhere in the
    simulation or an oracle surfaces as a failure of the pseudo-oracle
    ["no-crash"] rather than escaping the campaign loop. *)
let evaluate oracles case =
  match Gen.run_case case with
  | exception e -> [ ("no-crash", Fail (Printexc.to_string e)) ]
  | run -> evaluate_run oracles case run

let oracle_names oracles = "no-crash" :: List.map (fun o -> o.name) oracles

(** Resolve a comma-separated list of oracle names against the
    registry, preserving registry order.  ["no-crash"] is accepted (it
    is always evaluated) but selects no registry oracle.  Unknown names
    are an error listing the valid ones — silently running zero oracles
    is how a typo turns a red campaign green. *)
let select spec =
  let names =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if names = [] then Error "empty oracle selection"
  else
    let known n = n = "no-crash" || List.exists (fun o -> o.name = n) registry in
    match List.filter (fun n -> not (known n)) names with
    | [] -> Ok (List.filter (fun o -> List.mem o.name names) registry)
    | unknown ->
        Error
          (Printf.sprintf "unknown oracle%s: %s; valid names: %s"
             (if List.length unknown > 1 then "s" else "")
             (String.concat ", " unknown)
             (String.concat ", " (oracle_names registry)))

let failures results =
  List.filter_map
    (fun (name, o) -> match o with Fail d -> Some (name, d) | _ -> None)
    results
