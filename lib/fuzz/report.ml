(** Campaign reports.  Rendering is a pure function of the campaign
    outcome, so two runs with the same seed and case count produce
    byte-identical reports — the determinism contract `abc fuzz --seed
    N` is tested against. *)

let bprintf = Printf.bprintf

let render_case_block buf indent case =
  bprintf buf "%scase:  %s\n" indent (Replay.to_string case);
  bprintf buf "%srepro: %s\n" indent (Replay.repro_command case)

let render (o : Campaign.outcome) =
  let buf = Buffer.create 1024 in
  bprintf buf "fuzz campaign: seed=%d cases=%d" o.Campaign.cp_seed o.Campaign.cp_cases_run;
  (* the marker appears only on boundary campaigns, so pre-nemesis
     reports are byte-identical *)
  if o.Campaign.cp_boundary then bprintf buf " boundary=n=3f";
  if o.Campaign.cp_cases_run <> o.Campaign.cp_cases_requested then
    bprintf buf " (requested %d, stopped by time budget)" o.Campaign.cp_cases_requested;
  bprintf buf "\n";
  let counts label l =
    bprintf buf "  %-10s %s\n" label
      (String.concat " "
         (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) l))
  in
  counts "schedulers" o.Campaign.cp_families;
  counts "workloads" o.Campaign.cp_workloads;
  bprintf buf "  %-18s %7s %6s %6s %6s\n" "oracle" "applied" "pass" "skip" "fail";
  List.iter
    (fun (name, s) ->
      let open Campaign in
      bprintf buf "  %-18s %7d %6d %6d %6d\n" name
        (s.os_pass + s.os_skip + s.os_fail)
        s.os_pass s.os_skip s.os_fail)
    o.Campaign.cp_stats;
  (match o.Campaign.cp_failures with
  | [] -> bprintf buf "violations: 0\n"
  | fs ->
      bprintf buf "violations: %d\n" (List.length fs);
      List.iteri
        (fun i f ->
          bprintf buf "[%d] oracle %s: %s\n" (i + 1) f.Campaign.fl_oracle
            f.Campaign.fl_detail;
          render_case_block buf "    " f.Campaign.fl_case;
          match f.Campaign.fl_shrunk with
          | None -> ()
          | Some s ->
              bprintf buf "    shrunk (%d steps, %d candidate runs):\n" s.Shrink.steps
                s.Shrink.evaluations;
              render_case_block buf "    " s.Shrink.shrunk)
        fs);
  Buffer.contents buf

(** The campaign's execution cost: wall time, per-case aggregates,
    allocation.  Nondeterministic by nature — kept out of {!render} so
    that reports stay byte-identical across runs and [jobs] values;
    callers print this separately (the CLI sends it to stderr). *)
let render_cost (o : Campaign.outcome) =
  let c = o.Campaign.cp_cost in
  let n = Array.length c.Campaign.ct_case_wall in
  let buf = Buffer.create 256 in
  bprintf buf "cost: jobs=%d wall=%.3fs\n" c.Campaign.ct_jobs c.Campaign.ct_wall;
  if n > 0 then begin
    let total = Array.fold_left ( +. ) 0.0 c.Campaign.ct_case_wall in
    let slowest = ref 0 in
    Array.iteri
      (fun i w -> if w > c.Campaign.ct_case_wall.(!slowest) then slowest := i)
      c.Campaign.ct_case_wall;
    bprintf buf
      "  cases: wall total=%.3fs mean=%.1fms max=%.1fms (case %d)\n" total
      (1000.0 *. total /. float_of_int n)
      (1000.0 *. c.Campaign.ct_case_wall.(!slowest))
      !slowest;
    bprintf buf "  alloc: %.1f Mwords minor\n"
      (Array.fold_left ( +. ) 0.0 c.Campaign.ct_case_alloc /. 1e6)
  end;
  Buffer.contents buf

(** One line per oracle outcome of a replayed case. *)
let render_outcomes results =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, o) ->
      match o with
      | Oracle.Pass -> bprintf buf "  %-18s pass\n" name
      | Oracle.Skip why -> bprintf buf "  %-18s skip (%s)\n" name why
      | Oracle.Fail why -> bprintf buf "  %-18s FAIL: %s\n" name why)
    results;
  Buffer.contents buf
