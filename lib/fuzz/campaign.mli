(** Campaign driver: generate, run, check, shrink, accumulate — on a
    {!Pool} of [jobs] domains.

    Deterministic in [(seed, cases, oracles)] {e regardless of
    [jobs]}: per-case seeds are mixed splitmix64-style from
    [(seed, case_index)] rather than drawn from a shared stream, and
    per-worker results are merged back in case-index order.  The only
    nondeterministic field of an outcome is {!cost}, which
    {!Report.render} excludes.  A wall-time budget cuts a smoke run
    short (and forces serial evaluation); only [cases_run] differs
    then. *)

type failure = {
  fl_oracle : string;
  fl_detail : string;
  fl_case : Gen.case;
  fl_shrunk : Shrink.result option;  (** [None] when shrinking is off *)
}

type oracle_stat = { os_pass : int; os_skip : int; os_fail : int }

(** Execution cost of the campaign.  Nondeterministic — never rendered
    into the byte-stable report ({!Report.render}); see
    {!Report.render_cost}. *)
type cost = {
  ct_jobs : int;  (** workers the campaign ran on *)
  ct_wall : float;  (** whole-campaign wall-clock seconds *)
  ct_case_wall : float array;  (** per-case wall seconds, index order *)
  ct_case_alloc : float array;  (** per-case minor-heap words, index order *)
}

type outcome = {
  cp_seed : int;
  cp_cases_requested : int;
  cp_cases_run : int;  (** < requested only under a time budget *)
  cp_boundary : bool;  (** resilience-boundary campaign ([n = 3f] cases) *)
  cp_families : (string * int) list;  (** scheduler family -> cases *)
  cp_workloads : (string * int) list;
  cp_stats : (string * oracle_stat) list;  (** registry order *)
  cp_failures : failure list;
  cp_cost : cost;
}

val case_seed : seed:int -> int -> int
(** The per-case seed: a splitmix64 finalizer applied to the base seed
    offset by [(index + 1)] golden-gamma increments.  A pure function
    of [(seed, index)], so cases can be generated and evaluated in any
    order on any worker. *)

(** Everything one case contributes to the outcome: the generated
    case, every oracle's verdict, and the (possibly shrunk) failures.
    Plain data — a distributed runner marshals these across a process
    boundary and merges them with {!merge_evals} exactly as the
    in-process pool path does. *)
type case_eval = {
  ce_case : Gen.case;
  ce_results : (string * Oracle.outcome) list;
  ce_failures : failure list;
}

val eval_case :
  oracles:Oracle.t list ->
  shrink:bool ->
  boundary:bool ->
  seed:int ->
  int ->
  case_eval
(** Evaluate case [i] of the campaign [(seed, …)]: generate it from
    {!case_seed}, run the oracles, shrink any failures.  A pure
    function of its arguments (events are emitted under Obs scope [i],
    so trace digests stay placement-invariant).  This is the unit of
    work a remote shard executes. *)

val merge_evals :
  oracles:Oracle.t list ->
  seed:int ->
  cases:int ->
  boundary:bool ->
  cost:cost ->
  case_eval array ->
  outcome
(** Fold per-case evaluations — which must be in case-index order —
    into an {!outcome}.  [run] is [eval_case] + [merge_evals]; a
    sharded campaign that evaluates the same index range and merges in
    the same order produces the same outcome modulo [cost]. *)

val run :
  ?oracles:Oracle.t list ->
  ?shrink:bool ->
  ?boundary:bool ->
  ?time_budget:float ->
  ?cases:int ->
  ?jobs:int ->
  seed:int ->
  unit ->
  outcome
(** Run up to [cases] (default 100) generated cases on [jobs] workers
    (default {!Pool.recommended_jobs}); stop early if the optional
    [time_budget] (seconds of CPU time) is exceeded — a budget forces
    [jobs:1].  Failures are shrunk unless [shrink:false].  [jobs:1]
    evaluates the cases in exactly the historical serial order.
    [boundary:true] draws every case from {!Gen.generate_boundary}
    instead of {!Gen.generate}: [n = 3f] with an equivocator, where the
    [boundary-*] oracles are expected to witness violations (reported
    as failures). *)
