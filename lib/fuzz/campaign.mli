(** Campaign driver: generate, run, check, shrink, accumulate.
    Deterministic in [(seed, cases, oracles)] unless a wall-time budget
    cuts a smoke run short. *)

type failure = {
  fl_oracle : string;
  fl_detail : string;
  fl_case : Gen.case;
  fl_shrunk : Shrink.result option;  (** [None] when shrinking is off *)
}

type oracle_stat = { os_pass : int; os_skip : int; os_fail : int }

type outcome = {
  cp_seed : int;
  cp_cases_requested : int;
  cp_cases_run : int;  (** < requested only under a time budget *)
  cp_families : (string * int) list;  (** scheduler family -> cases *)
  cp_workloads : (string * int) list;
  cp_stats : (string * oracle_stat) list;  (** registry order *)
  cp_failures : failure list;
}

val case_seed : seed:int -> int -> int
(** The per-case seed mixed from the base seed and the case index. *)

val run :
  ?oracles:Oracle.t list ->
  ?shrink:bool ->
  ?time_budget:float ->
  ?cases:int ->
  seed:int ->
  unit ->
  outcome
(** Run up to [cases] (default 100) generated cases; stop early if the
    optional [time_budget] (seconds of CPU time) is exceeded.  Failures
    are shrunk unless [shrink:false]. *)
