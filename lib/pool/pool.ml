(** Domain-based work-stealing worker pool.  See the interface for the
    scheduling and failure contract; the implementation notes below
    cover what the types alone do not say.

    Each worker owns a {e bounded} deque of chunks: capacity is fixed
    at submission time (all chunks are dealt up-front and tasks never
    submit tasks), so the deque is a plain array with two cursors
    under a per-deque mutex.  The owner takes from the front — which
    makes the [jobs:1] schedule exactly the serial [0 … n-1] order —
    and thieves take from the back, so stolen work is the work the
    owner would reach last.  Contention is one uncontended lock per
    chunk in the common case; with per-task costs in the multiple
    milliseconds (a fuzz case simulates hundreds of events) the lock
    is invisible next to the work.

    The caller participates as worker 0, so [jobs:1] spawns no domain
    at all and a pool of [j] workers spawns [j - 1] domains. *)

let recommended_jobs () = Domain.recommended_domain_count ()
let now () = Mclock.now ()

exception Cancelled

type stats = { st_wall : float; st_alloc_words : float }

(* Rejecting nested submission needs to know "am I inside a pool
   task?" per domain; worker domains set the flag for their lifetime,
   and worker 0 (the caller) sets it around its own draining so the
   serial path rejects exactly what the parallel path rejects. *)
let inside_pool : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* A chunk of task indices [lo, hi). *)
type chunk = { lo : int; hi : int }

type deque = {
  slots : chunk array;  (* capacity fixed at submission: bounded *)
  mutable front : int;  (* next owner take *)
  mutable back : int;   (* one past the last live chunk *)
  lock : Mutex.t;
}

let take_front d =
  Mutex.lock d.lock;
  let c = if d.front < d.back then Some d.slots.(d.front) else None in
  if c <> None then d.front <- d.front + 1;
  Mutex.unlock d.lock;
  c

let take_back d =
  Mutex.lock d.lock;
  let c = if d.front < d.back then Some d.slots.(d.back - 1) else None in
  if c <> None then d.back <- d.back - 1;
  Mutex.unlock d.lock;
  c

(* Core runner shared by every public entry point: executes the task
   family and reports per-index outcomes without deciding a failure
   policy.  [results.(i)] is [None] exactly for tasks never started
   (possible only after a fail-fast cancellation). *)
let run_all ?jobs ?(fail_fast = false) ?chunk n f =
  if n < 0 then invalid_arg "Pool.map: negative task count";
  if Domain.DLS.get inside_pool then
    invalid_arg "Pool.map: nested submission from inside a pool task";
  let jobs = max 1 (match jobs with Some j -> j | None -> recommended_jobs ()) in
  let chunk =
    max 1 (match chunk with Some c -> c | None -> n / (jobs * 8))
  in
  let results = Array.make n None in
  let wall = Array.make n 0.0 in
  let alloc = Array.make n 0.0 in
  let errors = ref [] (* (index, exn, backtrace), any order *) in
  let err_lock = Mutex.create () in
  let cancelled = Atomic.make false in
  let run_task i =
    if Obs.on () then Obs.span_begin "pool" "task" [ ("i", Obs.I i) ];
    let t0 = now () in
    let a0 = Gc.minor_words () in
    (match f i with
    | v -> results.(i) <- Some (Ok v)
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        results.(i) <- Some (Error (e, bt));
        Mutex.lock err_lock;
        errors := (i, e, bt) :: !errors;
        Mutex.unlock err_lock;
        if fail_fast then Atomic.set cancelled true);
    wall.(i) <- now () -. t0;
    alloc.(i) <- Gc.minor_words () -. a0;
    if Obs.on () then Obs.span_end "pool" "task" [ ("i", Obs.I i) ]
  in
  (* Deal chunks round-robin onto the worker deques. *)
  let nchunks = (n + chunk - 1) / chunk in
  let deques =
    Array.init jobs (fun w ->
        let cap = (nchunks / jobs) + if w < nchunks mod jobs then 1 else 0 in
        {
          slots = Array.make cap { lo = 0; hi = 0 };
          front = 0;
          back = cap;
          lock = Mutex.create ();
        })
  in
  for k = 0 to nchunks - 1 do
    let lo = k * chunk in
    deques.(k mod jobs).slots.(k / jobs) <- { lo; hi = min n (lo + chunk) }
  done;
  let worker w () =
    Domain.DLS.set inside_pool true;
    let rec grab k =
      (* own deque first (front), then steal from siblings (back) *)
      if k >= jobs then None
      else
        let d = deques.((w + k) mod jobs) in
        match if k = 0 then take_front d else take_back d with
        | Some _ as c ->
            (* k > 0 means the chunk came off a sibling's deque: a steal.
               Ambient by design — which worker steals what is a
               scheduling accident, so it must stay out of the digest. *)
            if k > 0 && Obs.on () then
              Obs.instant "pool" "steal"
                [ ("thief", Obs.I w); ("victim", Obs.I ((w + k) mod jobs)) ];
            c
        | None -> grab (k + 1)
    in
    let rec loop () =
      if not (Atomic.get cancelled) then
        match grab 0 with
        | None -> ()
        | Some { lo; hi } ->
            let i = ref lo in
            while !i < hi && not (Atomic.get cancelled) do
              run_task !i;
              incr i
            done;
            loop ()
    in
    loop ();
    Domain.DLS.set inside_pool false
  in
  let domains = List.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  List.iter Domain.join domains;
  let sorted_errors =
    List.sort (fun (i, _, _) (j, _, _) -> compare i j) !errors
  in
  (results, sorted_errors, wall, alloc)

let stats_of wall alloc n =
  Array.init n (fun i -> { st_wall = wall.(i); st_alloc_words = alloc.(i) })

let map_stats ?jobs ?fail_fast ?chunk n f =
  let results, errors, wall, alloc = run_all ?jobs ?fail_fast ?chunk n f in
  (match errors with
  | (first, e, bt) :: rest ->
      (* Every failure beyond the re-raised one used to vanish; log
         them (ambient — error arrival order is a scheduling accident)
         so a supervisor watching the trace sees the full picture. *)
      if Obs.on () then
        List.iter
          (fun (i, e, _) ->
            Obs.instant "pool" "secondary-error"
              [
                ("i", Obs.I i);
                ("first", Obs.I first);
                ("exn", Obs.S (Printexc.to_string e));
              ])
          rest;
      (* deterministic choice: the smallest failing index wins *)
      Printexc.raise_with_backtrace e bt
  | [] -> ());
  ( Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error _) | None ->
            invalid_arg "Pool.map: missing result (cancelled run?)")
      results,
    stats_of wall alloc n )

let map ?jobs ?fail_fast ?chunk n f =
  fst (map_stats ?jobs ?fail_fast ?chunk n f)

let map_all_errors ?jobs ?fail_fast ?chunk n f =
  let results, _errors, _wall, _alloc = run_all ?jobs ?fail_fast ?chunk n f in
  Array.map
    (function
      | Some (Ok v) -> Ok v
      | Some (Error (e, _)) -> Error e
      | None -> Error Cancelled)
    results
