(** Domain-based work-stealing worker pool.

    The pool executes an indexed family of independent tasks
    [f 0 … f (n-1)] on up to [jobs] OCaml 5 domains and returns the
    results {e in index order}, so any caller that derives its
    per-task inputs from the index alone (the fuzz campaign seeds each
    case splitmix-style from [(seed, case_index)]) gets results that
    are byte-identical regardless of [jobs].

    Scheduling: tasks are submitted up-front in contiguous chunks,
    dealt round-robin onto one {e bounded deque per worker}; each
    worker drains its own deque from the front (so [jobs:1] preserves
    exact serial order) and, when empty, steals whole chunks from the
    {e back} of sibling deques.  Workers never produce new tasks —
    nested submission from inside a task is rejected — so a worker
    that finds every deque empty can exit.

    Failure: a task that raises never tears down the pool mid-run by
    itself.  The exception (with its backtrace) is captured; at join
    the exception of the {e smallest failing index} is re-raised, a
    deterministic choice, and every {e other} captured failure is
    logged as an ambient ["pool"]/["secondary-error"] Obs instant so
    no error is silently dropped.  With [fail_fast:true] the first
    captured failure additionally cancels the run: workers finish
    their current task, drain nothing further, and the join re-raises
    early.  {!map_all_errors} reports every per-index outcome instead
    of raising. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the default worker count. *)

val now : unit -> float
(** Monotonic seconds ({!Mclock.now}): never decreases within a
    process, so intervals and timeouts survive wall-clock steps.
    Origin is arbitrary — only differences are meaningful.  Exposed so
    callers time whole runs with the same clock the per-task stats
    use. *)

exception Cancelled
(** Outcome recorded by {!map_all_errors} for tasks that never ran
    because a [fail_fast] cancellation drained the queues first. *)

(** Per-task execution cost, measured around the task on its worker
    domain.  {e Not} deterministic — keep it out of any output that
    must be byte-stable across runs or [jobs] values. *)
type stats = {
  st_wall : float;  (** wall-clock seconds spent inside the task *)
  st_alloc_words : float;
      (** words allocated by the task on its domain's minor heap *)
}

val map :
  ?jobs:int -> ?fail_fast:bool -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [map n f] is [[| f 0; …; f (n-1) |]], computed on [jobs] workers
    (default {!recommended_jobs}; clamped to ≥ 1).  [chunk] is the
    number of consecutive indices per scheduling unit (default scales
    with [n / jobs]; pass [1] when task costs vary wildly).

    @raise Invalid_argument on [n < 0] or when called from inside a
    pool task (nested submission).
    @raise exn the captured exception of the smallest failing index,
    with its original backtrace, after all workers joined. *)

val map_stats :
  ?jobs:int ->
  ?fail_fast:bool ->
  ?chunk:int ->
  int ->
  (int -> 'a) ->
  'a array * stats array
(** Like {!map}, also returning the per-task cost in index order. *)

val map_all_errors :
  ?jobs:int ->
  ?fail_fast:bool ->
  ?chunk:int ->
  int ->
  (int -> 'a) ->
  ('a, exn) result array
(** Like {!map}, but never re-raises a task failure: the returned
    array has, at each index, [Ok v] for a task that returned,
    [Error e] for a task that raised [e], and [Error Cancelled] for a
    task that never started because [fail_fast] cancellation emptied
    the queues first.  A supervisor deciding what to retry sees every
    failure, not just the smallest index.

    @raise Invalid_argument on [n < 0] or nested submission (these are
    caller bugs, not task outcomes). *)
