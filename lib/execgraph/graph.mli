(** Execution graphs (Definition 1): the digraph of the space–time
    diagram of an admissible execution, with receive events as nodes
    and two kinds of edges — {e local edges} between consecutive events
    of the same process and {e non-local edges} (messages) reflecting
    the happens-before relation without its transitive closure.

    The builder enforces the structural discipline of the model: events
    of one process are appended in causal order (local edges are
    created implicitly), and a message edge goes from its send step
    (which coincides with a receive event, steps being atomic
    receive+compute+send) to its receive event.  Per the paper's
    treatment of Byzantine faults, callers exclude messages sent by
    faulty processes simply by never adding them (the [Sim] layer
    performs that dropping). *)

type edge_kind = Local | Message

type t

(** {1 Construction} *)

val create : nprocs:int -> t

val add_event : ?time:Rat.t -> t -> proc:int -> Event.t
(** Appends the next receive event of [proc]; a local edge from the
    process's previous event is added implicitly.
    @raise Invalid_argument on a bad process index. *)

val add_message : t -> src:int -> dst:int -> Digraph.edge
(** Adds a message edge between two existing event ids.
    @raise Invalid_argument on bad event ids. *)

val truncate : t -> events:int -> edges:int -> unit
(** Rolls the graph back to an earlier watermark (a prior
    [(event_count, edge_count)] pair), undoing appends newest-first.
    The pair must be a consistent snapshot: every surviving edge
    references surviving events.  O(removed).
    @raise Invalid_argument on an inconsistent watermark. *)

(** {1 Accessors} *)

val nprocs : t -> int
val event_count : t -> int

val edge_count : t -> int
(** Total edges, local and message (the edge watermark {!truncate}
    takes). *)

val message_count : t -> int
val event : t -> int -> Event.t
val edge_kind : t -> int -> edge_kind
val is_message : t -> Digraph.edge -> bool

val digraph : t -> Digraph.t
(** The underlying digraph (nodes = event ids, edges = local +
    message). *)

val events_of_proc : t -> int -> int list
(** Event ids of a process in causal (seq) order. *)

val last_event_of_proc : t -> int -> int option

(** {1 Causality} *)

val causally_before : t -> int -> int -> bool
(** Reflexive-transitive causal reachability [φ →* ψ]. *)

val causal_past : t -> int -> bool array
(** The causal cone of an event: mask over event ids of all [φ] with
    [φ →* ψ] (Lemma 4's cone; also used for cut closures). *)

val topological_order : t -> int list
(** A topological order of the events (execution graphs are DAGs
    because messages cannot be sent backwards in time).
    @raise Invalid_argument if the graph was corrupted into a cycle. *)

val is_dag : t -> bool
val pp : Format.formatter -> t -> unit
