(** The ABC synchrony condition (Definition 4): an execution is
    admissible for parameter Ξ iff every relevant cycle [Z] of its
    execution graph satisfies [|Z−|/|Z+| < Ξ].

    Two checkers are provided.

    {b Exhaustive} ({!check_enumerate}): classify every simple shadow
    cycle and test Eq. (2).  Exponential; the test oracle.

    {b Polynomial} ({!check}): our reduction to nonpositive-cycle
    detection.  Write Ξ = α/β in lowest terms and build an auxiliary
    digraph [H] on the events of [G] with, for every message [u → v],
    a {e forward arc} [u → v] of weight [+α] and a {e backward arc}
    [v → u] of weight [−β]; and for every local edge [u → v] a backward
    arc [v → u] of weight [0] (no forward local arcs: relevance demands
    all local edges be backward).

    Claim: [G] violates Def. 4 iff [H] has a directed cycle of weight
    ≤ 0.

    Proof sketch (both directions; details mirror Cycle.classify):
    - A violating relevant cycle [Z] ([|Z−| ≥ Ξ·|Z+|]), traversed along
      its orientation, uses forward-message arcs for [Z+], backward
      message arcs for [Z−] and backward local arcs for its local
      edges; its weight in [H] is [α·|Z+| − β·|Z−| ≤ 0].
    - Conversely a directed cycle [C] in [H] of weight
      [α·f − β·b ≤ 0] cannot consist of backward arcs only (that would
      reverse into a directed cycle of the DAG [G]), so [f ≥ 1], hence
      [b/f ≥ α/β = Ξ > 1], so [f < b]; its shadow in [G] is a cycle
      whose orientation may legally be the traversal direction
      (Eq. (1) holds), all local edges are backward (only backward
      local arcs exist in [H]) — a relevant cycle violating Eq. (2).
      (A non-simple [C] splits into simple cycles, at least one of
      which has weight ≤ 0, and simple cycles of [H] that use both
      arcs of the {e same} message have weight [α − β > 0], so a
      genuine violation survives the splitting.)

    Detecting "some cycle has weight ≤ 0" with Bellman–Ford (which
    finds strictly negative cycles): with integer arc weights, rescale
    each arc weight [w] to [(m+1)·w − 1] where [m] is the arc count.
    A simple cycle of [k ≤ m] arcs and original weight [W] gets
    [(m+1)·W − k], which is negative iff [W ≤ 0]
    (if [W ≤ 0] it is [≤ −k < 0]; if [W ≥ 1] it is
    [≥ m + 1 − k ≥ 1 > 0]). *)

type verdict =
  | Admissible
  | Violation of Cycle.t  (** a concrete relevant cycle with ratio ≥ Ξ *)

(* Bound on the numerator and denominator of Ξ accepted by the integer
   checkers.  With α, β <= 2^30, the rescaled weight (m+1)·α of {!check}
   and the walk sums of both checkers stay far inside the 63-bit native
   range for every graph this code can hold in memory (walk sums are
   bounded by n·(m+1)·α; n·(m+1) < 2^32 for graphs below ~2^16 events).
   Protocol parameters are tiny in practice; anything larger is almost
   certainly a bug in the caller, so reject it loudly rather than
   overflow silently. *)
let xi_part_bound = 1 lsl 30

let xi_parts xi =
  if Rat.compare xi Rat.one <= 0 then invalid_arg "Abc_check: requires Xi > 1";
  match (Bigint.to_int (Rat.num xi), Bigint.to_int (Rat.den xi)) with
  | Some a, Some b when a <= xi_part_bound && b <= xi_part_bound -> (a, b)
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Abc_check: Xi = %s out of range: numerator and denominator must \
            each be <= 2^30 for the exact integer cycle check"
           (Rat.to_string xi))

module BF_int = Digraph.Bellman_ford (struct
  type t = int

  let zero = 0
  let add = ( + )
  let compare = Stdlib.compare
end)

(* Arc origin: which execution-graph edge an arc of H came from, and
   with which traversal direction. *)
type arc_origin = { g_edge : Digraph.edge; g_dir : int }

let build_h g ~xi =
  let alpha, beta = xi_parts xi in
  let h = Digraph.create (Graph.event_count g) in
  let origins = ref [] and weights = ref [] in
  List.iter
    (fun (e : Digraph.edge) ->
      if Graph.is_message g e then begin
        let fwd = Digraph.add_edge h ~src:e.src ~dst:e.dst in
        ignore fwd;
        origins := { g_edge = e; g_dir = 1 } :: !origins;
        weights := alpha :: !weights;
        let bwd = Digraph.add_edge h ~src:e.dst ~dst:e.src in
        ignore bwd;
        origins := { g_edge = e; g_dir = -1 } :: !origins;
        weights := -beta :: !weights
      end
      else begin
        let bwd = Digraph.add_edge h ~src:e.dst ~dst:e.src in
        ignore bwd;
        origins := { g_edge = e; g_dir = -1 } :: !origins;
        weights := 0 :: !weights
      end)
    (Digraph.edges (Graph.digraph g));
  let origins = Array.of_list (List.rev !origins) in
  let weights = Array.of_list (List.rev !weights) in
  (h, origins, weights)

(** Polynomial admissibility check; on violation, returns a concrete
    violating relevant cycle (reconstructed from the nonpositive cycle
    of [H], with repeated uses of the same message cancelled by the
    splitting argument above — Bellman–Ford returns a simple cycle, so
    no cancellation is needed in practice). *)
let check g ~xi =
  let h, origins, weights = build_h g ~xi in
  let m = Digraph.edge_count h in
  let scaled (e : Digraph.edge) = ((m + 1) * weights.(e.id)) - 1 in
  match BF_int.negative_cycle h ~weight:scaled with
  | None -> Admissible
  | Some arcs ->
      let traversal =
        List.map
          (fun (a : Digraph.edge) ->
            let o = origins.(a.id) in
            { Digraph.edge = o.g_edge; dir = o.g_dir })
          arcs
      in
      let c = Cycle.classify g traversal in
      Violation c

(** Exhaustive oracle: enumerate all simple cycles and apply Eq. (2). *)
let check_enumerate ?max_cycles g ~xi =
  let cycles = Cycle.enumerate ?max_cycles g in
  match List.find_opt (fun c -> not (Cycle.satisfies_abc c ~xi)) cycles with
  | None -> Admissible
  | Some c -> Violation c

let is_admissible g ~xi = match check g ~xi with Admissible -> true | Violation _ -> false

let pp_verdict fmt = function
  | Admissible -> Format.fprintf fmt "admissible"
  | Violation c -> Format.fprintf fmt "violation: %a" Cycle.pp c

(** Incremental admissibility.

    The scratch checker above rescales arc weights by [(m+1)] to turn
    "some cycle has weight ≤ 0" into strict Bellman–Ford negativity —
    but that makes every arc weight depend on the {e total} arc count,
    so nothing survives an edge insertion.  The incremental checker
    instead works in the lexicographic weight domain
    [(W, arcs)] with componentwise addition and the order

      [(w1, k1) < (w2, k2)  iff  w1 < w2  or  (w1 = w2 and k1 > k2)]

    (longer walks are {e smaller} at equal weight).  A cycle with
    [k >= 1] arcs is negative in this order iff its plain weight [W] is
    [<= 0] — exactly Definition 4's violation — and arc weights are
    insertion-independent, so shortest-walk estimates can be {e kept}
    across insertions.

    The checker maintains, per node of the auxiliary digraph [H], the
    value [dist = (W, k)] of some witness walk from the virtual
    super-source (initially [(0, 0)] for every node).  The invariant
    after a settled update is [dist(v) <= dist(u) + w(u,v)] for every
    arc — a feasible potential, certifying that no nonpositive cycle
    exists.  Inserting arcs can only break the invariant at the new
    arcs, so re-settling relaxes outward from them (SPFA-style worklist)
    instead of re-running Bellman–Ford over everything.

    Detection: if an improvement pushes some [dist_k(v)] past the node
    count, the witness walk repeats a node, and the repeated segment is
    a nonpositive cycle (values only decrease over time, so the segment
    between the two visits has weight [< 0] in the lex order); the
    execution is inadmissible.  Conversely, with a nonpositive cycle
    present the relaxation cannot stabilize and every lap around the
    cycle grows the witness [k], so the threshold always fires.
    Inadmissibility latches: execution graphs only grow, and adding
    edges never removes a violating cycle.

    Speculation: [spec_*] operations extend [H] hypothetically (the
    deferring adversary asks "would delivering this queue stay
    admissible?" hundreds of times per run).  All state changes — arc
    and node insertions, [dist] improvements — are journaled and undone
    by {!spec_abort} via {!Digraph.truncate} and the undo log, so a
    speculation costs only the work its own deltas cause. *)
module Checker = struct
  type checker = {
    graph : Graph.t;
    alpha : int;
    beta : int;
    h : Digraph.t;
    mutable wt : int array;  (* arc id -> weight (alpha, -beta or 0) *)
    mutable dist_w : int array;  (* node -> witness walk weight *)
    mutable dist_k : int array;  (* node -> witness walk arc count *)
    mutable inq : bool array;
    mutable synced_edges : int;  (* prefix of graph edges absorbed *)
    mutable violated : bool;  (* latched: the committed graph violates Xi *)
    queue : int Queue.t;
    (* speculation state *)
    mutable speculating : bool;
    mutable spec_violated : bool;
    mutable undo : (int * int * int) list;  (* node, old dist_w, old dist_k *)
    mutable base_nodes : int;
    mutable base_arcs : int;
    spec_last : int array;  (* per process: last event id, real or speculative *)
  }

  let grow_to arr n fill =
    let cap = Array.length arr in
    if n <= cap then arr
    else begin
      let arr' = Array.make (max n (2 * cap)) fill in
      Array.blit arr 0 arr' 0 cap;
      arr'
    end

  let ensure_node c v =
    (* fresh nodes start at the super-source value (0, 0) *)
    c.dist_w <- grow_to c.dist_w (v + 1) 0;
    c.dist_k <- grow_to c.dist_k (v + 1) 0;
    c.inq <- grow_to c.inq (v + 1) false

  let add_h_node c =
    let v = Digraph.add_node c.h in
    ensure_node c v;
    c.dist_w.(v) <- 0;
    c.dist_k.(v) <- 0;
    c.inq.(v) <- false;
    v

  (* Record an improvement of [v], journaled while speculating. *)
  let improve c v w k =
    if c.speculating then c.undo <- (v, c.dist_w.(v), c.dist_k.(v)) :: c.undo;
    c.dist_w.(v) <- w;
    c.dist_k.(v) <- k;
    if not c.inq.(v) then begin
      c.inq.(v) <- true;
      Queue.add v c.queue
    end

  let mark_violated c =
    (if c.speculating then c.spec_violated <- true else c.violated <- true);
    (* drop the pending worklist: the verdict for this state is final *)
    Queue.iter (fun v -> c.inq.(v) <- false) c.queue;
    Queue.clear c.queue

  let[@inline] lex_less w1 k1 w2 k2 = w1 < w2 || (w1 = w2 && k1 > k2)

  exception Halt

  (* Drain the worklist, propagating improvements until the potential
     invariant holds again or a witness walk exceeds the node count. *)
  let settle c =
    let n = Digraph.node_count c.h in
    try
      while not (Queue.is_empty c.queue) do
        let u = Queue.pop c.queue in
        c.inq.(u) <- false;
        let du = c.dist_w.(u) and ku = c.dist_k.(u) in
        List.iter
          (fun (a : Digraph.edge) ->
            let w = du + c.wt.(a.id) and k = ku + 1 in
            if lex_less w k c.dist_w.(a.dst) c.dist_k.(a.dst) then
              if k > n then begin
                mark_violated c;
                raise Halt
              end
              else improve c a.dst w k)
          (Digraph.out_edges c.h u)
      done
    with Halt -> ()

  (* Insert an arc and relax it once; [settle] finishes the job. *)
  let add_arc c ~src ~dst w =
    let a = Digraph.add_edge c.h ~src ~dst in
    c.wt <- grow_to c.wt (a.id + 1) 0;
    c.wt.(a.id) <- w;
    if not (if c.speculating then c.spec_violated else c.violated) then begin
      let nw = c.dist_w.(src) + w and nk = c.dist_k.(src) + 1 in
      if lex_less nw nk c.dist_w.(dst) c.dist_k.(dst) then
        if nk > Digraph.node_count c.h then mark_violated c
        else improve c dst nw nk
    end

  (* Absorb everything appended to the underlying graph since the last
     sync: a node of H per new event, arcs per new edge. *)
  let sync c =
    let g = c.graph in
    while Digraph.node_count c.h < Graph.event_count g do
      ignore (add_h_node c)
    done;
    let dg = Graph.digraph g in
    let m = Digraph.edge_count dg in
    if c.synced_edges < m then begin
      for i = c.synced_edges to m - 1 do
        let e = Digraph.edge dg i in
        if Graph.is_message g e then begin
          add_arc c ~src:e.src ~dst:e.dst c.alpha;
          add_arc c ~src:e.dst ~dst:e.src (-c.beta)
        end
        else add_arc c ~src:e.dst ~dst:e.src 0
      done;
      c.synced_edges <- m
    end;
    if not c.violated then settle c

  let create g ~xi =
    let alpha, beta = xi_parts xi in
    let c =
      {
        graph = g;
        alpha;
        beta;
        h = Digraph.create 0;
        wt = Array.make 64 0;
        dist_w = Array.make 64 0;
        dist_k = Array.make 64 0;
        inq = Array.make 64 false;
        synced_edges = 0;
        violated = false;
        queue = Queue.create ();
        speculating = false;
        spec_violated = false;
        undo = [];
        base_nodes = 0;
        base_arcs = 0;
        spec_last = Array.make (Graph.nprocs g) (-1);
      }
    in
    sync c;
    c

  let is_admissible c =
    if c.speculating then invalid_arg "Abc_check.Checker.is_admissible: mid-speculation";
    sync c;
    not c.violated

  let spec_begin c =
    if c.speculating then invalid_arg "Abc_check.Checker.spec_begin: already speculating";
    sync c;
    c.speculating <- true;
    c.spec_violated <- c.violated;
    c.undo <- [];
    c.base_nodes <- Digraph.node_count c.h;
    c.base_arcs <- Digraph.edge_count c.h;
    for p = 0 to Graph.nprocs c.graph - 1 do
      c.spec_last.(p) <-
        (match Graph.last_event_of_proc c.graph p with Some id -> id | None -> -1)
    done

  let spec_add_event c ~proc =
    if not c.speculating then invalid_arg "Abc_check.Checker.spec_add_event: not speculating";
    let id = add_h_node c in
    (* a local edge u -> v contributes only the backward arc v -> u *)
    (match c.spec_last.(proc) with -1 -> () | prev -> add_arc c ~src:id ~dst:prev 0);
    c.spec_last.(proc) <- id;
    id

  let spec_add_message c ~src ~dst =
    if not c.speculating then
      invalid_arg "Abc_check.Checker.spec_add_message: not speculating";
    add_arc c ~src ~dst c.alpha;
    add_arc c ~src:dst ~dst:src (-c.beta)

  let spec_admissible c =
    if not c.speculating then invalid_arg "Abc_check.Checker.spec_admissible: not speculating";
    if not c.spec_violated then settle c;
    not c.spec_violated

  let spec_abort c =
    if not c.speculating then invalid_arg "Abc_check.Checker.spec_abort: not speculating";
    Queue.iter (fun v -> c.inq.(v) <- false) c.queue;
    Queue.clear c.queue;
    (* entries are prepended, so replaying head-to-tail ends on the
       oldest (original) value of each node *)
    List.iter
      (fun (v, w, k) ->
        c.dist_w.(v) <- w;
        c.dist_k.(v) <- k)
      c.undo;
    c.undo <- [];
    Digraph.truncate c.h ~nodes:c.base_nodes ~edges:c.base_arcs;
    c.spec_violated <- false;
    c.speculating <- false
end
