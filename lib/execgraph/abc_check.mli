(** The ABC synchrony condition (Definition 4): an execution is
    admissible for parameter Ξ iff every relevant cycle [Z] of its
    execution graph satisfies [|Z−|/|Z+| < Ξ].

    Two checkers:

    - {!check}: {b polynomial}, by reduction to nonpositive-cycle
      detection.  Writing Ξ = α/β in lowest terms, build a digraph [H]
      with a forward arc of weight +α per message, a backward arc of
      weight −β per message, and a backward arc of weight 0 per local
      edge (no forward local arcs: relevance demands all locals
      backward).  [G] violates Definition 4 iff [H] has a directed
      cycle of weight ≤ 0, decided exactly by Bellman–Ford on the
      rescaled integer weights [(m+1)·w − 1].  The full proof is in the
      implementation's header comment.
    - {!check_enumerate}: {b exhaustive} oracle over all simple shadow
      cycles; exponential, used by tests to cross-validate. *)

type verdict =
  | Admissible
  | Violation of Cycle.t  (** a concrete relevant cycle with ratio ≥ Ξ *)

val check : Graph.t -> xi:Rat.t -> verdict
(** Polynomial check; on violation returns a concrete witness cycle.
    @raise Invalid_argument unless [1 < Ξ] and both numerator and
    denominator of [Ξ] (in lowest terms) are [<= 2^30] — the bound
    under which the integer cycle detection provably cannot
    overflow. *)

val check_enumerate : ?max_cycles:int -> Graph.t -> xi:Rat.t -> verdict
(** Exhaustive oracle (small graphs only). *)

val is_admissible : Graph.t -> xi:Rat.t -> bool
val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Incremental admissibility}

    The simulator appends a handful of edges between admissibility
    queries, but {!check} starts from scratch every time.  A
    {!Checker.checker} caches the auxiliary digraph [H] and the
    Bellman–Ford potentials across queries: committed growth of the
    underlying graph is absorbed by relaxing only from the newly
    inserted arcs, and {e speculative} extensions ("would delivering
    these messages stay admissible?" — the deferring adversary's inner
    loop) are journaled and rolled back in time proportional to the
    work they caused, not to the graph size.

    Verdicts agree exactly with {!check} (the test suite checks this
    differentially on random growing executions).  Inadmissibility of
    the committed graph latches: execution graphs only grow and added
    edges never remove a violating cycle. *)
module Checker : sig
  type checker

  val create : Graph.t -> xi:Rat.t -> checker
  (** Attach a checker to [g].  The graph may keep growing through
      {!Graph.add_event} / {!Graph.add_message}; each query absorbs
      whatever was appended since the last one.  The graph must only
      ever be extended (never rebuilt) while a checker is attached.
      @raise Invalid_argument on the same [Ξ] conditions as {!check}. *)

  val is_admissible : checker -> bool
  (** Sync with the underlying graph and decide Definition 4 for it,
      in time proportional to the edges added since the last query
      (amortized).  Equivalent to [check g ~xi = Admissible]. *)

  (** {2 Speculation}

      Between {!spec_begin} and {!spec_abort}, hypothetical events and
      messages extend [H] without touching the underlying graph.  The
      underlying graph must not change during a speculation.  At most
      one speculation can be open per checker; they do not nest. *)

  val spec_begin : checker -> unit

  val spec_add_event : checker -> proc:int -> int
  (** Append a hypothetical receive event at [proc] (with its implied
      local edge from the process's previous — real or speculative —
      event) and return its would-be event id. *)

  val spec_add_message : checker -> src:int -> dst:int -> unit
  (** Add a hypothetical message edge between two (real or
      speculative) event ids. *)

  val spec_admissible : checker -> bool
  (** Would the committed graph plus the speculative extension be
      admissible?  May be queried repeatedly as the speculation
      grows. *)

  val spec_abort : checker -> unit
  (** Retract the speculative extension and return to the committed
      state. *)
end
