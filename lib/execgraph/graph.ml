(** Execution graphs (Definition 1): the digraph of the space–time
    diagram of an admissible execution, with receive events as nodes and
    two kinds of edges — {e local edges} between consecutive events of
    the same process and {e non-local edges} (messages) reflecting the
    happens-before relation without its transitive closure.

    The builder enforces the structural discipline of the model:
    - events of one process are appended in order (local edges are
      created implicitly between consecutive events);
    - a message edge goes from the send step (which coincides with some
      receive event, since steps are atomic receive+compute+send) to the
      receive event of the message at its destination;
    - per the paper's treatment of Byzantine faults, callers exclude
      messages sent by faulty processes simply by never adding them
      (the {!Sim} layer performs that dropping). *)

type edge_kind = Local | Message

type t = {
  digraph : Digraph.t;
  mutable events : Event.t array; (* index = node id; length >= count *)
  mutable event_count : int;
  mutable kinds : edge_kind array; (* index = edge id *)
  mutable kind_count : int;
  nprocs : int;
  mutable last_event : int array; (* per process: last node id or -1 *)
  mutable events_of_proc : int list array; (* reversed list of node ids *)
}

let create ~nprocs =
  {
    digraph = Digraph.create 0;
    events = Array.make 16 { Event.id = -1; proc = -1; seq = -1; time = None };
    event_count = 0;
    kinds = Array.make 16 Local;
    kind_count = 0;
    nprocs;
    last_event = Array.make nprocs (-1);
    events_of_proc = Array.make nprocs [];
  }

let nprocs g = g.nprocs
let event_count g = g.event_count
let edge_count g = g.kind_count
let message_count g =
  let c = ref 0 in
  for i = 0 to g.kind_count - 1 do
    if g.kinds.(i) = Message then incr c
  done;
  !c

let event g id =
  if id < 0 || id >= g.event_count then invalid_arg "Graph.event: out of range";
  g.events.(id)

let edge_kind g id =
  if id < 0 || id >= g.kind_count then invalid_arg "Graph.edge_kind: out of range";
  g.kinds.(id)

let is_message g (e : Digraph.edge) = edge_kind g e.id = Message
let digraph g = g.digraph
let events_of_proc g p = List.rev g.events_of_proc.(p)
let last_event_of_proc g p = if g.last_event.(p) < 0 then None else Some g.last_event.(p)

let push_event g ev =
  let cap = Array.length g.events in
  if g.event_count >= cap then begin
    let arr = Array.make (2 * cap) ev in
    Array.blit g.events 0 arr 0 cap;
    g.events <- arr
  end;
  g.events.(g.event_count) <- ev;
  g.event_count <- g.event_count + 1

let push_kind g k =
  let cap = Array.length g.kinds in
  if g.kind_count >= cap then begin
    let arr = Array.make (2 * cap) Local in
    Array.blit g.kinds 0 arr 0 cap;
    g.kinds <- arr
  end;
  g.kinds.(g.kind_count) <- k;
  g.kind_count <- g.kind_count + 1

let add_event ?time g ~proc =
  if proc < 0 || proc >= g.nprocs then invalid_arg "Graph.add_event: bad process";
  let id = Digraph.add_node g.digraph in
  let seq = match g.events_of_proc.(proc) with [] -> 0 | prev :: _ -> g.events.(prev).seq + 1 in
  let ev = { Event.id; proc; seq; time } in
  push_event g ev;
  (* Local edge from the previous event at this process. *)
  (match g.last_event.(proc) with
  | -1 -> ()
  | prev ->
      let _e = Digraph.add_edge g.digraph ~src:prev ~dst:id in
      push_kind g Local);
  g.last_event.(proc) <- id;
  g.events_of_proc.(proc) <- id :: g.events_of_proc.(proc);
  ev

let add_message g ~src ~dst =
  if src < 0 || src >= g.event_count || dst < 0 || dst >= g.event_count then
    invalid_arg "Graph.add_message: bad event id";
  let e = Digraph.add_edge g.digraph ~src ~dst in
  push_kind g Message;
  e

(** Roll the graph back to an earlier (event, edge) watermark, undoing
    appends newest-first.  The watermark must be a consistent snapshot
    of a prior state — every surviving edge references surviving events
    ({!Digraph.truncate} validates that).  Per-process bookkeeping is
    restored by popping [events_of_proc] heads, which hold the ids in
    reverse append order. *)
let truncate g ~events ~edges =
  if events < 0 || events > g.event_count then
    invalid_arg "Graph.truncate: bad event watermark";
  if edges < 0 || edges > g.kind_count then
    invalid_arg "Graph.truncate: bad edge watermark";
  Digraph.truncate g.digraph ~nodes:events ~edges;
  for id = g.event_count - 1 downto events do
    let p = g.events.(id).Event.proc in
    (match g.events_of_proc.(p) with
    | hd :: tl when hd = id ->
        g.events_of_proc.(p) <- tl;
        g.last_event.(p) <- (match tl with [] -> -1 | prev :: _ -> prev)
    | _ -> invalid_arg "Graph.truncate: per-process index out of sync")
  done;
  g.event_count <- events;
  g.kind_count <- edges

(** Reflexive-transitive causal reachability [φ →* ψ], by BFS. *)
let causally_before g a b =
  if a = b then true
  else begin
    let seen = Array.make g.event_count false in
    let q = Queue.create () in
    Queue.add a q;
    seen.(a) <- true;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun (e : Digraph.edge) ->
          if not seen.(e.dst) then begin
            if e.dst = b then found := true;
            seen.(e.dst) <- true;
            Queue.add e.dst q
          end)
        (Digraph.out_edges g.digraph v)
    done;
    !found
  end

(** The causal past (cone) of an event: all [φ] with [φ →* ψ], as a
    boolean mask over event ids.  Used by Lemma 4's causal-cone property
    and by left closures of cuts. *)
let causal_past g id =
  let seen = Array.make g.event_count false in
  let q = Queue.create () in
  Queue.add id q;
  seen.(id) <- true;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (e : Digraph.edge) ->
        if not seen.(e.src) then begin
          seen.(e.src) <- true;
          Queue.add e.src q
        end)
      (Digraph.in_edges g.digraph v)
  done;
  seen

(** Topological order of events (always exists: execution graphs are
    DAGs because messages cannot be sent backwards in time). *)
let topological_order g =
  match Digraph.topological_sort g.digraph with
  | Some o -> o
  | None -> invalid_arg "Graph.topological_order: execution graph has a directed cycle"

let is_dag g = Digraph.is_dag g.digraph

let pp fmt g =
  Format.fprintf fmt "@[<v>execution graph: %d procs, %d events, %d messages@," g.nprocs
    g.event_count (message_count g);
  List.iter
    (fun (e : Digraph.edge) ->
      let k = match edge_kind g e.id with Local -> "local" | Message -> "msg" in
      Format.fprintf fmt "  %s %a -> %a@," k Event.pp g.events.(e.src) Event.pp g.events.(e.dst))
    (Digraph.edges g.digraph);
  Format.fprintf fmt "@]"
