(** Monotonic wall clock for interval measurement.

    [now ()] returns seconds from an arbitrary origin, backed by
    [clock_gettime(CLOCK_MONOTONIC)] where available (falling back to
    [gettimeofday] otherwise) and ratcheted so that within a process
    the value never decreases — even under NTP steps or a
    [gettimeofday] fallback, a timeout computed as [now () -. t0]
    cannot go negative.

    The origin is unspecified: values are only meaningful as
    differences within one process.  Use {!epoch} when a human-facing
    absolute timestamp is genuinely wanted. *)

val now : unit -> float
(** Monotonic seconds since an arbitrary per-process origin.
    Never decreases within a process. *)

val epoch : unit -> float
(** [Unix.gettimeofday]: absolute seconds since the Unix epoch, for
    display only — subject to clock steps, never use for timeouts. *)
