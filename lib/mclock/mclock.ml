external raw_now : unit -> float = "abc_mclock_now"

(* Ratchet: CLOCK_MONOTONIC already never decreases, but the
   gettimeofday fallback can.  The last value lives in an Atomic of
   the boxed float itself — compare_and_set is physical equality on
   the box we just read, so the ratchet is domain-safe without a
   lock.  (Storing the IEEE bit pattern in a native int would lose
   the top bit: OCaml ints are 63-bit.) *)
let last = Atomic.make 0.0

let rec ratchet v =
  let prev = Atomic.get last in
  if v <= prev then prev
  else if Atomic.compare_and_set last prev v then v
  else ratchet v

let now () = ratchet (raw_now ())
let epoch () = Unix.gettimeofday ()
