/* Monotonic clock primitive.
 *
 * clock_gettime(CLOCK_MONOTONIC) where the platform has it (POSIX —
 * every Linux/macOS this tree builds on), gettimeofday otherwise.
 * Returns seconds as a double; the OCaml side layers a ratchet on top
 * so the fallback can never be observed going backwards either. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <sys/timeb.h>
#else
#include <time.h>
#include <sys/time.h>
#endif

CAMLprim value abc_mclock_now(value unit)
{
  (void)unit;
#if defined(_WIN32)
  struct _timeb tb;
  _ftime(&tb);
  return caml_copy_double((double)tb.time + (double)tb.millitm * 1e-3);
#elif defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
  /* fall through to gettimeofday on failure */
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
#else
  struct timeval tv;
  gettimeofday(&tv, NULL);
  return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
#endif
}
