(** Exact rational arithmetic over {!Bigint}.

    Values are kept in canonical form: the denominator is positive and
    [gcd num den = 1], with zero represented as [0/1].  Structural
    equality therefore coincides with numeric equality.

    The ABC model's synchrony parameter Ξ is "a given rational number
    Ξ > 1" (Definition 4 of the paper), and the delay-assignment proof
    engine (Section 4.1) manipulates linear systems whose solutions must
    be certified exactly, so this module is used pervasively instead of
    floating point.

    {b Representation.}  A two-constructor variant: a {e small} form
    holding numerator and denominator as native ints with
    [|num|, den <= 2^30 - 1] (so every cross product in
    add/sub/mul/div/compare stays below [2^60] and every two-product
    sum below [2^61], exact on OCaml's 63-bit ints), and a {e big}
    form over {!Bigint} entered only when a reduced result exceeds
    those bounds.  Values representable in the small form are never
    held in the big form, so structural equality still coincides with
    numeric equality.  In practice Ξ, clock values and edge weights are
    tiny, so the hot paths (the admissibility checker, the simplex
    pivots of small LP instances, the fuzz oracles) run entirely on
    native ints with no bignum allocation. *)

type t

(** {1 Construction} *)

val zero : t
val one : t
val two : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] is [a/b].  @raise Division_by_zero if [b = 0]. *)

val of_string : string -> t
(** Parses ["a/b"], ["a"], or a decimal like ["1.5"]. *)

(** {1 Accessors} *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val to_float : t -> float
val to_string : t -> string

(** {1 Predicates and comparisons} *)

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val is_small : t -> bool
(** [is_small x] is [true] iff [x] is held in the word-sized fast-path
    form.  Exposed for tests and benchmarks; algorithms must not
    depend on it. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on a zero divisor. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val mul_int : t -> int -> t

val floor : t -> Bigint.t
(** Greatest integer [<= x]. *)

val ceil : t -> Bigint.t
(** Least integer [>= x]. *)

val floor_int : t -> int
(** [floor] as a native int.  @raise Failure on overflow. *)

val ceil_int : t -> int

module O : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

val pp : Format.formatter -> t -> unit

val check_invariant : t -> bool
(** [true] iff the value is in canonical form: positive denominator,
    [gcd num den = 1], and held small iff it fits the small bounds.
    Used by the test suite. *)

(** {1 Infinitesimal extension}

    Rationals extended with a formal infinitesimal ε: values [a + b·ε]
    ordered lexicographically.  This turns the {e strict} inequality
    systems of the paper (the normalized-assignment conditions
    [1 < τ(e) < Ξ] of Section 4.1, and the strict system [Ax < b] of
    Fig. 6) into non-strict systems over an ordered field, so they can
    be solved exactly by simplex / difference-constraint propagation
    with no ad-hoc numeric slack.  A feasible point with positive
    ε-coordinates can then be {e standardized}: substituting a small
    enough concrete rational for ε (see {!Eps.standardize_with}) yields
    a strictly feasible rational point. *)
module Eps : sig
  type rat = t

  type t = { std : rat; eps : rat }
  (** [std + eps·ε] with ε infinitesimal and positive. *)

  val zero : t
  val one : t
  val epsilon : t

  val of_rat : rat -> t
  val make : rat -> rat -> t

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val scale : rat -> t -> t

  val compare : t -> t -> int
  (** Lexicographic: standard part first, then ε-coefficient. *)

  val equal : t -> t -> bool
  val min : t -> t -> t
  val max : t -> t -> t
  val is_nonneg : t -> bool

  val standardize_with : rat -> t -> rat
  (** [standardize_with e x] substitutes the concrete positive rational
      [e] for ε. *)

  val pp : Format.formatter -> t -> unit
end
