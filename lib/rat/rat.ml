(* Two-constructor rationals: a word-sized fast path with overflow
   escape to bignums.

   [S (n, d)] carries the canonical fraction n/d on native ints with
   the invariants d > 0, gcd |n| d = 1, |n| <= small_max and
   d <= small_max.  [small_max = 2^30 - 1] is chosen so that every
   cross product in add/sub/mul/div/compare is < 2^60 and every
   two-product sum is < 2^61, comfortably inside OCaml's 63-bit native
   int — so the common case (Ξ, clock values, edge weights, simplex
   pivots on small instances) runs with no allocation beyond the result
   cell and no bignum gcd.

   [B (n, d)] is the arbitrary-precision fallback, canonical in the
   same sense (positive denominator, gcd 1).  A further invariant makes
   structural equality numeric equality across the whole type: a value
   representable as [S] is never held as [B] — every constructor
   demotes when the reduced parts fit. *)

type t =
  | S of int * int  (** num/den: den > 0, gcd = 1, both |.| <= small_max *)
  | B of Bigint.t * Bigint.t  (** canonical, does not fit the S bounds *)

let small_max = (1 lsl 30) - 1

(* Binary GCD on non-negative native ints; tail-recursive and
   allocation-free. *)
let rec tz n k = if n land 1 = 0 then tz (n lsr 1) (k + 1) else k
let rec strip n = if n land 1 = 0 then strip (n lsr 1) else n

let rec gcd_odd a b =
  (* both arguments odd *)
  if a = b then a
  else if a > b then gcd_odd b a
  else gcd_odd a (strip (b - a))

let gcd_int a b =
  if a = 0 then b
  else if b = 0 then a
  else
    let k = Stdlib.min (tz a 0) (tz b 0) in
    gcd_odd (strip a) (strip b) lsl k

let[@inline] fits n = n >= -small_max && n <= small_max

(* Canonical small from arbitrary int parts (d <> 0), assuming the
   inputs are exact (no prior overflow).  Falls back to B when the
   reduced parts exceed the S bounds.  [min_int] never reaches the
   arithmetic below: constructors route anything that large through
   the bignum path first. *)
let make_small n d =
  if d = 0 then raise Division_by_zero;
  if n = 0 then S (0, 1)
  else begin
    let n, d = if d < 0 then (-n, -d) else (n, d) in
    let g = gcd_int (abs n) d in
    let n = n / g and d = d / g in
    if fits n && d <= small_max then S (n, d)
    else B (Bigint.of_int n, Bigint.of_int d)
  end

(* Canonical big from Bigint parts (den <> 0); demotes to S when the
   reduced fraction fits the small bounds. *)
let make_big num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then S (0, 1)
  else begin
    let num, den =
      if Bigint.is_negative den then (Bigint.neg num, Bigint.neg den) else (num, den)
    in
    let g = Bigint.gcd num den in
    let num, den =
      if Bigint.is_one g then (num, den) else (Bigint.div num g, Bigint.div den g)
    in
    match (Bigint.to_int num, Bigint.to_int den) with
    | Some n, Some d when fits n && d <= small_max -> S (n, d)
    | _ -> B (num, den)
  end

let make = make_big

let of_bigint n = make_big n Bigint.one

let of_int n = if fits n then S (n, 1) else of_bigint (Bigint.of_int n)

let of_ints a b =
  if fits a && fits b && b <> 0 then make_small a b
  else make_big (Bigint.of_int a) (Bigint.of_int b)

let zero = S (0, 1)
let one = S (1, 1)
let two = S (2, 1)
let minus_one = S (-1, 1)
let num = function S (n, _) -> Bigint.of_int n | B (n, _) -> n
let den = function S (_, d) -> Bigint.of_int d | B (_, d) -> d
let sign = function
  | S (n, _) -> if n > 0 then 1 else if n < 0 then -1 else 0
  | B (n, _) -> Bigint.sign n
let is_zero = function S (n, _) -> n = 0 | B (_, _) -> false
let is_integer = function S (_, d) -> d = 1 | B (_, d) -> Bigint.is_one d
let is_small = function S _ -> true | B _ -> false

let neg = function
  | S (n, d) -> S (-n, d) (* |n| <= small_max, so -n is exact and fits *)
  | B (n, d) -> B (Bigint.neg n, d)

let abs = function
  | S (n, d) -> S ((if n < 0 then -n else n), d)
  | B (n, d) -> B (Bigint.abs n, d)

(* Promote to bignum parts for the mixed/escape paths. *)
let[@inline] parts = function
  | S (n, d) -> (Bigint.of_int n, Bigint.of_int d)
  | B (n, d) -> (n, d)

let add_big x y =
  let xn, xd = parts x and yn, yd = parts y in
  make_big (Bigint.add (Bigint.mul xn yd) (Bigint.mul yn xd)) (Bigint.mul xd yd)

let add x y =
  match (x, y) with
  | S (a, b), S (c, d) ->
      (* |a·d|, |c·b| < 2^60; the sum < 2^61: exact on 63-bit ints. *)
      make_small ((a * d) + (c * b)) (b * d)
  | _ -> add_big x y

let sub x y =
  match (x, y) with
  | S (a, b), S (c, d) -> make_small ((a * d) - (c * b)) (b * d)
  | _ -> add_big x (neg y)

let mul x y =
  match (x, y) with
  | S (a, b), S (c, d) ->
      (* Cross-reduce first so the products are the canonical parts
         whenever they fit: gcd(a/g1 · c/g2, b/g2 · d/g1) = 1. *)
      let g1 = gcd_int (Stdlib.abs a) d and g2 = gcd_int (Stdlib.abs c) b in
      let n = a / g1 * (c / g2) and dd = b / g2 * (d / g1) in
      if fits n && dd <= small_max then S (n, dd) else make_small n dd
  | _ ->
      let xn, xd = parts x and yn, yd = parts y in
      make_big (Bigint.mul xn yn) (Bigint.mul xd yd)

let inv = function
  | S (0, _) -> raise Division_by_zero
  | S (n, d) -> if n > 0 then S (d, n) else S (-d, -n)
  | B (n, d) -> make_big d n

let div x y =
  match (x, y) with
  | _, S (0, _) -> raise Division_by_zero
  | S _, S _ -> mul x (inv y)
  | _ ->
      let xn, xd = parts x and yn, yd = parts y in
      make_big (Bigint.mul xn yd) (Bigint.mul xd yn)

let mul_int x n =
  match x with
  | S (a, b) when fits n ->
      let g = gcd_int (Stdlib.abs n) b in
      let n' = a * (n / g) and d' = b / g in
      (* |a| <= 2^30-1 and |n/g| <= 2^30-1, so the product is exact. *)
      if fits n' then S (n', d') else make_small n' d'
  | _ ->
      let xn, xd = parts x in
      make_big (Bigint.mul_int xn n) xd

let compare x y =
  match (x, y) with
  | S (a, b), S (c, d) -> Int.compare (a * d) (c * b) (* both < 2^60: exact *)
  | _ ->
      let xn, xd = parts x and yn, yd = parts y in
      Bigint.compare (Bigint.mul xn yd) (Bigint.mul yn xd)

let equal x y =
  (* Canonical forms (S-iff-fits) make structural equality numeric. *)
  match (x, y) with
  | S (a, b), S (c, d) -> a = c && b = d
  | B (xn, xd), B (yn, yd) -> Bigint.equal xn yn && Bigint.equal xd yd
  | S _, B _ | B _, S _ -> false

let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

(* OCaml's (/) truncates toward zero; adjust to floor for negatives. *)
let floor_int_small n d = if n >= 0 then n / d else -(((-n) + d - 1) / d)

let floor = function
  | S (n, d) -> Bigint.of_int (floor_int_small n d)
  | B (n, d) -> Bigint.div n d (* Euclidean division is floor for positive den *)

let ceil x = Bigint.neg (floor (neg x))

let floor_int = function
  | S (n, d) -> floor_int_small n d
  | B (n, d) -> Bigint.to_int_exn (Bigint.div n d)

let ceil_int = function
  | S (n, d) -> -floor_int_small (-n) d
  | x -> Bigint.to_int_exn (ceil x)

let to_float = function
  | S (n, d) -> float_of_int n /. float_of_int d
  | B (n, d) -> Bigint.to_float n /. Bigint.to_float d

let to_string = function
  | S (n, 1) -> string_of_int n
  | S (n, d) -> string_of_int n ^ "/" ^ string_of_int d
  | B (n, d) ->
      if Bigint.is_one d then Bigint.to_string n
      else Bigint.to_string n ^ "/" ^ Bigint.to_string d

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
      let a = Bigint.of_string (String.sub s 0 i) in
      let b = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make a b
  | None -> (
      match String.index_opt s '.' with
      | None -> of_bigint (Bigint.of_string s)
      | Some i ->
          let int_part = String.sub s 0 i in
          let frac = String.sub s (i + 1) (String.length s - i - 1) in
          let scale = Bigint.pow Bigint.ten (String.length frac) in
          let whole = Bigint.of_string (if int_part = "" || int_part = "-" then int_part ^ "0" else int_part) in
          let fpart = make (Bigint.of_string ("0" ^ frac)) scale in
          let fpart = if String.length s > 0 && s.[0] = '-' then neg fpart else fpart in
          add (of_bigint whole) fpart)

let pp fmt x = Format.pp_print_string fmt (to_string x)

let check_invariant = function
  | S (n, d) ->
      d > 0 && fits n && d <= small_max
      && (n = 0 || gcd_int (Stdlib.abs n) d = 1)
      && (n <> 0 || d = 1)
  | B (n, d) ->
      Bigint.is_positive d
      && (not (Bigint.is_zero n))
      && Bigint.is_one (Bigint.gcd n d)
      && not
           (match (Bigint.to_int n, Bigint.to_int d) with
           | Some n, Some d -> fits n && d <= small_max
           | _ -> false)

module O = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) x y = not (equal x y)
  let ( < ) x y = compare x y < 0
  let ( <= ) x y = compare x y <= 0
  let ( > ) x y = compare x y > 0
  let ( >= ) x y = compare x y >= 0
end

module Eps = struct
  type rat = t

  (* Aliases for the plain-rational operations shadowed below. *)
  let rzero = zero
  let rone = one
  let radd = add
  let rsub = sub
  let rneg = neg
  let rmul = mul
  let rcompare = compare
  let ris_zero = is_zero
  let rpp = pp

  type nonrec t = { std : t; eps : t }

  let zero = { std = rzero; eps = rzero }
  let one = { std = rone; eps = rzero }
  let epsilon = { std = rzero; eps = rone }
  let of_rat r = { std = r; eps = rzero }
  let make std eps = { std; eps }
  let add x y = { std = radd x.std y.std; eps = radd x.eps y.eps }
  let sub x y = { std = rsub x.std y.std; eps = rsub x.eps y.eps }
  let neg x = { std = rneg x.std; eps = rneg x.eps }
  let scale c x = { std = rmul c x.std; eps = rmul c x.eps }

  let compare x y =
    let c = rcompare x.std y.std in
    if c <> 0 then c else rcompare x.eps y.eps

  let equal x y = compare x y = 0
  let min x y = if compare x y <= 0 then x else y
  let max x y = if compare x y >= 0 then x else y
  let is_nonneg x = compare x zero >= 0
  let standardize_with e x = radd x.std (rmul e x.eps)

  let pp fmt x =
    if ris_zero x.eps then rpp fmt x.std
    else Format.fprintf fmt "%a + %a\xc2\xb7\xce\xb5" rpp x.std rpp x.eps
end
