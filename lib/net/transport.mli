(** Byte-stream transports with deadlines: the layer that makes a
    network connection look like the pipe pair the shard protocol grew
    up on.

    A {!t} is a bidirectional byte stream — a pipe pair to a child
    process, a connected TCP socket, or a connected Unix-domain
    socket — with deadline-bounded reads and writes driven by
    {!Mclock.now}.  The frame protocol above this layer
    ([Dist.Frame]) never learns which it is talking over: framing,
    CRC validation, heartbeats and retry policy are identical on
    every transport, which is what keeps sharded reports
    byte-identical to serial ones no matter where the workers run.

    Nothing here retries: a timeout or a peer reset surfaces as
    {!Timeout} or [0]/[Unix_error] and the caller (the supervisor's
    endpoint registry) decides whether to reconnect.  Deadlines are
    absolute {!Mclock.now} values, so a caller can budget one
    deadline across several reads. *)

exception Timeout of string
(** A read, write, connect or accept missed its deadline.  The
    payload names the operation and the peer. *)

(** A dialable address.  [Tcp ("::1", 7001)] and
    [Unix_sock "/tmp/w.sock"] both serve the same protocol. *)
type addr = Tcp of string * int | Unix_sock of string

val addr_to_string : addr -> string
(** ["host:port"] / ["unix:PATH"] — inverse of {!addr_of_string}. *)

val addr_of_string : string -> (addr, string) result
(** Parse ["host:port"] or ["unix:PATH"].  Hostnames resolve at
    connect time, not here; the port must be in [1..65535]. *)

type t
(** A connected bidirectional byte stream. *)

val peer : t -> string
(** Human-readable peer name, for diagnostics ("pipe", the address,
    or the accepted peer). *)

val of_pipe : read_fd:Unix.file_descr -> write_fd:Unix.file_descr -> t
(** Wrap the classic pipe pair to a child process. *)

val of_fd : Unix.file_descr -> peer:string -> t
(** Wrap an already-connected socket (or socketpair end). *)

val connect : ?deadline:float -> addr -> (t, string) result
(** Dial [addr], non-blocking, bounded by [deadline] ({!Mclock.now}
    scale; default 5 s from now).  [Error] covers refusal, timeout,
    and resolution failure — connect errors are data to the retry
    policy above, never exceptions. *)

type listener

val listen : ?backlog:int -> addr -> (listener, string) result
(** Bind and listen.  For [Unix_sock] a stale socket file is
    unlinked first.  [Tcp] binds with [SO_REUSEADDR]. *)

val listener_fd : listener -> Unix.file_descr
(** For [select]-style readiness polling alongside other fds. *)

val bound_addr : listener -> addr
(** The actual bound address — resolves port 0 to the kernel's
    choice, which is how tests get collision-free TCP ports. *)

val accept : ?deadline:float -> listener -> (t, string) result
(** Accept one connection; [Error "timeout"] when the deadline
    passes first (default: block). *)

val close_listener : listener -> unit

val read : ?deadline:float -> t -> Bytes.t -> int -> int -> int
(** [read t buf pos len]: one read of up to [len] bytes, waiting for
    readability until [deadline] (default: block).  [0] = EOF.
    @raise Timeout when the deadline passes with nothing readable.
    @raise Unix.Unix_error as [Unix.read] does. *)

val readable_fd : t -> Unix.file_descr
(** The fd to [select] on for incoming bytes. *)

val write : ?deadline:float -> t -> string -> unit
(** Write the whole string, waiting for writability before each
    chunk.  @raise Timeout if the peer stops draining before the
    deadline; @raise Unix.Unix_error on a reset. *)

val close : t -> unit
(** Idempotent; closes both directions. *)
