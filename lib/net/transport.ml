(* Byte-stream transports with deadlines.  See transport.mli. *)

exception Timeout of string

type addr = Tcp of string * int | Unix_sock of string

let addr_to_string = function
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p
  | Unix_sock p -> "unix:" ^ p

let addr_of_string (s : string) : (addr, string) result =
  let s = String.trim s in
  if s = "" then Error "empty address"
  else if String.length s > 5 && String.sub s 0 5 = "unix:" then begin
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then Error "unix: address needs a path" else Ok (Unix_sock path)
  end
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "address %S: expected host:port or unix:PATH" s)
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 1 && p <= 65535 ->
            if host = "" then Error (Printf.sprintf "address %S: empty host" s)
            else Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "address %S: bad port %S" s port))

type t = {
  t_read : Unix.file_descr;
  t_write : Unix.file_descr;  (** = [t_read] for sockets *)
  t_peer : string;
  mutable t_closed : bool;
}

let peer t = t.t_peer
let readable_fd t = t.t_read

let of_pipe ~read_fd ~write_fd =
  { t_read = read_fd; t_write = write_fd; t_peer = "pipe"; t_closed = false }

let of_fd fd ~peer = { t_read = fd; t_write = fd; t_peer = peer; t_closed = false }

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let close t =
  if not t.t_closed then begin
    t.t_closed <- true;
    close_quiet t.t_read;
    if t.t_write <> t.t_read then close_quiet t.t_write
  end

let obs name args = if Obs.on () then Obs.instant "net" name args

(* Wait until [fd] is ready in direction [dir], or the deadline
   passes.  [None] deadline blocks.  EINTR restarts with the
   remaining budget — deadlines are absolute, so this cannot extend
   the wait. *)
let rec wait_ready ~dir ~deadline ~what fd =
  let tmo =
    match deadline with
    | None -> -1.0 (* select: block *)
    | Some d ->
        let left = d -. Mclock.now () in
        if left <= 0.0 then raise (Timeout what) else left
  in
  let r, w = match dir with `R -> ([ fd ], []) | `W -> ([], [ fd ]) in
  match Unix.select r w [] tmo with
  | [], [], [] -> raise (Timeout what)
  | _ -> ()
  | exception Unix.Unix_error (EINTR, _, _) -> wait_ready ~dir ~deadline ~what fd

let read ?deadline t buf pos len =
  wait_ready ~dir:`R ~deadline ~what:("read from " ^ t.t_peer) t.t_read;
  let rec go () =
    match Unix.read t.t_read buf pos len with
    | n -> n
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> 0
  in
  go ()

let write ?deadline t s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    wait_ready ~dir:`W ~deadline ~what:("write to " ^ t.t_peer) t.t_write;
    match Unix.write_substring t.t_write s !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (EAGAIN, _, _) -> ()
  done

(* ------------------------------------------------------------------ *)
(* Dialing *)

let sockaddr_of (a : addr) : (Unix.socket_domain * Unix.sockaddr, string) result =
  match a with
  | Unix_sock path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | ip -> Ok (Unix.PF_INET, Unix.ADDR_INET (ip, port))
      | exception _ -> (
          match Unix.getaddrinfo host (string_of_int port) [ AI_SOCKTYPE SOCK_STREAM ] with
          | { ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ ->
              Ok (Unix.PF_INET, Unix.ADDR_INET (ip, port))
          | _ -> Error (Printf.sprintf "cannot resolve %S" host)))

let default_connect_timeout = 5.0

let connect ?deadline (a : addr) : (t, string) result =
  let deadline =
    match deadline with
    | Some d -> d
    | None -> Mclock.now () +. default_connect_timeout
  in
  match sockaddr_of a with
  | Error e -> Error e
  | Ok (dom, sa) -> (
      let fd = Unix.socket ~cloexec:true dom SOCK_STREAM 0 in
      Unix.set_nonblock fd;
      let peer = addr_to_string a in
      let fail msg =
        close_quiet fd;
        obs "connect-fail" [ ("peer", Obs.S peer); ("why", Obs.S msg) ];
        Error (Printf.sprintf "connect %s: %s" peer msg)
      in
      let finish () =
        (* non-blocking connect completion: writable, then check
           SO_ERROR — a refused connection is writable too *)
        match
          wait_ready ~dir:`W ~deadline:(Some deadline) ~what:("connect " ^ peer) fd
        with
        | exception Timeout _ -> fail "timeout"
        | () -> (
            match Unix.getsockopt_error fd with
            | Some e -> fail (Unix.error_message e)
            | None ->
                Unix.clear_nonblock fd;
                obs "connect" [ ("peer", Obs.S peer) ];
                Ok (of_fd fd ~peer))
      in
      match Unix.connect fd sa with
      | () ->
          Unix.clear_nonblock fd;
          obs "connect" [ ("peer", Obs.S peer) ];
          Ok (of_fd fd ~peer)
      | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) ->
          finish ()
      | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e))

(* ------------------------------------------------------------------ *)
(* Listening *)

type listener = { l_fd : Unix.file_descr; l_addr : addr; mutable l_closed : bool }

let listener_fd l = l.l_fd

let listen ?(backlog = 16) (a : addr) : (listener, string) result =
  match sockaddr_of a with
  | Error e -> Error e
  | Ok (dom, sa) -> (
      let fd = Unix.socket ~cloexec:true dom SOCK_STREAM 0 in
      (match a with
      | Tcp _ -> Unix.setsockopt fd SO_REUSEADDR true
      | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ()));
      match
        Unix.bind fd sa;
        Unix.listen fd backlog
      with
      | () ->
          let bound =
            match (a, Unix.getsockname fd) with
            | Tcp (h, _), Unix.ADDR_INET (_, p) -> Tcp (h, p)
            | _ -> a
          in
          obs "listen" [ ("addr", Obs.S (addr_to_string bound)) ];
          Ok { l_fd = fd; l_addr = bound; l_closed = false }
      | exception Unix.Unix_error (e, _, _) ->
          close_quiet fd;
          Error
            (Printf.sprintf "listen %s: %s" (addr_to_string a)
               (Unix.error_message e)))

let bound_addr l = l.l_addr

let accept ?deadline (l : listener) : (t, string) result =
  match wait_ready ~dir:`R ~deadline ~what:"accept" l.l_fd with
  | exception Timeout _ -> Error "timeout"
  | () -> (
      match Unix.accept ~cloexec:true l.l_fd with
      | fd, sa ->
          let peer =
            match sa with
            | Unix.ADDR_INET (ip, p) ->
                Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) p
            | Unix.ADDR_UNIX _ -> addr_to_string l.l_addr
          in
          obs "accept" [ ("peer", Obs.S peer) ];
          Ok (of_fd fd ~peer)
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let close_listener l =
  if not l.l_closed then begin
    l.l_closed <- true;
    close_quiet l.l_fd;
    match l.l_addr with
    | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end
