(** Worker-endpoint registry: provisioning state for a fleet of
    remote workers.

    The registry owns everything about {e where} workers live and
    {e how healthy} they are; it knows nothing about the frame
    protocol or the work being sharded.  Each endpoint walks a small
    health machine:

    {v
      Connecting --connected--> Ready --error--> Suspect
          ^                                        |
          |        backoff expired, budget left    |
          +----------------------------------------+
                                 budget exhausted --> Dead
    v}

    - {e Connecting}: a dial may be in flight, or is due once
      [ep_not_before] passes.
    - {e Ready}: a live connection is serving frames.
    - {e Suspect}: the last connection died (refused, EOF, corrupt
      stream, heartbeat kill); a reconnect is scheduled after the
      same splitmix64-jittered exponential backoff the supervisor
      uses for unit retries, keyed on (endpoint, attempt) — fully
      deterministic per history.
    - {e Dead}: the reconnect budget is spent; the endpoint's leased
      unit (if any) has been re-leased and it will never be dialed
      again this run.

    Leases tie unit ids to endpoints so that an endpoint death can
    hand exactly its in-flight unit back ({!release}); the merge
    consumes units in unit order regardless, so lease history never
    shows in the report — only in the Obs trace.

    Dealing is {e capacity-weighted}: {!deal_order} ranks ready
    endpoints by declared weight (descending, then endpoint id), so
    a box advertised as [host:port*4] is offered work before a
    [*1] peer whenever both are idle.  Weights shape wall-clock
    only, never output. *)

type health = Connecting | Ready | Suspect | Dead

let health_name = function
  | Connecting -> "connecting"
  | Ready -> "ready"
  | Suspect -> "suspect"
  | Dead -> "dead"

type endpoint = {
  ep_id : int;
  ep_addr : Transport.addr;
  ep_weight : int;
  mutable ep_health : health;
  mutable ep_attempts : int;  (** connect attempts so far *)
  mutable ep_not_before : float;  (** backoff gate, {!Mclock.now} scale *)
  mutable ep_budget : int;  (** remaining dial attempts *)
  mutable ep_lease : int;  (** leased unit id, [-1] = none *)
  mutable ep_disconnects : int;  (** lifetime connection losses *)
}

type t = { eps : endpoint array }

(* Same splitmix64 finalizer as the supervisor's unit-retry jitter,
   keyed on (endpoint, attempt): reconnects of one endpoint spread
   out, identically on every run of the same history. *)
let jitter ~ep ~attempt =
  let open Int64 in
  let z = add (of_int ((ep * 999_983) + attempt)) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  let frac = to_float (logand z 0xFFFFFFL) /. 16_777_216.0 in
  (frac -. 0.5) /. 2.0

let backoff_base = 0.05
let backoff_cap = 2.0

let backoff ~ep ~attempt =
  let exp = backoff_base *. (2.0 ** float_of_int (max 0 (attempt - 1))) in
  min backoff_cap exp *. (1.0 +. jitter ~ep ~attempt)

let obs name (e : endpoint) extra =
  if Obs.on () then
    Obs.instant "net" name
      (( "ep", Obs.I e.ep_id )
       :: ("addr", Obs.S (Transport.addr_to_string e.ep_addr))
       :: extra)

let default_budget = 8

let make ?(budget = default_budget) (addrs : (Transport.addr * int) list) : t =
  {
    eps =
      Array.of_list
        (List.mapi
           (fun i (addr, weight) ->
             {
               ep_id = i;
               ep_addr = addr;
               ep_weight = max 1 weight;
               ep_health = Connecting;
               ep_attempts = 0;
               ep_not_before = 0.0;
               ep_budget = max 1 budget;
               ep_lease = -1;
               ep_disconnects = 0;
             })
           addrs);
  }

(** Parse a [--workers] list: comma-separated addresses, each with an
    optional [*WEIGHT] capacity suffix ([10.0.0.2:7001*4]). *)
let parse_workers (s : string) : ((Transport.addr * int) list, string) result =
  let items =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  if items = [] then Error "--workers: empty endpoint list"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest -> (
          let addr_s, weight =
            match String.rindex_opt item '*' with
            | Some i -> (
                let w = String.sub item (i + 1) (String.length item - i - 1) in
                match int_of_string_opt w with
                | Some w when w >= 1 -> (String.sub item 0 i, w)
                | _ -> (item, 1) (* not a weight suffix; let the parse fail *))
            | None -> (item, 1)
          in
          match Transport.addr_of_string addr_s with
          | Ok a -> go ((a, weight) :: acc) rest
          | Error e -> Error e)
    in
    go [] items

let get (t : t) i = t.eps.(i)
let count (t : t) = Array.length t.eps

(** Any endpoint that might still serve (not Dead)? *)
let alive (t : t) = Array.exists (fun e -> e.ep_health <> Dead) t.eps

(** Endpoints due for a dial: Connecting or Suspect, past their
    backoff gate, with budget left.  In id order. *)
let due (t : t) ~now : endpoint list =
  Array.to_list t.eps
  |> List.filter (fun e ->
         (match e.ep_health with Connecting | Suspect -> true | Ready | Dead -> false)
         && e.ep_not_before <= now && e.ep_budget > 0)

(** Note a dial attempt starting (burns budget, counts the attempt). *)
let dialing (e : endpoint) =
  e.ep_attempts <- e.ep_attempts + 1;
  e.ep_budget <- e.ep_budget - 1

let mark_ready (e : endpoint) =
  e.ep_health <- Ready;
  obs "ep-ready" e []

(** The endpoint's connection failed or died.  Returns the unit id it
    was leasing ([-1] if idle) — the caller re-queues it (re-lease).
    Schedules the next dial with jittered backoff, or transitions to
    Dead when the budget is gone. *)
let mark_lost (e : endpoint) ~why : int =
  let lease = e.ep_lease in
  e.ep_lease <- -1;
  if e.ep_health = Ready then e.ep_disconnects <- e.ep_disconnects + 1;
  if e.ep_budget <= 0 then begin
    e.ep_health <- Dead;
    obs "ep-dead" e [ ("why", Obs.S why) ]
  end
  else begin
    e.ep_health <- Suspect;
    e.ep_not_before <- Mclock.now () +. backoff ~ep:e.ep_id ~attempt:e.ep_attempts;
    obs "ep-suspect" e [ ("why", Obs.S why) ]
  end;
  lease

let lease (e : endpoint) ~unit_id =
  e.ep_lease <- unit_id;
  obs "lease" e [ ("unit", Obs.I unit_id) ]

let unlease (e : endpoint) = e.ep_lease <- -1

(** Ready endpoints in dealing order: weight descending, then id —
    a deterministic order, and one that offers work to the biggest
    boxes first. *)
let deal_order (t : t) : endpoint list =
  Array.to_list t.eps
  |> List.filter (fun e -> e.ep_health = Ready)
  |> List.stable_sort (fun a b ->
         match compare b.ep_weight a.ep_weight with
         | 0 -> compare a.ep_id b.ep_id
         | c -> c)

(** One-line fleet summary for stderr diagnostics. *)
let summary (t : t) : string =
  String.concat " "
    (Array.to_list
       (Array.map
          (fun e ->
            Printf.sprintf "%d:%s:%s" e.ep_id
              (Transport.addr_to_string e.ep_addr)
              (health_name e.ep_health))
          t.eps))
