(** Structured Byzantine strategies (the nemesis palette) against
    Algorithm 1 and the lock-step/EIG layer.

    A strategy name rides in fuzz repro lines as the payload of
    {!Sim.Byzantine}; {!of_string} is the registry the generator and
    validators dispatch on.  All strategies are deterministic (the
    random-state one draws from a pure hash of its seed), never message
    themselves outside the honest pattern, and post at most
    [nprocs - 1] messages per receipt — so campaigns stay
    byte-replayable and byzantine processes cannot starve the event
    budget. *)

type t =
  | Silent  (** receives but never sends; wire name [""] *)
  | Equivocator
      (** two-faced: mirrors ticks to even peers, lags odd peers, each
          per-peer stream monotone via {!Core.Clock_sync.peer_view}; on the
          lock-step layer forges round payloads per destination.  Wire
          name ["eq"]. *)
  | Lagger of int  (** echoes ticks [k] behind; ["lag<k>"], [k >= 1] *)
  | Rusher of int  (** floods ticks ahead; ["rush<k>"], [k >= 1] *)
  | Mimic of int
      (** honest for its first [k] receipts, then equivocates;
          ["mim<k>"] *)
  | Chaotic of int
      (** pseudo-random ticks/payloads to pseudo-random peer subsets
          from a pure hash; ["rnd<seed>"] *)

val to_string : t -> string
val of_string : string -> t option

val of_fault : Sim.fault -> t option
(** The strategy behind a {!Sim.Byzantine} fault, if its name parses. *)

val fault : t -> Sim.fault
(** [Byzantine (to_string t)]. *)

val palette : t list
(** The strategies the generator samples from. *)

val clock : f:int -> t -> (Core.Clock_sync.state, Core.Clock_sync.msg) Sim.algorithm
(** The strategy against Algorithm 1 ([f] parameterizes the honest
    phase of {!Mimic}). *)

val lockstep :
  t ->
  f:int ->
  xi:Rat.t ->
  inner:('rs, 'rm) Core.Lockstep.round_algo ->
  forge:(self:int -> round:int -> dst:int -> 'rm) ->
  (('rs, 'rm) Core.Lockstep.state, 'rm Core.Lockstep.msg) Sim.algorithm
(** The strategy against Algorithm 2 (and whatever round algorithm
    rides on it): wraps the honest merged algorithm over [inner] and
    tampers with its output — payloads replaced per destination by
    [forge] (equivocation), ticks shifted (lagger/rusher), sends
    dropped or jittered (chaotic). *)

val eig_forge : nprocs:int -> self:int -> round:int -> dst:int -> (int list * int) list
(** The EIG payload forger behind the n = 3f agreement witness: round-0
    value 1 to everyone, then per-destination-parity level claims.  At
    [n = 3, f = 1] with correct inputs (0, 1) the recursive majority
    resolves to different decisions at the two correct processes. *)
