open Core

(** Structured Byzantine strategies (the nemesis palette) against
    Algorithm 1 and the lock-step/EIG layer.

    Each strategy is serializable (its name rides in fuzz repro lines
    as the payload of [Sim.Byzantine]) and comes in two flavours: a
    clock-workload algorithm masquerading as {!Clock_sync.state}, and a
    lock-step wrapper that keeps the honest Algorithm 1/2 message
    pattern but tampers with ticks or round payloads.

    Design constraints shared by all strategies:
    - no strategy messages itself outside the honest pattern (a
      self-loop would flood the run with byzantine-only events and
      starve everyone of scheduler budget);
    - per-receipt output is bounded by [nprocs - 1] messages, so a
      byzantine process can never post unboundedly more than a correct
      one;
    - everything is deterministic — {!Chaotic} draws from a pure hash
      of its seed and the receipt, never from global randomness — so
      campaigns replay byte-identically. *)

type t =
  | Silent  (** receives but never sends (the historical default) *)
  | Equivocator
      (** two-faced ticks: mirrors received ticks back to even-numbered
          peers (corroborating their advance quorum) while lagging
          odd-numbered peers by one, each per-peer stream kept monotone
          via {!Clock_sync.peer_view}.  At [n = 3f] the mirror side can
          pump a victim's clock without any second correct process —
          the engine of the resilience-boundary witnesses.  On the
          lock-step layer it keeps ticks honest and forges round
          payloads per destination. *)
  | Lagger of int  (** echoes every tick [k] behind what it heard *)
  | Rusher of int  (** floods ticks up to [k] ahead (two-faced per peer) *)
  | Mimic of int
      (** runs the honest algorithm for its first [k] receipts, then
          defects to equivocation *)
  | Chaotic of int
      (** random-state: pseudo-random ticks/payloads to pseudo-random
          peer subsets, driven by a pure hash of the given seed *)

let to_string = function
  | Silent -> ""
  | Equivocator -> "eq"
  | Lagger k -> "lag" ^ string_of_int k
  | Rusher k -> "rush" ^ string_of_int k
  | Mimic k -> "mim" ^ string_of_int k
  | Chaotic s -> "rnd" ^ string_of_int s

let of_string s =
  let num prefix =
    let lp = String.length prefix in
    if String.length s > lp && String.sub s 0 lp = prefix then
      match int_of_string_opt (String.sub s lp (String.length s - lp)) with
      | Some k when k >= 0 -> Some k
      | _ -> None
    else None
  in
  match s with
  | "" -> Some Silent
  | "eq" -> Some Equivocator
  | _ -> (
      match num "lag" with
      | Some k when k >= 1 -> Some (Lagger k)
      | Some _ -> None
      | None -> (
          match num "rush" with
          | Some k when k >= 1 -> Some (Rusher k)
          | Some _ -> None
          | None -> (
              match num "mim" with
              | Some k -> Some (Mimic k)
              | None -> (
                  match num "rnd" with Some k -> Some (Chaotic k) | None -> None))))

let of_fault = function Sim.Byzantine name -> of_string name | _ -> None
let fault t = Sim.Byzantine (to_string t)

let palette = [ Silent; Equivocator; Lagger 2; Rusher 4; Mimic 3; Chaotic 1 ]

(* Pure deterministic hash (boost-style combine, masked to 30 bits so
   it is identical on every platform). *)
let mix seed xs =
  List.fold_left
    (fun h x -> (h lxor (x + 0x9e3779b9 + (h lsl 6) + (h lsr 2))) land 0x3FFFFFFF)
    (seed land 0x3FFFFFFF) xs

let others ~self ~nprocs =
  List.filter (fun d -> d <> self) (List.init nprocs Fun.id)

(* ------------------------------------------------------------------ *)
(* Clock workload (Algorithm 1) *)

(* Send a per-peer monotone, two-faced tick burst derived from the
   received tick [t]: mirror [t] to even peers, [t - 1] to odd ones. *)
let equivocate ~self ~nprocs s t =
  let s, rev =
    List.fold_left
      (fun (s, acc) d ->
        let raw = if d land 1 = 0 then t else max 0 (t - 1) in
        let v = max raw (Clock_sync.peer_view_tick s d) in
        ( Clock_sync.record_peer_view s d v,
          { Sim.dst = d; payload = Clock_sync.Tick v } :: acc ))
      (s, [])
      (others ~self ~nprocs)
  in
  (s, List.rev rev)

let chaotic_burst ~self ~nprocs seed ~nrecv ~sender ~t =
  let h = mix seed [ self; nrecv; sender; t ] in
  List.filter_map
    (fun d ->
      if mix h [ d ] land 1 = 0 then None
      else Some { Sim.dst = d; payload = Clock_sync.Tick (mix h [ d; 1 ] mod (t + 4)) })
    (others ~self ~nprocs)

let clock ~f strat : (Clock_sync.state, Clock_sync.msg) Sim.algorithm =
  match strat with
  | Silent -> Clock_sync.byzantine_mute
  | Rusher ahead -> Clock_sync.byzantine_rusher ~ahead
  | Lagger lag ->
      {
        init =
          (fun ~self ~nprocs ->
            ( Clock_sync.initial ~f:0,
              List.map
                (fun d -> { Sim.dst = d; payload = Clock_sync.Tick 0 })
                (others ~self ~nprocs) ));
        step =
          (fun ~self ~nprocs s ~sender (Tick t) ->
            if sender = self then (s, [])
            else
              ( s,
                List.map
                  (fun d -> { Sim.dst = d; payload = Clock_sync.Tick (max 0 (t - lag)) })
                  (others ~self ~nprocs) ));
      }
  | Equivocator ->
      {
        init = (fun ~self ~nprocs -> equivocate ~self ~nprocs (Clock_sync.initial ~f:0) 0);
        step =
          (fun ~self ~nprocs s ~sender (Tick t) ->
            if sender = self then (s, []) else equivocate ~self ~nprocs s t);
      }
  | Mimic k ->
      let honest = Clock_sync.algorithm ~f in
      {
        init = honest.init;
        step =
          (fun ~self ~nprocs s ~sender (Tick t as m) ->
            if List.length s.Clock_sync.receipt_log < k then
              honest.step ~self ~nprocs s ~sender m
            else if sender = self then (s, [])
            else equivocate ~self ~nprocs s t);
      }
  | Chaotic seed ->
      {
        init =
          (fun ~self ~nprocs ->
            ( Clock_sync.initial ~f:0,
              chaotic_burst ~self ~nprocs seed ~nrecv:0 ~sender:self ~t:0 ));
        step =
          (fun ~self ~nprocs s ~sender (Tick t) ->
            if sender = self then (s, [])
            else
              let nrecv = List.length s.Clock_sync.receipt_log + 1 in
              let s =
                { s with Clock_sync.receipt_log = (sender, t) :: s.Clock_sync.receipt_log }
              in
              (s, chaotic_burst ~self ~nprocs seed ~nrecv ~sender ~t));
      }

(* ------------------------------------------------------------------ *)
(* Lock-step / EIG workload (Algorithm 2 and consensus on top) *)

let lockstep (type rs rm) strat ~f ~xi ~(inner : (rs, rm) Lockstep.round_algo)
    ~(forge : self:int -> round:int -> dst:int -> rm) :
    ((rs, rm) Lockstep.state, rm Lockstep.msg) Sim.algorithm =
  let base = Lockstep.algorithm ~f ~xi inner in
  let p = Lockstep.phase_length ~xi in
  let round_of_tick tick = if tick mod p = 0 then Some (tick / p) else None in
  let forge_payloads ~self sends =
    List.map
      (fun ({ Sim.dst; payload } as send) ->
        match (payload.Lockstep.round_payload, round_of_tick payload.Lockstep.tick) with
        | Some _, Some round when dst <> self ->
            {
              send with
              Sim.payload =
                { payload with Lockstep.round_payload = Some (forge ~self ~round ~dst) };
            }
        | _ -> send)
      sends
  in
  let shift_ticks delta sends =
    List.map
      (fun { Sim.dst; payload } ->
        { Sim.dst; payload = { payload with Lockstep.tick = max 0 (payload.Lockstep.tick + delta) } })
      sends
  in
  let transform ~self st sends =
    match strat with
    | Silent -> []
    | Equivocator -> forge_payloads ~self sends
    | Lagger lag -> shift_ticks (-lag) sends
    | Rusher ahead -> shift_ticks ahead sends
    | Mimic k ->
        if List.length st.Lockstep.cs.Clock_sync.receipt_log < k then sends
        else forge_payloads ~self sends
    | Chaotic seed ->
        List.filter_map
          (fun ({ Sim.dst; payload } as send) ->
            let h = mix seed [ self; dst; payload.Lockstep.tick ] in
            match h land 3 with
            | 0 -> None
            | 1 -> (
                match
                  (payload.Lockstep.round_payload, round_of_tick payload.Lockstep.tick)
                with
                | Some _, Some round ->
                    Some
                      {
                        send with
                        Sim.payload =
                          {
                            payload with
                            Lockstep.round_payload = Some (forge ~self ~round ~dst);
                          };
                      }
                | _ -> Some send)
            | 2 ->
                Some
                  { send with Sim.payload = { payload with Lockstep.tick = payload.Lockstep.tick + 1 } }
            | _ -> Some send)
          sends
  in
  {
    init =
      (fun ~self ~nprocs ->
        let st, sends = base.init ~self ~nprocs in
        (st, transform ~self st sends));
    step =
      (fun ~self ~nprocs st ~sender m ->
        let st', sends = base.step ~self ~nprocs st ~sender m in
        (st', transform ~self st' sends));
  }

(* The EIG payload forger behind the n = 3f agreement witness: claim
   value 1 in round 0 to everyone, then relay, for every process [q], a
   level-[round] claim whose value is the destination's parity — so
   each correct process's tree is tilted toward its own index.  At
   [n = 3, f = 1] with correct inputs (0, 1) this makes the recursive
   majority resolve to 0 at process 0 and 1 at process 1 (hand-checked
   disagreement; the symmetric variant without the round-0 asymmetry is
   absorbed by EIG's default-0 tiebreak). *)
let eig_forge ~nprocs ~self:_ ~round ~dst =
  if round = 0 then [ ([], 1) ]
  else
    List.init nprocs (fun q ->
        (List.init round (fun i -> (q + i) mod nprocs), dst land 1))
