(* See the interface for the contract.  Implementation notes:

   - the enabled flag is one Atomic.t read on the guarded path;
   - each domain owns a ring buffer reached through Domain.DLS; the
     buffer carries the current scope and both sequence counters, so
     emission is entirely domain-local;
   - capture sessions are numbered by a generation counter: a buffer
     whose generation is stale is reset and re-registered (one mutexed
     list append per domain per session) on its first emission, which
     also lets buffers of long-dead pool domains be recognised and
     skipped at drain time. *)

type arg = I of int | S of string | B of bool

type kind = K_span_begin | K_span_end | K_instant | K_counter of int

type event = {
  ev_cat : string;
  ev_name : string;
  ev_kind : kind;
  ev_scope : int;
  ev_seq : int;
  ev_args : (string * arg) list;
  ev_wall : float;
  ev_dom : int;
}

let dummy_event =
  {
    ev_cat = "";
    ev_name = "";
    ev_kind = K_instant;
    ev_scope = -1;
    ev_seq = 0;
    ev_args = [];
    ev_wall = 0.0;
    ev_dom = 0;
  }

type buf = {
  mutable bf_evs : event array;  (* grows by doubling up to bf_cap *)
  mutable bf_next : int;  (* total events ever emitted this session *)
  mutable bf_cap : int;
  mutable bf_gen : int;  (* capture session this buffer belongs to *)
  mutable bf_reg : int;  (* registration index within the session *)
  mutable bf_scope : int;  (* -1 = ambient *)
  mutable bf_sseq : int;  (* next seq within bf_scope *)
  mutable bf_aseq : int;  (* next ambient seq *)
  mutable bf_mute : int;  (* {!muted} nesting depth; > 0 silences [on] *)
}

let enabled = Atomic.make false
let generation = Atomic.make 0
let cap_setting = Atomic.make (1 lsl 20)
let registry : buf list ref = ref []
let registry_lock = Mutex.create ()

let key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        bf_evs = [||];
        bf_next = 0;
        bf_cap = 0;
        bf_gen = -1;
        bf_reg = 0;
        bf_scope = -1;
        bf_sseq = 0;
        bf_aseq = 0;
        bf_mute = 0;
      })

(* The mute depth is checked only behind the enabled flag, so the
   disabled hot path stays one atomic read. *)
let on () = Atomic.get enabled && (Domain.DLS.get key).bf_mute = 0

let muted f =
  let b = Domain.DLS.get key in
  b.bf_mute <- b.bf_mute + 1;
  Fun.protect
    ~finally:(fun () ->
      let b = Domain.DLS.get key in
      b.bf_mute <- b.bf_mute - 1)
    f

(* First emission of a domain in a session: reset the counters and
   register the buffer — the only locked operation on the hot path,
   once per domain per session. *)
let adopt b gen =
  b.bf_next <- 0;
  b.bf_scope <- -1;
  b.bf_sseq <- 0;
  b.bf_aseq <- 0;
  b.bf_cap <- Atomic.get cap_setting;
  if Array.length b.bf_evs > b.bf_cap then b.bf_evs <- [||];
  Mutex.lock registry_lock;
  b.bf_reg <- List.length !registry;
  registry := b :: !registry;
  Mutex.unlock registry_lock;
  b.bf_gen <- gen

let get_buf () =
  let b = Domain.DLS.get key in
  let gen = Atomic.get generation in
  if b.bf_gen <> gen then adopt b gen;
  b

let append b e =
  let len = Array.length b.bf_evs in
  if b.bf_next < len then begin
    b.bf_evs.(b.bf_next) <- e;
    b.bf_next <- b.bf_next + 1
  end
  else if len < b.bf_cap then begin
    (* grow towards the cap *)
    let len' = min b.bf_cap (max 256 (2 * len)) in
    let evs = Array.make len' dummy_event in
    Array.blit b.bf_evs 0 evs 0 len;
    b.bf_evs <- evs;
    b.bf_evs.(b.bf_next) <- e;
    b.bf_next <- b.bf_next + 1
  end
  else begin
    (* ring full: overwrite the oldest *)
    b.bf_evs.(b.bf_next mod b.bf_cap) <- e;
    b.bf_next <- b.bf_next + 1
  end

let emit cat name kind args =
  let b = get_buf () in
  let scope, seq =
    if b.bf_scope >= 0 then begin
      let s = b.bf_sseq in
      b.bf_sseq <- s + 1;
      (b.bf_scope, s)
    end
    else begin
      let s = b.bf_aseq in
      b.bf_aseq <- s + 1;
      (-1, s)
    end
  in
  append b
    {
      ev_cat = cat;
      ev_name = name;
      ev_kind = kind;
      ev_scope = scope;
      ev_seq = seq;
      ev_args = args;
      ev_wall = Mclock.now ();
      ev_dom = (Domain.self () :> int);
    }

let span_begin cat name args = emit cat name K_span_begin args
let span_end cat name args = emit cat name K_span_end args
let instant cat name args = emit cat name K_instant args
let counter cat name args v = emit cat name (K_counter v) args

let with_scope id f =
  if not (on ()) then f ()
  else begin
    if id < 0 then invalid_arg "Obs.with_scope: negative scope id";
    let b = get_buf () in
    let saved_scope = b.bf_scope and saved_seq = b.bf_sseq in
    b.bf_scope <- id;
    b.bf_sseq <- 0;
    Fun.protect
      ~finally:(fun () ->
        let b = get_buf () in
        b.bf_scope <- saved_scope;
        b.bf_sseq <- saved_seq)
      f
  end

(* ------------------------------------------------------------------ *)
(* Capture sessions *)

type trace = { t_events : event array; t_dropped : int }

let start ?(capacity = 1 lsl 20) () =
  if capacity < 256 then invalid_arg "Obs.start: capacity < 256";
  Atomic.set cap_setting capacity;
  Mutex.lock registry_lock;
  registry := [];
  Mutex.unlock registry_lock;
  Atomic.incr generation;
  Atomic.set enabled true

let drain () =
  Atomic.set enabled false;
  let gen = Atomic.get generation in
  Mutex.lock registry_lock;
  let bufs =
    List.filter (fun b -> b.bf_gen = gen) !registry |> List.rev
    (* registration order *)
  in
  registry := [];
  Mutex.unlock registry_lock;
  let dropped = ref 0 in
  let all = ref [] in
  List.iter
    (fun b ->
      let kept = min b.bf_next b.bf_cap in
      dropped := !dropped + (b.bf_next - kept);
      let first = b.bf_next - kept in
      for i = first to b.bf_next - 1 do
        all := b.bf_evs.(i mod b.bf_cap) :: !all
      done;
      b.bf_next <- 0;
      b.bf_gen <- -1)
    bufs;
  let evs = List.rev !all in
  (* canonical order: scoped by (scope, seq); ambient events follow in
     (registration order, emission order), which the per-buffer sweep
     already produced *)
  let scoped = Array.of_list (List.filter (fun e -> e.ev_scope >= 0) evs) in
  let ambient = List.filter (fun e -> e.ev_scope < 0) evs in
  Array.sort
    (fun a b ->
      let c = compare a.ev_scope b.ev_scope in
      if c <> 0 then c else compare a.ev_seq b.ev_seq)
    scoped;
  { t_events = Array.append scoped (Array.of_list ambient); t_dropped = !dropped }

let capture ?capacity f =
  start ?capacity ();
  match f () with
  | v -> (v, drain ())
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      ignore (drain ());
      Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* Sinks *)

let filter ~cats t =
  {
    t with
    t_events = Array.of_list (List.filter (fun e -> List.mem e.ev_cat cats) (Array.to_list t.t_events));
  }

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let ph_of = function
  | K_span_begin -> "B"
  | K_span_end -> "E"
  | K_instant -> "i"
  | K_counter _ -> "C"

let add_args buf ev =
  Buffer.add_char buf '{';
  let args =
    match ev.ev_kind with
    | K_counter v -> ev.ev_args @ [ ("value", I v) ]
    | _ -> ev.ev_args
  in
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape k);
      Buffer.add_string buf "\":";
      match v with
      | I n -> Buffer.add_string buf (string_of_int n)
      | B b -> Buffer.add_string buf (if b then "true" else "false")
      | S s ->
          Buffer.add_char buf '"';
          Buffer.add_string buf (json_escape s);
          Buffer.add_char buf '"')
    args;
  Buffer.add_char buf '}'

let add_canonical buf ev =
  Printf.bprintf buf "{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"%s\",\"scope\":%d,\"seq\":%d,\"args\":"
    (json_escape ev.ev_cat) (json_escape ev.ev_name) (ph_of ev.ev_kind)
    ev.ev_scope ev.ev_seq;
  add_args buf ev;
  Buffer.add_char buf '}'

let canonical_line ev =
  let buf = Buffer.create 128 in
  add_canonical buf ev;
  Buffer.contents buf

let digest t =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun ev ->
      if ev.ev_scope >= 0 then begin
        add_canonical buf ev;
        Buffer.add_char buf '\n'
      end)
    t.t_events;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let to_jsonl ?(wall = true) buf t =
  Array.iter
    (fun ev ->
      if wall then begin
        Printf.bprintf buf "{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"%s\",\"scope\":%d,\"seq\":%d,\"args\":"
          (json_escape ev.ev_cat) (json_escape ev.ev_name) (ph_of ev.ev_kind)
          ev.ev_scope ev.ev_seq;
        add_args buf ev;
        Printf.bprintf buf ",\"wall\":%.6f,\"dom\":%d}" ev.ev_wall ev.ev_dom
      end
      else add_canonical buf ev;
      Buffer.add_char buf '\n')
    t.t_events

let to_chrome ?(wall = true) buf t =
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Array.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      let ts =
        if wall then ev.ev_wall *. 1e6 else float_of_int i
      in
      let tid = if ev.ev_scope >= 0 then ev.ev_scope else 900 + ev.ev_dom in
      Printf.bprintf buf
        "  {\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"args\":"
        (json_escape ev.ev_name) (json_escape ev.ev_cat) (ph_of ev.ev_kind) ts
        tid;
      add_args buf ev;
      Buffer.add_char buf '}')
    t.t_events;
  Printf.bprintf buf "\n],\"otherData\":{\"digest\":\"%s\",\"dropped\":%d}}\n"
    (digest t) t.t_dropped
