(** Structured tracing and metrics with deterministic digests.

    A zero-third-party-dependency observability substrate for the four
    execution engines (Sim, Fuzz.Campaign, Mc, Pool).  Design goals,
    in order:

    {ol
    {- {e Free when off.}  Tracing is compiled in but disabled by
       default; every instrumentation site is guarded by {!on} (one
       atomic load) so the disabled cost is a branch — no allocation,
       no call.  `bench obs` pins this at <3% on the Z1 campaign.}
    {- {e Lock-free when on.}  Each domain appends to its own ring
       buffer ({!Domain.DLS}); the only lock is taken once per domain
       per capture session, to register the buffer in the drain
       registry.  Tracing therefore composes with {!Pool} workers.}
    {- {e Deterministic digests.}  Events carry a {e logical}
       timestamp [(scope, seq)]: a scope is an explicit coordinate set
       by the engine (fuzz case index, mc task index) via
       {!with_scope}, and [seq] counts emissions within the scope.
       Wall-clock and domain ids are recorded but excluded from the
       canonical order and from {!digest}, so the digest of a run is
       byte-identical regardless of [--jobs] — the strongest cheap
       check that the parallel drivers are faithful to the serial
       semantics.  Events emitted outside any scope (e.g. {!Pool}
       steals, which are scheduling decisions and genuinely
       jobs-dependent) are {e ambient}: kept in traces, excluded from
       the digest.}} *)

(** Argument value attached to an event. *)
type arg = I of int | S of string | B of bool

(** Event kind, mirroring the Chrome [trace_event] phases. *)
type kind =
  | K_span_begin  (** ["B"]: a region of interest opens *)
  | K_span_end  (** ["E"]: the matching region closes *)
  | K_instant  (** ["i"]: a point event *)
  | K_counter of int  (** ["C"]: a sampled counter value *)

type event = {
  ev_cat : string;  (** subsystem: ["sim"], ["fuzz"], ["mc"], ["pool"] *)
  ev_name : string;
  ev_kind : kind;
  ev_scope : int;  (** logical scope id; [-1] = ambient *)
  ev_seq : int;  (** emission index within the scope (or the domain, if ambient) *)
  ev_args : (string * arg) list;
  ev_wall : float;
      (** monotonic clock at emission ({!Mclock.now}: arbitrary
          origin, never decreases) — never part of the digest *)
  ev_dom : int;  (** physical domain id — never part of the digest *)
}

(* ------------------------------------------------------------------ *)
(* Emission (the hot path) *)

val on : unit -> bool
(** Is tracing enabled?  Call sites must guard with
    [if Obs.on () then Obs.instant ...] so the disabled path allocates
    nothing. *)

val span_begin : string -> string -> (string * arg) list -> unit
val span_end : string -> string -> (string * arg) list -> unit
val instant : string -> string -> (string * arg) list -> unit

val counter : string -> string -> (string * arg) list -> int -> unit
(** [counter cat name args v] records a sampled counter value [v]. *)

val muted : (unit -> 'a) -> 'a
(** [muted f] runs [f] with {!on} forced to [false] on the calling
    domain (nesting-safe, exception-safe).  For engines whose
    instrumentation must stay a pure function of their {e input} while
    their {e internals} vary: the incremental model-checking engine
    replaces replayed deliveries with deliver/undo walks, so the
    simulator-level events fired during exploration are an engine
    artifact — muting them keeps the scoped stream (and hence
    {!digest}) byte-identical across engines.  Do not open a
    {!with_scope} inside a muted region: scope bookkeeping is behind
    the same guard. *)

val with_scope : int -> (unit -> 'a) -> 'a
(** [with_scope id f] runs [f] with events stamped [(id, 0), (id, 1), …].
    Scope ids must be non-negative and, within one capture session,
    used by exactly one (deterministic) unit of work — a fuzz case
    index, an mc frontier-task index — so the scoped event stream is a
    pure function of the input and digests are [--jobs]-invariant.
    Nesting saves and restores the outer scope.  When tracing is off
    this is [f ()]. *)

(* ------------------------------------------------------------------ *)
(* Capture sessions *)

type trace = {
  t_events : event array;
      (** canonical order: scoped events sorted by [(scope, seq)],
          then ambient events by (buffer registration order, seq) *)
  t_dropped : int;  (** events lost to ring overflow (0 in sane runs) *)
}

val start : ?capacity:int -> unit -> unit
(** Enable tracing and open a fresh capture session (events of any
    previous session are discarded).  [capacity] bounds each
    per-domain ring (default [2{^20}] events); on overflow the oldest
    events of that ring are overwritten and counted in {!t_dropped}.
    Must not be called while scoped work is running. *)

val drain : unit -> trace
(** Disable tracing and return the session's events.  Call after all
    traced work has joined (e.g. after [Campaign.run] returns). *)

val capture : ?capacity:int -> (unit -> 'a) -> 'a * trace
(** [capture f] = {!start}, [f ()], {!drain} — exceptions from [f]
    still disable tracing. *)

(* ------------------------------------------------------------------ *)
(* Sinks and digests *)

val filter : cats:string list -> trace -> trace
(** Keep only events whose [ev_cat] is listed. *)

val canonical_line : event -> string
(** The canonical JSONL rendering of one event: deterministic fields
    only ([cat], [name], [ph], [scope], [seq], [args]) — no wall
    clock, no domain id. *)

val digest : trace -> string
(** MD5 hex digest of the concatenated {!canonical_line}s of the
    {e scoped} events, in canonical order.  Ambient events, wall-clock
    and domain fields are excluded, so the digest is invariant under
    the worker count and under the sink format. *)

val to_jsonl : ?wall:bool -> Buffer.t -> trace -> unit
(** One JSON object per line, in canonical order.  [wall:true]
    (default) appends the nondeterministic ["wall"] and ["dom"]
    fields; [wall:false] emits exactly the {!canonical_line}s (the
    digest's preimage), which is what golden tests pin. *)

val to_chrome : ?wall:bool -> Buffer.t -> trace -> unit
(** Chrome [trace_event] JSON ([chrome://tracing], Perfetto): an
    object with [traceEvents] and an [otherData] block carrying the
    digest and drop count.  With [wall:false] timestamps are the
    canonical event index instead of microseconds. *)
