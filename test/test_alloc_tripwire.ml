(* Allocation-regression tripwire: a fixed serial fuzz campaign whose
   total allocation must stay under a checked-in ceiling.  The
   small-rational fast path and the incremental admissibility checker
   cut this campaign's allocation ~17x (see BENCH_rat.json); reverting
   either puts it far above the ceiling, so `make check` fails loudly
   instead of the regression slipping in silently.

   The ceiling is ~2.5x the measured value (0.91 GB in the reference
   container) — generous against allocator and version noise, but an
   order of magnitude below the ~15 GB the big-integer-only paths
   allocate on the same campaign. *)

let ceiling_bytes = 2_500_000_000.

let suite =
  [
    Alcotest.test_case "20-case campaign stays under allocation ceiling"
      `Slow
      (fun () ->
        let a0 = Gc.allocated_bytes () in
        let outcome = Fuzz.Campaign.run ~shrink:false ~cases:20 ~seed:1 ~jobs:1 () in
        let allocated = Gc.allocated_bytes () -. a0 in
        Alcotest.(check (list (pair string string)))
          "campaign itself is clean" []
          (List.map
             (fun f -> (f.Fuzz.Campaign.fl_oracle, f.Fuzz.Campaign.fl_detail))
             outcome.Fuzz.Campaign.cp_failures);
        if allocated > ceiling_bytes then
          Alcotest.failf
            "fixed campaign allocated %.2f GB, over the %.2f GB tripwire: \
             the small-rational fast path or the incremental checker has \
             regressed"
            (allocated /. 1e9) (ceiling_bytes /. 1e9));
  ]
