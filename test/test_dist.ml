(* Tests for lib/dist: the frame protocol (CRC detection, incremental
   parsing), the write-ahead checkpoint journal (tail-drop recovery vs
   hard header errors), the nemesis spec grammar, the monotonic clock,
   Pool.map_all_errors, and — with real worker subprocesses (this very
   test binary, re-executed via Dist.Worker.maybe_run) — the
   supervisor's determinism contract: sharded campaign reports
   byte-identical to serial ones under worker kills, corrupt frames,
   duplicate replies, divergent results, stalls, a dead worker binary
   (in-process fallback), and a supervisor kill + --resume.  Also the
   session-reuse shrinking equivalence (Fuzz.Shrink / Mc.Mc_shrink
   with and without Sched_walk produce identical results). *)

open Fuzz

let prop name count arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ------------------------------------------------------------------ *)
(* Frame protocol *)

let sample_msgs =
  [
    Dist.Frame.M_spec (String.make 300 'x');
    Dist.Frame.M_request { unit_id = 7; lo = 112; hi = 128 };
    Dist.Frame.M_heartbeat;
    Dist.Frame.M_done { unit_id = 3; blob = "some\x00binary\xffblob" };
    Dist.Frame.M_error { unit_id = 9; message = "it broke" };
    Dist.Frame.M_quit;
  ]

let frame_tests =
  [
    Alcotest.test_case "crc32 matches the IEEE reference vector" `Quick
      (fun () ->
        Alcotest.(check int32)
          "crc32(123456789)" 0xCBF43926l
          (Dist.Frame.crc32 "123456789" ~pos:0 ~len:9));
    Alcotest.test_case "all messages round-trip, fed byte by byte" `Quick
      (fun () ->
        let stream = String.concat "" (List.map Dist.Frame.encode sample_msgs) in
        let p = Dist.Frame.parser_create () in
        let got = ref [] in
        String.iter
          (fun c ->
            Dist.Frame.feed p (Bytes.make 1 c) 1;
            let rec drain () =
              match Dist.Frame.next p with
              | Ok (Some m) ->
                  got := m :: !got;
                  drain ()
              | Ok None -> ()
              | Error e -> Alcotest.failf "parser rejected clean stream: %s" e
            in
            drain ())
          stream;
        if List.rev !got <> sample_msgs then
          Alcotest.fail "byte-at-a-time parse differs from the input");
    Alcotest.test_case "a flipped payload byte is unrecoverable" `Quick
      (fun () ->
        let s = Bytes.of_string (Dist.Frame.encode (List.nth sample_msgs 3)) in
        let i = Bytes.length s - 3 in
        Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0x40));
        let p = Dist.Frame.parser_create () in
        Dist.Frame.feed p s (Bytes.length s);
        match Dist.Frame.next p with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "corrupt frame accepted");
    Alcotest.test_case "a truncated frame just waits for more" `Quick
      (fun () ->
        let s = Dist.Frame.encode (List.hd sample_msgs) in
        let half = Bytes.of_string (String.sub s 0 (String.length s / 2)) in
        let p = Dist.Frame.parser_create () in
        Dist.Frame.feed p half (Bytes.length half);
        match Dist.Frame.next p with
        | Ok None -> ()
        | Ok (Some _) -> Alcotest.fail "half a frame parsed as a message"
        | Error e -> Alcotest.failf "half a frame treated as corrupt: %s" e);
  ]

(* ------------------------------------------------------------------ *)
(* Checkpoint journal *)

let fp_a = String.make 32 'a'
let fp_b = String.make 32 'b'

let with_tmp f =
  let path = Filename.temp_file "abc_dist_test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let fresh_journal path =
  let j = Dist.Checkpoint.create ~path ~fingerprint:fp_a in
  Dist.Checkpoint.append j ~unit_id:0 ~blob:"unit-zero";
  Dist.Checkpoint.append j ~unit_id:1 ~blob:"unit-one";
  Dist.Checkpoint.close j

let checkpoint_tests =
  [
    Alcotest.test_case "round-trip, reopen-append, last record wins" `Quick
      (fun () ->
        with_tmp (fun path ->
            fresh_journal path;
            let j =
              match Dist.Checkpoint.reopen ~path ~fingerprint:fp_a with
              | Ok j -> j
              | Error e -> Alcotest.failf "reopen failed: %s" e
            in
            Dist.Checkpoint.append j ~unit_id:0 ~blob:"unit-zero-rerun";
            Dist.Checkpoint.close j;
            match Dist.Checkpoint.load ~path ~fingerprint:fp_a with
            | Error e -> Alcotest.failf "load failed: %s" e
            | Ok records ->
                Alcotest.(check (list (pair int string)))
                  "append order"
                  [ (0, "unit-zero"); (1, "unit-one"); (0, "unit-zero-rerun") ]
                  records));
    Alcotest.test_case "a truncated tail is dropped, not fatal" `Quick
      (fun () ->
        with_tmp (fun path ->
            fresh_journal path;
            let s = read_file path in
            (* cut into the middle of the second record: the classic
               kill -9 mid-append shape *)
            write_file path (String.sub s 0 (String.length s - 5));
            match Dist.Checkpoint.load ~path ~fingerprint:fp_a with
            | Error e -> Alcotest.failf "truncated tail was fatal: %s" e
            | Ok records ->
                Alcotest.(check (list (pair int string)))
                  "valid prefix survives" [ (0, "unit-zero") ] records));
    Alcotest.test_case "a flipped CRC byte drops that record and after" `Quick
      (fun () ->
        with_tmp (fun path ->
            fresh_journal path;
            let s = Bytes.of_string (read_file path) in
            (* corrupt one payload byte of the FIRST record (it starts
               right after the 40-byte header + 8-byte record header) *)
            let i = Dist.Checkpoint.header_len + 8 + 2 in
            Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 1));
            write_file path (Bytes.to_string s);
            match Dist.Checkpoint.load ~path ~fingerprint:fp_a with
            | Error e -> Alcotest.failf "corrupt record was fatal: %s" e
            | Ok records ->
                Alcotest.(check (list (pair int string)))
                  "nothing after the damage" [] records));
    Alcotest.test_case "version mismatch is a hard error" `Quick (fun () ->
        with_tmp (fun path ->
            fresh_journal path;
            let s = Bytes.of_string (read_file path) in
            Bytes.set s 7 '\002';
            write_file path (Bytes.to_string s);
            match Dist.Checkpoint.load ~path ~fingerprint:fp_a with
            | Error e ->
                if not (String.length e > 0) then Alcotest.fail "empty error"
            | Ok _ -> Alcotest.fail "foreign version accepted"));
    Alcotest.test_case "bad magic is a hard error" `Quick (fun () ->
        with_tmp (fun path ->
            fresh_journal path;
            let s = Bytes.of_string (read_file path) in
            Bytes.set s 0 'X';
            write_file path (Bytes.to_string s);
            match Dist.Checkpoint.load ~path ~fingerprint:fp_a with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "non-journal accepted"));
    Alcotest.test_case "foreign fingerprint is a hard error" `Quick (fun () ->
        with_tmp (fun path ->
            fresh_journal path;
            match Dist.Checkpoint.load ~path ~fingerprint:fp_b with
            | Error e ->
                if not (String.length e > 0) then Alcotest.fail "empty error"
            | Ok _ -> Alcotest.fail "foreign campaign's journal accepted"));
    Alcotest.test_case "reopen re-verifies the fingerprint" `Quick (fun () ->
        with_tmp (fun path ->
            fresh_journal path;
            match Dist.Checkpoint.reopen ~path ~fingerprint:fp_b with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "reopened a foreign campaign's journal"));
  ]

(* ------------------------------------------------------------------ *)
(* Nemesis spec grammar *)

let nemesis_tests =
  [
    Alcotest.test_case "parse / to_string round-trip" `Quick (fun () ->
        let spec = "kill:0@2,stall:1@1,corrupt:2@3,dup:0@1,flip:3@1,skill@4" in
        match Dist.Nemesis.parse spec with
        | Error e -> Alcotest.failf "rejected: %s" e
        | Ok n ->
            Alcotest.(check string) "round-trip" spec (Dist.Nemesis.to_string n);
            Alcotest.(check bool) "not none" false (Dist.Nemesis.is_none n));
    Alcotest.test_case "fault_for keys on (worker, ordinal)" `Quick (fun () ->
        match Dist.Nemesis.parse "kill:1@2,corrupt:1@3" with
        | Error e -> Alcotest.failf "rejected: %s" e
        | Ok n ->
            let f w o = Dist.Nemesis.fault_for n ~worker:w ~ordinal:o in
            Alcotest.(check bool) "1@2 kill" true (f 1 2 = Some Dist.Nemesis.Kill);
            Alcotest.(check bool) "1@3 corrupt" true (f 1 3 = Some Dist.Nemesis.Corrupt);
            Alcotest.(check bool) "1@1 nothing" true (f 1 1 = None);
            Alcotest.(check bool) "0@2 nothing" true (f 0 2 = None));
    Alcotest.test_case "worker_spec extracts one worker's faults" `Quick
      (fun () ->
        match Dist.Nemesis.parse "kill:0@1,stall:1@2,skill@3" with
        | Error e -> Alcotest.failf "rejected: %s" e
        | Ok n ->
            Alcotest.(check string)
              "worker 1" "stall:1@2"
              (Dist.Nemesis.worker_spec n ~worker:1);
            Alcotest.(check string)
              "worker 5 has none" ""
              (Dist.Nemesis.worker_spec n ~worker:5));
    Alcotest.test_case "malformed specs are rejected" `Quick (fun () ->
        List.iter
          (fun bad ->
            match Dist.Nemesis.parse bad with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" bad)
          [ "kill:0"; "explode:0@1"; "kill:x@1"; "kill:0@0"; "skill@1,skill@2"; "@3" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Monotonic clock *)

let mclock_tests =
  [
    Alcotest.test_case "now () advances and never goes back" `Quick (fun () ->
        (* regression: the first ratchet stored IEEE bit patterns in a
           63-bit OCaml int, which froze now () at its first value —
           every backoff deadline then lay forever in the future *)
        let t0 = Mclock.now () in
        let rec wait tries =
          if Mclock.now () > t0 then ()
          else if tries = 0 then Alcotest.fail "now () is frozen"
          else begin
            Unix.sleepf 0.002;
            wait (tries - 1)
          end
        in
        wait 100;
        let prev = ref (Mclock.now ()) in
        for _ = 1 to 1000 do
          let t = Mclock.now () in
          if t < !prev then Alcotest.fail "now () went backwards";
          prev := t
        done);
    Alcotest.test_case "epoch () is wall time" `Quick (fun () ->
        if Mclock.epoch () < 1.0e9 then Alcotest.fail "epoch () is not Unix time");
  ]

(* ------------------------------------------------------------------ *)
(* Pool.map_all_errors *)

let pool_tests =
  [
    Alcotest.test_case "map_all_errors: every task's fate, in order" `Quick
      (fun () ->
        let r =
          Pool.map_all_errors ~jobs:4 10 (fun i ->
              if i = 3 then failwith "three"
              else if i = 7 then failwith "seven"
              else i * i)
        in
        Alcotest.(check int) "length" 10 (Array.length r);
        Array.iteri
          (fun i res ->
            match (i, res) with
            | 3, Error (Failure m) -> Alcotest.(check string) "3" "three" m
            | 7, Error (Failure m) -> Alcotest.(check string) "7" "seven" m
            | _, Ok v -> Alcotest.(check int) "value" (i * i) v
            | _, Error e ->
                Alcotest.failf "index %d failed: %s" i (Printexc.to_string e))
          r);
    Alcotest.test_case "map_all_errors: clean run is all Ok" `Quick (fun () ->
        let r = Pool.map_all_errors ~jobs:2 5 (fun i -> i) in
        Array.iteri
          (fun i -> function
            | Ok v -> Alcotest.(check int) "value" i v
            | Error e -> Alcotest.failf "unexpected: %s" (Printexc.to_string e))
          r);
  ]

(* ------------------------------------------------------------------ *)
(* Supervisor: real worker subprocesses (this binary, re-executed) *)

let cases = 40 (* 3 units of 16: enough dispatches for the faults to land *)
let seed = 11

let serial_report =
  lazy
    (Report.render
       (Campaign.run ~oracles:Oracle.registry ~shrink:true ~jobs:1 ~cases ~seed ()))

let run_sharded ?checkpoint ?resume ?worker_exe ?respawn_budget ?heartbeat
    ?(nemesis = Dist.Nemesis.none) ~shards () =
  let cfg =
    Dist.Supervisor.make_config ?checkpoint
      ?resume:(Option.map (fun () -> true) resume)
      ?worker_exe ?respawn_budget ?heartbeat ~nemesis ~shards ()
  in
  Report.render
    (Dist.Supervisor.run_fuzz ~quiet:true cfg ~seed ~cases ~boundary:false
       ~shrink:true ~oracles:None ())

let check_identical name sharded =
  if sharded <> Lazy.force serial_report then
    Alcotest.failf "%s: sharded report differs from serial:\n%s" name sharded

let supervisor_tests =
  [
    Alcotest.test_case "sharded report identical to serial" `Slow (fun () ->
        check_identical "shards=2" (run_sharded ~shards:2 ()));
    Alcotest.test_case "identical under kill/corrupt/dup/flip nemeses" `Slow
      (fun () ->
        List.iter
          (fun spec ->
            match Dist.Nemesis.parse spec with
            | Error e -> Alcotest.failf "bad spec %s: %s" spec e
            | Ok nemesis ->
                check_identical spec (run_sharded ~shards:2 ~nemesis ()))
          [ "kill:0@1"; "corrupt:1@1"; "dup:0@1"; "flip:1@1"; "trunc:0@2" ]);
    Alcotest.test_case "identical across a stall + heartbeat kill" `Slow
      (fun () ->
        match Dist.Nemesis.parse "stall:0@1" with
        | Error e -> Alcotest.failf "bad spec: %s" e
        | Ok nemesis ->
            check_identical "stall"
              (run_sharded ~shards:2 ~nemesis ~heartbeat:1.0 ()));
    Alcotest.test_case "dead worker binary degrades to in-process" `Slow
      (fun () ->
        check_identical "fallback"
          (run_sharded ~shards:2 ~worker_exe:"/nonexistent/abc-worker"
             ~respawn_budget:2 ()));
    Alcotest.test_case "twice-divergent shard is a named hard error" `Slow
      (fun () ->
        (* every worker flips every result: each flip quarantines its
           sender, and with enough respawn budget some unit's re-run
           diverges a second time — which must not be papered over by
           picking one of the two answers *)
        let nemesis =
          {
            Dist.Nemesis.worker_faults =
              List.concat_map
                (fun w ->
                  List.map (fun o -> (w, o, Dist.Nemesis.Flip)) [ 1; 2; 3; 4 ])
                [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ];
            supervisor_kill = None;
          }
        in
        match run_sharded ~shards:1 ~respawn_budget:10 ~nemesis () with
        | _ -> Alcotest.fail "divergent campaign produced a report"
        | exception Dist.Supervisor.Dist_error e ->
            let contains needle =
              let nh = String.length e and nn = String.length needle in
              let rec go i =
                i + nn <= nh && (String.sub e i nn = needle || go (i + 1))
              in
              go 0
            in
            if not (contains "shard " && contains "replay") then
              Alcotest.failf "uninformative divergence error: %s" e);
    Alcotest.test_case "supervisor kill then --resume reproduces the report"
      `Slow (fun () ->
        with_tmp (fun path ->
            (match Dist.Nemesis.parse "skill@1" with
            | Error e -> Alcotest.failf "bad spec: %s" e
            | Ok nemesis -> (
                match run_sharded ~shards:2 ~checkpoint:path ~nemesis () with
                | _ -> Alcotest.fail "nemesis failed to kill the supervisor"
                | exception Dist.Nemesis.Supervisor_killed 1 -> ()
                | exception Dist.Nemesis.Supervisor_killed n ->
                    Alcotest.failf "killed after %d units, wanted 1" n));
            check_identical "resume"
              (run_sharded ~shards:2 ~checkpoint:path ~resume:() ())));
    Alcotest.test_case "sharded mc report identical to serial" `Slow (fun () ->
        let case =
          {
            Gen.c_seed = 1;
            c_nprocs = 3;
            c_faults = Array.make 3 Sim.Correct;
            c_xi = Rat.of_ints 2 1;
            c_sched = Gen.S_async { max_delay = Rat.one };
            c_workload = Gen.W_clock;
            c_max_events = 5;
            c_plan = [];
            c_boundary = false;
            c_schedule = [];
          }
        in
        let serial = Mc.Mc_report.render ~stats:false (Mc.Driver.run case) in
        let cfg = Dist.Supervisor.make_config ~shards:2 () in
        let sharded =
          Mc.Mc_report.render ~stats:false
            (Dist.Supervisor.run_mc ~quiet:true cfg ~dpor:true
               ~incremental:true ~tt:true ~frontier:2 case)
        in
        Alcotest.(check string) "mc report" serial sharded);
  ]

(* ------------------------------------------------------------------ *)
(* Session-reuse shrinking equivalence (Sched_walk vs stateless) *)

(* A synthetic oracle whose verdict depends on the run, so shrinking
   actually exercises the evaluation path. *)
let syn_oracle =
  {
    Oracle.name = "syn-delivered";
    theorem = "test-only: fails when anything was delivered";
    check =
      (fun ctx ->
        if Gen.delivered_of_run ctx.Oracle.run >= 1 then Oracle.Fail "delivered"
        else Oracle.Pass);
  }

let witness_line =
  "abc1;s=1;n=3;f=C,C,Beq;xi=3/2;w=clock;d=async:1;e=20;b=1;sch=0.0.0.6.0.2.5.1.6.2.6.4.6.7.8.8.9.10.10.11"

let shrink_equivalence_tests =
  [
    prop "session-reuse shrinking = stateless shrinking" 12
      QCheck.(
        make
          Gen.(
            pair (int_range 0 5000)
              (list_size (int_range 1 30) (int_range 0 10))))
      (fun (s, sched) ->
        let case = Fuzz.Gen.generate ~seed:s in
        let case =
          { case with Gen.c_schedule = sched; c_max_events = min case.Gen.c_max_events 16 }
        in
        match Gen.validate case with
        | Error _ -> true (* not a valid box: nothing to compare *)
        | Ok case ->
            let sh reuse =
              Shrink.shrink ~session_reuse:reuse ~oracles:[ syn_oracle ]
                ~oracle:"syn-delivered" case
            in
            let a = sh true and b = sh false in
            if
              Replay.to_string a.Shrink.shrunk <> Replay.to_string b.Shrink.shrunk
              || a.Shrink.steps <> b.Shrink.steps
              || a.Shrink.evaluations <> b.Shrink.evaluations
            then
              QCheck.Test.fail_reportf
                "paths diverge on %s:@.reuse %s (%d steps, %d evals)@.fresh %s \
                 (%d steps, %d evals)"
                (Replay.to_string case)
                (Replay.to_string a.Shrink.shrunk)
                a.Shrink.steps a.Shrink.evaluations
                (Replay.to_string b.Shrink.shrunk)
                b.Shrink.steps b.Shrink.evaluations
            else true);
    Alcotest.test_case "mc witness shrinks identically both ways" `Quick
      (fun () ->
        match Replay.of_string witness_line with
        | Error e -> Alcotest.failf "witness rejected: %s" e
        | Ok c ->
            let sh reuse =
              Mc.Mc_shrink.shrink ~session_reuse:reuse ~oracles:Oracle.registry
                ~oracle:"boundary-precision" c
            in
            Alcotest.(check string)
              "same shrunk schedule"
              (Replay.to_string (sh true))
              (Replay.to_string (sh false)));
  ]

let suite =
  frame_tests @ checkpoint_tests @ nemesis_tests @ mclock_tests @ pool_tests
  @ supervisor_tests @ shrink_equivalence_tests
