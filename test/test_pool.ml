(* Tests for the Domain work-stealing pool and the determinism
   contract it gives the fuzz campaign: results merged in index order,
   per-case seeds a pure function of (seed, index), so a campaign
   report is byte-identical whatever the worker count. *)

let unit_tests =
  [
    Alcotest.test_case "empty task list" `Quick (fun () ->
        let r = Pool.map ~jobs:4 0 (fun _ -> assert false) in
        Alcotest.(check int) "no results" 0 (Array.length r));
    Alcotest.test_case "one task, eight workers" `Quick (fun () ->
        let r = Pool.map ~jobs:8 1 (fun i -> 10 * (i + 1)) in
        Alcotest.(check (array int)) "single result" [| 10 |] r);
    Alcotest.test_case "results come back in index order" `Quick (fun () ->
        let n = 1000 in
        let r = Pool.map ~jobs:4 n (fun i -> i * i) in
        Alcotest.(check (array int)) "i*i" (Array.init n (fun i -> i * i)) r);
    Alcotest.test_case "chunked submission covers every index" `Quick (fun () ->
        List.iter
          (fun (n, jobs, chunk) ->
            let r = Pool.map ~jobs ~chunk n (fun i -> i) in
            Alcotest.(check (array int))
              (Printf.sprintf "n=%d jobs=%d chunk=%d" n jobs chunk)
              (Array.init n (fun i -> i))
              r)
          [ (1, 3, 7); (7, 3, 2); (64, 5, 3); (13, 13, 1); (100, 2, 100) ]);
    Alcotest.test_case "task exception re-raised at join" `Quick (fun () ->
        (* two tasks raise; the smallest failing index wins, a
           deterministic choice whatever the schedule *)
        Alcotest.check_raises "smallest index wins" (Failure "three") (fun () ->
            ignore
              (Pool.map ~jobs:4 10 (fun i ->
                   if i = 3 then failwith "three";
                   if i = 7 then failwith "seven";
                   i))));
    Alcotest.test_case "fail-fast also re-raises" `Quick (fun () ->
        Alcotest.check_raises "first failure" (Failure "boom") (fun () ->
            ignore
              (Pool.map ~jobs:2 ~fail_fast:true 50 (fun i ->
                   if i = 0 then failwith "boom";
                   i))));
    Alcotest.test_case "nested submit rejected" `Quick (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Pool.map: nested submission from inside a pool task")
          (fun () ->
            ignore
              (Pool.map ~jobs:2 2 (fun _ -> Pool.map ~jobs:2 1 (fun i -> i)))));
    Alcotest.test_case "negative task count rejected" `Quick (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Pool.map: negative task count") (fun () ->
            ignore (Pool.map (-1) (fun i -> i))));
    Alcotest.test_case "stats cover every task" `Quick (fun () ->
        let _, stats = Pool.map_stats ~jobs:3 20 (fun i -> Sys.opaque_identity i) in
        Alcotest.(check int) "20 stats" 20 (Array.length stats);
        Array.iter
          (fun s ->
            Alcotest.(check bool) "wall >= 0" true (s.Pool.st_wall >= 0.0);
            Alcotest.(check bool)
              "alloc >= 0" true
              (s.Pool.st_alloc_words >= 0.0))
          stats);
  ]

(* The tentpole contract: the same campaign, byte-identical reports,
   whatever the worker count.  Runs the full oracle registry, so this
   is also an end-to-end exercise of parallel case evaluation. *)
let determinism_tests =
  [
    Alcotest.test_case "200-case campaign: jobs 1/2/8 byte-identical" `Slow
      (fun () ->
        let report jobs =
          Fuzz.Report.render
            (Fuzz.Campaign.run ~shrink:false ~cases:200 ~seed:11 ~jobs ())
        in
        let r1 = report 1 in
        Alcotest.(check string) "jobs=2 = jobs=1" r1 (report 2);
        Alcotest.(check string) "jobs=8 = jobs=1" r1 (report 8));
    Alcotest.test_case "case_seed is index-pure and spread out" `Quick (fun () ->
        (* distinct indices and nearby base seeds must not collide:
           splitmix's finalizer gives 64-bit dispersion *)
        let seen = Hashtbl.create 512 in
        for seed = 0 to 3 do
          for i = 0 to 99 do
            let s = Fuzz.Campaign.case_seed ~seed i in
            Alcotest.(check bool) "non-negative" true (s >= 0);
            if Hashtbl.mem seen s then
              Alcotest.failf "collision at seed=%d i=%d" seed i;
            Hashtbl.add seen s ()
          done
        done);
  ]

let suite = unit_tests @ determinism_tests
