(* Tests for Byzantine consensus: EIG (n > 3f) and phase queen
   (n > 4f), over the perfect synchronous executor (with two-faced
   Byzantine behaviour) and over the ABC lock-step simulation. *)

open Core

let q = Rat.of_ints

(* ------------------------------------------------------------------ *)
(* Synchronous executor runs *)

let sync_eig ~n ~f ~inputs ~behaviors =
  let algo = Consensus.Eig.algo ~f ~value:(fun p -> inputs.(p)) in
  let finals = Consensus.run_synchronous ~nprocs:n ~behaviors ~algo ~nrounds:(f + 1) in
  List.map (fun (p, st) -> (p, Consensus.Eig.decision st)) finals

let sync_queen ~n ~f ~inputs ~behaviors =
  let algo = Consensus.Queen.algo ~f ~value:(fun p -> inputs.(p)) in
  let finals =
    Consensus.run_synchronous ~nprocs:n ~behaviors ~algo ~nrounds:(2 * (f + 1))
  in
  List.map (fun (p, st) -> (p, Consensus.Queen.decision st)) finals

let correct_inputs inputs behaviors =
  List.filteri (fun p _ -> behaviors.(p) = Consensus.B_correct) (Array.to_list inputs)

(* EIG messages are (sigma, value) relays; a two-faced byzantine sends
   different fabricated trees to different destinations. *)
let two_faced_eig ~round ~dst =
  if round = 0 then Some [ ([], dst mod 2) ]
  else Some (List.init 2 (fun i -> (List.init round (fun j -> (dst + i + j) mod 7), (dst + i) mod 2)))

let two_faced_queen ~round ~dst = Some ((round + dst) mod 2)

let agree name decisions inputs =
  Alcotest.(check bool) name true (Consensus.check_agreement decisions ~inputs)

let sync_tests =
  [
    Alcotest.test_case "eig: agreement fault-free, n=4" `Quick (fun () ->
        let behaviors = Array.make 4 Consensus.B_correct in
        let inputs = [| 1; 0; 1; 1 |] in
        let d = sync_eig ~n:4 ~f:1 ~inputs ~behaviors in
        agree "agreement" d (correct_inputs inputs behaviors));
    Alcotest.test_case "eig: validity on unanimous inputs" `Quick (fun () ->
        let behaviors = Array.make 4 Consensus.B_correct in
        let inputs = [| 1; 1; 1; 1 |] in
        let d = sync_eig ~n:4 ~f:1 ~inputs ~behaviors in
        agree "validity" d (correct_inputs inputs behaviors);
        List.iter (fun (_, dec) -> Alcotest.(check (option int)) "decide 1" (Some 1) dec) d);
    Alcotest.test_case "eig: agreement with a two-faced byzantine, n=4 f=1" `Quick
      (fun () ->
        let behaviors =
          [| Consensus.B_correct; Consensus.B_correct; Consensus.B_correct;
             Consensus.B_byzantine two_faced_eig |]
        in
        let inputs = [| 0; 1; 1; 0 |] in
        let d = sync_eig ~n:4 ~f:1 ~inputs ~behaviors in
        agree "agreement" d (correct_inputs inputs behaviors));
    Alcotest.test_case "eig: n=7 f=2 with crash + byzantine" `Quick (fun () ->
        let behaviors =
          [| Consensus.B_correct; Consensus.B_correct; Consensus.B_correct;
             Consensus.B_correct; Consensus.B_correct; Consensus.B_crash 1;
             Consensus.B_byzantine two_faced_eig |]
        in
        let inputs = [| 1; 1; 0; 1; 0; 1; 0 |] in
        let d = sync_eig ~n:7 ~f:2 ~inputs ~behaviors in
        agree "agreement" d (correct_inputs inputs behaviors));
    Alcotest.test_case "queen: agreement with byzantine, n=5 f=1" `Quick (fun () ->
        let behaviors =
          [| Consensus.B_correct; Consensus.B_correct; Consensus.B_correct;
             Consensus.B_correct; Consensus.B_byzantine two_faced_queen |]
        in
        let inputs = [| 0; 1; 1; 1; 0 |] in
        let d = sync_queen ~n:5 ~f:1 ~inputs ~behaviors in
        agree "agreement" d (correct_inputs inputs behaviors));
    Alcotest.test_case "queen: validity on unanimous inputs, n=5 f=1" `Quick (fun () ->
        let behaviors =
          [| Consensus.B_correct; Consensus.B_correct; Consensus.B_correct;
             Consensus.B_correct; Consensus.B_crash 2 |]
        in
        let inputs = [| 1; 1; 1; 1; 1 |] in
        let d = sync_queen ~n:5 ~f:1 ~inputs ~behaviors in
        List.iter (fun (_, dec) -> Alcotest.(check (option int)) "decide 1" (Some 1) dec) d);
  ]

(* ------------------------------------------------------------------ *)
(* Over the ABC lock-step simulation *)

let lockstep_consensus ?(seed = 21) ?(nprocs = 4) ?(f = 1) ?(xi = q 5 2) ~inputs ~faults
    ?byz () =
  let rng = Random.State.make [| seed |] in
  let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) () in
  let algo = Consensus.Eig.algo ~f ~value:(fun p -> inputs.(p)) in
  let cfg =
    Sim.make_config ?byzantine:byz ~nprocs
      ~algorithm:(Lockstep.algorithm ~f ~xi algo)
      ~faults ~scheduler ~max_events:3000
      ~stop_when:(fun states ->
        List.for_all
          (fun p ->
            faults.(p) <> Sim.Correct
            || Consensus.Eig.decision (Lockstep.round_state states.(p)) <> None)
          (List.init nprocs Fun.id))
      ()
  in
  Sim.run cfg

let lockstep_tests =
  [
    Alcotest.test_case "eig over lock-step: fault-free agreement" `Quick (fun () ->
        let inputs = [| 1; 0; 1; 0 |] in
        let faults = Array.make 4 Sim.Correct in
        let r = lockstep_consensus ~inputs ~faults () in
        let decisions =
          List.map
            (fun p -> (p, Consensus.Eig.decision (Lockstep.round_state r.Sim.final_states.(p))))
            [ 0; 1; 2; 3 ]
        in
        Alcotest.(check bool) "all decided" true
          (List.for_all (fun (_, d) -> d <> None) decisions);
        agree "agreement" decisions (Array.to_list inputs));
    Alcotest.test_case "eig over lock-step: byzantine liar, n=4 f=1" `Quick (fun () ->
        let inputs = [| 1; 1; 1; 0 |] in
        let faults = [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Byzantine "liar" |] in
        let byz_algo =
          (* participates in clock sync but relays junk values; its
             round state must share the Eig state type *)
          let real = Consensus.Eig.algo ~f:1 ~value:(fun _ -> 0) in
          Lockstep.algorithm ~f:1 ~xi:(q 5 2)
            {
              Lockstep.r_init =
                (fun ~self ~nprocs ->
                  let st, _ = real.Lockstep.r_init ~self ~nprocs in
                  (st, [ ([], 0) ]));
              r_step =
                (fun ~self ~nprocs:_ ~round st _ ->
                  (st, List.init round (fun i -> ([ (self + i) mod 4 ], i mod 2))));
            }
        in
        let r = lockstep_consensus ~inputs ~faults ~byz:(fun _ -> byz_algo) () in
        let decisions =
          List.map
            (fun p -> (p, Consensus.Eig.decision (Lockstep.round_state r.Sim.final_states.(p))))
            [ 0; 1; 2 ]
        in
        Alcotest.(check bool) "all correct decided" true
          (List.for_all (fun (_, d) -> d <> None) decisions);
        agree "agreement + validity" decisions [ 1; 1; 1 ];
        List.iter
          (fun (_, d) -> Alcotest.(check (option int)) "decide 1" (Some 1) d)
          decisions);
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100000)

let property_tests =
  [
    prop "eig agreement across random inputs and byzantine strategies" 40 arb_seed
      (fun seed ->
        let inputs = Array.init 4 (fun p -> (seed lsr p) land 1) in
        let behaviors =
          [| Consensus.B_correct; Consensus.B_correct; Consensus.B_correct;
             Consensus.B_byzantine
               (fun ~round ~dst ->
                 if (seed + round + dst) mod 3 = 0 then None
                 else if round = 0 then Some [ ([], (seed lsr dst) land 1) ]
                 else
                   Some
                     [ (List.init round (fun j -> (dst + j) mod 5), (seed lsr dst) land 1) ]);
          |]
        in
        let d = sync_eig ~n:4 ~f:1 ~inputs ~behaviors in
        Consensus.check_agreement d ~inputs:(correct_inputs inputs behaviors));
    prop "queen agreement across random inputs, n=5" 40 arb_seed (fun seed ->
        let inputs = Array.init 5 (fun p -> (seed lsr p) land 1) in
        let behaviors =
          [| Consensus.B_correct; Consensus.B_correct; Consensus.B_correct;
             Consensus.B_correct;
             Consensus.B_byzantine (fun ~round ~dst -> Some ((seed + round + dst) land 1));
          |]
        in
        let d = sync_queen ~n:5 ~f:1 ~inputs ~behaviors in
        Consensus.check_agreement d ~inputs:(correct_inputs inputs behaviors));
    prop "eig over lock-step across seeds" 6 arb_seed (fun seed ->
        let inputs = Array.init 4 (fun p -> (seed lsr p) land 1) in
        let faults = Array.make 4 Sim.Correct in
        let r = lockstep_consensus ~seed ~inputs ~faults () in
        let decisions =
          List.map
            (fun p -> (p, Consensus.Eig.decision (Lockstep.round_state r.Sim.final_states.(p))))
            [ 0; 1; 2; 3 ]
        in
        List.for_all (fun (_, d) -> d <> None) decisions
        && Consensus.check_agreement decisions ~inputs:(Array.to_list inputs));
  ]

let base_suite = sync_tests @ lockstep_tests @ property_tests

(* ------------------------------------------------------------------ *)
(* Phase King (n > 3f, constant-size messages) *)

let sync_king ~n ~f ~inputs ~behaviors =
  let algo = Consensus.King.algo ~f ~value:(fun p -> inputs.(p)) in
  let finals =
    Consensus.run_synchronous ~nprocs:n ~behaviors ~algo ~nrounds:(3 * (f + 1))
  in
  List.map (fun (p, st) -> (p, Consensus.King.decision st)) finals

let king_tests =
  [
    Alcotest.test_case "king: agreement fault-free, n=4" `Quick (fun () ->
        let behaviors = Array.make 4 Consensus.B_correct in
        let inputs = [| 1; 0; 1; 0 |] in
        let d = sync_king ~n:4 ~f:1 ~inputs ~behaviors in
        agree "agreement" d (correct_inputs inputs behaviors));
    Alcotest.test_case "king: validity on unanimous inputs, n=4 f=1" `Quick (fun () ->
        let behaviors = Array.make 4 Consensus.B_correct in
        let inputs = [| 1; 1; 1; 1 |] in
        let d = sync_king ~n:4 ~f:1 ~inputs ~behaviors in
        List.iter (fun (_, dec) -> Alcotest.(check (option int)) "decide 1" (Some 1) dec) d);
    Alcotest.test_case "king: byzantine king cannot break unanimity" `Quick (fun () ->
        (* process 0 is the phase-1 king AND byzantine (two-faced);
           persistence must protect the unanimous value 1 *)
        let behaviors =
          [| Consensus.B_byzantine two_faced_queen; Consensus.B_correct;
             Consensus.B_correct; Consensus.B_correct |]
        in
        let inputs = [| 0; 1; 1; 1 |] in
        let d = sync_king ~n:4 ~f:1 ~inputs ~behaviors in
        agree "agreement" d (correct_inputs inputs behaviors);
        List.iter (fun (_, dec) -> Alcotest.(check (option int)) "decide 1" (Some 1) dec) d);
  ]

let king_property_tests =
  [
    prop "king agreement across random inputs and byzantine positions" 60 arb_seed
      (fun seed ->
        let byz_pos = seed mod 4 in
        let inputs = Array.init 4 (fun p -> (seed lsr p) land 1) in
        let behaviors =
          Array.init 4 (fun p ->
              if p = byz_pos then
                Consensus.B_byzantine
                  (fun ~round ~dst ->
                    if (seed + round + dst) mod 4 = 0 then None
                    else Some ((seed lsr (round + dst)) land 1))
              else Consensus.B_correct)
        in
        let d = sync_king ~n:4 ~f:1 ~inputs ~behaviors in
        Consensus.check_agreement d ~inputs:(correct_inputs inputs behaviors));
    prop "king agreement n=7 f=2 with two byzantine processes" 40 arb_seed (fun seed ->
        let inputs = Array.init 7 (fun p -> (seed lsr p) land 1) in
        let behaviors =
          Array.init 7 (fun p ->
              if p = seed mod 7 || p = (seed + 3) mod 7 then
                Consensus.B_byzantine
                  (fun ~round ~dst -> Some ((seed + round + dst) land 1))
              else Consensus.B_correct)
        in
        let f = 2 in
        let algo = Consensus.King.algo ~f ~value:(fun p -> inputs.(p)) in
        let finals =
          Consensus.run_synchronous ~nprocs:7 ~behaviors ~algo ~nrounds:(3 * (f + 1))
        in
        let d = List.map (fun (p, st) -> (p, Consensus.King.decision st)) finals in
        Consensus.check_agreement d ~inputs:(correct_inputs inputs behaviors));
  ]

let suite = base_suite @ king_tests @ king_property_tests
