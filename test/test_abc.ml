(* Tests for Core.Abc: admissibility wrappers and the exact maximum
   relevant-cycle ratio (parametric search), cross-validated against
   the exhaustive enumeration oracle. *)

open Core
open Execgraph

let xi a b = Rat.of_ints a b

let unit_tests =
  [
    Alcotest.test_case "params validation" `Quick (fun () ->
        Alcotest.check_raises "Xi = 1 rejected" (Invalid_argument "Abc.make_params: need Xi > 1")
          (fun () -> ignore (Abc.make_params Rat.one));
        let p = Abc.make_params (xi 3 2) in
        Alcotest.(check bool) "stores" true (Rat.equal p.Abc.xi (xi 3 2)));
    Alcotest.test_case "max ratio of fig1 is 5/4" `Quick (fun () ->
        let g = Test_execgraph.build_fig1 () in
        match Abc.max_relevant_ratio g with
        | None -> Alcotest.fail "expected a ratio"
        | Some r -> Alcotest.(check bool) "5/4" true (Rat.equal r (xi 5 4)));
    Alcotest.test_case "max ratio of fig3 is 2" `Quick (fun () ->
        let g = Test_execgraph.build_fig ~reply_after_psi:true () in
        match Abc.max_relevant_ratio g with
        | None -> Alcotest.fail "expected a ratio"
        | Some r -> Alcotest.(check bool) "2" true (Rat.equal r (xi 2 1)));
    Alcotest.test_case "graph with only non-relevant cycles: None" `Quick (fun () ->
        (* a single self-message cycle *)
        let g = Graph.create ~nprocs:1 in
        let a = Graph.add_event g ~proc:0 in
        let b = Graph.add_event g ~proc:0 in
        ignore (Graph.add_message g ~src:a.Event.id ~dst:b.Event.id);
        Alcotest.(check bool) "None" true (Abc.max_relevant_ratio g = None));
    Alcotest.test_case "empty graph: None" `Quick (fun () ->
        let g = Graph.create ~nprocs:2 in
        ignore (Graph.add_event g ~proc:0);
        Alcotest.(check bool) "None" true (Abc.max_relevant_ratio g = None));
    Alcotest.test_case "threshold string" `Quick (fun () ->
        let g = Test_execgraph.build_fig1 () in
        Alcotest.(check string) "5/4" "5/4" (Abc.admissibility_threshold g));
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000)

let property_tests =
  [
    prop "max ratio agrees with enumeration oracle" 120 arb_seed (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:14 ~max_delay:3 ~fanout:2 in
        let fast = Abc.max_relevant_ratio g in
        let slow = Util.max_relevant_ratio g in
        match (fast, slow) with
        | None, None -> true
        | None, Some r -> Rat.compare r Rat.one <= 0 (* <=1 collapses to None *)
        | Some _, None -> false
        | Some a, Some b -> Rat.equal a b);
    prop "admissible strictly above the max ratio, violating at it" 60 arb_seed
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g = Util.random_execution rng ~nprocs:3 ~max_events:16 ~max_delay:4 ~fanout:2 in
        match Abc.max_relevant_ratio g with
        | None -> Abc_check.is_admissible g ~xi:(xi 101 100)
        | Some r ->
            let just_above = Rat.add r (Rat.of_ints 1 1000) in
            Abc_check.is_admissible g ~xi:just_above
            && (Rat.compare r Rat.one <= 0 || not (Abc_check.is_admissible g ~xi:r)));
  ]

(* Differential tests: the admissible-Xi front-end cross-checked
   against the parametric search it wraps, and the Theorem-11
   decomposition checked to keep every cycle under the aggregate ratio
   bound of Corollary 1.  Both run on random executions so they probe
   shapes the hand-built figures do not. *)
let differential_tests =
  [
    prop "admissible_xi agrees with the parametric search" 80 arb_seed
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g =
          Util.random_execution rng
            ~nprocs:(2 + (seed mod 5))
            ~max_events:40 ~max_delay:4 ~fanout:3
        in
        let fallback = xi 3 2 in
        let x = Abc.admissible_xi g ~fallback in
        (* whatever is returned must actually be admissible ... *)
        Abc_check.is_admissible g ~xi:x
        &&
        (* ... and must sit exactly where the exact threshold says *)
        match Abc.max_relevant_ratio g with
        | None -> Rat.equal x fallback
        | Some r ->
            if Rat.compare fallback r > 0 then Rat.equal x fallback
            else Rat.compare x r > 0 && Rat.compare x (Rat.add r Rat.one) <= 0);
    prop "decomposition keeps every cycle under the graph threshold" 40 arb_seed
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let g =
          Util.random_execution rng ~nprocs:3 ~max_events:18 ~max_delay:3
            ~fanout:2
        in
        let relevant =
          List.filter (fun c -> c.Cycle.relevant) (Cycle.enumerate g)
        in
        match relevant with
        | [] -> true (* nothing to decompose; vacuously fine *)
        | _ ->
            let xi_adm = Abc.admissible_xi g ~fallback:(xi 3 2) in
            (* weighted family (weights 1 and 2) over a bounded prefix,
               so the Eulerian re-split stays cheap *)
            let inputs =
              List.filteri (fun i _ -> i < 8) relevant
              |> List.mapi (fun i c -> (1 + (i mod 2), c))
            in
            let outputs = Cyclespace.decompose g inputs in
            Cyclespace.verify_decomposition g ~inputs ~outputs
            && Cyclespace.corollary1_holds
                 (Cyclespace.sum_vector g inputs)
                 ~xi:xi_adm
            && List.for_all (fun c -> Cycle.satisfies_abc c ~xi:xi_adm) outputs);
  ]

let suite = unit_tests @ property_tests @ differential_tests
