(* Differential tests for the incremental admissibility checker: on
   randomly growing executions, [Abc_check.Checker.is_admissible] after
   every growth step must agree with the scratch [Abc_check.check] on
   the same graph, and speculative extensions must answer exactly what
   the scratch checker says about a graph rebuilt with the speculated
   events committed — then leave no trace once aborted. *)

(* A growth script: the op log of one scenario, replayable into a
   fresh graph so the scratch checker can be consulted at any point. *)
type op = E of int (* add_event ~proc *) | M of int * int (* add_message *)

let replay ~nprocs ops =
  let g = Execgraph.Graph.create ~nprocs in
  List.iter
    (function
      | E proc -> ignore (Execgraph.Graph.add_event g ~proc)
      | M (src, dst) -> ignore (Execgraph.Graph.add_message g ~src ~dst))
    (List.rev ops);
  g

let random_xi st =
  let b = 1 + Random.State.int st 3 in
  let a = 1 + Random.State.int st 3 in
  Rat.of_ints (b + a) b

(* One scenario: grow a graph in random batches, querying the
   incremental checker after each batch and comparing with scratch. *)
let run_scenario seed =
  let st = Random.State.make [| seed |] in
  let nprocs = 2 + Random.State.int st 3 in
  let xi = random_xi st in
  let g = Execgraph.Graph.create ~nprocs in
  let checker = Execgraph.Abc_check.Checker.create g ~xi in
  let ops = ref [] in
  let batches = 1 + Random.State.int st 6 in
  let ok = ref true in
  for _ = 1 to batches do
    (* grow: a few events, then a few messages between existing events *)
    let events = 1 + Random.State.int st 4 in
    for _ = 1 to events do
      let proc = Random.State.int st nprocs in
      ignore (Execgraph.Graph.add_event g ~proc);
      ops := E proc :: !ops
    done;
    let n = Execgraph.Graph.event_count g in
    let messages = Random.State.int st 4 in
    for _ = 1 to messages do
      (* forward in id order: execution graphs are DAGs *)
      if n >= 2 then begin
        let dst = 1 + Random.State.int st (n - 1) in
        let src = Random.State.int st dst in
        ignore (Execgraph.Graph.add_message g ~src ~dst);
        ops := M (src, dst) :: !ops
      end
    done;
    let inc = Execgraph.Abc_check.Checker.is_admissible checker in
    let scratch = Execgraph.Abc_check.is_admissible g ~xi in
    if inc <> scratch then ok := false
  done;
  !ok

(* One speculation scenario: grow a committed prefix, then repeatedly
   speculate batches of events/messages, comparing [spec_admissible]
   against the scratch verdict on the committed-plus-speculated graph,
   aborting, and checking the committed verdict is undisturbed. *)
let run_spec_scenario seed =
  let st = Random.State.make [| seed |] in
  let nprocs = 2 + Random.State.int st 3 in
  let xi = random_xi st in
  let g = Execgraph.Graph.create ~nprocs in
  let checker = Execgraph.Abc_check.Checker.create g ~xi in
  let ops = ref [] in
  for _ = 1 to 2 + Random.State.int st 5 do
    let proc = Random.State.int st nprocs in
    ignore (Execgraph.Graph.add_event g ~proc);
    ops := E proc :: !ops
  done;
  let n0 = Execgraph.Graph.event_count g in
  for _ = 1 to Random.State.int st 3 do
    if n0 >= 2 then begin
      let dst = 1 + Random.State.int st (n0 - 1) in
      let src = Random.State.int st dst in
      ignore (Execgraph.Graph.add_message g ~src ~dst);
      ops := M (src, dst) :: !ops
    end
  done;
  let ok = ref true in
  let committed = Execgraph.Abc_check.is_admissible g ~xi in
  for _ = 1 to 1 + Random.State.int st 3 do
    Execgraph.Abc_check.Checker.spec_begin checker;
    let spec_ops = ref [] in
    let next_id = ref (Execgraph.Graph.event_count g) in
    for _ = 1 to 1 + Random.State.int st 3 do
      let proc = Random.State.int st nprocs in
      let id = Execgraph.Abc_check.Checker.spec_add_event checker ~proc in
      if id <> !next_id then ok := false;
      incr next_id;
      spec_ops := E proc :: !spec_ops;
      (* each speculative event receives one message, like a real
         delivery; sender is any earlier (real or speculative) event *)
      if id > 0 then begin
        let src = Random.State.int st id in
        Execgraph.Abc_check.Checker.spec_add_message checker ~src ~dst:id;
        spec_ops := M (src, id) :: !spec_ops
      end
    done;
    let spec = Execgraph.Abc_check.Checker.spec_admissible checker in
    let oracle =
      Execgraph.Abc_check.is_admissible
        (replay ~nprocs (!spec_ops @ !ops))
        ~xi
    in
    if spec <> oracle then ok := false;
    Execgraph.Abc_check.Checker.spec_abort checker;
    if Execgraph.Abc_check.Checker.is_admissible checker <> committed then
      ok := false
  done;
  !ok

let prop name count f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000))
       f)

let suite =
  [
    prop "incremental verdict = scratch verdict on growing graphs" 1000
      run_scenario;
    prop "speculative verdict = scratch verdict; abort restores" 1000
      run_spec_scenario;
  ]
