(* Direct unit tests for the model checker's internals, which until
   now were exercised only end-to-end: the canonicalizer's key on
   hand-built step arrays (idempotence; commuting deliveries at
   different processes collapse, same-process reorderings do not) and
   Sim.Session's wake-up gating (messages to an unbooted process are
   posted but not offered as choices until its wake-up is delivered). *)

open Fuzz

let q = Rat.of_ints

let clock_box ~nprocs ~budget =
  {
    Gen.c_seed = 1;
    c_nprocs = nprocs;
    c_faults = Array.make nprocs Sim.Correct;
    c_xi = q 2 1;
    c_sched = Gen.S_async { max_delay = Rat.one };
    c_workload = Gen.W_clock;
    c_max_events = budget;
    c_plan = [];
    c_boundary = false;
    c_schedule = [];
  }

(* Hand-built steps: a wake-up at [dst] and a delivery of the [o]-th
   envelope posted by the step at delivery index [c]. *)
let wake ~env ~dst ~first_env =
  {
    Mc.Schedule.sp_env = env;
    sp_dst = dst;
    sp_posted_at = -1;
    sp_first_env = first_env;
    sp_choice = 0;
  }

let msg ~env ~dst ~posted_at ~first_env =
  {
    Mc.Schedule.sp_env = env;
    sp_dst = dst;
    sp_posted_at = posted_at;
    sp_first_env = first_env;
    sp_choice = 0;
  }

let canon_tests =
  [
    Alcotest.test_case "key is a pure function of the steps" `Quick (fun () ->
        let steps =
          [| wake ~env:0 ~dst:0 ~first_env:2; wake ~env:1 ~dst:1 ~first_env:4 |]
        in
        Alcotest.(check string)
          "same input, same key"
          (Mc.Canon.key ~nprocs:2 steps)
          (Mc.Canon.key ~nprocs:2 steps));
    Alcotest.test_case "wake-ups delivered in either order share a key"
      `Quick (fun () ->
        (* deliveries at different processes commute: the per-process
           sequences are both ["w"], whatever the interleaving *)
        let ab =
          [| wake ~env:0 ~dst:0 ~first_env:2; wake ~env:1 ~dst:1 ~first_env:4 |]
        in
        let ba =
          [| wake ~env:1 ~dst:1 ~first_env:2; wake ~env:0 ~dst:0 ~first_env:4 |]
        in
        Alcotest.(check string)
          "commute" (Mc.Canon.key ~nprocs:2 ab) (Mc.Canon.key ~nprocs:2 ba));
    Alcotest.test_case "same-process reorderings get distinct keys" `Quick
      (fun () ->
        (* step 0 (the wake-up of p0) posts envelopes 2 and 3, both to
           p1: delivering them in the two orders is behaviourally
           different, so the keys must differ *)
        let base =
          [| wake ~env:0 ~dst:0 ~first_env:2; wake ~env:1 ~dst:1 ~first_env:4 |]
        in
        let order a b =
          Array.append base
            [|
              msg ~env:a ~dst:1 ~posted_at:0 ~first_env:4;
              msg ~env:b ~dst:1 ~posted_at:0 ~first_env:4;
            |]
        in
        let k23 = Mc.Canon.key ~nprocs:2 (order 2 3) in
        let k32 = Mc.Canon.key ~nprocs:2 (order 3 2) in
        if k23 = k32 then
          Alcotest.failf "dependent reorder collapsed: %s" k23);
    Alcotest.test_case "message identity is structural, not envelope ids"
      `Quick (fun () ->
        (* the same per-process delivery sequences reached through
           different interleavings assign different envelope ids to the
           same structural message; the keys must still agree.  Here
           p0's wake-up posts one message to p1 in both runs, but the
           wake-up order shifts the posting watermark. *)
        let run1 =
          [|
            wake ~env:0 ~dst:0 ~first_env:2;
            (* p0 posts env 2 to p1 *)
            wake ~env:1 ~dst:1 ~first_env:3;
            msg ~env:2 ~dst:1 ~posted_at:0 ~first_env:3;
          |]
        in
        let run2 =
          [|
            wake ~env:1 ~dst:1 ~first_env:2;
            wake ~env:0 ~dst:0 ~first_env:2;
            (* p0 posts env 2 to p1 — same structural message "0.0.0" *)
            msg ~env:2 ~dst:1 ~posted_at:1 ~first_env:3;
          |]
        in
        Alcotest.(check string)
          "isomorphic" (Mc.Canon.key ~nprocs:2 run1)
          (Mc.Canon.key ~nprocs:2 run2));
    Alcotest.test_case "replayed wake-up orders collapse to one key" `Quick
      (fun () ->
        (* the same commutation through the real replay machinery *)
        let case = clock_box ~nprocs:2 ~budget:2 in
        let key_of choices =
          let _, steps = Mc.Schedule.replay case choices in
          Alcotest.(check int) "two steps" 2 (Array.length steps);
          Mc.Canon.key ~nprocs:2 steps
        in
        (* [0;0] wakes p0 then p1; [1;0] wakes p1 then p0 *)
        Alcotest.(check string) "commute" (key_of [ 0; 0 ]) (key_of [ 1; 0 ]));
    Alcotest.test_case "replayed distinct third deliveries keep distinct keys"
      `Quick (fun () ->
        let case = clock_box ~nprocs:2 ~budget:3 in
        let key_of choices =
          let _, steps = Mc.Schedule.replay case choices in
          Mc.Canon.key ~nprocs:2 steps
        in
        let a = key_of [ 0; 0; 0 ] and b = key_of [ 0; 0; 1 ] in
        if a = b then Alcotest.failf "distinct deliveries collapsed: %s" a);
    Alcotest.test_case "short form is a 10-char hex prefix" `Quick (fun () ->
        let s = Mc.Canon.short "w|w" in
        Alcotest.(check int) "length" 10 (String.length s);
        String.iter
          (fun c ->
            match c with
            | '0' .. '9' | 'a' .. 'f' -> ()
            | c -> Alcotest.failf "non-hex %c" c)
          s;
        Alcotest.(check string) "stable" s (Mc.Canon.short "w|w"));
  ]

let visible_tests =
  [
    Alcotest.test_case "fresh session offers exactly the wake-ups" `Quick
      (fun () ->
        let s = Gen.open_session (clock_box ~nprocs:3 ~budget:9) in
        let r = s.Gen.ms_ready () in
        Alcotest.(check int) "three choices" 3 (List.length r);
        List.iter
          (fun (i : Sim.Session.info) ->
            Alcotest.(check bool)
              "a wake-up" true
              (i.Sim.Session.i_sender < 0))
          r);
    Alcotest.test_case "messages to unbooted processes are hidden" `Quick
      (fun () ->
        let s = Gen.open_session (clock_box ~nprocs:3 ~budget:9) in
        ignore (s.Gen.ms_deliver 0);
        (* p0 booted; its step broadcast to everyone *)
        let r = s.Gen.ms_ready () in
        List.iter
          (fun (i : Sim.Session.info) ->
            if i.Sim.Session.i_sender >= 0 then
              Alcotest.(check int)
                "real messages only to the booted process" 0
                i.Sim.Session.i_dst)
          r;
        (* the hidden messages exist: more envelopes are undelivered
           than the ready list offers *)
        let undelivered = s.Gen.ms_envelopes () - s.Gen.ms_delivered () in
        Alcotest.(check bool)
          "some posted messages are gated" true
          (List.length r < undelivered);
        (* both remaining wake-ups stay visible despite their
           destinations being unbooted: the gate is for real messages *)
        let wakes =
          List.filter (fun i -> i.Sim.Session.i_sender < 0) r
        in
        Alcotest.(check int) "wake-ups still offered" 2 (List.length wakes));
    Alcotest.test_case "delivering the wake-up reveals the queued messages"
      `Quick (fun () ->
        let s = Gen.open_session (clock_box ~nprocs:3 ~budget:9) in
        ignore (s.Gen.ms_deliver 0);
        let to_p1_before =
          List.filter
            (fun (i : Sim.Session.info) ->
              i.Sim.Session.i_sender >= 0 && i.Sim.Session.i_dst = 1)
            (s.Gen.ms_ready ())
        in
        Alcotest.(check int) "gated while unbooted" 0
          (List.length to_p1_before);
        (* find and deliver p1's wake-up *)
        let rec index k = function
          | [] -> Alcotest.fail "p1 wake-up not offered"
          | (i : Sim.Session.info) :: _
            when i.Sim.Session.i_sender < 0 && i.Sim.Session.i_dst = 1 ->
              k
          | _ :: rest -> index (k + 1) rest
        in
        ignore (s.Gen.ms_deliver (index 0 (s.Gen.ms_ready ())));
        let to_p1_after =
          List.filter
            (fun (i : Sim.Session.info) ->
              i.Sim.Session.i_sender >= 0 && i.Sim.Session.i_dst = 1)
            (s.Gen.ms_ready ())
        in
        Alcotest.(check bool)
          "revealed after boot" true
          (List.length to_p1_after > 0));
    Alcotest.test_case "gating never empties the choice set" `Quick (fun () ->
        (* no visible-emptiness deadlock: drive a session to its
           maximal point always picking the last visible choice — the
           poundings that starve wake-ups longest — and every step must
           find at least one offered message *)
        let s = Gen.open_session (clock_box ~nprocs:3 ~budget:12) in
        let steps = ref 0 in
        while not (s.Gen.ms_finished ()) do
          let m = List.length (s.Gen.ms_ready ()) in
          Alcotest.(check bool) "nonempty while unfinished" true (m > 0);
          ignore (s.Gen.ms_deliver (m - 1));
          incr steps
        done;
        Alcotest.(check int) "budget reached" 12 !steps);
  ]

let suite = canon_tests @ visible_tests
