(* Tests for the structured-tracing layer: the disabled/enabled
   contract, scope bookkeeping, ring overflow accounting, the digest's
   definition (MD5 over the scoped canonical lines in (scope, seq)
   order), sink-format invariance, and the acceptance property of the
   whole design — a fuzz campaign's and a model checker run's trace
   digests are byte-identical whatever the worker count. *)

open Fuzz

let prop name count arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let q = Rat.of_ints

let campaign_trace ~jobs ~seed ~cases =
  let (), t =
    Obs.capture (fun () ->
        ignore (Campaign.run ~shrink:false ~cases ~jobs ~seed ()))
  in
  t

let mc_box ~nprocs ~budget =
  {
    Gen.c_seed = 1;
    c_nprocs = nprocs;
    c_faults = Array.make nprocs Sim.Correct;
    c_xi = q 2 1;
    c_sched = Gen.S_async { max_delay = Rat.one };
    c_workload = Gen.W_clock;
    c_max_events = budget;
    c_plan = [];
    c_boundary = false;
    c_schedule = [];
  }

let mc_trace ~jobs =
  let o, t =
    Obs.capture (fun () -> Mc.Driver.run ~jobs (mc_box ~nprocs:2 ~budget:5))
  in
  (o, t)

let unit_tests =
  [
    Alcotest.test_case "tracing is off by default" `Quick (fun () ->
        Alcotest.(check bool) "off" false (Obs.on ()));
    Alcotest.test_case "with_scope is transparent when off" `Quick (fun () ->
        Alcotest.(check int) "result" 42 (Obs.with_scope 3 (fun () -> 42)));
    Alcotest.test_case "capture records scoped and ambient events" `Quick
      (fun () ->
        let (), t =
          Obs.capture (fun () ->
              if Obs.on () then Obs.instant "a" "ambient" [];
              Obs.with_scope 0 (fun () ->
                  if Obs.on () then begin
                    Obs.span_begin "c" "work" [ ("k", Obs.I 1) ];
                    Obs.counter "c" "ticks" [] 7;
                    Obs.span_end "c" "work" []
                  end);
              if Obs.on () then Obs.instant "a" "ambient" [])
        in
        Alcotest.(check int) "events" 5 (Array.length t.Obs.t_events);
        Alcotest.(check int) "dropped" 0 t.Obs.t_dropped;
        (* scoped events lead, in (scope, seq) order *)
        let e0 = t.Obs.t_events.(0) in
        Alcotest.(check string) "first is scoped" "work" e0.Obs.ev_name;
        Alcotest.(check int) "scope" 0 e0.Obs.ev_scope;
        Alcotest.(check int) "seq" 0 e0.Obs.ev_seq;
        let counter_line = Obs.canonical_line t.Obs.t_events.(1) in
        Alcotest.(check string)
          "counter canonical line"
          "{\"cat\":\"c\",\"name\":\"ticks\",\"ph\":\"C\",\"scope\":0,\"seq\":1,\"args\":{\"value\":7}}"
          counter_line;
        Alcotest.(check bool) "off after drain" false (Obs.on ()));
    Alcotest.test_case "nested scopes restore the outer one" `Quick (fun () ->
        let (), t =
          Obs.capture (fun () ->
              Obs.with_scope 1 (fun () ->
                  if Obs.on () then Obs.instant "x" "outer" [];
                  Obs.with_scope 2 (fun () ->
                      if Obs.on () then Obs.instant "x" "inner" []);
                  if Obs.on () then Obs.instant "x" "outer-again" []))
        in
        let tags =
          Array.to_list t.Obs.t_events
          |> List.map (fun e -> (e.Obs.ev_name, e.Obs.ev_scope, e.Obs.ev_seq))
        in
        Alcotest.(check (list (triple string int int)))
          "scope/seq assignment"
          [ ("outer", 1, 0); ("outer-again", 1, 1); ("inner", 2, 0) ]
          tags);
    Alcotest.test_case "negative scope ids rejected" `Quick (fun () ->
        let (), _t =
          Obs.capture (fun () ->
              Alcotest.check_raises "invalid"
                (Invalid_argument "Obs.with_scope: negative scope id")
                (fun () -> Obs.with_scope (-1) (fun () -> ())))
        in
        ());
    Alcotest.test_case "ring overflow keeps the newest and counts drops"
      `Quick (fun () ->
        let (), t =
          Obs.capture ~capacity:256 (fun () ->
              for i = 0 to 999 do
                if Obs.on () then Obs.instant "x" "e" [ ("i", Obs.I i) ]
              done)
        in
        Alcotest.(check int) "kept" 256 (Array.length t.Obs.t_events);
        Alcotest.(check int) "dropped" 744 t.Obs.t_dropped;
        (* ambient events keep emission order: the survivors are the
           last 256 *)
        (match t.Obs.t_events.(0).Obs.ev_args with
        | [ ("i", Obs.I i) ] -> Alcotest.(check int) "oldest survivor" 744 i
        | _ -> Alcotest.fail "unexpected args"));
    Alcotest.test_case "digest is MD5 of scoped canonical lines" `Quick
      (fun () ->
        let (), t =
          Obs.capture (fun () ->
              if Obs.on () then Obs.instant "a" "ambient" [];
              Obs.with_scope 0 (fun () ->
                  if Obs.on () then Obs.instant "c" "x" [ ("v", Obs.B true) ]))
        in
        let preimage =
          Array.to_list t.Obs.t_events
          |> List.filter (fun e -> e.Obs.ev_scope >= 0)
          |> List.map (fun e -> Obs.canonical_line e ^ "\n")
          |> String.concat ""
        in
        Alcotest.(check string)
          "definition" (Digest.to_hex (Digest.string preimage))
          (Obs.digest t));
    Alcotest.test_case "ambient events stay out of the digest" `Quick
      (fun () ->
        let scoped_only () =
          Obs.with_scope 0 (fun () ->
              if Obs.on () then Obs.instant "c" "x" [])
        in
        let (), t1 = Obs.capture scoped_only in
        let (), t2 =
          Obs.capture (fun () ->
              if Obs.on () then Obs.instant "noise" "n" [];
              scoped_only ();
              if Obs.on () then Obs.instant "noise" "n" [])
        in
        Alcotest.(check string) "same digest" (Obs.digest t1) (Obs.digest t2));
    Alcotest.test_case "filter keeps only the named categories" `Quick
      (fun () ->
        let (), t =
          Obs.capture (fun () ->
              Obs.with_scope 0 (fun () ->
                  if Obs.on () then begin
                    Obs.instant "sim" "a" [];
                    Obs.instant "fuzz" "b" [];
                    Obs.instant "sim" "c" []
                  end))
        in
        let t' = Obs.filter ~cats:[ "sim" ] t in
        Alcotest.(check int) "two sim events" 2 (Array.length t'.Obs.t_events);
        Array.iter
          (fun e -> Alcotest.(check string) "cat" "sim" e.Obs.ev_cat)
          t'.Obs.t_events);
  ]

(* The acceptance criterion: trace digests are jobs-invariant, and
   invariant under the sink format (the digest is defined on the
   event stream, not on any rendering of it — the chrome sink embeds
   the same hex string it would compute). *)
let determinism_tests =
  [
    prop "campaign digest is identical for jobs in {1, 2, 8}" 4
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 10_000))
      (fun seed ->
        let d jobs = Obs.digest (campaign_trace ~jobs ~seed ~cases:4) in
        let d1 = d 1 in
        d1 = d 2 && d1 = d 8);
    Alcotest.test_case "campaign jsonl (wall scrubbed) is byte-identical \
                        across jobs" `Quick (fun () ->
        let render jobs =
          let t = campaign_trace ~jobs ~seed:5 ~cases:3 in
          (* ambient (pool) events are jobs-dependent by design; the
             scoped stream is the deterministic artifact *)
          let t = Obs.filter ~cats:[ "sim"; "fuzz" ] t in
          let buf = Buffer.create 4096 in
          Obs.to_jsonl ~wall:false buf t;
          Buffer.contents buf
        in
        Alcotest.(check string) "bytes" (render 1) (render 8));
    Alcotest.test_case "mc digest is identical for jobs 1 and 8" `Quick
      (fun () ->
        let o1, t1 = mc_trace ~jobs:1 in
        let o8, t8 = mc_trace ~jobs:8 in
        Alcotest.(check string)
          "same report"
          (Mc.Mc_report.render o1)
          (Mc.Mc_report.render o8);
        Alcotest.(check bool)
          "trace nonempty" true
          (Array.length t1.Obs.t_events > 0);
        Alcotest.(check string) "same digest" (Obs.digest t1) (Obs.digest t8));
    Alcotest.test_case "digest survives the sink format" `Quick (fun () ->
        let t = campaign_trace ~jobs:2 ~seed:3 ~cases:2 in
        let dg = Obs.digest t in
        let chrome =
          let buf = Buffer.create 4096 in
          Obs.to_chrome ~wall:true buf t;
          Buffer.contents buf
        in
        let contains needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool)
          "chrome embeds the digest" true
          (contains (Printf.sprintf "\"digest\":\"%s\"" dg) chrome);
        (* rendering consumed nothing: the digest of the trace value
           is unchanged *)
        Alcotest.(check string) "unchanged" dg (Obs.digest t));
  ]

let suite = unit_tests @ determinism_tests
