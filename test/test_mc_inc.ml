(* The incremental exploration engine against the stateless replay
   engine: both drive the same DFS, so every output — class keys,
   representative schedules, verdicts, and the scoped Obs event stream
   — must be byte-identical, on clean boxes and under faults, plans
   and the resilience boundary, at any worker count.

   Also pinned here: the near-linear deliveries-per-execution the
   engine exists to deliver, the incremental Canon.State fingerprint
   against a from-scratch refold, and an allocation tripwire on the
   e=8 search (the per-node churn the engine removed — ready-list
   copies, env→dst tables, per-node replays — would put it right
   back over). *)

open Fuzz

let prop name count arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let q = Rat.of_ints

let clock_box ?(boundary = false) ?faults ?(plan = []) ?(nprocs = 3) ~budget
    () =
  let faults =
    match faults with Some f -> f | None -> Array.make nprocs Sim.Correct
  in
  {
    Gen.c_seed = 1;
    c_nprocs = nprocs;
    c_faults = faults;
    c_xi = q 2 1;
    c_sched = Gen.S_async { max_delay = Rat.one };
    c_workload = Gen.W_clock;
    c_max_events = budget;
    c_plan = plan;
    c_boundary = boundary;
    c_schedule = [];
  }

let boxes =
  [
    ("clean", clock_box ~budget:7 ());
    ( "crash",
      clock_box
        ~faults:[| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Crash 1 |]
        ~nprocs:4 ~budget:7 () );
    ( "plan drop+misdirect",
      clock_box ~plan:[ (3, Sim.P_drop); (5, Sim.P_misdirect 0) ] ~budget:7 ()
    );
    ( "boundary equivocator",
      { (clock_box
           ~faults:[| Sim.Correct; Sim.Correct; Byz.fault Byz.Equivocator |]
           ~budget:7 ())
        with
        Gen.c_boundary = true;
        c_xi = q 3 2;
      } );
  ]

let signature (o : Mc.Driver.outcome) =
  ( List.map
      (fun (c : Mc.Explore.class_rec) ->
        (c.Mc.Explore.cl_key, c.Mc.Explore.cl_choices))
      o.Mc.Driver.mc_classes,
    Mc.Mc_report.render_verdicts o )

let engine_tests =
  [
    Alcotest.test_case
      "replay and incremental engines agree byte-for-byte on every box"
      `Quick (fun () ->
        List.iter
          (fun (name, case) ->
            let inc =
              Mc.Driver.run ~engine:Mc.Explore.Incremental ~jobs:1 case
            in
            let rep = Mc.Driver.run ~engine:Mc.Explore.Replay ~jobs:1 case in
            if signature inc <> signature rep then
              Alcotest.failf "%s: engines disagree:\n--- incremental ---\n%s\n\
                              --- replay ---\n%s"
                name
                (Mc.Mc_report.render ~stats:false inc)
                (Mc.Mc_report.render ~stats:false rep);
            (* the whole point of the engine: deliveries near the
               schedule depth, not quadratic in it *)
            let dpe o =
              float_of_int o.Mc.Driver.mc_deliveries
              /. float_of_int (max 1 o.Mc.Driver.mc_executions)
            in
            if dpe inc > 1.5 *. float_of_int case.Gen.c_max_events then
              Alcotest.failf "%s: incremental engine replays (%.2f del/exec)"
                name (dpe inc);
            if inc.Mc.Driver.mc_undos = 0 then
              Alcotest.failf "%s: incremental engine recorded no undos" name)
          boxes);
    Alcotest.test_case "engine and jobs leave the Obs trace digest alone"
      `Quick (fun () ->
        (* the digest covers the scoped mc event stream — expansion,
           race and prune instants — so it certifies the two engines
           (and any worker count) walk the identical tree *)
        let case = clock_box ~budget:6 () in
        let digest ~engine ~jobs =
          let (), trace =
            Obs.capture (fun () ->
                ignore (Mc.Driver.run ~engine ~jobs case))
          in
          Obs.digest trace
        in
        let d = digest ~engine:Mc.Explore.Incremental ~jobs:1 in
        List.iter
          (fun (name, d') ->
            if d' <> d then
              Alcotest.failf "%s changed the trace digest (%s vs %s)" name d'
                d)
          [
            ("replay engine", digest ~engine:Mc.Explore.Replay ~jobs:1);
            ("jobs=2", digest ~engine:Mc.Explore.Incremental ~jobs:2);
            ("replay at jobs=2", digest ~engine:Mc.Explore.Replay ~jobs:2);
          ]);
  ]

(* Canon.State maintains the class fingerprint push/pop; folding the
   same steps from scratch must land on the same pair at every prefix,
   including after pops (the journal restore). *)
let fingerprint_tests =
  let arb_choices =
    QCheck.make
      ~print:(fun l -> String.concat "." (List.map string_of_int l))
      QCheck.Gen.(list_size (int_range 1 8) (int_range 0 5))
  in
  [
    prop "incremental fingerprint equals a from-scratch refold" 100
      arb_choices (fun choices ->
        let case = clock_box ~budget:8 () in
        let _, steps = Mc.Schedule.replay case choices in
        let nprocs = case.Gen.c_nprocs in
        let st = Mc.Canon.State.create ~nprocs in
        let ok = ref true in
        Array.iteri
          (fun i sp ->
            Mc.Canon.State.push st sp;
            if
              Mc.Canon.State.fingerprint st
              <> Mc.Canon.State.of_steps ~nprocs steps (i + 1)
            then ok := false)
          steps;
        (* pop halfway back and re-push: the journal must restore the
           rolling state exactly *)
        let k = Array.length steps / 2 in
        for _ = 1 to Array.length steps - k do
          Mc.Canon.State.pop st
        done;
        if Mc.Canon.State.fingerprint st <> Mc.Canon.State.of_steps ~nprocs steps k
        then ok := false;
        for i = k to Array.length steps - 1 do
          Mc.Canon.State.push st steps.(i)
        done;
        !ok
        && Mc.Canon.State.fingerprint st
           = Mc.Canon.State.of_steps ~nprocs steps (Array.length steps));
  ]

(* The e=8 search allocates ~50 MB in the reference container; the
   stateless engine's per-node replays put it over 300 MB and the
   pre-engine per-node churn (ready-list copies, env→dst Hashtbls)
   was of the same order, so a generous 3x ceiling still catches
   either regression loudly. *)
let tripwire_ceiling_bytes = 150e6

let tripwire_tests =
  [
    Alcotest.test_case "e=8 search stays under the allocation ceiling" `Slow
      (fun () ->
        let case = clock_box ~budget:8 () in
        let a0 = Gc.allocated_bytes () in
        let o = Mc.Driver.run ~oracles:[] ~dpor:true ~jobs:1 case in
        let allocated = Gc.allocated_bytes () -. a0 in
        Alcotest.(check bool)
          "the search is the expected one" true
          (o.Mc.Driver.mc_executions > 1000);
        if allocated > tripwire_ceiling_bytes then
          Alcotest.failf
            "e=8 search allocated %.0f MB, over the %.0f MB tripwire: \
             per-node allocation churn is back in the explorer"
            (allocated /. 1e6)
            (tripwire_ceiling_bytes /. 1e6));
  ]

let suite = engine_tests @ fingerprint_tests @ tripwire_tests
