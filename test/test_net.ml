(* Tests for lib/net and the socket-provisioned supervisor: address
   grammar, deadline-bounded transports (pipe, Unix-domain, TCP with
   kernel-assigned ports), the endpoint registry's health machine and
   capacity-weighted dealing, the --max-frame cap at its exact
   boundary, a qcheck fuzz of the frame decoder over real pipe and
   socket byte streams (truncation, bit flips, garbage preambles must
   round-trip or fail typed — never crash or hang), and — with real
   [abc serve] worker subprocesses (this very test binary, re-executed
   via Dist.Serve.maybe_run) — the determinism contract over sockets:
   campaigns stay byte-identical to serial under every network
   nemesis, across a forced re-lease, down the degradation ladder
   (dead endpoints -> subprocess workers -> in-process pool), and
   through a --resume mixed with --workers, which must re-verify the
   campaign fingerprint. *)

open Fuzz

let prop name count arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Address grammar *)

let addr_tests =
  [
    Alcotest.test_case "addr strings round-trip" `Quick (fun () ->
        List.iter
          (fun (s, a) ->
            (match Net.Transport.addr_of_string s with
            | Ok got when got = a -> ()
            | Ok _ -> Alcotest.failf "%S parsed to the wrong address" s
            | Error e -> Alcotest.failf "%S rejected: %s" s e);
            Alcotest.(check string) "to_string" s (Net.Transport.addr_to_string a))
          [
            ("127.0.0.1:7001", Net.Transport.Tcp ("127.0.0.1", 7001));
            ("worker-3:65535", Net.Transport.Tcp ("worker-3", 65535));
            ("unix:/tmp/w.sock", Net.Transport.Unix_sock "/tmp/w.sock");
          ]);
    Alcotest.test_case "junk addresses are rejected" `Quick (fun () ->
        List.iter
          (fun bad ->
            match Net.Transport.addr_of_string bad with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" bad)
          [ ""; "nohost"; ":7001"; "h:0"; "h:65536"; "h:port"; "unix:" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Transports: pipe, Unix-domain, TCP *)

let fresh_sock_path () =
  let p = Filename.temp_file "abc_net" ".sock" in
  (try Sys.remove p with Sys_error _ -> ());
  p

let transport_tests =
  [
    Alcotest.test_case "pipe transport round-trips both directions" `Quick
      (fun () ->
        let r1, w1 = Unix.pipe () and r2, w2 = Unix.pipe () in
        let a = Net.Transport.of_pipe ~read_fd:r1 ~write_fd:w2 in
        let b = Net.Transport.of_pipe ~read_fd:r2 ~write_fd:w1 in
        let deadline = Mclock.now () +. 5.0 in
        Net.Transport.write ~deadline a "ping";
        let buf = Bytes.create 16 in
        let n = Net.Transport.read ~deadline b buf 0 16 in
        Alcotest.(check string) "a->b" "ping" (Bytes.sub_string buf 0 n);
        Net.Transport.write ~deadline b "pong";
        let n = Net.Transport.read ~deadline a buf 0 16 in
        Alcotest.(check string) "b->a" "pong" (Bytes.sub_string buf 0 n);
        Net.Transport.close a;
        Net.Transport.close a;
        (* idempotent *)
        Net.Transport.close b);
    Alcotest.test_case "tcp: port 0 resolves, connect/accept round-trip"
      `Quick (fun () ->
        let l =
          match Net.Transport.listen (Net.Transport.Tcp ("127.0.0.1", 0)) with
          | Ok l -> l
          | Error e -> Alcotest.failf "listen: %s" e
        in
        (match Net.Transport.bound_addr l with
        | Net.Transport.Tcp (_, p) when p > 0 -> ()
        | a ->
            Alcotest.failf "port 0 did not resolve: %s"
              (Net.Transport.addr_to_string a));
        let deadline = Mclock.now () +. 5.0 in
        let c =
          match Net.Transport.connect ~deadline (Net.Transport.bound_addr l) with
          | Ok c -> c
          | Error e -> Alcotest.failf "connect: %s" e
        in
        let s =
          match Net.Transport.accept ~deadline l with
          | Ok s -> s
          | Error e -> Alcotest.failf "accept: %s" e
        in
        Net.Transport.write ~deadline c "hello over tcp";
        let buf = Bytes.create 64 in
        let n = Net.Transport.read ~deadline s buf 0 64 in
        Alcotest.(check string) "payload" "hello over tcp"
          (Bytes.sub_string buf 0 n);
        (* a read with nothing inbound must raise Timeout, quickly *)
        (match Net.Transport.read ~deadline:(Mclock.now () +. 0.05) c buf 0 8 with
        | _ -> Alcotest.fail "read past the deadline returned"
        | exception Net.Transport.Timeout _ -> ());
        Net.Transport.close c;
        Net.Transport.close s;
        Net.Transport.close_listener l);
    Alcotest.test_case "unix-domain listener accepts and serves" `Quick
      (fun () ->
        let path = fresh_sock_path () in
        let addr = Net.Transport.Unix_sock path in
        let l =
          match Net.Transport.listen addr with
          | Ok l -> l
          | Error e -> Alcotest.failf "listen: %s" e
        in
        let deadline = Mclock.now () +. 5.0 in
        let c =
          match Net.Transport.connect ~deadline addr with
          | Ok c -> c
          | Error e -> Alcotest.failf "connect: %s" e
        in
        let s =
          match Net.Transport.accept ~deadline l with
          | Ok s -> s
          | Error e -> Alcotest.failf "accept: %s" e
        in
        Net.Transport.write ~deadline s "from the listener";
        let buf = Bytes.create 64 in
        let n = Net.Transport.read ~deadline c buf 0 64 in
        Alcotest.(check string) "payload" "from the listener"
          (Bytes.sub_string buf 0 n);
        Net.Transport.close c;
        Net.Transport.close s;
        Net.Transport.close_listener l;
        try Sys.remove path with Sys_error _ -> ());
    Alcotest.test_case "connecting to a dead endpoint is an Error" `Quick
      (fun () ->
        let deadline = Mclock.now () +. 1.0 in
        (match
           Net.Transport.connect ~deadline
             (Net.Transport.Unix_sock "/tmp/abc_net_no_such_socket.sock")
         with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "connected to a nonexistent unix socket");
        match
          Net.Transport.connect ~deadline (Net.Transport.Tcp ("127.0.0.1", 1))
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "connected to a closed tcp port");
  ]

(* ------------------------------------------------------------------ *)
(* Endpoint registry: health machine, leases, weighted dealing *)

let registry_tests =
  [
    Alcotest.test_case "parse_workers: weights and rejects" `Quick (fun () ->
        (match Net.Registry.parse_workers "127.0.0.1:7001,10.0.0.2:7002*4,unix:/tmp/w.sock*2" with
        | Error e -> Alcotest.failf "rejected: %s" e
        | Ok eps ->
            Alcotest.(check (list (pair string int)))
              "addr*weight"
              [ ("127.0.0.1:7001", 1); ("10.0.0.2:7002", 4); ("unix:/tmp/w.sock", 2) ]
              (List.map (fun (a, w) -> (Net.Transport.addr_to_string a, w)) eps));
        List.iter
          (fun bad ->
            match Net.Registry.parse_workers bad with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" bad)
          [ ""; ","; "h:0"; "h:7001*x"; "h:7001*0" ]);
    Alcotest.test_case "health machine: lease handback and budget to Dead"
      `Quick (fun () ->
        let reg =
          Net.Registry.make ~budget:2
            [
              (Net.Transport.Tcp ("127.0.0.1", 7001), 1);
              (Net.Transport.Unix_sock "/tmp/w.sock", 3);
            ]
        in
        let e0 = Net.Registry.get reg 0 and e1 = Net.Registry.get reg 1 in
        let now = Mclock.now () in
        Alcotest.(check int) "both due" 2 (List.length (Net.Registry.due reg ~now));
        Net.Registry.dialing e0;
        Net.Registry.mark_ready e0;
        Net.Registry.dialing e1;
        Net.Registry.mark_ready e1;
        (* dealing is weight-descending: the *3 box is offered first *)
        Alcotest.(check (list int))
          "deal order" [ 1; 0 ]
          (List.map
             (fun e -> e.Net.Registry.ep_id)
             (Net.Registry.deal_order reg));
        Net.Registry.lease e0 ~unit_id:5;
        (* the death of a leased endpoint hands exactly its unit back *)
        Alcotest.(check int) "lease handed back" 5
          (Net.Registry.mark_lost e0 ~why:"test");
        Alcotest.(check bool) "suspect, not dead" true
          (e0.Net.Registry.ep_health = Net.Registry.Suspect);
        (* backoff gates the redial: not due now, due after the gate *)
        Alcotest.(check (list int))
          "backoff holds it" []
          (List.map (fun e -> e.Net.Registry.ep_id)
             (Net.Registry.due reg ~now:(Mclock.now ())));
        Alcotest.(check (list int))
          "due after backoff" [ 0 ]
          (List.map (fun e -> e.Net.Registry.ep_id)
             (Net.Registry.due reg ~now:(Mclock.now () +. 60.0)));
        Net.Registry.dialing e0;
        Alcotest.(check int) "idle loss leases nothing" (-1)
          (Net.Registry.mark_lost e0 ~why:"test");
        Alcotest.(check bool) "budget spent: dead" true
          (e0.Net.Registry.ep_health = Net.Registry.Dead);
        Alcotest.(check bool) "fleet still alive via e1" true
          (Net.Registry.alive reg);
        ignore (Net.Registry.mark_lost e1 ~why:"test");
        Net.Registry.dialing e1;
        ignore (Net.Registry.mark_lost e1 ~why:"test");
        Alcotest.(check bool) "all budgets spent: fleet dead" false
          (Net.Registry.alive reg));
  ]

(* ------------------------------------------------------------------ *)
(* --max-frame: the cap must reject at the exact boundary, before any
   payload allocation *)

let sample_msgs =
  [
    Dist.Frame.M_spec (String.make 300 'x');
    Dist.Frame.M_request { unit_id = 7; lo = 112; hi = 128 };
    Dist.Frame.M_heartbeat;
    Dist.Frame.M_done { unit_id = 3; blob = "some\x00binary\xffblob" };
    Dist.Frame.M_error { unit_id = 9; message = "it broke" };
    Dist.Frame.M_quit;
  ]

(* the frame header is 2 magic + 1 type + 4 length + 4 crc bytes *)
let header_bytes = 11

let max_frame_tests =
  [
    Alcotest.test_case "parser accepts at the cap, rejects one past it"
      `Quick (fun () ->
        let msg = List.hd sample_msgs in
        let enc = Dist.Frame.encode msg in
        let wire_len = String.length enc - header_bytes in
        let p = Dist.Frame.parser_create ~max_payload:wire_len () in
        Dist.Frame.feed p (Bytes.of_string enc) (String.length enc);
        (match Dist.Frame.next p with
        | Ok (Some m) when m = msg -> ()
        | Ok _ -> Alcotest.fail "frame at the cap did not parse"
        | Error e -> Alcotest.failf "frame at the cap rejected: %s" e);
        let p = Dist.Frame.parser_create ~max_payload:(wire_len - 1) () in
        Dist.Frame.feed p (Bytes.of_string enc) (String.length enc);
        match Dist.Frame.next p with
        | Error e when contains e "cap" -> ()
        | Error e -> Alcotest.failf "oversize error does not name the cap: %s" e
        | Ok _ -> Alcotest.fail "frame one past the cap accepted");
    Alcotest.test_case "a huge length prefix is rejected from the header alone"
      `Quick (fun () ->
        (* 2 GiB claimed, no payload sent: the parser must error out of
           the 11 header bytes without waiting for (or allocating) the
           claimed payload *)
        let b = Buffer.create header_bytes in
        Buffer.add_string b "AB\001";
        Buffer.add_char b '\x7f';
        Buffer.add_string b "\xff\xff\xf0";
        Buffer.add_string b "\000\000\000\000";
        let hdr = Buffer.contents b in
        let p = Dist.Frame.parser_create ~max_payload:1024 () in
        Dist.Frame.feed p (Bytes.of_string hdr) (String.length hdr);
        (match Dist.Frame.next p with
        | Error e when contains e "cap" -> ()
        | Error e -> Alcotest.failf "wrong error: %s" e
        | Ok _ -> Alcotest.fail "2 GiB length prefix accepted");
        (* and the blocking worker-side reader does the same *)
        let r, w = Unix.pipe () in
        let n = Unix.write_substring w hdr 0 (String.length hdr) in
        Alcotest.(check int) "header written" (String.length hdr) n;
        (match Dist.Frame.read_blocking ~max_payload:1024 r with
        | Error e when contains e "cap" -> ()
        | Error e -> Alcotest.failf "read_blocking wrong error: %s" e
        | Ok _ -> Alcotest.fail "read_blocking accepted a 2 GiB prefix");
        Unix.close r;
        Unix.close w);
    Alcotest.test_case "a non-positive cap is rejected up front" `Quick
      (fun () ->
        (match Dist.Frame.parser_create ~max_payload:0 () with
        | _ -> Alcotest.fail "cap 0 accepted"
        | exception Invalid_argument _ -> ());
        match Dist.Supervisor.make_config ~shards:1 ~max_frame:0 () with
        | _ -> Alcotest.fail "make_config accepted --max-frame 0"
        | exception Invalid_argument _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Frame-decoder fuzz over real transports.  Whatever the wire
   delivers — clean frames, a truncated stream, a flipped bit, a
   garbage preamble — the decoder must terminate with either the
   original messages, a typed Error, or a clean "waiting for more";
   never an exception and never an unbounded wait. *)

type wire = { wr : Net.Transport.t; rd : Net.Transport.t; fds : Unix.file_descr list }

let make_wire = function
  | `Pipe ->
      let r, w = Unix.pipe () in
      let t = Net.Transport.of_pipe ~read_fd:r ~write_fd:w in
      { wr = t; rd = t; fds = [] }
  | `Sock ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      {
        wr = Net.Transport.of_fd a ~peer:"fuzz-a";
        rd = Net.Transport.of_fd b ~peer:"fuzz-b";
        fds = [];
      }

let close_wire wi =
  Net.Transport.close wi.wr;
  Net.Transport.close wi.rd;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) wi.fds

(* Pump [data] through [transport], feeding the decoder as bytes
   arrive; returns the parsed messages and the first error, if any. *)
let decode_over transport ~await_hello data =
  let wi = make_wire transport in
  Fun.protect
    ~finally:(fun () -> close_wire wi)
    (fun () ->
      let deadline = Mclock.now () +. 10.0 in
      if data <> "" then Net.Transport.write ~deadline wi.wr data;
      let p = Dist.Frame.parser_create ~await_hello () in
      let buf = Bytes.create 4096 in
      let got = ref [] and err = ref None in
      let rec drain () =
        match Dist.Frame.next p with
        | Ok (Some m) ->
            got := m :: !got;
            drain ()
        | Ok None -> ()
        | Error e -> if !err = None then err := Some e
      in
      let rec pump remaining =
        if remaining > 0 && !err = None then begin
          let n =
            Net.Transport.read ~deadline wi.rd buf 0 (min 4096 remaining)
          in
          if n = 0 then Alcotest.fail "unexpected EOF inside the fuzz stream";
          Dist.Frame.feed p buf n;
          drain ();
          pump (remaining - n)
        end
      in
      pump (String.length data);
      drain ();
      (List.rev !got, !err))

let fuzz_arb =
  QCheck.(
    quad
      (list_of_size Gen.(int_range 1 4) (int_bound (List.length sample_msgs - 1)))
      (int_bound 3) (* 0 clean | 1 truncate | 2 flip | 3 garbage preamble *)
      small_nat small_nat)

let frame_fuzz_tests =
  [
    prop "mutated frame streams never crash the decoder (pipe + socket)" 60
      fuzz_arb
      (fun (idxs, kind, pos, byte) ->
        let msgs = List.map (List.nth sample_msgs) idxs in
        let clean = String.concat "" (List.map Dist.Frame.encode msgs) in
        let len = String.length clean in
        let await_hello = kind = 3 in
        let data =
          match kind with
          | 0 -> clean
          | 1 -> String.sub clean 0 (pos mod (len + 1))
          | 2 ->
              let b = Bytes.of_string clean in
              let i = pos mod len in
              Bytes.set b i
                (Char.chr (Char.code (Bytes.get b i) lxor (1 + (byte mod 255))));
              Bytes.to_string b
          | _ ->
              (* garbage before the preamble: an await_hello parser
                 must skip it and still deliver every message *)
              String.init
                (1 + (byte mod 48))
                (fun i -> Char.chr ((pos + (i * 7)) land 0xff))
              ^ Dist.Frame.hello ^ clean
        in
        List.for_all
          (fun transport ->
            let got, err = decode_over transport ~await_hello data in
            match kind with
            | 0 | 3 ->
                (* a clean stream round-trips exactly *)
                err = None && got = msgs
            | 1 ->
                (* a prefix of a valid stream parses a prefix and then
                   waits: truncation is never an error *)
                err = None
                && List.length got <= List.length msgs
                && got = List.filteri (fun i _ -> i < List.length got) msgs
            | _ ->
                (* a flipped byte ends in a typed error or a stalled
                   parse — and never yields the full clean sequence *)
                got <> msgs || err <> None)
          [ `Pipe; `Sock ])
  ]

(* ------------------------------------------------------------------ *)
(* Socket campaigns: real [abc serve] subprocesses (this binary,
   re-executed through Dist.Serve.maybe_run).  The contract under
   test is the ISSUE's: byte-identical reports for any endpoint set,
   disconnect history, and lease reassignment. *)

let cases = 40 (* 3 units of 16: enough dispatches for the faults to land *)
let seed = 11

let serial_report =
  lazy
    (Report.render
       (Campaign.run ~oracles:Oracle.registry ~shrink:true ~jobs:1 ~cases ~seed ()))

let run_net ?checkpoint ?resume ?worker_exe ?respawn_budget ?heartbeat
    ?(nemesis = Dist.Nemesis.none) ?(endpoints = []) ?listen ?dial_budget
    ?max_frame ?(seed = seed) ~shards () =
  let cfg =
    Dist.Supervisor.make_config ?checkpoint
      ?resume:(Option.map (fun () -> true) resume)
      ?worker_exe ?respawn_budget ?heartbeat ~nemesis ~endpoints ?listen
      ?dial_budget ?max_frame ~connect_timeout:1.0 ~shards ()
  in
  Report.render
    (Dist.Supervisor.run_fuzz ~quiet:true cfg ~seed ~cases ~boundary:false
       ~shrink:true ~oracles:None ())

let check_identical name sharded =
  if sharded <> Lazy.force serial_report then
    Alcotest.failf "%s: sharded report differs from serial:\n%s" name sharded

let spawn_serve ~id ~mode ~addr ?(nemesis = Dist.Nemesis.none) ?(once = true)
    () =
  let binding = Dist.Serve.env_binding ~id ~mode ~addr ~nemesis ~once () in
  let env = Array.append (Unix.environment ()) [| binding |] in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin null null
  in
  Unix.close null;
  pid

let reap_serve pids =
  List.iter
    (fun pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    pids

let nem spec =
  match Dist.Nemesis.parse spec with
  | Ok n -> n
  | Error e -> Alcotest.failf "bad nemesis spec %s: %s" spec e

(* Listen-mode fleet: workers bind unix sockets, the supervisor dials
   them through the registry (--workers). *)
let with_listen_fleet ?nemesis k =
  let p1 = fresh_sock_path () and p2 = fresh_sock_path () in
  let a1 = Net.Transport.Unix_sock p1 and a2 = Net.Transport.Unix_sock p2 in
  let nemesis = Option.value nemesis ~default:Dist.Nemesis.none in
  let pids =
    [
      spawn_serve ~id:1 ~mode:Dist.Serve.Listen ~addr:a1 ~nemesis ();
      spawn_serve ~id:2 ~mode:Dist.Serve.Listen ~addr:a2 ~nemesis ();
    ]
  in
  Fun.protect
    ~finally:(fun () ->
      reap_serve pids;
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ p1; p2 ])
    (fun () -> k [ (a1, 1); (a2, 1) ])

(* Connect-mode fleet: the supervisor listens on a unix socket and the
   workers dial in and self-register (abc serve --connect). *)
let with_connect_fleet ?nemesis k =
  let sup = fresh_sock_path () in
  let addr = Net.Transport.Unix_sock sup in
  let nemesis = Option.value nemesis ~default:Dist.Nemesis.none in
  let pids =
    [
      spawn_serve ~id:1 ~mode:Dist.Serve.Connect ~addr ~nemesis ();
      spawn_serve ~id:2 ~mode:Dist.Serve.Connect ~addr ~nemesis ();
    ]
  in
  Fun.protect
    ~finally:(fun () ->
      reap_serve pids;
      try Sys.remove sup with Sys_error _ -> ())
    (fun () -> k addr)

let with_tmp f =
  let path = Filename.temp_file "abc_net_test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let campaign_tests =
  [
    Alcotest.test_case "campaign over dialed unix-socket workers is identical"
      `Slow (fun () ->
        with_listen_fleet (fun endpoints ->
            check_identical "dialed sockets"
              (run_net ~shards:2 ~endpoints ())));
    Alcotest.test_case "identical under every network nemesis (self-registered)"
      `Slow (fun () ->
        List.iter
          (fun spec ->
            with_connect_fleet ~nemesis:(nem spec) (fun addr ->
                check_identical spec
                  (run_net ~shards:2 ~listen:addr ~heartbeat:2.0 ())))
          [
            "nrefuse:1@1";
            "ndrop:1@2";
            "npartial:1@1";
            "ndup:1@2";
            "corrupt:1@1";
            "trunc:1@2";
            "dup:1@1";
            "flip:1@2";
            "kill:1@1";
          ]);
    Alcotest.test_case "stalled socket worker: heartbeat kill, unit re-leased"
      `Slow (fun () ->
        (* worker 1 stalls on its second unit; the supervisor's
           heartbeat kills the connection, the registry hands the
           leased unit back, and worker 2 finishes it — the report
           must not show any of that *)
        with_listen_fleet ~nemesis:(nem "stall:1@2") (fun endpoints ->
            check_identical "re-lease"
              (run_net ~shards:2 ~endpoints ~heartbeat:1.0 ~dial_budget:2 ())));
    Alcotest.test_case "ladder: dead sockets -> subprocess -> in-process"
      `Slow (fun () ->
        let dead =
          [
            (Net.Transport.Unix_sock "/tmp/abc_net_dead_a.sock", 1);
            (Net.Transport.Unix_sock "/tmp/abc_net_dead_b.sock", 1);
          ]
        in
        (* rung 2: every endpoint dead, subprocess pipe workers take over *)
        check_identical "rung subprocess"
          (run_net ~shards:2 ~endpoints:dead ~dial_budget:1 ());
        (* rung 3: endpoints dead AND the worker binary gone: the
           supervisor finishes in-process *)
        check_identical "rung in-process"
          (run_net ~shards:2 ~endpoints:dead ~dial_budget:1
             ~worker_exe:"/nonexistent/abc-worker" ~respawn_budget:2 ()));
    Alcotest.test_case "--resume with --workers re-verifies the fingerprint"
      `Slow (fun () ->
        with_tmp (fun path ->
            (* leave a half-finished journal behind a supervisor kill *)
            (match
               run_net ~shards:2 ~checkpoint:path ~nemesis:(nem "skill@1") ()
             with
            | _ -> Alcotest.fail "nemesis failed to kill the supervisor"
            | exception Dist.Nemesis.Supervisor_killed 1 -> ()
            | exception Dist.Nemesis.Supervisor_killed n ->
                Alcotest.failf "killed after %d units, wanted 1" n);
            with_listen_fleet (fun endpoints ->
                (* a different campaign spec must be refused before any
                   socket worker sees a unit *)
                (match
                   run_net ~shards:2 ~checkpoint:path ~resume:() ~seed:12
                     ~endpoints ()
                 with
                | _ -> Alcotest.fail "foreign fingerprint resumed over sockets"
                | exception Dist.Supervisor.Dist_error e ->
                    if not (contains e "fingerprint") then
                      Alcotest.failf "error does not name the fingerprint: %s" e);
                (* the matching spec resumes over the socket fleet *)
                check_identical "resume over sockets"
                  (run_net ~shards:2 ~checkpoint:path ~resume:() ~endpoints ()))));
  ]

let suite =
  addr_tests @ transport_tests @ registry_tests @ max_frame_tests
  @ frame_fuzz_tests @ campaign_tests
